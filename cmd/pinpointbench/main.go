// Command pinpointbench is the load harness for the analysis service: it
// drives POST /v1/analyze on a running `pinpoint -serve` process with
// declarative scenarios (cold builds, warm single-function edits, burst
// arrivals, mixed checker sets) and reports client-observed latency
// percentiles next to the server's own phase-attributed timing breakdown.
//
// Usage:
//
//	pinpointbench -addr http://127.0.0.1:8972 [-scenario edit] [-spec f.json]
//	              [-clients N] [-rate R] [-duration 10s] [-requests N]
//	              [-checkers a,b] [-subject name] [-scale N] [-seed N]
//	              [-timeout 60s] [-csv samples.csv] [-json summary.json]
//	              [-sweep 1,2,4,8] [-sweep-step 5s] [-allow-errors]
//	              [-slo-target 100ms] [-slo-p 0.95] [-slo-max-burn 1]
//
// Two disciplines are supported. Closed-loop (the scenario default) models
// a fixed population of clients that wait for each response; open-loop
// (-rate, or an open arrival process in the spec) offers load on a
// schedule that ignores completions, which is the discipline that exposes
// queueing collapse. -sweep runs an open-loop Poisson ladder over the
// given rates and reports the saturation knee: the highest offered rate
// the service sustained with zero errors and achieved throughput within
// 5% of offered.
//
// The exit status is nonzero if any request failed (unless -allow-errors),
// so a short pinpointbench run doubles as a CI smoke gate. -slo-target
// evaluates a latency objective over the run (reported as a burn rate in
// the summary and JSON output); -slo-max-burn turns it into a gate that
// fails the run when the burn rate exceeds the bound.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		addr        = flag.String("addr", "", "base URL of the analysis service (required), e.g. http://127.0.0.1:8972")
		scenario    = flag.String("scenario", "edit", "built-in scenario: "+strings.Join(loadgen.BuiltinNames(), ", "))
		specPath    = flag.String("spec", "", "JSON scenario spec file (overrides -scenario)")
		clients     = flag.Int("clients", 0, "override every client group's concurrency")
		rate        = flag.Float64("rate", 0, "switch the first client group to open-loop Poisson arrivals at this rate (req/s)")
		duration    = flag.Duration("duration", 10*time.Second, "run duration (0 = run until -requests budgets drain)")
		requests    = flag.Int("requests", 0, "per-group request budget (0 = bounded by -duration)")
		checkers    = flag.String("checkers", "", "comma-separated checker override for every group")
		subject     = flag.String("subject", "", "workload subject name (default: synthetic serve subject)")
		scale       = flag.Int("scale", 0, "workload scale override (generated lines per paper KLoC)")
		seed        = flag.Int64("seed", 0, "workload + arrival-process seed")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		csvPath     = flag.String("csv", "", "write per-request samples as CSV to this file")
		jsonPath    = flag.String("json", "", "write the JSON summary (or sweep result) to this file")
		sweep       = flag.String("sweep", "", "comma-separated offered rates for a saturation sweep (req/s)")
		sweepStep   = flag.Duration("sweep-step", 5*time.Second, "duration of each sweep rung")
		allowErrors = flag.Bool("allow-errors", false, "exit 0 even if some requests failed")
		sloTarget   = flag.Duration("slo-target", 0, "evaluate a latency objective over the run: the -slo-p fraction of requests must finish within this duration (0 = no SLO evaluation)")
		sloP        = flag.Float64("slo-p", 0.95, "SLO quantile for -slo-target")
		sloMaxBurn  = flag.Float64("slo-max-burn", 0, "exit 1 if the run's SLO burn rate exceeds this bound (0 = report only)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "pinpointbench: -addr is required")
		flag.Usage()
		os.Exit(2)
	}

	spec, err := resolveSpec(*specPath, *scenario)
	if err != nil {
		fatal(err)
	}
	applyOverrides(spec, *clients, *rate, *requests, *checkers, *subject, *scale, *seed)
	if err := spec.Validate(); err != nil {
		fatal(err)
	}

	opts := loadgen.Options{
		BaseURL:  *addr,
		Duration: *duration,
		Timeout:  *timeout,
		Seed:     *seed,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *sweep != "" {
		rates, err := parseRates(*sweep)
		if err != nil {
			fatal(err)
		}
		sr, err := loadgen.Sweep(ctx, spec, opts, rates, *sweepStep)
		if err != nil {
			fatal(err)
		}
		printSweep(sr)
		if *jsonPath != "" {
			if err := writeJSONFile(*jsonPath, func(f *os.File) error {
				return writeIndented(f, sr)
			}); err != nil {
				fatal(err)
			}
		}
		return
	}

	res, err := loadgen.Run(ctx, spec, opts)
	if err != nil {
		fatal(err)
	}
	sum := loadgen.Summarize(res)
	if *sloTarget > 0 {
		rep := loadgen.EvalSLO(res, sloTarget.Nanoseconds(), *sloP)
		sum.SLO = &rep
	}
	printSummary(sum)

	if *csvPath != "" {
		if err := writeJSONFile(*csvPath, func(f *os.File) error {
			return loadgen.WriteCSV(f, res)
		}); err != nil {
			fatal(err)
		}
	}
	if *jsonPath != "" {
		if err := writeJSONFile(*jsonPath, func(f *os.File) error {
			return loadgen.WriteSummaryJSON(f, sum)
		}); err != nil {
			fatal(err)
		}
	}
	if sum.Errors > 0 && !*allowErrors {
		fmt.Fprintf(os.Stderr, "pinpointbench: %d of %d requests failed\n", sum.Errors, sum.Requests)
		os.Exit(1)
	}
	if sum.SLO != nil && *sloMaxBurn > 0 && sum.SLO.BurnRate > *sloMaxBurn {
		fmt.Fprintf(os.Stderr, "pinpointbench: SLO burn rate %.2f exceeds -slo-max-burn %.2f (p%g target %s, %d violations)\n",
			sum.SLO.BurnRate, *sloMaxBurn, sum.SLO.Quantile*100, time.Duration(sum.SLO.TargetNs), sum.SLO.Violations)
		os.Exit(1)
	}
}

func resolveSpec(specPath, scenario string) (*loadgen.Spec, error) {
	if specPath != "" {
		return loadgen.LoadSpec(specPath)
	}
	s, ok := loadgen.Builtin(scenario)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (built-ins: %s)", scenario, strings.Join(loadgen.BuiltinNames(), ", "))
	}
	return s, nil
}

func applyOverrides(spec *loadgen.Spec, clients int, rate float64, requests int, checkers, subject string, scale int, seed int64) {
	if subject != "" {
		spec.Subject.Name = subject
	}
	if scale > 0 {
		spec.Subject.Scale = scale
	}
	if seed != 0 {
		spec.Subject.Seed = seed
	}
	var checkerList []string
	if checkers != "" {
		for _, c := range strings.Split(checkers, ",") {
			if c = strings.TrimSpace(c); c != "" {
				checkerList = append(checkerList, c)
			}
		}
	}
	for i := range spec.Clients {
		c := &spec.Clients[i]
		if clients > 0 {
			c.Count = clients
		}
		if requests > 0 {
			c.Requests = requests
		}
		if checkerList != nil {
			c.Checkers = checkerList
		}
	}
	if rate > 0 && len(spec.Clients) > 0 {
		spec.Clients[0].Arrival = loadgen.ArrivalSpec{Process: "poisson", Rate: rate}
	}
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad sweep rate %q", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no sweep rates")
	}
	sort.Float64s(rates)
	return rates, nil
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func printSummary(s loadgen.Summary) {
	fmt.Printf("scenario=%s requests=%d errors=%d (%.2f%%) elapsed=%.2fs throughput=%.2f req/s",
		s.Scenario, s.Requests, s.Errors, s.ErrorRate*100,
		float64(s.ElapsedNs)/1e9, s.Throughput)
	if s.Offered > 0 {
		fmt.Printf(" offered=%.2f req/s", s.Offered)
	}
	fmt.Println()
	l := s.Latency
	fmt.Printf("latency ms: min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f mean=%.2f\n",
		ms(l.Min), ms(l.P50), ms(l.P95), ms(l.P99), ms(l.Max), ms(l.Mean))
	fmt.Printf("attribution gap: mean=%.1f%% p50=%.1f%% max=%.1f%%\n",
		s.AttributionGap.Mean*100, s.AttributionGap.P50*100, s.AttributionGap.Max*100)
	if s.SLO != nil {
		verdict := "met"
		if !s.SLO.Met {
			verdict = "VIOLATED"
		}
		fmt.Printf("slo: p%g<=%.2fms achieved=%.2fms violations=%d (%.2f%%) burn=%.2f %s\n",
			s.SLO.Quantile*100, ms(s.SLO.TargetNs), ms(s.SLO.QuantileNs),
			s.SLO.Violations, s.SLO.ViolationRate*100, s.SLO.BurnRate, verdict)
	}

	// Phase means, largest first, so the breakdown reads as a profile.
	type kv struct {
		name string
		v    int64
	}
	var phases []kv
	for name, v := range s.PhaseMeanNs {
		phases = append(phases, kv{name, v})
	}
	sort.Slice(phases, func(i, j int) bool {
		if phases[i].v != phases[j].v {
			return phases[i].v > phases[j].v
		}
		return phases[i].name < phases[j].name
	})
	fmt.Print("server phases (mean ms):")
	for _, p := range phases {
		fmt.Printf(" %s=%.2f", p.name, ms(p.v))
	}
	fmt.Println()
	for _, g := range s.Groups {
		fmt.Printf("  group %-8s requests=%d errors=%d p50=%.2fms p95=%.2fms max=%.2fms\n",
			g.Client, g.Requests, g.Errors, ms(g.Latency.P50), ms(g.Latency.P95), ms(g.Latency.Max))
	}
}

func printSweep(sr *loadgen.SweepResult) {
	fmt.Println("offered(req/s)  achieved(req/s)  p50(ms)  p95(ms)  p99(ms)  errors")
	for _, pt := range sr.Points {
		l := pt.Summary.Latency
		fmt.Printf("%14.2f  %15.2f  %7.2f  %7.2f  %7.2f  %6d\n",
			pt.Offered, pt.Achieved, ms(l.P50), ms(l.P95), ms(l.P99), pt.Summary.Errors)
	}
	if sr.Knee > 0 {
		fmt.Printf("saturation knee: %.2f req/s (highest offered rate sustained within 5%% with zero errors)\n", sr.Knee)
	} else {
		fmt.Println("saturation knee: not reached (service kept up with no tested rate)")
	}
}

// writeJSONFile creates path and hands it to write.
func writeJSONFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeIndented(f *os.File, v any) error {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pinpointbench:", err)
	os.Exit(1)
}
