// Command workloadgen writes a synthesized benchmark subject to disk as
// MiniC files, together with a ground-truth manifest.
//
// Usage:
//
//	workloadgen -subject mysql [-scale 15] [-taint] [-out DIR]
//	workloadgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/workload"
)

func main() {
	name := flag.String("subject", "", "subject to generate (see -list)")
	scale := flag.Int("scale", 15, "lines per paper-KLoC")
	taint := flag.Bool("taint", false, "inject taint workloads (Table 2)")
	out := flag.String("out", ".", "output directory")
	list := flag.Bool("list", false, "list subjects and exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %-14s %9s %8s %8s\n", "name", "origin", "paperKLoC", "bugs", "traps")
		for _, s := range workload.Subjects {
			fmt.Printf("%-14s %-14s %9d %8d %8d\n", s.Name, s.Origin, s.PaperKLoC, s.TrueBugs, s.OpaqueTraps)
		}
		return
	}
	subj, ok := workload.SubjectByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "workloadgen: unknown subject %q (try -list)\n", *name)
		os.Exit(2)
	}
	gen := workload.Generate(subj, workload.GenOptions{Scale: *scale, Taint: *taint})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, u := range gen.Units {
		if err := os.WriteFile(filepath.Join(*out, u.Name), []byte(u.Src), 0o644); err != nil {
			fatal(err)
		}
	}
	manifest := filepath.Join(*out, subj.Name+".truth.txt")
	f, err := os.Create(manifest)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "# ground truth for %s (scale=%d, %d lines)\n", subj.Name, *scale, gen.Lines)
	for _, b := range gen.Truth.TrueUAF {
		fmt.Fprintf(f, "true-uaf %s:%d %s\n", b.File, b.Line, b.Kind)
	}
	for _, b := range gen.Truth.OpaqueUAF {
		fmt.Fprintf(f, "opaque-uaf %s:%d %s\n", b.File, b.Line, b.Kind)
	}
	for _, b := range gen.Truth.InfeasibleTraps {
		fmt.Fprintf(f, "infeasible-trap %s:%d %s\n", b.File, b.Line, b.Kind)
	}
	for checker, sites := range gen.Truth.TaintTrue {
		for _, b := range sites {
			fmt.Fprintf(f, "taint-true %s %s:%d\n", checker, b.File, b.Line)
		}
	}
	for checker, sites := range gen.Truth.TaintOpaque {
		for _, b := range sites {
			fmt.Fprintf(f, "taint-opaque %s %s:%d\n", checker, b.File, b.Line)
		}
	}
	fmt.Printf("wrote %d units (%d lines) and %s\n", len(gen.Units), gen.Lines, manifest)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "workloadgen:", err)
	os.Exit(1)
}
