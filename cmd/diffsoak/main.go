// Command diffsoak runs extended differential-testing campaigns: many more
// programs and seeds than the unit test budget allows. Intended for soak
// runs during development; exits non-zero on the first disagreement.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/difftest"
)

func main() {
	n := flag.Int("n", 500, "programs per seed")
	seeds := flag.Int("seeds", 8, "number of seeds")
	flag.Parse()
	total := 0
	for s := int64(1); s <= int64(*seeds); s++ {
		bad, err := difftest.RunMany(s*7919, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diffsoak:", err)
			os.Exit(2)
		}
		total += *n
		if len(bad) > 0 {
			fmt.Printf("seed %d: %d disagreements; first:\n%s\n", s, len(bad), bad[0].Program.Src)
			os.Exit(1)
		}
		fmt.Printf("seed %d ok (%d programs, %d total)\n", s, *n, total)
	}
	fmt.Printf("soak clean: %d programs, analysis exact on all\n", total)
}
