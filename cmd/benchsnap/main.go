// Command benchsnap runs the detection worker-scaling benchmark and the
// incremental-rebuild benchmark on synthetic workload subjects and writes
// the results as JSON snapshots (BENCH_detect.json and
// BENCH_incremental.json by default) for CI trend tracking.
//
// Usage:
//
//	benchsnap [-out BENCH_detect.json] [-scale N] [-workers 1,2,4]
//	          [-inc-out BENCH_incremental.json] [-inc-scale N]
//	          [-smt-out BENCH_smt.json] [-smt-scale N]
//	          [-store-out BENCH_store.json] [-store-scale N]
//	          [-serve-out BENCH_serve.json] [-serve-scale N]
//	          [-build-out BENCH_build.json] [-build-scale N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/workload"
)

type snapshotRow struct {
	Workers int     `json:"workers"`
	WallNs  int64   `json:"wall_ns"`
	Speedup float64 `json:"speedup"`
}

type snapshot struct {
	Subject    string        `json:"subject"`
	Lines      int           `json:"lines"`
	Reports    int           `json:"reports"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Rows       []snapshotRow `json:"rows"`
}

type smtSnapshot struct {
	Subject           string           `json:"subject"`
	Lines             int              `json:"lines"`
	Reports           int              `json:"reports"`
	Queries           int              `json:"queries"`
	Solved            int              `json:"solved"`
	CacheHits         int              `json:"cache_hits"`
	PrefilterUnsat    int              `json:"prefilter_unsat"`
	EliminationRate   float64          `json:"elimination_rate"`
	CacheHitRate      float64          `json:"cache_hit_rate"`
	PrefilterKillRate float64          `json:"prefilter_kill_rate"`
	WallOffNs         int64            `json:"wall_off_ns"`
	WallOnNs          int64            `json:"wall_on_ns"`
	Speedup           float64          `json:"speedup"`
	QueryNsOff        obs.HistSnapshot `json:"query_ns_off"`
	QueryNsOn         obs.HistSnapshot `json:"query_ns_on"`
}

type storeSnapshot struct {
	Subject       string  `json:"subject"`
	Lines         int     `json:"lines"`
	Functions     int     `json:"functions"`
	Units         int     `json:"units"`
	ColdNs        int64   `json:"cold_ns"`
	WarmRestartNs int64   `json:"warm_restart_ns"`
	WarmLoadNs    int64   `json:"warm_load_ns"`
	WarmParseNs   int64   `json:"warm_parse_ns"`
	WarmPersistNs int64   `json:"warm_persist_ns"`
	Speedup       float64 `json:"speedup"`
	StoreHits     int     `json:"store_hits"`
	Records       int     `json:"records"`
	DiskBytes     int64   `json:"disk_bytes"`
	ResidentBytes int64   `json:"resident_bytes"`
}

type serveScenarioSnap struct {
	Name     string `json:"name"`
	Requests int    `json:"requests"`
	Errors   int    `json:"errors"`
	// Tenants is the number of distinct server-side tenants the
	// scenario drove (the multi-tenant scenarios use one per group).
	Tenants     int               `json:"tenants"`
	Throughput  float64           `json:"throughput"`
	LatencyNs   loadgen.LatencyNs `json:"latency_ns"`
	PhaseMeanNs map[string]int64  `json:"phase_mean_ns"`
	GapMean     float64           `json:"gap_mean"`
	GapP50      float64           `json:"gap_p50"`
	GapMax      float64           `json:"gap_max"`
}

type serveSnapshot struct {
	Subject    string              `json:"subject"`
	Lines      int                 `json:"lines"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	MaxGapP50  float64             `json:"max_gap_p50"`
	Scenarios  []serveScenarioSnap `json:"scenarios"`
}

type buildSnapshot struct {
	Subject    string        `json:"subject"`
	Lines      int           `json:"lines"`
	Functions  int           `json:"functions"`
	Units      int           `json:"units"`
	Reports    int           `json:"reports"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Equivalent bool          `json:"equivalent"`
	Rows       []snapshotRow `json:"rows"`
}

type incSnapshot struct {
	Subject     string  `json:"subject"`
	Lines       int     `json:"lines"`
	Functions   int     `json:"functions"`
	Units       int     `json:"units"`
	ColdNs      int64   `json:"cold_ns"`
	WarmNs      int64   `json:"warm_ns"`
	Speedup     float64 `json:"speedup"`
	Hits        int     `json:"artifact_hits"`
	Misses      int     `json:"artifact_misses"`
	Invalidated int     `json:"artifact_invalidated"`
}

func main() {
	out := flag.String("out", "BENCH_detect.json", "output file for the JSON snapshot")
	scale := flag.Int("scale", 3, "workload scale factor (bigger = more functions)")
	workersFlag := flag.String("workers", "", "comma-separated worker counts (default 1,2,4,...,GOMAXPROCS)")
	incOut := flag.String("inc-out", "BENCH_incremental.json", "output file for the incremental-rebuild snapshot (empty disables)")
	incScale := flag.Int("inc-scale", 30, "workload scale factor for the incremental benchmark")
	smtOut := flag.String("smt-out", "BENCH_smt.json", "output file for the SMT query-elimination snapshot (empty disables)")
	smtScale := flag.Int("smt-scale", 30, "workload scale factor for the SMT elimination benchmark")
	storeOut := flag.String("store-out", "BENCH_store.json", "output file for the persistent-store warm-restart snapshot (empty disables)")
	storeScale := flag.Int("store-scale", 30, "workload scale factor for the store warm-restart benchmark")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "output file for the service-latency snapshot (empty disables)")
	serveScale := flag.Int("serve-scale", 30, "workload scale factor for the service-latency benchmark")
	buildOut := flag.String("build-out", "BENCH_build.json", "output file for the cold-build worker-scaling snapshot (empty disables)")
	buildScale := flag.Int("build-scale", 30, "workload scale factor for the build-scaling benchmark")
	flag.Parse()

	counts, err := parseWorkers(*workersFlag)
	if err != nil {
		fatal(err)
	}

	subj := workload.Subject{
		Name: "bench-detect", Origin: "synthetic", PaperKLoC: 60,
		TrueBugs: 6, OpaqueTraps: 4,
	}
	sc, err := bench.MeasureDetectScaling(subj, *scale, counts)
	if err != nil {
		fatal(err)
	}

	snap := snapshot{
		Subject:    sc.Subject,
		Lines:      sc.Lines,
		Reports:    sc.Reports,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, r := range sc.Rows {
		snap.Rows = append(snap.Rows, snapshotRow{
			Workers: r.Workers, WallNs: int64(r.Wall), Speedup: r.Speedup,
		})
		fmt.Printf("workers=%-3d wall=%-14s speedup=%.2fx\n", r.Workers, r.Wall, r.Speedup)
	}

	writeJSON(*out, snap)

	if *incOut != "" {
		inc, err := bench.MeasureIncremental(subj, *incScale)
		if err != nil {
			fatal(err)
		}
		isnap := incSnapshot{
			Subject:     inc.Subject,
			Lines:       inc.Lines,
			Functions:   inc.Functions,
			Units:       inc.Units,
			ColdNs:      int64(inc.Cold),
			WarmNs:      int64(inc.Warm),
			Speedup:     inc.Speedup,
			Hits:        inc.Artifacts.Hits,
			Misses:      inc.Artifacts.Misses,
			Invalidated: inc.Artifacts.Invalidated,
		}
		fmt.Printf("incremental: cold=%-14s warm=%-14s speedup=%.2fx (artifacts: %d hits, %d misses, %d invalidated)\n",
			inc.Cold, inc.Warm, inc.Speedup, inc.Artifacts.Hits, inc.Artifacts.Misses, inc.Artifacts.Invalidated)
		writeJSON(*incOut, isnap)
	}

	if *storeOut != "" {
		sr, err := bench.MeasureStore(subj, *storeScale)
		if err != nil {
			fatal(err)
		}
		stsnap := storeSnapshot{
			Subject:       sr.Subject,
			Lines:         sr.Lines,
			Functions:     sr.Functions,
			Units:         sr.Units,
			ColdNs:        int64(sr.Cold),
			WarmRestartNs: int64(sr.WarmRestart),
			WarmLoadNs:    int64(sr.WarmLoad),
			WarmParseNs:   int64(sr.WarmParse),
			WarmPersistNs: int64(sr.WarmPersist),
			Speedup:       sr.Speedup,
			StoreHits:     sr.StoreHits,
			Records:       sr.Stats.Records,
			DiskBytes:     sr.Stats.DiskBytes,
			ResidentBytes: sr.Stats.ResidentBytes,
		}
		fmt.Printf("store: cold=%-14s warm-restart=%-14s speedup=%.2fx (load=%s parse=%s persist=%s; %d artifacts store-loaded; %d records, %d KiB on disk)\n",
			sr.Cold, sr.WarmRestart, sr.Speedup, sr.WarmLoad, sr.WarmParse, sr.WarmPersist, sr.StoreHits, sr.Stats.Records, sr.Stats.DiskBytes/1024)
		writeJSON(*storeOut, stsnap)
	}

	if *serveOut != "" {
		sv, err := bench.MeasureServe(subj, *serveScale)
		if err != nil {
			fatal(err)
		}
		vsnap := serveSnapshot{
			Subject:    sv.Subject,
			Lines:      sv.Lines,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			MaxGapP50:  sv.MaxGapP50,
		}
		for _, sc := range sv.Scenarios {
			vsnap.Scenarios = append(vsnap.Scenarios, serveScenarioSnap{
				Name:        sc.Name,
				Requests:    sc.Requests,
				Errors:      sc.Errors,
				Tenants:     sc.Tenants,
				Throughput:  sc.Throughput,
				LatencyNs:   sc.Latency,
				PhaseMeanNs: sc.PhaseMeanNs,
				GapMean:     sc.Gap.Mean,
				GapP50:      sc.Gap.P50,
				GapMax:      sc.Gap.Max,
			})
			fmt.Printf("serve %-6s %d req (%d errors) %.1f req/s; p50/p95/p99 %s/%s/%s; gap p50 %.1f%%\n",
				sc.Name, sc.Requests, sc.Errors, sc.Throughput,
				time.Duration(sc.Latency.P50), time.Duration(sc.Latency.P95),
				time.Duration(sc.Latency.P99), 100*sc.Gap.P50)
		}
		var serialTP, tenantTP float64
		for _, sc := range sv.Scenarios {
			switch sc.Name {
			case "tenants-serial":
				serialTP = sc.Throughput
			case "tenants":
				tenantTP = sc.Throughput
			}
		}
		if serialTP > 0 && tenantTP > 0 {
			fmt.Printf("serve tenants: cross-tenant aggregate throughput %.2fx the serialized baseline (%.1f vs %.1f req/s)\n",
				tenantTP/serialTP, tenantTP, serialTP)
		}
		if sv.MaxGapP50 > bench.GapBudget {
			fmt.Printf("serve: WARNING: median attribution gap %.1f%% exceeds the %.0f%% budget\n",
				100*sv.MaxGapP50, 100*bench.GapBudget)
		}
		writeJSON(*serveOut, vsnap)
	}

	if *buildOut != "" {
		bs, err := bench.MeasureBuild(subj, *buildScale, counts, 3)
		if err != nil {
			fatal(err)
		}
		bsnap := buildSnapshot{
			Subject:    bs.Subject,
			Lines:      bs.Lines,
			Functions:  bs.Functions,
			Units:      bs.Units,
			Reports:    bs.Reports,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Equivalent: bs.Equivalent,
		}
		for _, r := range bs.Rows {
			bsnap.Rows = append(bsnap.Rows, snapshotRow{
				Workers: r.Workers, WallNs: int64(r.Wall), Speedup: r.Speedup,
			})
			fmt.Printf("build workers=%-3d wall=%-14s speedup=%.2fx\n", r.Workers, r.Wall, r.Speedup)
		}
		writeJSON(*buildOut, bsnap)
	}

	if *smtOut != "" {
		sm, err := bench.MeasureSMT(subj, *smtScale)
		if err != nil {
			fatal(err)
		}
		ssnap := smtSnapshot{
			Subject:           sm.Subject,
			Lines:             sm.Lines,
			Reports:           sm.Reports,
			Queries:           sm.Queries,
			Solved:            sm.Solved,
			CacheHits:         sm.CacheHits,
			PrefilterUnsat:    sm.PrefilterUnsat,
			EliminationRate:   sm.EliminationRate,
			CacheHitRate:      sm.CacheHitRate,
			PrefilterKillRate: sm.PrefilterKillRate,
			WallOffNs:         int64(sm.WallOff),
			WallOnNs:          int64(sm.WallOn),
			Speedup:           sm.Speedup,
			QueryNsOff:        sm.QueryNsOff,
			QueryNsOn:         sm.QueryNsOn,
		}
		fmt.Printf("smt: %d queries (%d solved, %d cached, %d prefiltered; %.0f%% eliminated) wall %s -> %s (%.2fx); solver p50/p99 %s/%s -> %s/%s\n",
			sm.Queries, sm.Solved, sm.CacheHits, sm.PrefilterUnsat, 100*sm.EliminationRate,
			sm.WallOff, sm.WallOn, sm.Speedup,
			time.Duration(sm.QueryNsOff.P50), time.Duration(sm.QueryNsOff.P99),
			time.Duration(sm.QueryNsOn.P50), time.Duration(sm.QueryNsOn.P99))
		writeJSON(*smtOut, ssnap)
	}
}

func writeJSON(path string, v any) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

// parseWorkers turns "1,2,4" into worker counts; empty selects the
// standard ladder {1, 2, GOMAXPROCS}, deduplicated and sorted (so a
// single-core machine measures just workers=1).
func parseWorkers(s string) ([]int, error) {
	if s == "" {
		counts := []int{1}
		max := runtime.GOMAXPROCS(0)
		if max >= 2 {
			counts = append(counts, 2)
		}
		if max > 2 {
			counts = append(counts, max)
		}
		return counts, nil
	}
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
