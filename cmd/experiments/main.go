// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthesized workloads. See EXPERIMENTS.md for a
// captured run and the paper-vs-measured discussion.
//
// Usage:
//
//	experiments [-run all|fig7|fig8|fig9|fig10|table1|table2|table3|juliet|ablations] [-scale N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	runSel := flag.String("run", "all", "experiment to run (all, fig7, fig8, fig9, fig10, table1, table2, table3, juliet, depthsweep, ablations)")
	scale := flag.Int("scale", 15, "generated lines per paper-KLoC")
	flag.Parse()

	cfg := bench.Config{Scale: *scale}
	want := func(name string) bool { return *runSel == "all" || *runSel == name }

	needSubjects := false
	for _, n := range []string{"fig7", "fig8", "fig9", "fig10", "table1"} {
		if want(n) {
			needSubjects = true
		}
	}

	fmt.Printf("Pinpoint reproduction — experiment harness (scale=%d lines/paper-KLoC)\n\n", *scale)

	if needSubjects {
		fmt.Fprintln(os.Stderr, "running 30 subjects (Pinpoint + SVF baseline)...")
		runs, err := bench.RunAllSubjects(cfg)
		if err != nil {
			fatal(err)
		}
		if want("fig7") {
			fmt.Print(bench.RenderFigure7(runs))
		}
		if want("fig8") {
			fmt.Print(bench.RenderFigure8(runs))
		}
		if want("fig9") {
			fmt.Print(bench.RenderFigure9(runs))
		}
		if want("fig10") {
			fmt.Print(bench.RenderFigure10(runs))
		}
		if want("table1") {
			fmt.Print(bench.RenderTable1(runs))
		}
	}
	if want("table2") {
		fmt.Fprintln(os.Stderr, "running taint checkers on mysql...")
		taint, err := bench.RunTaint(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.RenderTable2(taint))
	}
	if want("table3") {
		fmt.Fprintln(os.Stderr, "running Infer-like and CSA-like baselines...")
		rows, err := bench.RunUnitConfinedBaselines(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.RenderTable3(rows))
	}
	if want("juliet") {
		fmt.Fprintln(os.Stderr, "running the 1421-case Juliet recall suite...")
		jr, err := bench.RunJuliet()
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.RenderJuliet(jr))
	}
	if want("depthsweep") {
		fmt.Fprintln(os.Stderr, "running calling-context depth sweep...")
		rows, err := bench.RunDepthSweep(cfg, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.RenderDepthSweep(rows))
	}
	if want("ablations") {
		fmt.Fprintln(os.Stderr, "running ablations...")
		ab, err := bench.RunAblations(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.RenderAblations(ab))
	}
	if *runSel != "all" && !isKnown(*runSel) {
		fatal(fmt.Errorf("unknown experiment %q", *runSel))
	}
}

func isKnown(name string) bool {
	known := "all fig7 fig8 fig9 fig10 table1 table2 table3 juliet depthsweep ablations"
	for _, k := range strings.Fields(known) {
		if k == name {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
