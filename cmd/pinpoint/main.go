// Command pinpoint analyzes MiniC source files with the full holistic
// pipeline and reports source–sink bugs.
//
// Usage:
//
//	pinpoint [-checkers uaf,double-free,path-traversal,data-transmission,null-deref,memory-leak]
//	         [-workers N] [-depth N] [-no-path-sensitivity] [-stats] file.mc...
//
// Each file is one compilation unit. -checkers all selects every registered
// checker. Exit status is 1 when any bug is reported (so the tool slots
// into CI), 2 on usage or analysis errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/minic"
)

func main() {
	sel := flag.String("checkers", "uaf", "comma-separated checker list ("+strings.Join(checkers.Names(), ", ")+"), or 'all'")
	workers := flag.Int("workers", -1, "worker goroutines for build and detection (0/1 = sequential, negative = all CPUs)")
	depth := flag.Int("depth", 6, "maximum nested call depth")
	noPS := flag.Bool("no-path-sensitivity", false, "skip SMT feasibility checks (report all candidates)")
	stats := flag.Bool("stats", false, "print engine statistics")
	witness := flag.Bool("witness", false, "print the satisfying branch assignment for each report")
	dump := flag.String("dump", "", "write Graphviz DOT for one function: 'cfg:<func>' or 'seg:<func>' (then exit)")
	format := flag.String("format", "text", "report format: text or json")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "pinpoint: no input files")
		flag.Usage()
		os.Exit(2)
	}

	var specs []*checkers.Spec
	if strings.TrimSpace(*sel) == "all" {
		specs = checkers.All()
	} else {
		picked := make(map[string]bool)
		for _, name := range strings.Split(*sel, ",") {
			name = strings.TrimSpace(name)
			sp, ok := checkers.ByName(name)
			if !ok {
				fatal(fmt.Errorf("unknown checker %q (known: %s)", name, strings.Join(checkers.Names(), ", ")))
			}
			if picked[sp.Name] { // "uaf,use-after-free" names one checker, not two
				continue
			}
			picked[sp.Name] = true
			specs = append(specs, sp)
		}
	}

	var units []minic.NamedSource
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		units = append(units, minic.NamedSource{Name: path, Src: string(data)})
	}

	a, err := core.BuildFromSource(units, core.BuildOptions{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "pinpoint: %d functions, %d IR instructions, %d SEG nodes, %d SEG edges; build %s\n",
			a.Sizes.Functions, a.Sizes.Lines, a.Sizes.SEGNodes, a.Sizes.SEGEdges, a.Timings.Total())
	}
	if *dump != "" {
		kind, fn, ok := strings.Cut(*dump, ":")
		f := a.Module.ByName[fn]
		if !ok || f == nil {
			fatal(fmt.Errorf("bad -dump %q: want cfg:<func> or seg:<func> with a defined function", *dump))
		}
		switch kind {
		case "cfg":
			fmt.Print(ir.DotCFG(f))
		case "seg":
			fmt.Print(a.SEGs[f].Dot())
		default:
			fatal(fmt.Errorf("bad -dump kind %q", kind))
		}
		return
	}

	res := a.CheckAll(specs, detect.Options{
		MaxCallDepth:           *depth,
		DisablePathSensitivity: *noPS,
		Workers:                *workers,
	})

	if *format == "json" {
		jsonReports := make([]detect.JSONReport, 0, len(res.Reports))
		for _, r := range res.Reports {
			jsonReports = append(jsonReports, r.ToJSON())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReports); err != nil {
			fatal(err)
		}
	} else {
		for _, r := range res.Reports {
			fmt.Println(r)
			if *witness && len(r.Witness) > 0 {
				label := "trigger"
				if r.Kind != "" {
					label = "leaks when"
				}
				fmt.Printf("    %s: %s\n", label, strings.Join(r.Witness, ", "))
			}
		}
	}
	if *stats {
		for _, cs := range res.Checkers {
			st := cs.Stats
			if st.Escaped > 0 || cs.Checker == "memory-leak" {
				fmt.Fprintf(os.Stderr, "pinpoint: %s: %d allocations, %d escaped, %d SMT queries\n",
					cs.Checker, st.Sources, st.Escaped, st.SMTQueries)
				continue
			}
			fmt.Fprintf(os.Stderr, "pinpoint: %s: %d sources, %d candidates, %d SMT queries (%d sat/%d unsat), %s solving\n",
				cs.Checker, st.Sources, st.Candidates, st.SMTQueries, st.SMTSat, st.SMTUnsat, st.SMTTime)
		}
		fmt.Fprintf(os.Stderr, "pinpoint: detection: %d workers, %s wall\n", res.Workers, res.Wall)
	}
	if len(res.Reports) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pinpoint:", err)
	os.Exit(2)
}
