// Command pinpoint analyzes MiniC source files with the full holistic
// pipeline and reports source–sink bugs.
//
// Usage:
//
//	pinpoint [-checkers uaf,double-free,path-traversal,data-transmission,null-deref]
//	         [-depth N] [-no-path-sensitivity] [-stats] file.mc...
//
// Each file is one compilation unit. Exit status is 1 when any bug is
// reported (so the tool slots into CI), 2 on usage or analysis errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/minic"
)

var checkerFactories = map[string]func() *checkers.Spec{
	"uaf":               checkers.UseAfterFree,
	"double-free":       checkers.DoubleFree,
	"path-traversal":    checkers.PathTraversal,
	"data-transmission": checkers.DataTransmission,
	"null-deref":        checkers.NullDeref,
}

func main() {
	sel := flag.String("checkers", "uaf", "comma-separated checker list: uaf, double-free, path-traversal, data-transmission, null-deref, memory-leak")
	depth := flag.Int("depth", 6, "maximum nested call depth")
	noPS := flag.Bool("no-path-sensitivity", false, "skip SMT feasibility checks (report all candidates)")
	stats := flag.Bool("stats", false, "print engine statistics")
	witness := flag.Bool("witness", false, "print the satisfying branch assignment for each report")
	dump := flag.String("dump", "", "write Graphviz DOT for one function: 'cfg:<func>' or 'seg:<func>' (then exit)")
	format := flag.String("format", "text", "report format: text or json")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "pinpoint: no input files")
		flag.Usage()
		os.Exit(2)
	}

	var units []minic.NamedSource
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		units = append(units, minic.NamedSource{Name: path, Src: string(data)})
	}

	a, err := core.BuildFromSource(units, core.BuildOptions{})
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "pinpoint: %d functions, %d IR instructions, %d SEG nodes, %d SEG edges; build %s\n",
			a.Sizes.Functions, a.Sizes.Lines, a.Sizes.SEGNodes, a.Sizes.SEGEdges, a.Timings.Total())
	}
	if *dump != "" {
		kind, fn, ok := strings.Cut(*dump, ":")
		f := a.Module.ByName[fn]
		if !ok || f == nil {
			fatal(fmt.Errorf("bad -dump %q: want cfg:<func> or seg:<func> with a defined function", *dump))
		}
		switch kind {
		case "cfg":
			fmt.Print(ir.DotCFG(f))
		case "seg":
			fmt.Print(a.SEGs[f].Dot())
		default:
			fatal(fmt.Errorf("bad -dump kind %q", kind))
		}
		return
	}

	opts := detect.Options{
		MaxCallDepth:           *depth,
		DisablePathSensitivity: *noPS,
	}
	total := 0
	var jsonReports []jsonReport
	for _, name := range strings.Split(*sel, ",") {
		name = strings.TrimSpace(name)
		if name == "memory-leak" {
			reports, st := detect.FindLeaks(a.Prog, opts)
			for _, r := range reports {
				if *format == "json" {
					jsonReports = append(jsonReports, jsonReport{
						Checker: "memory-leak", Kind: r.Kind.String(),
						SourceFile: r.Pos.File, SourceLine: r.Pos.Line,
						SourceFunc: r.Fn, Witness: r.Witness,
					})
					continue
				}
				fmt.Println(r)
				if *witness && len(r.Witness) > 0 {
					fmt.Printf("    leaks when: %s\n", strings.Join(r.Witness, ", "))
				}
			}
			total += len(reports)
			if *stats {
				fmt.Fprintf(os.Stderr, "pinpoint: memory-leak: %d allocations, %d escaped, %d SMT queries\n",
					st.Allocs, st.Escaped, st.SMTQueries)
			}
			continue
		}
		mk, ok := checkerFactories[name]
		if !ok {
			fatal(fmt.Errorf("unknown checker %q", name))
		}
		reports, st := a.Check(mk(), opts)
		for _, r := range reports {
			if *format == "json" {
				jsonReports = append(jsonReports, jsonReport{
					Checker:    r.Checker,
					SourceFile: r.SourcePos.File, SourceLine: r.SourcePos.Line,
					SourceFunc: r.SourceFn,
					SinkFile:   r.SinkPos.File, SinkLine: r.SinkPos.Line,
					SinkFunc: r.SinkFn,
					PathLen:  r.PathLen, Contexts: r.Contexts,
					Witness: r.Witness,
				})
				continue
			}
			fmt.Println(r)
			if *witness && len(r.Witness) > 0 {
				fmt.Printf("    trigger: %s\n", strings.Join(r.Witness, ", "))
			}
		}
		total += len(reports)
		if *stats {
			fmt.Fprintf(os.Stderr, "pinpoint: %s: %d sources, %d candidates, %d SMT queries (%d sat/%d unsat), %s solving\n",
				name, st.Sources, st.Candidates, st.SMTQueries, st.SMTSat, st.SMTUnsat, st.SMTTime)
		}
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if jsonReports == nil {
			jsonReports = []jsonReport{}
		}
		if err := enc.Encode(jsonReports); err != nil {
			fatal(err)
		}
	}
	if total > 0 {
		os.Exit(1)
	}
}

// jsonReport is the machine-readable report shape emitted by -format json.
type jsonReport struct {
	Checker    string   `json:"checker"`
	Kind       string   `json:"kind,omitempty"`
	SourceFile string   `json:"sourceFile"`
	SourceLine int      `json:"sourceLine"`
	SourceFunc string   `json:"sourceFunc"`
	SinkFile   string   `json:"sinkFile,omitempty"`
	SinkLine   int      `json:"sinkLine,omitempty"`
	SinkFunc   string   `json:"sinkFunc,omitempty"`
	PathLen    int      `json:"pathLen,omitempty"`
	Contexts   int      `json:"contexts,omitempty"`
	Witness    []string `json:"witness,omitempty"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pinpoint:", err)
	os.Exit(2)
}
