// Command pinpoint analyzes MiniC source files with the full holistic
// pipeline and reports source–sink bugs.
//
// Usage:
//
//	pinpoint [-checkers uaf,double-free,path-traversal,data-transmission,null-deref,memory-leak]
//	         [-workers N] [-depth N] [-no-path-sensitivity] [-stats] [-provenance]
//	         [-store-dir dir] [-store-max-bytes N]
//	         [-trace out.json] [-stats-json out.json] [-pprof addr] file.mc...
//	pinpoint serve [-addr host:port] [-workers N] [-max-inflight N]
//	         [-request-timeout d] [-log-json] [-store-dir dir] [-store-max-bytes N]
//	pinpoint explain [-checkers list] [-workers N] [-depth N] file.mc...
//
// Each file is one compilation unit. -checkers all selects every registered
// checker. `serve` runs the analysis service (see internal/server);
// `explain` renders each report's value-flow path interleaved with the
// source lines it traverses. Exit status is 1 when any bug is reported (so
// the tool slots into CI), 2 on usage or analysis errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/pinpoint"
	"repro/internal/pta"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			runServe(os.Args[2:])
			return
		case "explain":
			runExplain(os.Args[2:])
			return
		}
	}
	runBatch()
}

func runBatch() {
	sel := flag.String("checkers", "uaf", "comma-separated checker list ("+strings.Join(checkers.Names(), ", ")+"), or 'all'")
	workers := flag.Int("workers", -1, "worker goroutines for build and detection (0/1 = sequential, negative = all CPUs)")
	depth := flag.Int("depth", 6, "maximum nested call depth")
	noPS := flag.Bool("no-path-sensitivity", false, "skip SMT feasibility checks (report all candidates)")
	stats := flag.Bool("stats", false, "print engine statistics")
	witness := flag.Bool("witness", false, "print the satisfying branch assignment for each report")
	dump := flag.String("dump", "", "write Graphviz DOT for one function: 'cfg:<func>' or 'seg:<func>' (then exit)")
	format := flag.String("format", "text", "report format: text or json")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run (open in chrome://tracing or Perfetto)")
	statsJSON := flag.String("stats-json", "", "write a machine-readable statistics dump (timings, SMT latency percentiles, cache hit rates, worker utilization)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
	incremental := flag.Bool("incremental", false, "build through a persistent incremental session (content-addressed artifact store) instead of the one-shot pipeline")
	repeat := flag.Int("repeat", 1, "with -incremental: build rounds; inputs are re-read from disk before each round, so warm rounds rebuild only what changed")
	smtCache := flag.Bool("smt-cache", true, "answer SMT queries isomorphic to an already-decided formula from the canonical verdict cache")
	smtPrefilter := flag.Bool("smt-prefilter", true, "refute contradictory SMT queries with a linear-time pass before entering the DPLL(T) solver")
	smtIncremental := flag.Bool("smt-incremental", false, "reuse one Push/Pop solver with learned-clause retention per (checker, source) task; Sat witnesses may differ from the default mode")
	provenance := flag.Bool("provenance", false, "capture per-report provenance (value-flow hops, path-condition size, verdict source); shown in -format json and by 'pinpoint explain'")
	storeDir := flag.String("store-dir", "", "persist artifacts and SMT verdicts in this directory across runs (works with and without -incremental; empty = memory only)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "in-memory residency bound for the persistent store's record cache (0 = store default, negative = unbounded)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "pinpoint: no input files")
		flag.Usage()
		os.Exit(2)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pinpoint: pprof:", err)
			}
		}()
	}

	// The recorder is nil unless some output needs it, keeping the default
	// run on the zero-cost no-op path.
	var rec *obs.Recorder
	if *traceOut != "" {
		rec = obs.NewTracing()
	} else if *statsJSON != "" {
		rec = obs.New()
	}

	specs, err := selectCheckers(*sel)
	if err != nil {
		fatal(err)
	}

	readUnitsArgs := func() []minic.NamedSource { return readUnits(flag.Args()) }

	// The unified config front door: build, store, and detection options
	// all derive from one pinpoint.Config, so the CLI cannot hand different
	// worker pools or recorders to different layers.
	rt, err := pinpoint.Open(pinpoint.Config{
		Workers:                *workers,
		Obs:                    rec,
		StoreDir:               *storeDir,
		StoreMaxBytes:          *storeMaxBytes,
		MaxCallDepth:           *depth,
		DisablePathSensitivity: *noPS,
		DisableSMTCache:        !*smtCache,
		DisableSMTPrefilter:    !*smtPrefilter,
		SMTIncremental:         *smtIncremental,
		Witness:                *provenance,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	var a *core.Analysis
	if *incremental || *storeDir != "" {
		sess := rt.NewSession()
		rounds := *repeat
		if rounds < 1 {
			rounds = 1
		}
		for i := 0; i < rounds; i++ {
			if a, err = sess.Update(readUnitsArgs()); err != nil {
				fatal(err)
			}
		}
	} else {
		if a, err = core.BuildFromSource(readUnitsArgs(), rt.BuildOptions()); err != nil {
			fatal(err)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "pinpoint: %d functions, %d IR instructions, %d SEG nodes, %d SEG edges; build %s\n",
			a.Sizes.Functions, a.Sizes.Lines, a.Sizes.SEGNodes, a.Sizes.SEGEdges, a.Timings.Total())
		fmt.Fprintf(os.Stderr, "pinpoint: pta: %s\n", a.PTAStats)
		if *incremental || *storeDir != "" {
			fmt.Fprintf(os.Stderr, "pinpoint: artifacts: %d hits, %d misses, %d invalidated, %d store-loaded\n",
				a.Artifacts.Hits, a.Artifacts.Misses, a.Artifacts.Invalidated, a.Artifacts.StoreHits)
		}
	}
	if *dump != "" {
		kind, fn, ok := strings.Cut(*dump, ":")
		f := a.Module.ByName[fn]
		if !ok || f == nil {
			fatal(fmt.Errorf("bad -dump %q: want cfg:<func> or seg:<func> with a defined function", *dump))
		}
		switch kind {
		case "cfg":
			fmt.Print(ir.DotCFG(f))
		case "seg":
			fmt.Print(a.SEGs[f].Dot())
		default:
			fatal(fmt.Errorf("bad -dump kind %q", kind))
		}
		return
	}

	res := a.CheckAll(specs, rt.DetectOptions())

	if *format == "json" {
		jsonReports := make([]detect.JSONReport, 0, len(res.Reports))
		for _, r := range res.Reports {
			jsonReports = append(jsonReports, r.ToJSON())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReports); err != nil {
			fatal(err)
		}
	} else {
		for _, r := range res.Reports {
			fmt.Println(r)
			if *witness && len(r.Witness) > 0 {
				label := "trigger"
				if r.Kind != "" {
					label = "leaks when"
				}
				fmt.Printf("    %s: %s\n", label, strings.Join(r.Witness, ", "))
			}
		}
	}
	if *stats {
		for _, cs := range res.Checkers {
			fmt.Fprintf(os.Stderr, "pinpoint: %s\n", cs)
		}
		fmt.Fprintf(os.Stderr, "pinpoint: detection: %d workers, %s wall\n", res.Workers, res.Wall)
	}
	if *traceOut != "" {
		if err := writeFileWith(*traceOut, rec.WriteTrace); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
	}
	if *statsJSON != "" {
		d := buildStatsDump(a, res, rec)
		if err := writeFileWith(*statsJSON, d.write); err != nil {
			fatal(fmt.Errorf("stats-json: %w", err))
		}
	}
	if len(res.Reports) > 0 {
		_ = rt.Close() // os.Exit skips the deferred close
		os.Exit(1)
	}
}

// statsDump is the -stats-json document: everything -stats prints, plus
// the latency percentiles, cache hit rates, and per-worker utilization
// that only the metrics registry can report.
type statsDump struct {
	Build struct {
		Functions int   `json:"functions"`
		IRInstrs  int   `json:"ir_instrs"`
		SEGNodes  int   `json:"seg_nodes"`
		SEGEdges  int   `json:"seg_edges"`
		CondNodes int   `json:"cond_nodes"`
		ParseNs   int64 `json:"parse_ns"`
		LowerNs   int64 `json:"lower_ns"`
		SSANs     int64 `json:"ssa_ns"`
		ModRefNs  int64 `json:"modref_ns"`
		TransfNs  int64 `json:"transform_ns"`
		PTASEGNs  int64 `json:"pta_seg_ns"`
		TotalNs   int64 `json:"total_ns"`
	} `json:"build"`
	// Artifacts is the incremental store outcome of the (last) build
	// round: all misses for a one-shot build, mostly hits for a warm
	// -incremental rebuild.
	Artifacts struct {
		Hits        int `json:"hits"`
		Misses      int `json:"misses"`
		Invalidated int `json:"invalidated"`
	} `json:"artifacts"`
	PTA      pta.Stats     `json:"pta"`
	Checkers []checkerDump `json:"checkers"`
	Detect   struct {
		Workers        int     `json:"workers"`
		WallNs         int64   `json:"wall_ns"`
		Reports        int     `json:"reports"`
		SummaryHits    int     `json:"summary_cache_hits"`
		SummaryMisses  int     `json:"summary_cache_misses"`
		SummaryHitRate float64 `json:"summary_cache_hit_rate"`
		SummaryCapHits int     `json:"summary_cap_hits"`
	} `json:"detect"`
	// SMT aggregates the query-elimination pipeline across checkers. The
	// latency percentiles cover only queries the DPLL(T) solver actually
	// answered; cache hits and prefilter refutations never reach it.
	SMT struct {
		Queries         int              `json:"queries"`
		Solved          int              `json:"solved"`
		CacheHits       int              `json:"cache_hits"`
		PrefilterUnsat  int              `json:"prefilter_unsat"`
		EliminationRate float64          `json:"elimination_rate"`
		QueryNs         obs.HistSnapshot `json:"query_ns"`
	} `json:"smt"`
	Workers []workerDump `json:"workers,omitempty"`
	Metrics obs.Snapshot `json:"metrics"`
}

type checkerDump struct {
	Checker string       `json:"checker"`
	Stats   detect.Stats `json:"stats"`
}

type workerDump struct {
	Worker      int     `json:"worker"`
	Tasks       int     `json:"tasks"`
	BusyNs      int64   `json:"busy_ns"`
	Utilization float64 `json:"utilization"`
}

func buildStatsDump(a *core.Analysis, res detect.Results, rec *obs.Recorder) *statsDump {
	d := &statsDump{}
	d.Build.Functions = a.Sizes.Functions
	d.Build.IRInstrs = a.Sizes.Lines
	d.Build.SEGNodes = a.Sizes.SEGNodes
	d.Build.SEGEdges = a.Sizes.SEGEdges
	d.Build.CondNodes = a.Sizes.CondNodes
	d.Build.ParseNs = int64(a.Timings.Parse)
	d.Build.LowerNs = int64(a.Timings.Lower)
	d.Build.SSANs = int64(a.Timings.SSA)
	d.Build.ModRefNs = int64(a.Timings.ModRef)
	d.Build.TransfNs = int64(a.Timings.Transform)
	d.Build.PTASEGNs = int64(a.Timings.PTA + a.Timings.SEG)
	d.Build.TotalNs = int64(a.Timings.Total())
	d.Artifacts.Hits = a.Artifacts.Hits
	d.Artifacts.Misses = a.Artifacts.Misses
	d.Artifacts.Invalidated = a.Artifacts.Invalidated
	d.PTA = a.PTAStats
	for _, cs := range res.Checkers {
		d.Checkers = append(d.Checkers, checkerDump{Checker: cs.Checker, Stats: cs.Stats})
	}
	d.Detect.Workers = res.Workers
	d.Detect.WallNs = int64(res.Wall)
	d.Detect.Reports = len(res.Reports)
	d.Detect.SummaryHits = res.SummaryHits
	d.Detect.SummaryMisses = res.SummaryMisses
	if n := res.SummaryHits + res.SummaryMisses; n > 0 {
		d.Detect.SummaryHitRate = float64(res.SummaryHits) / float64(n)
	}
	d.Detect.SummaryCapHits = res.SummaryCapHits
	for _, cs := range res.Checkers {
		d.SMT.Queries += cs.Stats.SMTQueries
		d.SMT.Solved += cs.Stats.SMTSolved
		d.SMT.CacheHits += cs.Stats.SMTCacheHits
		d.SMT.PrefilterUnsat += cs.Stats.SMTPrefilterUnsat
	}
	if d.SMT.Queries > 0 {
		d.SMT.EliminationRate = float64(d.SMT.CacheHits+d.SMT.PrefilterUnsat) / float64(d.SMT.Queries)
	}
	snap := rec.Snapshot()
	d.SMT.QueryNs = snap.Histograms["smt.query_ns"]
	for _, ws := range res.WorkerStats {
		wd := workerDump{Worker: ws.Worker, Tasks: ws.Tasks, BusyNs: int64(ws.Busy)}
		if res.Wall > 0 {
			wd.Utilization = float64(ws.Busy) / float64(res.Wall)
		}
		d.Workers = append(d.Workers, wd)
	}
	d.Metrics = snap
	return d
}

func (d *statsDump) write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// writeFileWith creates path and streams fn's output into it, reporting
// the first error from either.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := fn(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// selectCheckers resolves a comma-separated -checkers value ("all", names,
// or aliases) into fresh specs, deduplicating aliases of the same checker.
func selectCheckers(sel string) ([]*checkers.Spec, error) {
	if strings.TrimSpace(sel) == "all" {
		return checkers.All(), nil
	}
	var specs []*checkers.Spec
	picked := make(map[string]bool)
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		sp, ok := checkers.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown checker %q (known: %s)", name, strings.Join(checkers.Names(), ", "))
		}
		if picked[sp.Name] { // "uaf,use-after-free" names one checker, not two
			continue
		}
		picked[sp.Name] = true
		specs = append(specs, sp)
	}
	return specs, nil
}

// readUnits loads each path as one named translation unit.
func readUnits(paths []string) []minic.NamedSource {
	var units []minic.NamedSource
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		units = append(units, minic.NamedSource{Name: path, Src: string(data)})
	}
	return units
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pinpoint:", err)
	os.Exit(2)
}
