package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
)

// runExplain implements `pinpoint explain`: run the analysis with
// provenance capture on and render each report's value-flow path
// interleaved with the source lines it traverses, so a report can be read
// top to bottom without opening an editor.
func runExplain(args []string) {
	fs := flag.NewFlagSet("pinpoint explain", flag.ExitOnError)
	sel := fs.String("checkers", "all", "comma-separated checker list, or 'all'")
	workers := fs.Int("workers", -1, "worker goroutines for build and detection")
	depth := fs.Int("depth", 6, "maximum nested call depth")
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "pinpoint explain: no input files")
		fs.Usage()
		os.Exit(2)
	}
	specs, err := selectCheckers(*sel)
	if err != nil {
		fatal(err)
	}

	units := readUnits(fs.Args())
	a, err := core.BuildFromSource(units, core.BuildOptions{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	res := a.CheckAll(specs, detect.Options{
		MaxCallDepth: *depth,
		Workers:      *workers,
		Witness:      true,
	})

	sources := make(map[string][]string, len(units))
	for _, u := range units {
		sources[u.Name] = strings.Split(u.Src, "\n")
	}
	for i, r := range res.Reports {
		if i > 0 {
			fmt.Println()
		}
		explainReport(os.Stdout, r, sources)
	}
	if len(res.Reports) > 0 {
		os.Exit(1)
	}
}

// explainReport renders one report: the normal one-line summary, the
// verdict provenance, then the hop-by-hop path with each hop's source line
// quoted under it.
func explainReport(w io.Writer, r detect.Report, sources map[string][]string) {
	fmt.Fprintln(w, r)
	p := r.Provenance
	if p == nil {
		return
	}
	fmt.Fprintf(w, "  verdict: %s", p.VerdictSource)
	if p.CondTerms > 0 {
		fmt.Fprintf(w, " (%d path-condition terms)", p.CondTerms)
	}
	fmt.Fprintln(w)
	for i, h := range p.Hops {
		loc := "<unknown>"
		if h.Pos.File != "" {
			loc = fmt.Sprintf("%s:%d", h.Pos.File, h.Pos.Line)
		}
		fmt.Fprintf(w, "  %2d. %-28s %s", i+1, loc, h.Node)
		if h.Fn != "" {
			fmt.Fprintf(w, "  in %s", h.Fn)
		}
		if h.Inst > 0 {
			fmt.Fprintf(w, "  [ctx %d]", h.Inst)
		}
		fmt.Fprintln(w)
		if line, ok := sourceLine(sources, h.Pos); ok {
			fmt.Fprintf(w, "      %4d | %s\n", h.Pos.Line, line)
		}
	}
	if len(r.Witness) > 0 {
		fmt.Fprintf(w, "  branches: %s\n", strings.Join(r.Witness, ", "))
	}
}

// sourceLine fetches the 1-based source line at pos, trimmed of trailing
// whitespace.
func sourceLine(sources map[string][]string, pos minic.Pos) (string, bool) {
	lines, ok := sources[pos.File]
	if !ok || pos.Line < 1 || pos.Line > len(lines) {
		return "", false
	}
	return strings.TrimRight(lines[pos.Line-1], " \t\r"), true
}
