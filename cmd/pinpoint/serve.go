package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/pinpoint"
	"repro/internal/server"
)

// runServe implements `pinpoint serve`: the analysis pipeline behind a
// persistent HTTP service (see internal/server for the endpoint surface).
func runServe(args []string) {
	fs := flag.NewFlagSet("pinpoint serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7345", "listen address")
	workers := fs.Int("workers", -1, "default build/detection worker-pool size (0/1 = sequential, negative = all CPUs)")
	maxInflight := fs.Int("max-inflight", -1, "max concurrently admitted /analyze requests (0/1 = one at a time, negative = all CPUs)")
	reqTimeout := fs.Duration("request-timeout", 2*time.Minute, "per-request deadline covering queueing and analysis (<=0 disables)")
	grace := fs.Duration("grace", 15*time.Second, "graceful-shutdown drain period for in-flight requests")
	logJSON := fs.Bool("log-json", false, "emit the structured request log as JSON lines instead of text")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	storeDir := fs.String("store-dir", "", "persist artifacts and SMT verdicts in this directory; a restarted server warm-loads instead of cold building (empty = memory only)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "in-memory residency bound for the persistent store's record cache (0 = store default, negative = unbounded)")
	maxTenants := fs.Int("max-tenants", 0, "max concurrently resident per-project sessions; beyond this the least-recently-used idle project is evicted, persisting to the store first (0 = 64, negative = unlimited)")
	tenantIdle := fs.Duration("tenant-idle", 0, "evict a project's session after this much idle time (0 = 15m, negative = never)")
	tenantInflight := fs.Int("tenant-inflight", 0, "max concurrently admitted requests per project under -max-inflight (0 = no per-project bound)")
	tsInterval := fs.Duration("ts-interval", 0, "flight recorder sampling interval: snapshot every metric into in-process ring buffers served by /v1/debug/timeseries (0 = off; auto-enabled at 10s when -slo-target is set)")
	tsRetention := fs.Duration("ts-retention", 0, "time span the flight recorder's ring buffers cover (0 = 10m)")
	sloTarget := fs.Duration("slo-target", 0, "analyze-latency objective: the -slo-p fraction of requests must finish within this duration; burn rates at /v1/debug/slo (0 = SLO tracking off)")
	sloP := fs.Float64("slo-p", 0, "SLO quantile (0 = 0.95)")
	sloFast := fs.Duration("slo-fast", 0, "fast burn-rate window (0 = 5m)")
	sloSlow := fs.Duration("slo-slow", 0, "slow burn-rate window (0 = 1h)")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "pinpoint serve: positional arguments are not accepted; programs are POSTed to /analyze")
		os.Exit(2)
	}

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("bad -log-level %q: %w", *logLevel, err))
	}
	hopts := &slog.HandlerOptions{Level: lvl}
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	} else {
		handler = slog.NewTextHandler(os.Stderr, hopts)
	}

	timeout := *reqTimeout
	if timeout <= 0 {
		timeout = -1 // Config: negative disables, zero means default.
	}
	rt, err := pinpoint.Open(pinpoint.Config{
		Workers:           *workers,
		Obs:               obs.New(),
		StoreDir:          *storeDir,
		StoreMaxBytes:     *storeMaxBytes,
		Addr:              *addr,
		MaxInFlight:       *maxInflight,
		RequestTimeout:    timeout,
		MaxTenants:        *maxTenants,
		TenantIdle:        *tenantIdle,
		TenantMaxInFlight: *tenantInflight,
		TSInterval:        *tsInterval,
		TSRetention:       *tsRetention,
		SLOTarget:         *sloTarget,
		SLOQuantile:       *sloP,
		SLOFastWindow:     *sloFast,
		SLOSlowWindow:     *sloSlow,
		Logger:            slog.New(handler),
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := rt.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pinpoint serve: store close:", err)
		}
	}()
	srv := server.New(rt.ServerConfig())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.ListenAndServe(ctx, *grace); err != nil {
		fatal(err)
	}
}
