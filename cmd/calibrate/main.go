// Command calibrate measures the layered baseline's Andersen propagation
// work and FSVFG edge counts per subject at a given scale. The numbers
// justify the timeout-budget defaults in internal/bench (the paper's
// ">135 KLoC times out" boundary): pick budgets between the work of the
// largest subject that must finish (gcc) and the smallest that must time
// out (git).
//
// Usage:
//
//	calibrate [-scale 15] [-max-kloc 600]
package main

import (
	"flag"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/pta"
	"repro/internal/vfg"
	"repro/internal/workload"
)

func main() {
	scale := flag.Int("scale", 15, "lines per paper-KLoC")
	maxKLoC := flag.Int("max-kloc", 600, "skip subjects larger than this (quadratic cost)")
	flag.Parse()

	fmt.Printf("%-14s %8s %14s %12s\n", "subject", "lines", "andersen-work", "fsvfg-edges")
	for _, s := range workload.Subjects {
		if s.PaperKLoC > *maxKLoC {
			fmt.Printf("%-14s %8s %14s %12s\n", s.Name, "-", "(skipped)", "-")
			continue
		}
		gen := workload.Generate(s, workload.GenOptions{Scale: *scale})
		m, err := baseline.BuildBaselineModule(gen.Units)
		if err != nil {
			fmt.Printf("%-14s error: %v\n", s.Name, err)
			continue
		}
		ap := pta.Andersen(m)
		g, gerr := vfg.Build(m, ap, vfg.Options{})
		edges := g.NumEdges()
		note := ""
		if gerr != nil {
			note = " (aborted)"
		}
		fmt.Printf("%-14s %8d %14d %12d%s\n", s.Name, gen.Lines, ap.Iterations, edges, note)
	}
}
