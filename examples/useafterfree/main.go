// Use-after-free tour: every structural variant the engine handles —
// intra-procedural flows, aliases, flows through the heap, frees hidden in
// callees, freed pointers escaping through returns, and double frees —
// plus the traps that separate a path-sensitive tool from a flood of
// warnings.
//
// Run with: go run ./examples/useafterfree
package main

import (
	"fmt"
	"log"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
)

const library = `
// --- real bugs -------------------------------------------------------

// 1. Alias: q and p name the same object.
void bug_alias() {
	int *p = malloc();
	int *q = p;
	free(p);
	int v = *q;
	report(v);
}

// 2. Heap flow: the dangling pointer is fetched back out of a container.
void bug_heap() {
	int *obj = malloc();
	int **cell = malloc();
	*cell = obj;
	free(obj);
	int *back = *cell;
	int v = *back;
	report(v);
}

// 3. The free hides two calls deep.
void drop_inner(int *x) { free(x); }
void drop(int *x) { drop_inner(x); }
void bug_deep_free() {
	int *p = malloc();
	drop(p);
	int v = *p;
	report(v);
}

// 4. A freed pointer escapes through a return value.
int *broken_alloc() {
	int *p = malloc();
	free(p);
	return p;
}
void bug_escaped() {
	int *q = broken_alloc();
	int v = *q;
	report(v);
}

// 5. Double free.
void bug_double() {
	int *p = malloc();
	free(p);
	free(p);
}

// 6. The dangling pointer travels through a struct field.
struct Session { int *token; int id; };
void bug_struct() {
	struct Session *s = malloc();
	int *tok = malloc();
	s->token = tok;
	free(tok);
	int *back = s->token;
	int v = *back;
	report(v);
}

// --- non-bugs the checker must stay silent on ------------------------

// Use before free: ordering matters.
void ok_use_then_free() {
	int *p = malloc();
	int v = *p;
	report(v);
	free(p);
}

// Field sensitivity: the freed pointer lives in field a, the used one in
// field b — distinct cells, no bug.
struct Pair { int *a; int *b; };
void ok_fields() {
	struct Pair *p = malloc();
	int *x = malloc();
	int *y = malloc();
	p->a = x;
	p->b = y;
	free(x);
	int v = *(p->b);
	report(v);
}

// Complementary guards: the use-path and the free-path cannot coexist.
void ok_exclusive(bool c) {
	int *p = malloc();
	if (c) { free(p); }
	if (!c) { int v = *p; report(v); }
}

// Arithmetically exclusive guards.
void ok_ranges(int x) {
	int *p = malloc();
	if (x > 10) { free(p); }
	if (x < 5) { int v = *p; report(v); }
}
`

func main() {
	analysis, err := core.BuildFromSource(
		[]minic.NamedSource{{Name: "uaf_tour.mc", Src: library}},
		core.BuildOptions{},
	)
	if err != nil {
		log.Fatal(err)
	}

	uaf, uafStats := analysis.Check(checkers.UseAfterFree(), detect.Options{})
	fmt.Printf("use-after-free checker: %d reports (expected 6 — one per bug_* function)\n", len(uaf))
	fmt.Printf("  %s\n", uafStats)
	for _, r := range uaf {
		fmt.Println("  ", r)
	}

	df, dfStats := analysis.Check(checkers.DoubleFree(), detect.Options{})
	fmt.Printf("\ndouble-free checker: %d report(s); %s\n", len(df), dfStats)
	for _, r := range df {
		fmt.Println("  ", r)
	}

	// The same program without path sensitivity: the traps fire.
	loose, _ := analysis.Check(checkers.UseAfterFree(), detect.Options{DisablePathSensitivity: true})
	fmt.Printf("\nwithout path sensitivity the checker reports %d (the ok_exclusive/ok_ranges traps appear)\n", len(loose))
}
