// Quickstart: analyze a small MiniC program with the full Pinpoint
// pipeline and print the use-after-free reports.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
)

const program = `
// A classic conditional use-after-free: both the free and the use are
// guarded by the same condition, so the bug is real (the path c=true
// executes both).
void process(bool unlink) {
	int *buf = malloc();
	*buf = 42;
	if (unlink) {
		free(buf);
	}
	if (unlink) {
		int v = *buf;     // <- use after free
		report(v);
	}
}

// The mirror image is NOT a bug: free and use are guarded by
// complementary conditions, so no execution does both. Pinpoint's SMT
// stage proves the path infeasible and stays silent.
void process_safe(bool unlink) {
	int *buf = malloc();
	*buf = 42;
	if (unlink) {
		free(buf);
	}
	if (!unlink) {
		int v = *buf;
		report(v);
	}
}
`

func main() {
	// 1. Build the analysis: parse -> lower -> SSA -> Mod/Ref ->
	//    connectors -> points-to -> SEG.
	analysis, err := core.BuildFromSource(
		[]minic.NamedSource{{Name: "quickstart.mc", Src: program}},
		core.BuildOptions{},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built SEGs for %d functions (%d nodes, %d edges) in %v\n",
		analysis.Sizes.Functions, analysis.Sizes.SEGNodes, analysis.Sizes.SEGEdges,
		analysis.Timings.Total())

	// 2. Run the use-after-free checker.
	reports, stats := analysis.Check(checkers.UseAfterFree(), detect.Options{})

	fmt.Printf("\n%d report(s); %s\n\n", len(reports), stats)
	for _, r := range reports {
		fmt.Println("  ", r)
	}
	if len(reports) == 1 {
		fmt.Println("\nexactly the real bug in process(); process_safe() was proven clean")
	}
}
