// Cross-function, cross-unit hunting: a miniature of the MySQL bug
// #87203 story from §5.2 of the paper — a use-after-free whose control
// flow spans many functions across several compilation units, the kind of
// bug per-unit tools cannot see at all.
//
// The freed pointer travels: allocated in the resource layer, cached in a
// session object on the heap, released by a cleanup helper three calls
// deep in another unit, and finally dereferenced by the statistics module.
//
// Run with: go run ./examples/crossfunction
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
)

var units = []minic.NamedSource{
	{Name: "resource.mc", Src: `
// Resource layer: allocation and the session cache.
int *acquire_buffer(int size) {
	int *buf = malloc();
	*buf = size;
	return buf;
}
void cache_in_session(int **session, int *buf) {
	*session = buf;
}
`},
	{Name: "cleanup.mc", Src: `
// Cleanup layer: the release path is three calls deep.
void release_low(int *b) { free(b); }
void release_mid(int *b) { release_low(b); }
void session_close(int **session) {
	int *cached = *session;
	release_mid(cached);
}
`},
	{Name: "stats.mc", Src: `
// Statistics module: reads the cached buffer after close — the bug.
void flush_stats(int **session) {
	int *buf = *session;
	int bytes = *buf;        // <- use after free
	emit_metric(bytes);
}
`},
	{Name: "main.mc", Src: `
void shutdown_path(int size) {
	int **session = malloc();
	int *buf = acquire_buffer(size);
	cache_in_session(session, buf);
	session_close(session);
	flush_stats(session);
}
`},
}

func main() {
	analysis, err := core.BuildFromSource(units, core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	reports, stats := analysis.Check(checkers.UseAfterFree(), detect.Options{})
	fmt.Printf("Pinpoint: %d report(s), deepest path %d contexts\n", len(reports), maxContexts(reports))
	for _, r := range reports {
		fmt.Println("  ", r)
	}
	fmt.Printf("  (%s)\n\n", stats)

	// The per-unit baselines cannot connect the dots.
	inferReports, _ := baseline.RunInferLike(analysis, checkers.UseAfterFree())
	csaReports, _ := baseline.RunCSALike(analysis, checkers.UseAfterFree())
	fmt.Printf("Infer-like (unit-confined): %d report(s)\n", len(inferReports))
	fmt.Printf("CSA-like   (unit-confined): %d report(s)\n", len(csaReports))
	fmt.Println("\nthe bug spans 4 units and 6 functions; only the whole-program, demand-driven search finds it")
}

func maxContexts(reports []detect.Report) int {
	m := 0
	for _, r := range reports {
		if r.Contexts > m {
			m = r.Contexts
		}
	}
	return m
}
