// Taint checking: the two source–sink properties of the paper's §4.1 —
// path traversal (CWE-23, user input reaching file operations) and data
// transmission (CWE-402, secrets reaching the network) — on a small
// program with helper indirection.
//
// Run with: go run ./examples/taintcheck
package main

import (
	"fmt"
	"log"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
)

const server = `
// Request handling: the client-controlled name flows through a helper
// into a file open — a path-traversal vulnerability.
int *normalize(int *raw) {
	int *p = to_path(raw);
	return p;
}
void handle_request() {
	int *name = user_input();
	int *path = normalize(name);
	open_file(path);
}

// Credentials flow to a remote log — a data-transmission vulnerability.
void login_audit() {
	int *pw = getpass();
	send_data(pw);
}

// A constant path is fine.
void load_config() {
	int *path = default_config_path();
	open_file(path);
}

// Reading a secret and using it locally is fine.
void check_secret() {
	int *pw = getpass();
	int ok = compare_local(pw);
	report(ok);
}
`

func main() {
	analysis, err := core.BuildFromSource(
		[]minic.NamedSource{{Name: "server.mc", Src: server}},
		core.BuildOptions{},
	)
	if err != nil {
		log.Fatal(err)
	}

	for _, spec := range []*checkers.Spec{
		checkers.PathTraversal(),
		checkers.DataTransmission(),
	} {
		reports, stats := analysis.Check(spec, detect.Options{})
		fmt.Printf("%s: %d report(s); %s\n", spec.Name, len(reports), stats)
		for _, r := range reports {
			fmt.Println("  ", r)
		}
		fmt.Println()
	}
	fmt.Println("load_config and check_secret stay clean: no tainted value reaches their sinks")
}
