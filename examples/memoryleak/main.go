// Memory-leak hunting: the "absence of a flow" property — an allocation
// must reach a free on every feasible path. This example shows the three
// verdicts the checker distinguishes: never freed, conditionally freed
// (with a leak-triggering witness), and clean-or-escaping.
//
// Run with: go run ./examples/memoryleak
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
)

const program = `
// Never freed: plainly leaks.
void forgot() {
	int *p = malloc();
	*p = 1;
}

// Freed only on the error path: leaks when ok succeeds.
void half_cleanup(bool failed) {
	int *buf = malloc();
	*buf = 0;
	if (failed) {
		free(buf);
	}
}

// Freed on both paths: clean.
void full_cleanup(bool failed) {
	int *buf = malloc();
	if (failed) { free(buf); } else { consume(*buf); free(buf); }
}

// The free conditions are vacuous (x>5 && x<3 never holds): effectively
// never freed, and only the SMT stage can tell.
void vacuous(int x) {
	int *p = malloc();
	if (x > 5) {
		if (x < 3) { free(p); }
	}
}

// Ownership transfer: returned allocations are the caller's problem.
int *factory() {
	int *p = malloc();
	*p = 42;
	return p;
}

// Ownership transfer: published into a global registry.
int *registry_g;
void publish() {
	int *p = malloc();
	registry_g = p;
}
`

func main() {
	analysis, err := core.BuildFromSource(
		[]minic.NamedSource{{Name: "leaks.mc", Src: program}},
		core.BuildOptions{},
	)
	if err != nil {
		log.Fatal(err)
	}
	reports, stats := detect.FindLeaks(analysis.Prog, detect.Options{})
	fmt.Printf("%s; %d leaks reported\n\n", stats, len(reports))
	for _, r := range reports {
		fmt.Println("  ", r)
		if len(r.Witness) > 0 {
			fmt.Printf("      leaks when: %s\n", strings.Join(r.Witness, ", "))
		}
	}
	fmt.Println("\nexpected: forgot (never-freed), half_cleanup (conditional), vacuous (never-freed in effect);")
	fmt.Println("full_cleanup is clean; factory and publish escape.")
}
