package main

import (
	"fmt"
	"testing"

	"repro/internal/pta"
	"repro/internal/smt"
)

// pta1 returns the linear-solver-off points-to options (the ablation of
// §3.1.1).
func pta1() pta.Options {
	return pta.Options{DisableLinearSolver: true}
}

// runSMTWorkload solves a batch of representative path-condition queries:
// branch correlations, arithmetic ranges, and equality chains.
func runSMTWorkload(b *testing.B) {
	b.Helper()
	// Feasible: a chain of implications with a consistent range.
	s := smt.NewSolver()
	tb := s.TB
	x := tb.IntVar("x")
	prev := tb.BoolVar("c0")
	s.Assert(prev)
	for i := 1; i < 12; i++ {
		c := tb.BoolVar(fmt.Sprintf("c%d", i))
		s.Assert(tb.Implies(prev, c))
		prev = c
	}
	s.Assert(tb.Implies(prev, tb.Gt(x, tb.Int(3))))
	s.Assert(tb.Lt(x, tb.Int(10)))
	if s.Check() != smt.Sat {
		b.Fatal("expected sat")
	}

	// Infeasible: complementary guards plus an arithmetic contradiction.
	s2 := smt.NewSolver()
	tb2 := s2.TB
	y := tb2.IntVar("y")
	g := tb2.BoolVar("g")
	s2.Assert(tb2.Eq(g, tb2.Gt(y, tb2.Int(0))))
	s2.Assert(g)
	s2.Assert(tb2.Lt(y, tb2.Int(0)))
	if s2.Check() != smt.Unsat {
		b.Fatal("expected unsat")
	}
}
