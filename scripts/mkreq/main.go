// Command mkreq packs MiniC source files into a POST /analyze request body
// (see internal/server.AnalyzeRequest). scripts/serve_smoke.sh uses it to
// build smoke-test requests without depending on jq or python.
//
// Usage: mkreq [-checkers all] [-witness] [-project id] file.mc... > request.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	sel := flag.String("checkers", "all", "comma-separated checker list, or 'all'")
	witness := flag.Bool("witness", false, "request per-report provenance")
	project := flag.String("project", "", "route the request to this tenant project (empty = default tenant, field omitted)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mkreq [-checkers list] [-witness] [-project id] file.mc...")
		os.Exit(2)
	}

	type unit struct {
		Name string `json:"name"`
		Src  string `json:"src"`
	}
	req := struct {
		Project  string   `json:"project,omitempty"`
		Units    []unit   `json:"units"`
		Checkers []string `json:"checkers,omitempty"`
		Witness  bool     `json:"witness,omitempty"`
	}{Project: *project, Witness: *witness}
	for _, name := range strings.Split(*sel, ",") {
		if name = strings.TrimSpace(name); name != "" {
			req.Checkers = append(req.Checkers, name)
		}
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mkreq:", err)
			os.Exit(1)
		}
		req.Units = append(req.Units, unit{Name: path, Src: string(data)})
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(req); err != nil {
		fmt.Fprintln(os.Stderr, "mkreq:", err)
		os.Exit(1)
	}
}
