#!/usr/bin/env bash
# Tier-1 verification in one command: formatting, vet, build, tests (with
# the race detector — the parallel detection scheduler's determinism tests
# run under it), and the examples suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l cmd internal examples ./*.go)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== examples"
for ex in quickstart useafterfree taintcheck crossfunction memoryleak; do
    echo "-- examples/$ex"
    go run "./examples/$ex" >/dev/null
done

echo "== pinpoint CLI smoke (trace + stats-json)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
# exit 1 just means bugs were reported — the examples contain some on purpose
go run ./cmd/pinpoint -checkers all -workers -1 \
    -trace "$tmpdir/trace.json" -stats-json "$tmpdir/stats.json" \
    examples/mc/*.mc >/dev/null || [ $? -eq 1 ]
for f in trace.json stats.json; do
    if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$tmpdir/$f"; then
        echo "$f is not valid JSON" >&2
        exit 1
    fi
done

echo "OK"
