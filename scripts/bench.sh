#!/usr/bin/env bash
# Detection worker-scaling benchmark: runs the internal/bench sweep on a
# synthetic subject and leaves a JSON snapshot (BENCH_detect.json) in the
# repo root for trend tracking. Extra arguments pass through to benchsnap
# (e.g. -scale 5 -workers 1,2,4,8).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== detection scaling benchmark"
go run ./cmd/benchsnap -out BENCH_detect.json "$@"
