#!/usr/bin/env bash
# Benchmarks: the detection worker-scaling sweep, the incremental-rebuild
# (cold vs warm one-function-edit) measurement, the SMT query-elimination
# (cache + prefilter on vs off) measurement, the persistent-store
# warm-restart measurement, the service-latency (cold/warm/edit/burst
# scenarios against an in-process server) measurement, and the cold-build
# worker-scaling sweep (the parse/lower/SSA/Mod-Ref/transform/PTA+SEG
# wavefront), on synthetic subjects. Leaves JSON snapshots
# (BENCH_detect.json, BENCH_incremental.json, BENCH_smt.json,
# BENCH_store.json, BENCH_serve.json, BENCH_build.json) in the repo root
# for trend tracking. Extra arguments pass through to benchsnap (e.g.
# -scale 5 -workers 1,2,4,8 -inc-scale 50 -smt-scale 50 -store-scale 50
# -serve-scale 50 -build-scale 50).
#
# Snapshots are written to a temp directory and only moved into the repo
# root once the whole run has succeeded, so a failed run can neither leave
# truncated JSON behind nor clobber the previous good snapshots.
set -euo pipefail
cd "$(dirname "$0")/.."

snapshots="BENCH_detect.json BENCH_incremental.json BENCH_smt.json BENCH_store.json BENCH_serve.json BENCH_build.json"

tmpdir="$(mktemp -d "${TMPDIR:-/tmp}/pinpoint-bench.XXXXXX")"
cleanup() {
  status=$?
  rm -rf "$tmpdir"
  if [ "$status" -ne 0 ]; then
    echo "bench.sh: FAILED (exit $status); no snapshot was written" >&2
  fi
  exit "$status"
}
trap cleanup EXIT

echo "== detection scaling + incremental rebuild + SMT elimination + store warm-restart + service latency + build scaling benchmarks"
go run ./cmd/benchsnap \
  -out "$tmpdir/BENCH_detect.json" \
  -inc-out "$tmpdir/BENCH_incremental.json" \
  -smt-out "$tmpdir/BENCH_smt.json" \
  -store-out "$tmpdir/BENCH_store.json" \
  -serve-out "$tmpdir/BENCH_serve.json" \
  -build-out "$tmpdir/BENCH_build.json" \
  "$@"

# Refuse to commit empty or invalid snapshots: every output must exist,
# be non-empty, and parse as JSON.
for f in $snapshots; do
  if [ ! -s "$tmpdir/$f" ]; then
    echo "bench.sh: $f is missing or empty" >&2
    exit 1
  fi
  if ! go run ./scripts/jsoncheck "$tmpdir/$f"; then
    echo "bench.sh: $f is not valid JSON" >&2
    exit 1
  fi
done
# Schema gates: a run that produced zero-duration latencies, NaN
# throughput, a ladder without its workers=1 baseline, or a parallel build
# that was slower (or nondeterministic) must not enter the history.
if ! go run ./scripts/jsoncheck -schema serve "$tmpdir/BENCH_serve.json"; then
  echo "bench.sh: BENCH_serve.json failed schema validation" >&2
  exit 1
fi
if ! go run ./scripts/jsoncheck -schema detect "$tmpdir/BENCH_detect.json"; then
  echo "bench.sh: BENCH_detect.json failed schema validation" >&2
  exit 1
fi
if ! go run ./scripts/jsoncheck -schema build "$tmpdir/BENCH_build.json"; then
  echo "bench.sh: BENCH_build.json failed schema validation" >&2
  exit 1
fi
# All snapshots validated: move them into place as one atomic commit set.
for f in $snapshots; do
  mv "$tmpdir/$f" "$f"
done
echo "== snapshots written: $snapshots"
