#!/usr/bin/env bash
# Benchmarks: the detection worker-scaling sweep, the incremental-rebuild
# (cold vs warm one-function-edit) measurement, and the SMT query-elimination
# (cache + prefilter on vs off) measurement, on synthetic subjects. Leaves
# JSON snapshots (BENCH_detect.json, BENCH_incremental.json, BENCH_smt.json)
# in the repo root for trend tracking. Extra arguments pass through to
# benchsnap (e.g. -scale 5 -workers 1,2,4,8 -inc-scale 50 -smt-scale 50).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== detection scaling + incremental rebuild + SMT elimination benchmarks"
go run ./cmd/benchsnap -out BENCH_detect.json -inc-out BENCH_incremental.json -smt-out BENCH_smt.json "$@"
