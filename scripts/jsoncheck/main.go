// Command jsoncheck validates that each argument file parses as a single
// JSON document. scripts/bench.sh and scripts/serve_smoke.sh use it to
// refuse truncated or malformed output without depending on tools outside
// the Go toolchain.
//
// With -schema serve, each file is additionally validated against the
// BENCH_serve.json shape: a non-empty scenarios array whose entries carry
// positive request counts, tenant counts, positive finite throughput, and
// a latency summary with no zero durations — a snapshot that "passes"
// with 0ms latencies or NaN throughput would poison the trend history
// silently. The multi-tenant pair is gated too: the tenants scenario must
// drive at least two tenants and out-throughput tenants-serial, the
// identical load serialized on one session.
//
// With -schema detect or -schema build, the file is validated as a
// worker-scaling ladder (BENCH_detect.json / BENCH_build.json): rows
// start at workers=1 with speedup 1, every row has positive wall time and
// finite positive speedup, and — when the snapshot was taken on a
// multi-core machine (gomaxprocs > 1) — the ladder must hold at least two
// rows including one at workers=gomaxprocs. The build schema additionally
// requires the determinism bit (`equivalent`: byte-identical reports and
// artifact fingerprints across worker counts) and, on multi-core, a
// strict speedup > 1 at the full-machine row.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

func main() {
	schema := flag.String("schema", "", `optional schema to validate against ("serve", "detect", "build")`)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: jsoncheck [-schema serve|detect|build] file.json...")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jsoncheck:", err)
			os.Exit(1)
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		var v any
		if err := dec.Decode(&v); err != nil {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		if dec.More() {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: trailing data after JSON document\n", path)
			os.Exit(1)
		}
		switch *schema {
		case "":
		case "serve":
			if err := checkServe(data); err != nil {
				fmt.Fprintf(os.Stderr, "jsoncheck: %s: %v\n", path, err)
				os.Exit(1)
			}
		case "detect":
			if err := checkLadder(data, false); err != nil {
				fmt.Fprintf(os.Stderr, "jsoncheck: %s: %v\n", path, err)
				os.Exit(1)
			}
		case "build":
			if err := checkLadder(data, true); err != nil {
				fmt.Fprintf(os.Stderr, "jsoncheck: %s: %v\n", path, err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "jsoncheck: unknown schema %q\n", *schema)
			os.Exit(2)
		}
	}
}

// ladderDoc mirrors the worker-scaling snapshots (BENCH_detect.json and
// BENCH_build.json). Pointers distinguish "absent" from "zero".
type ladderDoc struct {
	Subject    string `json:"subject"`
	Lines      int    `json:"lines"`
	Functions  *int   `json:"functions"`
	GOMAXPROCS *int   `json:"gomaxprocs"`
	Equivalent *bool  `json:"equivalent"`
	Rows       []struct {
		Workers *int     `json:"workers"`
		WallNs  *int64   `json:"wall_ns"`
		Speedup *float64 `json:"speedup"`
	} `json:"rows"`
}

// checkLadder validates a worker-scaling ladder snapshot. With build=true
// it applies the extra BENCH_build.json gates: the determinism bit must be
// present and true, function counts must be positive, and on a multi-core
// snapshot the full-machine row must show a strict speedup > 1.
func checkLadder(data []byte, build bool) error {
	kind := "detect"
	if build {
		kind = "build"
	}
	var doc ladderDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s schema: %w", kind, err)
	}
	if doc.Subject == "" || doc.Lines <= 0 {
		return fmt.Errorf("%s schema: missing subject/lines", kind)
	}
	if doc.GOMAXPROCS == nil || *doc.GOMAXPROCS < 1 {
		return fmt.Errorf("%s schema: missing gomaxprocs", kind)
	}
	if build {
		if doc.Functions == nil || *doc.Functions <= 0 {
			return fmt.Errorf("build schema: missing function count")
		}
		if doc.Equivalent == nil {
			return fmt.Errorf("build schema: missing equivalent field")
		}
		if !*doc.Equivalent {
			return fmt.Errorf("build schema: equivalent=false — output differed across worker counts")
		}
	}
	if len(doc.Rows) == 0 {
		return fmt.Errorf("%s schema: no rows", kind)
	}
	maxRowSpeedup := 0.0
	sawMaxProcs := false
	for i, r := range doc.Rows {
		if r.Workers == nil || *r.Workers < 1 {
			return fmt.Errorf("%s schema: row %d missing workers", kind, i)
		}
		if r.WallNs == nil || *r.WallNs <= 0 {
			return fmt.Errorf("%s schema: row %d (workers=%d) missing wall_ns", kind, i, *r.Workers)
		}
		if r.Speedup == nil || *r.Speedup <= 0 ||
			math.IsNaN(*r.Speedup) || math.IsInf(*r.Speedup, 0) {
			return fmt.Errorf("%s schema: row %d (workers=%d) has bad speedup", kind, i, *r.Workers)
		}
		if i == 0 {
			if *r.Workers != 1 {
				return fmt.Errorf("%s schema: first row is workers=%d, want the workers=1 baseline", kind, *r.Workers)
			}
			if *r.Speedup != 1 {
				return fmt.Errorf("%s schema: baseline row speedup = %g, want 1", kind, *r.Speedup)
			}
		}
		if *r.Workers == *doc.GOMAXPROCS {
			sawMaxProcs = true
			if *r.Speedup > maxRowSpeedup {
				maxRowSpeedup = *r.Speedup
			}
		}
	}
	// A snapshot from a multi-core machine must actually exercise the
	// parallel path: at least two ladder rungs, one at the full machine
	// width, and — for the build pipeline — a real speedup there.
	if *doc.GOMAXPROCS > 1 {
		if len(doc.Rows) < 2 {
			return fmt.Errorf("%s schema: gomaxprocs=%d but only %d row — ladder must include a parallel rung", kind, *doc.GOMAXPROCS, len(doc.Rows))
		}
		if !sawMaxProcs {
			return fmt.Errorf("%s schema: no row at workers=gomaxprocs=%d", kind, *doc.GOMAXPROCS)
		}
		if build && maxRowSpeedup <= 1 {
			return fmt.Errorf("build schema: speedup %.2fx at workers=%d, want > 1 on a multi-core machine", maxRowSpeedup, *doc.GOMAXPROCS)
		}
	}
	return nil
}

// serveDoc mirrors the parts of benchsnap's serve snapshot the gate
// depends on. Pointers distinguish "absent" from "zero".
type serveDoc struct {
	Subject   string `json:"subject"`
	Lines     int    `json:"lines"`
	Scenarios []struct {
		Name       string   `json:"name"`
		Requests   int      `json:"requests"`
		Errors     int      `json:"errors"`
		Tenants    *int     `json:"tenants"`
		Throughput *float64 `json:"throughput"`
		LatencyNs  struct {
			Min *int64 `json:"min"`
			P50 *int64 `json:"p50"`
			P95 *int64 `json:"p95"`
			P99 *int64 `json:"p99"`
			Max *int64 `json:"max"`
		} `json:"latency_ns"`
	} `json:"scenarios"`
}

func checkServe(data []byte) error {
	var doc serveDoc
	// A NaN or Infinity token is not valid JSON, so a writer that smuggled
	// one in fails this decode even though the schema fields are floats.
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("serve schema: %w", err)
	}
	if doc.Subject == "" || doc.Lines <= 0 {
		return fmt.Errorf("serve schema: missing subject/lines")
	}
	if len(doc.Scenarios) < 3 {
		return fmt.Errorf("serve schema: %d scenarios, want at least cold/warm-edit/burst", len(doc.Scenarios))
	}
	var serialTP, tenantTP float64
	for _, sc := range doc.Scenarios {
		if sc.Name == "" {
			return fmt.Errorf("serve schema: scenario with no name")
		}
		if sc.Requests <= 0 {
			return fmt.Errorf("serve schema: scenario %q has no requests", sc.Name)
		}
		if sc.Tenants == nil || *sc.Tenants < 1 {
			return fmt.Errorf("serve schema: scenario %q missing tenant count", sc.Name)
		}
		if sc.Throughput == nil || *sc.Throughput <= 0 ||
			math.IsNaN(*sc.Throughput) || math.IsInf(*sc.Throughput, 0) {
			return fmt.Errorf("serve schema: scenario %q has bad throughput", sc.Name)
		}
		switch sc.Name {
		case "tenants-serial":
			serialTP = *sc.Throughput
		case "tenants":
			if *sc.Tenants < 2 {
				return fmt.Errorf("serve schema: tenants scenario drove %d tenants, want >= 2", *sc.Tenants)
			}
			tenantTP = *sc.Throughput
		}
		l := sc.LatencyNs
		for _, f := range []struct {
			name string
			v    *int64
		}{{"min", l.Min}, {"p50", l.P50}, {"p95", l.P95}, {"p99", l.P99}, {"max", l.Max}} {
			if f.v == nil || *f.v <= 0 {
				return fmt.Errorf("serve schema: scenario %q latency_ns.%s missing or zero", sc.Name, f.name)
			}
		}
		if !(*l.Min <= *l.P50 && *l.P50 <= *l.P95 && *l.P95 <= *l.P99 && *l.P99 <= *l.Max) {
			return fmt.Errorf("serve schema: scenario %q latency percentiles not monotone", sc.Name)
		}
	}
	// The multi-tenant acceptance gate: identical load split across two
	// projects must beat the same load serialized on one session. A
	// snapshot where it doesn't means the tenant layer stopped buying
	// concurrency.
	if serialTP == 0 || tenantTP == 0 {
		return fmt.Errorf("serve schema: missing tenants/tenants-serial scenario pair")
	}
	if tenantTP <= serialTP {
		return fmt.Errorf("serve schema: cross-tenant throughput %.2f req/s not above the serialized baseline %.2f req/s", tenantTP, serialTP)
	}
	return nil
}
