// Command jsoncheck validates that each argument file parses as a single
// JSON document. scripts/bench.sh and scripts/serve_smoke.sh use it to
// refuse truncated or malformed output without depending on tools outside
// the Go toolchain.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: jsoncheck file.json...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jsoncheck:", err)
			os.Exit(1)
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		var v any
		if err := dec.Decode(&v); err != nil {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		if dec.More() {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: trailing data after JSON document\n", path)
			os.Exit(1)
		}
	}
}
