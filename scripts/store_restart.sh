#!/usr/bin/env bash
# Tenant round trip for the persistent store: start `pinpoint serve` with a
# -store-dir and -max-tenants 1, analyze two projects so admitting each one
# evicts (and persists) the other, re-admit the first and assert it
# warm-loaded from its namespaced store slice, then SIGTERM the server,
# restart it on the same directory, analyze both projects again, and assert
# (1) the servers logged the store warm-load line, (2) every re-admission
# rebuilt zero artifacts (artifactStoreHits > 0, artifactMisses == 0), and
# (3) each project's reports are byte-identical across eviction and
# restart. Used by CI's store-restart and tenant-evict jobs and runnable
# locally.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${PINPOINT_STORE_ADDR:-127.0.0.1:7432}"
BASE="http://$ADDR"
tmpdir="$(mktemp -d "${TMPDIR:-/tmp}/pinpoint-store.XXXXXX")"
server_pid=""
cleanup() {
  status=$?
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$tmpdir"
  if [ "$status" -ne 0 ]; then
    echo "store_restart.sh: FAILED (exit $status)" >&2
    for log in "$tmpdir"/serve*.log; do
      [ -f "$log" ] && { echo "== $log" >&2; cat "$log" >&2; }
    done
  fi
  exit "$status"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmpdir/pinpoint" ./cmd/pinpoint
# Two projects with different unit sets, so identical reports could not
# come from one shared (un-namespaced) store slice by accident.
go run ./scripts/mkreq -checkers all -project alpha examples/mc/*.mc >"$tmpdir/req_alpha.json"
mapfile -t subset < <(ls examples/mc/*.mc | head -n 2)
go run ./scripts/mkreq -checkers all -project beta "${subset[@]}" >"$tmpdir/req_beta.json"

start_server() {
  local log="$1"
  # -max-tenants 1: admitting any project evicts the resident one, which
  # persists its artifacts before being dropped. -tenant-idle -1s disables
  # the idle sweeper so the only evictions are the ones this script forces.
  "$tmpdir/pinpoint" serve -addr "$ADDR" -log-json \
    -store-dir "$tmpdir/store" -max-tenants 1 -tenant-idle -1s >"$log" 2>&1 &
  server_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/v1/readyz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
      echo "store_restart.sh: server exited during startup" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "store_restart.sh: server never became ready" >&2
  exit 1
}

stop_server() {
  kill -TERM "$server_pid"
  wait "$server_pid"
  server_pid=""
}

analyze() {
  local project="$1" out="$2"
  curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$tmpdir/req_$project.json" "$BASE/v1/analyze" >"$out"
  go run ./scripts/jsoncheck "$out"
  if ! grep -q "\"project\": \"$project\"" "$out"; then
    echo "store_restart.sh: $out did not echo project=$project" >&2
    exit 1
  fi
}

assert_cold() {
  if ! grep -q '"artifactStoreHits": 0' "$1"; then
    echo "store_restart.sh: cold run $1 reported store hits" >&2
    exit 1
  fi
}

assert_warm() {
  if grep -q '"artifactStoreHits": 0' "$1"; then
    echo "store_restart.sh: $1 store-loaded nothing" >&2
    exit 1
  fi
  if ! grep -q '"artifactMisses": 0' "$1"; then
    echo "store_restart.sh: $1 rebuilt artifacts instead of warm-loading" >&2
    exit 1
  fi
}

assert_same_reports() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))["reports"]
b = json.load(open(sys.argv[2]))["reports"]
ja, jb = json.dumps(a, sort_keys=True), json.dumps(b, sort_keys=True)
if ja != jb:
    sys.exit("reports differ: %s vs %s" % (sys.argv[1], sys.argv[2]))
if not a:
    sys.exit("no reports in %s; the round trip proved nothing" % sys.argv[1])
EOF
}

echo "== first run: populate $tmpdir/store (cap 1, each admission evicts)"
start_server "$tmpdir/serve1.log"
analyze alpha "$tmpdir/alpha1.json"   # evicts the default tenant
assert_cold "$tmpdir/alpha1.json"
analyze beta "$tmpdir/beta1.json"     # evicts alpha, persisting it
assert_cold "$tmpdir/beta1.json"

echo "== re-admit alpha without a restart (eviction round trip)"
analyze alpha "$tmpdir/alpha2.json"   # evicts beta; alpha warm-loads
assert_warm "$tmpdir/alpha2.json"
assert_same_reports "$tmpdir/alpha1.json" "$tmpdir/alpha2.json"
if ! grep -q 'store warm load' "$tmpdir/serve1.log"; then
  echo "store_restart.sh: re-admission never logged the warm-load line" >&2
  exit 1
fi

echo "== /v1/debug/tenants (only alpha resident under cap 1)"
curl -fsS "$BASE/v1/debug/tenants" >"$tmpdir/tenants.json"
go run ./scripts/jsoncheck "$tmpdir/tenants.json"
if ! grep -q '"project": "alpha"' "$tmpdir/tenants.json"; then
  echo "store_restart.sh: /v1/debug/tenants lost project alpha" >&2
  exit 1
fi
if grep -q '"project": "beta"' "$tmpdir/tenants.json"; then
  echo "store_restart.sh: beta still resident despite -max-tenants 1" >&2
  exit 1
fi

stop_server
if [ ! -s "$tmpdir/store/store.log" ]; then
  echo "store_restart.sh: no store log was written" >&2
  exit 1
fi

echo "== second run: restart on the same -store-dir, both projects warm-load"
start_server "$tmpdir/serve2.log"
analyze alpha "$tmpdir/alpha3.json"
assert_warm "$tmpdir/alpha3.json"
assert_same_reports "$tmpdir/alpha1.json" "$tmpdir/alpha3.json"
analyze beta "$tmpdir/beta2.json"
assert_warm "$tmpdir/beta2.json"
assert_same_reports "$tmpdir/beta1.json" "$tmpdir/beta2.json"
if ! grep -q 'store warm load' "$tmpdir/serve2.log"; then
  echo "store_restart.sh: restarted server never logged the warm-load line" >&2
  exit 1
fi

echo "== /v1/debug/store"
curl -fsS "$BASE/v1/debug/store" >"$tmpdir/store.json"
go run ./scripts/jsoncheck "$tmpdir/store.json"
if ! grep -q '"persistent": true' "$tmpdir/store.json"; then
  echo "store_restart.sh: /v1/debug/store does not report a persistent store" >&2
  exit 1
fi

stop_server
echo "store_restart.sh: OK"
