#!/usr/bin/env bash
# Warm-restart round trip for the persistent store: start `pinpoint serve`
# with a -store-dir, analyze the examples, SIGTERM the server, restart it on
# the same directory, analyze again, and assert (1) the restarted server
# logged the store warm-load line, (2) its response rebuilt zero artifacts
# (artifactStoreHits > 0, artifactMisses == 0), and (3) the two reports
# arrays are byte-identical. Used by CI's store-restart job and runnable
# locally.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${PINPOINT_STORE_ADDR:-127.0.0.1:7432}"
BASE="http://$ADDR"
tmpdir="$(mktemp -d "${TMPDIR:-/tmp}/pinpoint-store.XXXXXX")"
server_pid=""
cleanup() {
  status=$?
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$tmpdir"
  if [ "$status" -ne 0 ]; then
    echo "store_restart.sh: FAILED (exit $status)" >&2
    for log in "$tmpdir"/serve*.log; do
      [ -f "$log" ] && { echo "== $log" >&2; cat "$log" >&2; }
    done
  fi
  exit "$status"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmpdir/pinpoint" ./cmd/pinpoint
go run ./scripts/mkreq -checkers all examples/mc/*.mc >"$tmpdir/req.json"

start_server() {
  local log="$1"
  "$tmpdir/pinpoint" serve -addr "$ADDR" -log-json \
    -store-dir "$tmpdir/store" >"$log" 2>&1 &
  server_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/v1/readyz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
      echo "store_restart.sh: server exited during startup" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "store_restart.sh: server never became ready" >&2
  exit 1
}

stop_server() {
  kill -TERM "$server_pid"
  wait "$server_pid"
  server_pid=""
}

echo "== first run: populate $tmpdir/store"
start_server "$tmpdir/serve1.log"
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary @"$tmpdir/req.json" "$BASE/v1/analyze" >"$tmpdir/resp1.json"
go run ./scripts/jsoncheck "$tmpdir/resp1.json"
if ! grep -q '"artifactStoreHits": 0' "$tmpdir/resp1.json"; then
  echo "store_restart.sh: cold run reported store hits" >&2
  exit 1
fi
stop_server
if [ ! -s "$tmpdir/store/store.log" ]; then
  echo "store_restart.sh: no store log was written" >&2
  exit 1
fi

echo "== second run: restart on the same -store-dir"
start_server "$tmpdir/serve2.log"
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary @"$tmpdir/req.json" "$BASE/v1/analyze" >"$tmpdir/resp2.json"
go run ./scripts/jsoncheck "$tmpdir/resp2.json"

echo "== assert warm load"
if ! grep -q 'store warm load' "$tmpdir/serve2.log"; then
  echo "store_restart.sh: restarted server never logged the warm-load line" >&2
  exit 1
fi
if grep -q '"artifactStoreHits": 0' "$tmpdir/resp2.json"; then
  echo "store_restart.sh: restarted server store-loaded nothing" >&2
  exit 1
fi
if ! grep -q '"artifactMisses": 0' "$tmpdir/resp2.json"; then
  echo "store_restart.sh: restarted server rebuilt artifacts" >&2
  exit 1
fi

echo "== assert byte-identical reports"
python3 - "$tmpdir/resp1.json" "$tmpdir/resp2.json" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))["reports"]
b = json.load(open(sys.argv[2]))["reports"]
ja, jb = json.dumps(a, sort_keys=True), json.dumps(b, sort_keys=True)
if ja != jb:
    sys.exit("reports differ between cold and restarted server")
if not a:
    sys.exit("no reports at all; the round trip proved nothing")
EOF

echo "== /v1/debug/store"
curl -fsS "$BASE/v1/debug/store" >"$tmpdir/store.json"
go run ./scripts/jsoncheck "$tmpdir/store.json"
if ! grep -q '"persistent": true' "$tmpdir/store.json"; then
  echo "store_restart.sh: /v1/debug/store does not report a persistent store" >&2
  exit 1
fi

stop_server
echo "store_restart.sh: OK"
