#!/usr/bin/env bash
# Load gate for the analysis service: start `pinpoint serve`, run a short
# pinpointbench closed-loop burst against it, and assert zero errors and a
# non-empty latency distribution. Leaves the per-request CSV and the JSON
# summary in $PINPOINT_LOAD_OUT (default: a temp dir) for artifact upload.
# Used by CI's serve-load job and runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${PINPOINT_LOAD_ADDR:-127.0.0.1:7432}"
BASE="http://$ADDR"
REQUESTS="${PINPOINT_LOAD_REQUESTS:-12}"
SCALE="${PINPOINT_LOAD_SCALE:-10}"
outdir="${PINPOINT_LOAD_OUT:-}"
tmpdir="$(mktemp -d "${TMPDIR:-/tmp}/pinpoint-load.XXXXXX")"
[ -n "$outdir" ] || outdir="$tmpdir"
mkdir -p "$outdir"
server_pid=""
cleanup() {
  status=$?
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$tmpdir"
  if [ "$status" -ne 0 ]; then
    echo "serve_load.sh: FAILED (exit $status)" >&2
  fi
  exit "$status"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmpdir/pinpoint" ./cmd/pinpoint
go build -o "$tmpdir/pinpointbench" ./cmd/pinpointbench

echo "== start serve on $ADDR"
"$tmpdir/pinpoint" serve -addr "$ADDR" -log-json >"$tmpdir/serve.log" 2>&1 &
server_pid=$!
ready=""
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then ready=1; break; fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "serve_load.sh: server exited during startup" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$ready" ]; then
  echo "serve_load.sh: server never became ready" >&2
  cat "$tmpdir/serve.log" >&2
  exit 1
fi

SLO_TARGET="${PINPOINT_LOAD_SLO:-30s}"
MAX_BURN="${PINPOINT_LOAD_MAX_BURN:-1}"
echo "== pinpointbench burst ($REQUESTS requests, scale $SCALE, SLO p95<=$SLO_TARGET, max burn $MAX_BURN)"
# pinpointbench exits nonzero if any request failed, or if the run's SLO
# burn rate exceeds -slo-max-burn — so this line is both the zero-errors
# assertion and the latency-objective gate.
"$tmpdir/pinpointbench" -addr "$BASE" -scenario burst \
  -requests "$REQUESTS" -scale "$SCALE" -duration 60s \
  -slo-target "$SLO_TARGET" -slo-p 0.95 -slo-max-burn "$MAX_BURN" \
  -csv "$outdir/load_samples.csv" -json "$outdir/load_summary.json"

echo "== validate output"
go run ./scripts/jsoncheck "$outdir/load_summary.json"
# Non-empty latency: the summary must carry a positive p50.
p50="$(grep -A8 '"latencyNs"' "$outdir/load_summary.json" | awk -F': ' '/"p50"/ { gsub(/,/, "", $2); print $2; exit }')"
if [ -z "$p50" ] || [ "$p50" -le 0 ]; then
  echo "serve_load.sh: latency p50 missing or zero (got '${p50:-<absent>}')" >&2
  exit 1
fi
echo "   p50 = ${p50}ns"
rows="$(wc -l <"$outdir/load_samples.csv")"
if [ "$rows" -le 1 ]; then
  echo "serve_load.sh: sample CSV has no data rows" >&2
  exit 1
fi
echo "   $((rows - 1)) sample rows"
# The SLO evaluation must be present in the JSON summary (the burn-rate
# gate above already enforced its value).
if ! grep -q '"burnRate"' "$outdir/load_summary.json"; then
  echo "serve_load.sh: summary JSON carries no SLO burn rate" >&2
  exit 1
fi

echo "== graceful shutdown"
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
echo "serve_load.sh: OK"
