#!/usr/bin/env bash
# Smoke test for the analysis service: start `pinpoint serve`, wait for
# readiness, POST every example program, and assert that the reports come
# back and the /metrics exposition carries non-zero detect.* counters.
# Used by CI's serve-smoke job and runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${PINPOINT_SMOKE_ADDR:-127.0.0.1:7431}"
BASE="http://$ADDR"
tmpdir="$(mktemp -d "${TMPDIR:-/tmp}/pinpoint-smoke.XXXXXX")"
server_pid=""
cleanup() {
  status=$?
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$tmpdir"
  if [ "$status" -ne 0 ]; then
    echo "serve_smoke.sh: FAILED (exit $status)" >&2
    [ -f "$tmpdir/serve.log" ] || true
  fi
  exit "$status"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmpdir/pinpoint" ./cmd/pinpoint

echo "== start serve on $ADDR (flight recorder + SLO on)"
"$tmpdir/pinpoint" serve -addr "$ADDR" -log-json \
  -ts-interval 200ms -ts-retention 1m \
  -slo-target 30s -slo-p 0.9 -slo-fast 30s -slo-slow 2m \
  >"$tmpdir/serve.log" 2>&1 &
server_pid=$!

# Wait for readiness (the binary is prebuilt, so this is fast).
ready=""
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then ready=1; break; fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "serve_smoke.sh: server exited during startup" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$ready" ]; then
  echo "serve_smoke.sh: server never became ready" >&2
  cat "$tmpdir/serve.log" >&2
  exit 1
fi

echo "== POST /analyze (all examples, witness on)"
go run ./scripts/mkreq -checkers all -witness examples/mc/*.mc >"$tmpdir/req.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary @"$tmpdir/req.json" "$BASE/analyze" >"$tmpdir/resp.json"
go run ./scripts/jsoncheck "$tmpdir/resp.json"
grep -q '"traceId"' "$tmpdir/resp.json"
grep -q '"provenance"' "$tmpdir/resp.json"
if grep -q '"reports": \[\]' "$tmpdir/resp.json"; then
  echo "serve_smoke.sh: examples produced no reports" >&2
  exit 1
fi

echo "== per-request timing breakdown (via /v1/analyze)"
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary @"$tmpdir/req.json" "$BASE/v1/analyze" >"$tmpdir/resp_v1.json"
go run ./scripts/jsoncheck "$tmpdir/resp_v1.json"
for field in totalNs decodeNs queueWaitNs sessionWaitNs buildNs parseNs \
             storeLoadNs storeSaveNs detectNs smtNs otherNs; do
  if ! grep -q "\"$field\"" "$tmpdir/resp_v1.json"; then
    echo "serve_smoke.sh: timing field $field missing from /v1/analyze response" >&2
    exit 1
  fi
done
# The handler measured real work, so the total must be positive.
if grep -q '"totalNs": 0,' "$tmpdir/resp_v1.json"; then
  echo "serve_smoke.sh: timing.totalNs is zero" >&2
  exit 1
fi
# Byte-compat: a request with no project field gets a response with no
# project field.
if grep -q '"project"' "$tmpdir/resp_v1.json"; then
  echo "serve_smoke.sh: project key leaked into a project-less response" >&2
  exit 1
fi

echo "== POST /v1/analyze (tenant project=alpha)"
go run ./scripts/mkreq -checkers all -project alpha examples/mc/*.mc >"$tmpdir/req_alpha.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary @"$tmpdir/req_alpha.json" "$BASE/v1/analyze" >"$tmpdir/resp_alpha.json"
go run ./scripts/jsoncheck "$tmpdir/resp_alpha.json"
if ! grep -q '"project": "alpha"' "$tmpdir/resp_alpha.json"; then
  echo "serve_smoke.sh: response did not echo project=alpha" >&2
  exit 1
fi

echo "== scrape /metrics"
curl -fsS "$BASE/metrics" >"$tmpdir/metrics.txt"
for metric in pinpoint_detect_reports pinpoint_detect_tasks pinpoint_server_requests; do
  value="$(awk -v m="$metric" '$1 == m { print $2 }' "$tmpdir/metrics.txt")"
  if [ -z "$value" ] || [ "$value" = "0" ]; then
    echo "serve_smoke.sh: metric $metric missing or zero (got '${value:-<absent>}')" >&2
    exit 1
  fi
  echo "   $metric = $value"
done
# Phase-attributed histograms are labeled per (phase, tenant); assert the
# family carries both tenants' series for a few phases.
for phase in build detect smt; do
  for tenant in default alpha; do
    if ! grep -q "pinpoint_server_phase_ns_count{phase=\"$phase\",tenant=\"$tenant\"}" "$tmpdir/metrics.txt"; then
      echo "serve_smoke.sh: phase histogram for phase=$phase tenant=$tenant missing from /metrics" >&2
      exit 1
    fi
  done
done
# The tenant layer's own occupancy metrics: two resident sessions.
resident="$(awk '$1 == "pinpoint_tenant_resident" { print $2 }' "$tmpdir/metrics.txt")"
if [ "$resident" != "2" ]; then
  echo "serve_smoke.sh: pinpoint_tenant_resident = '${resident:-<absent>}', want 2" >&2
  exit 1
fi
for gauge in pinpoint_server_queue_depth pinpoint_server_inflight; do
  if ! grep -q "^# TYPE $gauge gauge" "$tmpdir/metrics.txt"; then
    echo "serve_smoke.sh: gauge $gauge missing from /metrics" >&2
    exit 1
  fi
done

echo "== debug endpoints"
curl -fsS "$BASE/v1/debug/tenants" >"$tmpdir/tenants.json"
go run ./scripts/jsoncheck "$tmpdir/tenants.json"
for project in default alpha; do
  if ! grep -q "\"project\": \"$project\"" "$tmpdir/tenants.json"; then
    echo "serve_smoke.sh: /v1/debug/tenants missing project $project" >&2
    exit 1
  fi
done
curl -fsS "$BASE/debug/tenants" | go run ./scripts/jsoncheck /dev/stdin
curl -fsS "$BASE/debug/session" | go run ./scripts/jsoncheck /dev/stdin
curl -fsS "$BASE/debug/inflight" | go run ./scripts/jsoncheck /dev/stdin
curl -fsS "$BASE/healthz" >/dev/null

echo "== flight recorder: /v1/debug/timeseries"
# The sampler ticks every 200ms; poll until the phase histograms have at
# least two retained points (two distinct sample timestamps).
ts_ok=""
for _ in $(seq 1 50); do
  curl -fsS "$BASE/v1/debug/timeseries?metric=server.phase_ns" >"$tmpdir/timeseries.json"
  points="$(grep -o '"t":' "$tmpdir/timeseries.json" | wc -l)"
  if grep -q '"enabled": true' "$tmpdir/timeseries.json" && [ "$points" -ge 2 ]; then
    ts_ok=1; break
  fi
  sleep 0.2
done
if [ -z "$ts_ok" ]; then
  echo "serve_smoke.sh: /v1/debug/timeseries never accumulated >=2 points for server.phase_ns" >&2
  cat "$tmpdir/timeseries.json" >&2
  exit 1
fi
go run ./scripts/jsoncheck "$tmpdir/timeseries.json"
grep -q '"base": "server.phase_ns"' "$tmpdir/timeseries.json"
echo "   $points ring points for server.phase_ns"

echo "== flight recorder: /v1/debug/costs"
curl -fsS "$BASE/v1/debug/costs" >"$tmpdir/costs.json"
go run ./scripts/jsoncheck "$tmpdir/costs.json"
for project in default alpha; do
  if ! grep -q "\"project\": \"$project\"" "$tmpdir/costs.json"; then
    echo "serve_smoke.sh: /v1/debug/costs missing project $project" >&2
    exit 1
  fi
done
if ! grep -q '"cpuNs": [1-9]' "$tmpdir/costs.json"; then
  echo "serve_smoke.sh: /v1/debug/costs attributes no CPU to any tenant" >&2
  exit 1
fi

echo "== flight recorder: /v1/debug/slo"
curl -fsS "$BASE/v1/debug/slo" >"$tmpdir/slo.json"
go run ./scripts/jsoncheck "$tmpdir/slo.json"
grep -q '"enabled": true' "$tmpdir/slo.json"
grep -q '"burnRate"' "$tmpdir/slo.json"
if ! grep -q '"requests": [1-9]' "$tmpdir/slo.json"; then
  echo "serve_smoke.sh: /v1/debug/slo counted no analyze requests" >&2
  exit 1
fi
# The burn gauges ride /metrics once the sampler hook has run.
curl -fsS "$BASE/metrics" >"$tmpdir/metrics2.txt"
grep -q 'pinpoint_server_slo_burn_rate{window="fast"}' "$tmpdir/metrics2.txt"

echo "== graceful shutdown"
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
echo "serve_smoke.sh: OK"
