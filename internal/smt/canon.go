package smt

// Canonical fingerprinting of asserted formula sequences, the key of the
// SMT verdict cache. Two candidates that instantiate the same guards in
// different calling contexts build alpha-variants of the same term DAG
// (variable names embed instance numbers, e.g. "i3.v17"), so the
// fingerprint alpha-normalizes variable names: each TVar is replaced by
// its first-occurrence index in a deterministic traversal of the asserted
// sequence. Shared subterms are serialized once and back-referenced by
// emission number, so the fingerprint is linear in the DAG (not the tree).
//
// Two keys are produced:
//
//   - Exact preserves the assertion order and the argument order of every
//     term. Equal Exact keys imply the two queries are variable-renamings
//     of one another, which makes the whole solver run isomorphic: CNF
//     variables are allocated in traversal order, the theory layer visits
//     atoms in SAT-variable order, and branching breaks activity ties in
//     variable-creation order. A cached verdict AND a cached model can
//     therefore be replayed, reproducing a fresh solve bit-for-bit.
//
//   - Shape additionally sorts the arguments of commutative operators
//     (and/or/=/+/*) into a canonical order, merging queries that differ
//     only by operand permutation. Solver runs for shape-equal queries
//     are NOT isomorphic, so shape entries may only carry verdicts whose
//     replay cannot change observable output: Unsat (the solver proves
//     absence of any model passing the same theory filter, a property
//     invariant under operand permutation). Sat models and Unknown
//     verdicts are never served from the shape tier.
//
// Shape normalization orders commutative siblings by a per-subtree
// "pattern hash" — a hash of the subtree serialized with subtree-local
// variable numbering — so alpha-variant siblings compare equal and land
// in a stable order. Siblings with identical patterns that share
// variables with each other can still serialize differently under
// permutation (full commutative canonicalization is graph-isomorphism
// hard); such collisions only cost a cache miss, never a wrong hit.

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Canon is the canonical fingerprint of an asserted formula sequence.
type Canon struct {
	// Exact is the alpha-normalized, order-preserving key.
	Exact [32]byte
	// Shape is the alpha- and commutative-normalized key.
	Shape [32]byte

	vars []*Term // TVars in exact first-occurrence order; index = canonical id
}

// commutative reports whether a term kind ignores argument order.
func commutative(k TermKind) bool {
	switch k {
	case TAnd, TOr, TEq, TAdd, TMul:
		return true
	}
	return false
}

// canonEnc serializes a term DAG into buf with alpha-normalized variables
// and back-references for shared subterms.
type canonEnc struct {
	buf   []byte
	seen  map[int]int // term id -> emission number
	varID map[int]int // TVar term id -> canonical variable index
	vars  []*Term
	// shape, when non-nil, holds memoized pattern hashes and enables
	// commutative argument sorting.
	shape map[int][32]byte
}

func (e *canonEnc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *canonEnc) emit(t *Term) {
	if n, ok := e.seen[t.id]; ok {
		e.buf = append(e.buf, '#')
		e.uvarint(uint64(n))
		return
	}
	e.seen[t.id] = len(e.seen)
	e.buf = append(e.buf, byte(t.Kind), byte(t.Sort))
	switch t.Kind {
	case TVar:
		idx, ok := e.varID[t.id]
		if !ok {
			idx = len(e.vars)
			e.varID[t.id] = idx
			e.vars = append(e.vars, t)
		}
		e.uvarint(uint64(idx))
	case TIntConst, TBoolConst:
		e.uvarint(uint64(t.Int))
	case TApp:
		e.uvarint(uint64(len(t.Name)))
		e.buf = append(e.buf, t.Name...)
	}
	if len(t.Args) == 0 {
		return
	}
	e.uvarint(uint64(len(t.Args)))
	args := t.Args
	if e.shape != nil && commutative(t.Kind) && len(args) > 1 {
		args = e.sortArgs(args)
	}
	for _, a := range args {
		e.emit(a)
	}
}

// sortArgs returns the arguments ordered by pattern hash (stable on ties,
// so alpha-identical siblings keep their original relative order).
func (e *canonEnc) sortArgs(args []*Term) []*Term {
	out := make([]*Term, len(args))
	copy(out, args)
	for _, a := range out {
		e.patternHash(a) // memoize before sorting
	}
	sort.SliceStable(out, func(i, j int) bool {
		hi, hj := e.shape[out[i].id], e.shape[out[j].id]
		for k := 0; k < len(hi); k++ {
			if hi[k] != hj[k] {
				return hi[k] < hj[k]
			}
		}
		return false
	})
	return out
}

// patternHash hashes t serialized with subtree-local variable numbering
// and subtree-local back-references; it is invariant under alpha renaming
// and (recursively) under commutative argument permutation.
func (e *canonEnc) patternHash(t *Term) [32]byte {
	if h, ok := e.shape[t.id]; ok {
		return h
	}
	sub := &canonEnc{
		seen:  make(map[int]int),
		varID: make(map[int]int),
		shape: e.shape,
	}
	sub.emit(t)
	h := sha256.Sum256(sub.buf)
	e.shape[t.id] = h
	return h
}

// Fingerprint computes the canonical fingerprint of an asserted sequence.
// All terms must come from one TermBuilder (ids must be consistent).
func Fingerprint(terms []*Term) *Canon {
	c := &Canon{}

	exact := &canonEnc{seen: make(map[int]int), varID: make(map[int]int)}
	for _, t := range terms {
		exact.emit(t)
		exact.buf = append(exact.buf, ';')
	}
	c.Exact = sha256.Sum256(exact.buf)
	c.vars = exact.vars

	shape := &canonEnc{
		seen:  make(map[int]int),
		varID: make(map[int]int),
		shape: make(map[int][32]byte),
	}
	for _, t := range terms {
		shape.emit(t)
		shape.buf = append(shape.buf, ';')
	}
	c.Shape = sha256.Sum256(shape.buf)
	return c
}

// NumVars returns the number of distinct variables in the fingerprinted
// sequence.
func (c *Canon) NumVars() int { return len(c.vars) }

// CanonModel translates a name-keyed boolean model (as returned by
// Solver.BoolModel) into a canonical-id-keyed model suitable for storing
// alongside the Exact key.
func (c *Canon) CanonModel(model map[string]bool) map[int]bool {
	if model == nil {
		return nil
	}
	out := make(map[int]bool, len(model))
	for i, v := range c.vars {
		if v.Sort != SortBool {
			continue
		}
		if val, ok := model[v.Name]; ok {
			out[i] = val
		}
	}
	return out
}

// ProjectModel translates a canonical-id-keyed model back into this
// query's variable names. It is the inverse of CanonModel across any two
// queries with equal Exact keys.
func (c *Canon) ProjectModel(canonModel map[int]bool) map[string]bool {
	if canonModel == nil {
		return nil
	}
	out := make(map[string]bool, len(canonModel))
	for i, val := range canonModel {
		if i >= 0 && i < len(c.vars) {
			out[c.vars[i].Name] = val
		}
	}
	return out
}
