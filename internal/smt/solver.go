package smt

// Lazy DPLL(T) driver tying the CDCL SAT core to the EUF and
// difference-bound theory layers.

import (
	"sort"
	"time"
)

// Result is the verdict of a Check call.
type Result uint8

const (
	// Unsat means the asserted formulas have no model.
	Unsat Result = iota
	// Sat means a model was found that the theory layer accepts.
	Sat
	// Unknown means the budget was exhausted before a verdict.
	Unknown
)

func (r Result) String() string {
	switch r {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	default:
		return "unknown"
	}
}

// Solver is the public SMT interface. Assert formulas built from the
// solver's TermBuilder, then call Check.
type Solver struct {
	TB  *TermBuilder
	sat *SATSolver
	enc *cnfEncoder
	// trivially false when an Assert reduced to false
	dead bool
	// MaxRounds bounds the lazy theory-refinement loop.
	MaxRounds int

	// TheoryConflicts counts blocking clauses added by the theory layer.
	TheoryConflicts int64
	asserted        []*Term
	assertMark      []int  // len(asserted) at each Push
	deadStack       []bool // dead flag at each Push

	// Observer, when non-nil, is invoked once at the end of every Check
	// with the call's verdict, wall time, and the SAT-core effort spent by
	// that call. It must be cheap; the solver holds no locks while calling
	// it. Leaving it nil keeps Check free of clock reads.
	Observer func(CheckInfo)
}

// CheckInfo summarizes one Check call for the Observer hook. The counter
// fields are deltas attributable to that call, not solver lifetime totals.
type CheckInfo struct {
	Result          Result
	Duration        time.Duration
	Decisions       int64
	Conflicts       int64
	Learned         int64
	TheoryConflicts int64
}

// NewSolver returns an empty solver with a fresh TermBuilder.
func NewSolver() *Solver {
	sat := NewSATSolver()
	return &Solver{
		TB:        NewTermBuilder(),
		sat:       sat,
		enc:       newCNFEncoder(sat),
		MaxRounds: 10000,
	}
}

// Assert conjoins t to the formula.
func (s *Solver) Assert(t *Term) {
	s.asserted = append(s.asserted, t)
	if !s.enc.assert(t) {
		s.dead = true
	}
}

// Asserted returns the formulas asserted so far, in order. The returned
// slice is owned by the solver.
func (s *Solver) Asserted() []*Term { return s.asserted }

// Push opens an assumption scope. Assertions made until the matching Pop
// are retracted by it, while clauses learned from scope-independent
// reasoning are retained, making repeated Check calls over a shared
// assertion prefix incremental.
func (s *Solver) Push() {
	s.sat.Push()
	s.enc.push()
	s.assertMark = append(s.assertMark, len(s.asserted))
	s.deadStack = append(s.deadStack, s.dead)
}

// Pop retracts the assertions of the innermost Push scope.
func (s *Solver) Pop() {
	if n := len(s.assertMark); n > 0 {
		s.asserted = s.asserted[:s.assertMark[n-1]]
		s.assertMark = s.assertMark[:n-1]
		s.dead = s.deadStack[n-1]
		s.deadStack = s.deadStack[:n-1]
	}
	s.enc.pop()
	s.sat.Pop()
}

// Reset returns the solver (including its TermBuilder) to the
// freshly-constructed state while retaining allocations for reuse. A
// reset solver reproduces a fresh solver's behavior exactly, term IDs
// included.
func (s *Solver) Reset() {
	s.sat.Reset()
	s.enc.reset()
	s.TB.Reset()
	s.dead = false
	s.MaxRounds = 10000
	s.TheoryConflicts = 0
	s.asserted = s.asserted[:0]
	s.assertMark = s.assertMark[:0]
	s.deadStack = s.deadStack[:0]
	s.Observer = nil
}

// Stats reports SAT-core counters: decisions, conflicts, learned clauses.
func (s *Solver) Stats() (decisions, conflicts, learned int64) {
	return s.sat.Decisions, s.sat.Conflicts, s.sat.Learned
}

// BoolModel returns the truth assignment of every boolean variable atom
// after a Sat result. Unassigned variables are omitted. The model is a
// witness for the last Check call; it is meaningless after Unsat.
func (s *Solver) BoolModel() map[string]bool {
	out := make(map[string]bool)
	for v, t := range s.enc.atoms {
		if t.Kind != TVar || t.Sort != SortBool {
			continue
		}
		if s.sat.assign[v] == lUndef {
			continue
		}
		out[t.Name] = s.sat.ValueOf(v)
	}
	return out
}

// Check decides satisfiability of the asserted formulas.
func (s *Solver) Check() Result {
	if s.Observer == nil {
		return s.check()
	}
	start := time.Now()
	d0, c0, l0 := s.sat.Decisions, s.sat.Conflicts, s.sat.Learned
	tc0 := s.TheoryConflicts
	res := s.check()
	s.Observer(CheckInfo{
		Result:          res,
		Duration:        time.Since(start),
		Decisions:       s.sat.Decisions - d0,
		Conflicts:       s.sat.Conflicts - c0,
		Learned:         s.sat.Learned - l0,
		TheoryConflicts: s.TheoryConflicts - tc0,
	})
	return res
}

func (s *Solver) check() Result {
	if s.dead {
		return Unsat
	}
	for round := 0; round < s.MaxRounds; round++ {
		ok, _ := s.sat.Solve()
		if !ok {
			return Unsat
		}
		conflictLits, consistent := s.theoryCheck()
		if consistent {
			return Sat
		}
		s.TheoryConflicts++
		// Block this theory-inconsistent assignment.
		var blocking []Lit
		for _, l := range conflictLits {
			blocking = append(blocking, l.Neg())
		}
		if len(blocking) == 0 {
			return Unsat
		}
		if !s.sat.AddClause(blocking...) {
			return Unsat
		}
	}
	return Unknown
}

// theoryCheck inspects the current full propositional model, gathers the
// asserted theory atoms with their polarities, and checks EUF + difference
// consistency. On inconsistency it returns the SAT literals of a
// conservative explanation.
func (s *Solver) theoryCheck() ([]Lit, bool) {
	type polAtom struct {
		t   *Term
		pos bool
		v   int
	}
	// Iterate atoms in SAT-variable order: the order determines which
	// conflict explanation (blocking clause) is found first, and through it
	// the final model, so it must not depend on map iteration order.
	vars := make([]int, 0, len(s.enc.atoms))
	for v := range s.enc.atoms {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	var atoms []polAtom
	for _, v := range vars {
		if s.sat.assign[v] == lUndef {
			continue
		}
		atoms = append(atoms, polAtom{t: s.enc.atoms[v], pos: s.sat.ValueOf(v), v: v})
	}

	// EUF: equalities and disequalities over any sort.
	var eqs, neqs [][2]*Term
	var eufLits []Lit
	for _, a := range atoms {
		if a.t.Kind != TEq {
			continue
		}
		pair := [2]*Term{a.t.Args[0], a.t.Args[1]}
		if a.pos {
			eqs = append(eqs, pair)
			eufLits = append(eufLits, Lit(a.v))
		} else {
			neqs = append(neqs, pair)
			eufLits = append(eufLits, Lit(-a.v))
		}
	}
	if !eufCheck(eqs, neqs) {
		return eufLits, false
	}

	// Difference bounds over integer comparisons (including equalities,
	// which contribute two inequalities each).
	var lits []arithLit
	var litSATLits []Lit
	for _, a := range atoms {
		switch a.t.Kind {
		case TEq, TLt, TLe:
			if a.t.Args[0].Sort != SortInt {
				continue
			}
			lits = append(lits, arithLit{t: a.t, positive: a.pos, index: len(litSATLits)})
			if a.pos {
				litSATLits = append(litSATLits, Lit(a.v))
			} else {
				litSATLits = append(litSATLits, Lit(-a.v))
			}
		}
	}
	if ok, core := arithCheck(lits); !ok {
		var out []Lit
		seen := map[Lit]bool{}
		for _, i := range core {
			l := litSATLits[i]
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
		if len(out) == 0 {
			out = litSATLits
		}
		return out, false
	}

	// Combined pass: equalities imply arithmetic equalities and vice
	// versa. A lightweight Nelson–Oppen-style exchange: propagate EUF
	// equalities into the difference solver by re-running it with
	// x - y <= 0 and y - x <= 0 for each merged pair. This is already
	// covered above because TEq atoms feed both solvers.
	return nil, true
}

// CheckCond is a convenience one-shot satisfiability query for a single
// formula under a fresh solver sharing the TermBuilder of tb.
func CheckCond(tb *TermBuilder, f *Term) Result {
	s := &Solver{
		TB:        tb,
		sat:       NewSATSolver(),
		MaxRounds: 10000,
	}
	s.enc = newCNFEncoder(s.sat)
	s.Assert(f)
	return s.Check()
}
