package smt

import "sync"

// Solver pooling. Detection issues one SMT query per candidate; building a
// fresh Solver (and with it a TermBuilder, SAT solver, and CNF encoder)
// per candidate dominated allocation churn on the hot path. GetSolver /
// PutSolver recycle fully reset solvers through a sync.Pool: because
// Solver.Reset reproduces the freshly-constructed state exactly (term IDs
// restart at zero), a pooled solver is observationally indistinguishable
// from a new one, so pooling cannot perturb verdicts or witnesses.

var solverPool = sync.Pool{
	New: func() any { return NewSolver() },
}

// GetSolver returns a solver in the freshly-constructed state, reusing a
// pooled instance when available.
func GetSolver() *Solver {
	return solverPool.Get().(*Solver)
}

// PutSolver resets s and returns it to the pool. The caller must not use
// s afterwards.
func PutSolver(s *Solver) {
	s.Reset()
	solverPool.Put(s)
}
