package smt

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestPrefilterAssertedFalse(t *testing.T) {
	tb := NewTermBuilder()
	if got := Prefilter([]*Term{tb.False()}); got != Unsat {
		t.Errorf("Prefilter(false) = %v, want unsat", got)
	}
	if got := Prefilter([]*Term{tb.BoolVar("p"), tb.False()}); got != Unsat {
		t.Errorf("Prefilter(p ∧ false) = %v, want unsat", got)
	}
}

func TestPrefilterComplementaryLiterals(t *testing.T) {
	tb := NewTermBuilder()
	p := tb.BoolVar("p")
	if got := Prefilter([]*Term{p, tb.Not(p)}); got != Unsat {
		t.Errorf("Prefilter(p ∧ ¬p) = %v, want unsat", got)
	}
	// The complement may be buried in a flattened conjunction.
	q := tb.BoolVar("q")
	if got := Prefilter([]*Term{tb.And(p, q), tb.Not(q)}); got != Unsat {
		t.Errorf("Prefilter((p ∧ q) ∧ ¬q) = %v, want unsat", got)
	}
	// ...but NOT under a disjunction: (p ∨ q) ∧ ¬q is satisfiable.
	if got := Prefilter([]*Term{tb.Or(p, q), tb.Not(q)}); got != Unknown {
		t.Errorf("Prefilter((p ∨ q) ∧ ¬q) = %v, want unknown", got)
	}
}

func TestPrefilterEUFUnits(t *testing.T) {
	tb := NewTermBuilder()
	x, y, z := tb.IntVar("x"), tb.IntVar("y"), tb.IntVar("z")
	// x = y ∧ y = z ∧ x ≠ z: transitivity conflict.
	got := Prefilter([]*Term{tb.Eq(x, y), tb.Eq(y, z), tb.Ne(x, z)})
	if got != Unsat {
		t.Errorf("transitivity conflict = %v, want unsat", got)
	}
	// x = y ∧ f(x) ≠ f(y): congruence conflict.
	fx, fy := tb.App("f", SortInt, x), tb.App("f", SortInt, y)
	if got := Prefilter([]*Term{tb.Eq(x, y), tb.Ne(fx, fy)}); got != Unsat {
		t.Errorf("congruence conflict = %v, want unsat", got)
	}
}

func TestPrefilterArithUnits(t *testing.T) {
	tb := NewTermBuilder()
	x, y := tb.IntVar("x"), tb.IntVar("y")
	// x < y ∧ y < x.
	if got := Prefilter([]*Term{tb.Lt(x, y), tb.Lt(y, x)}); got != Unsat {
		t.Errorf("cyclic strict order = %v, want unsat", got)
	}
	// Interval conflict through constants: x <= 3 ∧ 5 <= x.
	if got := Prefilter([]*Term{tb.Le(x, tb.Int(3)), tb.Le(tb.Int(5), x)}); got != Unsat {
		t.Errorf("interval conflict = %v, want unsat", got)
	}
	// Equality feeding the difference solver: x = 1 ∧ x = 2.
	if got := Prefilter([]*Term{tb.Eq(x, tb.Int(1)), tb.Eq(x, tb.Int(2))}); got != Unsat {
		t.Errorf("conflicting int equalities = %v, want unsat", got)
	}
}

func TestPrefilterNeverSat(t *testing.T) {
	tb := NewTermBuilder()
	p := tb.BoolVar("p")
	x := tb.IntVar("x")
	for _, terms := range [][]*Term{
		{tb.True()},
		{p},
		{p, tb.Le(x, tb.Int(3))},
		{tb.Or(p, tb.Not(p))},
	} {
		if got := Prefilter(terms); got != Unknown {
			t.Errorf("Prefilter(%v) = %v, want unknown (never Sat)", terms, got)
		}
	}
}

// TestPrefilterSoundness is the differential soundness check backing the
// report-identity argument: on random unit-fact conjunctions, whenever the
// prefilter answers Unsat the full DPLL(T) solver must not answer Sat.
// (The converse — prefilter Unknown but solver Unsat — is expected: the
// prefilter only sees top-level units.)
func TestPrefilterSoundness(t *testing.T) {
	kills := 0
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewSolver()
		tb := s.TB
		v := func(i int) *Term { return tb.IntVar(fmt.Sprintf("v%d", i)) }
		b := func(i int) *Term { return tb.BoolVar(fmt.Sprintf("c%d", i)) }

		n := rng.Intn(6) + 2
		terms := make([]*Term, 0, n)
		for i := 0; i < n; i++ {
			x, y := v(rng.Intn(3)), v(rng.Intn(3))
			c := tb.Int(int64(rng.Intn(5)))
			var f *Term
			switch rng.Intn(6) {
			case 0:
				f = tb.Lt(x, y)
			case 1:
				f = tb.Le(x, c)
			case 2:
				f = tb.Eq(x, c)
			case 3:
				f = tb.Eq(tb.App("f", SortInt, x), tb.App("f", SortInt, y))
			case 4:
				f = b(rng.Intn(2))
			default:
				f = tb.Or(b(rng.Intn(2)), tb.Lt(x, c))
			}
			if rng.Intn(3) == 0 {
				f = tb.Not(f)
			}
			terms = append(terms, f)
		}

		pre := Prefilter(terms)
		if pre == Sat {
			t.Fatalf("seed %d: prefilter answered Sat", seed)
		}
		if pre != Unsat {
			continue
		}
		kills++
		for _, f := range terms {
			s.Assert(f)
		}
		if full := s.Check(); full == Sat {
			t.Fatalf("seed %d: prefilter refuted %v but full solver found a model",
				seed, terms)
		}
	}
	if kills == 0 {
		t.Fatal("no random formula was refuted; soundness check is vacuous")
	}
}
