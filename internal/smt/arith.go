package smt

// Integer difference-bound reasoning. Asserted comparison literals are
// normalized to difference constraints of the form x - y <= c (with x or y
// possibly the distinguished "zero" node), and satisfiability is decided by
// negative-cycle detection (Bellman–Ford) over the constraint graph.
//
// Literals that do not fit the difference fragment — nonlinear terms, sums
// of more than two variables — are ignored here, which keeps the theory
// sound for UNSAT answers and merely over-approximates SAT.

// linTerm is a normalized linear view of an integer term: sum of var terms
// with coefficients plus a constant. ok is false when the term is not
// linear in that shape.
type linTerm struct {
	coeffs map[int]int64 // term id of an atom var -> coefficient
	atoms  map[int]*Term
	c      int64
	ok     bool
}

func linearize(t *Term) linTerm {
	lt := linTerm{coeffs: map[int]int64{}, atoms: map[int]*Term{}, ok: true}
	lt.add(t, 1)
	return lt
}

func (lt *linTerm) add(t *Term, mult int64) {
	if !lt.ok {
		return
	}
	switch t.Kind {
	case TIntConst:
		lt.c += mult * t.Int
	case TAdd:
		for _, a := range t.Args {
			lt.add(a, mult)
		}
	case TSub:
		lt.add(t.Args[0], mult)
		lt.add(t.Args[1], -mult)
	case TNeg:
		lt.add(t.Args[0], -mult)
	case TMul:
		a, b := t.Args[0], t.Args[1]
		switch {
		case a.Kind == TIntConst:
			lt.add(b, mult*a.Int)
		case b.Kind == TIntConst:
			lt.add(a, mult*b.Int)
		default:
			// Nonlinear: treat the product itself as an atom.
			lt.coeffs[t.id] += mult
			lt.atoms[t.id] = t
		}
	case TVar, TApp, TIte:
		lt.coeffs[t.id] += mult
		lt.atoms[t.id] = t
	default:
		lt.ok = false
	}
}

// diffConstraint is x - y <= c; x or y may be 0 meaning the constant zero
// node.
type diffConstraint struct {
	x, y int
	c    int64
	lit  int // index of the asserting literal, for explanations
}

// diffCheck decides a conjunction of difference constraints by detecting
// negative cycles. It returns (true, nil) when consistent and
// (false, literal indices of a negative cycle) otherwise.
func diffCheck(cons []diffConstraint) (bool, []int) {
	// Collect nodes.
	nodes := map[int]bool{0: true}
	for _, c := range cons {
		nodes[c.x] = true
		nodes[c.y] = true
	}
	// Edge y -> x with weight c encodes x - y <= c.
	type edge struct {
		from, to int
		w        int64
		lit      int
	}
	var edges []edge
	for _, c := range cons {
		edges = append(edges, edge{from: c.y, to: c.x, w: c.c, lit: c.lit})
	}
	dist := make(map[int]int64, len(nodes))
	pred := make(map[int]edge, len(nodes))
	for n := range nodes {
		dist[n] = 0 // virtual source with 0-weight edges to all nodes
	}
	var last int = -1
	for i := 0; i < len(nodes); i++ {
		changed := false
		for _, e := range edges {
			if dist[e.from]+e.w < dist[e.to] {
				dist[e.to] = dist[e.from] + e.w
				pred[e.to] = e
				changed = true
				last = e.to
			}
		}
		if !changed {
			return true, nil
		}
	}
	if last == -1 {
		return true, nil
	}
	// A node relaxed on the n-th pass lies on or reaches a negative
	// cycle. Walk predecessors n times to land on the cycle, then
	// collect it.
	x := last
	for i := 0; i < len(nodes); i++ {
		x = pred[x].from
	}
	var lits []int
	seen := map[int]bool{}
	for cur := x; !seen[cur]; {
		seen[cur] = true
		e := pred[cur]
		lits = append(lits, e.lit)
		cur = e.from
	}
	return false, lits
}

// arithLit is a comparison literal destined for the difference solver.
type arithLit struct {
	t        *Term // TEq / TLt / TLe over ints
	positive bool
	index    int // position in the theory literal list
}

// arithCheck decides the conjunction of comparison literals in the
// difference fragment. Non-difference literals are skipped. Returns
// (true, nil) or (false, indices of an inconsistent subset).
func arithCheck(lits []arithLit) (bool, []int) {
	var cons []diffConstraint
	for _, al := range lits {
		a, b := al.t.Args[0], al.t.Args[1]
		if a.Sort != SortInt {
			continue
		}
		la, lb := linearize(a), linearize(b)
		if !la.ok || !lb.ok {
			continue
		}
		// Combine into  sum <= / < / = const  form: la - lb ⋈ 0.
		diff := map[int]int64{}
		for id, co := range la.coeffs {
			diff[id] += co
		}
		for id, co := range lb.coeffs {
			diff[id] -= co
		}
		for id, co := range diff {
			if co == 0 {
				delete(diff, id)
			}
		}
		cst := lb.c - la.c // sum(diff) ⋈ cst
		var ids []int
		for id := range diff {
			ids = append(ids, id)
		}
		// Difference fragment: the literal is (x - y) ⋈ cst where x, y
		// are atom nodes or the distinguished zero node 0. Anything
		// outside the fragment is skipped (over-approximating Sat).
		var x, y int // LHS is x - y
		switch len(ids) {
		case 0:
			// Ground after linearization: LHS is 0, check 0 ⋈ cst.
			if !evalGround(al.t, 0, cst, al.positive) {
				return false, []int{al.index}
			}
			continue
		case 1:
			id := ids[0]
			switch diff[id] {
			case 1:
				x, y = id, 0 // v ⋈ cst
			case -1:
				x, y = 0, id // -v ⋈ cst, i.e. (0 - v) ⋈ cst
			default:
				continue
			}
		case 2:
			id0, id1 := ids[0], ids[1]
			if diff[id0] == 1 && diff[id1] == -1 {
				x, y = id0, id1
			} else if diff[id0] == -1 && diff[id1] == 1 {
				x, y = id1, id0
			} else {
				continue
			}
		default:
			continue
		}
		emit := func(xx, yy int, cc int64) {
			cons = append(cons, diffConstraint{x: xx, y: yy, c: cc, lit: al.index})
		}
		switch al.t.Kind {
		case TEq:
			if al.positive {
				emit(x, y, cst)
				emit(y, x, -cst)
			}
			// Negative equality (disequality) is not expressible as
			// a conjunction of difference constraints; EUF handles
			// syntactic cases, otherwise skipped.
		case TLe:
			if al.positive { // x - y <= cst
				emit(x, y, cst)
			} else { // !(x - y <= cst)  <=>  y - x <= -cst - 1
				emit(y, x, -cst-1)
			}
		case TLt:
			if al.positive { // x - y < cst  <=>  x - y <= cst - 1
				emit(x, y, cst-1)
			} else { // !(x - y < cst)  <=>  y - x <= -cst
				emit(y, x, -cst)
			}
		}
	}
	return diffCheck(cons)
}

// evalGround checks a comparison whose sides are both constant after
// linearization: lhs ⋈ cst.
func evalGround(t *Term, lhs, cst int64, positive bool) bool {
	var holds bool
	switch t.Kind {
	case TEq:
		holds = lhs == cst
	case TLt:
		holds = lhs < cst
	case TLe:
		holds = lhs <= cst
	}
	return holds == positive
}
