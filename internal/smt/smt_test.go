package smt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTermHashConsing(t *testing.T) {
	tb := NewTermBuilder()
	a, b := tb.IntVar("a"), tb.IntVar("b")
	if tb.Add(a, b) != tb.Add(a, b) {
		t.Fatal("Add not hash-consed")
	}
	if tb.Add(a, b) != tb.Add(b, a) {
		t.Fatal("Add not commutativity-canonicalized")
	}
	if tb.IntVar("a") != a {
		t.Fatal("Var not interned")
	}
	if tb.Eq(a, b) != tb.Eq(b, a) {
		t.Fatal("Eq not canonicalized")
	}
}

func TestTermSimplifications(t *testing.T) {
	tb := NewTermBuilder()
	a := tb.IntVar("a")
	p := tb.BoolVar("p")
	cases := []struct {
		got, want *Term
		name      string
	}{
		{tb.Add(a, tb.Int(0)), a, "a+0"},
		{tb.Mul(a, tb.Int(1)), a, "a*1"},
		{tb.Mul(a, tb.Int(0)), tb.Int(0), "a*0"},
		{tb.Sub(a, a), tb.Int(0), "a-a"},
		{tb.Neg(tb.Neg(a)), a, "--a"},
		{tb.Not(tb.Not(p)), p, "!!p"},
		{tb.And(p, tb.True()), p, "p&true"},
		{tb.And(p, tb.False()), tb.False(), "p&false"},
		{tb.Or(p, tb.Not(p)), tb.True(), "p|!p"},
		{tb.And(p, tb.Not(p)), tb.False(), "p&!p"},
		{tb.Eq(a, a), tb.True(), "a=a"},
		{tb.Eq(tb.Int(1), tb.Int(2)), tb.False(), "1=2"},
		{tb.Le(a, a), tb.True(), "a<=a"},
		{tb.Lt(a, a), tb.False(), "a<a"},
		{tb.Eq(p, tb.True()), p, "p=true"},
		{tb.Eq(p, tb.False()), tb.Not(p), "p=false"},
		{tb.Ite(tb.True(), a, tb.Int(3)), a, "ite true"},
		{tb.Implies(p, p), tb.True(), "p=>p"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, c.got, c.want)
		}
	}
}

func solveOne(tb *TermBuilder, f *Term) Result {
	return CheckCond(tb, f)
}

func TestSATBasics(t *testing.T) {
	tb := NewTermBuilder()
	p, q, r := tb.BoolVar("p"), tb.BoolVar("q"), tb.BoolVar("r")
	cases := []struct {
		f    *Term
		want Result
		name string
	}{
		{p, Sat, "p"},
		{tb.And(p, tb.Not(p)), Unsat, "p & !p"},
		{tb.And(tb.Or(p, q), tb.Not(p), tb.Not(q)), Unsat, "(p|q)&!p&!q"},
		{tb.And(tb.Or(p, q), tb.Not(p)), Sat, "(p|q)&!p"},
		{tb.And(tb.Implies(p, q), tb.Implies(q, r), p, tb.Not(r)), Unsat, "chain"},
		{tb.Or(tb.And(p, q), tb.And(tb.Not(p), r)), Sat, "dnf"},
		{tb.True(), Sat, "true"},
		{tb.False(), Unsat, "false"},
	}
	for _, c := range cases {
		if got := solveOne(tb, c.f); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSATPigeonhole exercises clause learning on PHP(4,3): 4 pigeons, 3
// holes, unsatisfiable.
func TestSATPigeonhole(t *testing.T) {
	tb := NewTermBuilder()
	const P, H = 4, 3
	in := func(p, h int) *Term { return tb.BoolVar(fmt.Sprintf("p%d_h%d", p, h)) }
	var parts []*Term
	for p := 0; p < P; p++ {
		var row []*Term
		for h := 0; h < H; h++ {
			row = append(row, in(p, h))
		}
		parts = append(parts, tb.Or(row...))
	}
	for h := 0; h < H; h++ {
		for p1 := 0; p1 < P; p1++ {
			for p2 := p1 + 1; p2 < P; p2++ {
				parts = append(parts, tb.Or(tb.Not(in(p1, h)), tb.Not(in(p2, h))))
			}
		}
	}
	if got := solveOne(tb, tb.And(parts...)); got != Unsat {
		t.Fatalf("PHP(4,3) = %v, want unsat", got)
	}
}

func TestEUF(t *testing.T) {
	tb := NewTermBuilder()
	a, b, c := tb.IntVar("a"), tb.IntVar("b"), tb.IntVar("c")
	fa := tb.App("f", SortInt, a)
	fb := tb.App("f", SortInt, b)
	cases := []struct {
		f    *Term
		want Result
		name string
	}{
		{tb.And(tb.Eq(a, b), tb.Ne(a, b)), Unsat, "a=b & a!=b"},
		{tb.And(tb.Eq(a, b), tb.Eq(b, c), tb.Ne(a, c)), Unsat, "transitivity"},
		{tb.And(tb.Eq(a, b), tb.Ne(fa, fb)), Unsat, "congruence"},
		{tb.And(tb.Ne(a, b), tb.Eq(fa, fb)), Sat, "f collision ok"},
		{tb.And(tb.Eq(a, b), tb.Eq(fa, fb)), Sat, "consistent"},
	}
	for _, c := range cases {
		if got := solveOne(tb, c.f); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestArithmeticDifference(t *testing.T) {
	tb := NewTermBuilder()
	x, y, z := tb.IntVar("x"), tb.IntVar("y"), tb.IntVar("z")
	cases := []struct {
		f    *Term
		want Result
		name string
	}{
		{tb.And(tb.Lt(x, y), tb.Lt(y, x)), Unsat, "x<y & y<x"},
		{tb.And(tb.Le(x, y), tb.Le(y, x)), Sat, "x<=y & y<=x"},
		{tb.And(tb.Lt(x, y), tb.Lt(y, z), tb.Lt(z, x)), Unsat, "3-cycle"},
		{tb.And(tb.Lt(x, tb.Int(5)), tb.Gt(x, tb.Int(10))), Unsat, "x<5 & x>10"},
		{tb.And(tb.Lt(x, tb.Int(5)), tb.Gt(x, tb.Int(3))), Sat, "3<x<5"},
		{tb.And(tb.Eq(x, tb.Int(4)), tb.Lt(x, tb.Int(3))), Unsat, "x=4 & x<3"},
		{tb.And(tb.Eq(x, tb.Int(4)), tb.Lt(x, tb.Int(5))), Sat, "x=4 & x<5"},
		{tb.And(tb.Eq(x, y), tb.Lt(x, y)), Unsat, "x=y & x<y"},
		{tb.Lt(tb.Int(3), tb.Int(2)), Unsat, "3<2 const"},
		{tb.And(tb.Le(tb.Sub(x, y), tb.Int(2)), tb.Ge(tb.Sub(x, y), tb.Int(5))), Unsat, "x-y<=2 & x-y>=5"},
		{tb.And(tb.Gt(x, tb.Int(0)), tb.Eq(y, tb.Add(x, tb.Int(1))), tb.Lt(y, tb.Int(1))), Unsat, "y=x+1, x>0, y<1"},
	}
	for _, c := range cases {
		if got := solveOne(tb, c.f); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMixedBoolTheory(t *testing.T) {
	tb := NewTermBuilder()
	p := tb.BoolVar("p")
	x, y := tb.IntVar("x"), tb.IntVar("y")
	// p -> x < y; !p -> y < x; x = y  -- unsat.
	f := tb.And(
		tb.Implies(p, tb.Lt(x, y)),
		tb.Implies(tb.Not(p), tb.Lt(y, x)),
		tb.Eq(x, y),
	)
	if got := solveOne(tb, f); got != Unsat {
		t.Fatalf("mixed = %v, want unsat", got)
	}
	// Without the equality it is satisfiable both ways.
	f2 := tb.And(tb.Implies(p, tb.Lt(x, y)), tb.Implies(tb.Not(p), tb.Lt(y, x)))
	if got := solveOne(tb, f2); got != Sat {
		t.Fatalf("mixed2 = %v, want sat", got)
	}
}

func TestIncrementalAsserts(t *testing.T) {
	s := NewSolver()
	tb := s.TB
	x, y := tb.IntVar("x"), tb.IntVar("y")
	s.Assert(tb.Lt(x, y))
	if got := s.Check(); got != Sat {
		t.Fatalf("after x<y: %v", got)
	}
	s.Assert(tb.Lt(y, x))
	if got := s.Check(); got != Unsat {
		t.Fatalf("after y<x: %v", got)
	}
}

func TestIteLowering(t *testing.T) {
	tb := NewTermBuilder()
	p := tb.BoolVar("p")
	a, b := tb.BoolVar("a"), tb.BoolVar("b")
	ite := tb.Ite(p, a, b)
	// (ite p a b) & p & !a is unsat.
	if got := solveOne(tb, tb.And(ite, p, tb.Not(a))); got != Unsat {
		t.Fatalf("ite: %v, want unsat", got)
	}
	if got := solveOne(tb, tb.And(ite, p, a)); got != Sat {
		t.Fatalf("ite2: %v, want sat", got)
	}
}

// Property: for random small propositional formulas, the solver agrees with
// brute-force truth-table evaluation.
func TestQuickVsTruthTable(t *testing.T) {
	type node struct {
		op   uint8
		a, b int
	}
	eval := func(nodes []node, nVars int, assign uint) []bool {
		vals := make([]bool, len(nodes))
		for i, n := range nodes {
			op := n.op % 4
			if i == 0 {
				op = 0 // first node must be a variable reference
			}
			switch op {
			case 0: // var
				vals[i] = assign&(1<<(n.a%nVars)) != 0
			case 1: // not
				vals[i] = !vals[n.a%i]
			case 2: // and
				vals[i] = vals[n.a%i] && vals[n.b%i]
			case 3: // or
				vals[i] = vals[n.a%i] || vals[n.b%i]
			}
		}
		return vals
	}
	build := func(tb *TermBuilder, nodes []node, nVars int) *Term {
		terms := make([]*Term, len(nodes))
		for i, n := range nodes {
			op := n.op % 4
			if i == 0 {
				op = 0
			}
			switch op {
			case 0:
				terms[i] = tb.BoolVar(fmt.Sprintf("v%d", n.a%nVars))
			case 1:
				terms[i] = tb.Not(terms[n.a%i])
			case 2:
				terms[i] = tb.And(terms[n.a%i], terms[n.b%i])
			case 3:
				terms[i] = tb.Or(terms[n.a%i], terms[n.b%i])
			}
		}
		return terms[len(terms)-1]
	}
	f := func(ops []uint8, as, bs []uint8) bool {
		const nVars = 3
		n := len(ops)
		if n == 0 || n > 8 {
			return true
		}
		nodes := make([]node, n)
		for i := range nodes {
			na, nb := 0, 0
			if i < len(as) {
				na = int(as[i])
			}
			if i < len(bs) {
				nb = int(bs[i])
			}
			nodes[i] = node{op: ops[i], a: na, b: nb}
		}
		// Brute force.
		bruteSat := false
		for assign := uint(0); assign < 1<<nVars; assign++ {
			if eval(nodes, nVars, assign)[n-1] {
				bruteSat = true
				break
			}
		}
		tb := NewTermBuilder()
		got := solveOne(tb, build(tb, nodes, nVars))
		return (got == Sat) == bruteSat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSolverStats(t *testing.T) {
	s := NewSolver()
	tb := s.TB
	var parts []*Term
	for i := 0; i < 6; i++ {
		parts = append(parts, tb.Or(tb.BoolVar(fmt.Sprintf("x%d", i)), tb.BoolVar(fmt.Sprintf("x%d", i+1))))
	}
	s.Assert(tb.And(parts...))
	if s.Check() != Sat {
		t.Fatal("want sat")
	}
	d, _, _ := s.Stats()
	if d < 0 {
		t.Fatal("negative decisions")
	}
}

func TestTermString(t *testing.T) {
	tb := NewTermBuilder()
	f := tb.And(tb.BoolVar("p"), tb.Eq(tb.IntVar("x"), tb.Int(3)))
	s := f.String()
	if s == "" {
		t.Fatal("empty render")
	}
}

// TestQuickDifferenceLogicVsBruteForce compares the solver against
// brute-force enumeration on random conjunctions of pure difference
// constraints (x - y <= c). Difference systems are shift-invariant, so if a
// solution exists one exists with v0 = 0 and all values within the sum of
// |c| bounds; the enumeration box is complete.
func TestQuickDifferenceLogicVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const vars = 3
	const rangeLim = 25 // > max constraints * max |c|
	for trial := 0; trial < 250; trial++ {
		type con struct{ x, y, c int }
		n := 1 + rng.Intn(7)
		cons := make([]con, n)
		for i := range cons {
			x := rng.Intn(vars)
			y := rng.Intn(vars)
			for y == x {
				y = rng.Intn(vars)
			}
			cons[i] = con{x: x, y: y, c: rng.Intn(7) - 3}
		}
		// Brute force with v0 fixed at 0.
		bruteSat := false
		for v1 := -rangeLim; v1 <= rangeLim && !bruteSat; v1++ {
			for v2 := -rangeLim; v2 <= rangeLim && !bruteSat; v2++ {
				vals := [vars]int{0, v1, v2}
				ok := true
				for _, c := range cons {
					if vals[c.x]-vals[c.y] > c.c {
						ok = false
						break
					}
				}
				bruteSat = ok
			}
		}
		// Solver.
		s := NewSolver()
		tb := s.TB
		vs := [vars]*Term{tb.IntVar("v0"), tb.IntVar("v1"), tb.IntVar("v2")}
		for _, c := range cons {
			s.Assert(tb.Le(tb.Sub(vs[c.x], vs[c.y]), tb.Int(int64(c.c))))
		}
		got := s.Check()
		want := Unsat
		if bruteSat {
			want = Sat
		}
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v cons=%+v", trial, got, want, cons)
		}
	}
}

// TestQuickEUFVsBruteForce compares EUF verdicts against brute-force
// checking of random equality/disequality systems over a small universe.
func TestQuickEUFVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const vars = 4
	for trial := 0; trial < 250; trial++ {
		type lit struct {
			a, b int
			eq   bool
		}
		n := 1 + rng.Intn(8)
		lits := make([]lit, n)
		for i := range lits {
			lits[i] = lit{a: rng.Intn(vars), b: rng.Intn(vars), eq: rng.Intn(2) == 0}
		}
		// Brute force: assign each var a value in [0, vars).
		bruteSat := false
		total := 1
		for i := 0; i < vars; i++ {
			total *= vars
		}
		for mask := 0; mask < total && !bruteSat; mask++ {
			vals := make([]int, vars)
			m := mask
			for i := range vals {
				vals[i] = m % vars
				m /= vars
			}
			ok := true
			for _, l := range lits {
				if (vals[l.a] == vals[l.b]) != l.eq {
					ok = false
					break
				}
			}
			bruteSat = ok
		}
		s := NewSolver()
		tb := s.TB
		vs := make([]*Term, vars)
		for i := range vs {
			vs[i] = tb.IntVar(fmt.Sprintf("e%d", i))
		}
		for _, l := range lits {
			if l.eq {
				s.Assert(tb.Eq(vs[l.a], vs[l.b]))
			} else {
				s.Assert(tb.Ne(vs[l.a], vs[l.b]))
			}
		}
		got := s.Check()
		want := Unsat
		if bruteSat {
			want = Sat
		}
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v lits=%+v", trial, got, want, lits)
		}
	}
}
