// Package smt implements the satisfiability-modulo-theories solver that
// decides the path conditions Pinpoint emits at the bug-detection stage
// (the role Z3 plays in the paper's implementation, §4).
//
// The solver is a lazy DPLL(T) loop:
//
//   - formulas are hash-consed terms (this file), simplified by rewriting
//     (simplify.go), and translated to CNF by the Tseitin transformation
//     (cnf.go);
//   - the propositional skeleton is decided by a CDCL SAT solver with
//     two-watched-literal propagation, first-UIP clause learning, VSIDS
//     branching, phase saving, and Luby restarts (sat.go);
//   - full propositional models are checked against the theory of equality
//     with uninterpreted functions (congruence closure, euf.go) combined
//     with integer difference-bound reasoning (arith.go); theory conflicts
//     become blocking clauses (solver.go).
//
// The theory layer is sound but incomplete: atoms outside the supported
// fragment (non-difference linear arithmetic, nonlinear terms) are treated
// as opaque, so Check may answer Sat for an arithmetically unsatisfiable
// formula. This mirrors the soundy posture of the overall tool — a path
// condition wrongly judged satisfiable can only introduce a false positive,
// never mask reasoning the analysis relies on for soundness.
package smt

import (
	"fmt"
	"strings"
)

// Sort is a term sort.
type Sort uint8

const (
	// SortBool is the boolean sort.
	SortBool Sort = iota
	// SortInt is the mathematical-integer sort.
	SortInt
)

func (s Sort) String() string {
	if s == SortBool {
		return "Bool"
	}
	return "Int"
}

// TermKind enumerates term constructors.
type TermKind uint8

const (
	// TBoolConst is true/false.
	TBoolConst TermKind = iota
	// TIntConst is an integer literal.
	TIntConst
	// TVar is a free variable of either sort.
	TVar
	// TNot, TAnd, TOr are boolean connectives.
	TNot
	TAnd
	TOr
	// TEq is polymorphic equality (both operands of the same sort).
	TEq
	// TLt and TLe are integer comparisons.
	TLt
	TLe
	// TAdd, TSub, TMul, TNeg are integer arithmetic.
	TAdd
	TSub
	TMul
	TNeg
	// TIte is if-then-else over either sort.
	TIte
	// TApp is an application of an uninterpreted function.
	TApp
)

var termKindNames = [...]string{
	TBoolConst: "bool", TIntConst: "int", TVar: "var", TNot: "not",
	TAnd: "and", TOr: "or", TEq: "=", TLt: "<", TLe: "<=",
	TAdd: "+", TSub: "-", TMul: "*", TNeg: "neg", TIte: "ite", TApp: "app",
}

func (k TermKind) String() string { return termKindNames[k] }

// Term is an immutable, hash-consed term. Terms from the same TermBuilder
// are pointer-equal iff structurally equal.
type Term struct {
	Kind TermKind
	Sort Sort
	// Name is the variable name (TVar) or function symbol (TApp).
	Name string
	// Int is the literal value (TIntConst) or bool as 0/1 (TBoolConst).
	Int int64
	// Args are the operands.
	Args []*Term
	id   int
}

// ID returns the term's unique ID within its builder.
func (t *Term) ID() int { return t.id }

// IsTrue reports whether t is the literal true.
func (t *Term) IsTrue() bool { return t.Kind == TBoolConst && t.Int == 1 }

// IsFalse reports whether t is the literal false.
func (t *Term) IsFalse() bool { return t.Kind == TBoolConst && t.Int == 0 }

// String renders the term in SMT-LIB-like prefix form.
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Term) write(b *strings.Builder) {
	switch t.Kind {
	case TBoolConst:
		if t.Int == 1 {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case TIntConst:
		fmt.Fprintf(b, "%d", t.Int)
	case TVar:
		b.WriteString(t.Name)
	case TApp:
		fmt.Fprintf(b, "(%s", t.Name)
		for _, a := range t.Args {
			b.WriteString(" ")
			a.write(b)
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "(%s", t.Kind)
		for _, a := range t.Args {
			b.WriteString(" ")
			a.write(b)
		}
		b.WriteString(")")
	}
}

// TermBuilder hash-conses terms. Not safe for concurrent use.
type TermBuilder struct {
	table  map[string]*Term
	nextID int
	trueT  *Term
	falseT *Term
}

// NewTermBuilder returns an empty builder with interned constants.
func NewTermBuilder() *TermBuilder {
	tb := &TermBuilder{table: make(map[string]*Term)}
	tb.trueT = tb.intern(&Term{Kind: TBoolConst, Sort: SortBool, Int: 1})
	tb.falseT = tb.intern(&Term{Kind: TBoolConst, Sort: SortBool, Int: 0})
	return tb
}

// NumTerms returns the number of distinct terms created.
func (tb *TermBuilder) NumTerms() int { return tb.nextID }

// Reset drops every interned term and restarts ID allocation, keeping the
// backing table for reuse. A reset builder interns terms with exactly the
// same IDs a fresh builder would — term-ID-sensitive canonicalization
// (operand ordering in Eq/Add/Mul) is therefore reproducible across
// Reset, which the detection layer's byte-identical-reports guarantee
// relies on.
func (tb *TermBuilder) Reset() {
	clear(tb.table)
	tb.nextID = 0
	tb.trueT = tb.intern(&Term{Kind: TBoolConst, Sort: SortBool, Int: 1})
	tb.falseT = tb.intern(&Term{Kind: TBoolConst, Sort: SortBool, Int: 0})
}

func (tb *TermBuilder) intern(t *Term) *Term {
	key := termKey(t)
	if old, ok := tb.table[key]; ok {
		return old
	}
	t.id = tb.nextID
	tb.nextID++
	tb.table[key] = t
	return t
}

func termKey(t *Term) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d/%s/%d", t.Kind, t.Sort, t.Name, t.Int)
	for _, a := range t.Args {
		fmt.Fprintf(&b, ",%d", a.id)
	}
	return b.String()
}

// True returns the boolean constant true.
func (tb *TermBuilder) True() *Term { return tb.trueT }

// False returns the boolean constant false.
func (tb *TermBuilder) False() *Term { return tb.falseT }

// Bool returns the boolean constant for v.
func (tb *TermBuilder) Bool(v bool) *Term {
	if v {
		return tb.trueT
	}
	return tb.falseT
}

// Int returns the integer literal v.
func (tb *TermBuilder) Int(v int64) *Term {
	return tb.intern(&Term{Kind: TIntConst, Sort: SortInt, Int: v})
}

// Var returns the named free variable of the given sort.
func (tb *TermBuilder) Var(name string, s Sort) *Term {
	return tb.intern(&Term{Kind: TVar, Sort: s, Name: name})
}

// BoolVar is shorthand for Var(name, SortBool).
func (tb *TermBuilder) BoolVar(name string) *Term { return tb.Var(name, SortBool) }

// IntVar is shorthand for Var(name, SortInt).
func (tb *TermBuilder) IntVar(name string) *Term { return tb.Var(name, SortInt) }

// App returns fn(args...) with result sort s.
func (tb *TermBuilder) App(fn string, s Sort, args ...*Term) *Term {
	return tb.intern(&Term{Kind: TApp, Sort: s, Name: fn, Args: args})
}

// Not returns the simplified negation of t.
func (tb *TermBuilder) Not(t *Term) *Term {
	switch {
	case t.IsTrue():
		return tb.falseT
	case t.IsFalse():
		return tb.trueT
	case t.Kind == TNot:
		return t.Args[0]
	}
	return tb.intern(&Term{Kind: TNot, Sort: SortBool, Args: []*Term{t}})
}

// And returns the simplified conjunction.
func (tb *TermBuilder) And(ts ...*Term) *Term {
	return tb.nary(TAnd, ts)
}

// Or returns the simplified disjunction.
func (tb *TermBuilder) Or(ts ...*Term) *Term {
	return tb.nary(TOr, ts)
}

// Implies returns (or (not a) b).
func (tb *TermBuilder) Implies(a, b *Term) *Term {
	return tb.Or(tb.Not(a), b)
}

func (tb *TermBuilder) nary(k TermKind, ts []*Term) *Term {
	unit, zero := tb.trueT, tb.falseT
	if k == TOr {
		unit, zero = tb.falseT, tb.trueT
	}
	var flat []*Term
	seen := make(map[int]bool)
	var add func(t *Term) bool
	add = func(t *Term) bool {
		if t == zero {
			return false
		}
		if t == unit || seen[t.id] {
			return true
		}
		if t.Kind == k {
			for _, a := range t.Args {
				if !add(a) {
					return false
				}
			}
			return true
		}
		seen[t.id] = true
		flat = append(flat, t)
		return true
	}
	for _, t := range ts {
		if !add(t) {
			return zero
		}
	}
	// Complementary literals.
	for _, t := range flat {
		if t.Kind == TNot && seen[t.Args[0].id] {
			return zero
		}
	}
	switch len(flat) {
	case 0:
		return unit
	case 1:
		return flat[0]
	}
	return tb.intern(&Term{Kind: k, Sort: SortBool, Args: flat})
}

// Eq returns the simplified equality a = b.
func (tb *TermBuilder) Eq(a, b *Term) *Term {
	if a == b {
		return tb.trueT
	}
	if a.Kind == TIntConst && b.Kind == TIntConst {
		return tb.Bool(a.Int == b.Int)
	}
	if a.Kind == TBoolConst && b.Kind == TBoolConst {
		return tb.Bool(a.Int == b.Int)
	}
	// Boolean equality with a constant folds to the operand or its
	// negation; otherwise it expands to a propositional iff so the SAT
	// core (rather than the equality theory, which has no boolean
	// semantics) interprets it.
	if a.Sort == SortBool {
		if a.Kind == TBoolConst {
			a, b = b, a
		}
		if b.IsTrue() {
			return a
		}
		if b.IsFalse() {
			return tb.Not(a)
		}
		return tb.Or(tb.And(a, b), tb.And(tb.Not(a), tb.Not(b)))
	}
	// Canonical operand order for hash consing.
	if a.id > b.id {
		a, b = b, a
	}
	return tb.intern(&Term{Kind: TEq, Sort: SortBool, Args: []*Term{a, b}})
}

// Ne returns (not (= a b)).
func (tb *TermBuilder) Ne(a, b *Term) *Term { return tb.Not(tb.Eq(a, b)) }

// Lt returns the simplified a < b.
func (tb *TermBuilder) Lt(a, b *Term) *Term {
	if a.Kind == TIntConst && b.Kind == TIntConst {
		return tb.Bool(a.Int < b.Int)
	}
	if a == b {
		return tb.falseT
	}
	return tb.intern(&Term{Kind: TLt, Sort: SortBool, Args: []*Term{a, b}})
}

// Le returns the simplified a <= b.
func (tb *TermBuilder) Le(a, b *Term) *Term {
	if a.Kind == TIntConst && b.Kind == TIntConst {
		return tb.Bool(a.Int <= b.Int)
	}
	if a == b {
		return tb.trueT
	}
	return tb.intern(&Term{Kind: TLe, Sort: SortBool, Args: []*Term{a, b}})
}

// Gt returns b < a.
func (tb *TermBuilder) Gt(a, b *Term) *Term { return tb.Lt(b, a) }

// Ge returns b <= a.
func (tb *TermBuilder) Ge(a, b *Term) *Term { return tb.Le(b, a) }

// Add returns the simplified a + b.
func (tb *TermBuilder) Add(a, b *Term) *Term {
	if a.Kind == TIntConst && b.Kind == TIntConst {
		return tb.Int(a.Int + b.Int)
	}
	if a.Kind == TIntConst && a.Int == 0 {
		return b
	}
	if b.Kind == TIntConst && b.Int == 0 {
		return a
	}
	if a.id > b.id {
		a, b = b, a
	}
	return tb.intern(&Term{Kind: TAdd, Sort: SortInt, Args: []*Term{a, b}})
}

// Sub returns the simplified a - b.
func (tb *TermBuilder) Sub(a, b *Term) *Term {
	if a.Kind == TIntConst && b.Kind == TIntConst {
		return tb.Int(a.Int - b.Int)
	}
	if b.Kind == TIntConst && b.Int == 0 {
		return a
	}
	if a == b {
		return tb.Int(0)
	}
	return tb.intern(&Term{Kind: TSub, Sort: SortInt, Args: []*Term{a, b}})
}

// Mul returns the simplified a * b.
func (tb *TermBuilder) Mul(a, b *Term) *Term {
	if a.Kind == TIntConst && b.Kind == TIntConst {
		return tb.Int(a.Int * b.Int)
	}
	if a.Kind == TIntConst {
		switch a.Int {
		case 0:
			return tb.Int(0)
		case 1:
			return b
		}
	}
	if b.Kind == TIntConst {
		switch b.Int {
		case 0:
			return tb.Int(0)
		case 1:
			return a
		}
	}
	if a.id > b.id {
		a, b = b, a
	}
	return tb.intern(&Term{Kind: TMul, Sort: SortInt, Args: []*Term{a, b}})
}

// Neg returns the simplified -a.
func (tb *TermBuilder) Neg(a *Term) *Term {
	if a.Kind == TIntConst {
		return tb.Int(-a.Int)
	}
	if a.Kind == TNeg {
		return a.Args[0]
	}
	return tb.intern(&Term{Kind: TNeg, Sort: SortInt, Args: []*Term{a}})
}

// Ite returns the simplified if-then-else.
func (tb *TermBuilder) Ite(c, a, b *Term) *Term {
	if c.IsTrue() {
		return a
	}
	if c.IsFalse() {
		return b
	}
	if a == b {
		return a
	}
	if a.Sort == SortBool {
		// (ite c a b) == (c & a) | (!c & b): keep the boolean structure
		// visible to the CNF layer.
		return tb.Or(tb.And(c, a), tb.And(tb.Not(c), b))
	}
	return tb.intern(&Term{Kind: TIte, Sort: a.Sort, Args: []*Term{c, a, b}})
}
