package smt

// Congruence closure for the theory of equality with uninterpreted
// functions. Given a set of asserted equalities and disequalities over
// terms, the solver unions equal terms, propagates congruence
// (f(a1..an) = f(b1..bn) when ai = bi pairwise), and reports a conflict
// when a disequality joins a merged class.
//
// The implementation is a straightforward union-find with a worklist of
// pending merges. Each call to check rebuilds the structure from the full
// literal set; path conditions in this system are small enough (hundreds of
// atoms) that incrementality would be premature.

type eufSolver struct {
	parent map[int]int
	terms  map[int]*Term
	// uses maps a representative to the application terms that mention
	// a member of its class as an argument.
	uses map[int][]*Term
	// appKey maps a congruence signature to a canonical application.
	appKey map[string]*Term
	// mergeSrc records which asserted equality caused each union, for
	// conflict explanations (term id pair -> literal index).
}

func newEUFSolver() *eufSolver {
	return &eufSolver{
		parent: make(map[int]int),
		terms:  make(map[int]*Term),
		uses:   make(map[int][]*Term),
		appKey: make(map[string]*Term),
	}
}

func (s *eufSolver) find(id int) int {
	p, ok := s.parent[id]
	if !ok {
		s.parent[id] = id
		return id
	}
	if p == id {
		return id
	}
	r := s.find(p)
	s.parent[id] = r
	return r
}

// register adds a term (and its subterms) to the structure.
func (s *eufSolver) register(t *Term) {
	if _, ok := s.terms[t.id]; ok {
		return
	}
	s.terms[t.id] = t
	s.find(t.id)
	for _, a := range t.Args {
		s.register(a)
		ra := s.find(a.id)
		s.uses[ra] = append(s.uses[ra], t)
	}
	if len(t.Args) > 0 {
		s.congruenceCheck(t)
	}
}

func (s *eufSolver) sig(t *Term) string {
	key := t.Kind.String() + "/" + t.Name
	for _, a := range t.Args {
		key += ","
		key += itoa(s.find(a.id))
	}
	return key
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// congruenceCheck merges t with an existing application sharing its
// signature.
func (s *eufSolver) congruenceCheck(t *Term) {
	key := s.sig(t)
	if other, ok := s.appKey[key]; ok {
		s.merge(t.id, other.id)
	} else {
		s.appKey[key] = t
	}
}

func (s *eufSolver) merge(a, b int) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	// Union by use-list size.
	if len(s.uses[ra]) > len(s.uses[rb]) {
		ra, rb = rb, ra
	}
	s.parent[ra] = rb
	moved := s.uses[ra]
	s.uses[rb] = append(s.uses[rb], moved...)
	delete(s.uses, ra)
	// Re-check congruence of all applications that mention the merged
	// class.
	for _, app := range moved {
		s.congruenceCheck(app)
	}
}

// eufCheck decides the conjunction of equality literals. eqs and neqs hold
// (lhs, rhs) term pairs. On conflict it returns false and the indices (into
// the combined eq+neq list) of a conservative explanation.
func eufCheck(eqs, neqs [][2]*Term) bool {
	s := newEUFSolver()
	for _, p := range eqs {
		s.register(p[0])
		s.register(p[1])
		s.merge(p[0].id, p[1].id)
	}
	for _, p := range neqs {
		s.register(p[0])
		s.register(p[1])
	}
	for _, p := range neqs {
		if s.find(p[0].id) == s.find(p[1].id) {
			return false
		}
	}
	return true
}
