package smt

import (
	"fmt"
	"reflect"
	"testing"
)

func TestPushPopBoolean(t *testing.T) {
	s := NewSolver()
	p, q := s.TB.BoolVar("p"), s.TB.BoolVar("q")
	s.Assert(s.TB.Or(p, q))

	s.Push()
	s.Assert(s.TB.Not(p))
	s.Assert(s.TB.Not(q))
	if got := s.Check(); got != Unsat {
		t.Fatalf("scoped contradiction: Check = %v, want unsat", got)
	}
	s.Pop()

	if got := s.Check(); got != Sat {
		t.Fatalf("after Pop: Check = %v, want sat", got)
	}
	m := s.BoolModel()
	if !m["p"] && !m["q"] {
		t.Fatalf("model %v does not satisfy p ∨ q", m)
	}
}

func TestPushPopTheory(t *testing.T) {
	s := NewSolver()
	tb := s.TB
	x, y := tb.IntVar("x"), tb.IntVar("y")
	s.Assert(tb.Eq(x, y))

	s.Push()
	s.Assert(tb.Ne(tb.App("f", SortInt, x), tb.App("f", SortInt, y)))
	if got := s.Check(); got != Unsat {
		t.Fatalf("congruence conflict under Push: Check = %v, want unsat", got)
	}
	s.Pop()
	if got := s.Check(); got != Sat {
		t.Fatalf("after Pop: Check = %v, want sat", got)
	}

	// A second scope over the same base must be just as decidable.
	s.Push()
	s.Assert(tb.Lt(x, y))
	if got := s.Check(); got != Unsat {
		t.Fatalf("x=y ∧ x<y under second Push: Check = %v, want unsat", got)
	}
	s.Pop()
	if got := s.Check(); got != Sat {
		t.Fatalf("after second Pop: Check = %v, want sat", got)
	}
}

func TestPushPopNested(t *testing.T) {
	s := NewSolver()
	p, q := s.TB.BoolVar("p"), s.TB.BoolVar("q")
	s.Assert(p)
	s.Push()
	s.Assert(q)
	s.Push()
	s.Assert(s.TB.Not(p))
	if got := s.Check(); got != Unsat {
		t.Fatalf("inner scope: Check = %v, want unsat", got)
	}
	s.Pop()
	if got := s.Check(); got != Sat {
		t.Fatalf("middle scope: Check = %v, want sat", got)
	}
	if m := s.BoolModel(); !m["p"] || !m["q"] {
		t.Fatalf("middle-scope model %v must satisfy p ∧ q", m)
	}
	s.Pop()
	if got := s.Check(); got != Sat {
		t.Fatalf("outer scope: Check = %v, want sat", got)
	}
}

// TestPushPopDeadScope checks that an assertion reducing to false inside a
// scope does not poison the solver after Pop.
func TestPushPopDeadScope(t *testing.T) {
	s := NewSolver()
	s.Assert(s.TB.BoolVar("p"))
	s.Push()
	s.Assert(s.TB.False())
	if got := s.Check(); got != Unsat {
		t.Fatalf("dead scope: Check = %v, want unsat", got)
	}
	s.Pop()
	if got := s.Check(); got != Sat {
		t.Fatalf("after popping dead scope: Check = %v, want sat", got)
	}
}

// TestLearnedClauseRetention puts a search-heavy unsat core (pigeonhole:
// 4 pigeons, 3 holes) inside a Push scope and checks (a) the verdicts stay
// correct through Push/Check/Pop, and (b) conflict-driven learning actually
// fired and the solver remains usable afterwards — learned clauses are
// retained across Pop (those depending on the scope carry its selector's
// negation by resolution and deactivate themselves).
func TestLearnedClauseRetention(t *testing.T) {
	s := NewSolver()
	tb := s.TB
	s.Assert(tb.BoolVar("base"))
	if got := s.Check(); got != Sat {
		t.Fatalf("base: Check = %v, want sat", got)
	}

	const pigeons, holes = 4, 3
	x := func(p, h int) *Term { return tb.BoolVar(fmt.Sprintf("x%d_%d", p, h)) }
	s.Push()
	for p := 0; p < pigeons; p++ {
		row := make([]*Term, holes)
		for h := 0; h < holes; h++ {
			row[h] = x(p, h)
		}
		s.Assert(tb.Or(row...))
	}
	for h := 0; h < holes; h++ {
		for p := 0; p < pigeons; p++ {
			for q := p + 1; q < pigeons; q++ {
				s.Assert(tb.Or(tb.Not(x(p, h)), tb.Not(x(q, h))))
			}
		}
	}
	if got := s.Check(); got != Unsat {
		t.Fatalf("pigeonhole scope: Check = %v, want unsat", got)
	}
	_, conflicts, learned := s.Stats()
	if conflicts == 0 || learned == 0 {
		t.Fatalf("no learning happened (conflicts=%d learned=%d); retention test is vacuous",
			conflicts, learned)
	}
	s.Pop()
	if got := s.Check(); got != Sat {
		t.Fatalf("after Pop: Check = %v, want sat", got)
	}
	if m := s.BoolModel(); !m["base"] {
		t.Fatalf("model %v lost the base assertion", m)
	}
}

// TestResetEqualsFresh is the invariant the per-candidate solver reuse
// relies on: a Reset solver reproduces a fresh solver bit-for-bit — same
// term IDs, same verdict, same model.
func TestResetEqualsFresh(t *testing.T) {
	run := func(s *Solver) (Result, map[string]bool, []int) {
		tb := s.TB
		p, q := tb.BoolVar("p"), tb.BoolVar("q")
		x, y := tb.IntVar("x"), tb.IntVar("y")
		terms := []*Term{
			tb.Or(p, q),
			tb.Implies(p, tb.Lt(x, y)),
			tb.Implies(q, tb.Lt(y, x)),
			tb.Le(x, tb.Int(4)),
		}
		ids := make([]int, len(terms))
		for i, f := range terms {
			ids[i] = f.ID()
			s.Assert(f)
		}
		res := s.Check()
		return res, s.BoolModel(), ids
	}

	used := NewSolver()
	// Dirty the solver with an unrelated query first.
	used.Assert(used.TB.And(used.TB.BoolVar("junk"), used.TB.Lt(used.TB.IntVar("a"), used.TB.Int(0))))
	if used.Check() == Unknown {
		t.Fatal("warm-up query unexpectedly exhausted the budget")
	}
	used.Reset()
	gotRes, gotModel, gotIDs := run(used)

	wantRes, wantModel, wantIDs := run(NewSolver())
	if gotRes != wantRes {
		t.Fatalf("reset solver: Check = %v, fresh = %v", gotRes, wantRes)
	}
	if !reflect.DeepEqual(gotModel, wantModel) {
		t.Fatalf("reset solver model %v != fresh model %v", gotModel, wantModel)
	}
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("reset builder IDs %v != fresh IDs %v", gotIDs, wantIDs)
	}
}

func TestSolverPoolReuse(t *testing.T) {
	s := GetSolver()
	s.Assert(s.TB.False())
	if got := s.Check(); got != Unsat {
		t.Fatalf("Check = %v, want unsat", got)
	}
	PutSolver(s)

	// Whatever the pool hands back must behave fresh.
	s2 := GetSolver()
	defer PutSolver(s2)
	s2.Assert(s2.TB.BoolVar("p"))
	if got := s2.Check(); got != Sat {
		t.Fatalf("pooled solver: Check = %v, want sat", got)
	}
}

// queryBench asserts and checks a moderately-sized feasibility query, the
// shape the detection layer issues per candidate.
func queryBench(s *Solver) Result {
	tb := s.TB
	var conds []*Term
	for i := 0; i < 8; i++ {
		c := tb.BoolVar(fmt.Sprintf("c%d@f", i))
		x := tb.IntVar(fmt.Sprintf("v%d", i))
		conds = append(conds, tb.Or(c, tb.Lt(x, tb.Int(int64(i)))))
	}
	s.Assert(tb.And(conds...))
	return s.Check()
}

// BenchmarkSolverFresh allocates a brand-new solver per query — the
// pre-elimination behavior.
func BenchmarkSolverFresh(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		if queryBench(s) != Sat {
			b.Fatal("unexpected verdict")
		}
	}
}

// BenchmarkSolverPooled reuses one pooled solver via Reset, retaining the
// SAT core's and TermBuilder's backing allocations.
func BenchmarkSolverPooled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := GetSolver()
		if queryBench(s) != Sat {
			b.Fatal("unexpected verdict")
		}
		PutSolver(s)
	}
}
