package smt

// Semi-decision prefilter: a linear-time refutation pass over the interned
// term DAG that returns Unsat without building CNF or touching the SAT
// core. It generalizes the cond.LinearSolver idea (complementary
// positive/negative condition sets) from Boolean atoms to smt.Term
// arithmetic by reusing the solver's own unit-level theory procedures.
//
// Soundness argument (why a prefilter Unsat can never change a report):
// the pass only inspects top-level facts — the conjuncts obtained by
// flattening asserted TAnd terms exactly as cnfEncoder.assert does. Every
// such conjunct is forced by a unit clause, so EVERY full propositional
// model the SAT core can produce assigns these facts accordingly. If the
// prefilter refutes:
//
//   - an asserted `false` (or negated `true`) makes cnfEncoder.assert add
//     the empty clause, so the full solver answers Unsat;
//   - complementary conjuncts t and ¬t share one hash-consed proxy
//     variable, forcing unit clauses p and ¬p — the full solver answers
//     Unsat;
//   - unit equality facts that congruence closure (eufCheck) refutes, or
//     unit comparison facts that difference-bound propagation
//     (arithCheck, which subsumes interval bounds x ⋈ c through the
//     distinguished zero node) refutes, are a subset of the atoms
//     theoryCheck sees in every full model; both procedures are monotone
//     — a superset of an inconsistent literal set stays inconsistent —
//     so theoryCheck rejects every model and the full solver can only
//     answer Unsat (or Unknown on budget exhaustion), never Sat.
//
// In all cases the full solver produces no Sat verdict, hence no report:
// replacing its answer with Unsat is observationally identical. The
// prefilter never answers Sat and never inspects non-unit structure, so
// a pass-through (Unknown) simply falls back to the full solver.

// Prefilter attempts to refute the conjunction of the asserted terms.
// It returns Unsat when refuted and Unknown when no verdict was reached;
// it never returns Sat.
func Prefilter(terms []*Term) Result {
	// Flatten top-level conjunctions exactly as cnfEncoder.assert does.
	var conjuncts []*Term
	var flatten func(t *Term)
	flatten = func(t *Term) {
		if t.Kind == TAnd {
			for _, a := range t.Args {
				flatten(a)
			}
			return
		}
		conjuncts = append(conjuncts, t)
	}
	for _, t := range terms {
		flatten(t)
	}

	// Polarity map over hash-consed term ids: complementary facts refute.
	pol := make(map[int]bool, len(conjuncts))
	var eqs, neqs [][2]*Term
	var arith []arithLit
	for _, c := range conjuncts {
		pos := true
		for c.Kind == TNot {
			pos = !pos
			c = c.Args[0]
		}
		if c.Kind == TBoolConst {
			if (c.Int == 0) == pos {
				return Unsat // asserted false
			}
			continue // asserted true: vacuous
		}
		if prev, seen := pol[c.id]; seen {
			if prev != pos {
				return Unsat // t and ¬t both asserted
			}
		} else {
			pol[c.id] = pos
		}
		// Unit theory facts.
		switch c.Kind {
		case TEq:
			pair := [2]*Term{c.Args[0], c.Args[1]}
			if pos {
				eqs = append(eqs, pair)
			} else {
				neqs = append(neqs, pair)
			}
			if c.Args[0].Sort == SortInt {
				arith = append(arith, arithLit{t: c, positive: pos, index: len(arith)})
			}
		case TLt, TLe:
			if c.Args[0].Sort == SortInt {
				arith = append(arith, arithLit{t: c, positive: pos, index: len(arith)})
			}
		}
	}

	if len(eqs)+len(neqs) > 0 && !eufCheck(eqs, neqs) {
		return Unsat
	}
	if len(arith) > 0 {
		if ok, _ := arithCheck(arith); !ok {
			return Unsat
		}
	}
	return Unknown
}
