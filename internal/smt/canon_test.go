package smt

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildSpec realizes a small formula family in a fresh TermBuilder, with
// variable names drawn from prefix and — when reversed — the arguments of
// every commutative connective supplied in the opposite order. Each
// commutative sibling embeds a distinct constant, so the siblings have
// distinct pattern hashes and shape normalization has a unique canonical
// order to find (siblings with identical patterns are only kept stable,
// not merged; see the package comment in canon.go).
func buildSpec(tb *TermBuilder, prefix string, reversed bool) []*Term {
	v := func(i int) *Term { return tb.IntVar(fmt.Sprintf("%s.v%d", prefix, i)) }
	b := func(i int) *Term { return tb.BoolVar(fmt.Sprintf("%s.c%d", prefix, i)) }

	conj := []*Term{
		tb.Lt(v(0), tb.Int(5)),
		tb.Le(tb.Int(7), v(1)),
		tb.Not(b(0)),
		tb.Or(b(1), tb.Eq(v(0), tb.Int(3))),
		tb.Eq(tb.App("f", SortInt, v(1)), v(2)),
	}
	if reversed {
		for i, j := 0, len(conj)-1; i < j; i, j = i+1, j-1 {
			conj[i], conj[j] = conj[j], conj[i]
		}
	}
	return []*Term{tb.And(conj...), tb.Implies(b(0), b(1))}
}

func TestFingerprintAlphaRenaming(t *testing.T) {
	fpA := Fingerprint(buildSpec(NewTermBuilder(), "i0", false))
	fpB := Fingerprint(buildSpec(NewTermBuilder(), "i7", false))
	if fpA.Exact != fpB.Exact {
		t.Error("alpha-renamed formulas have different Exact keys")
	}
	if fpA.Shape != fpB.Shape {
		t.Error("alpha-renamed formulas have different Shape keys")
	}
	if fpA.NumVars() != fpB.NumVars() {
		t.Errorf("NumVars differ: %d vs %d", fpA.NumVars(), fpB.NumVars())
	}
}

func TestFingerprintCommutativeReorder(t *testing.T) {
	fwd := Fingerprint(buildSpec(NewTermBuilder(), "x", false))
	rev := Fingerprint(buildSpec(NewTermBuilder(), "x", true))
	if fwd.Exact == rev.Exact {
		t.Error("Exact key ignored argument order; it must preserve it")
	}
	if fwd.Shape != rev.Shape {
		t.Error("Shape key differs under commutative argument reordering")
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	tb := NewTermBuilder()
	x, y := tb.IntVar("x"), tb.IntVar("y")
	a := Fingerprint([]*Term{tb.Lt(x, y)})
	b := Fingerprint([]*Term{tb.Le(x, y)})
	if a.Exact == b.Exact || a.Shape == b.Shape {
		t.Error("x<y and x<=y fingerprint identically")
	}
	// Standalone x<y and y<x are alpha-variants (rename x↔y), so they MUST
	// collide — that is the cache working as intended.
	if c := Fingerprint([]*Term{tb.Lt(y, x)}); a.Exact != c.Exact {
		t.Error("x<y and y<x are alpha-variants but fingerprint differently")
	}
	// Once an earlier assertion pins the variable numbering, Lt — not
	// commutative — must distinguish operand order under both keys.
	pin := tb.Le(x, tb.Int(0))
	d := Fingerprint([]*Term{pin, tb.Lt(x, y)})
	e := Fingerprint([]*Term{pin, tb.Lt(y, x)})
	if d.Exact == e.Exact || d.Shape == e.Shape {
		t.Error("pinned x<y and y<x fingerprint identically")
	}
}

func TestFingerprintSharedSubtermBackrefs(t *testing.T) {
	// A DAG with a shared subterm must not collide with the tree in which
	// the two occurrences are distinct terms.
	tb := NewTermBuilder()
	x, y := tb.IntVar("x"), tb.IntVar("y")
	fx := tb.App("f", SortInt, x)
	shared := Fingerprint([]*Term{tb.Eq(fx, fx)}) // folds to true
	mixed := Fingerprint([]*Term{tb.Eq(tb.App("f", SortInt, x), tb.App("f", SortInt, y))})
	if shared.Exact == mixed.Exact {
		t.Error("f(x)=f(x) and f(x)=f(y) fingerprint identically")
	}
}

func TestCanonModelRoundTrip(t *testing.T) {
	// Two alpha-variant queries: a model for one, pushed through the canon
	// id space, must come back keyed by the other's variable names.
	fpA := Fingerprint(buildSpec(NewTermBuilder(), "i0", false))
	fpB := Fingerprint(buildSpec(NewTermBuilder(), "i9", false))
	if fpA.Exact != fpB.Exact {
		t.Fatal("setup: alpha variants must share an Exact key")
	}
	model := map[string]bool{"i0.c0": false, "i0.c1": true}
	canon := fpA.CanonModel(model)
	back := fpB.ProjectModel(canon)
	want := map[string]bool{"i9.c0": false, "i9.c1": true}
	if len(back) != len(want) {
		t.Fatalf("projected model = %v, want %v", back, want)
	}
	for k, v := range want {
		if back[k] != v {
			t.Fatalf("projected model = %v, want %v", back, want)
		}
	}
}

// randomConjuncts generates n structurally diverse conjuncts; each embeds
// the distinct constant 10+i so commutative siblings always have distinct
// pattern hashes (the case shape normalization fully canonicalizes).
func randomConjuncts(rng *rand.Rand, tb *TermBuilder, prefix string, n int) []*Term {
	v := func(i int) *Term { return tb.IntVar(fmt.Sprintf("%s.v%d", prefix, i)) }
	b := func(i int) *Term { return tb.BoolVar(fmt.Sprintf("%s.c%d", prefix, i)) }
	out := make([]*Term, n)
	for i := 0; i < n; i++ {
		c := tb.Int(int64(10 + i))
		x, y := v(rng.Intn(4)), v(rng.Intn(4))
		switch rng.Intn(5) {
		case 0:
			out[i] = tb.Lt(x, c)
		case 1:
			out[i] = tb.Le(c, y)
		case 2:
			out[i] = tb.Or(b(rng.Intn(3)), tb.Eq(x, c))
		case 3:
			out[i] = tb.Eq(tb.App("f", SortInt, x), c)
		default:
			out[i] = tb.Not(tb.Eq(tb.Add(x, c), y))
		}
	}
	return out
}

// FuzzFingerprint is the canonical-hashing property test: for a random
// formula, (1) an alpha-renamed copy fingerprints identically under both
// keys, and (2) a copy whose commutative arguments are supplied in a random
// permutation — from an independently-seeded builder, so term IDs differ
// too — has the same Shape key.
func FuzzFingerprint(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed%5)+2)
	}
	f.Fuzz(func(t *testing.T, seed int64, size uint8) {
		n := int(size%8) + 2

		build := func(prefix string, perm []int) *Canon {
			tb := NewTermBuilder()
			conj := randomConjuncts(rand.New(rand.NewSource(seed)), tb, prefix, n)
			if perm != nil {
				shuffled := make([]*Term, n)
				for i, p := range perm {
					shuffled[i] = conj[p]
				}
				conj = shuffled
			}
			return Fingerprint([]*Term{tb.And(conj...)})
		}

		base := build("a", nil)
		renamed := build("z", nil)
		if base.Exact != renamed.Exact || base.Shape != renamed.Shape {
			t.Fatalf("seed=%d n=%d: alpha-renamed copy fingerprints differently", seed, n)
		}

		perm := rand.New(rand.NewSource(seed ^ 0x5eed)).Perm(n)
		reordered := build("b", perm)
		if base.Shape != reordered.Shape {
			t.Fatalf("seed=%d n=%d perm=%v: commutative reorder changed Shape", seed, n, perm)
		}
	})
}
