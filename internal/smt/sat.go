package smt

// CDCL SAT solver: conflict-driven clause learning with two-watched-literal
// propagation, first-UIP learning, VSIDS branching with phase saving, and
// Luby-sequence restarts. Variables are 1-based; literals use the usual
// +v / -v integer encoding.

// Lit is a propositional literal: +v or -v for variable v >= 1.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learned bool
	act     float64
}

// SATSolver is a CDCL solver instance. Add variables with NewVar, clauses
// with AddClause, and call Solve (optionally with assumptions).
type SATSolver struct {
	clauses  []*clause
	watches  map[Lit][]*clause
	assign   []lbool // indexed by variable
	level    []int
	reason   []*clause
	phase    []bool
	activity []float64
	varInc   float64

	trail    []Lit
	trailLim []int
	qhead    int

	order   *varHeap
	nVars   int
	rootCtx []Lit // assumption literals of the active Solve call
	// selectors holds one assumption literal per open Push scope. Clauses
	// added while a scope is open are tagged with the innermost selector's
	// negation so Pop can retract them wholesale; learned clauses are
	// derived by resolution from the (physically persistent) clause
	// database, so any learned clause depending on a scoped clause carries
	// that scope's selector literal and deactivates with it — the rest are
	// retained across Pop.
	selectors []Lit

	// Stats for the harness.
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learned      int64
}

// NewSATSolver returns an empty solver.
func NewSATSolver() *SATSolver {
	s := &SATSolver{
		watches: make(map[Lit][]*clause),
		varInc:  1.0,
	}
	// Index 0 unused.
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.order = newVarHeap(&s.activity)
	return s
}

// NewVar allocates a fresh variable and returns its index (>= 1).
func (s *SATSolver) NewVar() int {
	s.nVars++
	v := s.nVars
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.order.push(v)
	return v
}

func (s *SATSolver) value(l Lit) lbool {
	a := s.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if (a == lTrue) == l.Sign() {
		return lTrue
	}
	return lFalse
}

// AddClause adds a problem clause. It returns false if the clause makes the
// formula trivially unsatisfiable at the root level. While an assumption
// scope is open (see Push) the clause is tagged with the scope's selector
// so Pop retracts it.
func (s *SATSolver) AddClause(lits ...Lit) bool {
	if n := len(s.selectors); n > 0 {
		tagged := make([]Lit, 0, len(lits)+1)
		tagged = append(tagged, lits...)
		lits = append(tagged, s.selectors[n-1].Neg())
	}
	return s.addClause(lits)
}

func (s *SATSolver) addClause(lits []Lit) bool {
	// Deduplicate; drop tautologies and false literals at root level.
	seen := make(map[Lit]bool, len(lits))
	var out []Lit
	for _, l := range lits {
		if seen[l] {
			continue
		}
		if seen[l.Neg()] {
			return true // tautology
		}
		switch s.value(l) {
		case lTrue:
			if s.level[l.Var()] == 0 {
				return true // already satisfied forever
			}
		case lFalse:
			if s.level[l.Var()] == 0 {
				continue // falsified forever
			}
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		return false
	case 1:
		if s.value(out[0]) == lFalse {
			return false
		}
		if s.value(out[0]) == lUndef {
			s.enqueue(out[0], nil)
		}
		return s.propagate() == nil
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *SATSolver) watch(c *clause) {
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], c)
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], c)
}

func (s *SATSolver) enqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.phase[v] = l.Sign()
	s.trail = append(s.trail, l)
}

func (s *SATSolver) decisionLevel() int { return len(s.trailLim) }

// propagate runs unit propagation; it returns the conflicting clause or nil.
func (s *SATSolver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[l]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if conflict != nil {
				kept = append(kept, c)
				continue
			}
			// Normalize: the falsified watch at position 1.
			if c.lits[0].Neg() == l {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, c)
			if s.value(c.lits[0]) == lFalse {
				conflict = c
				continue
			}
			s.enqueue(c.lits[0], c)
		}
		s.watches[l] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis; it returns the learned
// clause (with the asserting literal first) and the backjump level.
func (s *SATSolver) analyze(conflict *clause) ([]Lit, int) {
	learned := []Lit{0} // slot 0 for the asserting literal
	seen := make(map[int]bool)
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	c := conflict

	for {
		start := 0
		if p != 0 {
			start = 1 // skip the asserting literal of the reason
		}
		if c.learned {
			s.bumpClause(c)
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Walk the trail backwards to the next marked literal.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		seen[p.Var()] = false
		idx--
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()]
	}
	learned[0] = p.Neg()

	// Backjump level: second-highest level in the clause.
	bl := 0
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].Var()] > s.level[learned[maxI].Var()] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		bl = s.level[learned[1].Var()]
	}
	return learned, bl
}

func (s *SATSolver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *SATSolver) bumpClause(c *clause) { c.act++ }

func (s *SATSolver) decayVar() { s.varInc /= 0.95 }

func (s *SATSolver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *SATSolver) pickBranchLit() Lit {
	for {
		v := s.order.pop()
		if v == 0 {
			return 0
		}
		if s.assign[v] == lUndef {
			if s.phase[v] {
				return Lit(v)
			}
			return Lit(-v)
		}
	}
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int) int64 {
	// Find the subsequence: k such that i = 2^k - 1 -> 2^(k-1).
	k := 1
	for p := int64(2); ; p *= 2 {
		if int64(i) == p-1 {
			return p / 2
		}
		if int64(i) < p-1 {
			return luby(i - int(p/2) + 1)
		}
		k++
		_ = k
	}
}

// Push opens an assumption scope: subsequent clauses are gated on a fresh
// selector literal that Solve assumes true until the matching Pop.
func (s *SATSolver) Push() {
	s.cancelUntil(0)
	v := s.NewVar()
	s.selectors = append(s.selectors, Lit(v))
}

// Pop closes the innermost assumption scope, permanently deactivating the
// clauses added within it. Learned clauses that do not depend on the scope
// are retained.
func (s *SATSolver) Pop() {
	n := len(s.selectors)
	if n == 0 {
		return
	}
	sel := s.selectors[n-1]
	s.selectors = s.selectors[:n-1]
	s.cancelUntil(0)
	// Disable the scope forever; added untagged so it survives outer Pops.
	s.addClause([]Lit{sel.Neg()})
}

// Reset returns the solver to its freshly-constructed state while keeping
// the backing allocations (clause slice, watch map, trail) for reuse. A
// reset solver behaves identically to a new one.
func (s *SATSolver) Reset() {
	s.clauses = s.clauses[:0]
	clear(s.watches)
	s.assign = s.assign[:1]
	s.level = s.level[:1]
	s.reason = s.reason[:1]
	s.phase = s.phase[:1]
	s.activity = s.activity[:1]
	s.varInc = 1.0
	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	s.qhead = 0
	s.order.reset()
	s.nVars = 0
	s.rootCtx = nil
	s.selectors = nil
	s.Conflicts, s.Decisions, s.Propagations, s.Learned = 0, 0, 0, 0
}

// Solve decides satisfiability under the given assumptions. It returns
// (true, nil) when satisfiable, and (false, conflictSubset) when not, where
// conflictSubset is the subset of assumptions used in the refutation (may be
// empty when the formula is unsatisfiable on its own). Selectors of open
// Push scopes are implicitly assumed before the given assumptions.
func (s *SATSolver) Solve(assumptions ...Lit) (bool, []Lit) {
	if n := len(s.selectors); n > 0 {
		all := make([]Lit, 0, n+len(assumptions))
		all = append(all, s.selectors...)
		assumptions = append(all, assumptions...)
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		return false, nil
	}
	s.rootCtx = assumptions

	restart := 1
	conflictBudget := 64 * luby(restart)
	conflictsHere := int64(0)

	for {
		conflict := s.propagate()
		if conflict != nil {
			s.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				return false, nil
			}
			// Conflicts at assumption levels: extract the failing
			// assumption set.
			learned, bl := s.analyze(conflict)
			if bl < len(s.rootCtx) {
				// Backjumping below an assumption level: the
				// assumptions themselves conflict.
				core := s.assumptionCore(conflict)
				s.cancelUntil(0)
				return false, core
			}
			s.cancelUntil(bl)
			c := &clause{lits: learned, learned: true}
			s.Learned++
			if len(learned) == 1 {
				s.enqueue(learned[0], nil)
			} else {
				s.clauses = append(s.clauses, c)
				s.watch(c)
				s.enqueue(learned[0], c)
			}
			s.decayVar()
			if conflictsHere > conflictBudget {
				restart++
				conflictBudget = 64 * luby(restart)
				conflictsHere = 0
				s.cancelUntil(len(s.rootCtx))
			}
			continue
		}

		// Place pending assumptions as decision levels.
		if s.decisionLevel() < len(s.rootCtx) {
			a := s.rootCtx[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already implied; introduce an empty level.
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				core := s.analyzeFinal(a)
				s.cancelUntil(0)
				return false, core
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(a, nil)
			}
			continue
		}

		l := s.pickBranchLit()
		if l == 0 {
			return true, nil
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(l, nil)
	}
}

// assumptionCore conservatively reports all assumptions as the core when a
// conflict reaches the assumption levels.
func (s *SATSolver) assumptionCore(conflict *clause) []Lit {
	return append([]Lit(nil), s.rootCtx...)
}

// analyzeFinal computes the subset of assumptions implying the negation of
// a, for the case where assumption a is already falsified.
func (s *SATSolver) analyzeFinal(a Lit) []Lit {
	seen := map[int]bool{a.Var(): true}
	var core []Lit
	core = append(core, a)
	for i := len(s.trail) - 1; i >= 0; i-- {
		v := s.trail[i].Var()
		if !seen[v] {
			continue
		}
		if s.reason[v] == nil {
			if s.level[v] > 0 {
				core = append(core, s.trail[i])
			}
		} else {
			for _, q := range s.reason[v].lits[1:] {
				if s.level[q.Var()] > 0 {
					seen[q.Var()] = true
				}
			}
		}
	}
	return core
}

// ValueOf returns the model value of variable v after a satisfiable Solve.
func (s *SATSolver) ValueOf(v int) bool { return s.assign[v] == lTrue }

// varHeap is a max-heap of variables ordered by activity.
type varHeap struct {
	act   *[]float64
	heap  []int
	index map[int]int
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act, index: make(map[int]int)}
}

func (h *varHeap) less(i, j int) bool {
	return (*h.act)[h.heap[i]] > (*h.act)[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.index[h.heap[i]] = i
	h.index[h.heap[j]] = j
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *varHeap) push(v int) {
	if _, ok := h.index[v]; ok {
		return
	}
	h.heap = append(h.heap, v)
	h.index[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) reset() {
	h.heap = h.heap[:0]
	clear(h.index)
}

func (h *varHeap) pop() int {
	if len(h.heap) == 0 {
		return 0
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	delete(h.index, v)
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if i, ok := h.index[v]; ok {
		h.up(i)
		h.down(h.index[v])
		_ = i
	}
}
