package smt

// Tseitin transformation: translate a boolean term DAG into CNF clauses
// over SAT variables, introducing one proxy variable per boolean subterm.
// Theory atoms (equalities, inequalities, boolean variables, boolean-sorted
// applications) become SAT variables whose meaning the theory layer checks.

// atomInfo records the theory atom a SAT variable stands for.
type atomInfo struct {
	term *Term
}

// cnfEncoder maps boolean structure to clauses and atoms to SAT variables.
type cnfEncoder struct {
	sat   *SATSolver
	vars  map[int]int   // term id -> SAT var
	atoms map[int]*Term // SAT var -> atom term
	// scopes tracks, per open Push scope, the term ids first encoded in
	// that scope. Their Tseitin definition clauses are retracted by the
	// SAT layer on Pop, so the memoized mappings must be dropped too —
	// otherwise a later assert would reuse a proxy variable whose
	// defining clauses are disabled.
	scopes [][]int
}

func newCNFEncoder(sat *SATSolver) *cnfEncoder {
	return &cnfEncoder{
		sat:   sat,
		vars:  make(map[int]int),
		atoms: make(map[int]*Term),
	}
}

func (e *cnfEncoder) push() { e.scopes = append(e.scopes, nil) }

func (e *cnfEncoder) pop() {
	n := len(e.scopes)
	if n == 0 {
		return
	}
	for _, id := range e.scopes[n-1] {
		v := e.vars[id]
		delete(e.vars, id)
		delete(e.atoms, v)
	}
	e.scopes = e.scopes[:n-1]
}

func (e *cnfEncoder) reset() {
	clear(e.vars)
	clear(e.atoms)
	e.scopes = nil
}

func (e *cnfEncoder) noteScoped(id int) {
	if n := len(e.scopes); n > 0 {
		e.scopes[n-1] = append(e.scopes[n-1], id)
	}
}

// isAtom reports whether a boolean term is opaque to the propositional
// layer (no boolean connective structure).
func isAtom(t *Term) bool {
	switch t.Kind {
	case TVar, TEq, TLt, TLe, TApp:
		return true
	}
	return false
}

// lit returns a SAT literal equivalent to t (which must be boolean and not
// a constant), emitting Tseitin clauses for subterm structure on demand.
func (e *cnfEncoder) lit(t *Term) Lit {
	switch t.Kind {
	case TNot:
		return e.lit(t.Args[0]).Neg()
	case TBoolConst:
		// Encode constants as a fixed variable forced at root level.
		v := e.varFor(t)
		if t.Int == 1 {
			e.sat.AddClause(Lit(v))
		} else {
			e.sat.AddClause(Lit(-v))
		}
		return Lit(v)
	}
	if v, ok := e.vars[t.id]; ok {
		return Lit(v)
	}
	v := e.sat.NewVar()
	e.vars[t.id] = v
	e.noteScoped(t.id)
	p := Lit(v)
	switch {
	case isAtom(t):
		e.atoms[v] = t
	case t.Kind == TAnd:
		// p <-> a1 & ... & an
		var all []Lit
		for _, a := range t.Args {
			la := e.lit(a)
			e.sat.AddClause(p.Neg(), la) // p -> ai
			all = append(all, la.Neg())
		}
		e.sat.AddClause(append(all, p)...) // a1&..&an -> p
	case t.Kind == TOr:
		var all []Lit
		for _, a := range t.Args {
			la := e.lit(a)
			e.sat.AddClause(p, la.Neg()) // ai -> p
			all = append(all, la)
		}
		e.sat.AddClause(append(all, p.Neg())...) // p -> a1|..|an
	default:
		// Unexpected boolean structure: treat as opaque atom.
		e.atoms[v] = t
	}
	return p
}

func (e *cnfEncoder) varFor(t *Term) int {
	if v, ok := e.vars[t.id]; ok {
		return v
	}
	v := e.sat.NewVar()
	e.vars[t.id] = v
	e.noteScoped(t.id)
	return v
}

// assert adds the clauses forcing t to hold.
func (e *cnfEncoder) assert(t *Term) bool {
	if t.IsTrue() {
		return true
	}
	if t.IsFalse() {
		return e.sat.AddClause() // empty clause: unsat
	}
	// Top-level conjunctions assert each conjunct directly — cheaper
	// than forcing the proxy.
	if t.Kind == TAnd {
		for _, a := range t.Args {
			if !e.assert(a) {
				return false
			}
		}
		return true
	}
	return e.sat.AddClause(e.lit(t))
}
