package cond

import (
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	b := NewBuilder()
	if !b.True().IsTrue() || b.True().IsFalse() {
		t.Fatal("True() broken")
	}
	if !b.False().IsFalse() || b.False().IsTrue() {
		t.Fatal("False() broken")
	}
	if b.True() != b.True() || b.False() != b.False() {
		t.Fatal("constants not hash-consed")
	}
}

func TestAtomHashConsing(t *testing.T) {
	b := NewBuilder()
	if b.Atom(1) != b.Atom(1) {
		t.Fatal("same atom not pointer-equal")
	}
	if b.Atom(1) == b.Atom(2) {
		t.Fatal("distinct atoms pointer-equal")
	}
}

func TestNotFolding(t *testing.T) {
	b := NewBuilder()
	a := b.Atom(1)
	if b.Not(b.True()) != b.False() {
		t.Fatal("!true != false")
	}
	if b.Not(b.False()) != b.True() {
		t.Fatal("!false != true")
	}
	if b.Not(b.Not(a)) != a {
		t.Fatal("double negation not eliminated")
	}
	if b.Not(a) != b.Not(a) {
		t.Fatal("Not not hash-consed")
	}
}

func TestAndSimplifications(t *testing.T) {
	b := NewBuilder()
	a1, a2 := b.Atom(1), b.Atom(2)
	if b.And() != b.True() {
		t.Fatal("empty And != true")
	}
	if b.And(a1) != a1 {
		t.Fatal("unary And not identity")
	}
	if b.And(a1, b.True()) != a1 {
		t.Fatal("true not dropped from And")
	}
	if b.And(a1, b.False()) != b.False() {
		t.Fatal("false does not absorb And")
	}
	if b.And(a1, a1) != a1 {
		t.Fatal("duplicate operand not removed")
	}
	if b.And(a1, b.Not(a1)) != b.False() {
		t.Fatal("a & !a != false")
	}
	if b.And(a1, a2) != b.And(a2, a1) {
		t.Fatal("And not canonicalized by operand order")
	}
	// Flattening: (a1 & a2) & a1 == a1 & a2.
	if b.And(b.And(a1, a2), a1) != b.And(a1, a2) {
		t.Fatal("nested And not flattened")
	}
}

func TestOrSimplifications(t *testing.T) {
	b := NewBuilder()
	a1, a2 := b.Atom(1), b.Atom(2)
	if b.Or() != b.False() {
		t.Fatal("empty Or != false")
	}
	if b.Or(a1, b.False()) != a1 {
		t.Fatal("false not dropped from Or")
	}
	if b.Or(a1, b.True()) != b.True() {
		t.Fatal("true does not absorb Or")
	}
	if b.Or(a1, b.Not(a1)) != b.True() {
		t.Fatal("a | !a != true")
	}
	if b.Or(a1, a2) != b.Or(a2, a1) {
		t.Fatal("Or not canonicalized")
	}
}

func TestImplies(t *testing.T) {
	b := NewBuilder()
	a := b.Atom(1)
	if b.Implies(b.True(), a) != a {
		t.Fatal("true => a should be a")
	}
	if b.Implies(a, b.True()) != b.True() {
		t.Fatal("a => true should be true")
	}
	if b.Implies(a, a) != b.True() {
		t.Fatal("a => a should be true")
	}
}

func TestAtomsAndSize(t *testing.T) {
	b := NewBuilder()
	c := b.And(b.Atom(1), b.Or(b.Atom(2), b.Not(b.Atom(3))))
	atoms := Atoms(c)
	for _, want := range []int{1, 2, 3} {
		if !atoms[want] {
			t.Fatalf("atom %d missing from %v", want, atoms)
		}
	}
	if len(atoms) != 3 {
		t.Fatalf("got %d atoms, want 3", len(atoms))
	}
	if s := Size(c); s < 4 {
		t.Fatalf("Size = %d, want >= 4", s)
	}
}

func TestLinearSolverPaperRules(t *testing.T) {
	b := NewBuilder()
	ls := NewLinearSolver()
	a1, a2, a3 := b.Atom(1), b.Atom(2), b.Atom(3)

	cases := []struct {
		name  string
		c     *Cond
		unsat bool
	}{
		{"atom", a1, false},
		{"contradiction", b.And(a1, b.Not(a1)), true},
		{"deep contradiction", b.And(a1, a2, b.And(a3, b.Not(a2))), true},
		{"neg of conj", b.Not(b.And(a1, b.Not(a1))), false},
		{"or hides contradiction", b.Or(b.And(a1, b.Not(a1)), a2), false},
		// (a1 | a2) & !a1 & !a2: P = {}, N = {1,2}; no overlap, so the
		// linear filter must conservatively say "possibly sat" even
		// though the condition is really unsat.
		{"incomplete", b.And(b.Or(a1, a2), b.Not(a1), b.Not(a2)), false},
		{"false", b.False(), true},
		{"true", b.True(), false},
	}
	for _, tc := range cases {
		// Builder simplification may already fold some of these to
		// false; both paths must agree with the expected verdict.
		if got := ls.ApparentlyUnsat(tc.c); got != tc.unsat {
			t.Errorf("%s: ApparentlyUnsat(%s) = %v, want %v", tc.name, tc.c, got, tc.unsat)
		}
	}
}

// Disable builder-level complementary-literal folding is not possible, so to
// exercise the P/N propagation through Or we construct conditions whose
// contradiction spans operands of an And of Ors.
func TestLinearSolverOrIntersection(t *testing.T) {
	b := NewBuilder()
	ls := NewLinearSolver()
	a1, a2 := b.Atom(1), b.Atom(2)
	// (a1 | (a1 & a2)): P = {1}, N = {}.
	c1 := b.Or(a1, b.And(a1, a2))
	// !a1: P = {}, N = {1}. Conjunction has P∩N = {1} -> unsat.
	c := b.And(c1, b.Not(a1))
	if !ls.ApparentlyUnsat(c) {
		t.Fatalf("expected apparent unsat for %s", c)
	}
}

func TestAndFeasible(t *testing.T) {
	b := NewBuilder()
	ls := NewLinearSolver()
	a := b.Atom(1)
	c, ok := ls.AndFeasible(b, a, b.Not(a))
	if ok || !c.IsFalse() {
		t.Fatal("contradictory guard not pruned")
	}
	c, ok = ls.AndFeasible(b, a, b.Atom(2))
	if !ok || c.IsFalse() {
		t.Fatal("feasible guard pruned")
	}
	if ls.Queries != 2 || ls.Unsat != 1 {
		t.Fatalf("stats = %d/%d, want 2/1", ls.Queries, ls.Unsat)
	}
}

// Property: the builder never produces a node that the linear solver calls
// unsat unless the node is literally False — because builder simplification
// already removes complementary literals at a single level, any remaining
// apparent contradiction must span levels.
func TestQuickBuilderVsLinear(t *testing.T) {
	b := NewBuilder()
	ls := NewLinearSolver()
	f := func(ids []uint8, negs []bool) bool {
		if len(ids) == 0 {
			return true
		}
		ops := make([]*Cond, 0, len(ids))
		for i, id := range ids {
			c := b.Atom(int(id % 8))
			if i < len(negs) && negs[i] {
				c = b.Not(c)
			}
			ops = append(ops, c)
		}
		c := b.And(ops...)
		// Single-level And: builder folding and linear solver must agree.
		return c.IsFalse() == ls.ApparentlyUnsat(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: And/Or are commutative and idempotent under hash consing.
func TestQuickCommutative(t *testing.T) {
	b := NewBuilder()
	f := func(x, y uint8, neg bool) bool {
		cx, cy := b.Atom(int(x%16)), b.Atom(int(y%16))
		if neg {
			cy = b.Not(cy)
		}
		return b.And(cx, cy) == b.And(cy, cx) &&
			b.Or(cx, cy) == b.Or(cy, cx) &&
			b.And(cx, cx) == cx && b.Or(cy, cy) == cy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	b := NewBuilder()
	c := b.And(b.Atom(1), b.Not(b.Or(b.Atom(2), b.Atom(3))))
	s := c.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	// Smoke-check the pieces are present.
	for _, frag := range []string{"a1", "a2", "a3", "!"} {
		if !contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
