package cond

// This file implements the linear-time contradiction solver of Pinpoint
// §3.1.1. The solver collects, for a condition C, the sets P(C) and N(C) of
// atoms that appear positively resp. negatively along every disjunct:
//
//	C = a        =>  P = {a},          N = {}
//	C = !C1      =>  P = N(C1),        N = P(C1)
//	C = C1 & C2  =>  P = P1 ∪ P2,      N = N1 ∪ N2
//	C = C1 | C2  =>  P = P1 ∩ P2,      N = N1 ∩ N2
//
// If P(C) ∩ N(C) is non-empty then C contains an "apparent contradiction"
// a & !a and is unsatisfiable. The converse does not hold: the solver is a
// cheap filter, not a decision procedure. Per the paper's observation, the
// vast majority (>90%) of unsatisfiable path conditions arising during the
// local points-to analysis are of this easy form, so filtering them here
// avoids invoking the SMT solver at SEG-construction time entirely.

// atomSet is a small immutable set of atom IDs. Sets are shared between
// memoized results, so they must never be mutated after construction.
type atomSet map[int]struct{}

var emptyAtomSet = atomSet{}

func (s atomSet) union(t atomSet) atomSet {
	if len(s) == 0 {
		return t
	}
	if len(t) == 0 {
		return s
	}
	out := make(atomSet, len(s)+len(t))
	for a := range s {
		out[a] = struct{}{}
	}
	for a := range t {
		out[a] = struct{}{}
	}
	return out
}

func (s atomSet) intersect(t atomSet) atomSet {
	if len(s) == 0 || len(t) == 0 {
		return emptyAtomSet
	}
	if len(t) < len(s) {
		s, t = t, s
	}
	out := make(atomSet)
	for a := range s {
		if _, ok := t[a]; ok {
			out[a] = struct{}{}
		}
	}
	if len(out) == 0 {
		return emptyAtomSet
	}
	return out
}

func (s atomSet) intersects(t atomSet) bool {
	if len(t) < len(s) {
		s, t = t, s
	}
	for a := range s {
		if _, ok := t[a]; ok {
			return true
		}
	}
	return false
}

type pnSets struct {
	p, n atomSet
}

// LinearSolver decides "apparent unsatisfiability" of conditions in time
// linear in the number of distinct nodes. Results are memoized per node, so
// repeated queries over a growing condition (the common pattern during
// points-to analysis, where guards are extended by one conjunct at a time)
// stay cheap.
type LinearSolver struct {
	memo map[int]pnSets
	// Stats counts queries and how many were filtered as unsat; the
	// ablation benchmark reports these to validate the paper's ">90% of
	// unsat constraints are easy" observation.
	Queries int
	Unsat   int
}

// NewLinearSolver returns an empty solver. A solver may be shared across all
// conditions of one Builder.
func NewLinearSolver() *LinearSolver {
	return &LinearSolver{memo: make(map[int]pnSets)}
}

func (ls *LinearSolver) sets(c *Cond) pnSets {
	if r, ok := ls.memo[c.id]; ok {
		return r
	}
	var r pnSets
	switch c.kind {
	case KTrue, KFalse:
		r = pnSets{emptyAtomSet, emptyAtomSet}
	case KAtom:
		r = pnSets{atomSet{c.atom: {}}, emptyAtomSet}
	case KNot:
		s := ls.sets(c.ops[0])
		r = pnSets{s.n, s.p}
	case KAnd:
		r = ls.sets(c.ops[0])
		for _, op := range c.ops[1:] {
			s := ls.sets(op)
			r = pnSets{r.p.union(s.p), r.n.union(s.n)}
		}
	case KOr:
		r = ls.sets(c.ops[0])
		for _, op := range c.ops[1:] {
			s := ls.sets(op)
			r = pnSets{r.p.intersect(s.p), r.n.intersect(s.n)}
		}
	}
	ls.memo[c.id] = r
	return r
}

// ApparentlyUnsat reports whether c is unsatisfiable by the P/N contradiction
// rule. A false result means "possibly satisfiable".
func (ls *LinearSolver) ApparentlyUnsat(c *Cond) bool {
	ls.Queries++
	if c.IsFalse() {
		ls.Unsat++
		return true
	}
	if c.IsTrue() {
		return false
	}
	s := ls.sets(c)
	if s.p.intersects(s.n) {
		ls.Unsat++
		return true
	}
	return false
}

// AndFeasible conjoins the given conditions and returns the result together
// with a feasibility verdict from the linear filter. It is the workhorse of
// the quasi path-sensitive points-to analysis: guards judged apparently
// unsatisfiable are pruned without ever reaching the SMT solver.
func (ls *LinearSolver) AndFeasible(b *Builder, cs ...*Cond) (*Cond, bool) {
	c := b.And(cs...)
	if ls.ApparentlyUnsat(c) {
		return b.False(), false
	}
	return c, true
}
