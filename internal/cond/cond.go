// Package cond provides the symbolic condition representation used across
// the analysis, together with the linear-time contradiction solver of
// Pinpoint §3.1.1.
//
// A condition is a hash-consed boolean DAG over opaque atoms. Atoms are
// identified by integer IDs handed out by the client (typically SSA value IDs
// of branch variables or comparison expressions). Hash consing guarantees
// that structurally equal conditions are pointer-equal, which keeps the
// graphs compact (the "compact encoding" property of the SEG) and makes
// memoized traversals cheap.
package cond

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates the node forms of a condition DAG.
type Kind uint8

const (
	// KTrue is the always-true condition.
	KTrue Kind = iota
	// KFalse is the always-false condition.
	KFalse
	// KAtom is an opaque boolean atom (e.g. a branch variable).
	KAtom
	// KNot is logical negation of a single operand.
	KNot
	// KAnd is n-ary conjunction.
	KAnd
	// KOr is n-ary disjunction.
	KOr
)

// Cond is an immutable node in a condition DAG. Nodes must be created
// through a Builder; the zero value is not meaningful.
type Cond struct {
	kind Kind
	atom int     // valid when kind == KAtom
	ops  []*Cond // operands for KNot (1) / KAnd / KOr (>= 2)
	id   int     // unique per Builder, used for memoization keys
}

// Kind reports the node form.
func (c *Cond) Kind() Kind { return c.kind }

// Atom returns the atom ID of a KAtom node.
func (c *Cond) Atom() int {
	if c.kind != KAtom {
		panic("cond: Atom called on non-atom")
	}
	return c.atom
}

// Ops returns the operand list. Callers must not mutate it.
func (c *Cond) Ops() []*Cond { return c.ops }

// ID returns the node's unique ID within its Builder.
func (c *Cond) ID() int { return c.id }

// IsTrue reports whether c is the constant true.
func (c *Cond) IsTrue() bool { return c.kind == KTrue }

// IsFalse reports whether c is the constant false.
func (c *Cond) IsFalse() bool { return c.kind == KFalse }

// String renders the condition in a readable infix form. Atom IDs are
// printed as "aN"; clients with richer atom names should render themselves.
func (c *Cond) String() string {
	var b strings.Builder
	c.write(&b)
	return b.String()
}

func (c *Cond) write(b *strings.Builder) {
	switch c.kind {
	case KTrue:
		b.WriteString("true")
	case KFalse:
		b.WriteString("false")
	case KAtom:
		fmt.Fprintf(b, "a%d", c.atom)
	case KNot:
		b.WriteString("!")
		if c.ops[0].kind == KAnd || c.ops[0].kind == KOr {
			b.WriteString("(")
			c.ops[0].write(b)
			b.WriteString(")")
		} else {
			c.ops[0].write(b)
		}
	case KAnd, KOr:
		sep := " & "
		if c.kind == KOr {
			sep = " | "
		}
		b.WriteString("(")
		for i, op := range c.ops {
			if i > 0 {
				b.WriteString(sep)
			}
			op.write(b)
		}
		b.WriteString(")")
	}
}

// Builder hash-conses condition nodes. A mutex guards the intern tables, so
// a Builder may be shared by concurrent readers and writers (the parallel
// detection scheduler conjoins conditions from many worker goroutines);
// node identity is stable because every structural key maps to exactly one
// node for the Builder's lifetime.
type Builder struct {
	mu     sync.Mutex
	trueC  *Cond
	falseC *Cond
	atoms  map[int]*Cond
	nots   map[int]*Cond    // operand id -> node
	nary   map[string]*Cond // structural key -> node
	nextID int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	b := &Builder{
		atoms: make(map[int]*Cond),
		nots:  make(map[int]*Cond),
		nary:  make(map[string]*Cond),
	}
	b.trueC = b.newNode(KTrue, 0, nil)
	b.falseC = b.newNode(KFalse, 0, nil)
	return b
}

func (b *Builder) newNode(k Kind, atom int, ops []*Cond) *Cond {
	c := &Cond{kind: k, atom: atom, ops: ops, id: b.nextID}
	b.nextID++
	return c
}

// NumNodes returns the number of distinct nodes created so far. The bench
// harness uses it as a deterministic size/memory proxy.
func (b *Builder) NumNodes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextID
}

// True returns the constant true condition.
func (b *Builder) True() *Cond { return b.trueC }

// False returns the constant false condition.
func (b *Builder) False() *Cond { return b.falseC }

// Atom returns the (hash-consed) atom with the given ID.
func (b *Builder) Atom(id int) *Cond {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c, ok := b.atoms[id]; ok {
		return c
	}
	c := b.newNode(KAtom, id, nil)
	b.atoms[id] = c
	return c
}

// Not returns the negation of c, applying constant folding, double-negation
// elimination, and hash consing.
func (b *Builder) Not(c *Cond) *Cond {
	switch c.kind {
	case KTrue:
		return b.falseC
	case KFalse:
		return b.trueC
	case KNot:
		return c.ops[0]
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n, ok := b.nots[c.id]; ok {
		return n
	}
	n := b.newNode(KNot, 0, []*Cond{c})
	b.nots[c.id] = n
	return n
}

// And returns the conjunction of the given conditions with flattening,
// deduplication, constant folding, and complementary-literal elimination
// (x & !x == false).
func (b *Builder) And(cs ...*Cond) *Cond {
	return b.buildNary(KAnd, cs)
}

// Or returns the disjunction of the given conditions with the dual
// simplifications of And.
func (b *Builder) Or(cs ...*Cond) *Cond {
	return b.buildNary(KOr, cs)
}

// Implies returns (!a | b).
func (b *Builder) Implies(a, c *Cond) *Cond {
	return b.Or(b.Not(a), c)
}

func (b *Builder) buildNary(k Kind, cs []*Cond) *Cond {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Identity and absorbing elements.
	unit, zero := b.trueC, b.falseC
	if k == KOr {
		unit, zero = b.falseC, b.trueC
	}
	// Flatten nested nodes of the same kind, drop units, detect zeros.
	flat := make([]*Cond, 0, len(cs))
	var flatten func(c *Cond) bool
	flatten = func(c *Cond) bool {
		if c == zero {
			return false
		}
		if c == unit {
			return true
		}
		if c.kind == k {
			for _, op := range c.ops {
				if !flatten(op) {
					return false
				}
			}
			return true
		}
		flat = append(flat, c)
		return true
	}
	for _, c := range cs {
		if c == nil {
			panic("cond: nil operand")
		}
		if !flatten(c) {
			return zero
		}
	}
	if len(flat) == 0 {
		return unit
	}
	// Sort by node ID and deduplicate; detect x and !x pairs.
	sort.Slice(flat, func(i, j int) bool { return flat[i].id < flat[j].id })
	out := flat[:0]
	var prev *Cond
	for _, c := range flat {
		if c == prev {
			continue
		}
		out = append(out, c)
		prev = c
	}
	seen := make(map[int]bool, len(out))
	for _, c := range out {
		seen[c.id] = true
	}
	for _, c := range out {
		if c.kind == KNot && seen[c.ops[0].id] {
			return zero
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	key := naryKey(k, out)
	if n, ok := b.nary[key]; ok {
		return n
	}
	ops := make([]*Cond, len(out))
	copy(ops, out)
	n := b.newNode(k, 0, ops)
	b.nary[key] = n
	return n
}

func naryKey(k Kind, ops []*Cond) string {
	var sb strings.Builder
	if k == KAnd {
		sb.WriteByte('&')
	} else {
		sb.WriteByte('|')
	}
	for _, op := range ops {
		fmt.Fprintf(&sb, ",%d", op.id)
	}
	return sb.String()
}

// Atoms returns the set of atom IDs appearing anywhere in c.
func Atoms(c *Cond) map[int]bool {
	out := make(map[int]bool)
	seen := make(map[int]bool)
	var walk func(*Cond)
	walk = func(n *Cond) {
		if seen[n.id] {
			return
		}
		seen[n.id] = true
		if n.kind == KAtom {
			out[n.atom] = true
			return
		}
		for _, op := range n.ops {
			walk(op)
		}
	}
	walk(c)
	return out
}

// Size returns the number of distinct nodes reachable from c.
func Size(c *Cond) int {
	seen := make(map[int]bool)
	var walk func(*Cond)
	walk = func(n *Cond) {
		if seen[n.id] {
			return
		}
		seen[n.id] = true
		for _, op := range n.ops {
			walk(op)
		}
	}
	walk(c)
	return len(seen)
}
