package cond

import (
	"fmt"

	"repro/internal/wirebin"
)

// NodeWire is the serialized form of one Cond node. A Builder's node set is
// exported as a dense slice indexed by node ID, so operand references are
// plain integer IDs pointing at earlier slice entries (operands are always
// created before the nodes that use them).
type NodeWire struct {
	Kind Kind
	Atom int32
	Ops  []int32
}

// Export snapshots the builder's full node set in ID order. Together with
// ImportBuilder it round-trips the builder exactly: node IDs, intern
// tables, and therefore the operand ordering of future And/Or calls (which
// sort by node ID) are all preserved.
func (b *Builder) Export() ([]NodeWire, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	nodes := make([]*Cond, b.nextID)
	reg := func(c *Cond) error {
		if c.id < 0 || c.id >= len(nodes) || nodes[c.id] != nil {
			return fmt.Errorf("cond: export: bad node id %d", c.id)
		}
		nodes[c.id] = c
		return nil
	}
	if err := reg(b.trueC); err != nil {
		return nil, err
	}
	if err := reg(b.falseC); err != nil {
		return nil, err
	}
	for _, c := range b.atoms {
		if err := reg(c); err != nil {
			return nil, err
		}
	}
	for _, c := range b.nots {
		if err := reg(c); err != nil {
			return nil, err
		}
	}
	for _, c := range b.nary {
		if err := reg(c); err != nil {
			return nil, err
		}
	}
	out := make([]NodeWire, len(nodes))
	for i, c := range nodes {
		if c == nil {
			return nil, fmt.Errorf("cond: export: unregistered node id %d", i)
		}
		w := NodeWire{Kind: c.kind, Atom: int32(c.atom)}
		if len(c.ops) > 0 {
			w.Ops = make([]int32, len(c.ops))
			for j, op := range c.ops {
				w.Ops[j] = int32(op.id)
			}
		}
		out[i] = w
	}
	return out, nil
}

// ImportBuilder reconstructs a Builder from an Export snapshot. It also
// returns the dense node slice so callers can resolve serialized condition
// references (node IDs) back to *Cond values.
func ImportBuilder(wire []NodeWire) (*Builder, []*Cond, error) {
	b := &Builder{
		atoms: make(map[int]*Cond, len(wire)),
		nots:  make(map[int]*Cond),
		nary:  make(map[string]*Cond),
	}
	nodes := make([]*Cond, len(wire))
	for i, w := range wire {
		var ops []*Cond
		if len(w.Ops) > 0 {
			ops = make([]*Cond, len(w.Ops))
			for j, oid := range w.Ops {
				if oid < 0 || int(oid) >= i {
					return nil, nil, fmt.Errorf("cond: import: node %d references out-of-order operand %d", i, oid)
				}
				ops[j] = nodes[oid]
			}
		}
		c := &Cond{kind: w.Kind, atom: int(w.Atom), ops: ops, id: i}
		nodes[i] = c
		switch w.Kind {
		case KTrue:
			if b.trueC != nil {
				return nil, nil, fmt.Errorf("cond: import: duplicate true node at %d", i)
			}
			b.trueC = c
		case KFalse:
			if b.falseC != nil {
				return nil, nil, fmt.Errorf("cond: import: duplicate false node at %d", i)
			}
			b.falseC = c
		case KAtom:
			b.atoms[c.atom] = c
		case KNot:
			if len(ops) != 1 {
				return nil, nil, fmt.Errorf("cond: import: KNot node %d has %d operands", i, len(ops))
			}
			b.nots[ops[0].id] = c
		case KAnd, KOr:
			if len(ops) < 2 {
				return nil, nil, fmt.Errorf("cond: import: nary node %d has %d operands", i, len(ops))
			}
			b.nary[naryKey(w.Kind, ops)] = c
		default:
			return nil, nil, fmt.Errorf("cond: import: node %d has unknown kind %d", i, w.Kind)
		}
	}
	b.nextID = len(wire)
	if b.trueC == nil || b.falseC == nil {
		return nil, nil, fmt.Errorf("cond: import: missing constant nodes")
	}
	return b, nodes, nil
}

// AppendNodeWires appends the binary encoding of an Export snapshot to e.
func AppendNodeWires(e *wirebin.Writer, wire []NodeWire) {
	e.Uvarint(uint64(len(wire)))
	for i := range wire {
		w := &wire[i]
		e.U8(uint8(w.Kind))
		e.I32(w.Atom)
		e.I32s(w.Ops)
	}
}

// DecodeNodeWires reads one Export snapshot from r.
func DecodeNodeWires(r *wirebin.Reader) ([]NodeWire, error) {
	n := r.Len()
	var out []NodeWire
	if n > 0 {
		out = make([]NodeWire, n)
		for i := range out {
			out[i] = NodeWire{Kind: Kind(r.U8()), Atom: r.I32(), Ops: r.I32s()}
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cond: decode node wires: %w", err)
	}
	return out, nil
}
