package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/tenant"
)

// TestTenantIsolation: two projects posting different programs get
// independent sessions — each one's reports come from its own program,
// and neither invalidates the other's sticky cache.
func TestTenantIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	units := unitsJSON(t)

	full, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Project: "alpha", Units: units})
	one, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Project: "beta", Units: units[:1]})
	if full.Stats.Functions <= one.Stats.Functions {
		t.Fatalf("alpha (%d fns) not larger than beta (%d fns); projects share a session?",
			full.Stats.Functions, one.Stats.Functions)
	}
	if full.Project != "alpha" || one.Project != "beta" {
		t.Fatalf("responses echo projects %q/%q, want alpha/beta", full.Project, one.Project)
	}

	// Re-posting alpha's program is a full cache hit: beta's smaller
	// program didn't evict alpha's artifacts the way a shared session
	// would have.
	again, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Project: "alpha", Units: units})
	if again.Stats.ArtifactMisses != 0 || again.Stats.ArtifactHits == 0 {
		t.Fatalf("alpha repeat rebuilt artifacts after beta's request: %+v", again.Stats)
	}
}

// TestNoProjectBytesUnchanged: a request without a project field must
// produce a response with no "project" key at all — the single-tenant
// wire format is byte-compatible with the pre-tenant server.
func TestNoProjectBytesUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, err := json.Marshal(AnalyzeRequest{Units: unitsJSON(t)[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(body, []byte("project")) {
		t.Fatalf("marshaled request leaks a project field: %s", body)
	}
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/analyze: %s: %s", resp.Status, raw)
	}
	if bytes.Contains(raw, []byte(`"project"`)) {
		t.Fatalf("response to a project-less request contains a project key:\n%s", raw)
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"traceId", "reports", "stats", "timing"} {
		if _, ok := keys[want]; !ok {
			t.Errorf("response lost key %q", want)
		}
	}
}

// TestInvalidProjectRejected: malformed project IDs are a client error,
// not a server one.
func TestInvalidProjectRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := []byte(`{"project":"a/b","units":[{"name":"u.mc","src":"void f() {}"}]}`)
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid project: status %d, want 400", resp.StatusCode)
	}
}

// TestDebugTenants: the new endpoint lists every resident project with
// occupancy, and the legacy /debug/session alias still answers with the
// default tenant's schema.
func TestDebugTenants(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	units := unitsJSON(t)
	postAnalyze(t, ts.URL, AnalyzeRequest{Units: units})
	postAnalyze(t, ts.URL, AnalyzeRequest{Project: "alpha", Units: units[:1]})

	for _, path := range []string{"/debug/tenants", "/v1/debug/tenants"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var snap tenant.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Resident != 2 || len(snap.Tenants) != 2 {
			t.Fatalf("%s: resident = %d/%d rows, want 2", path, snap.Resident, len(snap.Tenants))
		}
		if snap.Tenants[0].Project != "alpha" || snap.Tenants[1].Project != "default" {
			t.Fatalf("%s: rows %q/%q, want alpha,default (sorted)",
				path, snap.Tenants[0].Project, snap.Tenants[1].Project)
		}
		for _, row := range snap.Tenants {
			if row.Units == 0 || row.Artifacts == 0 || row.Requests == 0 || row.LastUsedUnixNano == 0 {
				t.Fatalf("%s: empty occupancy row %+v", path, row)
			}
		}
	}

	// Legacy alias: still the default tenant's session occupancy.
	resp, err := http.Get(ts.URL + "/debug/session")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d sessionDebug
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Units != len(units) || d.Functions == 0 {
		t.Fatalf("/debug/session = %+v, want the default tenant's %d units", d, len(units))
	}
}

// TestEvictionThroughHTTP: with MaxTenants=1 and a persistent store,
// admitting a second project evicts the first, and re-requesting the
// first warm-loads from its namespaced store slice with identical
// reports.
func TestEvictionThroughHTTP(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, ts := newTestServer(t, Config{Store: st, MaxTenants: 1, TenantIdle: -1})
	units := unitsJSON(t)

	first, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Project: "alpha", Units: units})
	postAnalyze(t, ts.URL, AnalyzeRequest{Project: "beta", Units: units[:1]})

	var snap tenant.Snapshot
	resp, err := http.Get(ts.URL + "/v1/debug/tenants")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Resident != 1 || snap.Evictions == 0 {
		t.Fatalf("snapshot after over-cap admissions: %+v", snap)
	}

	// alpha comes back warm: artifacts load from the store instead of
	// rebuilding, and the reports are identical.
	back, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Project: "alpha", Units: units})
	if back.Stats.ArtifactStoreHits == 0 || back.Stats.ArtifactMisses != 0 {
		t.Fatalf("readmitted alpha did not warm-load: %+v", back.Stats)
	}
	fb, err := json.Marshal(first.Reports)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(back.Reports)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb, bb) {
		t.Fatalf("readmitted reports differ:\nfirst: %s\nback:  %s", fb, bb)
	}
}

// TestTenantMetricsOnScrape: /metrics carries tenant-labeled phase series
// and the resident gauge after multi-project traffic.
func TestTenantMetricsOnScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	units := unitsJSON(t)
	postAnalyze(t, ts.URL, AnalyzeRequest{Units: units[:1]})
	postAnalyze(t, ts.URL, AnalyzeRequest{Project: "alpha", Units: units[:1]})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	for _, want := range []string{
		`pinpoint_server_phase_ns_count{phase="build",tenant="default"} `,
		`pinpoint_server_phase_ns_count{phase="build",tenant="alpha"} `,
		"# TYPE pinpoint_tenant_resident gauge",
		"pinpoint_tenant_resident 2",
		"pinpoint_tenant_created 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
