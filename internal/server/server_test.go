package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
	"repro/internal/obs"
)

// exampleUnits loads the repository's example programs — the same corpus
// the CLI examples and detect's own tests run on.
func exampleUnits(t *testing.T) []minic.NamedSource {
	t.Helper()
	paths, err := filepath.Glob("../../examples/mc/*.mc")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	sort.Strings(paths)
	var units []minic.NamedSource
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		units = append(units, minic.NamedSource{Name: p, Src: string(data)})
	}
	return units
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s := New(cfg)
	s.ready.Store(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postAnalyze(t *testing.T, url string, req AnalyzeRequest) (*AnalyzeResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /analyze: %s: %s", resp.Status, b)
	}
	var ar AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	return &ar, resp
}

func unitsToJSON(units []minic.NamedSource) []UnitJSON {
	out := make([]UnitJSON, len(units))
	for i, u := range units {
		out[i] = UnitJSON{Name: u.Name, Src: u.Src}
	}
	return out
}

// TestServeMatchesBatch is the tentpole acceptance check: a served analysis
// answers with the same JSONReport values as `pinpoint -format json` batch
// mode, on cold and warm sessions alike.
func TestServeMatchesBatch(t *testing.T) {
	units := exampleUnits(t)

	a, err := core.BuildFromSource(units, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := a.CheckAll(checkers.All(), detect.Options{})
	batch := make([]detect.JSONReport, 0, len(res.Reports))
	for _, r := range res.Reports {
		batch = append(batch, r.ToJSON())
	}
	want, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{})
	req := AnalyzeRequest{Units: unitsToJSON(units)}
	for round, label := range []string{"cold", "warm"} {
		ar, resp := postAnalyze(t, ts.URL, req)
		got, err := json.Marshal(ar.Reports)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s serve reports differ from batch mode:\nserve: %s\nbatch: %s", label, got, want)
		}
		if ar.TraceID == "" || resp.Header.Get("X-Trace-Id") != ar.TraceID {
			t.Errorf("%s: traceId %q not echoed in X-Trace-Id header %q",
				label, ar.TraceID, resp.Header.Get("X-Trace-Id"))
		}
		if round == 1 && (ar.Stats.ArtifactHits == 0 || ar.Stats.ArtifactMisses+ar.Stats.ArtifactInvalidated != 0) {
			t.Errorf("warm request did not reuse artifacts: %+v", ar.Stats)
		}
	}

	// Witness mode adds provenance without disturbing the base fields.
	req.Witness = true
	ar, _ := postAnalyze(t, ts.URL, req)
	if len(ar.Reports) == 0 {
		t.Fatal("witness request returned no reports")
	}
	for _, r := range ar.Reports {
		if r.Provenance == nil {
			t.Errorf("witness request: report %s:%d has no provenance", r.SourceFile, r.SourceLine)
		}
	}
}

// TestMetricsScrapeDuringAnalyze runs concurrent /metrics, /debug/*, and
// probe scrapes while /analyze requests are in flight — the -race exercise
// for the lock-consistent snapshot path.
func TestMetricsScrapeDuringAnalyze(t *testing.T) {
	units := exampleUnits(t)
	_, ts := newTestServer(t, Config{MaxInFlight: 4, Rec: obs.New()})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrape := func(path string, wantType string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Errorf("GET %s: %v", path, err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s: %s", path, resp.Status)
				return
			}
			if wantType != "" && !strings.HasPrefix(resp.Header.Get("Content-Type"), wantType) {
				t.Errorf("GET %s: content type %q", path, resp.Header.Get("Content-Type"))
				return
			}
			_ = body
		}
	}
	wg.Add(4)
	go scrape("/metrics", "text/plain")
	go scrape("/debug/session", "application/json")
	go scrape("/debug/inflight", "application/json")
	go scrape("/healthz", "text/plain")

	req := AnalyzeRequest{Units: unitsToJSON(units)}
	var aw sync.WaitGroup
	for i := 0; i < 3; i++ {
		aw.Add(1)
		go func() {
			defer aw.Done()
			for j := 0; j < 3; j++ {
				postAnalyze(t, ts.URL, req)
			}
		}()
	}
	aw.Wait()
	close(stop)
	wg.Wait()

	// After the analyses, the exposition must carry non-zero pipeline
	// counters in parseable Prometheus text format.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE pinpoint_detect_reports counter",
		"# TYPE pinpoint_server_requests counter",
		"pinpoint_server_request_ns_count",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	var reports float64
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "pinpoint_detect_reports ") {
			fmt.Sscanf(line, "pinpoint_detect_reports %f", &reports)
		}
	}
	if reports == 0 {
		t.Error("pinpoint_detect_reports is zero after analyses")
	}
}

// TestDebugSessionOccupancy pins the /debug/session schema against the
// session's real stores.
func TestDebugSessionOccupancy(t *testing.T) {
	units := exampleUnits(t)
	_, ts := newTestServer(t, Config{})
	postAnalyze(t, ts.URL, AnalyzeRequest{Units: unitsToJSON(units)})

	resp, err := http.Get(ts.URL + "/debug/session")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d sessionDebug
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Units != len(units) {
		t.Errorf("units = %d, want %d", d.Units, len(units))
	}
	if d.Artifacts == 0 || d.Functions == 0 {
		t.Errorf("empty occupancy after analyze: %+v", d)
	}
	if d.LastUpdate.Misses == 0 {
		t.Errorf("cold analyze reported no artifact misses: %+v", d)
	}
	if d.SMTCacheExact == 0 {
		t.Errorf("verdict cache empty after analyze: %+v", d)
	}
}

// TestAnalyzeErrors pins the error statuses: malformed body, empty unit
// set, unknown checker, and parse errors (which must leave the session
// usable).
func TestAnalyzeErrors(t *testing.T) {
	units := exampleUnits(t)
	_, ts := newTestServer(t, Config{})

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("{"); got != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", got)
	}
	if got := post(`{"units":[]}`); got != http.StatusBadRequest {
		t.Errorf("empty units: %d, want 400", got)
	}
	if got := post(`{"units":[{"name":"a.mc","src":""}],"checkers":["nope"]}`); got != http.StatusBadRequest {
		t.Errorf("unknown checker: %d, want 400", got)
	}
	if got := post(`{"units":[{"name":"a.mc","src":"int f( {"}]}`); got != http.StatusUnprocessableEntity {
		t.Errorf("parse error: %d, want 422", got)
	}
	// The failed update must not have corrupted the session.
	postAnalyze(t, ts.URL, AnalyzeRequest{Units: unitsToJSON(units)})
}

// TestGracefulShutdown starts a real listener, verifies readiness flips,
// and checks the server drains cleanly.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{Logger: quietLogger()})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, 5*time.Second) }()

	// Wait for the listener to come up.
	var base string
	for i := 0; i < 100; i++ {
		if a := s.Addr(); a != nil {
			base = "http://" + a.String()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if base == "" {
		t.Fatal("server did not bind")
	}
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before shutdown: %s", resp.Status)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}
