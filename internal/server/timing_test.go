package server

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func unitsJSON(t *testing.T) []UnitJSON {
	t.Helper()
	var units []UnitJSON
	for _, u := range exampleUnits(t) {
		units = append(units, UnitJSON{Name: u.Name, Src: u.Src})
	}
	return units
}

// Every /v1/analyze response carries a timing breakdown whose top-level
// phases partition the total exactly and whose sub-phases stay within
// their parents.
func TestAnalyzeTimingBreakdown(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ar, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Units: unitsJSON(t)})

	tm := ar.Timing
	if tm.TotalNs <= 0 {
		t.Fatalf("timing.totalNs = %d, want > 0", tm.TotalNs)
	}
	if tm.BuildNs <= 0 || tm.DetectNs <= 0 {
		t.Errorf("buildNs=%d detectNs=%d, want both > 0", tm.BuildNs, tm.DetectNs)
	}
	sum := tm.DecodeNs + tm.QueueWaitNs + tm.SessionWaitNs + tm.BuildNs + tm.DetectNs + tm.OtherNs
	if sum != tm.TotalNs {
		t.Errorf("top-level phases sum to %d, total is %d", sum, tm.TotalNs)
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"decodeNs", tm.DecodeNs}, {"queueWaitNs", tm.QueueWaitNs},
		{"sessionWaitNs", tm.SessionWaitNs}, {"parseNs", tm.ParseNs},
		{"storeLoadNs", tm.StoreLoadNs}, {"storeSaveNs", tm.StoreSaveNs},
		{"smtNs", tm.SMTNs}, {"otherNs", tm.OtherNs},
	} {
		if f.v < 0 {
			t.Errorf("timing.%s = %d, want >= 0", f.name, f.v)
		}
	}
	if sub := tm.ParseNs + tm.StoreLoadNs + tm.StoreSaveNs; sub > tm.BuildNs {
		t.Errorf("build sub-phases (%d) exceed buildNs (%d)", sub, tm.BuildNs)
	}
	if tm.SMTNs > tm.DetectNs {
		t.Errorf("smtNs (%d) exceeds detectNs (%d)", tm.SMTNs, tm.DetectNs)
	}
}

// The timing phases surface as one labeled summary family on /metrics,
// plus the queue-depth and in-flight gauges.
func TestMetricsPhaseFamilies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postAnalyze(t, ts.URL, AnalyzeRequest{Units: unitsJSON(t)})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)

	if n := strings.Count(body, "# TYPE pinpoint_server_phase_ns summary"); n != 1 {
		t.Errorf("TYPE pinpoint_server_phase_ns emitted %d times", n)
	}
	for _, phase := range []string{
		"decode", "queue_wait", "session_wait", "build", "parse",
		"store_load", "store_save", "detect", "smt", "other",
	} {
		series := fmt.Sprintf("pinpoint_server_phase_ns_count{phase=%q,tenant=\"default\"} ", phase)
		if !strings.Contains(body, series) {
			t.Errorf("missing phase series %s", series)
		}
	}
	for _, gauge := range []string{"pinpoint_server_queue_depth", "pinpoint_server_inflight"} {
		if !strings.Contains(body, "# TYPE "+gauge+" gauge") {
			t.Errorf("missing gauge %s", gauge)
		}
	}
}

// Under per-tenant locks the timing partition must stay exact for every
// tenant: each response's top-level phases sum to its total, and each
// request's phases land in its own tenant's metric series — never a
// shared or mislabeled one.
func TestTimingPartitionPerTenant(t *testing.T) {
	rec := obs.New()
	_, ts := newTestServer(t, Config{Rec: rec, MaxInFlight: -1})
	units := unitsJSON(t)

	reqs := map[string]int{"": 2, "alpha": 3, "beta": 1}
	for project, n := range reqs {
		for i := 0; i < n; i++ {
			ar, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Project: project, Units: units})
			tm := ar.Timing
			sum := tm.DecodeNs + tm.QueueWaitNs + tm.SessionWaitNs + tm.BuildNs + tm.DetectNs + tm.OtherNs
			if sum != tm.TotalNs {
				t.Errorf("project %q: phases sum to %d, total is %d", project, sum, tm.TotalNs)
			}
			if tm.SessionWaitNs < 0 {
				t.Errorf("project %q: sessionWaitNs = %d", project, tm.SessionWaitNs)
			}
		}
	}

	snap := rec.Snapshot()
	for project, n := range reqs {
		tenantLabel := project
		if tenantLabel == "" {
			tenantLabel = "default"
		}
		for _, phase := range []string{"session_wait", "build", "detect"} {
			name := obs.Labeled("server.phase_ns", "phase", phase, "tenant", tenantLabel)
			h, ok := snap.Histograms[name]
			if !ok {
				t.Errorf("missing per-tenant histogram %s", name)
				continue
			}
			if h.Count != int64(n) {
				t.Errorf("%s count = %d, want %d (one per request)", name, h.Count, n)
			}
		}
	}
}

// Concurrent /metrics scrapes during analyze load must be race-free and
// observe monotone phase counts. Run with -race this exercises the
// registry's lock discipline under the exact serve-mode access pattern.
func TestMetricsConcurrentScrape(t *testing.T) {
	rec := obs.New()
	_, ts := newTestServer(t, Config{Rec: rec, MaxInFlight: -1})
	units := unitsJSON(t)

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Error(err)
			return ""
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	workers := runtime.GOMAXPROCS(0)
	rounds := 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				postAnalyze(t, ts.URL, AnalyzeRequest{Units: units, Checkers: []string{"null-deref"}})
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				scrape()
			}
		}()
	}
	wg.Wait()

	// After the load drains, the build-phase count equals the number of
	// successful analyzes and every phase family reports the same count —
	// one observation per request per phase.
	wantObs := int64(workers * rounds)
	snap := rec.Snapshot()
	for _, phase := range []string{"decode", "queue_wait", "session_wait", "build", "detect", "smt", "other"} {
		name := obs.Labeled("server.phase_ns", "phase", phase, "tenant", "default")
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("missing histogram %s", name)
			continue
		}
		if h.Count != wantObs {
			t.Errorf("%s count = %d, want %d", name, h.Count, wantObs)
		}
	}
	if g := snap.Gauges["server.inflight"]; g != 0 {
		t.Errorf("server.inflight = %d after load drained, want 0", g)
	}
	if g := snap.Gauges["server.queue_depth"]; g != 0 {
		t.Errorf("server.queue_depth = %d after load drained, want 0", g)
	}
}
