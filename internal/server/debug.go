package server

import (
	"net/http"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/tenant"
)

// handleHealthz is the liveness probe: the process is up and the mux is
// answering. Always 200 while the listener is alive.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is the readiness probe: 200 while the server accepts work,
// 503 once graceful shutdown has begun (load balancers drain on this).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

// handleMetrics exposes the recorder in Prometheus text format. The
// snapshot is lock-consistent, so a scrape racing an in-flight analysis
// sees a coherent view.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.rec.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is log.
		reqInfo(r).Log.Warn("metrics write failed", "err", err.Error())
	}
}

// tenantsDebug is the GET /v1/debug/tenants schema: the tenant.Snapshot
// (resident set, per-tenant occupancy and last-use clocks, eviction
// counters) — the multi-tenant successor to /debug/session.
type tenantsDebug = tenant.Snapshot

func (s *Server) handleDebugTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, tenantsDebug(s.tenants.Snapshot()))
}

// sessionDebug is the GET /debug/session schema: occupancy of the default
// tenant's session. Pre-tenant clients keep their exact schema; resident
// state for every project lives at /v1/debug/tenants.
type sessionDebug struct {
	// Units and Artifacts are the parse- and function-artifact store
	// sizes; LastUpdate is the artifact outcome of the latest /analyze.
	Units      int `json:"units"`
	Artifacts  int `json:"artifacts"`
	LastUpdate struct {
		Hits        int `json:"hits"`
		Misses      int `json:"misses"`
		Invalidated int `json:"invalidated"`
	} `json:"lastUpdate"`
	// Functions is the current program's function count (0 before the
	// first analysis).
	Functions int `json:"functions"`
	// SMTCacheExact/SMTCacheShape are the verdict cache's per-tier entry
	// counts.
	SMTCacheExact int `json:"smtCacheExact"`
	SMTCacheShape int `json:"smtCacheShape"`
}

func (s *Server) handleDebugSession(w http.ResponseWriter, r *http.Request) {
	var d sessionDebug
	// The default tenant may have been idle-evicted; an all-zero body is
	// the honest report then (nothing is resident).
	s.tenants.View(store.DefaultProject, func(sess *core.Session) {
		d.Units = sess.UnitCount()
		d.Artifacts = sess.ArtifactCount()
		st := sess.ArtifactStats()
		d.LastUpdate.Hits, d.LastUpdate.Misses, d.LastUpdate.Invalidated =
			st.Hits, st.Misses, st.Invalidated
		if a := sess.Analysis(); a != nil {
			d.Functions = a.Sizes.Functions
			if a.Prog != nil {
				d.SMTCacheExact, d.SMTCacheShape = a.Prog.SMTCacheStats()
			}
		}
	})
	writeJSON(w, http.StatusOK, d)
}

// storeDebug is the GET /v1/debug/store schema: whether a persistent
// store backs the session, its residency and on-disk occupancy, and the
// last compaction. Counters are cumulative since the store was opened.
type storeDebug struct {
	// Persistent is false when the server runs memory-only (no -store-dir);
	// every other field is zero then.
	Persistent bool        `json:"persistent"`
	Stats      store.Stats `json:"stats"`
	// ArtifactStoreHits is the number of artifacts the session's last
	// Update warm-loaded from the store instead of rebuilding.
	ArtifactStoreHits int `json:"artifactStoreHits"`
}

func (s *Server) handleDebugStore(w http.ResponseWriter, r *http.Request) {
	var d storeDebug
	if st := s.cfg.Store; st != nil && st.Persistent() {
		d.Persistent = true
		d.Stats = st.Stat()
		s.tenants.View(store.DefaultProject, func(sess *core.Session) {
			d.ArtifactStoreHits = sess.ArtifactStats().StoreHits
		})
	}
	writeJSON(w, http.StatusOK, d)
}

// inflightDebug is the GET /debug/inflight schema.
type inflightDebug struct {
	Limit    int            `json:"limit"`
	InFlight int            `json:"inFlight"`
	Requests []inflightJSON `json:"requests"`
}

func (s *Server) handleDebugInflight(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, inflightDebug{
		Limit:    s.gate.Limit(),
		InFlight: s.gate.InFlight(),
		Requests: s.snapshotInflight(),
	})
}
