package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/store"
)

// TestV1Aliases checks the versioned surface: every /v1/ path answers, and
// the legacy unversioned spelling stays wired to the same handler.
func TestV1Aliases(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for _, path := range []string{
		"/healthz", "/v1/healthz", "/v1/health",
		"/readyz", "/v1/readyz", "/v1/ready",
		"/metrics", "/v1/metrics",
		"/debug/session", "/v1/debug/session",
		"/debug/inflight", "/v1/debug/inflight",
		"/debug/store", "/v1/debug/store",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
	}

	units := unitsToJSON(exampleUnits(t))
	legacy, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Units: units})
	body, err := json.Marshal(AnalyzeRequest{Units: units})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/analyze: %s", resp.Status)
	}
	var versioned AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&versioned); err != nil {
		t.Fatal(err)
	}
	lb, _ := json.Marshal(legacy.Reports)
	vb, _ := json.Marshal(versioned.Reports)
	if string(lb) != string(vb) {
		t.Fatalf("/v1/analyze reports differ from /analyze:\n%s\n%s", vb, lb)
	}
}

// TestServeStoreWarmRestart drives the persistent store through the HTTP
// surface: a second server process on the same store directory answers its
// first request from warm-loaded artifacts, with identical reports, and
// /v1/debug/store reports the residency.
func TestServeStoreWarmRestart(t *testing.T) {
	units := unitsToJSON(exampleUnits(t))
	dir := t.TempDir()

	st1, err := store.Open(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Store: st1})
	first, _ := postAnalyze(t, ts1.URL, AnalyzeRequest{Units: units})
	if first.Stats.ArtifactStoreHits != 0 {
		t.Fatalf("cold server store-loaded %d artifacts; want 0", first.Stats.ArtifactStoreHits)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, ts2 := newTestServer(t, Config{Store: st2})
	second, _ := postAnalyze(t, ts2.URL, AnalyzeRequest{Units: units})

	if second.Stats.ArtifactStoreHits == 0 || second.Stats.ArtifactMisses != 0 {
		t.Fatalf("restarted server did not warm-load: %+v", second.Stats)
	}
	fb, _ := json.Marshal(first.Reports)
	sb, _ := json.Marshal(second.Reports)
	if string(fb) != string(sb) {
		t.Fatalf("restarted server reports differ:\n%s\n%s", sb, fb)
	}

	resp, err := http.Get(ts2.URL + "/v1/debug/store")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d storeDebug
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if !d.Persistent {
		t.Fatal("/v1/debug/store reports no persistent store")
	}
	if d.Stats.Records == 0 || d.Stats.DiskBytes == 0 {
		t.Fatalf("/v1/debug/store reports an empty store: %+v", d.Stats)
	}
	if d.ArtifactStoreHits != second.Stats.ArtifactStoreHits {
		t.Fatalf("debug store hits %d != response stats %d", d.ArtifactStoreHits, second.Stats.ArtifactStoreHits)
	}
}
