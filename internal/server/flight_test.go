package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tenant"
)

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestTimeseriesEndpoint: under load the ring buffer accumulates multiple
// distinct timestamps for server.phase_ns, the since filter trims, and
// capacity is bounded.
func TestTimeseriesEndpoint(t *testing.T) {
	units := exampleUnits(t)
	s, ts := newTestServer(t, Config{
		TSInterval:  2 * time.Millisecond,
		TSRetention: time.Second,
	})
	s.sampler.Start()
	defer s.sampler.Stop()

	req := AnalyzeRequest{Units: unitsToJSON(units)}
	postAnalyze(t, ts.URL, req)
	// Let several ticks elapse with the phase histograms populated, with
	// a second request in between so the count series moves.
	time.Sleep(10 * time.Millisecond)
	postAnalyze(t, ts.URL, req)

	var d struct {
		Enabled bool `json:"enabled"`
		obs.QueryResult
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/debug/timeseries?metric=server.phase_ns", &d)
		if !d.Enabled {
			t.Fatal("timeseries reports disabled with TSInterval set")
		}
		if len(d.Series) > 0 && len(d.Series[0].Points) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no series with >=2 points for server.phase_ns: %+v", d.QueryResult)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The acceptance bar: >=2 distinct timestamps on a phase_ns series.
	seen := map[int64]bool{}
	for _, p := range d.Series[0].Points {
		seen[p.T] = true
	}
	if len(seen) < 2 {
		t.Fatalf("want >=2 distinct timestamps, got %d", len(seen))
	}
	for _, sr := range d.Series {
		if sr.Base != "server.phase_ns" {
			t.Errorf("metric filter leaked series %q", sr.Name)
		}
		if len(sr.Points) > d.Capacity {
			t.Errorf("series %s %s exceeds ring capacity: %d > %d", sr.Name, sr.Field, len(sr.Points), d.Capacity)
		}
	}

	// since as a trailing window: zero-width window keeps at most the
	// newest point per series.
	var recent struct {
		obs.QueryResult
	}
	getJSON(t, ts.URL+"/v1/debug/timeseries?metric=server.phase_ns&since=1ms", &recent)
	for _, sr := range recent.Series {
		if len(sr.Points) > len(d.Series[0].Points) {
			t.Errorf("since filter did not trim series %s", sr.Name)
		}
	}

	// Bad since is a 400, not a 500.
	resp, err := http.Get(ts.URL + "/v1/debug/timeseries?since=yesterday-ish")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since: status %d, want 400", resp.StatusCode)
	}
}

// TestTimeseriesDisabled: without TSInterval the endpoint answers
// {"enabled":false} and the server runs no sampler goroutine.
func TestTimeseriesDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if s.sampler != nil {
		t.Fatal("sampler exists without TSInterval")
	}
	var d struct {
		Enabled bool              `json:"enabled"`
		Series  []json.RawMessage `json:"series"`
	}
	getJSON(t, ts.URL+"/v1/debug/timeseries", &d)
	if d.Enabled || len(d.Series) != 0 {
		t.Fatalf("disabled recorder leaked data: %+v", d)
	}
}

// TestCostAttribution is the two-tenant acceptance check: each project's
// reported phase CPU matches the sum of its own responses' timing
// partitions to >=95%, and does not absorb the other tenant's time.
func TestCostAttribution(t *testing.T) {
	units := exampleUnits(t)
	_, ts := newTestServer(t, Config{})

	sums := map[string]*tenant.CostDelta{"alpha": {}, "beta": {}}
	counts := map[string]int64{}
	for i := 0; i < 3; i++ {
		for _, p := range []string{"alpha", "beta"} {
			ar, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Project: p, Units: unitsToJSON(units)})
			sums[p].BuildNs += ar.Timing.BuildNs
			sums[p].DetectNs += ar.Timing.DetectNs
			sums[p].SMTNs += ar.Timing.SMTNs
			counts[p]++
		}
	}

	var rep tenant.CostReport
	getJSON(t, ts.URL+"/v1/debug/costs", &rep)
	byProject := map[string]tenant.CostSnapshot{}
	for _, c := range rep.Tenants {
		byProject[c.Project] = c
	}
	for p, want := range sums {
		got, ok := byProject[p]
		if !ok {
			t.Fatalf("project %s missing from cost report", p)
		}
		if got.Requests != counts[p] {
			t.Errorf("%s requests = %d, want %d", p, got.Requests, counts[p])
		}
		// The ledger is fed the exact response timings, so equality should
		// hold; accept >=95% to stay robust to future rounding.
		wantCPU := want.BuildNs + want.DetectNs
		if got.CPUNs < wantCPU*95/100 || got.CPUNs > wantCPU*105/100 {
			t.Errorf("%s attributed CPU %d not within 5%% of client-visible %d", p, got.CPUNs, wantCPU)
		}
		if got.SMTNs != want.SMTNs {
			t.Errorf("%s SMTNs = %d, want %d", p, got.SMTNs, want.SMTNs)
		}
	}
	if rep.TotalCPUNs <= 0 {
		t.Error("TotalCPUNs not positive")
	}
	if len(rep.Tenants) >= 2 && rep.Tenants[0].CPUNs < rep.Tenants[1].CPUNs {
		t.Error("cost report not ranked by CPU descending")
	}
}

// TestSLOBurnRate: a 1ns target makes every request a violation; the burn
// rate over the ring buffer must be finite and >1 (budget burning faster
// than allowed), and both gauges appear on /metrics.
func TestSLOBurnRate(t *testing.T) {
	units := exampleUnits(t)
	rec := obs.New()
	s, ts := newTestServer(t, Config{
		Rec:           rec,
		TSInterval:    5 * time.Millisecond,
		TSRetention:   time.Second,
		SLOTarget:     time.Nanosecond,
		SLOQuantile:   0.5,
		SLOFastWindow: 50 * time.Millisecond,
		SLOSlowWindow: 500 * time.Millisecond,
	})
	if s.slo == nil {
		t.Fatal("slo tracker not constructed")
	}

	s.sampler.SampleNow() // baseline before any requests
	req := AnalyzeRequest{Units: unitsToJSON(units)}
	postAnalyze(t, ts.URL, req)
	postAnalyze(t, ts.URL, req)
	time.Sleep(2 * time.Millisecond)
	s.sampler.SampleNow() // second point: delta requests=2, violations=2

	var d sloDebug
	getJSON(t, ts.URL+"/v1/debug/slo", &d)
	if !d.Enabled {
		t.Fatal("slo reports disabled")
	}
	if d.TargetNs != 1 || d.Quantile != 0.5 {
		t.Errorf("objective = %d ns @ %g, want 1 @ 0.5", d.TargetNs, d.Quantile)
	}
	if d.Requests < 2 || d.Violations != d.Requests {
		t.Errorf("requests=%d violations=%d, want all violating", d.Requests, d.Violations)
	}
	if len(d.Windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(d.Windows))
	}
	for _, w := range d.Windows {
		// 100% violations at quantile 0.5 → burn = 1/0.5 = 2.
		if w.BurnRate <= 1 || w.BurnRate != w.BurnRate /* NaN */ {
			t.Errorf("window %s burn = %g, want finite > 1", w.Label, w.BurnRate)
		}
		if w.ViolationRate != 1 {
			t.Errorf("window %s violation rate = %g, want 1", w.Label, w.ViolationRate)
		}
	}

	// The burn gauges land on /metrics after the onSample hook.
	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`pinpoint_server_slo_burn_rate{window="fast"} 2`,
		`pinpoint_server_slo_burn_rate{window="slow"} 2`,
		"pinpoint_server_slo_requests ",
		"pinpoint_server_slo_violations ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSLODisabledKeepsMetricsClean: without SLOTarget and TSInterval, the
// exposition carries no slo_*, process_*, or burn series — byte-identical
// to the pre-flight-recorder server.
func TestSLODisabledKeepsMetricsClean(t *testing.T) {
	units := exampleUnits(t)
	_, ts := newTestServer(t, Config{})
	postAnalyze(t, ts.URL, AnalyzeRequest{Units: unitsToJSON(units)})
	body := scrapeMetrics(t, ts.URL)
	for _, banned := range []string{"slo", "pinpoint_process_", "burn"} {
		if strings.Contains(body, banned) {
			t.Errorf("disabled flight recorder leaked %q into /metrics", banned)
		}
	}
	var d sloDebug
	getJSON(t, ts.URL+"/v1/debug/slo", &d)
	if d.Enabled {
		t.Error("slo debug reports enabled without a target")
	}
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSanitizeTraceID covers the header boundary: well-formed IDs echo
// back, hostile ones are replaced with a freshly minted hex ID.
func TestSanitizeTraceID(t *testing.T) {
	cases := []struct {
		in   string
		keep bool
	}{
		{"abc-123-DEF", true},
		{strings.Repeat("a", 64), true},
		{"", false},
		{strings.Repeat("a", 65), false},
		{"has space", false},
		{"semi;colon", false},
		{"new\nline", false},
		{"under_score", false},
	}
	for _, c := range cases {
		got := sanitizeTraceID(c.in)
		if c.keep && got != c.in {
			t.Errorf("sanitizeTraceID(%q) = %q, want kept", c.in, got)
		}
		if !c.keep && got != "" {
			t.Errorf("sanitizeTraceID(%q) = %q, want rejected", c.in, got)
		}
	}

	_, ts := newTestServer(t, Config{})
	check := func(header, wantEcho string) {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
		if header != "" {
			req.Header.Set("X-Trace-Id", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get("X-Trace-Id")
		if wantEcho != "" {
			if got != wantEcho {
				t.Errorf("X-Trace-Id echo = %q, want %q", got, wantEcho)
			}
			return
		}
		// A minted replacement: 16 hex characters, not the hostile input.
		if len(got) != 16 || got == header {
			t.Errorf("minted trace ID = %q, want fresh 16-hex", got)
		}
	}
	check("good-id-42", "good-id-42")
	check("bad id; DROP TABLE", "")
	check(strings.Repeat("x", 200), "")
}

// TestFlightRecorderRace drives analyze traffic, /metrics scrapes, the
// sampler, and timeseries/costs/slo reads concurrently; run under -race
// this is the flight recorder's thread-safety proof.
func TestFlightRecorderRace(t *testing.T) {
	units := exampleUnits(t)
	s, ts := newTestServer(t, Config{
		MaxInFlight:   4,
		TSInterval:    time.Millisecond,
		TSRetention:   100 * time.Millisecond,
		SLOTarget:     time.Microsecond,
		SLOFastWindow: 20 * time.Millisecond,
		SLOSlowWindow: 80 * time.Millisecond,
	})
	s.sampler.Start()
	defer s.sampler.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	for _, p := range []string{"alpha", "beta"} {
		p := p
		worker(func() {
			postAnalyze(t, ts.URL, AnalyzeRequest{Project: p, Units: unitsToJSON(units)})
		})
	}
	worker(func() { scrapeMetrics(t, ts.URL) })
	worker(func() {
		var d struct{ Enabled bool }
		getJSON(t, ts.URL+"/v1/debug/timeseries?metric=server.phase_ns&since=50ms", &d)
		var rep tenant.CostReport
		getJSON(t, ts.URL+"/v1/debug/costs", &rep)
		var sd sloDebug
		getJSON(t, ts.URL+"/v1/debug/slo", &sd)
	})
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
}
