// Package server exposes the analysis pipeline as a long-lived HTTP
// service: persistent core.Sessions answer POST /analyze requests so
// repeated analyses of an evolving program reuse the incremental artifact
// store, the sticky detection caches, and the SMT verdict cache, while the
// process's live metrics are scraped from GET /metrics in Prometheus text
// format.
//
// The service is multi-tenant: a tenant.Manager maps the request's
// `project` field (absent = "default") to an independently locked session,
// so different projects build and detect concurrently while same-project
// requests keep serialized, sticky-cache-identical semantics —
// core.Session.Update is not safe for concurrent use. A global conc.Gate
// still bounds how many requests may even be queued, so overload turns
// into fast 429/timeout responses and backpressure rather than unbounded
// memory growth. Every request gets a trace ID that is threaded through
// its structured log lines, its response body and header, and (when
// tracing) the detection scheduler's task spans.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tenant"
)

// Config parameterizes a Server. The zero value is usable: it listens on a
// random localhost port, admits GOMAXPROCS concurrent requests, applies a
// 2-minute per-request deadline, and logs text lines to stderr.
type Config struct {
	// Addr is the listen address ("host:port"). Empty means
	// "127.0.0.1:0" (a random localhost port; see Server.Addr).
	Addr string
	// MaxInFlight bounds concurrently admitted /analyze requests,
	// normalized by conc.Workers (0/1 = one at a time, negative =
	// GOMAXPROCS). Requests beyond the bound wait on the gate until their
	// deadline expires.
	MaxInFlight int
	// RequestTimeout is the per-request deadline covering both gate
	// admission and analysis. Zero means 2 minutes; negative disables the
	// deadline.
	RequestTimeout time.Duration
	// Workers is the default build/detection worker-pool size for
	// requests that don't set their own (conc.Workers semantics).
	Workers int
	// Logger receives the structured request log. Nil means a text
	// handler on stderr at Info level.
	Logger *slog.Logger
	// Rec is the process-wide metrics recorder backing /metrics. Nil
	// means a fresh non-tracing recorder.
	Rec *obs.Recorder
	// Store, when non-nil and persistent, backs the sessions' artifacts
	// and the SMT verdict cache (see internal/store): a restarted server
	// pointed at the same store directory warm-loads instead of cold
	// building. Non-default tenants get a per-project namespaced view of
	// this store (store.Namespaced), so one physical store serves every
	// project without key collisions. The caller owns the store and closes
	// it after Serve returns. Nil keeps the historical in-memory-only
	// behavior.
	Store store.Store
	// MaxTenants caps concurrently resident per-project sessions
	// (tenant.Config.MaxResident semantics: 0 = 64, negative = unlimited).
	// Admitting a project beyond the cap evicts the least-recently-used
	// idle tenant, persisting it first when a store is configured.
	MaxTenants int
	// TenantIdle is the age past which an idle tenant's session is evicted
	// (0 = 15 minutes, negative disables idle eviction).
	TenantIdle time.Duration
	// TenantMaxInFlight bounds concurrently admitted requests per tenant,
	// under the global MaxInFlight gate. 0 disables the per-tenant bound.
	TenantMaxInFlight int
	// TSInterval enables the flight recorder (internal/obs.Sampler): every
	// interval the process's metrics are snapshotted into fixed-capacity
	// ring buffers served by GET /v1/debug/timeseries. 0 disables it —
	// unless SLOTarget is set, which needs the recorder and auto-enables a
	// 10-second interval.
	TSInterval time.Duration
	// TSRetention is the time span the rings cover (0 = 10 minutes);
	// per-series capacity is TSRetention/TSInterval, clamped to [2, 4096].
	TSRetention time.Duration
	// SLOTarget sets the latency objective: the SLOQuantile fraction of
	// analyze requests must finish within this duration. 0 disables SLO
	// tracking (and keeps /metrics free of slo series).
	SLOTarget time.Duration
	// SLOQuantile is the objective's quantile (0 = 0.95).
	SLOQuantile float64
	// SLOFastWindow and SLOSlowWindow are the burn-rate windows (0 = 5m
	// and 1h). Tests and short-lived load runs scale them down.
	SLOFastWindow time.Duration
	SLOSlowWindow time.Duration
}

// Server is the analysis service. Create with New, then Serve or
// ListenAndServe.
type Server struct {
	cfg  Config
	log  *slog.Logger
	rec  *obs.Recorder
	gate *conc.Gate

	// sampler is the flight recorder (nil when disabled); slo evaluates
	// the latency objective over it (nil when no SLOTarget).
	sampler *obs.Sampler
	slo     *sloTracker

	// tenants maps project IDs to independently locked sessions; see
	// internal/tenant for the lock hierarchy and eviction policy.
	tenants *tenant.Manager

	ready  atomic.Bool
	reqSeq atomic.Uint64

	inMu     sync.Mutex
	inflight map[uint64]*inflightEntry

	addrMu sync.Mutex
	addr   net.Addr
}

type inflightEntry struct {
	TraceID string
	Method  string
	Path    string
	Start   time.Time
}

// New builds a Server from cfg. The default tenant's session is created
// eagerly so the first /analyze request behaves exactly like every later
// one.
func New(cfg Config) *Server {
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	rec := cfg.Rec
	if rec == nil {
		rec = obs.New()
	}
	tsInterval := cfg.TSInterval
	if tsInterval <= 0 && cfg.SLOTarget > 0 {
		// Burn rates are window deltas over the ring buffer; an SLO without
		// a sampler would never evaluate. 10s gives a 5m fast window 30
		// points.
		tsInterval = 10 * time.Second
	}
	sampler := obs.NewSampler(rec, obs.SamplerConfig{
		Interval:  tsInterval,
		Retention: cfg.TSRetention,
	})
	return &Server{
		cfg:     cfg,
		log:     log,
		rec:     rec,
		gate:    conc.NewGate(cfg.MaxInFlight),
		sampler: sampler,
		slo:     newSLOTracker(rec, sampler, cfg),
		tenants: tenant.NewManager(tenant.Config{
			MaxResident: cfg.MaxTenants,
			IdleTTL:     cfg.TenantIdle,
			MaxInFlight: cfg.TenantMaxInFlight,
			Build:       core.BuildOptions{Workers: cfg.Workers, Obs: rec, Store: cfg.Store},
			Obs:         rec,
		}),
		inflight: make(map[uint64]*inflightEntry),
	}
}

// Handler returns the service's route table. The API is versioned under
// /v1/; the original unversioned paths stay registered as aliases bound to
// the same handlers, so existing clients keep working byte-for-byte.
// Useful for tests (httptest.NewServer) and for embedding under a larger
// mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"POST /analyze", s.handleAnalyze},
		{"GET /healthz", s.handleHealthz},
		{"GET /readyz", s.handleReadyz},
		{"GET /metrics", s.handleMetrics},
		{"GET /debug/tenants", s.handleDebugTenants},
		// /debug/session is the pre-tenant spelling: it reports the
		// default tenant only. /debug/tenants supersedes it.
		{"GET /debug/session", s.handleDebugSession},
		{"GET /debug/inflight", s.handleDebugInflight},
		{"GET /debug/store", s.handleDebugStore},
		{"GET /debug/timeseries", s.handleDebugTimeseries},
		{"GET /debug/costs", s.handleDebugCosts},
		{"GET /debug/slo", s.handleDebugSLO},
	}
	for _, rt := range routes {
		mux.HandleFunc(rt.pattern, rt.h)
		method, path, _ := strings.Cut(rt.pattern, " ")
		mux.HandleFunc(method+" /v1"+path, rt.h)
	}
	// /v1/health is the canonical spelling of the versioned liveness
	// probe; /v1/healthz remains from the alias loop above.
	mux.HandleFunc("GET /v1/health", s.handleHealthz)
	mux.HandleFunc("GET /v1/ready", s.handleReadyz)
	return s.track(mux)
}

// ListenAndServe binds cfg.Addr and serves until ctx is canceled, then
// shuts down gracefully (in-flight requests get gracePeriod to finish).
func (s *Server) ListenAndServe(ctx context.Context, gracePeriod time.Duration) error {
	addr := s.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln, gracePeriod)
}

// Serve runs the service on an existing listener until ctx is canceled.
func (s *Server) Serve(ctx context.Context, ln net.Listener, gracePeriod time.Duration) error {
	s.addrMu.Lock()
	s.addr = ln.Addr()
	s.addrMu.Unlock()

	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.ready.Store(true)
	s.log.Info("serving", "addr", ln.Addr().String(),
		"max_in_flight", s.gate.Limit(), "request_timeout", s.requestTimeout().String(),
		"max_tenants", s.tenants.Snapshot().MaxResident)

	// Flight recorder: one goroutine, fixed-size rings, stopped on return.
	// Nil-safe, so a disabled recorder costs nothing here.
	s.sampler.Start()
	defer s.sampler.Stop()
	if s.sampler != nil {
		s.log.Info("flight recorder on", "interval", s.sampler.Interval().String(),
			"ring_capacity", s.sampler.Capacity())
	}

	// Idle janitor: Acquire sweeps lazily, but a server with no traffic
	// should still release evictable sessions, so sweep on a timer too.
	if ttl := time.Duration(s.tenants.Snapshot().IdleTTLNs); ttl > 0 {
		tick := ttl / 4
		if tick < time.Second {
			tick = time.Second
		}
		if tick > time.Minute {
			tick = time.Minute
		}
		janitor := time.NewTicker(tick)
		defer janitor.Stop()
		jctx, jcancel := context.WithCancel(ctx)
		defer jcancel()
		go func() {
			for {
				select {
				case <-jctx.Done():
					return
				case <-janitor.C:
					if n := s.tenants.SweepIdle(); n > 0 {
						s.log.Info("evicted idle tenants", "count", n)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		s.ready.Store(false)
		s.log.Info("shutting down", "grace", gracePeriod.String())
		sctx, cancel := context.WithTimeout(context.Background(), gracePeriod)
		defer cancel()
		err := hs.Shutdown(sctx)
		<-errc // Serve has returned http.ErrServerClosed
		return err
	case err := <-errc:
		s.ready.Store(false)
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// Addr reports the bound listen address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.addrMu.Lock()
	defer s.addrMu.Unlock()
	return s.addr
}

func (s *Server) requestTimeout() time.Duration {
	switch {
	case s.cfg.RequestTimeout == 0:
		return 2 * time.Minute
	case s.cfg.RequestTimeout < 0:
		return 0
	default:
		return s.cfg.RequestTimeout
	}
}

// newTraceID mints a random 64-bit hex trace ID.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a process-unique (if not globally unique) ID; the
		// ID only correlates logs, so uniqueness is best-effort.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeTraceID vets an inbound X-Trace-Id: 1..64 bytes of
// [A-Za-z0-9-], or "" (mint a fresh one). The ID is echoed into response
// headers and structured logs, so anything else — header injection
// attempts, log-splitting newlines, unbounded junk — is discarded rather
// than propagated.
func sanitizeTraceID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '-':
		default:
			return ""
		}
	}
	return id
}

// track wraps the mux with per-request bookkeeping: a trace ID (minted or
// taken from a well-formed X-Trace-Id header), request-scoped structured
// logs, the in-flight table behind /debug/inflight, and the server.*
// metrics.
func (s *Server) track(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traceID := sanitizeTraceID(r.Header.Get("X-Trace-Id"))
		if traceID == "" {
			traceID = newTraceID()
		}
		id := s.reqSeq.Add(1)
		start := time.Now()
		s.inMu.Lock()
		s.inflight[id] = &inflightEntry{
			TraceID: traceID, Method: r.Method, Path: r.URL.Path, Start: start,
		}
		s.inMu.Unlock()
		s.rec.Gauge("server.inflight").Add(1)
		defer func() {
			s.rec.Gauge("server.inflight").Add(-1)
			s.inMu.Lock()
			delete(s.inflight, id)
			s.inMu.Unlock()
		}()

		log := s.log.With("trace_id", traceID, "method", r.Method, "path", r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		sw.Header().Set("X-Trace-Id", traceID)

		ctx := withRequestInfo(r.Context(), &requestInfo{TraceID: traceID, Log: log})
		next.ServeHTTP(sw, r.WithContext(ctx))

		d := time.Since(start)
		s.rec.Counter("server.requests").Inc()
		if sw.status >= 400 {
			s.rec.Counter("server.errors").Inc()
		}
		s.rec.Histogram("server.request_ns").Observe(int64(d))
		isAnalyze := r.URL.Path == "/analyze" || r.URL.Path == "/v1/analyze"
		if isAnalyze {
			// The latency objective covers the work endpoint only; scrapes
			// and probes are not what clients wait on.
			s.slo.observe(d)
		}
		// /metrics and health probes would drown the request log; keep
		// Info for the endpoints that do work.
		lvl := slog.LevelInfo
		if !isAnalyze {
			lvl = slog.LevelDebug
		}
		log.Log(r.Context(), lvl, "request done", "status", sw.status, "dur", d.String())
	})
}

// requestInfo carries per-request context down to handlers.
type requestInfo struct {
	TraceID string
	Log     *slog.Logger
}

type ctxKey struct{}

func withRequestInfo(ctx context.Context, ri *requestInfo) context.Context {
	return context.WithValue(ctx, ctxKey{}, ri)
}

func reqInfo(r *http.Request) *requestInfo {
	if ri, ok := r.Context().Value(ctxKey{}).(*requestInfo); ok {
		return ri
	}
	return &requestInfo{TraceID: "", Log: slog.New(slog.NewTextHandler(os.Stderr, nil))}
}

// statusWriter records the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// snapshotInflight renders the in-flight table sorted by start time.
func (s *Server) snapshotInflight() []inflightJSON {
	now := time.Now()
	s.inMu.Lock()
	out := make([]inflightJSON, 0, len(s.inflight))
	for _, e := range s.inflight {
		out = append(out, inflightJSON{
			TraceID:   e.TraceID,
			Method:    e.Method,
			Path:      e.Path,
			ElapsedNs: now.Sub(e.Start).Nanoseconds(),
		})
	}
	s.inMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ElapsedNs > out[j].ElapsedNs })
	return out
}

type inflightJSON struct {
	TraceID   string `json:"traceId"`
	Method    string `json:"method"`
	Path      string `json:"path"`
	ElapsedNs int64  `json:"elapsedNs"`
}
