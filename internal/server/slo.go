package server

import (
	"time"

	"repro/internal/obs"
)

// SLO burn-rate tracking. The objective is a latency target — "the SLOQuantile
// fraction of analyze requests finish within SLOTarget" — and the burn rate
// measures how fast the error budget (the allowed 1-SLOQuantile violation
// fraction) is being spent:
//
//	burn = (violations/requests over window) / (1 - quantile)
//
// A burn of 1 spends the budget exactly as fast as the objective allows;
// above 1 the deployment is on track to blow the objective. Two windows in
// the Google SRE style: a fast window (default 5m) that pages quickly on
// sharp regressions, and a slow window (default 1h) that catches sustained
// low-grade burn. Both are computed from the flight recorder's ring buffer
// (CounterDelta over the cumulative request/violation counters), so SLO
// tracking requires the sampler and costs nothing per request beyond two
// counter increments.

// Default SLO evaluation parameters (Config fields override).
const (
	DefaultSLOQuantile   = 0.95
	DefaultSLOFastWindow = 5 * time.Minute
	DefaultSLOSlowWindow = time.Hour
)

const (
	sloRequestsMetric   = "server.slo_requests"
	sloViolationsMetric = "server.slo_violations"
)

// sloTracker evaluates one latency objective over the flight recorder.
type sloTracker struct {
	target   time.Duration
	quantile float64
	fast     time.Duration
	slow     time.Duration
	sampler  *obs.Sampler

	// Hoisted handles: the request path hits these per analyze request.
	requests   *obs.Counter
	violations *obs.Counter
	burnFast   *obs.FloatGauge
	burnSlow   *obs.FloatGauge
}

// newSLOTracker builds a tracker, or nil (a no-op everywhere) when no
// target is configured.
func newSLOTracker(rec *obs.Recorder, sampler *obs.Sampler, cfg Config) *sloTracker {
	if cfg.SLOTarget <= 0 || rec == nil {
		return nil
	}
	q := cfg.SLOQuantile
	if q <= 0 || q >= 1 {
		q = DefaultSLOQuantile
	}
	fast, slow := cfg.SLOFastWindow, cfg.SLOSlowWindow
	if fast <= 0 {
		fast = DefaultSLOFastWindow
	}
	if slow <= 0 {
		slow = DefaultSLOSlowWindow
	}
	t := &sloTracker{
		target:     cfg.SLOTarget,
		quantile:   q,
		fast:       fast,
		slow:       slow,
		sampler:    sampler,
		requests:   rec.Counter(sloRequestsMetric),
		violations: rec.Counter(sloViolationsMetric),
		burnFast:   rec.FloatGauge(obs.Labeled("server.slo_burn_rate", "window", "fast")),
		burnSlow:   rec.FloatGauge(obs.Labeled("server.slo_burn_rate", "window", "slow")),
	}
	sampler.OnSample(t.onSample)
	return t
}

// observe folds one completed analyze request into the objective. Nil-safe:
// with no SLO configured the request path records nothing, keeping /metrics
// byte-identical to the SLO-less server.
func (t *sloTracker) observe(d time.Duration) {
	if t == nil {
		return
	}
	t.requests.Inc()
	if d > t.target {
		t.violations.Inc()
	}
}

// onSample recomputes both burn-rate gauges from the ring buffer. Runs as a
// sampler hook, outside the sampler lock, so gauge writes land in the
// registry normally (and are themselves sampled next tick).
func (t *sloTracker) onSample(time.Time) {
	fast, _ := t.burnOver(t.fast)
	slow, _ := t.burnOver(t.slow)
	t.burnFast.Set(fast)
	t.burnSlow.Set(slow)
}

// burnOver computes the burn rate over one trailing window. Always finite:
// zero requests burn nothing, and the budget divisor is the configured
// quantile's complement (quantile < 1 by construction).
func (t *sloTracker) burnOver(window time.Duration) (burn float64, w sloWindow) {
	w.Window = window
	req, span, ok := t.sampler.CounterDelta(sloRequestsMetric, window)
	if !ok {
		return 0, w
	}
	viol, _, _ := t.sampler.CounterDelta(sloViolationsMetric, window)
	w.SpanNs = span.Nanoseconds()
	w.Requests = int64(req)
	w.Violations = int64(viol)
	if req <= 0 {
		return 0, w
	}
	w.ViolationRate = viol / req
	w.BurnRate = w.ViolationRate / (1 - t.quantile)
	return w.BurnRate, w
}

// sloWindow is one window's evaluation in the GET /v1/debug/slo payload.
type sloWindow struct {
	// Label is "fast" or "slow"; Window the configured width and SpanNs the
	// span the ring buffer actually covered (shorter early in the process's
	// life).
	Label    string        `json:"window"`
	Window   time.Duration `json:"-"`
	WindowNs int64         `json:"windowNs"`
	SpanNs   int64         `json:"spanNs"`
	// Requests and Violations are the deltas over the span.
	Requests      int64   `json:"requests"`
	Violations    int64   `json:"violations"`
	ViolationRate float64 `json:"violationRate"`
	BurnRate      float64 `json:"burnRate"`
}

// sloDebug is the GET /v1/debug/slo schema.
type sloDebug struct {
	Enabled bool `json:"enabled"`
	// TargetNs and Quantile state the objective: the Quantile fraction of
	// analyze requests must finish within TargetNs.
	TargetNs int64   `json:"targetNs,omitempty"`
	Quantile float64 `json:"quantile,omitempty"`
	// Requests and Violations are cumulative since process start.
	Requests   int64       `json:"requests,omitempty"`
	Violations int64       `json:"violations,omitempty"`
	Windows    []sloWindow `json:"windows,omitempty"`
}

func (t *sloTracker) debug() sloDebug {
	if t == nil {
		return sloDebug{}
	}
	d := sloDebug{
		Enabled:    true,
		TargetNs:   t.target.Nanoseconds(),
		Quantile:   t.quantile,
		Requests:   t.requests.Value(),
		Violations: t.violations.Value(),
	}
	for _, wcfg := range []struct {
		label  string
		window time.Duration
	}{{"fast", t.fast}, {"slow", t.slow}} {
		_, w := t.burnOver(wcfg.window)
		w.Label = wcfg.label
		w.WindowNs = wcfg.window.Nanoseconds()
		d.Windows = append(d.Windows, w)
	}
	return d
}
