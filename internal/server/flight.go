package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/tenant"
)

// Flight-recorder debug endpoints: the in-process time-series rings
// (/debug/timeseries), the per-tenant cost ledgers (/debug/costs), and the
// SLO evaluation (/debug/slo). All three are read-only JSON views over
// state the request path maintains anyway.

// timeseriesDebug is the GET /v1/debug/timeseries schema: obs.QueryResult
// plus the enabled flag (a disabled flight recorder answers
// {"enabled":false} rather than 404, so probes need no route knowledge).
type timeseriesDebug struct {
	Enabled bool `json:"enabled"`
	obs.QueryResult
}

// handleDebugTimeseries serves the ring buffers. Query parameters:
//
//	metric  exact base name ("server.phase_ns") or full labeled series
//	        name; empty returns every series
//	since   only points at or after this instant — RFC 3339, a Unix
//	        seconds integer, or a trailing-window duration ("5m" = the
//	        last five minutes)
func (s *Server) handleDebugTimeseries(w http.ResponseWriter, r *http.Request) {
	if s.sampler == nil {
		writeJSON(w, http.StatusOK, timeseriesDebug{})
		return
	}
	var since time.Time
	if raw := r.URL.Query().Get("since"); raw != "" {
		var err error
		since, err = parseSince(raw, time.Now())
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": "bad since parameter: " + err.Error(),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, timeseriesDebug{
		Enabled:     true,
		QueryResult: s.sampler.Query(r.URL.Query().Get("metric"), since),
	})
}

// parseSince accepts the three spellings of a time bound: a duration
// ("5m", trailing window ending now), RFC 3339, or Unix seconds.
func parseSince(raw string, now time.Time) (time.Time, error) {
	if d, err := time.ParseDuration(raw); err == nil {
		if d < 0 {
			d = -d
		}
		return now.Add(-d), nil
	}
	if ts, err := time.Parse(time.RFC3339, raw); err == nil {
		return ts, nil
	}
	if unix, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return time.Unix(unix, 0), nil
	}
	return time.Time{}, fmt.Errorf("%q is not a duration, RFC 3339 time, or Unix seconds", raw)
}

// costsDebug is the GET /v1/debug/costs schema: tenant.CostReport, ranked
// by attributed CPU. Always available — cost metering has no flag.
type costsDebug = tenant.CostReport

func (s *Server) handleDebugCosts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, costsDebug(s.tenants.Costs()))
}

// handleDebugSLO serves the SLO evaluation; {"enabled":false} when no
// -slo-target is configured.
func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.debug())
}
