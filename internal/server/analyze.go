package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/checkers"
	"repro/internal/conc"
	"repro/internal/detect"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// AnalyzeRequest is the POST /analyze body: the full set of translation
// units (the session diffs them against the previous request, so unchanged
// functions are served from the artifact store) plus detection options.
type AnalyzeRequest struct {
	// Project routes the request to a per-project session (see
	// internal/tenant): requests for different projects analyze
	// concurrently, same-project requests serialize on that project's
	// session. Absent or empty means the "default" tenant — the exact
	// behavior of the pre-tenant server. IDs are 1..64 bytes of
	// [A-Za-z0-9._-].
	Project string `json:"project,omitempty"`
	// Units is the complete program, one entry per translation unit.
	Units []UnitJSON `json:"units"`
	// Checkers selects detectors by registry name or alias; empty or
	// ["all"] runs every registered checker.
	Checkers []string `json:"checkers,omitempty"`
	// Witness enables per-report provenance capture
	// (detect.Options.Witness).
	Witness bool `json:"witness,omitempty"`
	// Workers overrides the server's default worker-pool size for this
	// request (conc.Workers semantics). Nil keeps the server default.
	Workers *int `json:"workers,omitempty"`
	// MaxCallDepth overrides the demand-driven search's call-depth bound;
	// 0 keeps the engine default.
	MaxCallDepth int `json:"maxCallDepth,omitempty"`
}

// UnitJSON is one named translation unit.
type UnitJSON struct {
	Name string `json:"name"`
	Src  string `json:"src"`
}

// AnalyzeResponse is the POST /analyze reply. Reports uses the exact
// detect.JSONReport schema of `pinpoint -format json`, so batch and served
// analyses of the same program are byte-identical report-for-report.
type AnalyzeResponse struct {
	TraceID string `json:"traceId"`
	// Project echoes the request's project field. Omitted when the
	// request didn't set one, so single-tenant response bodies stay
	// byte-identical to the pre-tenant server's.
	Project string              `json:"project,omitempty"`
	Reports []detect.JSONReport `json:"reports"`
	Stats   AnalyzeStats        `json:"stats"`
	Timing  TimingJSON          `json:"timing"`
}

// TimingJSON attributes one request's server-side wall clock to phases.
// The top-level phases partition TotalNs exactly:
//
//	TotalNs = DecodeNs + QueueWaitNs + SessionWaitNs + BuildNs + DetectNs + OtherNs
//
// with OtherNs computed as the remainder (checker resolution, report
// marshaling, response assembly). ParseNs/StoreLoadNs/StoreSaveNs are
// slices of BuildNs and SMTNs a slice of DetectNs, so they refine their
// parents without double counting in the sum. The same phases feed the
// server.phase_ns{phase=...} histograms on /metrics.
type TimingJSON struct {
	// TotalNs is wall time inside the analyze handler, from the first
	// byte of body decoding to the assembled response.
	TotalNs int64 `json:"totalNs"`
	// DecodeNs is request-body JSON decoding.
	DecodeNs int64 `json:"decodeNs"`
	// QueueWaitNs is admission-gate queueing (saturated server backlog).
	QueueWaitNs int64 `json:"queueWaitNs"`
	// SessionWaitNs is tenant acquisition: resolving (or admitting) the
	// project's tenant, its per-tenant gate, and contention on its
	// single-writer session lock. Only same-project requests contend.
	SessionWaitNs int64 `json:"sessionWaitNs"`
	// BuildNs is Session.Update: parse, diff, rebuild, persist.
	BuildNs int64 `json:"buildNs"`
	// ParseNs is the parse slice of BuildNs.
	ParseNs int64 `json:"parseNs"`
	// StoreLoadNs is the persistent-store warm-load slice of BuildNs.
	StoreLoadNs int64 `json:"storeLoadNs"`
	// StoreSaveNs is the persistent-store persist slice of BuildNs.
	StoreSaveNs int64 `json:"storeSaveNs"`
	// DetectNs is CheckAll: demand-driven search plus SMT.
	DetectNs int64 `json:"detectNs"`
	// SMTNs is the SMT elimination-pipeline slice of DetectNs.
	SMTNs int64 `json:"smtNs"`
	// OtherNs is TotalNs minus every top-level phase.
	OtherNs int64 `json:"otherNs"`
}

// AnalyzeStats summarizes the request's work: what the incremental store
// reused, how large the program is, and where the wall-clock went.
type AnalyzeStats struct {
	Functions           int `json:"functions"`
	ArtifactHits        int `json:"artifactHits"`
	ArtifactMisses      int `json:"artifactMisses"`
	ArtifactInvalidated int `json:"artifactInvalidated"`
	// ArtifactStoreHits counts the artifacts warm-loaded from the
	// persistent store rather than found in memory — nonzero only on the
	// first request after a restart with a populated -store-dir.
	ArtifactStoreHits  int   `json:"artifactStoreHits"`
	Reports            int   `json:"reports"`
	Workers            int   `json:"workers"`
	BuildNs            int64 `json:"buildNs"`
	DetectNs           int64 `json:"detectNs"`
	GateWaitNs         int64 `json:"gateWaitNs"`
	SMTQueries         int   `json:"smtQueries"`
	SMTSolved          int   `json:"smtSolved"`
	SMTCacheHits       int   `json:"smtCacheHits"`
	SMTPrefilterUnsat  int   `json:"smtPrefilterUnsat"`
	SummaryCacheHits   int   `json:"summaryCacheHits"`
	SummaryCacheMisses int   `json:"summaryCacheMisses"`
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	ri := reqInfo(r)
	ctx := r.Context()
	if d := s.requestTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	resp, err := s.analyze(ctx, r, ri)
	if err != nil {
		status := http.StatusInternalServerError
		var he *httpError
		switch {
		case errors.As(err, &he):
			status = he.status
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.Canceled):
			// Client went away; the status is never seen but keeps the
			// log honest.
			status = 499
		}
		ri.Log.Warn("analyze failed", "status", status, "err", err.Error())
		writeJSON(w, status, map[string]string{"error": err.Error(), "traceId": ri.TraceID})
		return
	}
	ri.Log.Info("analyze done",
		"functions", resp.Stats.Functions,
		"reports", resp.Stats.Reports,
		"artifact_hits", resp.Stats.ArtifactHits,
		"artifact_misses", resp.Stats.ArtifactMisses,
		"build_ns", resp.Stats.BuildNs,
		"detect_ns", resp.Stats.DetectNs)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) analyze(ctx context.Context, r *http.Request, ri *requestInfo) (*AnalyzeResponse, error) {
	reqStart := time.Now()
	var req AnalyzeRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, &httpError{http.StatusBadRequest, "bad request body: " + err.Error()}
	}
	decodeNs := time.Since(reqStart)
	if len(req.Units) == 0 {
		return nil, &httpError{http.StatusBadRequest, "no translation units"}
	}
	specs, err := resolveCheckers(req.Checkers)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	units := make([]minic.NamedSource, len(req.Units))
	for i, u := range req.Units {
		if u.Name == "" {
			return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("unit %d has no name", i)}
		}
		units[i] = minic.NamedSource{Name: u.Name, Src: u.Src}
	}
	workers := s.cfg.Workers
	if req.Workers != nil {
		workers = *req.Workers
	}

	// Admission: wait for a gate slot under the request deadline, so a
	// saturated server sheds queued load instead of accumulating it.
	gateStart := time.Now()
	s.rec.Gauge("server.queue_depth").Add(1)
	err = s.gate.Enter(ctx)
	s.rec.Gauge("server.queue_depth").Add(-1)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, &httpError{http.StatusServiceUnavailable, "server saturated: deadline expired waiting for an analysis slot"}
		}
		return nil, err
	}
	defer s.gate.Leave()
	gateWait := time.Since(gateStart)

	// Each tenant's session is single-writer; Acquire resolves (or admits)
	// the project's tenant and waits for its gate and lock under the
	// request deadline. The elapsed time is exactly the session-wait
	// phase, so the timing partition stays exact per tenant.
	lockStart := time.Now()
	h, err := s.tenants.Acquire(ctx, req.Project)
	sessionWait := time.Since(lockStart)
	if err != nil {
		switch {
		case errors.Is(err, tenant.ErrResidentLimit):
			return nil, &httpError{http.StatusServiceUnavailable, err.Error()}
		case errors.Is(err, context.DeadlineExceeded):
			return nil, &httpError{http.StatusServiceUnavailable, "server saturated: deadline expired waiting for the project's session"}
		case errors.Is(err, context.Canceled):
			return nil, err
		default:
			// The remaining Acquire failure is a malformed project ID.
			return nil, &httpError{http.StatusBadRequest, err.Error()}
		}
	}
	defer h.Release()
	sess := h.Session()

	buildStart := time.Now()
	a, err := sess.Update(units)
	if err != nil {
		// A parse/lowering error leaves the session untouched (Update's
		// commit-on-success contract), so the request is at fault.
		return nil, &httpError{http.StatusUnprocessableEntity, err.Error()}
	}
	buildNs := time.Since(buildStart)
	if a.Artifacts.StoreHits > 0 {
		// The greppable restart marker: the persistent store served
		// artifacts that would otherwise have been rebuilt.
		ri.Log.Info("store warm load",
			"artifact_store_hits", a.Artifacts.StoreHits,
			"artifact_hits", a.Artifacts.Hits,
			"artifact_misses", a.Artifacts.Misses)
	}

	detectStart := time.Now()
	res := a.CheckAll(specs, detect.Options{
		MaxCallDepth: req.MaxCallDepth,
		Workers:      workers,
		Witness:      req.Witness,
		TraceID:      ri.TraceID,
		Obs:          s.rec,
	})
	detectNs := time.Since(detectStart)

	reports := make([]detect.JSONReport, 0, len(res.Reports))
	for _, rep := range res.Reports {
		reports = append(reports, rep.ToJSON())
	}
	stats := AnalyzeStats{
		Functions:           a.Sizes.Functions,
		ArtifactHits:        a.Artifacts.Hits,
		ArtifactMisses:      a.Artifacts.Misses,
		ArtifactInvalidated: a.Artifacts.Invalidated,
		ArtifactStoreHits:   a.Artifacts.StoreHits,
		Reports:             len(reports),
		Workers:             conc.Workers(workers),
		BuildNs:             buildNs.Nanoseconds(),
		DetectNs:            detectNs.Nanoseconds(),
		GateWaitNs:          gateWait.Nanoseconds(),
		SummaryCacheHits:    res.SummaryHits,
		SummaryCacheMisses:  res.SummaryMisses,
	}
	var smtNs int64
	for _, cs := range res.Checkers {
		stats.SMTQueries += cs.Stats.SMTQueries
		stats.SMTSolved += cs.Stats.SMTSolved
		stats.SMTCacheHits += cs.Stats.SMTCacheHits
		stats.SMTPrefilterUnsat += cs.Stats.SMTPrefilterUnsat
		smtNs += int64(cs.Stats.SMTTime)
	}

	timing := TimingJSON{
		DecodeNs:      decodeNs.Nanoseconds(),
		QueueWaitNs:   gateWait.Nanoseconds(),
		SessionWaitNs: sessionWait.Nanoseconds(),
		BuildNs:       buildNs.Nanoseconds(),
		ParseNs:       a.Timings.Parse.Nanoseconds(),
		StoreLoadNs:   a.Timings.StoreLoad.Nanoseconds(),
		StoreSaveNs:   a.Timings.StoreSave.Nanoseconds(),
		DetectNs:      detectNs.Nanoseconds(),
		SMTNs:         smtNs,
	}
	timing.TotalNs = time.Since(reqStart).Nanoseconds()
	timing.OtherNs = timing.TotalNs - timing.DecodeNs - timing.QueueWaitNs -
		timing.SessionWaitNs - timing.BuildNs - timing.DetectNs
	s.observePhases(h.Project(), timing)
	// The cost ledger reuses the response's exact timing partition, so
	// /v1/debug/costs attributes precisely what the client was told it
	// paid. Store bytes are metered separately at the store boundary.
	h.RecordCost(tenant.CostDelta{
		BuildNs:       timing.BuildNs,
		DetectNs:      timing.DetectNs,
		SMTNs:         timing.SMTNs,
		SMTSolved:     int64(stats.SMTSolved),
		SMTEliminated: int64(stats.SMTCacheHits + stats.SMTPrefilterUnsat),
	})
	return &AnalyzeResponse{TraceID: ri.TraceID, Project: req.Project, Reports: reports, Stats: stats, Timing: timing}, nil
}

// observePhases feeds one request's timing breakdown into the labeled
// server.phase_ns histograms behind /metrics, one series per
// (phase, tenant) pair so per-project latency is scrapeable.
func (s *Server) observePhases(project string, t TimingJSON) {
	observe := func(phase string, v int64) {
		s.rec.Histogram(obs.Labeled("server.phase_ns", "phase", phase, "tenant", project)).Observe(v)
	}
	observe("decode", t.DecodeNs)
	observe("queue_wait", t.QueueWaitNs)
	observe("session_wait", t.SessionWaitNs)
	observe("build", t.BuildNs)
	observe("parse", t.ParseNs)
	observe("store_load", t.StoreLoadNs)
	observe("store_save", t.StoreSaveNs)
	observe("detect", t.DetectNs)
	observe("smt", t.SMTNs)
	observe("other", t.OtherNs)
}

// resolveCheckers maps request names to fresh checker specs. Empty and
// ["all"] mean every registered checker.
func resolveCheckers(names []string) ([]*checkers.Spec, error) {
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		return checkers.All(), nil
	}
	specs := make([]*checkers.Spec, 0, len(names))
	for _, n := range names {
		sp, ok := checkers.ByName(strings.TrimSpace(n))
		if !ok {
			return nil, fmt.Errorf("unknown checker %q (known: %s)", n, strings.Join(checkers.Names(), ", "))
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
