package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/minic"
)

// GenOptions controls synthesis.
type GenOptions struct {
	// Scale is the number of generated source lines per paper-KLoC
	// (default 15): relative subject sizes match the paper, absolute
	// sizes fit the harness budget.
	Scale int
	// Seed perturbs the generator (default derives from the subject).
	Seed int64
	// Taint additionally injects the Table 2 taint workloads
	// (path-traversal and data-transmission flows).
	Taint bool
}

func (o GenOptions) withDefaults(s Subject) GenOptions {
	if o.Scale == 0 {
		o.Scale = 15
	}
	if o.Seed == 0 {
		var h int64 = 1125899906842597
		for _, c := range s.Name {
			h = h*31 + int64(c)
		}
		o.Seed = h
	}
	return o
}

// BugSite is a ground-truth marker: the file and line of the bug's source
// statement (the free, or the taint-source call).
type BugSite struct {
	File string
	Line int
	Kind string
}

// Truth is the generated ground truth of one subject.
type Truth struct {
	// TrueUAF are real use-after-free bugs (by free site).
	TrueUAF []BugSite
	// OpaqueUAF are flows no analysis can refute but that are not real
	// bugs (expected Pinpoint false positives).
	OpaqueUAF []BugSite
	// InfeasibleTraps are free sites involved in contradictory-guard
	// patterns; reporting one is a false positive.
	InfeasibleTraps []BugSite
	// TaintTrue / TaintOpaque map checker name → sites (by source call).
	TaintTrue   map[string][]BugSite
	TaintOpaque map[string][]BugSite
}

// IsTrueUAF reports whether a free at (file, line) is a real bug.
func (t *Truth) IsTrueUAF(file string, line int) bool {
	return containsSite(t.TrueUAF, file, line)
}

// IsOpaqueUAF reports whether a free at (file, line) is an expected
// unrefutable false positive.
func (t *Truth) IsOpaqueUAF(file string, line int) bool {
	return containsSite(t.OpaqueUAF, file, line)
}

func containsSite(sites []BugSite, file string, line int) bool {
	for _, s := range sites {
		if s.File == file && s.Line == line {
			return true
		}
	}
	return false
}

// Generated is one synthesized subject.
type Generated struct {
	Subject Subject
	Units   []minic.NamedSource
	Lines   int
	Truth   Truth
}

// unitWriter emits one translation unit, tracking line numbers.
type unitWriter struct {
	name string
	b    strings.Builder
	line int
}

func newUnitWriter(name string) *unitWriter {
	return &unitWriter{name: name, line: 0}
}

// writeln emits one line and returns its 1-based line number.
func (w *unitWriter) writeln(s string) int {
	w.b.WriteString(s)
	w.b.WriteByte('\n')
	w.line++
	return w.line
}

func (w *unitWriter) source() minic.NamedSource {
	return minic.NamedSource{Name: w.name, Src: w.b.String()}
}

// generator tracks cross-unit state.
type generator struct {
	rng     *rand.Rand
	units   []*unitWriter
	truth   Truth
	counter int
	// perUnitCalls records function call statements for the unit driver.
	perUnitCalls [][]string
}

func (g *generator) id() int {
	g.counter++
	return g.counter
}

func (g *generator) callLater(unit int, call string) {
	g.perUnitCalls[unit] = append(g.perUnitCalls[unit], call)
}

// Generate synthesizes one subject.
func Generate(s Subject, opts GenOptions) *Generated {
	opts = opts.withDefaults(s)
	target := s.PaperKLoC * opts.Scale
	if target < 40 {
		target = 40
	}
	nUnits := target / 400
	if nUnits < 1 {
		nUnits = 1
	}

	g := &generator{
		rng:          rand.New(rand.NewSource(opts.Seed)),
		truth:        Truth{TaintTrue: map[string][]BugSite{}, TaintOpaque: map[string][]BugSite{}},
		perUnitCalls: make([][]string, nUnits),
	}
	for i := 0; i < nUnits; i++ {
		w := newUnitWriter(fmt.Sprintf("%s_%d.mc", s.Name, i))
		w.writeln(fmt.Sprintf("// %s unit %d (synthesized workload)", s.Name, i))
		if i == 0 {
			// The program-wide registry cell: a fraction of all
			// functions store to and load from it. A flow- and
			// context-insensitive points-to analysis conflates every
			// participant (its value-flow graph grows quadratically in
			// the number of users); Pinpoint's local analysis resolves
			// each function's accesses with strong updates and stays
			// linear. This is the generated analogue of the shared
			// container/utility layers that make real million-line
			// systems hostile to global points-to analysis.
			w.writeln("int *registry_g;")
		}
		g.units = append(g.units, w)
	}

	// Inject ground-truth bugs and traps first, spread across units.
	for i := 0; i < s.TrueBugs; i++ {
		// Rotate through the six structural variants, offset per
		// subject; subjects with several bugs always include the
		// connector-dependent variant (the Figure 1/2 pattern).
		variant := (i + s.PaperKLoC) % 6
		if i == 0 && s.TrueBugs >= 2 {
			variant = 5
		}
		g.emitTrueUAF(i%nUnits, variant)
	}
	for i := 0; i < s.OpaqueTraps; i++ {
		g.emitOpaqueUAF((i + 1) % nUnits)
	}
	nTraps := target / 800
	if nTraps < 1 {
		nTraps = 1
	}
	for i := 0; i < nTraps; i++ {
		g.emitInfeasibleTrap(i % nUnits)
	}
	if opts.Taint {
		for i := 0; i < 9; i++ {
			g.emitTaintTrue(i%nUnits, "path-traversal")
		}
		for i := 0; i < 2; i++ {
			g.emitTaintOpaque(i%nUnits, "path-traversal")
		}
		for i := 0; i < 14; i++ {
			g.emitTaintTrue(i%nUnits, "data-transmission")
		}
		for i := 0; i < 4; i++ {
			g.emitTaintOpaque(i%nUnits, "data-transmission")
		}
	}

	// Fill with ordinary code until the size target.
	total := func() int {
		n := 0
		for _, w := range g.units {
			n += w.line
		}
		return n
	}
	for u := 0; total() < target; u = (u + 1) % nUnits {
		g.emitFiller(u)
	}

	// Per-unit drivers keep every function reachable.
	ident := strings.NewReplacer("-", "_", ".", "_").Replace(s.Name)
	for u, w := range g.units {
		w.writeln(fmt.Sprintf("void drive_%s_%d(int seed, bool flag) {", ident, u))
		for _, call := range g.perUnitCalls[u] {
			w.writeln("\t" + call)
		}
		w.writeln("}")
	}

	out := &Generated{Subject: s, Truth: g.truth}
	for _, w := range g.units {
		out.Units = append(out.Units, w.source())
		out.Lines += w.line
	}
	return out
}

// emitFiller writes one ordinary function. Most templates allocate, use,
// and correctly free heap memory — precisely the pattern an orderless
// reachability checker floods on.
func (g *generator) emitFiller(u int) {
	w := g.units[u]
	k := g.id()
	switch g.rng.Intn(7) {
	case 6: // registry user (see the registry_g comment in unit 0)
		w.writeln(fmt.Sprintf("int reg%d(int x) {", k))
		w.writeln("\tint *p = malloc();")
		w.writeln("\tregistry_g = p;")
		w.writeln("\t*p = x;")
		w.writeln("\tint *q = registry_g;")
		w.writeln("\tint r = *q;")
		w.writeln("\tfree(p);")
		w.writeln("\treturn r;")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("reg%d(seed);", k))
	case 0: // malloc-use-free
		w.writeln(fmt.Sprintf("int filler%d(int a, int b) {", k))
		w.writeln("\tint *buf = malloc();")
		w.writeln("\t*buf = a + b;")
		w.writeln(fmt.Sprintf("\tif (a > %d) { *buf = a - b; }", g.rng.Intn(20)))
		w.writeln("\tint y = *buf;")
		w.writeln("\tfree(buf);")
		w.writeln("\treturn y;")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("filler%d(seed, seed + %d);", k, k%13))
	case 1: // pure arithmetic
		w.writeln(fmt.Sprintf("int calc%d(int n) {", k))
		w.writeln(fmt.Sprintf("\tint s = n * %d + %d;", 1+g.rng.Intn(9), g.rng.Intn(50)))
		w.writeln(fmt.Sprintf("\tif (s > %d) { s = s - n; } else { s = s + n; }", g.rng.Intn(100)))
		w.writeln("\treturn s;")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("calc%d(seed);", k))
	case 2: // writer/reader pair exercising connectors
		w.writeln(fmt.Sprintf("void put%d(int *p, int v) { *p = v; }", k))
		w.writeln(fmt.Sprintf("int get%d(int *p) { return *p; }", k))
		w.writeln(fmt.Sprintf("int pair%d(int x) {", k))
		w.writeln("\tint *c = malloc();")
		w.writeln(fmt.Sprintf("\tput%d(c, x);", k))
		w.writeln(fmt.Sprintf("\tint r = get%d(c);", k))
		w.writeln("\tfree(c);")
		w.writeln("\treturn r;")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("pair%d(seed);", k))
	case 3: // conditional stores
		w.writeln(fmt.Sprintf("int pick%d(bool c) {", k))
		w.writeln("\tint *p = malloc();")
		w.writeln(fmt.Sprintf("\tif (c) { *p = %d; } else { *p = %d; }", k, k+1))
		w.writeln("\tint v = *p;")
		w.writeln("\tfree(p);")
		w.writeln("\treturn v;")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("pick%d(flag);", k))
	case 4: // double-pointer slot
		w.writeln(fmt.Sprintf("int slot%d(int v) {", k))
		w.writeln("\tint **slot = malloc();")
		w.writeln("\tint *a = malloc();")
		w.writeln("\t*slot = a;")
		w.writeln("\tint *b = *slot;")
		w.writeln("\t*b = v;")
		w.writeln("\tint r = *a;")
		w.writeln("\tfree(a);")
		w.writeln("\treturn r;")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("slot%d(seed);", k))
	default: // helper chain
		w.writeln(fmt.Sprintf("int help%d(int a) { return a + %d; }", k, k%7))
		w.writeln(fmt.Sprintf("int chain%d(int n) {", k))
		w.writeln(fmt.Sprintf("\tint t = help%d(n);", k))
		w.writeln("\tint s = t * 2;")
		w.writeln(fmt.Sprintf("\twhile (s > %d) { s = s - %d; }", 40+g.rng.Intn(60), 1+g.rng.Intn(5)))
		w.writeln("\treturn s;")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("chain%d(seed);", k))
	}
}

// emitTrueUAF injects a real use-after-free with the given structural
// variant (0-5).
func (g *generator) emitTrueUAF(u, variant int) {
	w := g.units[u]
	k := g.id()
	var freeLine int
	switch variant {
	case 5: // through an output-parameter store (Figure 1/2 of the
		// paper): the callee frees a pointer it also published through
		// caller memory — invisible without the connector model.
		freeLine = w.writeln(fmt.Sprintf("void pub%d(int **slot) { int *c = malloc(); *slot = c; free(c); }", k))
		w.writeln(fmt.Sprintf("void bug%d() {", k))
		w.writeln("\tint **slot = malloc();")
		w.writeln(fmt.Sprintf("\tpub%d(slot);", k))
		w.writeln("\tint *uu = *slot;")
		w.writeln("\tint v = *uu;")
		w.writeln("\tuse_val(v);")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("bug%d();", k))
	case 0: // intra-procedural, condition-correlated
		w.writeln(fmt.Sprintf("void bug%d(bool c) {", k))
		w.writeln("\tint *p = malloc();")
		freeLine = w.writeln("\tif (c) { free(p); }")
		w.writeln("\tif (c) { int v = *p; use_val(v); }")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("bug%d(flag);", k))
	case 1: // helper frees, same unit
		freeLine = w.writeln(fmt.Sprintf("void rel%d(int *x) { free(x); }", k))
		w.writeln(fmt.Sprintf("void bug%d() {", k))
		w.writeln("\tint *p = malloc();")
		w.writeln(fmt.Sprintf("\trel%d(p);", k))
		w.writeln("\tint v = *p;")
		w.writeln("\tuse_val(v);")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("bug%d();", k))
	case 2: // cross-unit release
		other := (u + 1) % len(g.units)
		ow := g.units[other]
		freeLine = ow.writeln(fmt.Sprintf("void xrel%d(int *x) { free(x); }", k))
		g.truth.TrueUAF = append(g.truth.TrueUAF, BugSite{File: ow.name, Line: freeLine, Kind: "uaf-cross-unit"})
		w.writeln(fmt.Sprintf("void bug%d() {", k))
		w.writeln("\tint *p = malloc();")
		w.writeln(fmt.Sprintf("\txrel%d(p);", k))
		w.writeln("\tint v = *p;")
		w.writeln("\tuse_val(v);")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("bug%d();", k))
		return
	case 3: // through heap memory
		w.writeln(fmt.Sprintf("void bug%d() {", k))
		w.writeln("\tint *c = malloc();")
		w.writeln("\tint **slot = malloc();")
		w.writeln("\t*slot = c;")
		freeLine = w.writeln("\tfree(c);")
		w.writeln("\tint *uu = *slot;")
		w.writeln("\tint v = *uu;")
		w.writeln("\tuse_val(v);")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("bug%d();", k))
	default: // returned freed pointer
		w.writeln(fmt.Sprintf("int *mk%d() {", k))
		w.writeln("\tint *p = malloc();")
		freeLine = w.writeln("\tfree(p);")
		w.writeln("\treturn p;")
		w.writeln("}")
		w.writeln(fmt.Sprintf("void bug%d() {", k))
		w.writeln(fmt.Sprintf("\tint *q = mk%d();", k))
		w.writeln("\tint v = *q;")
		w.writeln("\tuse_val(v);")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("bug%d();", k))
	}
	g.truth.TrueUAF = append(g.truth.TrueUAF, BugSite{File: w.name, Line: freeLine, Kind: "uaf"})
}

// emitOpaqueUAF injects a flow guarded by unrelated external conditions —
// unrefutable, not a real bug (the residual FP class).
func (g *generator) emitOpaqueUAF(u int) {
	w := g.units[u]
	k := g.id()
	w.writeln(fmt.Sprintf("void opq%d() {", k))
	w.writeln("\tint *p = malloc();")
	w.writeln("\tint c1 = env_mode();")
	w.writeln("\tint c2 = env_level();")
	freeLine := w.writeln("\tif (c1 > 0) { free(p); }")
	w.writeln("\tif (c2 > 0) { int v = *p; use_val(v); }")
	w.writeln("}")
	g.callLater(u, fmt.Sprintf("opq%d();", k))
	g.truth.OpaqueUAF = append(g.truth.OpaqueUAF, BugSite{File: w.name, Line: freeLine, Kind: "uaf-opaque"})
}

// emitInfeasibleTrap injects complementary-guard patterns that only
// path-sensitive analysis refutes.
func (g *generator) emitInfeasibleTrap(u int) {
	w := g.units[u]
	k := g.id()
	var freeLine int
	if k%2 == 0 {
		w.writeln(fmt.Sprintf("void trap%d(bool c) {", k))
		w.writeln("\tint *p = malloc();")
		freeLine = w.writeln("\tif (c) { free(p); }")
		w.writeln("\tif (!c) { int v = *p; use_val(v); }")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("trap%d(flag);", k))
	} else {
		w.writeln(fmt.Sprintf("void trap%d(int x) {", k))
		w.writeln("\tint *p = malloc();")
		freeLine = w.writeln("\tif (x > 0) { free(p); }")
		w.writeln("\tif (x < 0) { int v = *p; use_val(v); }")
		w.writeln("}")
		g.callLater(u, fmt.Sprintf("trap%d(seed);", k))
	}
	g.truth.InfeasibleTraps = append(g.truth.InfeasibleTraps, BugSite{File: w.name, Line: freeLine, Kind: "uaf-trap"})
}

// emitTaintTrue injects a real taint flow for the named checker.
func (g *generator) emitTaintTrue(u int, checker string) {
	w := g.units[u]
	k := g.id()
	var srcLine int
	if checker == "path-traversal" {
		switch k % 3 {
		case 0:
			w.writeln(fmt.Sprintf("void tnt%d() {", k))
			srcLine = w.writeln("\tint *path = user_input();")
			w.writeln("\topen_file(path);")
			w.writeln("}")
		case 1:
			w.writeln(fmt.Sprintf("void tnt%d() {", k))
			srcLine = w.writeln("\tint *raw = read_line();")
			w.writeln("\tint *path = to_path(raw);")
			w.writeln("\topen_file(path);")
			w.writeln("}")
		default:
			w.writeln(fmt.Sprintf("void opn%d(int *p) { remove_file(p); }", k))
			w.writeln(fmt.Sprintf("void tnt%d() {", k))
			srcLine = w.writeln("\tint *path = user_input();")
			w.writeln(fmt.Sprintf("\topn%d(path);", k))
			w.writeln("}")
		}
	} else {
		switch k % 2 {
		case 0:
			w.writeln(fmt.Sprintf("void tnt%d() {", k))
			srcLine = w.writeln("\tint *sec = getpass();")
			w.writeln("\tsend_data(sec);")
			w.writeln("}")
		default:
			// The taint source sits inside the wrapper, so the marker
			// records the wrapper line (reports point at the source
			// call).
			srcLine = w.writeln(fmt.Sprintf("int *wrap%d() { return read_secret(); }", k))
			w.writeln(fmt.Sprintf("void tnt%d() {", k))
			w.writeln(fmt.Sprintf("\tint *sec = wrap%d();", k))
			w.writeln("\tsendto_net(sec);")
			w.writeln("}")
		}
	}
	g.callLater(u, fmt.Sprintf("tnt%d();", k))
	site := BugSite{File: w.name, Line: srcLine, Kind: checker}
	g.truth.TaintTrue[checker] = append(g.truth.TaintTrue[checker], site)
}

// emitTaintOpaque injects a flow that is sanitized in reality but
// unmodeled (the taint checkers deliberately skip sanitizers, §4.1/§5.3),
// so it is reported and counts as a false positive.
func (g *generator) emitTaintOpaque(u int, checker string) {
	w := g.units[u]
	k := g.id()
	var srcLine int
	if checker == "path-traversal" {
		w.writeln(fmt.Sprintf("void tfp%d() {", k))
		srcLine = w.writeln("\tint *path = user_input();")
		w.writeln("\tif (validate_path(path) > 0) { open_file(path); }")
		w.writeln("}")
	} else {
		w.writeln(fmt.Sprintf("void tfp%d() {", k))
		srcLine = w.writeln("\tint *sec = getpass();")
		w.writeln("\tif (is_redacted(sec) > 0) { send_data(sec); }")
		w.writeln("}")
	}
	g.callLater(u, fmt.Sprintf("tfp%d();", k))
	site := BugSite{File: w.name, Line: srcLine, Kind: checker + "-opaque"}
	g.truth.TaintOpaque[checker] = append(g.truth.TaintOpaque[checker], site)
}

// MatchTaint reports which injected taint site (if any) a reported source
// position corresponds to. Markers record the exact line of the
// taint-source call, so matching is exact.
func (t *Truth) MatchTaint(checker, file string, line int) (isTrue, isOpaque bool) {
	if containsSite(t.TaintTrue[checker], file, line) {
		return true, false
	}
	if containsSite(t.TaintOpaque[checker], file, line) {
		return false, true
	}
	return false, false
}
