// Package workload generates the benchmark programs of the evaluation.
//
// The paper evaluates on 12 SPEC CINT 2000 programs and 18 open-source
// projects (2 KLoC – 8 MLoC). Neither corpus is reproducible here (no C/C++
// frontend, no network), so this package synthesizes MiniC projects with
// the same names and relative sizes, deterministic per subject, and —
// crucially — with *known ground truth*: every generated bug and every
// generated "trap" (a pattern that fools weaker analyses) is recorded, so
// false-positive rates are measured objectively rather than by developer
// confirmation.
//
// Three pattern families drive the precision experiments:
//
//   - true bugs: real use-after-free flows in the five structural variants
//     the paper highlights (intra-procedural, callee-frees, cross-unit,
//     through heap memory, returned-freed);
//   - infeasible traps: free and use guarded by complementary conditions —
//     visible to path-insensitive tools (SVF/CSA-like), pruned by
//     Pinpoint's SMT stage;
//   - opaque traps: free and use guarded by unrelated external conditions —
//     no analysis can refute them, so Pinpoint reports them too; ground
//     truth labels them false positives, reproducing the paper's residual
//     14.3%–23.6% FP rate.
//
// Ordinary "filler" functions allocate, use, then free memory correctly;
// an orderless reachability checker (the SVF baseline) flags every one of
// them, reproducing the warning flood of Table 1.
package workload

// Subject describes one benchmark program of the paper's evaluation with
// the paper-reported numbers the harness prints alongside measured ones.
type Subject struct {
	Name   string
	Origin string // "SPEC CINT2000" or "Open Source"
	// PaperKLoC is the subject's size in the paper.
	PaperKLoC int
	// PaperPinpointReports / PaperPinpointFP are Table 1's Pinpoint
	// columns.
	PaperPinpointReports int
	PaperPinpointFP      int
	// PaperSVFReports is Table 1's SVF column (-1 = NA: SVF timed out).
	PaperSVFReports int
	// TrueBugs / OpaqueTraps are the ground-truth injections for this
	// subject, chosen so reports mirror Table 1's shape
	// (reports = TrueBugs + OpaqueTraps, FP = OpaqueTraps).
	TrueBugs    int
	OpaqueTraps int
}

// Subjects lists the 30 programs of Table 1, ordered by size within each
// origin group as in the paper.
var Subjects = []Subject{
	{Name: "mcf", Origin: "SPEC CINT2000", PaperKLoC: 2, PaperSVFReports: 0},
	{Name: "bzip2", Origin: "SPEC CINT2000", PaperKLoC: 3, PaperSVFReports: 0},
	{Name: "gzip", Origin: "SPEC CINT2000", PaperKLoC: 6, PaperSVFReports: 46},
	{Name: "parser", Origin: "SPEC CINT2000", PaperKLoC: 8, PaperSVFReports: 0},
	{Name: "vpr", Origin: "SPEC CINT2000", PaperKLoC: 11, PaperSVFReports: 55},
	{Name: "crafty", Origin: "SPEC CINT2000", PaperKLoC: 13, PaperSVFReports: 546},
	{Name: "twolf", Origin: "SPEC CINT2000", PaperKLoC: 18, PaperSVFReports: 145},
	{Name: "eon", Origin: "SPEC CINT2000", PaperKLoC: 22, PaperSVFReports: 1324},
	{Name: "gap", Origin: "SPEC CINT2000", PaperKLoC: 36, PaperSVFReports: 0},
	{Name: "vortex", Origin: "SPEC CINT2000", PaperKLoC: 49, PaperSVFReports: 125},
	{Name: "perkbmk", Origin: "SPEC CINT2000", PaperKLoC: 73, PaperSVFReports: 13},
	{Name: "gcc", Origin: "SPEC CINT2000", PaperKLoC: 135, PaperSVFReports: 0},

	{Name: "webassembly", Origin: "Open Source", PaperKLoC: 23, PaperPinpointReports: 1, PaperSVFReports: 902, TrueBugs: 1},
	{Name: "darknet", Origin: "Open Source", PaperKLoC: 24, PaperSVFReports: 152},
	{Name: "html5-parser", Origin: "Open Source", PaperKLoC: 31, PaperSVFReports: 32},
	{Name: "tmux", Origin: "Open Source", PaperKLoC: 40, PaperSVFReports: 2041},
	{Name: "libssh", Origin: "Open Source", PaperKLoC: 44, PaperPinpointReports: 1, PaperSVFReports: 102, TrueBugs: 1},
	{Name: "goacess", Origin: "Open Source", PaperKLoC: 48, PaperPinpointReports: 1, PaperSVFReports: 312, TrueBugs: 1},
	{Name: "shadowsocks", Origin: "Open Source", PaperKLoC: 53, PaperPinpointReports: 2, PaperSVFReports: 1972, TrueBugs: 2},
	{Name: "swoole", Origin: "Open Source", PaperKLoC: 54, PaperSVFReports: 534},
	{Name: "libuv", Origin: "Open Source", PaperKLoC: 62, PaperSVFReports: 0},
	{Name: "transmission", Origin: "Open Source", PaperKLoC: 88, PaperPinpointReports: 1, PaperSVFReports: 802, TrueBugs: 1},
	{Name: "git", Origin: "Open Source", PaperKLoC: 185, PaperSVFReports: -1},
	{Name: "vim", Origin: "Open Source", PaperKLoC: 333, PaperSVFReports: -1},
	{Name: "wrk", Origin: "Open Source", PaperKLoC: 340, PaperSVFReports: -1},
	{Name: "libicu", Origin: "Open Source", PaperKLoC: 537, PaperPinpointReports: 1, PaperSVFReports: -1, TrueBugs: 1},
	{Name: "php", Origin: "Open Source", PaperKLoC: 863, PaperSVFReports: -1},
	{Name: "ffmpeg", Origin: "Open Source", PaperKLoC: 967, PaperSVFReports: -1},
	{Name: "mysql", Origin: "Open Source", PaperKLoC: 2030, PaperPinpointReports: 5, PaperPinpointFP: 1, PaperSVFReports: -1, TrueBugs: 4, OpaqueTraps: 1},
	{Name: "firefox", Origin: "Open Source", PaperKLoC: 7998, PaperPinpointReports: 2, PaperPinpointFP: 1, PaperSVFReports: -1, TrueBugs: 1, OpaqueTraps: 1},
}

// SubjectByName returns the named subject.
func SubjectByName(name string) (Subject, bool) {
	for _, s := range Subjects {
		if s.Name == name {
			return s, true
		}
	}
	return Subject{}, false
}

// OpenSourceSubjects filters the open-source group (Table 3's rows).
func OpenSourceSubjects() []Subject {
	var out []Subject
	for _, s := range Subjects {
		if s.Origin == "Open Source" {
			out = append(out, s)
		}
	}
	return out
}
