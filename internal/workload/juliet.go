package workload

import (
	"fmt"
	"strings"

	"repro/internal/minic"
)

// JulietCase is one generated test case of the recall suite (§5.1.2): a
// small program containing exactly one use-after-free (or double-free)
// that the checker must find.
type JulietCase struct {
	// Name identifies the case (flaw type + variant).
	Name string
	// FlawType is the flaw-type label (51 distinct values, mirroring the
	// 51 CWE-416/415 flaw variants of the Juliet Test Suite).
	FlawType string
	// Units is the program source.
	Units []minic.NamedSource
	// DoubleFree marks CWE-415-style cases (second free as the sink).
	DoubleFree bool
}

// julietControl enumerates the control-flow wrappers Juliet composes flaws
// with. Each wraps the free and the use statements.
type julietControl struct {
	name string
	// wrap emits the flawed region given the free stmt and use stmt.
	wrap func(w *unitWriter, freeStmt, useStmt string)
}

// julietFlow enumerates data-flow shapes between allocation, free, and use.
type julietFlow struct {
	name string
	// emit writes a full program containing the flaw; control wraps the
	// temporal region.
	emit func(w *unitWriter, ctl julietControl, variant int)
}

func stmtSeq(w *unitWriter, stmts ...string) {
	for _, s := range stmts {
		w.writeln(s)
	}
}

var julietControls = []julietControl{
	{name: "plain", wrap: func(w *unitWriter, freeStmt, useStmt string) {
		stmtSeq(w, "\t"+freeStmt, "\t"+useStmt)
	}},
	{name: "if_true", wrap: func(w *unitWriter, freeStmt, useStmt string) {
		stmtSeq(w, "\tif (true) {", "\t\t"+freeStmt, "\t}", "\t"+useStmt)
	}},
	{name: "if_cond_both", wrap: func(w *unitWriter, freeStmt, useStmt string) {
		stmtSeq(w,
			"\tif (cond > 0) {",
			"\t\t"+freeStmt,
			"\t\t"+useStmt,
			"\t}")
	}},
	{name: "if_same_cond_twice", wrap: func(w *unitWriter, freeStmt, useStmt string) {
		stmtSeq(w,
			"\tif (cond > 3) {",
			"\t\t"+freeStmt,
			"\t}",
			"\tif (cond > 5) {",
			"\t\t"+useStmt,
			"\t}")
	}},
	{name: "while_once", wrap: func(w *unitWriter, freeStmt, useStmt string) {
		stmtSeq(w,
			"\tint n = 1;",
			"\twhile (n > 0) {",
			"\t\t"+freeStmt,
			"\t\tn = n - 1;",
			"\t}",
			"\t"+useStmt)
	}},
	{name: "else_branch", wrap: func(w *unitWriter, freeStmt, useStmt string) {
		stmtSeq(w,
			"\tif (cond < 0) {",
			"\t\tkeep_val(cond);",
			"\t} else {",
			"\t\t"+freeStmt,
			"\t}",
			"\tif (cond >= 0) {",
			"\t\t"+useStmt,
			"\t}")
	}},
	{name: "nested_if", wrap: func(w *unitWriter, freeStmt, useStmt string) {
		stmtSeq(w,
			"\tif (cond > 0) {",
			"\t\tif (cond > 1) {",
			"\t\t\t"+freeStmt,
			"\t\t}",
			"\t}",
			"\tif (cond > 2) {",
			"\t\t"+useStmt,
			"\t}")
	}},
}

var julietFlows = []julietFlow{
	{name: "direct", emit: func(w *unitWriter, ctl julietControl, v int) {
		w.writeln("void testcase(int cond) {")
		w.writeln("\tint *data = malloc();")
		w.writeln(fmt.Sprintf("\t*data = %d;", v))
		ctl.wrap(w, "free(data);", "int r = *data; keep_val(r);")
		w.writeln("}")
	}},
	{name: "copy_alias", emit: func(w *unitWriter, ctl julietControl, v int) {
		w.writeln("void testcase(int cond) {")
		w.writeln("\tint *data = malloc();")
		w.writeln("\tint *alias = data;")
		ctl.wrap(w, "free(data);", "int r = *alias; keep_val(r);")
		w.writeln("}")
	}},
	{name: "helper_free", emit: func(w *unitWriter, ctl julietControl, v int) {
		w.writeln("void do_free(int *x) { free(x); }")
		w.writeln("void testcase(int cond) {")
		w.writeln("\tint *data = malloc();")
		ctl.wrap(w, "do_free(data);", "int r = *data; keep_val(r);")
		w.writeln("}")
	}},
	{name: "helper_use", emit: func(w *unitWriter, ctl julietControl, v int) {
		w.writeln("void do_use(int *x) { int r = *x; keep_val(r); }")
		w.writeln("void testcase(int cond) {")
		w.writeln("\tint *data = malloc();")
		ctl.wrap(w, "free(data);", "do_use(data);")
		w.writeln("}")
	}},
	{name: "slot_memory", emit: func(w *unitWriter, ctl julietControl, v int) {
		w.writeln("void testcase(int cond) {")
		w.writeln("\tint *data = malloc();")
		w.writeln("\tint **slot = malloc();")
		w.writeln("\t*slot = data;")
		ctl.wrap(w, "free(data);", "int *u = *slot; int r = *u; keep_val(r);")
		w.writeln("}")
	}},
	{name: "returned_freed", emit: func(w *unitWriter, ctl julietControl, v int) {
		w.writeln("int *make_freed(int cond) {")
		w.writeln("\tint *p = malloc();")
		ctl.wrap(w, "free(p);", "keep_val(cond);")
		w.writeln("\treturn p;")
		w.writeln("}")
		w.writeln("void testcase(int cond) {")
		w.writeln("\tint *q = make_freed(cond);")
		w.writeln("\tint r = *q;")
		w.writeln("\tkeep_val(r);")
		w.writeln("}")
	}},
	{name: "double_free", emit: func(w *unitWriter, ctl julietControl, v int) {
		w.writeln("void testcase(int cond) {")
		w.writeln("\tint *data = malloc();")
		ctl.wrap(w, "free(data);", "free(data);")
		w.writeln("}")
	}},
	// cross_unit is emitted specially by JulietSuite (two files).
}

// julietTotal is the number of cases in the Juliet 1.1 UAF corpus the paper
// uses for the recall experiment.
const julietTotal = 1421

// JulietSuite generates the recall corpus: 51 flaw types (7 control
// wrappers × 7 data-flow shapes, plus 2 cross-unit flaw types), expanded
// into 1421 variants total, mirroring the Juliet figures the paper reports.
func JulietSuite() []JulietCase {
	var flawTypes []struct {
		name string
		gen  func(variant int) ([]minic.NamedSource, bool)
	}

	for _, fl := range julietFlows {
		for _, ctl := range julietControls {
			fl, ctl := fl, ctl
			flawTypes = append(flawTypes, struct {
				name string
				gen  func(variant int) ([]minic.NamedSource, bool)
			}{
				name: fl.name + "__" + ctl.name,
				gen: func(variant int) ([]minic.NamedSource, bool) {
					w := newUnitWriter("case.mc")
					fl.emit(w, ctl, variant)
					w.writeln(fmt.Sprintf("void driver() { testcase(%d); }", variant%7))
					return []minic.NamedSource{w.source()}, fl.name == "double_free"
				},
			})
		}
	}
	// Two cross-unit flaw types bring the total to 51.
	flawTypes = append(flawTypes,
		struct {
			name string
			gen  func(variant int) ([]minic.NamedSource, bool)
		}{
			name: "cross_unit_free",
			gen: func(variant int) ([]minic.NamedSource, bool) {
				lib := newUnitWriter("lib.mc")
				lib.writeln("void lib_free(int *x) { free(x); }")
				mainW := newUnitWriter("main.mc")
				mainW.writeln("void testcase(int cond) {")
				mainW.writeln("\tint *data = malloc();")
				mainW.writeln("\tlib_free(data);")
				mainW.writeln("\tint r = *data;")
				mainW.writeln("\tkeep_val(r);")
				mainW.writeln("}")
				mainW.writeln(fmt.Sprintf("void driver() { testcase(%d); }", variant))
				return []minic.NamedSource{lib.source(), mainW.source()}, false
			},
		},
		struct {
			name string
			gen  func(variant int) ([]minic.NamedSource, bool)
		}{
			name: "cross_unit_use",
			gen: func(variant int) ([]minic.NamedSource, bool) {
				lib := newUnitWriter("lib.mc")
				lib.writeln("void lib_use(int *x) { int r = *x; keep_val(r); }")
				mainW := newUnitWriter("main.mc")
				mainW.writeln("void testcase(int cond) {")
				mainW.writeln("\tint *data = malloc();")
				mainW.writeln("\tfree(data);")
				mainW.writeln("\tlib_use(data);")
				mainW.writeln("}")
				mainW.writeln(fmt.Sprintf("void driver() { testcase(%d); }", variant))
				return []minic.NamedSource{lib.source(), mainW.source()}, false
			},
		},
	)

	if len(flawTypes) != 51 {
		panic(fmt.Sprintf("juliet: %d flaw types, want 51", len(flawTypes)))
	}

	var cases []JulietCase
	for i := 0; len(cases) < julietTotal; i++ {
		ft := flawTypes[i%len(flawTypes)]
		variant := i / len(flawTypes)
		units, df := ft.gen(variant)
		cases = append(cases, JulietCase{
			Name:       fmt.Sprintf("%s_v%02d", ft.name, variant),
			FlawType:   ft.name,
			Units:      units,
			DoubleFree: df,
		})
	}
	return cases
}

// FlawTypes returns the distinct flaw-type labels of the suite.
func FlawTypes(cases []JulietCase) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cases {
		if !seen[c.FlawType] {
			seen[c.FlawType] = true
			out = append(out, c.FlawType)
		}
	}
	return out
}

// String renders a case's source (diagnostics).
func (c JulietCase) String() string {
	var b strings.Builder
	for _, u := range c.Units {
		fmt.Fprintf(&b, "// --- %s ---\n%s", u.Name, u.Src)
	}
	return b.String()
}
