package workload

import (
	"testing"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
)

func TestSubjectsTable(t *testing.T) {
	if len(Subjects) != 30 {
		t.Fatalf("got %d subjects, want 30", len(Subjects))
	}
	spec, oss := 0, 0
	for _, s := range Subjects {
		switch s.Origin {
		case "SPEC CINT2000":
			spec++
		case "Open Source":
			oss++
		default:
			t.Errorf("unknown origin %q", s.Origin)
		}
	}
	if spec != 12 || oss != 18 {
		t.Fatalf("groups = %d SPEC / %d OSS, want 12/18", spec, oss)
	}
	// Total true bugs mirror the paper's 12 confirmed UAF TPs.
	total := 0
	for _, s := range Subjects {
		total += s.TrueBugs
	}
	if total != 12 {
		t.Errorf("total injected true bugs = %d, want 12", total)
	}
	if _, ok := SubjectByName("mysql"); !ok {
		t.Error("mysql missing")
	}
	if len(OpenSourceSubjects()) != 18 {
		t.Error("OpenSourceSubjects wrong")
	}
}

func TestGenerateParsesAndScales(t *testing.T) {
	small, _ := SubjectByName("gzip")
	gen := Generate(small, GenOptions{Scale: 15})
	if gen.Lines < 80 {
		t.Fatalf("generated only %d lines", gen.Lines)
	}
	if _, err := minic.ParseProgram(gen.Units); err != nil {
		t.Fatalf("generated code does not parse: %v", err)
	}
	// Deterministic.
	gen2 := Generate(small, GenOptions{Scale: 15})
	if gen2.Lines != gen.Lines || len(gen2.Units) != len(gen.Units) {
		t.Fatal("generation not deterministic")
	}
	for i := range gen.Units {
		if gen.Units[i].Src != gen2.Units[i].Src {
			t.Fatal("unit source differs between runs")
		}
	}
	// Scaling.
	big := Generate(small, GenOptions{Scale: 40})
	if big.Lines <= gen.Lines {
		t.Fatal("scale has no effect")
	}
}

func TestGeneratedGroundTruthDetected(t *testing.T) {
	// Use a subject with bugs and traps.
	subj, _ := SubjectByName("shadowsocks")
	gen := Generate(subj, GenOptions{Scale: 15})
	if len(gen.Truth.TrueUAF) != subj.TrueBugs {
		t.Fatalf("truth has %d bugs, want %d", len(gen.Truth.TrueUAF), subj.TrueBugs)
	}
	a, err := core.BuildFromSource(gen.Units, core.BuildOptions{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	reports, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
	tp, fp := 0, 0
	for _, r := range reports {
		switch {
		case gen.Truth.IsTrueUAF(r.SourcePos.File, r.SourcePos.Line):
			tp++
		default:
			fp++
		}
	}
	if tp != subj.TrueBugs {
		t.Errorf("detected %d/%d true bugs; reports: %v", tp, subj.TrueBugs, reports)
	}
	if fp != 0 {
		t.Errorf("unexpected FPs: %d of %v", fp, reports)
	}
}

func TestGeneratedOpaqueTrapsReported(t *testing.T) {
	subj, _ := SubjectByName("mysql")
	gen := Generate(subj, GenOptions{Scale: 2}) // small scale for test speed
	a, err := core.BuildFromSource(gen.Units, core.BuildOptions{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	reports, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
	tp, opq, other := 0, 0, 0
	for _, r := range reports {
		switch {
		case gen.Truth.IsTrueUAF(r.SourcePos.File, r.SourcePos.Line):
			tp++
		case gen.Truth.IsOpaqueUAF(r.SourcePos.File, r.SourcePos.Line):
			opq++
		default:
			other++
		}
	}
	if tp != subj.TrueBugs {
		t.Errorf("true bugs detected = %d, want %d", tp, subj.TrueBugs)
	}
	if opq != subj.OpaqueTraps {
		t.Errorf("opaque traps reported = %d, want %d", opq, subj.OpaqueTraps)
	}
	if other != 0 {
		t.Errorf("unexpected extra reports: %d", other)
	}
}

func TestGeneratedTaintWorkload(t *testing.T) {
	subj, _ := SubjectByName("mysql")
	gen := Generate(subj, GenOptions{Scale: 2, Taint: true})
	a, err := core.BuildFromSource(gen.Units, core.BuildOptions{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, tc := range []struct {
		spec     *checkers.Spec
		wantTrue int
		wantOpq  int
	}{
		{checkers.PathTraversal(), 9, 2},
		{checkers.DataTransmission(), 14, 4},
	} {
		reports, _ := a.Check(tc.spec, detect.Options{})
		tp, opq, other := 0, 0, 0
		for _, r := range reports {
			isTrue, isOpq := gen.Truth.MatchTaint(tc.spec.Name, r.SourcePos.File, r.SourcePos.Line)
			switch {
			case isTrue:
				tp++
			case isOpq:
				opq++
			default:
				other++
			}
		}
		if tp != tc.wantTrue || opq != tc.wantOpq {
			t.Errorf("%s: tp=%d opq=%d other=%d, want %d/%d/0 (reports %d)",
				tc.spec.Name, tp, opq, other, tc.wantTrue, tc.wantOpq, len(reports))
		}
	}
}

func TestJulietSuiteShape(t *testing.T) {
	cases := JulietSuite()
	if len(cases) != 1421 {
		t.Fatalf("suite has %d cases, want 1421", len(cases))
	}
	fts := FlawTypes(cases)
	if len(fts) != 51 {
		t.Fatalf("suite has %d flaw types, want 51", len(fts))
	}
	// Every case parses.
	for i, c := range cases {
		if i%97 != 0 {
			continue // sample for speed; full parse happens in the recall run
		}
		if _, err := minic.ParseProgram(c.Units); err != nil {
			t.Fatalf("case %s does not parse: %v\n%s", c.Name, err, c)
		}
	}
}

func TestJulietSampleDetected(t *testing.T) {
	cases := JulietSuite()
	// One case of every flaw type must be detected (the full 1421-case
	// recall run lives in the experiment harness).
	seen := map[string]bool{}
	for _, c := range cases {
		if seen[c.FlawType] {
			continue
		}
		seen[c.FlawType] = true
		a, err := core.BuildFromSource(c.Units, core.BuildOptions{})
		if err != nil {
			t.Fatalf("%s: build: %v\n%s", c.Name, err, c)
		}
		reports, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
		if len(reports) == 0 {
			t.Errorf("%s: flaw not detected\n%s", c.Name, c)
		}
	}
	if len(seen) != 51 {
		t.Fatalf("sampled %d flaw types", len(seen))
	}
}
