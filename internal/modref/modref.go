// Package modref computes function side-effect summaries: which memory
// access paths rooted at formal parameters or globals each function
// references (loads) or modifies (stores), the MOD/REF sets of Pinpoint
// §3.1.2.
//
// The analysis tags SSA pointer values with access paths (root, depth),
// where root is a formal parameter or a global and depth counts
// dereferences from the root. A load through an address tagged (r, k)
// references *(r, k+1); a store through it modifies *(r, k+1). Call sites
// import the callee's summary, composing the callee's root-relative paths
// with the tags of the actual arguments, so the analysis runs bottom-up
// over the call graph; strongly connected components (recursion) iterate to
// a fixpoint. Access paths deeper than MaxDepth are dropped — the standard
// soundy depth cut-off.
package modref

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/conc"
	"repro/internal/ir"
)

// MaxDepth is the deepest access path tracked.
const MaxDepth = 3

// Root identifies an access-path root: parameter index or global name.
type Root struct {
	Param  int // parameter index, or -1 for globals
	Global string
}

// IsGlobal reports whether the root is a global variable.
func (r Root) IsGlobal() bool { return r.Param < 0 }

// Path is an access path *(root, depth) with depth >= 1.
type Path struct {
	Root  Root
	Depth int
}

// Summary is a function's side-effect summary.
type Summary struct {
	Ref map[Path]bool
	Mod map[Path]bool
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{Ref: make(map[Path]bool), Mod: make(map[Path]bool)}
}

// Paths returns the union of Ref and Mod paths, sorted: parameters before
// globals, then by root, then by depth. The connector transformation relies
// on this order being deterministic.
func (s *Summary) Paths() []Path {
	set := make(map[Path]bool, len(s.Ref)+len(s.Mod))
	for p := range s.Ref {
		set[p] = true
	}
	for p := range s.Mod {
		set[p] = true
	}
	out := make([]Path, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return lessPath(out[i], out[j]) })
	return out
}

func lessPath(a, b Path) bool {
	ag, bg := a.Root.IsGlobal(), b.Root.IsGlobal()
	if ag != bg {
		return !ag
	}
	if !ag {
		if a.Root.Param != b.Root.Param {
			return a.Root.Param < b.Root.Param
		}
	} else if a.Root.Global != b.Root.Global {
		return a.Root.Global < b.Root.Global
	}
	return a.Depth < b.Depth
}

// Fingerprint renders the summary as a canonical string — equal summaries
// (same Ref and Mod path sets) always produce equal fingerprints. The
// incremental session uses fingerprint equality as its change-propagation
// cutoff: a recomputed summary with an unchanged fingerprint stops the
// callee→caller invalidation wave.
func (s *Summary) Fingerprint() string {
	var b strings.Builder
	for _, p := range s.Paths() {
		if s.Ref[p] {
			b.WriteByte('R')
		}
		if s.Mod[p] {
			b.WriteByte('M')
		}
		if p.Root.IsGlobal() {
			fmt.Fprintf(&b, "@%s.%d;", p.Root.Global, p.Depth)
		} else {
			fmt.Fprintf(&b, "p%d.%d;", p.Root.Param, p.Depth)
		}
	}
	return b.String()
}

// Result maps functions to their summaries.
type Result struct {
	Summaries map[*ir.Func]*Summary
}

// Analyze computes Mod/Ref summaries for every function in m, bottom-up
// over the call graph.
func Analyze(m *ir.Module) *Result {
	res, _ := AnalyzeWith(m, 1)
	return res
}

// AnalyzeWith is Analyze on a bounded worker pool: the SCCs of the
// condensed call graph run as a dependency-counting wavefront, so every
// SCC whose external callees are all summarized proceeds concurrently.
// The result is identical to the sequential analysis at any worker
// count — each SCC's fixpoint writes only its own members' summaries,
// reads only completed callee summaries, and the merge into a summary
// is a commutative set union.
//
// The second result is the peak wavefront width — the largest number of
// SCCs simultaneously ready or running — which the build pipeline
// surfaces as the modref.wavefront_width gauge.
func AnalyzeWith(m *ir.Module, workers int) (*Result, int) {
	res := &Result{Summaries: make(map[*ir.Func]*Summary, len(m.Funcs))}
	for _, f := range m.Funcs {
		res.Summaries[f] = NewSummary()
	}
	lookup := func(name string) *Summary {
		if g, ok := m.ByName[name]; ok {
			return res.Summaries[g]
		}
		return nil
	}
	sccs := CallGraphSCCs(m)
	width, err := conc.Wavefront(len(sccs), SCCDeps(m, sccs), workers, func(_, i int) error {
		// Iterate to a fixpoint; this also covers self-recursion within
		// singleton SCCs.
		for changed := true; changed; {
			changed = false
			for _, f := range sccs[i] {
				if AnalyzeFunc(f, res.Summaries[f], lookup) {
					changed = true
				}
			}
		}
		return nil
	})
	if err != nil {
		// The node function never fails and CallGraphSCCs emits an acyclic
		// condensation, so this is unreachable; guard against regressions.
		panic(err)
	}
	return res, width
}

// SCCDeps returns, for each SCC of sccs (as produced by CallGraphSCCs),
// the indices of the SCCs containing its external callees — the edges
// of the condensed call graph, deduplicated, in deterministic order.
func SCCDeps(m *ir.Module, sccs [][]*ir.Func) [][]int {
	idx := make(map[*ir.Func]int, len(m.Funcs))
	for i, scc := range sccs {
		for _, f := range scc {
			idx[f] = i
		}
	}
	deps := make([][]int, len(sccs))
	for i, scc := range sccs {
		seen := map[int]bool{i: true}
		for _, f := range scc {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op != ir.OpCall {
						continue
					}
					g, ok := m.ByName[in.Callee]
					if !ok {
						continue
					}
					if j := idx[g]; !seen[j] {
						seen[j] = true
						deps[i] = append(deps[i], j)
					}
				}
			}
		}
	}
	return deps
}

// tag is the access-path annotation of an SSA value.
type tag struct {
	root  Root
	depth int
	ok    bool
}

// AnalyzeFunc grows sum with one intraprocedural pass over f, resolving
// callee summaries through lookup (which returns nil for externals); it
// reports whether sum grew. Callers drive this to a fixpoint — package-level
// Analyze over whole-module SCCs, and the incremental session over just the
// dirty frontier.
func AnalyzeFunc(f *ir.Func, sum *Summary, lookup func(name string) *Summary) bool {
	before := len(sum.Ref) + len(sum.Mod)

	tags := make(map[*ir.Value]tag)
	for _, p := range f.Params {
		tags[p] = tag{root: Root{Param: p.ParamIdx}, ok: true}
	}
	addRef := func(tg tag, extra int) {
		d := tg.depth + extra
		if d >= 1 && d <= MaxDepth {
			sum.Ref[Path{Root: tg.root, Depth: d}] = true
		}
	}
	addMod := func(tg tag, extra int) {
		d := tg.depth + extra
		if d >= 1 && d <= MaxDepth {
			sum.Mod[Path{Root: tg.root, Depth: d}] = true
		}
	}

	// Blocks are visited in layout order; since defs dominate uses and
	// the CFG is acyclic, a single pass over blocks in topological order
	// would suffice, but iterating keeps this robust to any ordering.
	for pass := 0; pass < 2; pass++ {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpGlobalAddr:
					// The address of global g is a root pointer at
					// depth 0, exactly like a parameter: loading
					// through it references *(g, 1), the global's own
					// cell.
					tags[in.Dst] = tag{root: Root{Param: -1, Global: in.Sub}, ok: true}
				case ir.OpCopy, ir.OpUn, ir.OpBin, ir.OpFieldAddr:
					// Pointer arithmetic and field selection keep the
					// base's tag (array elements and, across function
					// boundaries, fields collapse).
					if t, ok := tags[in.Args[0]]; ok && t.ok {
						tags[in.Dst] = t
					}
				case ir.OpPhi:
					// Propagate only when all operands agree.
					var t tag
					agree := true
					for i, a := range in.Args {
						at, ok := tags[a]
						if !ok || !at.ok {
							agree = false
							break
						}
						if i == 0 {
							t = at
						} else if at != t {
							agree = false
							break
						}
					}
					if agree {
						tags[in.Dst] = t
					}
				case ir.OpLoad:
					if t, ok := tags[in.Args[0]]; ok && t.ok {
						addRef(t, 1)
						nt := t
						nt.depth++
						if nt.depth < MaxDepth {
							tags[in.Dst] = nt
						}
					}
				case ir.OpStore:
					if t, ok := tags[in.Args[0]]; ok && t.ok {
						addMod(t, 1)
					}
				case ir.OpCall:
					cs := lookup(in.Callee)
					if cs == nil {
						continue
					}
					importSummary(sum, cs, in, tags)
				}
			}
		}
	}
	return len(sum.Ref)+len(sum.Mod) > before
}

// importSummary composes a callee summary into the caller at a call site.
func importSummary(sum *Summary, callee *Summary, call *ir.Instr, tags map[*ir.Value]tag) {
	apply := func(p Path, dst map[Path]bool) {
		if p.Root.IsGlobal() {
			// Global paths are caller paths verbatim: globals are
			// program-wide roots.
			if p.Depth <= MaxDepth {
				dst[p] = true
			}
			return
		}
		j := p.Root.Param
		if j >= len(call.Args) {
			return
		}
		t, ok := tags[call.Args[j]]
		if !ok || !t.ok {
			return
		}
		// The callee's *(param_j, k) is the caller's *(root, depth+k).
		d := t.depth + p.Depth
		if d >= 1 && d <= MaxDepth {
			dst[Path{Root: t.root, Depth: d}] = true
		}
	}
	for p := range callee.Ref {
		apply(p, sum.Ref)
	}
	for p := range callee.Mod {
		apply(p, sum.Mod)
	}
}

// CallGraphSCCs returns the strongly connected components of the call graph
// in bottom-up (callee-first) order, via Tarjan's algorithm.
func CallGraphSCCs(m *ir.Module) [][]*ir.Func {
	callees := make(map[*ir.Func][]*ir.Func, len(m.Funcs))
	for _, f := range m.Funcs {
		seen := make(map[*ir.Func]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				if g, ok := m.ByName[in.Callee]; ok && !seen[g] {
					seen[g] = true
					callees[f] = append(callees[f], g)
				}
			}
		}
	}

	index := make(map[*ir.Func]int)
	low := make(map[*ir.Func]int)
	onStack := make(map[*ir.Func]bool)
	var stack []*ir.Func
	var sccs [][]*ir.Func
	counter := 0

	var strongconnect func(f *ir.Func)
	strongconnect = func(f *ir.Func) {
		index[f] = counter
		low[f] = counter
		counter++
		stack = append(stack, f)
		onStack[f] = true
		for _, g := range callees[f] {
			if _, ok := index[g]; !ok {
				strongconnect(g)
				if low[g] < low[f] {
					low[f] = low[g]
				}
			} else if onStack[g] && index[g] < low[f] {
				low[f] = index[g]
			}
		}
		if low[f] == index[f] {
			var scc []*ir.Func
			for {
				g := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[g] = false
				scc = append(scc, g)
				if g == f {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, f := range m.Funcs {
		if _, ok := index[f]; !ok {
			strongconnect(f)
		}
	}
	// Tarjan emits SCCs in reverse topological order of the condensation
	// — exactly callee-first, which bottom-up analysis wants.
	return sccs
}
