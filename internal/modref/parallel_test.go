package modref

import "testing"

const parallelSrc = `
int g;
void leafw(int *p) { *p = 1; }
void leafr(int *p) { int x = *p; }
void even(int *p, int n) { if (n > 0) { odd(p, n - 1); } }
void odd(int *p, int n) { *p = n; even(p, n - 1); }
void chain3(int *p) { leafw(p); }
void chain2(int *p) { chain3(p); }
void chain1(int *p) { chain2(p); }
void globals() { g = 3; int x = g; }
void wide1(int *p) { leafr(p); }
void wide2(int *p) { leafw(p); }
void wide3(int *p, int **q) { *q = p; even(p, 2); }
void top(int *p, int **q) { chain1(p); wide1(p); wide2(p); wide3(p, q); globals(); }
`

// TestAnalyzeWithParallelEquivalence pins the wavefront contract: the
// parallel Mod/Ref analysis produces summaries fingerprint-identical to
// the sequential one at every worker count, on a call graph mixing a
// deep chain, a recursion cycle, global roots, and a wide frontier.
func TestAnalyzeWithParallelEquivalence(t *testing.T) {
	base := Analyze(buildModule(t, parallelSrc))
	baseFP := make(map[string]string)
	for f, sum := range base.Summaries {
		baseFP[f.Name] = sum.Fingerprint()
	}
	for _, workers := range []int{2, 4, 8} {
		m := buildModule(t, parallelSrc)
		res, width := AnalyzeWith(m, workers)
		if width < 1 {
			t.Fatalf("workers=%d: wavefront width = %d", workers, width)
		}
		for f, sum := range res.Summaries {
			if got, want := sum.Fingerprint(), baseFP[f.Name]; got != want {
				t.Fatalf("workers=%d: %s summary %q != sequential %q", workers, f.Name, got, want)
			}
		}
	}
}

// TestSCCDepsAcyclicCalleeFirst checks the condensed call graph edges
// point strictly backwards in Tarjan's callee-first order — the
// property the wavefront scheduler relies on to never deadlock.
func TestSCCDepsAcyclicCalleeFirst(t *testing.T) {
	m := buildModule(t, parallelSrc)
	sccs := CallGraphSCCs(m)
	deps := SCCDeps(m, sccs)
	for i, ds := range deps {
		for _, d := range ds {
			if d >= i {
				t.Fatalf("SCC %d depends on %d — not callee-first", i, d)
			}
		}
	}
}
