package modref

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/ssa"
)

func buildModule(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	for _, f := range m.Funcs {
		if _, err := ssa.Transform(f); err != nil {
			t.Fatalf("ssa: %v", err)
		}
	}
	return m
}

func TestModRefDirectLoadStore(t *testing.T) {
	m := buildModule(t, `
void f(int *p, int *q) {
	int x = *p;
	*q = x;
}`)
	res := Analyze(m)
	sum := res.Summaries[m.ByName["f"]]
	if !sum.Ref[Path{Root: Root{Param: 0}, Depth: 1}] {
		t.Errorf("missing Ref(p,1): %+v", sum.Ref)
	}
	if !sum.Mod[Path{Root: Root{Param: 1}, Depth: 1}] {
		t.Errorf("missing Mod(q,1): %+v", sum.Mod)
	}
	if sum.Mod[Path{Root: Root{Param: 0}, Depth: 1}] {
		t.Errorf("spurious Mod(p,1)")
	}
}

func TestModRefDepth2(t *testing.T) {
	m := buildModule(t, `
void f(int **pp) {
	int *p = *pp;
	*p = 3;
}`)
	res := Analyze(m)
	sum := res.Summaries[m.ByName["f"]]
	if !sum.Ref[Path{Root: Root{Param: 0}, Depth: 1}] {
		t.Errorf("missing Ref(pp,1)")
	}
	if !sum.Mod[Path{Root: Root{Param: 0}, Depth: 2}] {
		t.Errorf("missing Mod(pp,2): %+v", sum.Mod)
	}
}

func TestModRefTransitiveThroughCall(t *testing.T) {
	m := buildModule(t, `
void callee(int *c) { *c = 1; }
void caller(int *p) { callee(p); }
void deep(int **pp) { int *p = *pp; callee(p); }`)
	res := Analyze(m)
	caller := res.Summaries[m.ByName["caller"]]
	if !caller.Mod[Path{Root: Root{Param: 0}, Depth: 1}] {
		t.Errorf("caller missing transitive Mod(p,1): %+v", caller.Mod)
	}
	deep := res.Summaries[m.ByName["deep"]]
	if !deep.Mod[Path{Root: Root{Param: 0}, Depth: 2}] {
		t.Errorf("deep missing composed Mod(pp,2): %+v", deep.Mod)
	}
}

func TestModRefGlobals(t *testing.T) {
	m := buildModule(t, `
int g;
void writer() { g = 1; }
void reader() { int x = g; }
void indirect() { writer(); }`)
	res := Analyze(m)
	w := res.Summaries[m.ByName["writer"]]
	if !w.Mod[Path{Root: Root{Param: -1, Global: "g"}, Depth: 1}] {
		t.Errorf("writer missing Mod(g,1): %+v", w.Mod)
	}
	r := res.Summaries[m.ByName["reader"]]
	if !r.Ref[Path{Root: Root{Param: -1, Global: "g"}, Depth: 1}] {
		t.Errorf("reader missing Ref(g,1): %+v", r.Ref)
	}
	ind := res.Summaries[m.ByName["indirect"]]
	if !ind.Mod[Path{Root: Root{Param: -1, Global: "g"}, Depth: 1}] {
		t.Errorf("indirect missing propagated Mod(g,1): %+v", ind.Mod)
	}
}

func TestModRefRecursion(t *testing.T) {
	m := buildModule(t, `
void a(int *p, int n) {
	if (n > 0) { b(p, n - 1); }
}
void b(int *q, int k) {
	*q = k;
	a(q, k);
}`)
	res := Analyze(m)
	as := res.Summaries[m.ByName["a"]]
	if !as.Mod[Path{Root: Root{Param: 0}, Depth: 1}] {
		t.Errorf("a missing Mod through recursion: %+v", as.Mod)
	}
}

func TestModRefNoFalsePositives(t *testing.T) {
	m := buildModule(t, `
int pure(int a, int b) { return a + b; }
void localonly() { int *p = malloc(); *p = 1; int x = *p; }`)
	res := Analyze(m)
	for _, name := range []string{"pure", "localonly"} {
		sum := res.Summaries[m.ByName[name]]
		if len(sum.Ref)+len(sum.Mod) != 0 {
			t.Errorf("%s: unexpected side effects ref=%v mod=%v", name, sum.Ref, sum.Mod)
		}
	}
}

func TestModRefDepthCap(t *testing.T) {
	m := buildModule(t, `
void f(int ***ppp) {
	int **pp = *ppp;
	int *p = *pp;
	int x = *p;
}`)
	res := Analyze(m)
	sum := res.Summaries[m.ByName["f"]]
	for p := range sum.Ref {
		if p.Depth > MaxDepth {
			t.Errorf("path %v exceeds cap", p)
		}
	}
	if !sum.Ref[Path{Root: Root{Param: 0}, Depth: 3}] {
		t.Errorf("missing depth-3 ref: %+v", sum.Ref)
	}
}

func TestCallGraphSCCsBottomUp(t *testing.T) {
	m := buildModule(t, `
void leaf() { }
void mid() { leaf(); }
void top() { mid(); }`)
	sccs := CallGraphSCCs(m)
	pos := map[string]int{}
	for i, scc := range sccs {
		for _, f := range scc {
			pos[f.Name] = i
		}
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["top"]) {
		t.Errorf("SCC order not bottom-up: %v", pos)
	}
}

func TestCallGraphSCCsCycle(t *testing.T) {
	m := buildModule(t, `
void a(int n) { if (n > 0) { b(n - 1); } }
void b(int n) { a(n); }`)
	sccs := CallGraphSCCs(m)
	for _, scc := range sccs {
		if len(scc) == 2 {
			return
		}
	}
	t.Errorf("mutual recursion not grouped into one SCC")
}

func TestSummaryPathsDeterministic(t *testing.T) {
	s := NewSummary()
	s.Ref[Path{Root: Root{Param: 1}, Depth: 2}] = true
	s.Ref[Path{Root: Root{Param: 0}, Depth: 1}] = true
	s.Mod[Path{Root: Root{Param: -1, Global: "z"}, Depth: 1}] = true
	s.Mod[Path{Root: Root{Param: -1, Global: "a"}, Depth: 1}] = true
	got := s.Paths()
	if len(got) != 4 {
		t.Fatalf("got %d paths", len(got))
	}
	if got[0].Root.Param != 0 || got[1].Root.Param != 1 {
		t.Errorf("params not first/sorted: %+v", got)
	}
	if got[2].Root.Global != "a" || got[3].Root.Global != "z" {
		t.Errorf("globals not sorted: %+v", got)
	}
}
