package wirebin

import (
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Varint(-1)
	w.Int(-12345)
	w.I32(-1)
	w.I32(1<<31 - 1)
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.Str("")
	w.Str("hello, wire")
	w.I32s(nil)
	w.I32s([]int32{-1, 0, 7})
	w.Strs([]string{"a", "", "bc"})

	r := NewReader(w.B)
	if got := r.Uvarint(); got != 0 {
		t.Errorf("uvarint: got %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Errorf("uvarint: got %d", got)
	}
	if got := r.Varint(); got != -1 {
		t.Errorf("varint: got %d", got)
	}
	if got := r.Int(); got != -12345 {
		t.Errorf("int: got %d", got)
	}
	if got := r.I32(); got != -1 {
		t.Errorf("i32: got %d", got)
	}
	if got := r.I32(); got != 1<<31-1 {
		t.Errorf("i32: got %d", got)
	}
	if got := r.U8(); got != 0xab {
		t.Errorf("u8: got %#x", got)
	}
	if got := r.Bool(); !got {
		t.Errorf("bool: got false")
	}
	if got := r.Bool(); got {
		t.Errorf("bool: got true")
	}
	if got := r.Str(); got != "" {
		t.Errorf("str: got %q", got)
	}
	if got := r.Str(); got != "hello, wire" {
		t.Errorf("str: got %q", got)
	}
	if got := r.I32s(); got != nil {
		t.Errorf("i32s: got %v", got)
	}
	if got := r.I32s(); !reflect.DeepEqual(got, []int32{-1, 0, 7}) {
		t.Errorf("i32s: got %v", got)
	}
	if got := r.Strs(); !reflect.DeepEqual(got, []string{"a", "", "bc"}) {
		t.Errorf("strs: got %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("err: %v", err)
	}
	if rest := r.Rest(); rest != 0 {
		t.Fatalf("rest: %d bytes unconsumed", rest)
	}
}

func TestTruncation(t *testing.T) {
	var w Writer
	w.Str("some payload that will be cut")
	w.I32s([]int32{1, 2, 3})
	full := w.B
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Str()
		r.I32s()
		if r.Err() == nil {
			t.Fatalf("truncation at %d of %d not detected", cut, len(full))
		}
	}
}

// A corrupt length prefix must fail before allocating, not attempt a
// huge make().
func TestOversizedLength(t *testing.T) {
	var w Writer
	w.Uvarint(1 << 50)
	r := NewReader(w.B)
	if n := r.Len(); n != 0 || r.Err() == nil {
		t.Fatalf("oversized length accepted: n=%d err=%v", n, r.Err())
	}
}

// Sticky errors: after a failure every read returns zero values and the
// original error is preserved.
func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	r.U8()
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	if got := r.Str(); got != "" {
		t.Errorf("str after error: %q", got)
	}
	if r.Err() != first {
		t.Errorf("error replaced: %v", r.Err())
	}
}
