// Package wirebin provides a minimal append-style binary codec for the
// persistent artifact store's wire structs.
//
// The artifact wire forms (ir.FuncWire, pta.ResultWire, ...) are flat
// records of varints, strings, and int32 slices. encoding/gob handles them
// correctly but pays for generality twice on every decode: reflective
// struct walking (decodeStruct/decodeArrayHelper dominate warm-restart
// profiles) and per-field allocation. A hand-rolled length-prefixed layout
// decodes the same data with a linear buffer scan and no reflection, which
// on the bench subject cuts artifact decode time by several-fold — the
// difference between a warm restart beating a cold build and losing to it.
//
// Encoding conventions:
//   - ints and int32s are zig-zag varints (negative sentinels like -1 stay
//     one byte);
//   - strings and slices carry a uvarint length prefix;
//   - enums (uint8 kinds/ops/roles) are single raw bytes;
//   - there is no embedded type information — readers must consume fields
//     in exactly the order writers appended them, and callers version the
//     overall stream.
//
// Readers are sticky-error: after the first malformed field every
// subsequent read returns a zero value, and Err reports the failure.
// Length prefixes are validated against the remaining input before any
// allocation, so corrupt or truncated data fails cleanly instead of
// attempting a huge allocation.
package wirebin

import (
	"encoding/binary"
	"fmt"
)

// Writer accumulates an encoded stream in B.
type Writer struct {
	B []byte
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.B = binary.AppendUvarint(w.B, v) }

// Varint appends a signed (zig-zag) varint.
func (w *Writer) Varint(v int64) { w.B = binary.AppendVarint(w.B, v) }

// Int appends an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// I32 appends an int32 as a signed varint.
func (w *Writer) I32(v int32) { w.Varint(int64(v)) }

// U8 appends one raw byte (enum kinds, ops, roles).
func (w *Writer) U8(v uint8) { w.B = append(w.B, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.B = append(w.B, 1)
	} else {
		w.B = append(w.B, 0)
	}
}

// Str appends a length-prefixed string.
func (w *Writer) Str(s string) {
	w.Uvarint(uint64(len(s)))
	w.B = append(w.B, s...)
}

// I32s appends a length-prefixed []int32.
func (w *Writer) I32s(v []int32) {
	w.Uvarint(uint64(len(v)))
	for _, x := range v {
		w.I32(x)
	}
}

// Strs appends a length-prefixed []string.
func (w *Writer) Strs(v []string) {
	w.Uvarint(uint64(len(v)))
	for _, s := range v {
		w.Str(s)
	}
}

// Reader consumes a stream produced by Writer. The zero Reader over a byte
// slice is ready to use; construct with NewReader.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b; strings
// are copied out as they are read, so b may be recycled afterwards.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Rest returns the number of unconsumed bytes.
func (r *Reader) Rest() int { return len(r.b) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wirebin: offset %d: %s", r.off, fmt.Sprintf(format, args...))
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// I32 reads an int32.
func (r *Reader) I32() int32 {
	v := r.Varint()
	if int64(int32(v)) != v {
		r.fail("varint %d overflows int32", v)
		return 0
	}
	return int32(v)
}

// U8 reads one raw byte.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("unexpected end of input")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Len reads a length prefix and validates it against the remaining input:
// each element of the encoded collection occupies at least one byte, so a
// length exceeding Rest can only be corruption, and rejecting it here
// keeps a flipped bit from turning into a multi-gigabyte allocation.
func (r *Reader) Len() int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.off) {
		r.fail("length %d exceeds %d remaining bytes", v, len(r.b)-r.off)
		return 0
	}
	return int(v)
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.Len()
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// I32s reads a length-prefixed []int32, returning nil for length zero.
func (r *Reader) I32s() []int32 {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.I32()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Strs reads a length-prefixed []string, returning nil for length zero.
func (r *Reader) Strs() []string {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.Str()
	}
	if r.err != nil {
		return nil
	}
	return out
}
