package transform

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/modref"
	"repro/internal/ssa"
)

func buildTransformed(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	for _, f := range m.Funcs {
		if _, err := ssa.Transform(f); err != nil {
			t.Fatalf("ssa: %v", err)
		}
	}
	mr := modref.Analyze(m)
	if err := Apply(m, mr); err != nil {
		t.Fatalf("transform: %v", err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestAuxParamInserted(t *testing.T) {
	m := buildTransformed(t, `
int deref(int *p) { return *p; }`)
	f := m.ByName["deref"]
	if len(f.AuxIn) != 1 {
		t.Fatalf("AuxIn = %v, want one spec", f.AuxIn)
	}
	spec := f.AuxIn[0]
	if spec.Root != 0 || spec.Depth != 1 {
		t.Errorf("spec = %+v", spec)
	}
	// Signature has the original param plus one aux param.
	if len(f.Params) != 2 || !f.Params[1].Aux {
		t.Fatalf("params = %v", f.Params)
	}
	// Entry begins with the connector store *p <- F.
	first := f.Entry.Instrs[0]
	if first.Op != ir.OpStore || first.Args[1] != f.Params[1] {
		t.Errorf("entry store missing: %s", first)
	}
}

func TestAuxReturnInserted(t *testing.T) {
	m := buildTransformed(t, `
void setit(int *p) { *p = 42; }`)
	f := m.ByName["setit"]
	if len(f.AuxOut) != 1 {
		t.Fatalf("AuxOut = %v", f.AuxOut)
	}
	ret := f.Exit.Term()
	// void function: return args are exactly the aux returns.
	if len(ret.Args) != 1 {
		t.Fatalf("ret args = %v", ret.Args)
	}
	// The aux return is loaded from *p right before the return.
	loadIdx := len(f.Exit.Instrs) - 2
	ld := f.Exit.Instrs[loadIdx]
	if ld.Op != ir.OpLoad || ld.Dst != ret.Args[0] {
		t.Errorf("exit load missing: %s", ld)
	}
	// Mod implies an input connector too (value preserved on unmodified
	// paths).
	if len(f.AuxIn) != 1 {
		t.Errorf("AuxIn = %v, want mirror input", f.AuxIn)
	}
}

func TestCallSiteRewritten(t *testing.T) {
	m := buildTransformed(t, `
void callee(int *q) { *q = 7; }
void caller() {
	int *p = malloc();
	callee(p);
	int x = *p;
}`)
	caller := m.ByName["caller"]
	var call *ir.Instr
	for _, b := range caller.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee == "callee" {
				call = in
			}
		}
	}
	if call == nil {
		t.Fatal("call not found")
	}
	// One aux actual appended, one aux receiver appended.
	if len(call.Args) != 2 {
		t.Fatalf("call args = %v", call.Args)
	}
	if len(call.Dsts) != 2 {
		t.Fatalf("call dsts = %v", call.Dsts)
	}
	// The instruction right before the call loads the actual; right
	// after, the receiver is stored back.
	b := call.Block
	pos := -1
	for i, in := range b.Instrs {
		if in == call {
			pos = i
		}
	}
	if b.Instrs[pos-1].Op != ir.OpLoad {
		t.Errorf("pre-call load missing: %s", b.Instrs[pos-1])
	}
	if b.Instrs[pos+1].Op != ir.OpStore || b.Instrs[pos+1].Args[1] != call.Dsts[1] {
		t.Errorf("post-call store missing: %s", b.Instrs[pos+1])
	}
}

func TestFigure2Transformation(t *testing.T) {
	// The paper's Figure 2: bar both reads and writes *q, qux writes *r.
	m := buildTransformed(t, `
void foo(int *a) {
	int **ptr = malloc();
	*ptr = a;
	if (input()) {
		bar(ptr);
	} else {
		qux(ptr);
	}
	int *f = *ptr;
	if (input()) { sink(*f); }
}
void bar(int **q) {
	int *c = malloc();
	if (*q != null) {
		*q = c;
		free(c);
	} else {
		if (input()) { *q = source_b(); }
	}
}
void qux(int **r) {
	if (input()) { *r = source_d(); } else { *r = source_e(); }
}`)
	bar := m.ByName["bar"]
	// bar reads *q (the null check) and writes *q: X and Y connectors.
	if len(bar.AuxIn) != 1 || len(bar.AuxOut) != 1 {
		t.Fatalf("bar connectors: in=%v out=%v", bar.AuxIn, bar.AuxOut)
	}
	qux := m.ByName["qux"]
	if len(qux.AuxOut) != 1 {
		t.Fatalf("qux connectors: out=%v", qux.AuxOut)
	}
	// foo's call sites are rewritten.
	foo := m.ByName["foo"]
	calls := 0
	for _, b := range foo.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && (in.Callee == "bar" || in.Callee == "qux") {
				calls++
				if len(in.Args) < 2 && in.Callee == "bar" {
					t.Errorf("bar call not extended: %s", in)
				}
				if len(in.Dsts) < 2 {
					t.Errorf("%s call lacks aux receiver: %s", in.Callee, in)
				}
			}
		}
	}
	if calls != 2 {
		t.Fatalf("found %d calls", calls)
	}
}

func TestGlobalConnectors(t *testing.T) {
	m := buildTransformed(t, `
int g;
void writer() { g = 5; }
int reader() { return g; }
void top() { writer(); }`)
	w := m.ByName["writer"]
	if len(w.AuxOut) != 1 || w.AuxOut[0].Global != "g" {
		t.Fatalf("writer AuxOut = %v", w.AuxOut)
	}
	r := m.ByName["reader"]
	if len(r.AuxIn) != 1 || r.AuxIn[0].Global != "g" {
		t.Fatalf("reader AuxIn = %v", r.AuxIn)
	}
	// top's call to writer receives the aux global value and stores it
	// back to g.
	top := m.ByName["top"]
	s := top.String()
	if !strings.Contains(s, "&@g") {
		t.Errorf("top missing global glue:\n%s", s)
	}
	// And top itself now Mods g, so it has an aux return for g.
	if len(top.AuxOut) != 1 || top.AuxOut[0].Global != "g" {
		t.Errorf("top AuxOut = %v", top.AuxOut)
	}
}

func TestDepth2Connectors(t *testing.T) {
	m := buildTransformed(t, `
void f(int **pp) {
	int *p = *pp;
	*p = 3;
}`)
	f := m.ByName["f"]
	// Depth 1 (read the pointer) and depth 2 (write the int): contiguous
	// connectors.
	if len(f.AuxIn) != 2 {
		t.Fatalf("AuxIn = %v, want depths 1,2", f.AuxIn)
	}
	if f.AuxIn[0].Depth != 1 || f.AuxIn[1].Depth != 2 {
		t.Errorf("AuxIn order = %v", f.AuxIn)
	}
	// Depth 2 modified; outputs are contiguous 1..2.
	if len(f.AuxOut) != 2 {
		t.Fatalf("AuxOut = %v", f.AuxOut)
	}
}

func TestNoConnectorsForPureFunctions(t *testing.T) {
	m := buildTransformed(t, `
int add(int a, int b) { return a + b; }
void caller() { int x = add(1, 2); }`)
	f := m.ByName["add"]
	if len(f.AuxIn)+len(f.AuxOut) != 0 {
		t.Errorf("pure function has connectors: %v %v", f.AuxIn, f.AuxOut)
	}
	// Caller's call untouched.
	caller := m.ByName["caller"]
	for _, b := range caller.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && len(in.Args) != 2 {
				t.Errorf("call rewritten unnecessarily: %s", in)
			}
		}
	}
}

func TestSSAPreservedAfterTransform(t *testing.T) {
	m := buildTransformed(t, `
void callee(int *q) { *q = 7; }
void caller(int *p) { callee(p); callee(p); }`)
	for _, f := range m.Funcs {
		defs := make(map[*ir.Value]int)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, d := range in.Defs() {
					defs[d]++
				}
			}
		}
		for v, n := range defs {
			if n > 1 {
				t.Errorf("%s: %s defined %d times after transform", f.Name, v, n)
			}
		}
	}
}
