package transform

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/modref"
	"repro/internal/ssa"
)

const parallelSrc = `
int g;
void sink(int *p) { *p = 9; g = 1; }
void relay(int *p) { sink(p); }
void fan1(int *p) { relay(p); }
void fan2(int *p) { sink(p); int x = g; }
void rec_a(int *p, int n) { if (n > 0) { rec_b(p, n - 1); } }
void rec_b(int *p, int n) { *p = n; rec_a(p, n); }
void top(int *p) { fan1(p); fan2(p); rec_a(p, 3); }
`

func lowered(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	for _, f := range m.Funcs {
		if _, err := ssa.Transform(f); err != nil {
			t.Fatalf("ssa: %v", err)
		}
	}
	return m
}

// TestApplyFuncsWithParallelEquivalence pins the strongest possible
// determinism claim for the parallel transform: the full printed IR of
// the transformed module is byte-identical to the sequential rewrite at
// every worker count.
func TestApplyFuncsWithParallelEquivalence(t *testing.T) {
	seq := lowered(t, parallelSrc)
	if err := Apply(seq, modref.Analyze(seq)); err != nil {
		t.Fatalf("sequential transform: %v", err)
	}
	want := seq.String()
	for _, workers := range []int{2, 4, 8} {
		m := lowered(t, parallelSrc)
		mr := modref.Analyze(m)
		if err := ApplyFuncsWith(m, m.Funcs, func(f *ir.Func) *modref.Summary {
			return mr.Summaries[f]
		}, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := ir.VerifyModule(m); err != nil {
			t.Fatalf("workers=%d: verify: %v", workers, err)
		}
		if got := m.String(); got != want {
			t.Fatalf("workers=%d: transformed IR differs from sequential\ngot:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

// TestPrepRewriteResolver checks the two-step API the session wavefront
// uses: signatures extended via Prep across the whole set, bodies
// rewritten against a custom callee resolver.
func TestPrepRewriteResolver(t *testing.T) {
	m := lowered(t, parallelSrc)
	mr := modref.Analyze(m)
	preps := make([]*Prepped, len(m.Funcs))
	for i, f := range m.Funcs {
		preps[i] = Prep(m, f, mr.Summaries[f])
	}
	byName := make(map[string]*ir.Func, len(m.Funcs))
	for _, f := range m.Funcs {
		byName[f.Name] = f
	}
	resolve := func(name string) *ir.Func { return byName[name] }
	for i := range preps {
		if err := preps[i].Rewrite(m, resolve); err != nil {
			t.Fatalf("rewrite %s: %v", m.Funcs[i].Name, err)
		}
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	seq := lowered(t, parallelSrc)
	if err := Apply(seq, modref.Analyze(seq)); err != nil {
		t.Fatal(err)
	}
	if m.String() != seq.String() {
		t.Fatal("resolver-driven rewrite differs from sequential transform")
	}
}
