// Package transform implements Pinpoint's connector model (§3.1.2,
// Figure 3): it rewrites every function so that the non-local memory it
// references or modifies is passed in and out explicitly through Aux formal
// parameters and Aux return values.
//
// For a function whose Mod/Ref summary mentions access paths *(root, k)
// (root a formal parameter or a global), the transformation:
//
//   - appends one Aux formal parameter F(root,k) per referenced depth and
//     inserts entry stores  *(root,k) ← F(root,k), chaining through the aux
//     values themselves so each store is a single-level IR store;
//   - appends one Aux return value R(root,k) per modified depth, loading
//     the final contents *(root,k) right before the return and extending
//     the return operand list;
//   - rewrites every call site to the new signature: it loads the actual
//     values A(root,k) from the actual argument (or global) before the
//     call, and stores the received C(root,k) values back afterwards.
//
// Depths are made contiguous (an access at depth k implies connectors for
// 1..k), and modified paths also get input connectors so the unmodified-
// path value is preserved across the call. All inserted instructions define
// fresh values exactly once, so SSA form — and the gating/control-dependence
// information computed by package ssa — remains valid.
package transform

import (
	"fmt"

	"repro/internal/conc"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/modref"
)

// rootPlan is the per-root connector plan for one function.
type rootPlan struct {
	root     modref.Root
	inDepth  int // aux formals for depths 1..inDepth
	outDepth int // aux returns for depths 1..outDepth
}

// Apply rewrites all functions of m according to the Mod/Ref result.
// It must run after SSA conversion and before the points-to analysis.
func Apply(m *ir.Module, mr *modref.Result) error {
	return ApplyFuncs(m, m.Funcs, func(f *ir.Func) *modref.Summary {
		return mr.Summaries[f]
	})
}

// ApplyFuncs rewrites only funcs (a subset of m's functions) according to
// the per-function summaries resolved by sumOf. Rewriting a subset is sound
// when every function NOT in funcs already carries its final AuxIn/AuxOut:
// call-site rewriting reads nothing from a callee beyond its parameter types
// and aux specs, so retained callees feed rebuilt callers correctly, and
// retained callers remain valid as long as their callees' specs did not
// change. All signatures are extended before any body is rewritten so that
// intra-subset call sites see final specs too.
func ApplyFuncs(m *ir.Module, funcs []*ir.Func, sumOf func(*ir.Func) *modref.Summary) error {
	return ApplyFuncsWith(m, funcs, sumOf, 1)
}

// ApplyFuncsWith is ApplyFuncs on a bounded worker pool. Planning and
// signature extension mutate only each function's own signature, and
// body rewriting reads callees only through their (by then final)
// parameter types and aux specs, so both phases parallelize per
// function with a single barrier between them. Output is identical to
// the sequential transformation at any worker count.
func ApplyFuncsWith(m *ir.Module, funcs []*ir.Func, sumOf func(*ir.Func) *modref.Summary, workers int) error {
	// Phases 1–2: plan the connector interface and extend the signature.
	// Each Prep touches only funcs[i] itself.
	preps := make([]*Prepped, len(funcs))
	if err := conc.ForEach(len(funcs), workers, func(_, i int) error {
		preps[i] = Prep(m, funcs[i], sumOf(funcs[i]))
		return nil
	}); err != nil {
		return err
	}
	// Barrier: every signature is final before any body is rewritten.
	// Phase 3: rewrite bodies — entry stores, exit loads, call sites.
	return conc.ForEach(len(funcs), workers, func(_, i int) error {
		if err := preps[i].Rewrite(m, nil); err != nil {
			return fmt.Errorf("transform %s: %w", funcs[i].Name, err)
		}
		return nil
	})
}

// Prepped carries one function's connector plan after its signature has
// been extended (phases 1–2 of the transformation): the function is
// ready for body rewriting, and callers can already read its final
// AuxIn/AuxOut specs. The wavefront build extends a whole dependency
// frontier before rewriting any body.
type Prepped struct {
	f     *ir.Func
	plans []rootPlan
	aux   map[modref.Path]*ir.Value
}

// Prep decides f's connector interface from its Mod/Ref summary and
// extends its signature (aux formals and aux return specs). It mutates
// only f, so distinct functions may be prepped concurrently.
func Prep(m *ir.Module, f *ir.Func, sum *modref.Summary) *Prepped {
	plans := makePlans(paramTypes(f), moduleGlobalCap(m), sum)
	return &Prepped{f: f, plans: plans, aux: extendSignature(m, f, plans)}
}

// Rewrite performs phase 3 for the prepped function: entry stores, exit
// loads, and call-site glue. resolve maps a callee name to the function
// whose (final) signature governs the call site; nil falls back to
// m.ByName. Every callee's signature must be final before Rewrite runs;
// Rewrite itself mutates only p's function body, so distinct functions
// may be rewritten concurrently.
func (p *Prepped) Rewrite(m *ir.Module, resolve func(string) *ir.Func) error {
	if resolve == nil {
		resolve = func(name string) *ir.Func { return m.ByName[name] }
	}
	return rewriteBody(m, p.f, p.plans, p.aux, resolve)
}

// ConnectorSpecs predicts the aux parameter and aux return specs that a
// function with the given pre-transform parameter types and Mod/Ref summary
// receives from the connector transformation, without lowered IR. The
// incremental session uses it to derive connector signatures straight from
// summaries, so signature stability can be detected before deciding whether
// callers need rebuilding.
func ConnectorSpecs(paramTypes []minic.Type, globals map[string]minic.Type, sum *modref.Summary) (in, out []ir.AuxSpec) {
	capOf := func(name string) int {
		t, ok := globals[name]
		if !ok {
			return 0
		}
		return t.Ptr + 1
	}
	for _, pl := range makePlans(paramTypes, capOf, sum) {
		for k := 1; k <= pl.inDepth; k++ {
			in = append(in, ir.AuxSpec{Root: pl.root.Param, Global: pl.root.Global, Depth: k})
		}
		for k := 1; k <= pl.outDepth; k++ {
			out = append(out, ir.AuxSpec{Root: pl.root.Param, Global: pl.root.Global, Depth: k})
		}
	}
	return in, out
}

// paramTypes extracts the original (pre-transform) parameter types of f.
func paramTypes(f *ir.Func) []minic.Type {
	out := make([]minic.Type, len(f.Params))
	for i, p := range f.Params {
		out[i] = p.Type
	}
	return out
}

// moduleGlobalCap adapts a module's global table to makePlans' cap lookup.
func moduleGlobalCap(m *ir.Module) func(string) int {
	return func(name string) int { return globalDepthCap(m, name) }
}

// makePlans derives contiguous in/out depths per root from a summary.
func makePlans(params []minic.Type, globalCap func(string) int, sum *modref.Summary) []rootPlan {
	if sum == nil {
		return nil
	}
	byRoot := make(map[modref.Root]*rootPlan)
	var order []modref.Root
	get := func(r modref.Root) *rootPlan {
		if p, ok := byRoot[r]; ok {
			return p
		}
		p := &rootPlan{root: r}
		byRoot[r] = p
		order = append(order, r)
		return p
	}
	for _, p := range sum.Paths() {
		pl := get(p.Root)
		if sum.Ref[p] && p.Depth > pl.inDepth {
			pl.inDepth = p.Depth
		}
		if sum.Mod[p] && p.Depth > pl.outDepth {
			pl.outDepth = p.Depth
		}
	}
	var out []rootPlan
	for _, r := range order {
		pl := byRoot[r]
		// Modified paths also need inputs (to preserve values along
		// unmodified paths), and depths must be contiguous. Cap by the
		// static pointer depth of the root so the chains stay typed.
		if pl.outDepth > pl.inDepth {
			pl.inDepth = pl.outDepth
		}
		var maxD int
		if r.IsGlobal() {
			maxD = globalCap(r.Global)
			if maxD > modref.MaxDepth {
				maxD = modref.MaxDepth
			}
		} else if r.Param < len(params) {
			maxD = params[r.Param].Ptr
		}
		if pl.inDepth > maxD {
			pl.inDepth = maxD
		}
		if pl.outDepth > maxD {
			pl.outDepth = maxD
		}
		if pl.inDepth == 0 && pl.outDepth == 0 {
			continue
		}
		out = append(out, *pl)
	}
	return out
}

// globalDepthCap returns the depth cap for a global root in module m.
func globalDepthCap(m *ir.Module, name string) int {
	g, ok := m.GlobalByName[name]
	if !ok {
		return 0
	}
	return g.Type.Ptr + 1
}

// pathType returns the type of the value at *(root, depth).
func pathType(m *ir.Module, f *ir.Func, r modref.Root, depth int) minic.Type {
	if r.IsGlobal() {
		t := m.GlobalByName[r.Global].Type
		for i := 1; i < depth; i++ {
			if !t.IsPointer() {
				break
			}
			t = t.Elem()
		}
		return t
	}
	t := f.Params[r.Param].Type
	for i := 0; i < depth; i++ {
		if !t.IsPointer() {
			break
		}
		t = t.Elem()
	}
	return t
}

// extendSignature appends aux formal parameters and records aux specs.
// Depth caps are already folded into the plans by makePlans.
func extendSignature(m *ir.Module, f *ir.Func, plans []rootPlan) map[modref.Path]*ir.Value {
	aux := make(map[modref.Path]*ir.Value)
	for _, pl := range plans {
		for k := 1; k <= pl.inDepth; k++ {
			spec := ir.AuxSpec{Root: pl.root.Param, Global: pl.root.Global, Depth: k}
			name := auxName("F", pl.root, k)
			v := f.NewParam(name, pathType(m, f, pl.root, k), true)
			f.AuxIn = append(f.AuxIn, spec)
			aux[modref.Path{Root: pl.root, Depth: k}] = v
		}
	}
	for _, pl := range plans {
		for k := 1; k <= pl.outDepth; k++ {
			spec := ir.AuxSpec{Root: pl.root.Param, Global: pl.root.Global, Depth: k}
			f.AuxOut = append(f.AuxOut, spec)
		}
	}
	return aux
}

func auxName(prefix string, r modref.Root, k int) string {
	if r.IsGlobal() {
		return fmt.Sprintf("%s@%s.%d", prefix, r.Global, k)
	}
	return fmt.Sprintf("%s%d.%d", prefix, r.Param, k)
}

// rewriteBody inserts entry stores, exit loads, and call-site glue.
func rewriteBody(m *ir.Module, f *ir.Func, plans []rootPlan, aux map[modref.Path]*ir.Value, resolve func(string) *ir.Func) error {
	// Entry stores: *(root,k) ← F(root,k), chained through the aux
	// values. Insert after any Alloc/param-spill prologue? Inserting at
	// index 0 is safe: roots are parameters or globals, and the values
	// stored are parameters — none depend on body instructions.
	at := 0
	for _, pl := range plans {
		prev, err := rootValue(m, f, pl.root, &at)
		if err != nil {
			return err
		}
		for k := 1; k <= pl.inDepth; k++ {
			fv := aux[modref.Path{Root: pl.root, Depth: k}]
			if fv == nil {
				return fmt.Errorf("missing aux formal for %v depth %d", pl.root, k)
			}
			f.InsertAt(f.Entry, at, ir.Instr{Op: ir.OpStore, Args: []*ir.Value{prev, fv}, Pos: f.Pos, Synthetic: true})
			at++
			if !fv.Type.IsPointer() {
				break
			}
			prev = fv
		}
	}

	// Exit loads feeding the aux return values.
	ret := f.Exit.Term()
	if ret == nil || ret.Op != ir.OpRet {
		return fmt.Errorf("exit block lacks a return")
	}
	retIdx := len(f.Exit.Instrs) - 1
	for _, pl := range plans {
		if pl.outDepth == 0 {
			continue
		}
		prev, err := rootValueAtExit(m, f, pl.root, &retIdx)
		if err != nil {
			return err
		}
		for k := 1; k <= pl.outDepth; k++ {
			rv := f.NewVar(auxName("R", pl.root, k), pathType(m, f, pl.root, k))
			ld := f.InsertAt(f.Exit, retIdx, ir.Instr{Op: ir.OpLoad, Dst: rv, Args: []*ir.Value{prev}, Pos: f.Pos, Synthetic: true})
			rv.Def = ld
			rv.Aux = true
			retIdx++
			ret.Args = append(ret.Args, rv)
			if !rv.Type.IsPointer() {
				// Deeper levels cannot exist; plans guarantee this.
				prev = rv
				continue
			}
			prev = rv
		}
	}

	// Call sites.
	for _, b := range f.Blocks {
		for idx := 0; idx < len(b.Instrs); idx++ {
			in := b.Instrs[idx]
			if in.Op != ir.OpCall {
				continue
			}
			callee := resolve(in.Callee)
			if callee == nil {
				continue
			}
			n, err := rewriteCallSite(m, f, b, idx, in, callee)
			if err != nil {
				return err
			}
			idx += n
		}
	}
	return nil
}

// rootValue materializes the root pointer value at the entry (for globals,
// inserts a gaddr at *at, advancing it).
func rootValue(m *ir.Module, f *ir.Func, r modref.Root, at *int) (*ir.Value, error) {
	if !r.IsGlobal() {
		if r.Param >= len(f.Params) {
			return nil, fmt.Errorf("root param %d out of range", r.Param)
		}
		return f.Params[r.Param], nil
	}
	g := m.GlobalByName[r.Global]
	addr := f.NewVar("&@"+r.Global, g.Type.Pointer())
	ins := f.InsertAt(f.Entry, *at, ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Sub: r.Global, Pos: f.Pos, Synthetic: true})
	addr.Def = ins
	*at++
	return addr, nil
}

// rootValueAtExit is rootValue but inserts into the exit block at *retIdx.
func rootValueAtExit(m *ir.Module, f *ir.Func, r modref.Root, retIdx *int) (*ir.Value, error) {
	if !r.IsGlobal() {
		return f.Params[r.Param], nil
	}
	g := m.GlobalByName[r.Global]
	addr := f.NewVar("&@"+r.Global, g.Type.Pointer())
	ins := f.InsertAt(f.Exit, *retIdx, ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Sub: r.Global, Pos: f.Pos, Synthetic: true})
	addr.Def = ins
	*retIdx++
	return addr, nil
}

// rewriteCallSite threads aux values through one call, reading only the
// callee's parameter types and final AuxIn/AuxOut specs. It returns how many
// instructions were inserted before the call (so the caller can adjust its
// scan index past the call and its epilogue).
func rewriteCallSite(m *ir.Module, f *ir.Func, b *ir.Block, idx int, call *ir.Instr, callee *ir.Func) (int, error) {
	inserted := 0
	insertBefore := func(in ir.Instr) *ir.Instr {
		in.Synthetic = true
		p := f.InsertAt(b, idx+inserted, in)
		inserted++
		return p
	}
	// Pre-call: compute A(root,k) actuals per callee aux-in spec order.
	// Chain per root.
	type chainKey struct {
		param  int
		global string
	}
	chains := make(map[chainKey]*ir.Value)
	rootPtr := func(spec ir.AuxSpec) (*ir.Value, error) {
		key := chainKey{param: spec.Root, global: spec.Global}
		if spec.Root >= 0 {
			if spec.Root >= len(call.Args) {
				return nil, fmt.Errorf("call to %s: aux root %d beyond %d args", callee.Name, spec.Root, len(call.Args))
			}
			return call.Args[spec.Root], nil
		}
		if v, ok := chains[chainKey{param: -2, global: spec.Global}]; ok {
			return v, nil
		}
		g := m.GlobalByName[spec.Global]
		addr := f.NewVar("&@"+spec.Global, g.Type.Pointer())
		ins := insertBefore(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Sub: spec.Global, Pos: call.Pos})
		addr.Def = ins
		chains[chainKey{param: -2, global: spec.Global}] = addr
		_ = key
		return addr, nil
	}

	var extraArgs []*ir.Value
	for _, spec := range callee.AuxIn {
		key := chainKey{param: spec.Root, global: spec.Global}
		var prev *ir.Value
		if spec.Depth == 1 {
			var err error
			prev, err = rootPtr(spec)
			if err != nil {
				return inserted, err
			}
		} else {
			prev = chains[key]
			if prev == nil {
				return inserted, fmt.Errorf("non-contiguous aux-in specs for %s", callee.Name)
			}
		}
		av := f.NewVar(auxName("A", modref.Root{Param: spec.Root, Global: spec.Global}, spec.Depth), pathType(m, callee, modref.Root{Param: spec.Root, Global: spec.Global}, spec.Depth))
		ld := insertBefore(ir.Instr{Op: ir.OpLoad, Dst: av, Args: []*ir.Value{prev}, Pos: call.Pos})
		av.Def = ld
		av.Aux = true
		extraArgs = append(extraArgs, av)
		chains[key] = av
	}
	call.Args = append(call.Args, extraArgs...)

	// Receivers for aux returns.
	var recvs []*ir.Value
	for _, spec := range callee.AuxOut {
		cv := f.NewVar(auxName("C", modref.Root{Param: spec.Root, Global: spec.Global}, spec.Depth), pathType(m, callee, modref.Root{Param: spec.Root, Global: spec.Global}, spec.Depth))
		cv.Def = call
		cv.Aux = true
		call.Dsts = append(call.Dsts, cv)
		recvs = append(recvs, cv)
	}

	// Post-call stores: *(root,k) ← C(root,k), chained through the
	// received values. Insert after the call.
	after := idx + inserted + 1
	insertAfter := func(in ir.Instr) *ir.Instr {
		in.Synthetic = true
		p := f.InsertAt(b, after, in)
		after++
		return p
	}
	chains = make(map[chainKey]*ir.Value)
	for i, spec := range callee.AuxOut {
		key := chainKey{param: spec.Root, global: spec.Global}
		var prev *ir.Value
		if spec.Depth == 1 {
			if spec.Root >= 0 {
				prev = call.Args[spec.Root]
			} else {
				g := m.GlobalByName[spec.Global]
				addr := f.NewVar("&@"+spec.Global, g.Type.Pointer())
				ins := insertAfter(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Sub: spec.Global, Pos: call.Pos})
				addr.Def = ins
				prev = addr
			}
		} else {
			prev = chains[key]
			if prev == nil {
				return inserted, fmt.Errorf("non-contiguous aux-out specs for %s", callee.Name)
			}
		}
		insertAfter(ir.Instr{Op: ir.OpStore, Args: []*ir.Value{prev, recvs[i]}, Pos: call.Pos})
		chains[key] = recvs[i]
	}
	return after - idx - 1, nil
}
