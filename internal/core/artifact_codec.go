package core

import (
	"fmt"
	"sort"

	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/modref"
	"repro/internal/obs"
	"repro/internal/pta"
	"repro/internal/seg"
	"repro/internal/ssa"
	"repro/internal/store"
	"repro/internal/wirebin"
)

// Serialization of funcArtifacts for the persistent store. The wire form
// composes the per-package codecs (cond, ir, ssa, pta, seg) plus the
// session's own fingerprints, encoded with the wirebin binary layout —
// a flat length-prefixed format the per-package codecs read with a linear
// scan. The first cut of this file used encoding/gob; it lost a cold-vs-
// warm benchmark race twice over, first re-transmitting the type graph and
// recompiling decode engines per record, then (with records bundled into
// segments) spending the warm window inside reflective struct decoding.
// The hand-rolled codec decodes the same segments several-fold faster and
// packs them tighter on disk.
//
// Artifacts persist in *segments*: one record holding many artifacts on a
// single stream, instead of one record per function, so per-record store
// and framing overhead is amortized across the whole program.
//
// The layout under store.NSArtifact:
//
//   - "!full"      — a full snapshot segment: every artifact of the program.
//   - "!delta-NN"  — a bounded ring (NN in 00..15) of delta segments, each
//     holding only the artifacts one commit changed.
//
// Every segment carries a monotonically increasing sequence number; a
// warm load reads all present segments and keeps, per function, the
// version from the highest-sequence segment. Commit appends a delta for
// small change sets and rewrites "!full" when the ring is exhausted or
// more than half the program changed, which also re-bases the ring (later
// full supersedes earlier deltas by sequence; the store's last-writer-wins
// index bounds dead bytes to one live record per key).
//
// A segment from a different program shape, codec version, or with a
// corrupt stream decodes to a miss for everything in it; corruption costs
// a rebuild, never a wrong artifact — the same contract the per-function
// records had. The cached AST declaration (funcArtifact.decl) is
// deliberately absent: Update always refreshes it from the current parse
// before anything reads it, so persisting it would only risk staleness.

// artifactCodecVersion gates decoding: bump on any wire-format change so
// old records read as misses instead of garbage. Version 3 is the wirebin
// binary layout (version 2 was the same segment scheme gob-encoded);
// version-1 per-function records are simply never read (their keys are
// plain function names, which the segment loader does not consult).
const artifactCodecVersion = 3

// segMagic opens every segment record, so foreign bytes fail fast before
// any field decoding.
const segMagic = "ppsg"

// Segment keys and ring bound. Keys start with '!' so they can never
// collide with a function name (identifiers cannot contain '!').
const (
	segFullKey       = "!full"
	segDeltaPrefix   = "!delta-"
	maxDeltaSegments = 16
)

func segDeltaKey(slot int) string { return fmt.Sprintf("%s%02d", segDeltaPrefix, slot) }

// segmentHeader opens every segment stream.
type segmentHeader struct {
	Version int
	ProgFP  string
	Seq     int64
	Count   int
}

// pathFlagWire is one Mod/Ref summary entry in canonical order.
type pathFlagWire struct {
	Path modref.Path
	Ref  bool
	Mod  bool
}

type artifactWire struct {
	Version int
	ProgFP  string
	Name    string
	AstHash string
	SumFP   string
	SigFP   string
	DepFP   string
	Callees []string
	HasSum  bool
	Sum     []pathFlagWire
	Conds   []cond.NodeWire
	Fn      *ir.FuncWire
	Info    *ssa.InfoWire
	PTA     *pta.ResultWire
	SEG     *seg.GraphWire

	SegNodes  int
	SegEdges  int
	CondNodes int
	PTAStats  pta.Stats
}

// artifactMeta is the change-detection key for re-persisting: if it is
// unchanged since the last Put, the on-disk record is already current.
// The firewall makes this necessary — a retained artifact's summary and
// fingerprints can be refreshed at commit without a rebuild, and skipping
// the re-Put would leave a stale summary to be warm-loaded later.
func artifactMeta(progFP string, art *funcArtifact) string {
	return progFP + "|" + art.astHash + "|" + art.sumFP + "|" + art.sigFP + "|" + art.depFP
}

func exportSummary(sum *modref.Summary) (bool, []pathFlagWire) {
	if sum == nil {
		return false, nil
	}
	set := make(map[modref.Path]bool, len(sum.Ref)+len(sum.Mod))
	for p := range sum.Ref {
		set[p] = true
	}
	for p := range sum.Mod {
		set[p] = true
	}
	paths := make([]modref.Path, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool {
		a, b := paths[i], paths[j]
		if a.Root.Param != b.Root.Param {
			return a.Root.Param < b.Root.Param
		}
		if a.Root.Global != b.Root.Global {
			return a.Root.Global < b.Root.Global
		}
		return a.Depth < b.Depth
	})
	out := make([]pathFlagWire, len(paths))
	for i, p := range paths {
		out[i] = pathFlagWire{Path: p, Ref: sum.Ref[p], Mod: sum.Mod[p]}
	}
	return true, out
}

func importSummary(has bool, ws []pathFlagWire) *modref.Summary {
	if !has {
		return nil
	}
	sum := modref.NewSummary()
	for _, w := range ws {
		if w.Ref {
			sum.Ref[w.Path] = true
		}
		if w.Mod {
			sum.Mod[w.Path] = true
		}
	}
	return sum
}

// exportArtifactWire flattens art into its wire form.
func exportArtifactWire(name, progFP string, art *funcArtifact) (*artifactWire, error) {
	condsWire, err := art.info.Conds.Export()
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	fnWire, _ := ir.ExportFunc(art.fn)
	w := &artifactWire{
		Version: artifactCodecVersion,
		ProgFP:  progFP,
		Name:    name,
		AstHash: art.astHash,
		SumFP:   art.sumFP,
		SigFP:   art.sigFP,
		DepFP:   art.depFP,
		Callees: art.callees,
		Conds:   condsWire,
		Fn:      fnWire,
		Info:    ssa.ExportInfo(art.info),
		PTA:     pta.ExportResult(art.seg.PTA),
		SEG:     seg.ExportGraph(art.seg),

		SegNodes:  art.segNodes,
		SegEdges:  art.segEdges,
		CondNodes: art.condNodes,
		PTAStats:  art.ptaStats,
	}
	w.HasSum, w.Sum = exportSummary(art.sum)
	return w, nil
}

func appendPathFlags(e *wirebin.Writer, ws []pathFlagWire) {
	e.Uvarint(uint64(len(ws)))
	for i := range ws {
		w := &ws[i]
		e.Int(w.Path.Root.Param)
		e.Str(w.Path.Root.Global)
		e.Int(w.Path.Depth)
		e.Bool(w.Ref)
		e.Bool(w.Mod)
	}
}

func decodePathFlags(r *wirebin.Reader) []pathFlagWire {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([]pathFlagWire, n)
	for i := range out {
		w := &out[i]
		w.Path.Root.Param = r.Int()
		w.Path.Root.Global = r.Str()
		w.Path.Depth = r.Int()
		w.Ref = r.Bool()
		w.Mod = r.Bool()
	}
	return out
}

func appendArtifactWire(e *wirebin.Writer, w *artifactWire) {
	e.Str(w.Name)
	e.Str(w.AstHash)
	e.Str(w.SumFP)
	e.Str(w.SigFP)
	e.Str(w.DepFP)
	e.Strs(w.Callees)
	e.Bool(w.HasSum)
	appendPathFlags(e, w.Sum)
	cond.AppendNodeWires(e, w.Conds)
	w.Fn.AppendWire(e)
	w.Info.AppendWire(e)
	w.PTA.AppendWire(e)
	w.SEG.AppendWire(e)
	e.Int(w.SegNodes)
	e.Int(w.SegEdges)
	e.Int(w.CondNodes)
	e.Int(w.PTAStats.GuardsPruned)
	e.Int(w.PTAStats.GuardsKept)
	e.Int(w.PTAStats.CapWidened)
	e.Int(w.PTAStats.LinearQueries)
	e.Int(w.PTAStats.LinearUnsat)
}

func decodeArtifactWire(r *wirebin.Reader) (*artifactWire, error) {
	w := &artifactWire{Version: artifactCodecVersion}
	w.Name = r.Str()
	w.AstHash = r.Str()
	w.SumFP = r.Str()
	w.SigFP = r.Str()
	w.DepFP = r.Str()
	w.Callees = r.Strs()
	w.HasSum = r.Bool()
	w.Sum = decodePathFlags(r)
	var err error
	if w.Conds, err = cond.DecodeNodeWires(r); err != nil {
		return nil, err
	}
	if w.Fn, err = ir.DecodeFuncWire(r); err != nil {
		return nil, err
	}
	if w.Info, err = ssa.DecodeInfoWire(r); err != nil {
		return nil, err
	}
	if w.PTA, err = pta.DecodeResultWire(r); err != nil {
		return nil, err
	}
	if w.SEG, err = seg.DecodeGraphWire(r); err != nil {
		return nil, err
	}
	w.SegNodes = r.Int()
	w.SegEdges = r.Int()
	w.CondNodes = r.Int()
	w.PTAStats.GuardsPruned = r.Int()
	w.PTAStats.GuardsKept = r.Int()
	w.PTAStats.CapWidened = r.Int()
	w.PTAStats.LinearQueries = r.Int()
	w.PTAStats.LinearUnsat = r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return w, nil
}

// encodeSegment bundles the named artifacts into one segment record: a
// magic-prefixed header followed by Count artifactWire encodings.
func encodeSegment(progFP string, seq int64, names []string, arts map[string]*funcArtifact) ([]byte, error) {
	e := &wirebin.Writer{B: make([]byte, 0, 64<<10)}
	e.B = append(e.B, segMagic...)
	e.Int(artifactCodecVersion)
	e.Str(progFP)
	e.Varint(seq)
	e.Int(len(names))
	for _, name := range names {
		w, err := exportArtifactWire(name, progFP, arts[name])
		if err != nil {
			return nil, err
		}
		appendArtifactWire(e, w)
	}
	return e.B, nil
}

// namedArtifact is one decoded segment entry.
type namedArtifact struct {
	name string
	art  *funcArtifact
}

// decodeSegment rebuilds a segment's artifacts. Any header mismatch or
// stream error discards the whole segment (callers treat the error as a
// miss for everything in it); an artifact that decodes but fails semantic
// import is skipped individually.
func decodeSegment(progFP string, data []byte) (segmentHeader, []namedArtifact, error) {
	var hdr segmentHeader
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return hdr, nil, fmt.Errorf("segment: bad magic")
	}
	r := wirebin.NewReader(data[len(segMagic):])
	hdr.Version = r.Int()
	hdr.ProgFP = r.Str()
	hdr.Seq = r.Varint()
	hdr.Count = r.Int()
	if err := r.Err(); err != nil {
		return hdr, nil, fmt.Errorf("segment header: %w", err)
	}
	if hdr.Version != artifactCodecVersion {
		return hdr, nil, fmt.Errorf("segment: codec version %d, want %d", hdr.Version, artifactCodecVersion)
	}
	if hdr.ProgFP != progFP {
		return hdr, nil, fmt.Errorf("segment: program shape changed")
	}
	if hdr.Count < 0 || hdr.Count > r.Rest() {
		return hdr, nil, fmt.Errorf("segment: implausible artifact count %d", hdr.Count)
	}
	out := make([]namedArtifact, 0, hdr.Count)
	for i := 0; i < hdr.Count; i++ {
		w, err := decodeArtifactWire(r)
		if err != nil {
			return hdr, nil, fmt.Errorf("segment entry %d: %w", i, err)
		}
		w.ProgFP = progFP
		art, err := importArtifact(w, progFP)
		if err != nil {
			continue
		}
		out = append(out, namedArtifact{name: w.Name, art: art})
	}
	return hdr, out, nil
}

// importArtifact rebuilds a funcArtifact from its wire form. A record for
// a different program shape or with missing pieces returns an error;
// callers treat every error as a store miss and rebuild.
func importArtifact(w *artifactWire, progFP string) (*funcArtifact, error) {
	name := w.Name
	if w.ProgFP != progFP {
		return nil, fmt.Errorf("artifact %s: program shape changed", name)
	}
	if w.Fn == nil || w.Info == nil || w.PTA == nil || w.SEG == nil {
		return nil, fmt.Errorf("artifact %s: incomplete record", name)
	}
	b, nodes, err := cond.ImportBuilder(w.Conds)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	f, ix, err := ir.ImportFunc(w.Fn)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	if f.Name != name {
		return nil, fmt.Errorf("artifact %s: function names %q", name, f.Name)
	}
	inf, err := ssa.ImportInfo(w.Info, f, ix, b, nodes)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	pr, err := pta.ImportResult(w.PTA, f, inf, ix, nodes)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	g, err := seg.ImportGraph(w.SEG, f, inf, pr, ix, nodes)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	art := &funcArtifact{
		astHash:   w.AstHash,
		sumFP:     w.SumFP,
		sigFP:     w.SigFP,
		depFP:     w.DepFP,
		callees:   w.Callees,
		sum:       importSummary(w.HasSum, w.Sum),
		fn:        f,
		info:      inf,
		seg:       g,
		segNodes:  w.SegNodes,
		segEdges:  w.SegEdges,
		condNodes: w.CondNodes,
		ptaStats:  w.PTAStats,
	}
	art.persistedMeta = artifactMeta(progFP, art)
	return art, nil
}

// segState is the segment-ring bookkeeping a warm load recovers and every
// commit advances.
type segState struct {
	next    int64 // next segment sequence number
	deltas  int   // delta slots written since the last full (= next slot)
	hasFull bool  // a full segment is known to be on disk
}

// loadSegments reads every artifact segment present in the store and
// merges them by sequence number (highest wins per function). It returns
// the merged artifact map plus the recovered ring state. Unreadable
// segments are counted and skipped — a corrupt segment is a miss for
// everything in it, never an error.
func loadSegments(st store.Store, progFP string, rec *obs.Recorder) (map[string]*funcArtifact, segState) {
	type loadedSeg struct {
		hdr   segmentHeader
		arts  []namedArtifact
		delta bool
		slot  int
	}
	var segs []loadedSeg
	read := func(key string, delta bool, slot int) {
		data, ok, err := st.Get(store.NSArtifact, key)
		if err != nil || !ok {
			return
		}
		hdr, arts, err := decodeSegment(progFP, data)
		if err != nil {
			if rec != nil {
				rec.Counter("store.artifact.decode_errors").Inc()
			}
			return
		}
		segs = append(segs, loadedSeg{hdr: hdr, arts: arts, delta: delta, slot: slot})
	}
	read(segFullKey, false, -1)
	for i := 0; i < maxDeltaSegments; i++ {
		read(segDeltaKey(i), true, i)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].hdr.Seq < segs[j].hdr.Seq })

	out := make(map[string]*funcArtifact)
	var ring segState
	fullSeq := int64(-1)
	for _, sg := range segs {
		if !sg.delta {
			fullSeq, ring.hasFull = sg.hdr.Seq, true
		}
		for _, na := range sg.arts {
			out[na.name] = na.art
		}
		if sg.hdr.Seq >= ring.next {
			ring.next = sg.hdr.Seq + 1
		}
	}
	// The next delta slot must not overwrite a slot still live since the
	// last full; resume one past the highest such slot.
	for _, sg := range segs {
		if sg.delta && sg.hdr.Seq > fullSeq && sg.slot+1 > ring.deltas {
			ring.deltas = sg.slot + 1
		}
	}
	return out, ring
}
