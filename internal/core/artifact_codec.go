package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/modref"
	"repro/internal/pta"
	"repro/internal/seg"
	"repro/internal/ssa"
)

// Serialization of one funcArtifact for the persistent store. The wire
// form composes the per-package codecs (cond, ir, ssa, pta, seg) plus the
// session's own fingerprints. The record is keyed by function name —
// mirroring the in-memory artifact map — and carries the program-shape
// fingerprint it was built under; a record from a different shape decodes
// to a miss, exactly as shapeChanged discards the in-memory map.
//
// The cached AST declaration (funcArtifact.decl) is deliberately absent:
// Update always refreshes it from the current parse before anything reads
// it, so persisting it would only risk staleness.

// artifactCodecVersion gates decoding: bump on any wire-format change so
// old records read as misses instead of garbage.
const artifactCodecVersion = 1

// pathFlagWire is one Mod/Ref summary entry in canonical order.
type pathFlagWire struct {
	Path modref.Path
	Ref  bool
	Mod  bool
}

type artifactWire struct {
	Version int
	ProgFP  string
	Name    string
	AstHash string
	SumFP   string
	SigFP   string
	DepFP   string
	Callees []string
	HasSum  bool
	Sum     []pathFlagWire
	Conds   []cond.NodeWire
	Fn      *ir.FuncWire
	Info    *ssa.InfoWire
	PTA     *pta.ResultWire
	SEG     *seg.GraphWire

	SegNodes  int
	SegEdges  int
	CondNodes int
	PTAStats  pta.Stats
}

// artifactMeta is the change-detection key for re-persisting: if it is
// unchanged since the last Put, the on-disk record is already current.
// The firewall makes this necessary — a retained artifact's summary and
// fingerprints can be refreshed at commit without a rebuild, and skipping
// the re-Put would leave a stale summary to be warm-loaded later.
func artifactMeta(progFP string, art *funcArtifact) string {
	return progFP + "|" + art.astHash + "|" + art.sumFP + "|" + art.sigFP + "|" + art.depFP
}

func exportSummary(sum *modref.Summary) (bool, []pathFlagWire) {
	if sum == nil {
		return false, nil
	}
	set := make(map[modref.Path]bool, len(sum.Ref)+len(sum.Mod))
	for p := range sum.Ref {
		set[p] = true
	}
	for p := range sum.Mod {
		set[p] = true
	}
	paths := make([]modref.Path, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool {
		a, b := paths[i], paths[j]
		if a.Root.Param != b.Root.Param {
			return a.Root.Param < b.Root.Param
		}
		if a.Root.Global != b.Root.Global {
			return a.Root.Global < b.Root.Global
		}
		return a.Depth < b.Depth
	})
	out := make([]pathFlagWire, len(paths))
	for i, p := range paths {
		out[i] = pathFlagWire{Path: p, Ref: sum.Ref[p], Mod: sum.Mod[p]}
	}
	return true, out
}

func importSummary(has bool, ws []pathFlagWire) *modref.Summary {
	if !has {
		return nil
	}
	sum := modref.NewSummary()
	for _, w := range ws {
		if w.Ref {
			sum.Ref[w.Path] = true
		}
		if w.Mod {
			sum.Mod[w.Path] = true
		}
	}
	return sum
}

// encodeArtifact flattens art into a self-contained byte record.
func encodeArtifact(name, progFP string, art *funcArtifact) ([]byte, error) {
	condsWire, err := art.info.Conds.Export()
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	fnWire, _ := ir.ExportFunc(art.fn)
	w := artifactWire{
		Version: artifactCodecVersion,
		ProgFP:  progFP,
		Name:    name,
		AstHash: art.astHash,
		SumFP:   art.sumFP,
		SigFP:   art.sigFP,
		DepFP:   art.depFP,
		Callees: art.callees,
		Conds:   condsWire,
		Fn:      fnWire,
		Info:    ssa.ExportInfo(art.info),
		PTA:     pta.ExportResult(art.seg.PTA),
		SEG:     seg.ExportGraph(art.seg),

		SegNodes:  art.segNodes,
		SegEdges:  art.segEdges,
		CondNodes: art.condNodes,
		PTAStats:  art.ptaStats,
	}
	w.HasSum, w.Sum = exportSummary(art.sum)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	return buf.Bytes(), nil
}

// decodeArtifact rebuilds a funcArtifact from a stored record. A record
// for a different function, program shape, or codec version returns an
// error; callers treat every error as a store miss and rebuild.
func decodeArtifact(name, progFP string, data []byte) (*funcArtifact, error) {
	var w artifactWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	if w.Version != artifactCodecVersion {
		return nil, fmt.Errorf("artifact %s: codec version %d, want %d", name, w.Version, artifactCodecVersion)
	}
	if w.Name != name {
		return nil, fmt.Errorf("artifact %s: record names %q", name, w.Name)
	}
	if w.ProgFP != progFP {
		return nil, fmt.Errorf("artifact %s: program shape changed", name)
	}
	if w.Fn == nil || w.Info == nil || w.PTA == nil || w.SEG == nil {
		return nil, fmt.Errorf("artifact %s: incomplete record", name)
	}
	b, nodes, err := cond.ImportBuilder(w.Conds)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	f, ix, err := ir.ImportFunc(w.Fn)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	if f.Name != name {
		return nil, fmt.Errorf("artifact %s: function names %q", name, f.Name)
	}
	inf, err := ssa.ImportInfo(w.Info, f, ix, b, nodes)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	pr, err := pta.ImportResult(w.PTA, f, inf, ix, nodes)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	g, err := seg.ImportGraph(w.SEG, f, inf, pr, ix, nodes)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", name, err)
	}
	art := &funcArtifact{
		astHash:   w.AstHash,
		sumFP:     w.SumFP,
		sigFP:     w.SigFP,
		depFP:     w.DepFP,
		callees:   w.Callees,
		sum:       importSummary(w.HasSum, w.Sum),
		fn:        f,
		info:      inf,
		seg:       g,
		segNodes:  w.SegNodes,
		segEdges:  w.SegEdges,
		condNodes: w.CondNodes,
		ptaStats:  w.PTAStats,
	}
	art.persistedMeta = artifactMeta(progFP, art)
	return art, nil
}
