// Package core wires the full Pinpoint pipeline (the architecture of
// Figure 6 in the paper):
//
//	MiniC source
//	  → parse (minic)
//	  → lower to CFG IR, unroll loops, normalize returns (lower)
//	  → SSA + gating conditions + control dependence (ssa)
//	  → Mod/Ref side-effect analysis (modref)
//	  → connector transformation: Aux params / Aux returns (transform)
//	  → local quasi path-sensitive points-to analysis (pta)
//	  → symbolic expression graphs (seg)
//	  → demand-driven global value-flow detection (detect + checkers)
//
// It also records per-stage wall-clock timings and structural size
// statistics, which the experiment harness uses to regenerate the paper's
// figures.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkers"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/modref"
	"repro/internal/pta"
	"repro/internal/seg"
	"repro/internal/ssa"
	"repro/internal/transform"
)

// BuildOptions configures the front half of the pipeline.
type BuildOptions struct {
	// PTA tunes the local points-to analysis (ablations).
	PTA pta.Options
	// DisableConnectors skips the connector transformation — the
	// ablation approximating a design without §3.1.2's model (side
	// effects stay invisible across calls).
	DisableConnectors bool
	// Workers runs the per-function stages (SSA conversion, points-to
	// analysis, SEG construction) concurrently on that many goroutines.
	// 0 or 1 means sequential; negative means GOMAXPROCS. Everything the
	// paper's design makes function-local parallelizes trivially — of the
	// cross-function stages only Mod/Ref and connectors stay sequential;
	// detection parallelizes per demand source via detect.Options.Workers
	// (see Analysis.CheckAll).
	Workers int
}

// Timings records per-stage durations.
type Timings struct {
	Parse     time.Duration
	Lower     time.Duration
	SSA       time.Duration
	ModRef    time.Duration
	Transform time.Duration
	PTA       time.Duration
	SEG       time.Duration
}

// Total sums all stages.
func (t Timings) Total() time.Duration {
	return t.Parse + t.Lower + t.SSA + t.ModRef + t.Transform + t.PTA + t.SEG
}

// SEGBuild sums the stages that constitute "building the SEG" in the
// paper's Figure 7 comparison (everything after parsing).
func (t Timings) SEGBuild() time.Duration {
	return t.Lower + t.SSA + t.ModRef + t.Transform + t.PTA + t.SEG
}

// Sizes records structural size statistics, the deterministic memory proxy
// reported next to measured heap numbers.
type Sizes struct {
	Lines     int // IR instructions
	Functions int
	SEGNodes  int
	SEGEdges  int
	CondNodes int
}

// Analysis is a fully built program analysis ready for checking.
type Analysis struct {
	Module  *ir.Module
	Infos   map[*ir.Func]*ssa.Info
	SEGs    map[*ir.Func]*seg.Graph
	Prog    *detect.Program
	ModRef  *modref.Result
	Timings Timings
	Sizes   Sizes
	// PTAStats aggregates the local points-to counters across functions.
	PTAStats pta.Stats
}

// BuildFromSource parses and analyzes a set of translation units.
func BuildFromSource(units []minic.NamedSource, opts BuildOptions) (*Analysis, error) {
	t0 := time.Now()
	prog, err := minic.ParseProgram(units)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	parse := time.Since(t0)
	a, err := BuildFromAST(prog, opts)
	if err != nil {
		return nil, err
	}
	a.Timings.Parse = parse
	return a, nil
}

// BuildFromAST runs the pipeline on a parsed program.
func BuildFromAST(prog *minic.Program, opts BuildOptions) (*Analysis, error) {
	a := &Analysis{
		Infos: make(map[*ir.Func]*ssa.Info),
		SEGs:  make(map[*ir.Func]*seg.Graph),
	}

	t0 := time.Now()
	m, err := lower.Program(prog)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	a.Module = m
	a.Timings.Lower = time.Since(t0)

	t0 = time.Now()
	infos := make([]*ssa.Info, len(m.Funcs))
	if err := forEachFunc(m.Funcs, opts.Workers, func(i int, f *ir.Func) error {
		inf, err := ssa.Transform(f)
		if err != nil {
			return fmt.Errorf("ssa %s: %w", f.Name, err)
		}
		infos[i] = inf
		return nil
	}); err != nil {
		return nil, err
	}
	for i, f := range m.Funcs {
		a.Infos[f] = infos[i]
	}
	a.Timings.SSA = time.Since(t0)

	t0 = time.Now()
	a.ModRef = modref.Analyze(m)
	a.Timings.ModRef = time.Since(t0)

	if !opts.DisableConnectors {
		t0 = time.Now()
		if err := transform.Apply(m, a.ModRef); err != nil {
			return nil, fmt.Errorf("transform: %w", err)
		}
		a.Timings.Transform = time.Since(t0)
	}

	t0 = time.Now()
	prs := make([]*pta.Result, len(m.Funcs))
	graphs := make([]*seg.Graph, len(m.Funcs))
	if err := forEachFunc(m.Funcs, opts.Workers, func(i int, f *ir.Func) error {
		pr, err := pta.Analyze(f, a.Infos[f], opts.PTA)
		if err != nil {
			return fmt.Errorf("pta %s: %w", f.Name, err)
		}
		prs[i] = pr
		graphs[i] = seg.Build(f, a.Infos[f], pr)
		return nil
	}); err != nil {
		return nil, err
	}
	for i, f := range m.Funcs {
		pr := prs[i]
		a.PTAStats.GuardsPruned += pr.Stats.GuardsPruned
		a.PTAStats.GuardsKept += pr.Stats.GuardsKept
		a.PTAStats.CapWidened += pr.Stats.CapWidened
		a.PTAStats.LinearQueries += pr.Stats.LinearQueries
		a.PTAStats.LinearUnsat += pr.Stats.LinearUnsat
		g := graphs[i]
		a.SEGs[f] = g
		a.Sizes.SEGNodes += g.NumNodes()
		a.Sizes.SEGEdges += g.NumEdges()
	}
	// PTA and SEG run fused per function; attribute the fused time to
	// the PTA stage and leave SEG assembly accounted as zero-extra.
	a.Timings.PTA = time.Since(t0)

	a.Sizes.Lines = m.LineCount()
	a.Sizes.Functions = len(m.Funcs)
	for _, inf := range a.Infos {
		a.Sizes.CondNodes += inf.Conds.NumNodes()
	}

	a.Prog = detect.NewProgram(m, a.Infos, a.SEGs)
	return a, nil
}

// Check runs one checker over the analysis sequentially. CheckAll is the
// preferred entry point; Check remains for baselines and ablations that
// want the single-engine code path.
func (a *Analysis) Check(spec *checkers.Spec, opts detect.Options) ([]detect.Report, detect.Stats) {
	eng := detect.NewEngine(a.Prog, spec, opts)
	return eng.Run()
}

// CheckAll runs every given checker over the analysis on the parallel
// detection scheduler (opts.Workers goroutines; 0/1 = sequential, negative
// = GOMAXPROCS). Reports come back sorted by (checker, source position,
// sink position) and are identical at every worker count.
func (a *Analysis) CheckAll(specs []*checkers.Spec, opts detect.Options) detect.Results {
	return detect.CheckAll(a.Prog, specs, opts)
}

// forEachFunc applies fn to every function, on `workers` goroutines when
// workers > 1 (negative selects GOMAXPROCS). The first error wins.
func forEachFunc(funcs []*ir.Func, workers int, fn func(i int, f *ir.Func) error) error {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(funcs) < 2 {
		for i, f := range funcs {
			if err := fn(i, f); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int64
	)
	if workers > len(funcs) {
		workers = len(funcs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(funcs) {
					return
				}
				if err := fn(i, funcs[i]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
