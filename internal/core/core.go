// Package core wires the full Pinpoint pipeline (the architecture of
// Figure 6 in the paper):
//
//	MiniC source
//	  → parse (minic)
//	  → lower to CFG IR, unroll loops, normalize returns (lower)
//	  → SSA + gating conditions + control dependence (ssa)
//	  → Mod/Ref side-effect analysis (modref)
//	  → connector transformation: Aux params / Aux returns (transform)
//	  → local quasi path-sensitive points-to analysis (pta)
//	  → symbolic expression graphs (seg)
//	  → demand-driven global value-flow detection (detect + checkers)
//
// It also records per-stage wall-clock timings and structural size
// statistics, which the experiment harness uses to regenerate the paper's
// figures.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/checkers"
	"repro/internal/conc"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/modref"
	"repro/internal/obs"
	"repro/internal/pta"
	"repro/internal/seg"
	"repro/internal/ssa"
	"repro/internal/store"
	"repro/internal/transform"
)

// BuildOptions configures the front half of the pipeline.
type BuildOptions struct {
	// PTA tunes the local points-to analysis (ablations).
	PTA pta.Options
	// DisableConnectors skips the connector transformation — the
	// ablation approximating a design without §3.1.2's model (side
	// effects stay invisible across calls).
	DisableConnectors bool
	// Workers runs the build concurrently on that many goroutines. 0 or 1
	// means sequential; negative means GOMAXPROCS. Per-function stages
	// (parse per unit, lowering, SSA conversion, points-to analysis, SEG
	// construction) parallelize trivially; the cross-function stages —
	// Mod/Ref and the connector transform — run as a dependency-counting
	// wavefront over the condensed call graph (see DESIGN.md "Parallel
	// build pipeline"). Output is byte-identical at every worker count.
	// Detection parallelizes per demand source via detect.Options.Workers
	// (see Analysis.CheckAll).
	Workers int
	// Obs, when non-nil, receives hierarchical phase spans for every build
	// stage, per-function spans (and latency histograms) for the hot
	// per-function stages, and structural gauges. nil disables all
	// recording; the build result is identical either way.
	Obs *obs.Recorder
	// Store, when non-nil and persistent, backs the session's per-function
	// artifacts and the SMT verdict cache: artifacts are warm-loaded on
	// the first Update after a restart and every commit writes back what
	// changed. A non-persistent store (MemStore, the default nil) leaves
	// behavior exactly as before — the in-memory maps are already the
	// cache, so the byte round-trip would be pure overhead.
	Store store.Store
}

// Timings records per-stage durations. StoreLoad and StoreSave are
// persistent-store I/O (segment decode on a warm restart, segment
// append at commit); they are reported separately from the pipeline
// stages so Total keeps its historical meaning of "analysis work".
type Timings struct {
	Parse     time.Duration
	Lower     time.Duration
	SSA       time.Duration
	ModRef    time.Duration
	Transform time.Duration
	PTA       time.Duration
	SEG       time.Duration
	StoreLoad time.Duration
	StoreSave time.Duration
}

// Total sums all pipeline stages (store I/O excluded).
func (t Timings) Total() time.Duration {
	return t.Parse + t.Lower + t.SSA + t.ModRef + t.Transform + t.PTA + t.SEG
}

// SEGBuild sums the stages that constitute "building the SEG" in the
// paper's Figure 7 comparison (everything after parsing).
func (t Timings) SEGBuild() time.Duration {
	return t.Lower + t.SSA + t.ModRef + t.Transform + t.PTA + t.SEG
}

// Sizes records structural size statistics, the deterministic memory proxy
// reported next to measured heap numbers.
type Sizes struct {
	Lines     int // IR instructions
	Functions int
	SEGNodes  int
	SEGEdges  int
	CondNodes int
}

// Analysis is a fully built program analysis ready for checking.
type Analysis struct {
	Module  *ir.Module
	Infos   map[*ir.Func]*ssa.Info
	SEGs    map[*ir.Func]*seg.Graph
	Prog    *detect.Program
	ModRef  *modref.Result
	Timings Timings
	Sizes   Sizes
	// PTAStats aggregates the local points-to counters across functions.
	PTAStats pta.Stats
	// Artifacts reports the incremental artifact-store outcome of the
	// build: all misses for a one-shot build, mostly hits for a warm
	// Session.Update.
	Artifacts ArtifactStats
}

// BuildFromSource parses and analyzes a set of translation units: a
// one-shot build expressed as the first Update of a throwaway incremental
// session (every artifact is a miss). Callers that analyze a program series
// should hold a Session of their own and call Update instead.
func BuildFromSource(units []minic.NamedSource, opts BuildOptions) (*Analysis, error) {
	return newSession(opts).Update(units)
}

// BuildFromAST runs the pipeline on a parsed program.
func BuildFromAST(prog *minic.Program, opts BuildOptions) (*Analysis, error) {
	rec := opts.Obs
	a := &Analysis{
		Infos: make(map[*ir.Func]*ssa.Info),
		SEGs:  make(map[*ir.Func]*seg.Graph),
	}

	sp := rec.Phase("lower")
	t0 := time.Now()
	m, err := lower.ProgramWith(prog, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	a.Module = m
	a.Timings.Lower = time.Since(t0)
	sp.End()

	sp = rec.Phase("ssa")
	t0 = time.Now()
	infos := make([]*ssa.Info, len(m.Funcs))
	if err := forEachFunc(m.Funcs, opts.Workers, func(w, i int, f *ir.Func) error {
		defer perFunc(rec, w, "build.ssa", f.Name)()
		inf, err := ssa.Transform(f)
		if err != nil {
			return fmt.Errorf("ssa %s: %w", f.Name, err)
		}
		infos[i] = inf
		return nil
	}); err != nil {
		return nil, err
	}
	for i, f := range m.Funcs {
		a.Infos[f] = infos[i]
	}
	a.Timings.SSA = time.Since(t0)
	sp.End()

	sp = rec.Phase("modref")
	t0 = time.Now()
	mr, width := modref.AnalyzeWith(m, opts.Workers)
	a.ModRef = mr
	rec.Gauge("modref.wavefront_width").Set(int64(width))
	a.Timings.ModRef = time.Since(t0)
	sp.End()

	if !opts.DisableConnectors {
		sp = rec.Phase("transform")
		t0 = time.Now()
		if err := transform.ApplyFuncsWith(m, m.Funcs, func(f *ir.Func) *modref.Summary {
			return mr.Summaries[f]
		}, opts.Workers); err != nil {
			return nil, fmt.Errorf("transform: %w", err)
		}
		a.Timings.Transform = time.Since(t0)
		sp.End()
	}

	sp = rec.Phase("pta+seg")
	t0 = time.Now()
	prs := make([]*pta.Result, len(m.Funcs))
	graphs := make([]*seg.Graph, len(m.Funcs))
	var ptaNs, segNs int64
	if err := forEachFunc(m.Funcs, opts.Workers, func(w, i int, f *ir.Func) error {
		t1 := time.Now()
		endPTA := perFunc(rec, w, "build.pta", f.Name)
		pr, err := pta.Analyze(f, a.Infos[f], opts.PTA)
		endPTA()
		atomic.AddInt64(&ptaNs, int64(time.Since(t1)))
		if err != nil {
			return fmt.Errorf("pta %s: %w", f.Name, err)
		}
		prs[i] = pr
		t1 = time.Now()
		endSEG := perFunc(rec, w, "build.seg", f.Name)
		graphs[i] = seg.Build(f, a.Infos[f], pr)
		endSEG()
		atomic.AddInt64(&segNs, int64(time.Since(t1)))
		return nil
	}); err != nil {
		return nil, err
	}
	for i, f := range m.Funcs {
		a.PTAStats.Add(prs[i].Stats)
		g := graphs[i]
		a.SEGs[f] = g
		a.Sizes.SEGNodes += g.NumNodes()
		a.Sizes.SEGEdges += g.NumEdges()
	}
	// PTA and SEG run fused per function; apportion the fused stage wall
	// across the two Timings fields by the measured per-function split so
	// -stats/-stats-json report a real SEG cost instead of zero.
	a.Timings.PTA, a.Timings.SEG = splitFused(time.Since(t0), ptaNs, segNs)
	sp.End()

	a.Sizes.Lines = m.LineCount()
	a.Sizes.Functions = len(m.Funcs)
	for _, inf := range a.Infos {
		a.Sizes.CondNodes += inf.Conds.NumNodes()
	}

	a.Prog = detect.NewProgram(m, a.Infos, a.SEGs)

	if rec != nil {
		emitBuildMetrics(rec, a)
	}
	return a, nil
}

// emitBuildMetrics publishes the structural gauges and PTA counters of a
// finished build; shared by the monolithic pipeline and Session.Update.
func emitBuildMetrics(rec *obs.Recorder, a *Analysis) {
	rec.Gauge("build.functions").Set(int64(a.Sizes.Functions))
	rec.Gauge("build.ir_instrs").Set(int64(a.Sizes.Lines))
	rec.Gauge("build.cond_nodes").Set(int64(a.Sizes.CondNodes))
	var gs seg.GraphStats
	for _, g := range a.SEGs {
		s := g.Stats()
		gs.Nodes += s.Nodes
		gs.Edges += s.Edges
		gs.ValueNodes += s.ValueNodes
		gs.UseNodes += s.UseNodes
	}
	rec.Gauge("seg.nodes").Set(int64(gs.Nodes))
	rec.Gauge("seg.edges").Set(int64(gs.Edges))
	rec.Gauge("seg.value_nodes").Set(int64(gs.ValueNodes))
	rec.Gauge("seg.use_nodes").Set(int64(gs.UseNodes))
	rec.Counter("pta.guards_kept").Add(int64(a.PTAStats.GuardsKept))
	rec.Counter("pta.guards_pruned").Add(int64(a.PTAStats.GuardsPruned))
	rec.Counter("pta.cap_widened").Add(int64(a.PTAStats.CapWidened))
	rec.Counter("pta.linear_queries").Add(int64(a.PTAStats.LinearQueries))
	rec.Counter("pta.linear_unsat").Add(int64(a.PTAStats.LinearUnsat))
}

// perFunc opens the per-function observation of one hot build stage:
// a latency histogram sample ("<stage>.func_ns") always, plus a span on
// the worker's trace track when tracing. The returned closure ends it.
// With a nil recorder it is a no-op returning a shared empty closure.
func perFunc(rec *obs.Recorder, w int, stage, fn string) func() {
	if rec == nil {
		return noopEnd
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		rec.Histogram(stage + ".func_ns").Observe(int64(d))
		if rec.Tracing() {
			rec.Event(w+1, stage[len("build."):]+":"+fn, t0, d)
		}
	}
}

var noopEnd = func() {}

// Check runs one checker over the analysis sequentially. CheckAll is the
// preferred entry point; Check remains for baselines and ablations that
// want the single-engine code path.
func (a *Analysis) Check(spec *checkers.Spec, opts detect.Options) ([]detect.Report, detect.Stats) {
	eng := detect.NewEngine(a.Prog, spec, opts)
	return eng.Run()
}

// CheckAll runs every given checker over the analysis on the parallel
// detection scheduler (opts.Workers goroutines; 0/1 = sequential, negative
// = GOMAXPROCS). Reports come back sorted by (checker, source position,
// sink position) and are identical at every worker count.
func (a *Analysis) CheckAll(specs []*checkers.Spec, opts detect.Options) detect.Results {
	return detect.CheckAll(a.Prog, specs, opts)
}

// forEachFunc applies fn to every function, on `workers` goroutines when
// workers > 1 (negative selects GOMAXPROCS). fn receives the index w of
// the worker running it (0 when sequential) so callers can attribute
// work to trace tracks without locking. Errors follow conc.ForEach's
// deterministic lowest-index contract.
func forEachFunc(funcs []*ir.Func, workers int, fn func(w, i int, f *ir.Func) error) error {
	return conc.ForEach(len(funcs), workers, func(w, i int) error {
		return fn(w, i, funcs[i])
	})
}

// splitFused apportions the wall clock of the fused pta+seg stage across
// the two Timings fields in proportion to the measured per-function CPU
// time of each half, so the reported totals still sum to the stage wall
// even though the halves interleave across workers.
func splitFused(wall time.Duration, ptaNs, segNs int64) (ptaT, segT time.Duration) {
	total := ptaNs + segNs
	if total <= 0 {
		return wall, 0
	}
	segT = time.Duration(float64(wall) * float64(segNs) / float64(total))
	return wall - segT, segT
}
