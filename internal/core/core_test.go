package core_test

import (
	"strings"
	"testing"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
)

const pipelineSrc = `
void helper(int *q) { *q = 5; }
int f(bool c) {
	int *p = malloc();
	helper(p);
	int v = *p;
	if (c) { free(p); }
	if (c) { v = *p; }
	return v;
}`

func TestBuildFromSourcePipeline(t *testing.T) {
	a, err := core.BuildFromSource([]minic.NamedSource{{Name: "p.mc", Src: pipelineSrc}}, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Sizes.Functions != 2 {
		t.Errorf("functions = %d", a.Sizes.Functions)
	}
	if a.Sizes.SEGNodes == 0 || a.Sizes.SEGEdges == 0 || a.Sizes.CondNodes == 0 {
		t.Errorf("sizes empty: %+v", a.Sizes)
	}
	if a.Timings.Total() <= 0 || a.Timings.SEGBuild() <= 0 {
		t.Errorf("timings empty: %+v", a.Timings)
	}
	// The connector transformation ran: helper has aux specs.
	helper := a.Module.ByName["helper"]
	if len(helper.AuxOut) == 0 {
		t.Error("connectors missing on helper")
	}
	reports, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
}

func TestBuildParseError(t *testing.T) {
	_, err := core.BuildFromSource([]minic.NamedSource{{Name: "bad.mc", Src: "void f( {"}}, core.BuildOptions{})
	if err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildLowerError(t *testing.T) {
	_, err := core.BuildFromSource([]minic.NamedSource{{Name: "bad.mc", Src: "void f() { undefined_var = 1; }"}}, core.BuildOptions{})
	if err == nil {
		t.Fatal("undefined variable not rejected")
	}
}

func TestDisableConnectorsOption(t *testing.T) {
	units := []minic.NamedSource{{Name: "p.mc", Src: pipelineSrc}}
	a, err := core.BuildFromSource(units, core.BuildOptions{DisableConnectors: true})
	if err != nil {
		t.Fatal(err)
	}
	helper := a.Module.ByName["helper"]
	if len(helper.AuxOut) != 0 || len(helper.AuxIn) != 0 {
		t.Error("connectors applied despite ablation")
	}
	if a.Timings.Transform != 0 {
		t.Error("transform timing recorded despite ablation")
	}
}

func TestPTAStatsAggregated(t *testing.T) {
	a, err := core.BuildFromSource([]minic.NamedSource{{Name: "p.mc", Src: pipelineSrc}}, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.PTAStats.LinearQueries == 0 {
		t.Error("PTA stats not aggregated")
	}
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	// Same program, sequential vs parallel pipeline: identical reports
	// and identical SEG sizes.
	var units []minic.NamedSource
	units = append(units, minic.NamedSource{Name: "a.mc", Src: pipelineSrc})
	units = append(units, minic.NamedSource{Name: "b.mc", Src: `
void g1(int *p) { *p = 1; }
void g2() { int *q = malloc(); g1(q); free(q); sink(*q); }
void g3(bool c) { int *r = malloc(); if (c) { free(r); } if (!c) { sink(*r); } }
`})
	seq, err := core.BuildFromSource(units, core.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.BuildFromSource(units, core.BuildOptions{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Sizes.SEGNodes != par.Sizes.SEGNodes || seq.Sizes.SEGEdges != par.Sizes.SEGEdges {
		t.Fatalf("sizes differ: %+v vs %+v", seq.Sizes, par.Sizes)
	}
	rs, _ := seq.Check(checkers.UseAfterFree(), detect.Options{})
	rp, _ := par.Check(checkers.UseAfterFree(), detect.Options{})
	if len(rs) != len(rp) {
		t.Fatalf("reports differ: %v vs %v", rs, rp)
	}
	for i := range rs {
		if rs[i].SourcePos != rp[i].SourcePos || rs[i].SinkPos != rp[i].SinkPos {
			t.Fatalf("report %d differs: %v vs %v", i, rs[i], rp[i])
		}
	}
}
