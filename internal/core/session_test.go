package core_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/workload"
)

// normalizeResults strips the fields that legitimately differ between a
// cold and a cache-warm run: wall clock, worker accounting, the shared
// summary-cache counters (which accumulate across CheckAll calls on a
// persistent session), and the SMT verdict cache's solved/cache-hit split
// (a warm session answers from the carried-over cache what a cold build
// must solve; only the split's sum is warmth-independent). Everything else
// — reports, witnesses, per-checker effort counters including the
// deterministic prefilter kills — must be byte-identical.
func normalizeResults(res detect.Results) detect.Results {
	res.Wall = 0
	res.SummaryHits, res.SummaryMisses, res.SummaryCapHits = 0, 0, 0
	res.WorkerStats = nil
	for i := range res.Checkers {
		res.Checkers[i].Stats.SMTTime = 0
		res.Checkers[i].Stats.SummaryCapHits = 0
		res.Checkers[i].Stats.SMTSolved += res.Checkers[i].Stats.SMTCacheHits
		res.Checkers[i].Stats.SMTCacheHits = 0
	}
	return res
}

// reportsJSON renders reports through the exported JSON schema, the format
// the equivalence guarantee is stated in.
func reportsJSON(t *testing.T, rs []detect.Report) []byte {
	t.Helper()
	js := make([]detect.JSONReport, len(rs))
	for i, r := range rs {
		js[i] = r.ToJSON()
	}
	b, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func summaryFPs(a *core.Analysis) map[string]string {
	out := make(map[string]string, len(a.ModRef.Summaries))
	for f, s := range a.ModRef.Summaries {
		out[f.Name] = s.Fingerprint()
	}
	return out
}

// editUnit inserts a statement right after the unit's driver-function
// opening line, producing a body edit that leaves the function's Mod/Ref
// summary and connector signature unchanged.
func editUnit(t *testing.T, u minic.NamedSource) minic.NamedSource {
	t.Helper()
	lines := strings.Split(u.Src, "\n")
	for i, ln := range lines {
		if strings.HasPrefix(ln, "void drive_") {
			lines = append(lines[:i+1], append([]string{"\tseed = seed + 1;"}, lines[i+1:]...)...)
			return minic.NamedSource{Name: u.Name, Src: strings.Join(lines, "\n")}
		}
	}
	t.Fatalf("no driver function in %s", u.Name)
	return u
}

func checkEquivalent(t *testing.T, tag string, warm, cold *core.Analysis, workers int) {
	t.Helper()
	specs := checkers.All()
	opts := detect.Options{Workers: workers}
	wres := normalizeResults(warm.CheckAll(specs, opts))
	cres := normalizeResults(cold.CheckAll(specs, opts))

	wb, cb := reportsJSON(t, wres.Reports), reportsJSON(t, cres.Reports)
	if string(wb) != string(cb) {
		t.Fatalf("%s: reports differ\nwarm: %s\ncold: %s", tag, wb, cb)
	}
	wres.Reports, cres.Reports = nil, nil
	if !reflect.DeepEqual(wres, cres) {
		t.Fatalf("%s: stats differ\nwarm: %+v\ncold: %+v", tag, wres, cres)
	}
	if warm.Sizes != cold.Sizes {
		t.Fatalf("%s: sizes differ: %+v vs %+v", tag, warm.Sizes, cold.Sizes)
	}
	if warm.PTAStats != cold.PTAStats {
		t.Fatalf("%s: PTA stats differ: %+v vs %+v", tag, warm.PTAStats, cold.PTAStats)
	}
	if !reflect.DeepEqual(summaryFPs(warm), summaryFPs(cold)) {
		t.Fatalf("%s: Mod/Ref summaries differ", tag)
	}
}

// TestSessionEquivalenceSingleEdit is the incremental-build contract: after
// editing one function in one unit, a warm Session.Update must produce
// reports, witnesses, and stats byte-identical to a from-scratch build of
// the edited program — at one worker and at GOMAXPROCS.
func TestSessionEquivalenceSingleEdit(t *testing.T) {
	gen := workload.Generate(workload.Subjects[2], workload.GenOptions{Scale: 140, Taint: true})
	if len(gen.Units) < 2 {
		t.Fatalf("workload has %d units; want multi-unit", len(gen.Units))
	}

	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		for edited := range gen.Units {
			tag := fmt.Sprintf("workers=%d unit=%s", workers, gen.Units[edited].Name)

			sess := core.NewSession(core.BuildOptions{Workers: workers})
			if _, err := sess.Update(gen.Units); err != nil {
				t.Fatal(err)
			}
			// Warm the detection caches too: persistence must not leak
			// into the post-edit results.
			sess.Analysis().CheckAll(checkers.All(), detect.Options{Workers: workers})

			units := append([]minic.NamedSource(nil), gen.Units...)
			units[edited] = editUnit(t, units[edited])

			warm, err := sess.Update(units)
			if err != nil {
				t.Fatal(err)
			}
			st := sess.ArtifactStats()
			if st.Hits == 0 || st.Invalidated == 0 {
				t.Fatalf("%s: no incremental reuse: %+v", tag, st)
			}
			if rebuilt := st.Misses + st.Invalidated; rebuilt >= warm.Sizes.Functions {
				t.Fatalf("%s: whole program rebuilt (%d of %d)", tag, rebuilt, warm.Sizes.Functions)
			}

			cold, err := core.BuildFromSource(units, core.BuildOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			checkEquivalent(t, tag, warm, cold, workers)
		}
	}
}

const firewallA = `
int gg;
void top(int *p) { mid(p); }
`
const firewallB = `
void mid(int *p) { w(p); }
`

func firewallUnits(wSrc string) []minic.NamedSource {
	return []minic.NamedSource{
		{Name: "a.mc", Src: firewallA},
		{Name: "b.mc", Src: firewallB},
		{Name: "c.mc", Src: wSrc},
	}
}

// TestSessionFirewallEarlyCutoff exercises the two-level invalidation rule
// on a top → mid → w chain: a body edit of w that changes its Mod/Ref
// summary but not its connector signature rebuilds only w (the summaries of
// mid and top are recomputed, their artifacts retained), while an edit that
// changes w's signature rebuilds the whole chain.
func TestSessionFirewallEarlyCutoff(t *testing.T) {
	sess := core.NewSession(core.BuildOptions{})
	a, err := sess.Update(firewallUnits(`void w(int *p) { *p = 1; }`))
	if err != nil {
		t.Fatal(err)
	}
	if st := sess.ArtifactStats(); st.Misses != 3 || st.Hits != 0 || st.Invalidated != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	if fp := summaryFPs(a)["mid"]; strings.Contains(fp, "R") {
		t.Fatalf("mid unexpectedly refs: %s", fp)
	}

	// Body edit: w now also reads *p. Summary gains a Ref path at the
	// same depth, the aux specs stay identical → firewall holds.
	a, err = sess.Update(firewallUnits(`void w(int *p) { int t = *p; *p = t + 1; }`))
	if err != nil {
		t.Fatal(err)
	}
	if st := sess.ArtifactStats(); st.Invalidated != 1 || st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("firewall stats = %+v (want 1 invalidated, 2 hits)", st)
	}
	// The retained callers' summaries must still reflect the new callee
	// summary (summary changes propagate even when artifacts are kept).
	if fp := summaryFPs(a)["mid"]; !strings.Contains(fp, "R") {
		t.Fatalf("mid summary not repropagated: %s", fp)
	}

	// Signature edit: w now also modifies the global — new aux specs, so
	// the invalidation wave reaches every transitive caller.
	_, err = sess.Update(firewallUnits(`void w(int *p) { *p = 1; gg = 2; }`))
	if err != nil {
		t.Fatal(err)
	}
	if st := sess.ArtifactStats(); st.Invalidated != 3 || st.Hits != 0 {
		t.Fatalf("signature-change stats = %+v (want 3 invalidated)", st)
	}
}

func TestSessionDuplicateFunctionRejected(t *testing.T) {
	units := []minic.NamedSource{
		{Name: "a.mc", Src: "int f() { return 1; }"},
		{Name: "b.mc", Src: "int f() { return 2; }"},
	}
	_, err := core.BuildFromSource(units, core.BuildOptions{})
	if err == nil || !strings.Contains(err.Error(), "duplicate function") {
		t.Fatalf("err = %v", err)
	}
}

// TestSessionUndefinedCallee pins the external-call model: calling a
// function with no definition is not an error (checkers model externals by
// name), and a later update that defines the callee invalidates the caller.
func TestSessionUndefinedCallee(t *testing.T) {
	caller := minic.NamedSource{Name: "a.mc", Src: "int use(int *p) { return helper2(p); }"}
	sess := core.NewSession(core.BuildOptions{})
	if _, err := sess.Update([]minic.NamedSource{caller}); err != nil {
		t.Fatalf("extern call rejected: %v", err)
	}
	if st := sess.ArtifactStats(); st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	_, err := sess.Update([]minic.NamedSource{
		caller,
		{Name: "b.mc", Src: "int helper2(int *p) { return *p; }"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := sess.ArtifactStats(); st.Invalidated != 1 || st.Misses != 1 {
		t.Fatalf("extern→defined stats = %+v (want caller invalidated, callee missed)", st)
	}
}

// TestSessionParseErrorNoPartialState: a parse error in a later unit fails
// the whole Update and leaves the session exactly as before — the next
// Update behaves as if the failed one never happened.
func TestSessionParseErrorNoPartialState(t *testing.T) {
	good := []minic.NamedSource{
		{Name: "a.mc", Src: "void w(int *p) { *p = 1; }"},
		{Name: "b.mc", Src: "void mid(int *p) { w(p); }"},
	}
	sess := core.NewSession(core.BuildOptions{})
	first, err := sess.Update(good)
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]minic.NamedSource(nil), good...)
	bad = append(bad, minic.NamedSource{Name: "c.mc", Src: "void broken( {"})
	if _, err := sess.Update(bad); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("err = %v", err)
	}
	if sess.Analysis() != first {
		t.Fatal("failed update replaced the committed analysis")
	}

	fixed := append([]minic.NamedSource(nil), good...)
	fixed = append(fixed, minic.NamedSource{Name: "c.mc", Src: "void ok(int *p) { mid(p); }"})
	warm, err := sess.Update(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if st := sess.ArtifactStats(); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("post-failure stats = %+v (want 2 hits, 1 miss)", st)
	}
	cold, err := core.BuildFromSource(fixed, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, "post-failure", warm, cold, 1)
}

func TestSessionRepeatedUpdateAllHits(t *testing.T) {
	gen := workload.Generate(workload.Subjects[0], workload.GenOptions{})
	sess := core.NewSession(core.BuildOptions{})
	first, err := sess.Update(gen.Units)
	if err != nil {
		t.Fatal(err)
	}
	if first.Artifacts.Misses != first.Sizes.Functions {
		t.Fatalf("cold build artifacts = %+v for %d functions", first.Artifacts, first.Sizes.Functions)
	}
	second, err := sess.Update(gen.Units)
	if err != nil {
		t.Fatal(err)
	}
	st := sess.ArtifactStats()
	if st.Hits != first.Sizes.Functions || st.Misses != 0 || st.Invalidated != 0 {
		t.Fatalf("warm stats = %+v", st)
	}
	if second.Sizes != first.Sizes {
		t.Fatalf("sizes drifted: %+v vs %+v", second.Sizes, first.Sizes)
	}
}

func TestSessionObsArtifactCounters(t *testing.T) {
	rec := obs.New()
	units := []minic.NamedSource{
		{Name: "a.mc", Src: "void w(int *p) { *p = 1; }"},
		{Name: "b.mc", Src: "void mid(int *p) { w(p); }"},
	}
	sess := core.NewSession(core.BuildOptions{Obs: rec})
	if _, err := sess.Update(units); err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter("build.artifact.misses").Value(); got != 2 {
		t.Fatalf("misses counter = %d", got)
	}
	units[0].Src = "void w(int *p) { *p = 2; }"
	if _, err := sess.Update(units); err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter("build.artifact.hits").Value(); got != 1 {
		t.Fatalf("hits counter = %d", got)
	}
	if got := rec.Counter("build.artifact.invalidated").Value(); got != 1 {
		t.Fatalf("invalidated counter = %d", got)
	}
}
