package core_test

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/workload"
)

// workerLadder is the worker-count set the determinism contract is
// stated over: sequential, minimal parallelism, and the full machine.
func workerLadder() []int {
	ladder := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		ladder = append(ladder, p)
	}
	return ladder
}

// TestBuildWavefrontColdEquivalence builds the same subject cold at
// every ladder worker count and requires byte-identical reports, equal
// artifact fingerprints, and equal size/PTA statistics. It also pins
// the Timings.SEG attribution fix: the fused pta+seg stage must book
// nonzero time to both halves.
func TestBuildWavefrontColdEquivalence(t *testing.T) {
	gen := workload.Generate(workload.Subjects[2], workload.GenOptions{Scale: 120, Taint: true})
	var base *core.Analysis
	var baseFP string
	for _, w := range workerLadder() {
		sess := core.NewSession(core.BuildOptions{Workers: w})
		a, err := sess.Update(gen.Units)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if a.Timings.PTA <= 0 || a.Timings.SEG <= 0 {
			t.Fatalf("workers=%d: fused stage attribution PTA=%v SEG=%v, want both > 0", w, a.Timings.PTA, a.Timings.SEG)
		}
		fp := sess.ArtifactFingerprint()
		if base == nil {
			base, baseFP = a, fp
			continue
		}
		if fp != baseFP {
			t.Fatalf("workers=%d: artifact fingerprint differs from workers=1", w)
		}
		checkEquivalent(t, "cold", a, base, w)
	}
}

// TestBuildWavefrontWarmEquivalence edits one unit and re-updates at
// every ladder worker count; each warm result must match both the other
// worker counts and a cold build of the edited program.
func TestBuildWavefrontWarmEquivalence(t *testing.T) {
	gen := workload.Generate(workload.Subjects[2], workload.GenOptions{Scale: 140, Taint: true})
	if len(gen.Units) < 2 {
		t.Fatalf("workload has %d units; want multi-unit", len(gen.Units))
	}
	edited := make([]minic.NamedSource, len(gen.Units))
	copy(edited, gen.Units)
	edited[1] = editUnit(t, edited[1])

	cold, err := core.BuildFromSource(edited, core.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var baseFP string
	for _, w := range workerLadder() {
		sess := core.NewSession(core.BuildOptions{Workers: w})
		if _, err := sess.Update(gen.Units); err != nil {
			t.Fatalf("workers=%d cold: %v", w, err)
		}
		warm, err := sess.Update(edited)
		if err != nil {
			t.Fatalf("workers=%d warm: %v", w, err)
		}
		if warm.Artifacts.Hits == 0 {
			t.Fatalf("workers=%d: warm update had no artifact hits: %+v", w, warm.Artifacts)
		}
		fp := sess.ArtifactFingerprint()
		if baseFP == "" {
			baseFP = fp
		} else if fp != baseFP {
			t.Fatalf("workers=%d: warm artifact fingerprint differs", w)
		}
		checkEquivalent(t, "warm", warm, cold, w)
	}
}

// cycleUnits is a program whose call graph has a genuine multi-function
// SCC (ping↔pong) with callers above it and a leaf below it, so editing
// inside the cycle exercises the SCC-frontier recompute path.
func cycleUnits(pongBody string) []minic.NamedSource {
	return []minic.NamedSource{
		{Name: "leaf.mc", Src: "void leaf(int *p) { *p = 7; }"},
		{Name: "cycle.mc", Src: "void ping(int *p, int n) { if (n > 0) { pong(p, n - 1); } }\n" +
			"void pong(int *p, int n) { " + pongBody + " ping(p, n); leaf(p); }"},
		{Name: "main.mc", Src: "void drive(int *buf) { ping(buf, 3); int v = *buf; report(v); }"},
	}
}

// TestBuildWavefrontCycleFrontier edits a function inside a call-graph
// cycle and checks the SCC-frontier recompute stays deterministic: the
// same artifact stats and fingerprints at every ladder worker count,
// matching a cold build of the edited program.
func TestBuildWavefrontCycleFrontier(t *testing.T) {
	before := cycleUnits("*p = n;")
	after := cycleUnits("*p = n + 1;")
	cold, err := core.BuildFromSource(after, core.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var baseFP string
	var baseStats core.ArtifactStats
	for _, w := range workerLadder() {
		sess := core.NewSession(core.BuildOptions{Workers: w})
		if _, err := sess.Update(before); err != nil {
			t.Fatalf("workers=%d cold: %v", w, err)
		}
		warm, err := sess.Update(after)
		if err != nil {
			t.Fatalf("workers=%d frontier: %v", w, err)
		}
		fp := sess.ArtifactFingerprint()
		if baseFP == "" {
			baseFP, baseStats = fp, warm.Artifacts
		} else {
			if fp != baseFP {
				t.Fatalf("workers=%d: frontier fingerprint differs", w)
			}
			if warm.Artifacts != baseStats {
				t.Fatalf("workers=%d: artifact stats %+v != %+v", w, warm.Artifacts, baseStats)
			}
		}
		checkEquivalent(t, "frontier", warm, cold, w)
	}
}

// TestBuildWavefrontErrorUnchanged injects a lowering error into one
// unit of a multi-unit program so the failure surfaces mid-wavefront
// while independent nodes are in flight: the session must stay exactly
// as committed, and a following good update must succeed.
func TestBuildWavefrontErrorUnchanged(t *testing.T) {
	good := cycleUnits("*p = n;")
	bad := make([]minic.NamedSource, len(good))
	copy(bad, good)
	bad[1] = minic.NamedSource{
		Name: good[1].Name,
		Src:  strings.Replace(good[1].Src, "*p = n;", "*p = oops;", 1),
	}
	for _, w := range workerLadder() {
		sess := core.NewSession(core.BuildOptions{Workers: w})
		first, err := sess.Update(good)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		fp := sess.ArtifactFingerprint()
		if _, err := sess.Update(bad); err == nil || !strings.Contains(err.Error(), "undefined variable") {
			t.Fatalf("workers=%d: err = %v, want undefined-variable lowering error", w, err)
		}
		if sess.Analysis() != first {
			t.Fatalf("workers=%d: failed update replaced the committed analysis", w)
		}
		if got := sess.ArtifactFingerprint(); got != fp {
			t.Fatalf("workers=%d: failed update mutated artifacts", w)
		}
		again, err := sess.Update(good)
		if err != nil {
			t.Fatalf("workers=%d: update after failure: %v", w, err)
		}
		checkEquivalent(t, "post-failure", again, first, w)
	}
}

// TestBuildWavefrontWidthGauge checks the scheduler surfaces its peak
// width: a program with several independent functions must expose
// width > 1, and the gauge must be set on both session and monolithic
// build paths.
func TestBuildWavefrontWidthGauge(t *testing.T) {
	gen := workload.Generate(workload.Subjects[0], workload.GenOptions{Scale: 20})
	rec := obs.New()
	sess := core.NewSession(core.BuildOptions{Workers: 2, Obs: rec})
	if _, err := sess.Update(gen.Units); err != nil {
		t.Fatal(err)
	}
	if got := rec.Gauge("modref.wavefront_width").Value(); got <= 1 {
		t.Fatalf("session wavefront width gauge = %d, want > 1", got)
	}
	rec2 := obs.New()
	if _, err := core.BuildFromSource(gen.Units, core.BuildOptions{Workers: 2, Obs: rec2}); err != nil {
		t.Fatal(err)
	}
	if got := rec2.Gauge("modref.wavefront_width").Value(); got < 1 {
		t.Fatalf("build wavefront width gauge = %d, want >= 1", got)
	}
}
