package core_test

import (
	"bytes"
	"os"
	"runtime"
	"testing"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/store"
	"repro/internal/workload"
)

// openDisk opens a DiskStore in dir, failing the test on error.
func openDisk(t *testing.T, dir string, maxResident int64) *store.DiskStore {
	t.Helper()
	st, err := store.Open(dir, store.DiskOptions{MaxResidentBytes: maxResident})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSessionStoreWarmRestartEquivalence is the persistent-store contract:
// a fresh session pointed at a populated store directory — a restarted
// server — must produce reports byte-identical to a cold build AND to an
// in-process warm session, while rebuilding zero unchanged artifacts.
func TestSessionStoreWarmRestartEquivalence(t *testing.T) {
	gen := workload.Generate(workload.Subjects[2], workload.GenOptions{Scale: 140, Taint: true})

	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		dir := t.TempDir()
		specs := checkers.All()
		dopts := detect.Options{Workers: workers}

		// Cold: no store at all.
		cold := core.NewSession(core.BuildOptions{Workers: workers})
		coldA, err := cold.Update(gen.Units)
		if err != nil {
			t.Fatal(err)
		}
		coldRes := normalizeResults(coldA.CheckAll(specs, dopts))

		// First process: populate the store.
		st1 := openDisk(t, dir, 0)
		s1 := core.NewSession(core.BuildOptions{Workers: workers, Store: st1})
		a1, err := s1.Update(gen.Units)
		if err != nil {
			t.Fatal(err)
		}
		if hits := s1.ArtifactStats().StoreHits; hits != 0 {
			t.Fatalf("first build had %d store hits; want 0", hits)
		}
		warmRes := normalizeResults(a1.CheckAll(specs, dopts))
		if err := st1.Close(); err != nil {
			t.Fatal(err)
		}

		// Second process: same directory, empty memory.
		st2 := openDisk(t, dir, 0)
		s2 := core.NewSession(core.BuildOptions{Workers: workers, Store: st2})
		a2, err := s2.Update(gen.Units)
		if err != nil {
			t.Fatal(err)
		}
		stats := s2.ArtifactStats()
		if stats.Misses != 0 || stats.Invalidated != 0 {
			t.Fatalf("warm restart rebuilt artifacts: %+v", stats)
		}
		if stats.StoreHits != stats.Hits || stats.StoreHits == 0 {
			t.Fatalf("warm restart stats %+v: want every hit store-loaded", stats)
		}
		restartRes := normalizeResults(a2.CheckAll(specs, dopts))
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}

		cb := reportsJSON(t, coldRes.Reports)
		wb := reportsJSON(t, warmRes.Reports)
		rb := reportsJSON(t, restartRes.Reports)
		if !bytes.Equal(rb, cb) {
			t.Fatalf("workers=%d: restart reports differ from cold\nrestart: %s\ncold: %s", workers, rb, cb)
		}
		if !bytes.Equal(rb, wb) {
			t.Fatalf("workers=%d: restart reports differ from in-process warm", workers)
		}
		if coldA.Sizes != a2.Sizes {
			t.Fatalf("workers=%d: sizes differ: cold %+v restart %+v", workers, coldA.Sizes, a2.Sizes)
		}
		if coldA.PTAStats != a2.PTAStats {
			t.Fatalf("workers=%d: PTA stats differ", workers)
		}
	}
}

// TestSessionStoreWarmRestartAfterEdit checks the harder path: the store
// was populated, the process restarted, AND the sources changed. Unedited
// functions load from disk; the edit's invalidation frontier rebuilds; the
// result matches a cold build of the edited program.
func TestSessionStoreWarmRestartAfterEdit(t *testing.T) {
	gen := workload.Generate(workload.Subjects[2], workload.GenOptions{Scale: 140, Taint: true})
	if len(gen.Units) < 2 {
		t.Fatalf("workload has %d units; want multi-unit", len(gen.Units))
	}
	dir := t.TempDir()

	st1 := openDisk(t, dir, 0)
	s1 := core.NewSession(core.BuildOptions{Store: st1})
	if _, err := s1.Update(gen.Units); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	editedUnits := append(gen.Units[:0:0], gen.Units...)
	editedUnits[0] = editUnit(t, editedUnits[0])

	st2 := openDisk(t, dir, 0)
	s2 := core.NewSession(core.BuildOptions{Store: st2})
	a2, err := s2.Update(editedUnits)
	if err != nil {
		t.Fatal(err)
	}
	stats := s2.ArtifactStats()
	if stats.StoreHits == 0 {
		t.Fatalf("edited restart loaded nothing: %+v", stats)
	}
	if stats.Invalidated+stats.Misses == 0 {
		t.Fatalf("edited restart rebuilt nothing: %+v", stats)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	cold := core.NewSession(core.BuildOptions{})
	coldA, err := cold.Update(editedUnits)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, "edited-restart", a2, coldA, 1)
}

// TestSessionStoreVerdictPersistence checks the second half of the store
// contract: SMT verdicts written through during one process's CheckAll are
// replayed from disk by a restarted process, so the restart solves (almost)
// nothing while reporting byte-identical results. "Almost": Unknown
// verdicts are deliberately never persisted, so at most those re-solve.
func TestSessionStoreVerdictPersistence(t *testing.T) {
	gen := workload.Generate(workload.Subjects[2], workload.GenOptions{Scale: 140, Taint: true})
	specs := checkers.All()
	dopts := detect.Options{Workers: 1}
	dir := t.TempDir()

	sum := func(rs detect.Results) (solved, cached, unknown, queries int) {
		for _, cs := range rs.Checkers {
			solved += cs.Stats.SMTSolved
			cached += cs.Stats.SMTCacheHits
			unknown += cs.Stats.SMTUnknown
			queries += cs.Stats.SMTQueries
		}
		return
	}

	// Cold baseline, no store anywhere.
	cold := core.NewSession(core.BuildOptions{})
	coldA, err := cold.Update(gen.Units)
	if err != nil {
		t.Fatal(err)
	}
	coldRes := coldA.CheckAll(specs, dopts)
	// Read the counters before normalizeResults folds the cache-hit split.
	coldSolved, coldCached, coldUnknown, coldQueries := sum(coldRes)
	coldB := reportsJSON(t, normalizeResults(coldRes).Reports)
	if coldSolved == 0 {
		t.Fatal("baseline solved nothing; workload cannot exercise the verdict store")
	}

	// First process: detection writes verdicts through to the store.
	st1 := openDisk(t, dir, 0)
	s1 := core.NewSession(core.BuildOptions{Store: st1})
	a1, err := s1.Update(gen.Units)
	if err != nil {
		t.Fatal(err)
	}
	artRecords := st1.Stat().Records
	a1.CheckAll(specs, dopts)
	if got := st1.Stat().Records; got <= artRecords {
		t.Fatalf("CheckAll persisted no verdicts: %d records before, %d after", artRecords, got)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second process: same directory, empty memory.
	st2 := openDisk(t, dir, 0)
	s2 := core.NewSession(core.BuildOptions{Store: st2})
	a2, err := s2.Update(gen.Units)
	if err != nil {
		t.Fatal(err)
	}
	restartRes := a2.CheckAll(specs, dopts)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	solved, cached, _, queries := sum(restartRes)
	if got := reportsJSON(t, normalizeResults(restartRes).Reports); !bytes.Equal(got, coldB) {
		t.Fatalf("verdict-store restart changed reports\ngot: %s\nwant: %s", got, coldB)
	}
	if queries != coldQueries {
		t.Fatalf("restart issued %d SMT queries; cold issued %d", queries, coldQueries)
	}
	if solved > coldUnknown {
		t.Fatalf("restart solved %d queries (want <= %d unpersisted Unknowns); cache replay failed", solved, coldUnknown)
	}
	if solved+cached != coldSolved+coldCached {
		// The prefilter split is deterministic, so the solve-or-cache total
		// must match; only the split inside it moves toward the cache.
		t.Fatalf("restart solved+cached = %d; cold = %d", solved+cached, coldSolved+coldCached)
	}
}

// TestSessionStoreCorruption covers the crash-safety contract end to end:
// a truncated or bit-flipped store log is detected, the affected artifacts
// rebuild from source, and reports never differ from a cold build.
func TestSessionStoreCorruption(t *testing.T) {
	gen := workload.Generate(workload.Subjects[2], workload.GenOptions{Scale: 140, Taint: true})
	specs := checkers.All()
	dopts := detect.Options{Workers: 1}

	cold := core.NewSession(core.BuildOptions{})
	coldA, err := cold.Update(gen.Units)
	if err != nil {
		t.Fatal(err)
	}
	coldB := reportsJSON(t, normalizeResults(coldA.CheckAll(specs, dopts)).Reports)

	corrupt := func(t *testing.T, name string, mutate func(t *testing.T, path string)) {
		dir := t.TempDir()
		st1 := openDisk(t, dir, 0)
		s1 := core.NewSession(core.BuildOptions{Store: st1})
		if _, err := s1.Update(gen.Units); err != nil {
			t.Fatal(err)
		}
		if err := st1.Close(); err != nil {
			t.Fatal(err)
		}
		mutate(t, store.LogPath(dir))

		st2 := openDisk(t, dir, 0)
		defer st2.Close()
		s2 := core.NewSession(core.BuildOptions{Store: st2})
		a2, err := s2.Update(gen.Units)
		if err != nil {
			t.Fatal(err)
		}
		stats := s2.ArtifactStats()
		total := stats.Hits + stats.Misses + stats.Invalidated
		if stats.Misses+stats.Invalidated == 0 {
			t.Fatalf("%s: corruption rebuilt nothing (%+v) — was it detected?", name, stats)
		}
		if stats.StoreHits+stats.Misses+stats.Invalidated < total {
			t.Fatalf("%s: inconsistent stats %+v", name, stats)
		}
		got := reportsJSON(t, normalizeResults(a2.CheckAll(specs, dopts)).Reports)
		if !bytes.Equal(got, coldB) {
			t.Fatalf("%s: corrupted store produced different reports\ngot: %s\nwant: %s", name, got, coldB)
		}
	}

	corrupt(t, "truncated-tail", func(t *testing.T, path string) {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()*2/3); err != nil {
			t.Fatal(err)
		}
	})
	corrupt(t, "bit-flip", func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x20
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
	})
}
