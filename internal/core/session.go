// Incremental artifact-based builds.
//
// A Session keeps the per-function outputs of every pipeline stage —
// lowered CFG IR, SSA info, Mod/Ref summary, connector signature, local
// points-to facts, and the SEG — as artifacts in a content-addressed store.
// Update diffs the incoming translation units against the previous ones and
// rebuilds only what a change can actually reach:
//
//   - a unit whose source hash is unchanged is not re-parsed;
//   - a function whose AST hash (structure, literals, positions, unit
//     index) is unchanged keeps its artifacts unless a dependency demands
//     otherwise;
//   - Mod/Ref summaries are recomputed bottom-up over the AST-level call
//     graph, but only for SCCs containing an edited function or calling a
//     function whose summary fingerprint changed — the classic
//     change-propagation frontier;
//   - transform/PTA/SEG artifacts are keyed by a dependency fingerprint:
//     the function's own connector signature plus the signatures of
//     everything it calls. The early-cutoff firewall lives here: an edited
//     callee whose connector signature (return type, parameter types, aux
//     specs) is unchanged does not invalidate its callers' artifacts, even
//     though its own body was rebuilt.
//
// Everything rebuilt is lowered from the cached AST with the same
// deterministic per-declaration lowering the monolithic pipeline uses, so a
// warm Update yields an Analysis whose reports, witnesses, and size
// statistics are byte-identical to a from-scratch build of the same
// sources. Session state is only committed once the whole update has
// succeeded; a parse or lowering error leaves the previous state intact.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/modref"
	"repro/internal/obs"
	"repro/internal/pta"
	"repro/internal/seg"
	"repro/internal/ssa"
	"repro/internal/store"
	"repro/internal/transform"
)

// ArtifactStats counts artifact-store outcomes of one Session.Update:
// Hits are functions whose artifacts were reused untouched, Misses are
// functions built for the first time, Invalidated are functions whose prior
// artifacts were discarded and rebuilt. Misses+Invalidated is the dirty
// frontier actually recomputed. StoreHits counts artifacts warm-loaded from
// the persistent store this Update (a subset of Hits unless a dependency
// change invalidated the loaded artifact anyway).
type ArtifactStats struct {
	Hits        int
	Misses      int
	Invalidated int
	StoreHits   int
}

// funcArtifact is the cached per-function build output, valid as long as
// its astHash and depFP match the current program.
type funcArtifact struct {
	astHash string // AST content hash + unit index
	sumFP   string // Mod/Ref summary fingerprint
	sigFP   string // connector signature fingerprint
	depFP   string // sigFP + callee sigFPs: transform/SEG validity key
	decl    *minic.FuncDecl
	callees []string
	sum     *modref.Summary
	fn      *ir.Func // lowered, SSA-converted, connector-transformed
	info    *ssa.Info
	seg     *seg.Graph
	// Size counters snapshotted right after the build: detection later
	// grows cond nodes and SEG value nodes in place, so live recounts of
	// retained artifacts would drift from a cold build's numbers.
	segNodes  int
	segEdges  int
	condNodes int
	ptaStats  pta.Stats
	// persistedMeta is the artifactMeta the persistent store last accepted
	// for this function ("" = never persisted). Commit re-encodes whenever
	// the live metadata differs — including the firewall case, where a
	// retained artifact's summary is refreshed without a rebuild.
	persistedMeta string
}

// Session is an incremental analysis pipeline. Create one with NewSession,
// then call Update with the full set of translation units after every edit;
// unchanged functions are served from the artifact store.
type Session struct {
	opts BuildOptions
	// persistDetect keeps detection caches alive across Update/CheckAll
	// calls. NewSession enables it; the throwaway session behind
	// BuildFromSource does not, preserving the historical cold-start
	// CheckAll behavior that scaling measurements depend on.
	persistDetect bool

	files     map[string]*minic.File // unit source hash → parsed file
	progFP    string                 // globals/structs/unit-shape fingerprint
	artifacts map[string]*funcArtifact
	order     []string // committed declaration order of the artifact map
	analysis  *Analysis
	stats     ArtifactStats // last Update's counters
	// store is the persistent artifact/verdict backing, nil when the
	// configured Store cannot outlive the process (MemStore or none) —
	// in that case the encode/decode round-trip could never pay off and
	// the session behaves exactly like the historical memory-only one.
	store store.Store
	// Segment-ring bookkeeping for the persistent artifact store (see
	// artifact_codec.go). storeLoaded gates the one-time warm-load pass:
	// after the first successful Update the in-memory artifact map is the
	// authority and re-reading segments could only serve stale data.
	storeLoaded bool
	ring        segState
}

// NewSession returns an empty incremental session.
func NewSession(opts BuildOptions) *Session {
	s := newSession(opts)
	s.persistDetect = true
	return s
}

func newSession(opts BuildOptions) *Session {
	s := &Session{
		opts:      opts,
		files:     make(map[string]*minic.File),
		artifacts: make(map[string]*funcArtifact),
	}
	if opts.Store != nil && opts.Store.Persistent() {
		s.store = opts.Store
	}
	return s
}

// ArtifactStats reports the artifact-store counters of the last Update.
func (s *Session) ArtifactStats() ArtifactStats { return s.stats }

// ArtifactCount reports the number of per-function artifacts currently
// retained in the content-addressed store.
func (s *Session) ArtifactCount() int { return len(s.artifacts) }

// UnitCount reports the number of distinct translation-unit sources whose
// parses are currently cached.
func (s *Session) UnitCount() int { return len(s.files) }

// Analysis returns the analysis committed by the last successful Update
// (nil before the first).
func (s *Session) Analysis() *Analysis { return s.analysis }

// fnState is the per-function bookkeeping of one Update in progress.
type fnState struct {
	decl    *minic.FuncDecl
	astHash string
	callees []string
	old     *funcArtifact // nil when new or program-shape invalidated

	sum   *modref.Summary
	sumFP string
	sigFP string
	depFP string

	rebuild bool
	fn      *ir.Func
	info    *ssa.Info
}

// Update analyzes units incrementally against the session's previous state.
// On success the new state is committed and the fresh Analysis returned; on
// error the session is left exactly as before the call.
func (s *Session) Update(units []minic.NamedSource) (*Analysis, error) {
	rec := s.opts.Obs
	var tm Timings

	// ---- Parse: re-parse only units whose source hash changed. All
	// parsing happens before any shared AST is touched, so a syntax error
	// in a later unit cannot leak partial state.
	sp := rec.Phase("parse")
	t0 := time.Now()
	hashes := make([]string, len(units))
	parsed := make([]*minic.File, len(units))
	for i, u := range units {
		h := minic.HashSource(u.Name, u.Src)
		hashes[i] = h
		if f, ok := s.files[h]; ok {
			parsed[i] = f
			continue
		}
		f, err := minic.ParseFile(u.Name, u.Src)
		if err != nil {
			return nil, fmt.Errorf("parse: parsing %s: %w", u.Name, err)
		}
		parsed[i] = f
	}
	for i, f := range parsed {
		for _, fn := range f.Funcs {
			fn.Unit = i
		}
	}
	tm.Parse = time.Since(t0)
	sp.End()

	prog := &minic.Program{Files: parsed}
	sigs := lower.Sigs(prog)
	structs := lower.Structs(prog)
	globalTypes := make(map[string]minic.Type)
	for _, f := range parsed {
		for _, g := range f.Globals {
			globalTypes[g.Name] = g.Type
		}
	}

	// ---- Program-shape fingerprint: globals, structs, and the unit list
	// are whole-program inputs to lowering; any change invalidates every
	// artifact (rare, and cheap to detect).
	progFP := programShapeFP(parsed)
	shapeChanged := progFP != s.progFP

	// ---- Function table, duplicate detection, AST-level dirtiness.
	order := make([]string, 0, len(s.artifacts))
	states := make(map[string]*fnState)
	var stats ArtifactStats
	for _, f := range parsed {
		for _, fn := range f.Funcs {
			if prev, ok := states[fn.Name]; ok {
				return nil, fmt.Errorf("lower: duplicate function %q (at %s and %s)", fn.Name, prev.decl.Pos, fn.Pos)
			}
			st := &fnState{
				decl:    fn,
				astHash: minic.HashFunc(fn) + "#" + strconv.Itoa(fn.Unit),
				callees: minic.CalleeNames(fn),
			}
			if !shapeChanged {
				st.old = s.artifacts[fn.Name]
			}
			states[fn.Name] = st
			order = append(order, fn.Name)
		}
	}
	// ---- Warm-load: the first Update of a session reads the persistent
	// store's artifact segments in one pass (a restarted server arrives
	// here with an empty in-memory map). Segments carry the program-shape
	// fingerprint they were built under, so a shape change reads as a miss
	// — the same rule shapeChanged applies to the in-memory map. Any
	// decode failure (truncated, bit-flipped, stale codec) is also just a
	// miss: corruption costs a rebuild, never a wrong artifact.
	ring := s.ring
	if s.store != nil && !s.storeLoaded {
		sp := rec.Phase("store.load")
		t0 := time.Now()
		var loaded map[string]*funcArtifact
		loaded, ring = loadSegments(s.store, progFP, rec)
		for _, name := range order {
			st := states[name]
			if st.old != nil {
				continue
			}
			if art := loaded[name]; art != nil {
				st.old = art
				stats.StoreHits++
			}
		}
		if rec != nil {
			rec.Counter("store.artifact.loads").Add(int64(stats.StoreHits))
		}
		tm.StoreLoad = time.Since(t0)
		sp.End()
	}

	dirty := func(st *fnState) bool {
		return st.old == nil || st.old.astHash != st.astHash
	}

	// ---- Module shell: globals must exist before any lowering (lowering
	// resolves global references through the module).
	m := ir.NewModule()
	m.Units = len(parsed)
	for _, f := range parsed {
		for _, g := range f.Globals {
			m.AddGlobal(&ir.Global{Name: g.Name, Type: g.Type})
		}
	}

	// ---- Lower + SSA the AST-dirty functions on the worker pool. These
	// are rebuilt unconditionally; clean functions are lowered later only
	// if summary recomputation or dependency changes demand it.
	var dirtyNames []string
	for _, name := range order {
		if dirty(states[name]) {
			dirtyNames = append(dirtyNames, name)
		}
	}
	lowerSSA := func(names []string) error {
		t0 := time.Now()
		sp := rec.Phase("lower")
		fns := make([]*ir.Func, len(names))
		for i, name := range names {
			lf, err := lower.FuncWith(m, states[name].decl, sigs, structs)
			if err != nil {
				return fmt.Errorf("lower: %w", err)
			}
			fns[i] = lf
		}
		tm.Lower += time.Since(t0)
		sp.End()
		sp = rec.Phase("ssa")
		t0 = time.Now()
		infos := make([]*ssa.Info, len(names))
		if err := forEachFunc(fns, s.opts.Workers, func(w, i int, f *ir.Func) error {
			defer perFunc(rec, w, "build.ssa", f.Name)()
			inf, err := ssa.Transform(f)
			if err != nil {
				return fmt.Errorf("ssa %s: %w", f.Name, err)
			}
			infos[i] = inf
			return nil
		}); err != nil {
			return err
		}
		for i, name := range names {
			states[name].fn = fns[i]
			states[name].info = infos[i]
		}
		tm.SSA += time.Since(t0)
		sp.End()
		return nil
	}
	if err := lowerSSA(dirtyNames); err != nil {
		return nil, err
	}

	// ---- Mod/Ref: bottom-up over AST-level SCCs, recomputing only the
	// frontier. A clean SCC none of whose external callees changed their
	// summary keeps its old fixpoint.
	sp = rec.Phase("modref")
	t0 = time.Now()
	sums := make(map[string]*modref.Summary, len(order))
	sumChanged := make(map[string]bool, len(order))
	ensureLowered := func(name string) error {
		if states[name].fn != nil {
			return nil
		}
		// Scratch-lower a clean function so its summary can be
		// recomputed; the result doubles as the rebuild IR if dependency
		// fingerprints later turn out to have changed.
		return lowerSSA([]string{name})
	}
	for _, scc := range astSCCs(order, states) {
		recompute := false
		for _, name := range scc {
			st := states[name]
			if dirty(st) || st.old.sum == nil {
				recompute = true
				break
			}
			for _, c := range st.callees {
				if sumChanged[c] {
					recompute = true
					break
				}
			}
			if recompute {
				break
			}
		}
		if !recompute {
			for _, name := range scc {
				st := states[name]
				sums[name] = st.old.sum
				st.sum, st.sumFP = st.old.sum, st.old.sumFP
			}
			continue
		}
		for _, name := range scc {
			if err := ensureLowered(name); err != nil {
				return nil, err
			}
			sums[name] = modref.NewSummary()
		}
		lookup := func(callee string) *modref.Summary { return sums[callee] }
		for changed := true; changed; {
			changed = false
			for _, name := range scc {
				if modref.AnalyzeFunc(states[name].fn, sums[name], lookup) {
					changed = true
				}
			}
		}
		for _, name := range scc {
			st := states[name]
			st.sum = sums[name]
			st.sumFP = st.sum.Fingerprint()
			if st.old == nil || st.old.sumFP != st.sumFP {
				sumChanged[name] = true
			}
		}
	}
	tm.ModRef = time.Since(t0)
	sp.End()

	// ---- Connector signatures and dependency fingerprints. The firewall:
	// a callee whose summary changed but whose signature fingerprint did
	// not leaves its callers' depFPs — and artifacts — untouched.
	for _, name := range order {
		st := states[name]
		st.sigFP = s.signatureFP(st, globalTypes)
	}
	sigOf := func(callee string) string {
		if st, ok := states[callee]; ok {
			return st.sigFP
		}
		return "extern"
	}
	for _, name := range order {
		st := states[name]
		h := sha256.New()
		fmt.Fprintf(h, "self\x00%s\x00", st.sigFP)
		for _, c := range st.callees {
			fmt.Fprintf(h, "callee\x00%s\x00%s\x00", c, sigOf(c))
		}
		st.depFP = hex.EncodeToString(h.Sum(nil))[:24]
		st.rebuild = dirty(st) || st.old.depFP != st.depFP
	}

	// ---- Lower + SSA the clean functions pulled in by dependency
	// changes (edited callee signatures), then account the store.
	var missing []string
	for _, name := range order {
		st := states[name]
		if st.rebuild && st.fn == nil {
			missing = append(missing, name)
		}
	}
	if err := lowerSSA(missing); err != nil {
		return nil, err
	}
	for _, name := range order {
		st := states[name]
		switch {
		case !st.rebuild:
			stats.Hits++
		case s.artifacts[name] != nil:
			stats.Invalidated++
		default:
			stats.Misses++
		}
	}

	// ---- Assemble the module in declaration order, mixing retained and
	// rebuilt functions, and apply the connector transformation to the
	// rebuilt subset. Retained functions already carry their final aux
	// signatures, which is exactly what rebuilt callers' call sites read.
	var rebuilt []*ir.Func
	for _, name := range order {
		st := states[name]
		if st.rebuild {
			m.AddFunc(st.fn)
			rebuilt = append(rebuilt, st.fn)
		} else {
			st.fn, st.info = st.old.fn, st.old.info
			m.AddFunc(st.fn)
		}
	}
	if !s.opts.DisableConnectors {
		sp = rec.Phase("transform")
		t0 = time.Now()
		err := transform.ApplyFuncs(m, rebuilt, func(f *ir.Func) *modref.Summary {
			return sums[f.Name]
		})
		if err != nil {
			return nil, fmt.Errorf("transform: %w", err)
		}
		tm.Transform = time.Since(t0)
		sp.End()
	}

	// ---- Local PTA + SEG for the rebuilt subset, fused per function as
	// in the monolithic pipeline, with size counters snapshotted while the
	// graphs are still pristine.
	sp = rec.Phase("pta+seg")
	t0 = time.Now()
	arts := make([]*funcArtifact, len(rebuilt))
	if err := forEachFunc(rebuilt, s.opts.Workers, func(w, i int, f *ir.Func) error {
		st := states[f.Name]
		endPTA := perFunc(rec, w, "build.pta", f.Name)
		pr, err := pta.Analyze(f, st.info, s.opts.PTA)
		endPTA()
		if err != nil {
			return fmt.Errorf("pta %s: %w", f.Name, err)
		}
		endSEG := perFunc(rec, w, "build.seg", f.Name)
		g := seg.Build(f, st.info, pr)
		endSEG()
		arts[i] = &funcArtifact{
			astHash:   st.astHash,
			sumFP:     st.sumFP,
			sigFP:     st.sigFP,
			depFP:     st.depFP,
			decl:      st.decl,
			callees:   st.callees,
			sum:       st.sum,
			fn:        f,
			info:      st.info,
			seg:       g,
			segNodes:  g.NumNodes(),
			segEdges:  g.NumEdges(),
			condNodes: st.info.Conds.NumNodes(),
			ptaStats:  pr.Stats,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	tm.PTA = time.Since(t0)
	sp.End()

	// ---- Commit: from here on nothing can fail.
	newArts := make(map[string]*funcArtifact, len(order))
	ri := 0
	for _, name := range order {
		st := states[name]
		if st.rebuild {
			newArts[name] = arts[ri]
			ri++
			continue
		}
		// Retain the built IR/SEG but refresh the metadata: the firewall
		// keeps artifacts alive across summary changes whose signature is
		// stable, so the stored summary must be this update's, not the
		// one the artifact was originally built under.
		art := *st.old
		art.astHash, art.decl, art.callees = st.astHash, st.decl, st.callees
		art.sum, art.sumFP, art.sigFP, art.depFP = st.sum, st.sumFP, st.sigFP, st.depFP
		newArts[name] = &art
	}

	// ---- Persist: bundle every artifact whose on-disk record is missing
	// or stale into one segment — a delta holding just the change set, or
	// a rewritten full snapshot when the delta ring is exhausted or the
	// change touched most of the program. Store errors are swallowed —
	// persistence buys warmth, and a failed write must not fail a build
	// that already succeeded.
	if s.store != nil {
		sp := rec.Phase("store.save")
		t0 := time.Now()
		ring, _ = persistChanged(s.store, rec, order, newArts, progFP, ring)
		tm.StoreSave = time.Since(t0)
		sp.End()
	}

	a := &Analysis{
		Module:    m,
		Infos:     make(map[*ir.Func]*ssa.Info, len(order)),
		SEGs:      make(map[*ir.Func]*seg.Graph, len(order)),
		ModRef:    &modref.Result{Summaries: make(map[*ir.Func]*modref.Summary, len(order))},
		Timings:   tm,
		Artifacts: stats,
	}
	for _, name := range order {
		art := newArts[name]
		a.Infos[art.fn] = art.info
		a.SEGs[art.fn] = art.seg
		a.ModRef.Summaries[art.fn] = art.sum
		a.PTAStats.Add(art.ptaStats)
		a.Sizes.SEGNodes += art.segNodes
		a.Sizes.SEGEdges += art.segEdges
		a.Sizes.CondNodes += art.condNodes
	}
	a.Sizes.Lines = m.LineCount()
	a.Sizes.Functions = len(order)

	if s.persistDetect {
		var prev *detect.Program
		if s.analysis != nil {
			prev = s.analysis.Prog
		}
		a.Prog = detect.NewProgramFrom(prev, m, a.Infos, a.SEGs)
	} else {
		a.Prog = detect.NewProgram(m, a.Infos, a.SEGs)
	}
	if s.store != nil {
		// Back the SMT verdict cache with the same persistent store so a
		// restarted process replays verdicts it already solved.
		a.Prog.AttachStore(s.store)
	}

	if rec != nil {
		rec.Counter("build.artifact.hits").Add(int64(stats.Hits))
		rec.Counter("build.artifact.misses").Add(int64(stats.Misses))
		rec.Counter("build.artifact.invalidated").Add(int64(stats.Invalidated))
		emitBuildMetrics(rec, a)
	}

	files := make(map[string]*minic.File, len(parsed))
	for i, h := range hashes {
		files[h] = parsed[i]
	}
	s.files = files
	s.progFP = progFP
	s.artifacts = newArts
	s.order = order
	s.analysis = a
	s.stats = stats
	if s.store != nil {
		s.storeLoaded = true
		s.ring = ring
	}
	return a, nil
}

// persistChanged bundles every artifact whose on-disk record is missing or
// stale into one segment — a delta holding just the change set, or a
// rewritten full snapshot when the delta ring is exhausted or the change
// touched most of the program. Store errors are swallowed — persistence
// buys warmth, and a failed write must not fail a build that already
// succeeded. Returns the advanced ring state and the number of artifacts
// persisted.
func persistChanged(st store.Store, rec *obs.Recorder, order []string, arts map[string]*funcArtifact, progFP string, ring segState) (segState, int) {
	var changed []string
	for _, name := range order {
		art := arts[name]
		if art.persistedMeta != artifactMeta(progFP, art) {
			changed = append(changed, name)
		}
	}
	if len(changed) == 0 {
		return ring, 0
	}
	full := !ring.hasFull || ring.deltas >= maxDeltaSegments || 2*len(changed) >= len(order)
	key, names := segFullKey, order
	if !full {
		key, names = segDeltaKey(ring.deltas), changed
	}
	data, err := encodeSegment(progFP, ring.next, names, arts)
	if err != nil {
		return ring, 0
	}
	if err := st.Put(store.NSArtifact, key, data); err != nil {
		return ring, 0
	}
	for _, name := range names {
		art := arts[name]
		art.persistedMeta = artifactMeta(progFP, art)
	}
	ring.next++
	if full {
		ring.deltas, ring.hasFull = 0, true
	} else {
		ring.deltas++
	}
	if rec != nil {
		rec.Counter("store.artifact.saves").Add(int64(len(names)))
	}
	return ring, len(changed)
}

// Persist flushes any artifacts the persistent store does not yet hold in
// their committed form and reports how many it wrote. Update already
// persists at commit, so this is normally a no-op; the tenant layer calls
// it before evicting a session so a commit whose store write failed (store
// errors are swallowed) gets one more chance to reach disk, making
// "evict, then warm re-admit" lose at most performance, never artifacts.
// Without a persistent store it reports 0.
func (s *Session) Persist() int {
	if s.store == nil || s.analysis == nil {
		return 0
	}
	ring, n := persistChanged(s.store, s.opts.Obs, s.order, s.artifacts, s.progFP, s.ring)
	s.ring = ring
	return n
}

// signatureFP fingerprints a function's post-transform interface: return
// type, parameter types, and the aux specs the connector transformation
// will add for its summary. Everything a call site's lowering and rewriting
// reads from a callee is in here.
func (s *Session) signatureFP(st *fnState, globals map[string]minic.Type) string {
	var b strings.Builder
	b.WriteString("ret=")
	b.WriteString(st.decl.Ret.String())
	b.WriteString(";params=")
	ptypes := make([]minic.Type, len(st.decl.Params))
	for i, p := range st.decl.Params {
		ptypes[i] = p.Type
		b.WriteString(p.Type.String())
		b.WriteByte(',')
	}
	if !s.opts.DisableConnectors {
		in, out := transform.ConnectorSpecs(ptypes, globals, st.sum)
		b.WriteString(";aux=")
		for _, sp := range in {
			fmt.Fprintf(&b, "i%d@%s.%d,", sp.Root, sp.Global, sp.Depth)
		}
		for _, sp := range out {
			fmt.Fprintf(&b, "o%d@%s.%d,", sp.Root, sp.Global, sp.Depth)
		}
	}
	return b.String()
}

// programShapeFP fingerprints the whole-program lowering inputs: every
// global (order, name, type) and every struct layout. Unit identity is
// deliberately absent — it is already part of each function's AST hash
// (unit index plus file-qualified positions), so adding or removing a
// translation unit invalidates only the functions it actually repositions.
func programShapeFP(files []*minic.File) string {
	h := sha256.New()
	for _, f := range files {
		for _, g := range f.Globals {
			fmt.Fprintf(h, "global\x00%s\x00%s\x00", g.Name, g.Type)
		}
		for _, sd := range f.Structs {
			fmt.Fprintf(h, "struct\x00%s\x00", sd.Name)
			for _, fld := range sd.Fields {
				fmt.Fprintf(h, "field\x00%s\x00%s\x00", fld.Name, fld.Type)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// astSCCs computes strongly connected components of the AST-level call
// graph (name → defined callee names) in bottom-up, callee-first order.
func astSCCs(order []string, states map[string]*fnState) [][]string {
	index := make(map[string]int, len(order))
	low := make(map[string]int, len(order))
	onStack := make(map[string]bool, len(order))
	var stack []string
	var sccs [][]string
	counter := 0

	var strongconnect func(name string)
	strongconnect = func(name string) {
		index[name] = counter
		low[name] = counter
		counter++
		stack = append(stack, name)
		onStack[name] = true
		for _, c := range states[name].callees {
			if _, defined := states[c]; !defined {
				continue
			}
			if _, seen := index[c]; !seen {
				strongconnect(c)
				if low[c] < low[name] {
					low[name] = low[c]
				}
			} else if onStack[c] && index[c] < low[name] {
				low[name] = index[c]
			}
		}
		if low[name] == index[name] {
			var scc []string
			for {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[n] = false
				scc = append(scc, n)
				if n == name {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, name := range order {
		if _, seen := index[name]; !seen {
			strongconnect(name)
		}
	}
	return sccs
}
