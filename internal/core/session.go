// Incremental artifact-based builds.
//
// A Session keeps the per-function outputs of every pipeline stage —
// lowered CFG IR, SSA info, Mod/Ref summary, connector signature, local
// points-to facts, and the SEG — as artifacts in a content-addressed store.
// Update diffs the incoming translation units against the previous ones and
// rebuilds only what a change can actually reach:
//
//   - a unit whose source hash is unchanged is not re-parsed;
//   - a function whose AST hash (structure, literals, positions, unit
//     index) is unchanged keeps its artifacts unless a dependency demands
//     otherwise;
//   - Mod/Ref summaries are recomputed bottom-up over the AST-level call
//     graph, but only for SCCs containing an edited function or calling a
//     function whose summary fingerprint changed — the classic
//     change-propagation frontier;
//   - transform/PTA/SEG artifacts are keyed by a dependency fingerprint:
//     the function's own connector signature plus the signatures of
//     everything it calls. The early-cutoff firewall lives here: an edited
//     callee whose connector signature (return type, parameter types, aux
//     specs) is unchanged does not invalidate its callers' artifacts, even
//     though its own body was rebuilt.
//
// Everything rebuilt is lowered from the cached AST with the same
// deterministic per-declaration lowering the monolithic pipeline uses, so a
// warm Update yields an Analysis whose reports, witnesses, and size
// statistics are byte-identical to a from-scratch build of the same
// sources. Session state is only committed once the whole update has
// succeeded; a parse or lowering error leaves the previous state intact.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/conc"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/modref"
	"repro/internal/obs"
	"repro/internal/pta"
	"repro/internal/seg"
	"repro/internal/ssa"
	"repro/internal/store"
	"repro/internal/transform"
)

// ArtifactStats counts artifact-store outcomes of one Session.Update:
// Hits are functions whose artifacts were reused untouched, Misses are
// functions built for the first time, Invalidated are functions whose prior
// artifacts were discarded and rebuilt. Misses+Invalidated is the dirty
// frontier actually recomputed. StoreHits counts artifacts warm-loaded from
// the persistent store this Update (a subset of Hits unless a dependency
// change invalidated the loaded artifact anyway).
type ArtifactStats struct {
	Hits        int
	Misses      int
	Invalidated int
	StoreHits   int
}

// funcArtifact is the cached per-function build output, valid as long as
// its astHash and depFP match the current program.
type funcArtifact struct {
	astHash string // AST content hash + unit index
	sumFP   string // Mod/Ref summary fingerprint
	sigFP   string // connector signature fingerprint
	depFP   string // sigFP + callee sigFPs: transform/SEG validity key
	decl    *minic.FuncDecl
	callees []string
	sum     *modref.Summary
	fn      *ir.Func // lowered, SSA-converted, connector-transformed
	info    *ssa.Info
	seg     *seg.Graph
	// Size counters snapshotted right after the build: detection later
	// grows cond nodes and SEG value nodes in place, so live recounts of
	// retained artifacts would drift from a cold build's numbers.
	segNodes  int
	segEdges  int
	condNodes int
	ptaStats  pta.Stats
	// persistedMeta is the artifactMeta the persistent store last accepted
	// for this function ("" = never persisted). Commit re-encodes whenever
	// the live metadata differs — including the firewall case, where a
	// retained artifact's summary is refreshed without a rebuild.
	persistedMeta string
}

// Session is an incremental analysis pipeline. Create one with NewSession,
// then call Update with the full set of translation units after every edit;
// unchanged functions are served from the artifact store.
type Session struct {
	opts BuildOptions
	// persistDetect keeps detection caches alive across Update/CheckAll
	// calls. NewSession enables it; the throwaway session behind
	// BuildFromSource does not, preserving the historical cold-start
	// CheckAll behavior that scaling measurements depend on.
	persistDetect bool

	files     map[string]*minic.File // unit source hash → parsed file
	progFP    string                 // globals/structs/unit-shape fingerprint
	artifacts map[string]*funcArtifact
	order     []string // committed declaration order of the artifact map
	analysis  *Analysis
	stats     ArtifactStats // last Update's counters
	// store is the persistent artifact/verdict backing, nil when the
	// configured Store cannot outlive the process (MemStore or none) —
	// in that case the encode/decode round-trip could never pay off and
	// the session behaves exactly like the historical memory-only one.
	store store.Store
	// Segment-ring bookkeeping for the persistent artifact store (see
	// artifact_codec.go). storeLoaded gates the one-time warm-load pass:
	// after the first successful Update the in-memory artifact map is the
	// authority and re-reading segments could only serve stale data.
	storeLoaded bool
	ring        segState
}

// NewSession returns an empty incremental session.
func NewSession(opts BuildOptions) *Session {
	s := newSession(opts)
	s.persistDetect = true
	return s
}

func newSession(opts BuildOptions) *Session {
	s := &Session{
		opts:      opts,
		files:     make(map[string]*minic.File),
		artifacts: make(map[string]*funcArtifact),
	}
	if opts.Store != nil && opts.Store.Persistent() {
		s.store = opts.Store
	}
	return s
}

// ArtifactStats reports the artifact-store counters of the last Update.
func (s *Session) ArtifactStats() ArtifactStats { return s.stats }

// ArtifactCount reports the number of per-function artifacts currently
// retained in the content-addressed store.
func (s *Session) ArtifactCount() int { return len(s.artifacts) }

// UnitCount reports the number of distinct translation-unit sources whose
// parses are currently cached.
func (s *Session) UnitCount() int { return len(s.files) }

// ArtifactFingerprint digests the committed per-function artifact
// metadata (name, AST hash, summary/signature/dependency fingerprints)
// in declaration order. Two sessions that analyzed the same program —
// at any worker count, cold or warm — produce equal fingerprints; the
// build-determinism tests and bench.MeasureBuild gate on this.
func (s *Session) ArtifactFingerprint() string {
	h := sha256.New()
	for _, name := range s.order {
		art := s.artifacts[name]
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00%s\x00", name, art.astHash, art.sumFP, art.sigFP, art.depFP)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Analysis returns the analysis committed by the last successful Update
// (nil before the first).
func (s *Session) Analysis() *Analysis { return s.analysis }

// fnState is the per-function bookkeeping of one Update in progress.
// During the build wavefront each field is written only by the node that
// owns it (the function's L-node, its SCC's S-node, or its F-node) and
// read by dependent nodes after that node completed — the scheduler's
// dependency edges provide the happens-before ordering.
type fnState struct {
	decl    *minic.FuncDecl
	astHash string
	callees []string
	old     *funcArtifact // nil when new or program-shape invalidated

	sum        *modref.Summary
	sumFP      string
	sumChanged bool
	sigFP      string
	depFP      string

	rebuild   bool
	fn        *ir.Func  // freshly lowered this update (nil if not lowered)
	info      *ssa.Info // SSA info of fn
	finalFn   *ir.Func  // the function entering the committed module
	finalInfo *ssa.Info
	prep      *transform.Prepped // extended signature awaiting body rewrite
	art       *funcArtifact      // rebuilt artifact (F-node output)
}

// Update analyzes units incrementally against the session's previous state.
// On success the new state is committed and the fresh Analysis returned; on
// error the session is left exactly as before the call.
func (s *Session) Update(units []minic.NamedSource) (*Analysis, error) {
	rec := s.opts.Obs
	var tm Timings

	// ---- Parse: re-parse only units whose source hash changed, in
	// parallel per translation unit. All parsing happens before any
	// shared AST is touched, so a syntax error in a later unit cannot
	// leak partial state; conc.ForEach's lowest-index error contract
	// keeps the reported error independent of the worker count.
	sp := rec.Phase("parse")
	t0 := time.Now()
	hashes := make([]string, len(units))
	parsed := make([]*minic.File, len(units))
	var toParse []int
	for i, u := range units {
		h := minic.HashSource(u.Name, u.Src)
		hashes[i] = h
		if f, ok := s.files[h]; ok {
			parsed[i] = f
		} else {
			toParse = append(toParse, i)
		}
	}
	if err := conc.ForEach(len(toParse), s.opts.Workers, func(w, j int) error {
		i := toParse[j]
		defer perFunc(rec, w, "build.parse", units[i].Name)()
		f, err := minic.ParseFile(units[i].Name, units[i].Src)
		if err != nil {
			return fmt.Errorf("parse: parsing %s: %w", units[i].Name, err)
		}
		parsed[i] = f
		return nil
	}); err != nil {
		return nil, err
	}
	for i, f := range parsed {
		for _, fn := range f.Funcs {
			fn.Unit = i
		}
	}
	tm.Parse = time.Since(t0)
	sp.End()

	prog := &minic.Program{Files: parsed}
	sigs := lower.Sigs(prog)
	structs := lower.Structs(prog)
	globalTypes := make(map[string]minic.Type)
	for _, f := range parsed {
		for _, g := range f.Globals {
			globalTypes[g.Name] = g.Type
		}
	}

	// ---- Program-shape fingerprint: globals, structs, and the unit list
	// are whole-program inputs to lowering; any change invalidates every
	// artifact (rare, and cheap to detect).
	progFP := programShapeFP(parsed)
	shapeChanged := progFP != s.progFP

	// ---- Function table, duplicate detection, AST-level dirtiness.
	order := make([]string, 0, len(s.artifacts))
	states := make(map[string]*fnState)
	var stats ArtifactStats
	for _, f := range parsed {
		for _, fn := range f.Funcs {
			if prev, ok := states[fn.Name]; ok {
				return nil, fmt.Errorf("lower: duplicate function %q (at %s and %s)", fn.Name, prev.decl.Pos, fn.Pos)
			}
			st := &fnState{
				decl:    fn,
				astHash: minic.HashFunc(fn) + "#" + strconv.Itoa(fn.Unit),
				callees: minic.CalleeNames(fn),
			}
			if !shapeChanged {
				st.old = s.artifacts[fn.Name]
			}
			states[fn.Name] = st
			order = append(order, fn.Name)
		}
	}
	// ---- Warm-load: the first Update of a session reads the persistent
	// store's artifact segments in one pass (a restarted server arrives
	// here with an empty in-memory map). Segments carry the program-shape
	// fingerprint they were built under, so a shape change reads as a miss
	// — the same rule shapeChanged applies to the in-memory map. Any
	// decode failure (truncated, bit-flipped, stale codec) is also just a
	// miss: corruption costs a rebuild, never a wrong artifact.
	ring := s.ring
	if s.store != nil && !s.storeLoaded {
		sp := rec.Phase("store.load")
		t0 := time.Now()
		var loaded map[string]*funcArtifact
		loaded, ring = loadSegments(s.store, progFP, rec)
		for _, name := range order {
			st := states[name]
			if st.old != nil {
				continue
			}
			if art := loaded[name]; art != nil {
				st.old = art
				stats.StoreHits++
			}
		}
		if rec != nil {
			rec.Counter("store.artifact.loads").Add(int64(stats.StoreHits))
		}
		tm.StoreLoad = time.Since(t0)
		sp.End()
	}

	dirty := func(st *fnState) bool {
		return st.old == nil || st.old.astHash != st.astHash
	}

	// ---- Module shell: globals must exist before any lowering (lowering
	// resolves global references through the module).
	m := ir.NewModule()
	m.Units = len(parsed)
	for _, f := range parsed {
		for _, g := range f.Globals {
			m.AddGlobal(&ir.Global{Name: g.Name, Type: g.Type})
		}
	}

	// ---- Wavefront: everything between parsing and commit — lowering,
	// SSA, the Mod/Ref frontier recompute, connector fingerprints, the
	// connector transform, and PTA+SEG — runs as one dependency-counting
	// wavefront over the condensed AST call graph (see DESIGN.md
	// "Parallel build pipeline"). Three node kinds:
	//
	//   - an L-node per AST-dirty function lowers and SSA-converts it;
	//     L-nodes have no dependencies and run fully parallel;
	//   - an S-node per SCC decides whether the Mod/Ref fixpoint must be
	//     recomputed, scratch-lowers the clean members it needs, runs the
	//     fixpoint, derives signature/dependency fingerprints and the
	//     rebuild decision, and extends rebuilt members' signatures; it
	//     depends on its members' L-nodes and on its callee S-nodes;
	//   - an F-node per function finishes a rebuilt function — call-site
	//     rewriting, PTA, SEG, artifact assembly — depending only on its
	//     own S-node, so the expensive per-function tail never blocks the
	//     interprocedural frontier.
	//
	// Each node writes only fnState fields it owns and reads callee state
	// strictly after the owning node completed (the scheduler supplies
	// the happens-before edge). Summary merges are commutative set
	// unions and everything after the wavefront assembles in canonical
	// declaration order, so output is byte-identical at any worker count.
	var lowerNs, ssaNs, modrefNs, transformNs, ptaNs, segNs int64
	lowerOne := func(w int, name string) error {
		st := states[name]
		t1 := time.Now()
		endL := perFunc(rec, w, "build.lower", name)
		lf, err := lower.FuncWith(m, st.decl, sigs, structs)
		endL()
		atomic.AddInt64(&lowerNs, int64(time.Since(t1)))
		if err != nil {
			return fmt.Errorf("lower: %w", err)
		}
		t1 = time.Now()
		endS := perFunc(rec, w, "build.ssa", name)
		inf, err := ssa.Transform(lf)
		endS()
		atomic.AddInt64(&ssaNs, int64(time.Since(t1)))
		if err != nil {
			return fmt.Errorf("ssa %s: %w", name, err)
		}
		st.fn, st.info = lf, inf
		return nil
	}
	resolve := func(name string) *ir.Func {
		if st, ok := states[name]; ok {
			return st.finalFn
		}
		return nil
	}
	runSCC := func(w int, scc []string) error {
		// Mod/Ref: recompute only the frontier. A clean SCC none of whose
		// external callees changed their summary keeps its old fixpoint.
		// Callee sumChanged flags are final: their S-nodes completed.
		t1 := time.Now()
		recompute := false
		for _, name := range scc {
			st := states[name]
			if dirty(st) || st.old.sum == nil {
				recompute = true
				break
			}
			for _, c := range st.callees {
				if cs, ok := states[c]; ok && cs.sumChanged {
					recompute = true
					break
				}
			}
			if recompute {
				break
			}
		}
		if !recompute {
			for _, name := range scc {
				st := states[name]
				st.sum, st.sumFP = st.old.sum, st.old.sumFP
			}
			atomic.AddInt64(&modrefNs, int64(time.Since(t1)))
		} else {
			atomic.AddInt64(&modrefNs, int64(time.Since(t1)))
			for _, name := range scc {
				st := states[name]
				if st.fn == nil {
					// Scratch-lower a clean member so its summary can be
					// recomputed; the result doubles as the rebuild IR if
					// dependency fingerprints later turn out to have
					// changed.
					if err := lowerOne(w, name); err != nil {
						return err
					}
				}
				st.sum = modref.NewSummary()
			}
			lookup := func(callee string) *modref.Summary {
				if st, ok := states[callee]; ok {
					return st.sum
				}
				return nil
			}
			t1 = time.Now()
			for changed := true; changed; {
				changed = false
				for _, name := range scc {
					if modref.AnalyzeFunc(states[name].fn, states[name].sum, lookup) {
						changed = true
					}
				}
			}
			for _, name := range scc {
				st := states[name]
				st.sumFP = st.sum.Fingerprint()
				if st.old == nil || st.old.sumFP != st.sumFP {
					st.sumChanged = true
				}
			}
			atomic.AddInt64(&modrefNs, int64(time.Since(t1)))
		}

		// Connector signatures and dependency fingerprints. The firewall:
		// a callee whose summary changed but whose signature fingerprint
		// did not leaves its callers' depFPs — and artifacts — untouched.
		// Callee sigFPs are final (dependency S-nodes completed; same-SCC
		// members were fingerprinted in the loop above).
		for _, name := range scc {
			st := states[name]
			st.sigFP = s.signatureFP(st, globalTypes)
		}
		sigOf := func(callee string) string {
			if st, ok := states[callee]; ok {
				return st.sigFP
			}
			return "extern"
		}
		for _, name := range scc {
			st := states[name]
			h := sha256.New()
			fmt.Fprintf(h, "self\x00%s\x00", st.sigFP)
			for _, c := range st.callees {
				fmt.Fprintf(h, "callee\x00%s\x00%s\x00", c, sigOf(c))
			}
			st.depFP = hex.EncodeToString(h.Sum(nil))[:24]
			st.rebuild = dirty(st) || st.old.depFP != st.depFP
		}

		// Lower the clean members pulled in by dependency changes (edited
		// callee signatures) and pick what enters the committed module:
		// retained functions keep their old IR — scratch-lowered copies
		// made for summary recomputation are deliberately discarded.
		for _, name := range scc {
			st := states[name]
			if st.rebuild && st.fn == nil {
				if err := lowerOne(w, name); err != nil {
					return err
				}
			}
			if st.rebuild {
				st.finalFn, st.finalInfo = st.fn, st.info
			} else {
				st.finalFn, st.finalInfo = st.old.fn, st.old.info
			}
		}

		// Extend rebuilt members' signatures now so dependent S- and
		// F-nodes read final aux specs; bodies are rewritten in F-nodes.
		if !s.opts.DisableConnectors {
			t1 = time.Now()
			for _, name := range scc {
				st := states[name]
				if st.rebuild {
					st.prep = transform.Prep(m, st.finalFn, st.sum)
				}
			}
			atomic.AddInt64(&transformNs, int64(time.Since(t1)))
		}
		return nil
	}
	runFinish := func(w int, name string) error {
		st := states[name]
		if !st.rebuild {
			return nil
		}
		f := st.finalFn
		if st.prep != nil {
			t1 := time.Now()
			endT := perFunc(rec, w, "build.transform", name)
			err := st.prep.Rewrite(m, resolve)
			endT()
			atomic.AddInt64(&transformNs, int64(time.Since(t1)))
			if err != nil {
				return fmt.Errorf("transform: transform %s: %w", name, err)
			}
		}
		t1 := time.Now()
		endPTA := perFunc(rec, w, "build.pta", name)
		pr, err := pta.Analyze(f, st.finalInfo, s.opts.PTA)
		endPTA()
		atomic.AddInt64(&ptaNs, int64(time.Since(t1)))
		if err != nil {
			return fmt.Errorf("pta %s: %w", name, err)
		}
		t1 = time.Now()
		endSEG := perFunc(rec, w, "build.seg", name)
		g := seg.Build(f, st.finalInfo, pr)
		endSEG()
		atomic.AddInt64(&segNs, int64(time.Since(t1)))
		st.art = &funcArtifact{
			astHash:   st.astHash,
			sumFP:     st.sumFP,
			sigFP:     st.sigFP,
			depFP:     st.depFP,
			decl:      st.decl,
			callees:   st.callees,
			sum:       st.sum,
			fn:        f,
			info:      st.finalInfo,
			seg:       g,
			segNodes:  g.NumNodes(),
			segEdges:  g.NumEdges(),
			condNodes: st.finalInfo.Conds.NumNodes(),
			ptaStats:  pr.Stats,
		}
		return nil
	}

	// DAG layout: [0,nL) L-nodes for AST-dirty functions, [nL,nL+nS)
	// S-nodes in astSCCs' callee-first order, [nL+nS,nL+nS+len(order))
	// F-nodes in declaration order.
	sccs := astSCCs(order, states)
	var dirtyNames []string
	for _, name := range order {
		if dirty(states[name]) {
			dirtyNames = append(dirtyNames, name)
		}
	}
	nL, nS := len(dirtyNames), len(sccs)
	lIdx := make(map[string]int, nL)
	for i, name := range dirtyNames {
		lIdx[name] = i
	}
	sccIdx := make(map[string]int, len(order))
	for j, scc := range sccs {
		for _, name := range scc {
			sccIdx[name] = j
		}
	}
	deps := make([][]int, nL+nS+len(order))
	for j, scc := range sccs {
		node := nL + j
		seen := map[int]bool{node: true}
		for _, name := range scc {
			if li, ok := lIdx[name]; ok {
				deps[node] = append(deps[node], li)
			}
			for _, c := range states[name].callees {
				if jj, ok := sccIdx[c]; ok {
					if d := nL + jj; !seen[d] {
						seen[d] = true
						deps[node] = append(deps[node], d)
					}
				}
			}
		}
	}
	for k, name := range order {
		deps[nL+nS+k] = []int{nL + sccIdx[name]}
	}

	sp = rec.Phase("wavefront")
	t0 = time.Now()
	width, err := conc.Wavefront(len(deps), deps, s.opts.Workers, func(w, i int) error {
		switch {
		case i < nL:
			return lowerOne(w, dirtyNames[i])
		case i < nL+nS:
			return runSCC(w, sccs[i-nL])
		default:
			return runFinish(w, order[i-nL-nS])
		}
	})
	wavefrontWall := time.Since(t0)
	sp.End()
	if err != nil {
		return nil, err
	}
	rec.Gauge("modref.wavefront_width").Set(int64(width))

	// Apportion the wavefront's wall clock across the per-stage Timings
	// fields in proportion to the CPU time measured inside each stage, so
	// the fields still sum to ≈ the build wall even though stages now
	// overlap across workers (at workers=1 this reproduces the historical
	// per-stage walls). The same split feeds the phase.* counters the
	// staged pipeline used to emit.
	if cpu := lowerNs + ssaNs + modrefNs + transformNs + ptaNs + segNs; cpu > 0 {
		scale := float64(wavefrontWall) / float64(cpu)
		stage := func(ns int64) time.Duration { return time.Duration(float64(ns) * scale) }
		tm.Lower, tm.SSA, tm.ModRef = stage(lowerNs), stage(ssaNs), stage(modrefNs)
		tm.Transform, tm.PTA, tm.SEG = stage(transformNs), stage(ptaNs), stage(segNs)
	}
	if rec != nil {
		for _, pc := range []struct {
			name string
			d    time.Duration
		}{
			{"lower", tm.Lower}, {"ssa", tm.SSA}, {"modref", tm.ModRef},
			{"transform", tm.Transform}, {"pta+seg", tm.PTA + tm.SEG},
		} {
			rec.Counter("phase." + pc.name + "_ns").Add(int64(pc.d))
		}
	}

	// ---- Account the store and assemble the module in declaration
	// order, mixing retained and rebuilt functions. Retained functions
	// already carry their final aux signatures, which is exactly what
	// rebuilt callers' call sites read during the wavefront.
	for _, name := range order {
		st := states[name]
		switch {
		case !st.rebuild:
			stats.Hits++
		case s.artifacts[name] != nil:
			stats.Invalidated++
		default:
			stats.Misses++
		}
		m.AddFunc(st.finalFn)
	}

	// ---- Commit: from here on nothing can fail.
	newArts := make(map[string]*funcArtifact, len(order))
	for _, name := range order {
		st := states[name]
		if st.rebuild {
			newArts[name] = st.art
			continue
		}
		// Retain the built IR/SEG but refresh the metadata: the firewall
		// keeps artifacts alive across summary changes whose signature is
		// stable, so the stored summary must be this update's, not the
		// one the artifact was originally built under.
		art := *st.old
		art.astHash, art.decl, art.callees = st.astHash, st.decl, st.callees
		art.sum, art.sumFP, art.sigFP, art.depFP = st.sum, st.sumFP, st.sigFP, st.depFP
		newArts[name] = &art
	}

	// ---- Persist: bundle every artifact whose on-disk record is missing
	// or stale into one segment — a delta holding just the change set, or
	// a rewritten full snapshot when the delta ring is exhausted or the
	// change touched most of the program. Store errors are swallowed —
	// persistence buys warmth, and a failed write must not fail a build
	// that already succeeded.
	if s.store != nil {
		sp := rec.Phase("store.save")
		t0 := time.Now()
		ring, _ = persistChanged(s.store, rec, order, newArts, progFP, ring)
		tm.StoreSave = time.Since(t0)
		sp.End()
	}

	a := &Analysis{
		Module:    m,
		Infos:     make(map[*ir.Func]*ssa.Info, len(order)),
		SEGs:      make(map[*ir.Func]*seg.Graph, len(order)),
		ModRef:    &modref.Result{Summaries: make(map[*ir.Func]*modref.Summary, len(order))},
		Timings:   tm,
		Artifacts: stats,
	}
	for _, name := range order {
		art := newArts[name]
		a.Infos[art.fn] = art.info
		a.SEGs[art.fn] = art.seg
		a.ModRef.Summaries[art.fn] = art.sum
		a.PTAStats.Add(art.ptaStats)
		a.Sizes.SEGNodes += art.segNodes
		a.Sizes.SEGEdges += art.segEdges
		a.Sizes.CondNodes += art.condNodes
	}
	a.Sizes.Lines = m.LineCount()
	a.Sizes.Functions = len(order)

	if s.persistDetect {
		var prev *detect.Program
		if s.analysis != nil {
			prev = s.analysis.Prog
		}
		a.Prog = detect.NewProgramFrom(prev, m, a.Infos, a.SEGs)
	} else {
		a.Prog = detect.NewProgram(m, a.Infos, a.SEGs)
	}
	if s.store != nil {
		// Back the SMT verdict cache with the same persistent store so a
		// restarted process replays verdicts it already solved.
		a.Prog.AttachStore(s.store)
	}

	if rec != nil {
		rec.Counter("build.artifact.hits").Add(int64(stats.Hits))
		rec.Counter("build.artifact.misses").Add(int64(stats.Misses))
		rec.Counter("build.artifact.invalidated").Add(int64(stats.Invalidated))
		emitBuildMetrics(rec, a)
	}

	files := make(map[string]*minic.File, len(parsed))
	for i, h := range hashes {
		files[h] = parsed[i]
	}
	s.files = files
	s.progFP = progFP
	s.artifacts = newArts
	s.order = order
	s.analysis = a
	s.stats = stats
	if s.store != nil {
		s.storeLoaded = true
		s.ring = ring
	}
	return a, nil
}

// persistChanged bundles every artifact whose on-disk record is missing or
// stale into one segment — a delta holding just the change set, or a
// rewritten full snapshot when the delta ring is exhausted or the change
// touched most of the program. Store errors are swallowed — persistence
// buys warmth, and a failed write must not fail a build that already
// succeeded. Returns the advanced ring state and the number of artifacts
// persisted.
func persistChanged(st store.Store, rec *obs.Recorder, order []string, arts map[string]*funcArtifact, progFP string, ring segState) (segState, int) {
	var changed []string
	for _, name := range order {
		art := arts[name]
		if art.persistedMeta != artifactMeta(progFP, art) {
			changed = append(changed, name)
		}
	}
	if len(changed) == 0 {
		return ring, 0
	}
	full := !ring.hasFull || ring.deltas >= maxDeltaSegments || 2*len(changed) >= len(order)
	key, names := segFullKey, order
	if !full {
		key, names = segDeltaKey(ring.deltas), changed
	}
	data, err := encodeSegment(progFP, ring.next, names, arts)
	if err != nil {
		return ring, 0
	}
	if err := st.Put(store.NSArtifact, key, data); err != nil {
		return ring, 0
	}
	for _, name := range names {
		art := arts[name]
		art.persistedMeta = artifactMeta(progFP, art)
	}
	ring.next++
	if full {
		ring.deltas, ring.hasFull = 0, true
	} else {
		ring.deltas++
	}
	if rec != nil {
		rec.Counter("store.artifact.saves").Add(int64(len(names)))
	}
	return ring, len(changed)
}

// Persist flushes any artifacts the persistent store does not yet hold in
// their committed form and reports how many it wrote. Update already
// persists at commit, so this is normally a no-op; the tenant layer calls
// it before evicting a session so a commit whose store write failed (store
// errors are swallowed) gets one more chance to reach disk, making
// "evict, then warm re-admit" lose at most performance, never artifacts.
// Without a persistent store it reports 0.
func (s *Session) Persist() int {
	if s.store == nil || s.analysis == nil {
		return 0
	}
	ring, n := persistChanged(s.store, s.opts.Obs, s.order, s.artifacts, s.progFP, s.ring)
	s.ring = ring
	return n
}

// signatureFP fingerprints a function's post-transform interface: return
// type, parameter types, and the aux specs the connector transformation
// will add for its summary. Everything a call site's lowering and rewriting
// reads from a callee is in here.
func (s *Session) signatureFP(st *fnState, globals map[string]minic.Type) string {
	var b strings.Builder
	b.WriteString("ret=")
	b.WriteString(st.decl.Ret.String())
	b.WriteString(";params=")
	ptypes := make([]minic.Type, len(st.decl.Params))
	for i, p := range st.decl.Params {
		ptypes[i] = p.Type
		b.WriteString(p.Type.String())
		b.WriteByte(',')
	}
	if !s.opts.DisableConnectors {
		in, out := transform.ConnectorSpecs(ptypes, globals, st.sum)
		b.WriteString(";aux=")
		for _, sp := range in {
			fmt.Fprintf(&b, "i%d@%s.%d,", sp.Root, sp.Global, sp.Depth)
		}
		for _, sp := range out {
			fmt.Fprintf(&b, "o%d@%s.%d,", sp.Root, sp.Global, sp.Depth)
		}
	}
	return b.String()
}

// programShapeFP fingerprints the whole-program lowering inputs: every
// global (order, name, type) and every struct layout. Unit identity is
// deliberately absent — it is already part of each function's AST hash
// (unit index plus file-qualified positions), so adding or removing a
// translation unit invalidates only the functions it actually repositions.
func programShapeFP(files []*minic.File) string {
	h := sha256.New()
	for _, f := range files {
		for _, g := range f.Globals {
			fmt.Fprintf(h, "global\x00%s\x00%s\x00", g.Name, g.Type)
		}
		for _, sd := range f.Structs {
			fmt.Fprintf(h, "struct\x00%s\x00", sd.Name)
			for _, fld := range sd.Fields {
				fmt.Fprintf(h, "field\x00%s\x00%s\x00", fld.Name, fld.Type)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// astSCCs computes strongly connected components of the AST-level call
// graph (name → defined callee names) in bottom-up, callee-first order.
func astSCCs(order []string, states map[string]*fnState) [][]string {
	index := make(map[string]int, len(order))
	low := make(map[string]int, len(order))
	onStack := make(map[string]bool, len(order))
	var stack []string
	var sccs [][]string
	counter := 0

	var strongconnect func(name string)
	strongconnect = func(name string) {
		index[name] = counter
		low[name] = counter
		counter++
		stack = append(stack, name)
		onStack[name] = true
		for _, c := range states[name].callees {
			if _, defined := states[c]; !defined {
				continue
			}
			if _, seen := index[c]; !seen {
				strongconnect(c)
				if low[c] < low[name] {
					low[name] = low[c]
				}
			} else if onStack[c] && index[c] < low[name] {
				low[name] = index[c]
			}
		}
		if low[name] == index[name] {
			var scc []string
			for {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[n] = false
				scc = append(scc, n)
				if n == name {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, name := range order {
		if _, seen := index[name]; !seen {
			strongconnect(name)
		}
	}
	return sccs
}
