package cfg

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
)

func lowerSrc(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return m
}

const diamondSrc = `
int f(bool c) {
	int x = 0;
	if (c) { x = 1; } else { x = 2; }
	return x;
}`

func TestReversePostorder(t *testing.T) {
	m := lowerSrc(t, diamondSrc)
	f := m.ByName["f"]
	rpo := ReversePostorder(f)
	if rpo[0] != f.Entry {
		t.Fatal("RPO does not start at entry")
	}
	idx := map[*ir.Block]int{}
	for i, b := range rpo {
		idx[b] = i
	}
	if len(rpo) != len(f.Blocks) {
		t.Fatalf("RPO covers %d blocks of %d", len(rpo), len(f.Blocks))
	}
	// In an acyclic CFG, RPO is topological.
	for _, b := range rpo {
		for _, s := range b.Succs {
			if idx[s] <= idx[b] {
				t.Fatalf("edge %s->%s violates topological order", b, s)
			}
		}
	}
}

func TestTopological(t *testing.T) {
	m := lowerSrc(t, diamondSrc)
	if _, err := Topological(m.ByName["f"]); err != nil {
		t.Fatal(err)
	}
}

func TestTopologicalDetectsCycle(t *testing.T) {
	f := ir.NewFunc("loop", minic.VoidType, 0, minic.Pos{})
	a := f.NewBlock()
	b := f.NewBlock()
	f.Entry = a
	f.Exit = b
	f.Append(a, ir.Instr{Op: ir.OpJmp, Blocks: []*ir.Block{b}})
	f.Append(b, ir.Instr{Op: ir.OpJmp, Blocks: []*ir.Block{a}})
	ir.Connect(a, b)
	ir.Connect(b, a)
	if _, err := Topological(f); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	m := lowerSrc(t, diamondSrc)
	f := m.ByName["f"]
	dt := Dominators(f)
	// Entry dominates everything.
	for _, b := range f.Blocks {
		if !dt.Dominates(f.Entry, b) {
			t.Errorf("entry does not dominate %s", b)
		}
	}
	// Find the branch and its successors.
	var branch *ir.Block
	for _, b := range f.Blocks {
		if term := b.Term(); term != nil && term.Op == ir.OpBr {
			branch = b
		}
	}
	if branch == nil {
		t.Fatal("no branch block")
	}
	thenB, elseB := branch.Succs[0], branch.Succs[1]
	if dt.Dominates(thenB, elseB) || dt.Dominates(elseB, thenB) {
		t.Error("branch arms dominate each other")
	}
	// The join is dominated by the branch block, not by either arm.
	join := thenB.Succs[0]
	if dt.Idom[join] != branch {
		t.Errorf("idom(join) = %v, want %v", dt.Idom[join], branch)
	}
}

func TestPostDominators(t *testing.T) {
	m := lowerSrc(t, diamondSrc)
	f := m.ByName["f"]
	pdt := PostDominators(f)
	for _, b := range f.Blocks {
		if !pdt.Dominates(f.Exit, b) {
			t.Errorf("exit does not post-dominate %s", b)
		}
	}
	var branch *ir.Block
	for _, b := range f.Blocks {
		if term := b.Term(); term != nil && term.Op == ir.OpBr {
			branch = b
		}
	}
	thenB := branch.Succs[0]
	join := thenB.Succs[0]
	// The join post-dominates the branch; the arms do not.
	if !pdt.Dominates(join, branch) {
		t.Error("join does not post-dominate branch")
	}
	if pdt.Dominates(thenB, branch) {
		t.Error("then-arm post-dominates branch")
	}
}

func TestDominanceFrontierDiamond(t *testing.T) {
	m := lowerSrc(t, diamondSrc)
	f := m.ByName["f"]
	dt := Dominators(f)
	df := DominanceFrontier(f, dt)
	var branch *ir.Block
	for _, b := range f.Blocks {
		if term := b.Term(); term != nil && term.Op == ir.OpBr {
			branch = b
		}
	}
	thenB, elseB := branch.Succs[0], branch.Succs[1]
	join := thenB.Succs[0]
	for _, arm := range []*ir.Block{thenB, elseB} {
		found := false
		for _, w := range df[arm] {
			if w == join {
				found = true
			}
		}
		if !found {
			t.Errorf("DF(%s) = %v, want to contain %s", arm, df[arm], join)
		}
	}
	// The join is not in its own idom's frontier... but the branch must
	// not contain the join (branch dominates join).
	for _, w := range df[branch] {
		if w == join {
			t.Errorf("DF(branch) contains dominated join")
		}
	}
}

func TestControlDepsDiamond(t *testing.T) {
	m := lowerSrc(t, diamondSrc)
	f := m.ByName["f"]
	pdt := PostDominators(f)
	cd := ControlDeps(f, pdt)
	var branch *ir.Block
	for _, b := range f.Blocks {
		if term := b.Term(); term != nil && term.Op == ir.OpBr {
			branch = b
		}
	}
	thenB, elseB := branch.Succs[0], branch.Succs[1]
	join := thenB.Succs[0]
	// Arms are control dependent on the branch with matching polarity.
	checkDep := func(b *ir.Block, wantTrue bool) {
		deps := cd[b]
		if len(deps) != 1 || deps[0].Branch != branch || deps[0].OnTrue != wantTrue {
			t.Errorf("cd[%s] = %+v, want branch=%s onTrue=%v", b, deps, branch, wantTrue)
		}
	}
	checkDep(thenB, true)
	checkDep(elseB, false)
	// The join and entry have no control dependences.
	if len(cd[join]) != 0 {
		t.Errorf("cd[join] = %+v, want empty", cd[join])
	}
	if len(cd[f.Entry]) != 0 {
		t.Errorf("cd[entry] = %+v, want empty", cd[f.Entry])
	}
	// CDep.Cond returns the branch condition value.
	if c := cd[thenB][0].Cond(); c == nil || c.Type.Base != "bool" {
		t.Errorf("Cond() = %v", c)
	}
}

func TestControlDepsNested(t *testing.T) {
	m := lowerSrc(t, `
void f(bool a, bool b) {
	if (a) {
		if (b) {
			g();
		}
	}
}`)
	f := m.ByName["f"]
	pdt := PostDominators(f)
	cd := ControlDeps(f, pdt)
	// The block containing the call to g must be control dependent on
	// both branches.
	var callBlock *ir.Block
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpCall && in.Callee == "g" {
				callBlock = blk
			}
		}
	}
	if callBlock == nil {
		t.Fatal("call block not found")
	}
	if len(cd[callBlock]) != 1 {
		t.Fatalf("cd[call] = %+v, want exactly the inner branch (outer is transitive)", cd[callBlock])
	}
	inner := cd[callBlock][0]
	if !inner.OnTrue {
		t.Error("inner dep polarity wrong")
	}
	// The inner branch block is itself control dependent on the outer.
	outerDeps := cd[inner.Branch]
	if len(outerDeps) != 1 || !outerDeps[0].OnTrue {
		t.Errorf("cd[inner branch] = %+v", outerDeps)
	}
}

func TestDominatorsLinear(t *testing.T) {
	m := lowerSrc(t, "void f() { g(); h(); }")
	f := m.ByName["f"]
	dt := Dominators(f)
	pdt := PostDominators(f)
	for _, b := range f.Blocks {
		if b != f.Entry && dt.Idom[b] == nil {
			t.Errorf("%s has no idom", b)
		}
		if b != f.Exit && pdt.Idom[b] == nil {
			t.Errorf("%s has no ipdom", b)
		}
	}
}

// TestQuickDominatorsVsBruteForce validates the iterative dominator
// algorithm against the definition on random acyclic CFGs: a dominates b
// iff every entry→b path passes through a (checked by deleting a and
// testing reachability).
func TestQuickDominatorsVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		f := randomDAGFunc(rng)
		dt := Dominators(f)
		reachableWithout := func(skip *ir.Block) map[*ir.Block]bool {
			seen := map[*ir.Block]bool{}
			var dfs func(*ir.Block)
			dfs = func(b *ir.Block) {
				if b == skip || seen[b] {
					return
				}
				seen[b] = true
				for _, s := range b.Succs {
					dfs(s)
				}
			}
			if f.Entry != skip {
				dfs(f.Entry)
			}
			return seen
		}
		for _, a := range f.Blocks {
			without := reachableWithout(a)
			for _, b := range f.Blocks {
				wantDom := a == b || !without[b]
				if got := dt.Dominates(a, b); got != wantDom {
					t.Fatalf("trial %d: Dominates(%s,%s) = %v, want %v\n%s",
						trial, a, b, got, wantDom, f)
				}
			}
		}
		// Post-dominators: the same property on the reversed graph.
		pdt := PostDominators(f)
		reachesExitWithout := func(skip *ir.Block) map[*ir.Block]bool {
			seen := map[*ir.Block]bool{}
			var dfs func(*ir.Block)
			dfs = func(b *ir.Block) {
				if b == skip || seen[b] {
					return
				}
				seen[b] = true
				for _, p := range b.Preds {
					dfs(p)
				}
			}
			if f.Exit != skip {
				dfs(f.Exit)
			}
			return seen
		}
		for _, a := range f.Blocks {
			without := reachesExitWithout(a)
			for _, b := range f.Blocks {
				wantPDom := a == b || !without[b]
				if got := pdt.Dominates(a, b); got != wantPDom {
					t.Fatalf("trial %d: PostDominates(%s,%s) = %v, want %v\n%s",
						trial, a, b, got, wantPDom, f)
				}
			}
		}
	}
}

// randomDAGFunc builds a random valid acyclic CFG: forward-only edges, all
// blocks reachable from entry, all paths ending in the single exit.
func randomDAGFunc(rng *rand.Rand) *ir.Func {
	n := 3 + rng.Intn(8)
	f := ir.NewFunc("rand", minic.VoidType, 0, minic.Pos{})
	c := f.NewParam("c", minic.BoolType, false)
	blocks := make([]*ir.Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	f.Entry = blocks[0]
	f.Exit = blocks[n-1]
	for i := 0; i < n-1; i++ {
		// Pick 1 or 2 distinct forward targets.
		t1 := i + 1 + rng.Intn(n-1-i)
		if rng.Intn(2) == 0 {
			t2 := i + 1 + rng.Intn(n-1-i)
			if t2 != t1 {
				f.Append(blocks[i], ir.Instr{Op: ir.OpBr, Args: []*ir.Value{c},
					Blocks: []*ir.Block{blocks[t1], blocks[t2]}})
				ir.Connect(blocks[i], blocks[t1])
				ir.Connect(blocks[i], blocks[t2])
				continue
			}
		}
		f.Append(blocks[i], ir.Instr{Op: ir.OpJmp, Blocks: []*ir.Block{blocks[t1]}})
		ir.Connect(blocks[i], blocks[t1])
	}
	f.Append(blocks[n-1], ir.Instr{Op: ir.OpRet})
	// Some middle blocks may be unreachable from entry; prune them so the
	// invariants hold.
	reach := map[*ir.Block]bool{}
	var dfs func(*ir.Block)
	dfs = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
	}
	dfs(f.Entry)
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			var preds []*ir.Block
			for _, p := range b.Preds {
				if reach[p] {
					preds = append(preds, p)
				}
			}
			b.Preds = preds
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	return f
}
