// Package cfg provides control-flow-graph analyses over IR functions:
// reverse postorder, dominators and post-dominators (Cooper–Harvey–Kennedy),
// dominance frontiers (Cytron), and control dependence
// (Ferrante–Ottenstein–Warren), which the SEG encodes as Lc-labeled edges
// (Pinpoint Definition 3.2).
package cfg

import (
	"fmt"

	"repro/internal/ir"
)

// ReversePostorder returns the blocks of f in reverse postorder of a DFS
// from the entry.
func ReversePostorder(f *ir.Func) []*ir.Block {
	seen := make(map[*ir.Block]bool, len(f.Blocks))
	var post []*ir.Block
	var dfs func(*ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(f.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Topological returns a topological order of an acyclic CFG, or an error if
// the CFG has a cycle. The analysis pipeline guarantees acyclic CFGs (loops
// are unrolled during lowering); passes that rely on that call this to fail
// loudly if the invariant breaks.
func Topological(f *ir.Func) ([]*ir.Block, error) {
	order := ReversePostorder(f)
	idx := make(map[*ir.Block]int, len(order))
	for i, b := range order {
		idx[b] = i
	}
	for _, b := range order {
		for _, s := range b.Succs {
			if idx[s] <= idx[b] {
				return nil, fmt.Errorf("cfg: %s has a back edge %s->%s", f.Name, b, s)
			}
		}
	}
	return order, nil
}

// DomTree is a dominator (or post-dominator) tree.
type DomTree struct {
	// Root is the tree root: the entry for dominators, the exit for
	// post-dominators.
	Root *ir.Block
	// Idom maps each block to its immediate (post-)dominator; the root
	// maps to nil.
	Idom map[*ir.Block]*ir.Block
	// Children is the inverse of Idom.
	Children map[*ir.Block][]*ir.Block
	// Order assigns each reachable block its index in the fixpoint
	// iteration order (reverse postorder from Root along the direction
	// of the analysis).
	Order map[*ir.Block]int
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	for x := b; x != nil; x = t.Idom[x] {
		if x == a {
			return true
		}
	}
	return false
}

// Dominators computes the dominator tree of f.
func Dominators(f *ir.Func) *DomTree {
	return buildDomTree(f.Entry, func(b *ir.Block) []*ir.Block { return b.Succs },
		func(b *ir.Block) []*ir.Block { return b.Preds })
}

// PostDominators computes the post-dominator tree of f, rooted at the unique
// exit block.
func PostDominators(f *ir.Func) *DomTree {
	if f.Exit == nil {
		panic("cfg: function has no exit block")
	}
	return buildDomTree(f.Exit, func(b *ir.Block) []*ir.Block { return b.Preds },
		func(b *ir.Block) []*ir.Block { return b.Succs })
}

// buildDomTree runs the Cooper–Harvey–Kennedy iterative algorithm over the
// graph induced by fwd (successors in the direction away from root) and bwd
// (predecessors toward root).
func buildDomTree(root *ir.Block, fwd, bwd func(*ir.Block) []*ir.Block) *DomTree {
	// Reverse postorder from root along fwd.
	seen := map[*ir.Block]bool{}
	var post []*ir.Block
	var dfs func(*ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range fwd(b) {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(root)
	rpo := make([]*ir.Block, len(post))
	for i := range post {
		rpo[len(post)-1-i] = post[i]
	}
	order := make(map[*ir.Block]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}

	idom := map[*ir.Block]*ir.Block{root: root}
	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == root {
				continue
			}
			var newIdom *ir.Block
			for _, p := range bwd(b) {
				if _, ok := order[p]; !ok {
					continue // unreachable from root in this direction
				}
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}

	t := &DomTree{
		Root:     root,
		Idom:     make(map[*ir.Block]*ir.Block, len(idom)),
		Children: make(map[*ir.Block][]*ir.Block),
		Order:    order,
	}
	for b, d := range idom {
		if b == root {
			t.Idom[b] = nil
			continue
		}
		t.Idom[b] = d
		t.Children[d] = append(t.Children[d], b)
	}
	return t
}

// DominanceFrontier computes DF(b) for every block (Cytron et al.).
func DominanceFrontier(f *ir.Func, dt *DomTree) map[*ir.Block][]*ir.Block {
	df := make(map[*ir.Block]map[*ir.Block]bool)
	add := func(b, w *ir.Block) {
		if df[b] == nil {
			df[b] = make(map[*ir.Block]bool)
		}
		df[b][w] = true
	}
	for _, b := range f.Blocks {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			runner := p
			for runner != nil && runner != dt.Idom[b] {
				add(runner, b)
				runner = dt.Idom[runner]
			}
		}
	}
	out := make(map[*ir.Block][]*ir.Block, len(df))
	for b, set := range df {
		for w := range set {
			out[b] = append(out[b], w)
		}
	}
	return out
}

// CDep records that a block executes only when the branch terminating
// Branch takes the edge selected by OnTrue. The branch condition value is
// Branch.Term().Args[0].
type CDep struct {
	Branch *ir.Block
	OnTrue bool
}

// Cond returns the SSA value of the controlling branch condition.
func (c CDep) Cond() *ir.Value { return c.Branch.Term().Args[0] }

// ControlDeps computes the control dependences of every block using
// post-dominance (Ferrante–Ottenstein–Warren): B is control dependent on
// edge (A→S) iff B post-dominates S but does not post-dominate A. Only
// two-way branches generate dependences; jumps are unconditional.
func ControlDeps(f *ir.Func, pdt *DomTree) map[*ir.Block][]CDep {
	out := make(map[*ir.Block][]CDep)
	for _, a := range f.Blocks {
		term := a.Term()
		if term == nil || term.Op != ir.OpBr {
			continue
		}
		for i, s := range term.Blocks {
			onTrue := i == 0
			// Walk the post-dominator tree from s up to (but not
			// including) ipdom(a); every node visited is control
			// dependent on (a, onTrue).
			stop := pdt.Idom[a]
			for x := s; x != nil && x != stop; x = pdt.Idom[x] {
				out[x] = append(out[x], CDep{Branch: a, OnTrue: onTrue})
				if x == pdt.Root {
					break
				}
			}
		}
	}
	return out
}
