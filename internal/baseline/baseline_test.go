package baseline

import (
	"testing"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/pta"
)

const trapSrc = `
// The "pointer trap" program: a path-insensitive analysis cannot tell the
// two slots apart in time, and the free/use guard correlation is invisible
// without path conditions.
void f(bool c) {
	int *p = malloc();
	int *q = malloc();
	int **slot = malloc();
	if (c) { *slot = p; } else { *slot = q; }
	int *u = *slot;
	if (c) { free(p); }
	if (!c) { sink(*u); }
}`

func TestAndersenBasic(t *testing.T) {
	m, err := BuildBaselineModule([]minic.NamedSource{{Name: "t.mc", Src: `
void f() {
	int *p = malloc();
	int *q = p;
	int x = *q;
}`}})
	if err != nil {
		t.Fatal(err)
	}
	ap := pta.Andersen(m)
	f := m.ByName["f"]
	var mallocDst, copyDst *ir.Value
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpMalloc:
				mallocDst = in.Dst
			case ir.OpCopy:
				if in.Dst.Type.IsPointer() {
					copyDst = in.Dst
				}
			}
		}
	}
	if mallocDst == nil || copyDst == nil {
		t.Fatal("values not found")
	}
	if !ap.Alias(mallocDst, copyDst) {
		t.Fatal("copy alias lost")
	}
}

func TestAndersenInterprocedural(t *testing.T) {
	m, err := BuildBaselineModule([]minic.NamedSource{{Name: "t.mc", Src: `
int *id(int *x) { return x; }
void f() {
	int *p = malloc();
	int *q = id(p);
	int v = *q;
}`}})
	if err != nil {
		t.Fatal(err)
	}
	ap := pta.Andersen(m)
	f := m.ByName["f"]
	var mallocDst, callDst *ir.Value
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpMalloc:
				mallocDst = in.Dst
			case ir.OpCall:
				if in.Callee == "id" && in.Dsts[0] != nil {
					callDst = in.Dsts[0]
				}
			}
		}
	}
	if mallocDst == nil || callDst == nil {
		t.Fatal("values not found")
	}
	// Context-insensitive flow through id: the receiver aliases the
	// malloc result.
	if !ap.Alias(mallocDst, callDst) {
		t.Fatal("interprocedural flow lost")
	}
}

func TestSVFBaselineFloodsOnTrap(t *testing.T) {
	units := []minic.NamedSource{{Name: "t.mc", Src: trapSrc}}
	m, err := BuildBaselineModule(units)
	if err != nil {
		t.Fatal(err)
	}
	res := RunSVF(m, SVFOptions{})
	if res.TimedOut {
		t.Fatal("unexpected timeout")
	}
	// The layered baseline reports the infeasible path: at least one
	// warning (a false positive by ground truth).
	if len(res.Reports) == 0 {
		t.Fatal("baseline reported nothing on the trap program")
	}
	// Pinpoint on the same program reports nothing.
	a, err := core.BuildFromSource(units, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reports, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 0 {
		t.Fatalf("pinpoint has FP on trap program: %v", reports)
	}
}

func TestSVFEdgeBudgetTimeout(t *testing.T) {
	m, err := BuildBaselineModule([]minic.NamedSource{{Name: "t.mc", Src: trapSrc}})
	if err != nil {
		t.Fatal(err)
	}
	res := RunSVF(m, SVFOptions{MaxEdges: 2})
	if !res.TimedOut {
		t.Fatal("edge budget not enforced")
	}
}

func TestInferLikeMissesCrossUnit(t *testing.T) {
	units := []minic.NamedSource{
		{Name: "u1.mc", Src: "void release(int *x) { free(x); }"},
		{Name: "u2.mc", Src: `
void f() {
	int *p = malloc();
	release(p);
	sink(*p);
}`},
	}
	a, err := core.BuildFromSource(units, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Pinpoint finds the cross-unit bug.
	pin, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
	if len(pin) != 1 {
		t.Fatalf("pinpoint missed cross-unit bug: %v", pin)
	}
	// The unit-confined baselines do not.
	inf, _ := RunInferLike(a, checkers.UseAfterFree())
	if len(inf) != 0 {
		t.Fatalf("infer-like crossed units: %v", inf)
	}
	csa, _ := RunCSALike(a, checkers.UseAfterFree())
	if len(csa) != 0 {
		t.Fatalf("csa-like crossed units: %v", csa)
	}
}

func TestInferLikeFalsePositiveOnOrdering(t *testing.T) {
	units := []minic.NamedSource{{Name: "t.mc", Src: `
void f() {
	int *p = malloc();
	sink(*p);
	free(p);
}`}}
	a, err := core.BuildFromSource(units, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inf, _ := RunInferLike(a, checkers.UseAfterFree())
	if len(inf) == 0 {
		t.Fatal("infer-like should flag use-before-free (its characteristic FP)")
	}
	csa, _ := RunCSALike(a, checkers.UseAfterFree())
	if len(csa) != 0 {
		t.Fatalf("csa-like should respect ordering: %v", csa)
	}
}

func TestCSALikeFalsePositiveOnConditions(t *testing.T) {
	units := []minic.NamedSource{{Name: "t.mc", Src: `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); }
	if (!c) { sink(*p); }
}`}}
	a, err := core.BuildFromSource(units, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	csa, _ := RunCSALike(a, checkers.UseAfterFree())
	if len(csa) == 0 {
		t.Fatal("csa-like should flag the infeasible path (no SMT)")
	}
	pin, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
	if len(pin) != 0 {
		t.Fatalf("pinpoint FP: %v", pin)
	}
}

func TestSVFTrueBugStillFound(t *testing.T) {
	m, err := BuildBaselineModule([]minic.NamedSource{{Name: "t.mc", Src: `
void f() {
	int *p = malloc();
	free(p);
	sink(*p);
}`}})
	if err != nil {
		t.Fatal(err)
	}
	res := RunSVF(m, SVFOptions{})
	if len(res.Reports) == 0 {
		t.Fatal("baseline missed a trivial true bug")
	}
}
