// Package baseline implements the three comparison tools of the paper's
// evaluation:
//
//   - SVF (§5.1): the "layered" design — a global flow- and
//     context-insensitive Andersen points-to analysis feeding a full sparse
//     value-flow graph (package vfg), checked by plain graph reachability
//     with no conditions, contexts, or ordering. Fast to describe, slow to
//     build at scale, and floods the user with warnings.
//   - Infer-like (§5.4): compositional, confined to one compilation unit,
//     no path conditions and no ordering discipline — fast, cross-unit
//     bugs invisible, and false positives from infeasible or reordered
//     paths.
//   - CSA-like (§5.4): per-unit symbolic exploration with ordering but
//     without full path correlation (the linear filter runs, the SMT
//     solver does not).
//
// The Infer- and CSA-like baselines reuse Pinpoint's engine with the
// corresponding features disabled, which isolates exactly the design
// dimensions the paper credits for the precision gap.
package baseline

import (
	"time"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/pta"
	"repro/internal/ssa"
	"repro/internal/vfg"
)

// SVFResult is the outcome of the layered baseline on one program.
type SVFResult struct {
	// Graph is the FSVFG (nil if construction aborted).
	Graph *vfg.Graph
	// Reports are the raw warnings (source free, sink deref).
	Reports []SVFReport
	// TimedOut is set when the points-to or edge budget aborted
	// construction — the analogue of the paper's 12-hour timeouts on
	// subjects > 135 KLoC.
	TimedOut bool
	// CheckTimedOut is set when the reachability phase exhausted its
	// work budget (the paper: SVF's checking exceeded 12 hours on 15 of
	// 30 subjects).
	CheckTimedOut bool
	// PTATime / BuildTime / CheckTime split the cost.
	PTATime   time.Duration
	BuildTime time.Duration
	CheckTime time.Duration
	// Nodes and Edges are the graph's structural size (the memory proxy
	// in Figures 8 and 9).
	Nodes, Edges       int
	AndersenIterations int
}

// SVFReport is one baseline warning.
type SVFReport struct {
	Source *ir.Instr // the free
	Sink   *ir.Instr // the deref or second free
}

// BuildBaselineModule lowers a program for the layered pipeline: SSA but no
// connector transformation (the baseline has no such concept).
func BuildBaselineModule(units []minic.NamedSource) (*ir.Module, error) {
	prog, err := minic.ParseProgram(units)
	if err != nil {
		return nil, err
	}
	m, err := lower.Program(prog)
	if err != nil {
		return nil, err
	}
	for _, f := range m.Funcs {
		if _, err := ssa.Transform(f); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SVFOptions bounds the baseline's cost.
type SVFOptions struct {
	// MaxEdges is the FSVFG edge budget (0 = unlimited).
	MaxEdges int
	// MaxPTAWork bounds Andersen propagation work (0 = unlimited).
	MaxPTAWork int
	// MaxCheckWork bounds reachability node visits (0 = unlimited).
	MaxCheckWork int64
	// MaxReports caps emitted warnings (the harness reads the count; the
	// paper likewise samples 100 of thousands).
	MaxReports int
}

// RunSVF executes the layered baseline end to end.
func RunSVF(m *ir.Module, opts SVFOptions) *SVFResult {
	res := &SVFResult{}

	t0 := time.Now()
	ap := pta.AndersenWithBudget(m, opts.MaxPTAWork)
	res.PTATime = time.Since(t0)
	res.AndersenIterations = ap.Iterations
	if ap.TimedOut {
		res.TimedOut = true
		return res
	}

	t0 = time.Now()
	g, err := vfg.Build(m, ap, vfg.Options{MaxEdges: opts.MaxEdges})
	res.BuildTime = time.Since(t0)
	res.Graph = g
	res.Nodes = g.NumNodes()
	res.Edges = g.NumEdges()
	if err != nil {
		res.TimedOut = true
		return res
	}

	t0 = time.Now()
	max := opts.MaxReports
	var budget *int64
	if opts.MaxCheckWork > 0 {
		b := opts.MaxCheckWork
		budget = &b
	}
	for _, free := range g.Frees {
		for _, sink := range g.ReachableDerefs(free.Args[0], free, budget) {
			res.Reports = append(res.Reports, SVFReport{Source: free, Sink: sink})
			if max > 0 && len(res.Reports) >= max {
				res.CheckTime = time.Since(t0)
				return res
			}
		}
		if budget != nil && *budget <= 0 {
			res.CheckTimedOut = true
			break
		}
	}
	res.CheckTime = time.Since(t0)
	return res
}

// RunInferLike checks use-after-free the way the paper characterizes
// Infer: within one compilation unit, compositional, without path
// conditions or ordering discipline.
func RunInferLike(a *core.Analysis, spec *checkers.Spec) ([]detect.Report, detect.Stats) {
	eng := detect.NewEngine(a.Prog, spec, detect.Options{
		SameUnitOnly:           true,
		DisablePathSensitivity: true,
		IgnoreOrdering:         true,
		MaxCallDepth:           6,
	})
	return eng.Run()
}

// RunCSALike checks use-after-free the way the paper characterizes the
// Clang Static Analyzer: per-unit symbolic exploration with ordering but
// without full path correlation (no SMT; shallow inlining).
func RunCSALike(a *core.Analysis, spec *checkers.Spec) ([]detect.Report, detect.Stats) {
	eng := detect.NewEngine(a.Prog, spec, detect.Options{
		SameUnitOnly:           true,
		DisablePathSensitivity: true,
		MaxCallDepth:           3,
	})
	return eng.Run()
}
