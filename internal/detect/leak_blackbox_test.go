package detect_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
)

func findLeaks(t *testing.T, src string) ([]detect.LeakReport, detect.LeakStats) {
	t.Helper()
	a, err := core.BuildFromSource([]minic.NamedSource{{Name: "t.mc", Src: src}}, core.BuildOptions{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return detect.FindLeaks(a.Prog, detect.Options{})
}

func TestLeakNeverFreed(t *testing.T) {
	reports, stats := findLeaks(t, `
void f() {
	int *p = malloc();
	*p = 1;
	int v = *p;
	keep(v);
}`)
	if len(reports) != 1 || reports[0].Kind != detect.LeakNeverFreed {
		t.Fatalf("reports = %v", reports)
	}
	if stats.Allocs != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if reports[0].String() == "" {
		t.Fatal("empty render")
	}
}

func TestLeakFreedIsClean(t *testing.T) {
	reports, _ := findLeaks(t, `
void f() {
	int *p = malloc();
	*p = 1;
	free(p);
}`)
	if len(reports) != 0 {
		t.Fatalf("spurious leak: %v", reports)
	}
}

func TestLeakConditionalFree(t *testing.T) {
	reports, _ := findLeaks(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); }
}`)
	if len(reports) != 1 || reports[0].Kind != detect.LeakConditional {
		t.Fatalf("reports = %v", reports)
	}
	if len(reports[0].Witness) == 0 {
		t.Fatal("no leak witness")
	}
}

func TestLeakBothBranchesFree(t *testing.T) {
	reports, _ := findLeaks(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); } else { free(p); }
}`)
	if len(reports) != 0 {
		t.Fatalf("exhaustive frees still flagged: %v", reports)
	}
}

func TestLeakFreeViaCallee(t *testing.T) {
	reports, _ := findLeaks(t, `
void release(int *x) { free(x); }
void deep(int *y) { release(y); }
void f() {
	int *p = malloc();
	deep(p);
}`)
	if len(reports) != 0 {
		t.Fatalf("transitive free missed: %v", reports)
	}
}

func TestLeakEscapeByReturn(t *testing.T) {
	reports, stats := findLeaks(t, `
int *mk() {
	int *p = malloc();
	return p;
}`)
	if len(reports) != 0 {
		t.Fatalf("escaped alloc flagged: %v", reports)
	}
	if stats.Escaped != 1 {
		t.Fatalf("escape not recorded: %+v", stats)
	}
}

func TestLeakEscapeToExternal(t *testing.T) {
	reports, _ := findLeaks(t, `
void f() {
	int *p = malloc();
	register_buffer(p);
}`)
	if len(reports) != 0 {
		t.Fatalf("external ownership transfer flagged: %v", reports)
	}
}

func TestLeakEscapeToGlobalMemory(t *testing.T) {
	reports, _ := findLeaks(t, `
int *cache_g;
void f() {
	int *p = malloc();
	cache_g = p;
}`)
	if len(reports) != 0 {
		t.Fatalf("global-stored alloc flagged: %v", reports)
	}
}

func TestLeakLocalSlotStillTracked(t *testing.T) {
	// Stored into a local heap slot, loaded back, freed: clean.
	reports, _ := findLeaks(t, `
void f() {
	int **slot = malloc();
	int *p = malloc();
	*slot = p;
	int *q = *slot;
	free(q);
	free(slot);
}`)
	if len(reports) != 0 {
		t.Fatalf("slot-routed free missed: %v", reports)
	}
}

func TestLeakArithmeticConditions(t *testing.T) {
	// Freed only when x > 0 AND x < 0: never. The SMT layer sees the
	// free conditions are unsatisfiable, so the leak is unconditional in
	// effect and must be reported.
	reports, _ := findLeaks(t, `
void f(int x) {
	int *p = malloc();
	if (x > 0) {
		if (x < 0) { free(p); }
	}
}`)
	if len(reports) != 1 {
		t.Fatalf("vacuous free not seen through: %v", reports)
	}
}

// buildAnalysis is a shared helper for blackbox tests needing the Prog.
func buildAnalysis(t *testing.T, src string) *core.Analysis {
	t.Helper()
	a, err := core.BuildFromSource([]minic.NamedSource{{Name: "t.mc", Src: src}}, core.BuildOptions{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return a
}
