package detect

import (
	"fmt"
	"time"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/pta"
	"repro/internal/seg"
	"repro/internal/smt"
	"repro/internal/summary"
)

// Memory-leak detection — the classic "source without a mandatory sink"
// value-flow property (Fastcheck/Saber, cited in §1 of the paper). Unlike
// the source–sink checkers, a leak is the *absence* of a flow: an
// allocation leaks when, on some feasible path, its value reaches no free.
//
// The checker is path-sensitive in the Pinpoint style: it collects every
// free the allocation may reach together with the conditions under which
// that free executes, then asks the SMT solver whether
//
//	CD(malloc) ∧ ¬(cond(free₁) ∨ cond(free₂) ∨ …)
//
// is satisfiable. Escaping allocations — returned past the program
// boundary, stored into caller-visible or global memory, or passed to an
// unknown external — are conservatively assumed freed elsewhere.

// LeakKind classifies leak reports.
type LeakKind uint8

const (
	// LeakNeverFreed: no free is reachable from the allocation at all.
	LeakNeverFreed LeakKind = iota
	// LeakConditional: frees exist but some feasible path avoids all of
	// them.
	LeakConditional
)

func (k LeakKind) String() string {
	if k == LeakNeverFreed {
		return "never-freed"
	}
	return "conditionally-freed"
}

// LeakReport is one leaked allocation.
type LeakReport struct {
	Fn    string
	Pos   minic.Pos
	Alloc *ir.Instr
	Kind  LeakKind
	// Witness is a branch assignment avoiding every reachable free
	// (LeakConditional only).
	Witness []string
	// Provenance, captured only when Options.Witness is on, records the
	// allocation-to-free hops considered, the query size, and the verdict
	// source (VerdictStructural for never-freed allocations).
	Provenance *Provenance
}

func (r LeakReport) String() string {
	return fmt.Sprintf("[memory-leak] allocation at %s (%s) is %s", r.Pos, r.Fn, r.Kind)
}

// LeakStats counts the checker's effort. Solved/CacheHits/PrefilterUnsat
// partition SMTQueries by the elimination-pipeline stage that answered
// (see smtcache.go).
type LeakStats struct {
	Allocs         int
	Escaped        int
	SMTQueries     int
	Solved         int
	CacheHits      int
	PrefilterUnsat int
	// SMTTime is wall time inside the elimination pipeline (encode +
	// prefilter + cache probe + solve), schedule-dependent and therefore
	// excluded from determinism comparisons like Stats.SMTTime.
	SMTTime time.Duration
}

// String renders the counters in the one-line shape shared by
// cmd/pinpoint's -stats output and the examples (the unreleased-resource
// sibling of Stats.String).
func (s LeakStats) String() string {
	return fmt.Sprintf("%d allocations, %d escaped, %d SMT queries (%d solved/%d cached/%d prefiltered)",
		s.Allocs, s.Escaped, s.SMTQueries, s.Solved, s.CacheHits, s.PrefilterUnsat)
}

// FindLeaks scans every allocation site of the program.
func FindLeaks(prog *Program, opts Options) ([]LeakReport, LeakStats) {
	opts = opts.withDefaults()
	lc := newLeakChecker(prog, opts, newCaches(prog))

	var reports []LeakReport
	var stats LeakStats
	for _, f := range prog.Module.Funcs {
		g := prog.SEGs[f]
		if g == nil {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpMalloc {
					continue
				}
				stats.Allocs++
				rep, escaped := lc.checkAlloc(f, g, in, &stats, 1)
				if escaped {
					stats.Escaped++
				}
				if rep != nil {
					reports = append(reports, *rep)
				}
			}
		}
	}
	return reports, stats
}

type leakChecker struct {
	prog   *Program
	opts   Options
	caches *caches
	// frees[f][i] reports that f (transitively) may free its i-th
	// parameter.
	frees map[*ir.Func]map[int]bool
}

// newLeakChecker builds the checker and runs its whole-program fixpoint.
// The frees relation is read-only afterwards, so the checker can serve
// concurrent per-allocation queries (checkAlloc) against shared caches.
func newLeakChecker(prog *Program, opts Options, c *caches) *leakChecker {
	lc := &leakChecker{
		prog:   prog,
		opts:   opts,
		caches: c,
		frees:  make(map[*ir.Func]map[int]bool),
	}
	lc.computeFreesParam()
	return lc
}

// computeFreesParam builds the transitive may-free-parameter relation by
// iterating over the whole program to a fixpoint (the call graph is small
// relative to the SEGs; a global loop converges in few rounds).
func (lc *leakChecker) computeFreesParam() {
	for _, f := range lc.prog.Module.Funcs {
		lc.frees[f] = make(map[int]bool)
	}
	for changed := true; changed; {
		changed = false
		for _, f := range lc.prog.Module.Funcs {
			g := lc.prog.SEGs[f]
			if g == nil {
				continue
			}
			for _, p := range f.Params {
				if lc.frees[f][p.ParamIdx] {
					continue
				}
				if lc.paramMayFree(g, p) {
					lc.frees[f][p.ParamIdx] = true
					changed = true
				}
			}
		}
	}
}

func (lc *leakChecker) paramMayFree(g *seg.Graph, p *ir.Value) bool {
	for _, fl := range lc.caches.flowsFrom(g, g.ValueNode(p)) {
		term := fl.Terminal()
		switch term.Role {
		case seg.RoleFreeArg:
			return true
		case seg.RoleCallArg:
			if callee, ok := lc.prog.Module.ByName[term.Instr.Callee]; ok {
				if lc.frees[callee][term.ArgIdx] {
					return true
				}
			}
		}
	}
	return false
}

// checkAlloc analyzes one allocation; it returns a report (or nil) and
// whether the value escapes. tid is the trace track of the calling worker
// (its SMT query span lands there when the run is being traced).
func (lc *leakChecker) checkAlloc(f *ir.Func, g *seg.Graph, alloc *ir.Instr, stats *LeakStats, tid int) (*LeakReport, bool) {
	type reachedFree struct {
		flow summary.Flow
	}
	var frees []reachedFree
	escaped := false

	for _, fl := range lc.caches.flowsFrom(g, g.ValueNode(alloc.Dst)) {
		term := fl.Terminal()
		switch term.Role {
		case seg.RoleFreeArg:
			frees = append(frees, reachedFree{flow: fl})
		case seg.RoleCallArg:
			callee, known := lc.prog.Module.ByName[term.Instr.Callee]
			if !known {
				// Passed to an external: assume it takes ownership.
				escaped = true
				continue
			}
			if lc.frees[callee][term.ArgIdx] {
				// A callee may free it; treat like a reached free with
				// the call's conditions.
				frees = append(frees, reachedFree{flow: fl})
			}
		case seg.RoleRetArg:
			// Returned: ownership moves to callers; with no callers the
			// program boundary takes it.
			escaped = true
		case seg.RoleStoreVal:
			// Stored: escapes if the target may be caller-visible or
			// global memory. Stores into program-local stack or heap
			// cells keep the value tracked (the SEG's load edges carry
			// it onward).
			for _, gl := range g.PTA.StoredAt[term.Instr] {
				if gl.Loc.Kind != pta.LAlloc && gl.Loc.Kind != pta.LMalloc {
					escaped = true
				}
			}
		}
	}
	if escaped {
		return nil, true
	}
	if len(frees) == 0 {
		rep := &LeakReport{
			Fn: f.Name, Pos: alloc.Pos, Alloc: alloc, Kind: LeakNeverFreed,
		}
		if lc.opts.Witness {
			rep.Provenance = &Provenance{
				Hops:          []Hop{allocHop(f, alloc)},
				VerdictSource: VerdictStructural,
			}
		}
		return rep, false
	}

	// Path-sensitive residue: is there an execution where the allocation
	// happens but none of the reached frees does? The query runs through
	// the same elimination pipeline as candidate checks: prefilter, then
	// the program-wide verdict cache, then a pooled solver.
	stats.SMTQueries++
	start := time.Now()
	rec := lc.opts.Obs
	eng := &Engine{prog: lc.prog, opts: lc.opts, obs: rec, tid: tid}
	s := smt.GetSolver()
	defer smt.PutSolver(s)
	if rec != nil {
		s.Observer = smtObserver(rec)
	}
	enc := &encoder{
		eng:    eng,
		tb:     s.TB,
		ddDone: make(map[ddKey]bool),
		cdDone: make(map[cdKey]bool),
		budget: lc.opts.SMTBudget,
		instFn: map[int]*ir.Func{0: f},
		atoms:  make(map[string]atomOrigin),
	}
	// The allocation executes...
	enc.assertCond(0, f, g.CD(alloc))
	// ...and every reached free is avoided.
	for _, rf := range frees {
		c := rf.flow.Cond(g)
		t := enc.condTerm(0, f, c)
		enc.add(enc.tb.Not(t))
	}
	res, model, how := decideQuery(s, enc.terms, lc.prog.smtCache, lc.opts)
	stats.SMTTime += time.Since(start)
	switch {
	case how == querySolved:
		stats.Solved++
	case how.isCacheHit():
		stats.CacheHits++
	case how == queryPrefilterUnsat:
		stats.PrefilterUnsat++
	}
	if rec != nil {
		switch {
		case how == querySolved:
			d := time.Since(start)
			rec.Histogram("smt.query_ns").Observe(int64(d))
			if rec.Tracing() {
				rec.Event(tid, "smt", start, d, obs.Arg{Key: "checker", Val: "memory-leak"})
			}
		case how.isCacheHit():
			rec.Counter("smt.cache_hits").Inc()
		case how == queryPrefilterUnsat:
			rec.Counter("smt.prefilter_unsat").Inc()
		}
	}
	if res != smt.Sat {
		return nil, false
	}
	rep := &LeakReport{
		Fn: f.Name, Pos: alloc.Pos, Alloc: alloc, Kind: LeakConditional,
		Witness: extractWitness(model, enc),
	}
	if lc.opts.Witness {
		// The "path" of a leak is the set of flows whose frees the model
		// avoids: the allocation first, then each reached free terminal in
		// the deterministic flow-enumeration order.
		hops := []Hop{allocHop(f, alloc)}
		for _, rf := range frees {
			term := rf.flow.Terminal()
			h := Hop{Fn: f.Name, Node: term.String()}
			if term.Instr != nil {
				h.Pos = term.Instr.Pos
			}
			hops = append(hops, h)
		}
		rep.Provenance = &Provenance{
			Hops:          hops,
			CondTerms:     len(enc.terms),
			VerdictSource: verdictSourceOf(how),
		}
	}
	return rep, false
}

// allocHop renders the allocation site of a leak report as the path's first
// hop.
func allocHop(f *ir.Func, alloc *ir.Instr) Hop {
	return Hop{Fn: f.Name, Node: alloc.Dst.String(), Pos: alloc.Pos}
}
