package detect

import (
	"sort"

	"repro/internal/minic"
	"repro/internal/smt"
)

// JSONReport is the machine-readable report schema shared by cmd/pinpoint's
// -format json output, the examples, and CI scripts. Source–sink reports
// fill the sink fields; memory-leak reports set kind and leave them empty.
type JSONReport struct {
	Checker    string   `json:"checker"`
	Kind       string   `json:"kind,omitempty"`
	SourceFile string   `json:"sourceFile"`
	SourceLine int      `json:"sourceLine"`
	SourceFunc string   `json:"sourceFunc"`
	SinkFile   string   `json:"sinkFile,omitempty"`
	SinkLine   int      `json:"sinkLine,omitempty"`
	SinkFunc   string   `json:"sinkFunc,omitempty"`
	PathLen    int      `json:"pathLen,omitempty"`
	Contexts   int      `json:"contexts,omitempty"`
	Witness    []string `json:"witness,omitempty"`
	// Provenance is present only when the run captured it
	// (detect.Options.Witness / `pinpoint -provenance`).
	Provenance *JSONProvenance `json:"provenance,omitempty"`
}

// ToJSON converts a report to the exported JSON schema.
func (r Report) ToJSON() JSONReport {
	j := JSONReport{
		Checker:    r.Checker,
		Kind:       r.Kind,
		SourceFile: r.SourcePos.File,
		SourceLine: r.SourcePos.Line,
		SourceFunc: r.SourceFn,
		Witness:    r.Witness,
		Provenance: r.Provenance.ToJSON(),
	}
	if r.Sink != nil {
		j.SinkFile = r.SinkPos.File
		j.SinkLine = r.SinkPos.Line
		j.SinkFunc = r.SinkFn
		j.PathLen = r.PathLen
		j.Contexts = r.Contexts
	}
	return j
}

// leakToReport lifts a LeakReport into the uniform Report shape.
func leakToReport(checker string, lr LeakReport) Report {
	return Report{
		Checker:    checker,
		Kind:       lr.Kind.String(),
		SourceFn:   lr.Fn,
		SourcePos:  lr.Pos,
		Source:     lr.Alloc,
		Verdict:    smt.Sat,
		Witness:    lr.Witness,
		Provenance: lr.Provenance,
	}
}

// SortReports orders reports by (checker, source position, sink position) —
// the canonical output order of CheckAll. The sort is stable, and ties (two
// reports at identical positions) keep their deterministic discovery order,
// so sorted output is byte-identical between sequential and parallel runs.
func SortReports(rs []Report) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		if c := comparePos(a.SourcePos, b.SourcePos); c != 0 {
			return c < 0
		}
		return comparePos(a.SinkPos, b.SinkPos) < 0
	})
}

func comparePos(a, b minic.Pos) int {
	if a.File != b.File {
		if a.File < b.File {
			return -1
		}
		return 1
	}
	if a.Line != b.Line {
		return a.Line - b.Line
	}
	return a.Col - b.Col
}
