package detect

import (
	"repro/internal/checkers"
	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/seg"
	"repro/internal/smt"
)

// Engine runs one checker over a program. One Engine handles either a whole
// sequential run (NewEngine + Run, with a private cache set) or a single
// (checker, source) task dispatched by the parallel scheduler (which hands
// every task engine the same shared caches).
type Engine struct {
	prog   *Program
	spec   *checkers.Spec
	opts   Options
	caches *caches

	reports     []Report
	reported    map[[2]*ir.Instr]bool
	stats       Stats
	lastWitness []string
	// lastCondTerms / lastVerdictSource mirror the latest checkCandidate
	// outcome; read only when opts.Witness captures provenance.
	lastCondTerms     int
	lastVerdictSource VerdictSource

	// obs mirrors opts.Obs (nil = no recording); tid is the trace track
	// this engine's SMT query spans land on (its scheduler worker + 1, or
	// 1 for a sequential engine).
	obs *obs.Recorder
	tid int

	// solver is the engine's pooled SMT solver, acquired lazily by the
	// first candidate check and released by releaseSolver when the engine
	// finishes. In the default mode it is Reset between candidates (a
	// reset solver is indistinguishable from a fresh one); with
	// Options.SMTIncremental it lives across the engine's candidates,
	// retaining learned clauses under Push/Pop.
	solver *smt.Solver

	// per-source scratch
	nextInst   int
	expansions int
	candidates int
}

// NewEngine builds an engine for one checker.
func NewEngine(prog *Program, spec *checkers.Spec, opts Options) *Engine {
	return &Engine{
		prog:     prog,
		spec:     spec,
		opts:     opts.withDefaults(),
		caches:   newCaches(prog),
		reported: make(map[[2]*ir.Instr]bool),
		obs:      opts.Obs,
		tid:      1,
	}
}

// querySolver returns the engine's solver ready for a candidate query:
// freshly acquired from the pool, or reset to the fresh state (unless the
// engine runs incrementally, in which case accumulated clauses persist and
// the caller scopes its assertions with Push/Pop).
func (e *Engine) querySolver() *smt.Solver {
	if e.solver == nil {
		e.solver = smt.GetSolver()
	} else if !e.opts.SMTIncremental {
		e.solver.Reset()
	}
	return e.solver
}

// releaseSolver returns the engine's solver to the pool.
func (e *Engine) releaseSolver() {
	if e.solver != nil {
		smt.PutSolver(e.solver)
		e.solver = nil
	}
}

// Run searches every function's sources and returns the reports.
func (e *Engine) Run() ([]Report, Stats) {
	defer e.releaseSolver()
	if e.spec.Kind == checkers.KindUnreleased {
		return e.runUnreleased()
	}
	for _, f := range e.prog.Module.Funcs {
		g := e.prog.SEGs[f]
		if g == nil {
			continue
		}
		for _, src := range e.spec.LocalSources(g) {
			e.stats.Sources++
			e.searchFromSource(f, g, src)
			if e.opts.MaxReportsPerChecker > 0 && len(e.reports) >= e.opts.MaxReportsPerChecker {
				e.stats.SummaryCapHits = e.caches.capHits()
				return e.reports, e.stats
			}
		}
	}
	e.stats.SummaryCapHits = e.caches.capHits()
	return e.reports, e.stats
}

// runUnreleased runs the unreleased-resource (memory-leak) interpretation of
// the spec sequentially, presenting the results through the uniform Report
// shape.
func (e *Engine) runUnreleased() ([]Report, Stats) {
	lc := newLeakChecker(e.prog, e.opts, e.caches)
	for _, f := range e.prog.Module.Funcs {
		g := e.prog.SEGs[f]
		if g == nil {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpMalloc {
					continue
				}
				var ls LeakStats
				ls.Allocs++
				rep, escaped := lc.checkAlloc(f, g, in, &ls, e.tid)
				if escaped {
					ls.Escaped++
				}
				e.stats.Sources += ls.Allocs
				e.stats.Escaped += ls.Escaped
				e.stats.SMTQueries += ls.SMTQueries
				e.stats.SMTSolved += ls.Solved
				e.stats.SMTCacheHits += ls.CacheHits
				e.stats.SMTPrefilterUnsat += ls.PrefilterUnsat
				e.stats.SMTTime += ls.SMTTime
				if rep != nil {
					e.reports = append(e.reports, leakToReport(e.spec.Name, *rep))
					if e.opts.MaxReportsPerChecker > 0 && len(e.reports) >= e.opts.MaxReportsPerChecker {
						e.stats.SummaryCapHits = e.caches.capHits()
						return e.reports, e.stats
					}
				}
			}
		}
	}
	e.stats.SummaryCapHits = e.caches.capHits()
	return e.reports, e.stats
}

// frame is one function instance on the search path.
type frame struct {
	fn     *ir.Func
	inst   int
	anchor *ir.Instr // ordering anchor (source/call) or nil
	// ret links a descent frame back to its call site.
	retTo   *frame
	retCall *ir.Instr
	depth   int
}

// pathState accumulates the global path immutably-enough: explore copies
// slices before extending so sibling branches do not interfere.
type pathState struct {
	steps  []gstep
	bounds []boundary
	conds  map[int]*instCond
}

func (p pathState) clone() pathState {
	np := pathState{
		steps:  append([]gstep(nil), p.steps...),
		bounds: append([]boundary(nil), p.bounds...),
		conds:  make(map[int]*instCond, len(p.conds)),
	}
	for k, v := range p.conds {
		c := *v
		np.conds[k] = &c
	}
	return np
}

// addCond conjoins a local condition into an instance's accumulated
// condition; it reports false when the result is apparently unsatisfiable.
//
// With path sensitivity disabled, conditions are not tracked at all (the
// baseline modes genuinely ignore path correlations). With only the linear
// filter disabled, conditions accumulate — including ones already folded to
// false — and the SMT solver pays for refuting them.
func (e *Engine) addCond(p *pathState, inst int, fn *ir.Func, c *cond.Cond) bool {
	if e.opts.DisablePathSensitivity {
		return true
	}
	ic := p.conds[inst]
	if ic == nil {
		ic = &instCond{fn: fn, cond: e.prog.Infos[fn].Conds.True()}
		p.conds[inst] = ic
	}
	merged := e.prog.Infos[fn].Conds.And(ic.cond, c)
	if e.opts.DisableLinearFilter {
		ic.cond = merged
		return true
	}
	if merged.IsFalse() || e.caches.apparentlyUnsat(fn, merged) {
		return false
	}
	ic.cond = merged
	return true
}

// searchFromSource explores all forward flows of one source.
func (e *Engine) searchFromSource(f *ir.Func, g *seg.Graph, src checkers.Source) {
	e.nextInst = 0
	e.expansions = 0
	e.candidates = 0

	roots := []*ir.Value{src.Val}
	if e.spec.WidenToRoots {
		roots = e.objectRoots(g, src.Val)
	}

	var anchor *ir.Instr
	if e.spec.OrderingRequired && !e.opts.IgnoreOrdering {
		anchor = src.At
	}
	for _, root := range roots {
		fr := &frame{fn: f, inst: e.newInst(), anchor: anchor, depth: 1}
		p := pathState{conds: map[int]*instCond{}}
		if !e.addCond(&p, fr.inst, f, src.Cond) {
			continue
		}
		e.explore(fr, g.ValueNode(root), src.At, f, p)
	}
}

func (e *Engine) newInst() int {
	e.nextInst++
	return e.nextInst - 1
}

// objectRoots walks backward from the source value through
// equality-preserving edges to the defining allocation sites or parameters,
// so that sibling aliases of the freed object are tracked too.
func (e *Engine) objectRoots(g *seg.Graph, v *ir.Value) []*ir.Value {
	rev := e.caches.reverse(g)
	seen := map[*seg.Node]bool{}
	rootsSet := map[*ir.Value]bool{v: true}
	var walk func(n *seg.Node)
	walk = func(n *seg.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n.Kind != seg.NValue {
			return
		}
		def := n.Val.Def
		isRoot := def == nil || def.Op == ir.OpMalloc || def.Op == ir.OpAlloc ||
			def.Op == ir.OpCall || def.Op == ir.OpGlobalAddr
		if isRoot {
			rootsSet[n.Val] = true
			return
		}
		// Only walk back through object-preserving defs (field addresses
		// denote the same object as their base).
		switch def.Op {
		case ir.OpCopy, ir.OpPhi, ir.OpLoad, ir.OpFieldAddr:
			preds := rev[n]
			if len(preds) == 0 {
				rootsSet[n.Val] = true
				return
			}
			for _, pn := range preds {
				walk(pn)
			}
		default:
			rootsSet[n.Val] = true
		}
	}
	walk(g.ValueNode(v))
	roots := make([]*ir.Value, 0, len(rootsSet))
	for r := range rootsSet {
		roots = append(roots, r)
	}
	// Deterministic order.
	for i := 0; i < len(roots); i++ {
		for j := i + 1; j < len(roots); j++ {
			if roots[j].ID < roots[i].ID {
				roots[i], roots[j] = roots[j], roots[i]
			}
		}
	}
	return roots
}

// explore expands all local flows from a vertex within a frame.
func (e *Engine) explore(fr *frame, node *seg.Node, sourceAt *ir.Instr, sourceFn *ir.Func, p pathState) {
	if e.expansions >= e.opts.MaxExpansions || e.candidates >= e.opts.MaxCandidates {
		e.stats.TruncatedSearches++
		return
	}
	e.expansions++
	e.stats.Expansions++
	g := e.prog.SEGs[fr.fn]

	// Ascent via parameter: the tracked value entered through fr.fn's
	// interface, so the caller's actual argument carries the same danger
	// after any call (only from the outermost frame — descent frames
	// return through their call site instead).
	if node.Kind == seg.NValue && node.Val.Kind == ir.VParam && fr.retTo == nil {
		e.ascendViaParam(fr, node, sourceAt, sourceFn, p)
	}

	for _, flow := range e.caches.flowsFrom(g, node) {
		term := flow.Terminal()
		if term == node && len(flow.Steps) == 1 && node.Kind == seg.NValue {
			continue
		}
		// Ordering: terminal actions in an anchored frame must be able
		// to execute after the anchor.
		if fr.anchor != nil && term.Instr != nil && !g.HappensAfter(fr.anchor, term.Instr) {
			continue
		}
		np := p.clone()
		if !e.addCond(&np, fr.inst, fr.fn, flow.Cond(g)) {
			e.stats.LinearFiltered++
			continue
		}
		for _, s := range flow.Steps {
			np.steps = append(np.steps, gstep{inst: fr.inst, node: s.Node})
		}

		if e.spec.IsSink(g, term, sourceAt) {
			e.emitCandidate(fr, term, sourceAt, sourceFn, np)
			continue
		}
		switch term.Role {
		case seg.RoleCallArg:
			e.throughCall(fr, term, sourceAt, sourceFn, np)
		case seg.RoleRetArg:
			e.throughReturn(fr, term, sourceAt, sourceFn, np)
		}
	}
}

// bindCallParams records actual=formal equalities for every parameter of a
// call boundary (not just the tracked one): the callee's path conditions may
// reference any of its parameters, and leaving them free loses refutations
// (a guard passed in as an argument, for example).
func (e *Engine) bindCallParams(np *pathState, callerInst int, calleeInst int, call *ir.Instr, callee *ir.Func) {
	n := len(call.Args)
	if len(callee.Params) < n {
		n = len(callee.Params)
	}
	for i := 0; i < n; i++ {
		np.bounds = append(np.bounds, boundary{
			instA: callerInst, valA: call.Args[i],
			instB: calleeInst, valB: callee.Params[i],
			equality: true,
		})
	}
}

// throughCall handles a tracked value passed as a call argument.
func (e *Engine) throughCall(fr *frame, term *seg.Node, sourceAt *ir.Instr, sourceFn *ir.Func, p pathState) {
	call := term.Instr
	callee, known := e.prog.Module.ByName[call.Callee]
	if !known {
		// External: taint-transfer functions propagate to the receiver.
		if e.spec.PropagateCalls[call.Callee] && len(call.Dsts) > 0 && call.Dsts[0] != nil {
			np := p.clone()
			np.bounds = append(np.bounds, boundary{
				instA: fr.inst, valA: term.Val, instB: fr.inst, valB: call.Dsts[0], equality: false,
			})
			g := e.prog.SEGs[fr.fn]
			np.steps = append(np.steps, gstep{inst: fr.inst, node: g.ValueNode(call.Dsts[0])})
			e.explore(fr, g.ValueNode(call.Dsts[0]), sourceAt, sourceFn, np)
		}
		return
	}
	if e.opts.SameUnitOnly && callee.Unit != fr.fn.Unit {
		return
	}
	if fr.depth >= e.opts.MaxCallDepth {
		e.stats.TruncatedSearches++
		return
	}
	if term.ArgIdx >= len(callee.Params) {
		return
	}
	param := callee.Params[term.ArgIdx]
	nfr := &frame{
		fn: callee, inst: e.newInst(), retTo: fr, retCall: call, depth: fr.depth + 1,
	}
	np := p.clone()
	e.bindCallParams(&np, fr.inst, nfr.inst, call, callee)
	cg := e.prog.SEGs[callee]
	np.steps = append(np.steps, gstep{inst: nfr.inst, node: cg.ValueNode(param)})
	e.explore(nfr, cg.ValueNode(param), sourceAt, sourceFn, np)
}

// throughReturn handles a tracked value reaching a return operand.
func (e *Engine) throughReturn(fr *frame, term *seg.Node, sourceAt *ir.Instr, sourceFn *ir.Func, p pathState) {
	retIdx := term.ArgIdx
	if fr.retTo != nil {
		// Pop to the originating call site.
		recv := retReceiver(fr.fn, fr.retCall, retIdx)
		if recv == nil {
			return
		}
		caller := fr.retTo
		np := p.clone()
		np.bounds = append(np.bounds, boundary{
			instA: fr.inst, valA: term.Val, instB: caller.inst, valB: recv, equality: true,
		})
		g := e.prog.SEGs[caller.fn]
		np.steps = append(np.steps, gstep{inst: caller.inst, node: g.ValueNode(recv)})
		e.explore(caller, g.ValueNode(recv), sourceAt, sourceFn, np)
		return
	}
	// Ascend: the search started in this function; every caller receives
	// the value.
	sites := e.prog.Callers[fr.fn]
	for i, cs := range sites {
		if i >= e.opts.MaxCallers {
			e.stats.TruncatedSearches++
			break
		}
		if fr.depth >= e.opts.MaxCallDepth {
			e.stats.TruncatedSearches++
			break
		}
		if e.opts.SameUnitOnly && cs.Fn.Unit != fr.fn.Unit {
			continue
		}
		recv := retReceiver(fr.fn, cs.Instr, retIdx)
		if recv == nil {
			continue
		}
		nfr := &frame{fn: cs.Fn, inst: e.newInst(), depth: fr.depth + 1}
		if !e.opts.IgnoreOrdering && e.spec.OrderingRequired {
			nfr.anchor = cs.Instr
		}
		np := p.clone()
		np.bounds = append(np.bounds, boundary{
			instA: fr.inst, valA: term.Val, instB: nfr.inst, valB: recv, equality: true,
		})
		e.bindCallParams(&np, nfr.inst, fr.inst, cs.Instr, fr.fn)
		// The callee's events only happen if the call executes.
		if !e.addCond(&np, nfr.inst, cs.Fn, e.prog.SEGs[cs.Fn].CD(cs.Instr)) {
			e.stats.LinearFiltered++
			continue
		}
		g := e.prog.SEGs[cs.Fn]
		np.steps = append(np.steps, gstep{inst: nfr.inst, node: g.ValueNode(recv)})
		e.explore(nfr, g.ValueNode(recv), sourceAt, sourceFn, np)
	}
}

// ascendViaParam continues the search in callers when the tracked dangerous
// value is a parameter: the actual argument at every call site carries the
// danger after the call returns. The caller-side value is widened to its
// object roots (when the checker asks for root widening) so sibling
// aliases — other values loaded from the same cell the actual came from —
// are tracked too.
func (e *Engine) ascendViaParam(fr *frame, node *seg.Node, sourceAt *ir.Instr, sourceFn *ir.Func, p pathState) {
	idx := node.Val.ParamIdx
	sites := e.prog.Callers[fr.fn]
	for i, cs := range sites {
		if i >= e.opts.MaxCallers || fr.depth >= e.opts.MaxCallDepth {
			e.stats.TruncatedSearches++
			break
		}
		if e.opts.SameUnitOnly && cs.Fn.Unit != fr.fn.Unit {
			continue
		}
		if idx >= len(cs.Instr.Args) {
			continue
		}
		actual := cs.Instr.Args[idx]
		nfr := &frame{fn: cs.Fn, inst: e.newInst(), depth: fr.depth + 1}
		if !e.opts.IgnoreOrdering && e.spec.OrderingRequired {
			nfr.anchor = cs.Instr
		}
		np := p.clone()
		e.bindCallParams(&np, nfr.inst, fr.inst, cs.Instr, fr.fn)
		// The callee's events only happen if the call executes.
		if !e.addCond(&np, nfr.inst, cs.Fn, e.prog.SEGs[cs.Fn].CD(cs.Instr)) {
			e.stats.LinearFiltered++
			continue
		}
		g := e.prog.SEGs[cs.Fn]
		np.steps = append(np.steps, gstep{inst: nfr.inst, node: g.ValueNode(actual)})
		roots := []*ir.Value{actual}
		if e.spec.WidenToRoots {
			roots = e.objectRoots(g, actual)
		}
		for _, root := range roots {
			e.explore(nfr, g.ValueNode(root), sourceAt, sourceFn, np)
		}
	}
}

// retReceiver maps a return-operand index to the call-site receiver value.
func retReceiver(callee *ir.Func, call *ir.Instr, retIdx int) *ir.Value {
	ret := callee.Exit.Term()
	auxStart := len(ret.Args) - len(callee.AuxOut)
	var dstIdx int
	if retIdx >= auxStart {
		dstIdx = 1 + (retIdx - auxStart)
	} else {
		dstIdx = 0
	}
	if dstIdx >= len(call.Dsts) {
		return nil
	}
	return call.Dsts[dstIdx]
}

// sanitized reports whether the sink is guarded by a sanitizer predicate
// applied to one of the tainted values on the path (the WithSanitizers
// extension). The check walks the sink's transitive control dependences and
// the defining chains of their branch conditions looking for a sanitizer
// call whose argument is a path value.
func (e *Engine) sanitized(fr *frame, sink *seg.Node, p pathState) bool {
	if len(e.spec.SanitizerCalls) == 0 {
		return false
	}
	pathVals := make(map[*ir.Value]bool)
	for _, st := range p.steps {
		if st.inst == fr.inst && st.node.Val != nil {
			pathVals[st.node.Val] = true
		}
	}
	inf := e.prog.Infos[fr.fn]
	seenBlocks := make(map[*ir.Block]bool)
	var fromBlock func(b *ir.Block) bool
	var fromValue func(v *ir.Value, depth int) bool
	fromValue = func(v *ir.Value, depth int) bool {
		if depth > 8 || v.Def == nil {
			return false
		}
		def := v.Def
		if def.Op == ir.OpCall && e.spec.SanitizerCalls[def.Callee] {
			for _, a := range def.Args {
				if pathVals[a] {
					return true
				}
			}
		}
		for _, a := range def.Args {
			if fromValue(a, depth+1) {
				return true
			}
		}
		return false
	}
	fromBlock = func(b *ir.Block) bool {
		if seenBlocks[b] {
			return false
		}
		seenBlocks[b] = true
		for _, dep := range inf.CD[b] {
			if fromValue(dep.Cond(), 0) {
				return true
			}
			if fromBlock(dep.Branch) {
				return true
			}
		}
		return false
	}
	return fromBlock(sink.Instr.Block)
}

// emitCandidate finalizes a candidate path and runs the feasibility check.
func (e *Engine) emitCandidate(fr *frame, sink *seg.Node, sourceAt *ir.Instr, sourceFn *ir.Func, p pathState) {
	key := [2]*ir.Instr{sourceAt, sink.Instr}
	if e.reported[key] {
		return
	}
	if e.sanitized(fr, sink, p) {
		return
	}
	e.candidates++
	e.stats.Candidates++
	c := &candidate{
		steps:     p.steps,
		bounds:    p.bounds,
		conds:     p.conds,
		sink:      sink,
		sinkInst:  fr.inst,
		sourceAt:  sourceAt,
		sourceFn:  sourceFn,
		instances: e.nextInst,
	}
	verdict := smt.Sat
	e.lastWitness = nil
	e.lastCondTerms, e.lastVerdictSource = 0, VerdictUnchecked
	if !e.opts.DisablePathSensitivity {
		verdict = e.checkCandidate(c)
	}
	if verdict != smt.Sat {
		return
	}
	e.reported[key] = true
	var prov *Provenance
	if e.opts.Witness {
		prov = &Provenance{
			Hops:          hopsFromSteps(p.steps, p.conds),
			CondTerms:     e.lastCondTerms,
			VerdictSource: e.lastVerdictSource,
		}
	}
	e.reports = append(e.reports, Report{
		Checker:    e.spec.Name,
		SourceFn:   sourceFn.Name,
		SinkFn:     fr.fn.Name,
		SourcePos:  sourceAt.Pos,
		SinkPos:    sink.Instr.Pos,
		Source:     sourceAt,
		Sink:       sink.Instr,
		PathLen:    len(p.steps),
		Contexts:   countInstances(p.steps),
		Verdict:    verdict,
		Witness:    e.lastWitness,
		Provenance: prov,
	})
}

func countInstances(steps []gstep) int {
	seen := map[int]bool{}
	for _, s := range steps {
		seen[s.inst] = true
	}
	return len(seen)
}
