package detect_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/checkers"
	"repro/internal/detect"
	"repro/internal/obs"
)

// TestCheckAllObsDeterminism is the observability-layer determinism
// guarantee: recording is write-only, so reports are byte-identical with
// tracing on, metrics-only, or fully off, at every worker count.
func TestCheckAllObsDeterminism(t *testing.T) {
	a := buildWorkloadSubject(t)
	specs := checkers.All()

	for _, w := range []int{1, 4, -1} {
		bare := a.CheckAll(specs, detect.Options{Workers: w})
		zeroTimings(&bare)
		if len(bare.Reports) == 0 {
			t.Fatal("workload subject produced no reports; test is vacuous")
		}
		for _, rec := range []*obs.Recorder{obs.New(), obs.NewTracing()} {
			got := a.CheckAll(specs, detect.Options{Workers: w, Obs: rec})
			zeroTimings(&got)
			got.WorkerStats = nil
			if !reflect.DeepEqual(bare.Reports, got.Reports) {
				t.Fatalf("workers=%d tracing=%v: reports differ with recorder attached",
					w, rec.Tracing())
			}
			if !reflect.DeepEqual(bare.Checkers, got.Checkers) {
				t.Fatalf("workers=%d tracing=%v: stats differ with recorder attached\nbare: %+v\nobs:  %+v",
					w, rec.Tracing(), bare.Checkers, got.Checkers)
			}
		}
	}
}

// TestCheckAllTraceShape runs a traced detection pass and checks the trace
// document is valid Chrome trace-event JSON carrying the phase spans, one
// task span per scheduled task, and SMT query spans on worker tracks.
func TestCheckAllTraceShape(t *testing.T) {
	a := buildWorkloadSubject(t)
	rec := obs.NewTracing()
	res := a.CheckAll(checkers.All(), detect.Options{Workers: 4, Obs: rec})

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Tid  int                    `json:"tid"`
			Dur  *float64               `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	phases := map[string]bool{}
	tasks, smtSpans := 0, 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Tid == 0 {
			phases[ev.Name] = true
			continue
		}
		switch {
		case len(ev.Name) > 5 && ev.Name[:5] == "task:":
			tasks++
			if ev.Args["func"] == nil || ev.Args["at"] == nil {
				t.Fatalf("task span %q missing func/at args: %+v", ev.Name, ev.Args)
			}
		case ev.Name == "smt":
			smtSpans++
			if ev.Args["checker"] == nil {
				t.Fatalf("smt span missing checker arg: %+v", ev.Args)
			}
		}
	}
	for _, want := range []string{"detect/prepare", "detect/search", "detect/merge"} {
		if !phases[want] {
			t.Errorf("missing phase span %q; got %v", want, phases)
		}
	}
	totalTasks := 0
	for _, ws := range res.WorkerStats {
		totalTasks += ws.Tasks
	}
	if totalTasks == 0 {
		t.Fatal("no per-worker task counts recorded")
	}
	if tasks != totalTasks {
		t.Errorf("trace has %d task spans, worker stats count %d tasks", tasks, totalTasks)
	}
	if smtSpans == 0 {
		t.Error("no SMT query spans in trace")
	}
}

// TestCheckAllObsCounters checks the scheduler's registry rollup: task and
// report counters, the shared summary-cache hit/miss counters, and the SMT
// latency histogram all land in the recorder and agree with Results.
func TestCheckAllObsCounters(t *testing.T) {
	a := buildWorkloadSubject(t)
	rec := obs.New()
	res := a.CheckAll(checkers.All(), detect.Options{Workers: -1, Obs: rec})
	snap := rec.Snapshot()

	if got := snap.Counters["detect.reports"]; got != int64(len(res.Reports)) {
		t.Errorf("detect.reports = %d, want %d", got, len(res.Reports))
	}
	if got := snap.Counters["summary.cache_hits"]; got != int64(res.SummaryHits) {
		t.Errorf("summary.cache_hits = %d, want %d", got, res.SummaryHits)
	}
	if got := snap.Counters["summary.cache_misses"]; got != int64(res.SummaryMisses) {
		t.Errorf("summary.cache_misses = %d, want %d", got, res.SummaryMisses)
	}
	if res.SummaryHits+res.SummaryMisses == 0 {
		t.Error("summary cache saw no lookups; counters are vacuous")
	}

	// The latency histogram records only queries the DPLL(T) solver actually
	// answered; cache hits and prefilter refutations land in their own
	// counters, and the three stages partition SMTQueries exactly.
	var wantSolved, wantCached, wantPrefiltered, wantQueries int64
	for _, cs := range res.Checkers {
		wantSolved += int64(cs.Stats.SMTSolved)
		wantCached += int64(cs.Stats.SMTCacheHits)
		wantPrefiltered += int64(cs.Stats.SMTPrefilterUnsat)
		wantQueries += int64(cs.Stats.SMTQueries)
	}
	if wantSolved+wantCached+wantPrefiltered != wantQueries {
		t.Errorf("elimination stages sum to %d, want SMTQueries sum %d",
			wantSolved+wantCached+wantPrefiltered, wantQueries)
	}
	h := snap.Histograms["smt.query_ns"]
	if h.Count != wantSolved {
		t.Errorf("smt.query_ns count = %d, want %d (sum of checker SMT solved)", h.Count, wantSolved)
	}
	if wantSolved > 0 && (h.P50 <= 0 || h.P99 < h.P50) {
		t.Errorf("smt.query_ns percentiles malformed: %+v", h)
	}
	if got := snap.Counters["smt.cache_hits"]; got != wantCached {
		t.Errorf("smt.cache_hits = %d, want %d", got, wantCached)
	}
	if got := snap.Counters["smt.prefilter_unsat"]; got != wantPrefiltered {
		t.Errorf("smt.prefilter_unsat = %d, want %d", got, wantPrefiltered)
	}
}

// TestCheckAllWorkerStats checks the per-worker utilization breakdown:
// populated only when a recorder is attached, with every task attributed
// to exactly one worker.
func TestCheckAllWorkerStats(t *testing.T) {
	a := buildWorkloadSubject(t)

	bare := a.CheckAll(checkers.All(), detect.Options{Workers: 3})
	if bare.WorkerStats != nil {
		t.Error("WorkerStats populated without a recorder")
	}

	res := a.CheckAll(checkers.All(), detect.Options{Workers: 3, Obs: obs.New()})
	if len(res.WorkerStats) != 3 {
		t.Fatalf("WorkerStats has %d entries, want 3", len(res.WorkerStats))
	}
	total := 0
	for i, ws := range res.WorkerStats {
		if ws.Worker != i {
			t.Errorf("WorkerStats[%d].Worker = %d", i, ws.Worker)
		}
		if ws.Tasks > 0 && ws.Busy <= 0 {
			t.Errorf("worker %d ran %d tasks with zero busy time", i, ws.Tasks)
		}
		total += ws.Tasks
	}
	if total == 0 {
		t.Fatal("no tasks attributed to any worker")
	}
}
