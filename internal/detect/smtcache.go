package detect

// SMT query elimination: the layer between the candidate search and the
// DPLL(T) core. Every candidate's asserted term sequence runs through a
// three-stage pipeline (decideQuery):
//
//  1. a linear-time semi-decision prefilter (smt.Prefilter) that refutes
//     obviously contradictory queries without building CNF;
//  2. a canonical verdict cache keyed on smt.Fingerprint: isomorphic
//     queries — same guards instantiated in different contexts — are
//     solved once per Program and replayed from the cache, models
//     included, reproducing a fresh solve byte-for-byte;
//  3. a pooled, resettable solver for the residue that actually needs
//     DPLL(T).
//
// The cache is sharded and lock-striped so all workers and checkers share
// it without contention, lives on detect.Program, and — because verdicts
// are pure functions of the formula, independent of the program that
// produced it — is carried wholesale across incremental rebuilds by
// NewProgramFrom.

import (
	"sync"
	"sync/atomic"

	"repro/internal/smt"
)

// queryOutcome records which pipeline stage produced a verdict.
type queryOutcome uint8

const (
	// querySolved: the query entered the DPLL(T) loop.
	querySolved queryOutcome = iota
	// queryCacheExact: the verdict (and model, if Sat) was replayed from
	// the exact (alpha-normalized, order-preserving) cache tier.
	queryCacheExact
	// queryCacheShape: the Unsat verdict came from the
	// commutative-normalized shape tier.
	queryCacheShape
	// queryPrefilterUnsat: the semi-decision prefilter refuted the query.
	queryPrefilterUnsat
)

// isCacheHit groups the two cache tiers for the stats split, which counts
// them together as SMTCacheHits.
func (o queryOutcome) isCacheHit() bool {
	return o == queryCacheExact || o == queryCacheShape
}

const smtCacheShards = 32

// smtVerdict is one cached exact-key entry: the verdict plus, for Sat, the
// model over canonical variable ids (projected back through each hitting
// query's own variable names).
type smtVerdict struct {
	res   smt.Result
	model map[int]bool
}

type smtCacheShard struct {
	mu sync.RWMutex
	// exact: alpha-normalized order-preserving key -> full verdict.
	exact map[[32]byte]*smtVerdict
	// shape: commutative-normalized key -> present iff proven Unsat.
	// Sat models and budget-limited Unknowns are never served from the
	// shape tier (solver runs for shape-variants are not isomorphic).
	shape map[[32]byte]struct{}
}

// smtVerdictCache is the sharded, concurrency-safe canonical verdict
// cache.
type smtVerdictCache struct {
	shards [smtCacheShards]smtCacheShard
	// backing, when set, is a persistent store consulted after both memory
	// tiers miss and written through on fresh solves, so verdicts survive
	// process restarts (see verdictstore.go). Attached via
	// Program.AttachStore.
	backing atomic.Pointer[verdictBacking]
}

func newSMTVerdictCache() *smtVerdictCache {
	c := &smtVerdictCache{}
	for i := range c.shards {
		c.shards[i].exact = make(map[[32]byte]*smtVerdict)
		c.shards[i].shape = make(map[[32]byte]struct{})
	}
	return c
}

func (c *smtVerdictCache) shard(key [32]byte) *smtCacheShard {
	return &c.shards[int(key[0])%smtCacheShards]
}

// lookup consults the exact tier, then the Unsat-only shape tier. On an
// exact Sat hit the cached canonical model is projected into this query's
// variable names. The returned outcome distinguishes the tier that hit
// (queryCacheExact / queryCacheShape); it is querySolved when the cache
// missed.
func (c *smtVerdictCache) lookup(fp *smt.Canon) (smt.Result, map[string]bool, queryOutcome, bool) {
	sh := c.shard(fp.Exact)
	sh.mu.RLock()
	v, ok := sh.exact[fp.Exact]
	sh.mu.RUnlock()
	if ok {
		return v.res, fp.ProjectModel(v.model), queryCacheExact, true
	}
	sh = c.shard(fp.Shape)
	sh.mu.RLock()
	_, ok = sh.shape[fp.Shape]
	sh.mu.RUnlock()
	if ok {
		return smt.Unsat, nil, queryCacheShape, true
	}
	return c.backingLookup(fp)
}

// store records a solved verdict. Exact entries are stored for every
// verdict; the shape tier only ever records Unsat (the only verdict whose
// replay is sound across commutative reordering). When the solve ran on a
// long-lived incremental solver (learned-clause retention), only Unsat is
// stored at all: retained state may change Sat models and the Unknown
// budget boundary, and serving those to a non-incremental run would break
// its byte-identical-replay guarantee.
func (c *smtVerdictCache) store(fp *smt.Canon, res smt.Result, model map[int]bool, incremental bool) {
	if incremental && res != smt.Unsat {
		return
	}
	sh := c.shard(fp.Exact)
	sh.mu.Lock()
	_, dup := sh.exact[fp.Exact]
	if !dup {
		sh.exact[fp.Exact] = &smtVerdict{res: res, model: model}
	}
	sh.mu.Unlock()
	if res == smt.Unsat {
		sh = c.shard(fp.Shape)
		sh.mu.Lock()
		sh.shape[fp.Shape] = struct{}{}
		sh.mu.Unlock()
	}
	if !dup {
		c.backingStore(fp, res, model)
	}
}

// size returns the number of exact entries (for diagnostics).
func (c *smtVerdictCache) size() int {
	exact, _ := c.sizes()
	return exact
}

// sizes returns the exact- and shape-tier entry counts (for diagnostics).
func (c *smtVerdictCache) sizes() (exact, shape int) {
	for i := range c.shards {
		c.shards[i].mu.RLock()
		exact += len(c.shards[i].exact)
		shape += len(c.shards[i].shape)
		c.shards[i].mu.RUnlock()
	}
	return exact, shape
}

// decideQuery runs the elimination pipeline over an asserted term
// sequence, falling back to asserting into s and solving. It returns the
// verdict, a boolean model for Sat (nil otherwise), and the stage that
// produced the verdict. s must be in its post-Reset (or post-Push) state,
// with every term built from s.TB.
func decideQuery(s *smt.Solver, terms []*smt.Term, cache *smtVerdictCache, opts Options) (smt.Result, map[string]bool, queryOutcome) {
	if !opts.DisableSMTPrefilter {
		if smt.Prefilter(terms) == smt.Unsat {
			return smt.Unsat, nil, queryPrefilterUnsat
		}
	}
	var fp *smt.Canon
	useCache := cache != nil && !opts.DisableSMTCache
	if useCache {
		fp = smt.Fingerprint(terms)
		if res, model, tier, ok := cache.lookup(fp); ok {
			return res, model, tier
		}
	}
	for _, t := range terms {
		s.Assert(t)
	}
	res := s.Check()
	var model map[string]bool
	if res == smt.Sat {
		model = s.BoolModel()
	}
	if useCache {
		cache.store(fp, res, fp.CanonModel(model), opts.SMTIncremental)
	}
	return res, model, querySolved
}
