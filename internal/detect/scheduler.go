package detect

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkers"
	"repro/internal/conc"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/seg"
)

// This file implements the parallel detection scheduler. The paper's
// detection phase (§3.3) is embarrassingly parallel across demand sources:
// each source→sink search composes immutable per-function SEGs and
// memoized local summaries, so independent (checker, source) pairs never
// need to observe each other. CheckAll enumerates every pair up front,
// dispatches them to a bounded worker pool, and merges the per-task results
// in task order, which makes the output bit-for-bit identical to a
// sequential run:
//
//   - prepare() freezes the shared program state (control-dependence
//     conditions, SEG value vertices, block reachability) so workers only
//     read it; the remaining mutable state (flow summaries, linear solvers,
//     reverse indexes, the per-function condition builders) is lock-guarded
//     and memoizes pure functions of the frozen program, so cache contents
//     never depend on scheduling;
//   - each task runs a fresh Engine whose per-source instance counter
//     starts at zero, so SMT variable names, assertion order, and hence
//     witnesses are per-task deterministic;
//   - per-task stats are merged in task order and reports are sorted by
//     (checker, source position, sink position) at the end.

// CheckerStats pairs a checker name with its aggregated effort counters.
type CheckerStats struct {
	Checker string
	Stats   Stats
}

// String renders the per-checker -stats line shared by cmd/pinpoint and
// the examples. Unreleased-resource checkers use the allocation-shaped
// counters; everything else the source–sink shape.
func (cs CheckerStats) String() string {
	if sp, ok := checkers.ByName(cs.Checker); ok && sp.Kind == checkers.KindUnreleased {
		ls := LeakStats{
			Allocs: cs.Stats.Sources, Escaped: cs.Stats.Escaped,
			SMTQueries: cs.Stats.SMTQueries, Solved: cs.Stats.SMTSolved,
			CacheHits: cs.Stats.SMTCacheHits, PrefilterUnsat: cs.Stats.SMTPrefilterUnsat,
		}
		return fmt.Sprintf("%s: %s", cs.Checker, ls)
	}
	return fmt.Sprintf("%s: %s", cs.Checker, cs.Stats)
}

// WorkerStat describes one worker's share of a CheckAll run. Recorded only
// when Options.Obs is set; task counts and busy times depend on scheduling
// and are not part of the deterministic result surface.
type WorkerStat struct {
	// Worker is the worker index (0-based; trace track Worker+1).
	Worker int
	// Tasks is the number of detection tasks the worker executed.
	Tasks int
	// Busy is the total wall-clock the worker spent inside tasks;
	// Busy/Results.Wall is the worker's utilization.
	Busy time.Duration
}

// Results is the outcome of one CheckAll run.
type Results struct {
	// Reports holds every checker's reports, sorted by (checker, source
	// position, sink position).
	Reports []Report
	// Checkers aggregates per-checker stats, parallel to the specs given
	// to CheckAll. SummaryCapHits is zero here — the summary cache is
	// shared across checkers; see SummaryCapHits below.
	Checkers []CheckerStats
	// SummaryCapHits counts truncated summary enumerations across the
	// shared flow cache (deterministic: truncation is a property of each
	// vertex, not of scheduling).
	SummaryCapHits int
	// Workers is the resolved worker-pool size.
	Workers int
	// Wall is the detection wall-clock time, including preparation,
	// search, SMT solving, and merging.
	Wall time.Duration
	// SummaryHits/SummaryMisses are the shared flow-cache lookup counters
	// (hit rate = Hits / (Hits + Misses)).
	SummaryHits   int
	SummaryMisses int
	// WorkerStats is the per-worker task/busy-time breakdown, populated
	// only when Options.Obs is set.
	WorkerStats []WorkerStat
}

// task is one unit of detection work: a (checker, source) pair for
// source–sink checkers, or a (checker, allocation) pair for
// unreleased-resource checkers.
type task struct {
	specIdx int
	fn      *ir.Func
	g       *seg.Graph
	src     checkers.Source // KindSourceSink
	alloc   *ir.Instr       // KindUnreleased
}

// pos locates the task's demand source for trace annotations.
func (t task) pos() minic.Pos {
	if t.alloc != nil {
		return t.alloc.Pos
	}
	return t.src.At.Pos
}

type taskResult struct {
	reports []Report
	stats   Stats
}

// CheckAll runs every given checker over the program on a bounded worker
// pool (opts.Workers; 0/1 = sequential, negative = GOMAXPROCS). Reports and
// stats are identical at every worker count.
func CheckAll(prog *Program, specs []*checkers.Spec, opts Options) Results {
	start := time.Now()
	opts = opts.withDefaults()
	rec := opts.Obs
	workers := conc.Workers(opts.Workers)

	c := prog.sticky
	if c == nil {
		c = newCaches(prog)
	}
	prepSp := rec.Phase("detect/prepare")
	prepare(prog, specs, workers)
	prepSp.End()

	var lc *leakChecker
	for _, sp := range specs {
		if sp.Kind == checkers.KindUnreleased {
			lc = newLeakChecker(prog, opts, c)
			break
		}
	}

	tasks := enumerateTasks(prog, specs)
	results := make([]taskResult, len(tasks))
	var wstats []WorkerStat
	if rec != nil {
		wstats = make([]WorkerStat, workers)
		for w := range wstats {
			wstats[w].Worker = w
		}
	}
	searchSp := rec.Phase("detect/search")
	runParallel(len(tasks), workers, func(w, i int) {
		t := tasks[i]
		if rec == nil {
			results[i] = runTask(prog, specs, opts, c, lc, t, w+1)
			return
		}
		t0 := time.Now()
		results[i] = runTask(prog, specs, opts, c, lc, t, w+1)
		d := time.Since(t0)
		// wstats[w] is only ever touched by worker w: no lock needed.
		wstats[w].Tasks++
		wstats[w].Busy += d
		if rec.Tracing() {
			args := []obs.Arg{
				{Key: "func", Val: t.fn.Name},
				{Key: "at", Val: t.pos().String()},
			}
			if opts.TraceID != "" {
				// Correlates this span with the request-scoped log lines
				// and the report envelope of the analysis service.
				args = append(args, obs.Arg{Key: "trace_id", Val: opts.TraceID})
			}
			rec.Event(w+1, "task:"+specs[t.specIdx].Name, t0, d, args...)
		}
	})
	searchSp.End()

	mergeSp := rec.Phase("detect/merge")
	res := Results{Workers: workers, WorkerStats: wstats}
	for si, sp := range specs {
		merged := Stats{}
		var reports []Report
		seen := make(map[[2]*ir.Instr]bool)
		for ti, t := range tasks {
			if t.specIdx != si {
				continue
			}
			tr := results[ti]
			addStats(&merged, tr.stats)
			for _, r := range tr.reports {
				key := [2]*ir.Instr{r.Source, r.Sink}
				if r.Sink != nil && seen[key] {
					continue
				}
				seen[key] = true
				reports = append(reports, r)
			}
			if opts.MaxReportsPerChecker > 0 && len(reports) >= opts.MaxReportsPerChecker {
				break
			}
		}
		res.Checkers = append(res.Checkers, CheckerStats{Checker: sp.Name, Stats: merged})
		res.Reports = append(res.Reports, reports...)
	}
	res.SummaryCapHits = c.capHits()
	res.SummaryHits, res.SummaryMisses = c.summaryStats()
	SortReports(res.Reports)
	mergeSp.End()
	res.Wall = time.Since(start)

	if rec != nil {
		rec.Counter("detect.tasks").Add(int64(len(tasks)))
		rec.Counter("detect.reports").Add(int64(len(res.Reports)))
		rec.Counter("summary.cache_hits").Add(int64(res.SummaryHits))
		rec.Counter("summary.cache_misses").Add(int64(res.SummaryMisses))
		rec.Counter("summary.cap_hits").Add(int64(res.SummaryCapHits))
		rec.Gauge("detect.workers").Set(int64(workers))
		for _, ws := range wstats {
			rec.Histogram("detect.worker_busy_ns").Observe(int64(ws.Busy))
		}
	}
	return res
}

// prepare freezes the shared program state: control-dependence conditions
// are memoized per block, every value vertex the search can name is
// pre-created, and (when some checker needs ordering) block reachability is
// pre-filled. Each function is touched by exactly one goroutine, so the
// per-function work — including condition-node interning — happens in a
// deterministic order.
func prepare(prog *Program, specs []*checkers.Spec, workers int) {
	needReach := false
	for _, sp := range specs {
		if sp.OrderingRequired {
			needReach = true
		}
	}
	funcs := prog.Module.Funcs
	runParallel(len(funcs), workers, func(_, i int) {
		f := funcs[i]
		g := prog.SEGs[f]
		if g == nil {
			return
		}
		prog.Infos[f].PrepareCDConds()
		g.EnsureValueNodes()
		if needReach {
			g.PrecomputeReach()
		}
	})
}

// enumerateTasks lists every (checker, source) pair in the canonical order:
// specs in argument order, functions in module order, sources in extraction
// order. The merge phase walks tasks in this same order, which is what
// reproduces the sequential engine's dedup and cap semantics exactly.
func enumerateTasks(prog *Program, specs []*checkers.Spec) []task {
	var tasks []task
	for si, sp := range specs {
		for _, f := range prog.Module.Funcs {
			g := prog.SEGs[f]
			if g == nil {
				continue
			}
			if sp.Kind == checkers.KindUnreleased {
				for _, b := range f.Blocks {
					for _, in := range b.Instrs {
						if in.Op == ir.OpMalloc {
							tasks = append(tasks, task{specIdx: si, fn: f, g: g, alloc: in})
						}
					}
				}
				continue
			}
			for _, src := range sp.LocalSources(g) {
				tasks = append(tasks, task{specIdx: si, fn: f, g: g, src: src})
			}
		}
	}
	return tasks
}

// runTask executes one unit of work with a fresh per-task engine over the
// shared caches. tid is the executing worker's trace track (worker+1).
func runTask(prog *Program, specs []*checkers.Spec, opts Options, c *caches, lc *leakChecker, t task, tid int) taskResult {
	sp := specs[t.specIdx]
	if sp.Kind == checkers.KindUnreleased {
		var ls LeakStats
		ls.Allocs++
		rep, escaped := lc.checkAlloc(t.fn, t.g, t.alloc, &ls, tid)
		if escaped {
			ls.Escaped++
		}
		tr := taskResult{stats: Stats{
			Sources:           ls.Allocs,
			Escaped:           ls.Escaped,
			SMTQueries:        ls.SMTQueries,
			SMTSolved:         ls.Solved,
			SMTCacheHits:      ls.CacheHits,
			SMTPrefilterUnsat: ls.PrefilterUnsat,
			SMTTime:           ls.SMTTime,
		}}
		if rep != nil {
			tr.reports = []Report{leakToReport(sp.Name, *rep)}
		}
		return tr
	}
	eng := &Engine{
		prog:     prog,
		spec:     sp,
		opts:     opts,
		caches:   c,
		reported: make(map[[2]*ir.Instr]bool),
		obs:      opts.Obs,
		tid:      tid,
	}
	eng.stats.Sources = 1
	eng.searchFromSource(t.fn, t.g, t.src)
	eng.releaseSolver()
	return taskResult{reports: eng.reports, stats: eng.stats}
}

func addStats(dst *Stats, s Stats) {
	dst.Sources += s.Sources
	dst.Expansions += s.Expansions
	dst.Candidates += s.Candidates
	dst.LinearFiltered += s.LinearFiltered
	dst.SMTQueries += s.SMTQueries
	dst.SMTSat += s.SMTSat
	dst.SMTUnsat += s.SMTUnsat
	dst.SMTUnknown += s.SMTUnknown
	dst.SMTSolved += s.SMTSolved
	dst.SMTCacheHits += s.SMTCacheHits
	dst.SMTPrefilterUnsat += s.SMTPrefilterUnsat
	dst.SMTTime += s.SMTTime
	dst.SummaryCapHits += s.SummaryCapHits
	dst.TruncatedSearches += s.TruncatedSearches
	dst.Escaped += s.Escaped
}

// runParallel executes fn(worker, 0..n-1) on up to `workers` goroutines,
// pulling indexes from an atomic counter (the same pool shape as the build
// half's forEachFunc). The worker index lets callers attribute work to
// pool slots (per-worker utilization, trace tracks) without locking.
func runParallel(n, workers int, fn func(w, i int)) {
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var (
		wg   sync.WaitGroup
		next int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
