package detect_test

import (
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
)

// Provenance determinism: with Options.Witness on, the captured hops and
// path-condition sizes are pure functions of the program, so reports must
// be byte-identical across worker counts and across warm/cold sessions.
// The verdict source needs care: its solved-vs-cache_exact split mirrors
// Stats.SMTSolved/SMTCacheHits and depends on cache warmth and worker
// interleaving, so the default-mode comparison masks it (and separately
// pins its value set), while the cache-disabled comparison — where every
// verdict is deterministically "solved" or "prefilter" — compares every
// byte including it.

// witnessReports runs all checkers with provenance capture on and returns
// the reports.
func witnessReports(t *testing.T, a *core.Analysis, opts detect.Options) []detect.Report {
	t.Helper()
	opts.Witness = true
	return a.CheckAll(checkers.All(), opts).Reports
}

// maskVerdictSource clones the reports with every provenance verdict
// source forced to a fixed value, leaving everything else untouched.
func maskVerdictSource(rs []detect.Report) []detect.Report {
	out := make([]detect.Report, len(rs))
	for i, r := range rs {
		out[i] = r
		if r.Provenance != nil {
			p := *r.Provenance
			p.VerdictSource = detect.VerdictSolved
			out[i].Provenance = &p
		}
	}
	return out
}

func marshalJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func toJSONReports(rs []detect.Report) []detect.JSONReport {
	js := make([]detect.JSONReport, len(rs))
	for i, r := range rs {
		js[i] = r.ToJSON()
	}
	return js
}

func TestWitnessDeterminismAcrossWorkers(t *testing.T) {
	units := exampleUnits(t)

	// Cache and prefilter disabled: the verdict source is deterministic,
	// so the full JSON — provenance bytes included — must agree between a
	// sequential and a GOMAXPROCS run on independent cold builds.
	strict := detect.Options{DisableSMTCache: true}
	var strictBaseline string
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		a, err := core.BuildFromSource(units, core.BuildOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		opts := strict
		opts.Workers = workers
		got := marshalJSON(t, toJSONReports(witnessReports(t, a, opts)))
		if strictBaseline == "" {
			strictBaseline = got
		} else if got != strictBaseline {
			t.Errorf("workers=%d: cache-disabled witness reports differ from sequential run", workers)
		}
	}

	// Default mode: everything except the verdict source must still be
	// byte-identical; the verdict source must stay inside {solved,
	// cache_exact} (reports are Sat, so the Unsat-only stages can never
	// appear).
	var defBaseline string
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		a, err := core.BuildFromSource(units, core.BuildOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reports := witnessReports(t, a, detect.Options{Workers: workers})
		for _, r := range reports {
			if r.Provenance == nil {
				t.Fatalf("report %s has no provenance with Witness on", r)
			}
			switch r.Provenance.VerdictSource {
			case detect.VerdictSolved, detect.VerdictCacheExact, detect.VerdictStructural:
			default:
				t.Errorf("report %s: unexpected verdict source %s", r, r.Provenance.VerdictSource)
			}
			if r.Sink != nil && len(r.Provenance.Hops) == 0 {
				t.Errorf("source–sink report %s has no hops", r)
			}
			if r.Sink != nil && r.Provenance.CondTerms == 0 {
				t.Errorf("path-checked report %s has CondTerms = 0", r)
			}
		}
		got := marshalJSON(t, toJSONReports(maskVerdictSource(reports)))
		if defBaseline == "" {
			defBaseline = got
		} else if got != defBaseline {
			t.Errorf("workers=%d: masked witness reports differ from sequential run", workers)
		}
	}
}

func TestWitnessDeterminismWarmCold(t *testing.T) {
	units := exampleUnits(t)
	workers := runtime.GOMAXPROCS(0)

	// Cold: a fresh one-shot build.
	cold, err := core.BuildFromSource(units, core.BuildOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	strict := detect.Options{DisableSMTCache: true, Workers: workers}
	coldStrict := marshalJSON(t, toJSONReports(witnessReports(t, cold, strict)))
	coldMasked := marshalJSON(t, toJSONReports(maskVerdictSource(witnessReports(t, cold, detect.Options{Workers: workers}))))

	// Warm: a session updated twice with identical sources — every
	// artifact is retained and the sticky detection caches (and the SMT
	// verdict cache) carry over.
	sess := core.NewSession(core.BuildOptions{Workers: workers})
	if _, err := sess.Update(units); err != nil {
		t.Fatal(err)
	}
	if _, err := witnessWarmup(sess); err != nil {
		t.Fatal(err)
	}
	warm, err := sess.Update(units)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Artifacts.Hits == 0 || warm.Artifacts.Misses+warm.Artifacts.Invalidated != 0 {
		t.Fatalf("expected an all-hits warm update, got %+v", warm.Artifacts)
	}
	if got := marshalJSON(t, toJSONReports(witnessReports(t, warm, strict))); got != coldStrict {
		t.Error("cache-disabled witness reports differ between warm and cold builds")
	}
	if got := marshalJSON(t, toJSONReports(maskVerdictSource(witnessReports(t, warm, detect.Options{Workers: workers})))); got != coldMasked {
		t.Error("masked witness reports differ between warm and cold builds")
	}
}

// witnessWarmup heats the session's sticky caches and SMT verdict cache by
// running a full default-mode detection pass between the two Updates.
func witnessWarmup(sess *core.Session) (detect.Results, error) {
	a := sess.Analysis()
	return a.CheckAll(checkers.All(), detect.Options{Witness: true, Workers: -1}), nil
}

// TestWitnessOffNoProvenance pins the gating: without Options.Witness no
// report carries provenance (the hot path allocates nothing for it).
func TestWitnessOffNoProvenance(t *testing.T) {
	a, err := core.BuildFromSource(exampleUnits(t), core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := a.CheckAll(checkers.All(), detect.Options{})
	if len(res.Reports) == 0 {
		t.Fatal("examples produced no reports")
	}
	for _, r := range res.Reports {
		if r.Provenance != nil {
			t.Errorf("report %s carries provenance with Witness off", r)
		}
		if r.ToJSON().Provenance != nil {
			t.Errorf("JSON report for %s carries provenance with Witness off", r)
		}
	}
}
