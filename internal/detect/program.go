// Package detect implements Pinpoint's demand-driven, compositional,
// context- and path-sensitive global value-flow analysis (§3.3).
//
// Given the per-function SEGs, a checker spec (package checkers) and a
// source, the engine searches forward along value-flow edges, composing
// memoized local flows (package summary) across function boundaries:
//
//   - at a call argument it descends into the callee's parameter (the
//     context grows by the call site — cloning-based context sensitivity);
//   - at a return operand it pops back to the originating call site's
//     receiver, or, when the search started inside the callee, ascends to
//     every caller (capped);
//   - when the tracked value is a parameter of the source's own function,
//     the search likewise ascends: the caller's actual argument is the
//     dangling value after the call (the VF3 pattern of §3.3.2).
//
// Each candidate source→sink path is translated to an SMT query
// implementing Equations 1–3: the conjunction of edge conditions, control
// dependences, inter-procedural boundary equalities, and the recursive
// data-dependence closure DD(·), with every variable renamed per context
// instance. Apparently-contradictory candidates are discarded by the
// linear-time solver first; only survivors reach the SMT solver.
package detect

import (
	"fmt"
	"time"

	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/seg"
	"repro/internal/smt"
	"repro/internal/ssa"
)

// CallSite locates one call instruction.
type CallSite struct {
	Fn    *ir.Func
	Instr *ir.Instr
}

// Program bundles the whole-program analysis artifacts.
type Program struct {
	Module  *ir.Module
	Infos   map[*ir.Func]*ssa.Info
	SEGs    map[*ir.Func]*seg.Graph
	Callers map[*ir.Func][]CallSite

	// sticky, when non-nil, holds detection caches that persist across
	// CheckAll calls on this Program (and, via NewProgramFrom, across
	// incremental rebuilds). Plain NewProgram leaves it nil, so each
	// CheckAll starts cold — the historical behavior that scaling
	// measurements rely on.
	sticky *caches

	// smtCache is the canonical SMT verdict cache (see smtcache.go),
	// shared by all workers and checkers. Unlike sticky it is always
	// present: verdicts are pure functions of the formula, so sharing them
	// across CheckAll calls (and, via NewProgramFrom, across incremental
	// rebuilds) can change which pipeline stage answers a query but never
	// the answer itself.
	smtCache *smtVerdictCache
}

// NewProgram indexes the call sites of a fully analyzed module.
func NewProgram(m *ir.Module, infos map[*ir.Func]*ssa.Info, segs map[*ir.Func]*seg.Graph) *Program {
	p := &Program{
		Module:   m,
		Infos:    infos,
		SEGs:     segs,
		Callers:  make(map[*ir.Func][]CallSite),
		smtCache: newSMTVerdictCache(),
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				if callee, ok := m.ByName[in.Callee]; ok {
					p.Callers[callee] = append(p.Callers[callee], CallSite{Fn: f, Instr: in})
				}
			}
		}
	}
	return p
}

// SMTCacheStats reports the verdict cache's per-tier occupancy: exact
// alpha-normalized entries and commutative shape-tier entries. Read-only
// and safe to call concurrently with detection (shards lock per read); the
// numbers are a diagnostic snapshot, not part of the deterministic result
// surface.
func (p *Program) SMTCacheStats() (exact, shape int) {
	if p.smtCache == nil {
		return 0, 0
	}
	return p.smtCache.sizes()
}

// EnableCachePersistence makes detection caches survive across CheckAll
// calls on this Program. Cache contents are memoized pure functions of the
// frozen per-function SEGs, so persistence changes wall-clock and the
// hit/miss counters but never the reports.
func (p *Program) EnableCachePersistence() {
	if p.sticky == nil {
		p.sticky = newCaches(p)
	}
}

// NewProgramFrom indexes a rebuilt module and carries over prev's persistent
// detection caches for every function whose SEG pointer survived the rebuild
// — exactly the functions the incremental session retained. Rebuilt
// functions get fresh (empty) cache entries. The returned Program has cache
// persistence enabled.
func NewProgramFrom(prev *Program, m *ir.Module, infos map[*ir.Func]*ssa.Info, segs map[*ir.Func]*seg.Graph) *Program {
	p := NewProgram(m, infos, segs)
	p.sticky = newCaches(p)
	if prev != nil && prev.smtCache != nil {
		// Verdicts key on the formula alone, so the whole cache survives
		// the rebuild regardless of which functions changed.
		p.smtCache = prev.smtCache
	}
	if prev == nil || prev.sticky == nil {
		return p
	}
	old := prev.sticky
	for f, g := range segs {
		if g == nil {
			continue
		}
		if ft, ok := old.flows[g]; ok {
			p.sticky.flows[g] = ft
		}
		if re, ok := old.rev[g]; ok {
			p.sticky.rev[g] = re
		}
		if lc, ok := old.lin[f]; ok {
			p.sticky.lin[f] = lc
		}
	}
	return p
}

// Options tunes the engine. The zero value selects paper-like defaults.
type Options struct {
	// MaxCallDepth bounds the number of function instances on one path
	// (the paper uses six nested levels).
	MaxCallDepth int
	// MaxExpansions bounds search work per source.
	MaxExpansions int
	// MaxCandidates bounds candidate paths per source.
	MaxCandidates int
	// MaxCallers bounds call sites enumerated per ascent.
	MaxCallers int
	// DisablePathSensitivity skips the SMT feasibility check and reports
	// every candidate (the path-sensitivity ablation).
	DisablePathSensitivity bool
	// SMTBudget bounds DD constraints emitted per query.
	SMTBudget int
	// MaxReportsPerChecker stops after this many reports (0 = unlimited).
	MaxReportsPerChecker int
	// SameUnitOnly confines the search to one compilation unit (the
	// Infer-/CSA-like baselines of §5.4 analyze one unit at a time).
	SameUnitOnly bool
	// IgnoreOrdering drops the happens-after requirement of
	// ordering-sensitive checkers (a deliberate imprecision of the
	// Infer-like baseline).
	IgnoreOrdering bool
	// DisableLinearFilter turns off the linear-time contradiction
	// pre-filter on accumulated path conditions, sending every candidate
	// to the SMT solver (the §3.1.1 ablation).
	DisableLinearFilter bool
	// DisableSMTCache turns off the canonical verdict cache, solving
	// every candidate query even when an isomorphic formula was already
	// decided. Reports are identical either way.
	DisableSMTCache bool
	// DisableSMTPrefilter turns off the linear-time semi-decision
	// refutation pass that answers Unsat without entering the DPLL(T)
	// loop. Reports are identical either way.
	DisableSMTPrefilter bool
	// SMTIncremental solves the candidates of one (checker, source) task
	// against a single long-lived solver using assumption-scoped
	// Push/Pop with learned-clause retention, instead of resetting the
	// solver per candidate. Retained clauses can steer the SAT search, so
	// Sat witnesses may differ (reports may not be byte-identical to the
	// default mode); off by default.
	SMTIncremental bool
	// Workers sets the detection worker-pool size used by CheckAll: 0 or
	// 1 runs sequentially, negative selects GOMAXPROCS. The reported
	// results are identical at every setting; only wall-clock changes.
	Workers int
	// Witness enables per-report provenance capture (Report.Provenance):
	// the ordered value-flow hops of the reported path, the
	// path-condition term count, and the verdict source. Off by default,
	// in which case the search allocates nothing for provenance.
	Witness bool
	// TraceID, when non-empty, tags every scheduler task span with a
	// trace_id argument so trace events can be correlated with the
	// request-scoped log lines and reports of the analysis service.
	TraceID string
	// Obs, when non-nil, receives detection metrics (SMT latency
	// histograms, SAT-core counters, summary-cache hit rates, per-worker
	// utilization) and — when the recorder is tracing — per-task and
	// per-SMT-query spans. Recording never changes the reported results;
	// nil disables all of it.
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.MaxCallDepth == 0 {
		o.MaxCallDepth = 6
	}
	if o.MaxExpansions == 0 {
		o.MaxExpansions = 8000
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 128
	}
	if o.MaxCallers == 0 {
		o.MaxCallers = 8
	}
	if o.SMTBudget == 0 {
		o.SMTBudget = 500
	}
	return o
}

// Report is one warning. Source–sink checkers fill the sink fields; the
// unreleased-resource (memory-leak) checker leaves Sink nil and sets Kind.
type Report struct {
	Checker string
	// Kind sub-classifies reports of checkers that distinguish flavors
	// (memory-leak: "never-freed" / "conditionally-freed"); empty for
	// plain source–sink reports.
	Kind      string
	SourceFn  string
	SinkFn    string
	SourcePos minic.Pos
	SinkPos   minic.Pos
	Source    *ir.Instr
	Sink      *ir.Instr
	// PathLen is the number of SEG vertices on the witnessing path.
	PathLen int
	// Contexts is the number of function instances traversed.
	Contexts int
	// Verdict records the SMT result (Sat unless path sensitivity is
	// disabled, in which case candidates are reported unchecked).
	Verdict smt.Result
	// Witness is a satisfying assignment of the branch conditions along
	// the path — the trigger recipe for the bug. Entries look like
	// "c@f = true". Empty when path sensitivity is disabled.
	Witness []string
	// Provenance, captured only when Options.Witness is on, explains the
	// report: the traversed value-flow hops, the path-condition size, and
	// the verdict source. Nil otherwise.
	Provenance *Provenance
}

func (r Report) String() string {
	if r.Sink == nil && r.Kind != "" {
		return fmt.Sprintf("[%s] allocation at %s (%s) is %s", r.Checker, r.SourcePos, r.SourceFn, r.Kind)
	}
	return fmt.Sprintf("[%s] value from %s (%s) reaches %s (%s); path %d vertices, %d contexts",
		r.Checker, r.SourcePos, r.SourceFn, r.SinkPos, r.SinkFn, r.PathLen, r.Contexts)
}

// Stats aggregates engine effort counters.
type Stats struct {
	Sources        int
	Expansions     int
	Candidates     int
	LinearFiltered int
	SMTQueries     int
	SMTSat         int
	SMTUnsat       int
	SMTUnknown     int
	// The next three partition SMTQueries by the pipeline stage that
	// answered (see smtcache.go). SMTPrefilterUnsat is a deterministic
	// property of each candidate; the SMTSolved/SMTCacheHits split depends
	// on which worker reached a formula first and on cache warmth across
	// CheckAll calls, so only their sum is schedule-independent.
	SMTSolved         int
	SMTCacheHits      int
	SMTPrefilterUnsat int
	SMTTime           time.Duration
	SummaryCapHits    int
	TruncatedSearches int
	// Escaped counts allocations conservatively assumed freed elsewhere
	// (unreleased-resource checkers only).
	Escaped int
}

// String renders the source–sink effort counters in the one-line shape
// shared by cmd/pinpoint's -stats output and the examples.
func (s Stats) String() string {
	return fmt.Sprintf("%d sources, %d candidates, %d SMT queries (%d sat/%d unsat; %d solved/%d cached/%d prefiltered), %s solving",
		s.Sources, s.Candidates, s.SMTQueries, s.SMTSat, s.SMTUnsat,
		s.SMTSolved, s.SMTCacheHits, s.SMTPrefilterUnsat, s.SMTTime)
}

// instCond tracks the accumulated local condition of one context instance.
type instCond struct {
	fn   *ir.Func
	cond *cond.Cond
}

// boundary is an inter-procedural value equality (actual=formal or
// return=receiver) between two context instances.
type boundary struct {
	instA int
	valA  *ir.Value
	instB int
	valB  *ir.Value
	// equality is false for taint-transfer steps through external
	// calls, where the value changes but the property propagates.
	equality bool
}

// gstep is one SEG vertex on a global path, tagged with its instance.
type gstep struct {
	inst int
	node *seg.Node
}

// candidate is a complete source→sink path awaiting feasibility checking.
type candidate struct {
	steps     []gstep
	bounds    []boundary
	conds     map[int]*instCond
	sink      *seg.Node
	sinkInst  int
	sourceAt  *ir.Instr
	sourceFn  *ir.Func
	instances int
}
