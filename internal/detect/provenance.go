package detect

// Per-report provenance: a machine-readable explanation of *why* a warning
// fired. A Provenance records the ordered value-flow hops the demand-driven
// search traversed from source to sink, the size of the Equations 1–3 path
// condition handed to the SMT layer, and which elimination-pipeline stage
// produced the feasibility verdict. Capture is gated behind
// Options.Witness: with it off (the default) nothing here runs and the hot
// path pays a single branch per report.

import (
	"repro/internal/ir"
	"repro/internal/minic"
)

// VerdictSource identifies which stage of the SMT elimination pipeline
// (smtcache.go) produced a report's feasibility verdict.
type VerdictSource uint8

const (
	// VerdictUnchecked: path sensitivity was disabled; the candidate was
	// reported without a feasibility check.
	VerdictUnchecked VerdictSource = iota
	// VerdictStructural: the report needed no SMT query at all (a
	// never-freed allocation has no free to reason about).
	VerdictStructural
	// VerdictSolved: the query entered the DPLL(T) loop.
	VerdictSolved
	// VerdictCacheExact: the verdict (and model) was replayed from the
	// exact tier of the canonical verdict cache.
	VerdictCacheExact
	// VerdictCacheShape: the Unsat verdict came from the
	// commutative-normalized shape tier. Never appears on a report —
	// shape hits are always Unsat — but shows up in explain-mode dumps of
	// refuted candidates.
	VerdictCacheShape
	// VerdictPrefilter: the linear-time semi-decision prefilter refuted
	// the query. Like VerdictCacheShape, Unsat-only.
	VerdictPrefilter
)

var verdictSourceNames = [...]string{
	VerdictUnchecked:  "unchecked",
	VerdictStructural: "structural",
	VerdictSolved:     "solved",
	VerdictCacheExact: "cache_exact",
	VerdictCacheShape: "cache_shape",
	VerdictPrefilter:  "prefilter",
}

func (v VerdictSource) String() string { return verdictSourceNames[v] }

// Hop is one vertex on the witnessing value-flow path, tagged with the
// context instance (the cloned function invocation) it was traversed in.
type Hop struct {
	// Inst is the context-instance id (0 is the source's own frame; ids
	// increase in discovery order as the search crosses call boundaries).
	Inst int
	// Fn is the function whose SEG the hop's vertex belongs to.
	Fn string
	// Node renders the SEG vertex ("v12" for a value, "p@free#3" for a
	// use).
	Node string
	// Pos locates the vertex's instruction in the source, when it has one
	// (parameters, for example, do not).
	Pos minic.Pos
}

// Provenance explains one report. Everything except VerdictSource is a
// deterministic function of the program and the options; the
// solved-vs-cache_exact split mirrors Stats.SMTSolved/SMTCacheHits and
// depends on which worker first decided an isomorphic formula (and on
// cache warmth across runs of a shared Program), so only the *set*
// {solved, cache_exact} is schedule-independent.
type Provenance struct {
	// Hops is the ordered list of SEG vertices the search traversed,
	// source first. Empty for reports whose checker does not path-search
	// (never-freed leaks).
	Hops []Hop
	// CondTerms is the number of top-level terms asserted in the path
	// condition (Equations 1–3) for this report's feasibility query; 0
	// when no query ran.
	CondTerms int
	// VerdictSource is the pipeline stage that produced the verdict.
	VerdictSource VerdictSource
}

// hopsFromSteps renders a candidate's step list. instFn resolves the
// function of instances that carry conditions; instances met only through
// steps fall back to the step's own vertex, exactly like the encoder does.
func hopsFromSteps(steps []gstep, conds map[int]*instCond) []Hop {
	instFn := make(map[int]*ir.Func, len(conds))
	for inst, ic := range conds {
		instFn[inst] = ic.fn
	}
	hops := make([]Hop, 0, len(steps))
	for _, st := range steps {
		fn := instFn[st.inst]
		if fn == nil {
			if st.node.Instr != nil {
				fn = st.node.Instr.Block.Fn
			} else if st.node.Val != nil && st.node.Val.Def != nil {
				fn = st.node.Val.Def.Block.Fn
			}
			instFn[st.inst] = fn
		}
		h := Hop{Inst: st.inst, Node: st.node.String()}
		if fn != nil {
			h.Fn = fn.Name
		}
		if st.node.Instr != nil {
			h.Pos = st.node.Instr.Pos
		} else if st.node.Val != nil && st.node.Val.Def != nil {
			h.Pos = st.node.Val.Def.Pos
		}
		hops = append(hops, h)
	}
	return hops
}

// verdictSourceOf maps an elimination-pipeline outcome to the report-level
// enum.
func verdictSourceOf(how queryOutcome) VerdictSource {
	switch how {
	case queryCacheExact:
		return VerdictCacheExact
	case queryCacheShape:
		return VerdictCacheShape
	case queryPrefilterUnsat:
		return VerdictPrefilter
	default:
		return VerdictSolved
	}
}

// JSONProvenance is the exported provenance schema, nested inside
// JSONReport when Options.Witness is on.
type JSONProvenance struct {
	Hops      []JSONHop `json:"hops,omitempty"`
	CondTerms int       `json:"condTerms"`
	// VerdictSource is "unchecked", "structural", "solved", "cache_exact",
	// "cache_shape", or "prefilter". The solved/cache_exact split is
	// schedule-dependent (see Provenance.VerdictSource).
	VerdictSource string `json:"verdictSource"`
}

// JSONHop is one exported path hop.
type JSONHop struct {
	Ctx  int    `json:"ctx"`
	Func string `json:"func,omitempty"`
	Node string `json:"node"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
}

// ToJSON converts a provenance record to the exported schema.
func (p *Provenance) ToJSON() *JSONProvenance {
	if p == nil {
		return nil
	}
	jp := &JSONProvenance{
		CondTerms:     p.CondTerms,
		VerdictSource: p.VerdictSource.String(),
	}
	for _, h := range p.Hops {
		jp.Hops = append(jp.Hops, JSONHop{
			Ctx: h.Inst, Func: h.Fn, Node: h.Node,
			File: h.Pos.File, Line: h.Pos.Line,
		})
	}
	return jp
}
