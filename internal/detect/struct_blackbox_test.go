package detect_test

import (
	"testing"

	"repro/internal/checkers"
	"repro/internal/detect"
)

// Struct support end-to-end: field-sensitive locally, collapsed across
// connectors, and fully integrated with the checkers.

func TestStructFieldUAF(t *testing.T) {
	reports, _ := check(t, `
struct Node {
	int *payload;
	int tag;
};
void f() {
	struct Node *n = malloc();
	int *buf = malloc();
	n->payload = buf;
	free(buf);
	int *back = n->payload;
	int v = *back;
	use_val(v);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("field-routed UAF: reports = %v, want 1", reports)
	}
}

func TestStructFieldSensitivityNoFalsePositive(t *testing.T) {
	// The freed pointer sits in field a; the dereferenced one comes from
	// field b. Field-sensitive points-to must keep them apart.
	reports, _ := check(t, `
struct Pair {
	int *a;
	int *b;
};
void f() {
	struct Pair *p = malloc();
	int *x = malloc();
	int *y = malloc();
	p->a = x;
	p->b = y;
	free(x);
	int *safe = p->b;
	int v = *safe;
	use_val(v);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 0 {
		t.Fatalf("fields conflated: %v", reports)
	}
}

func TestStructFreedBaseFieldAccessIsUAF(t *testing.T) {
	// Freeing the struct makes every field access dangling.
	reports, _ := check(t, `
struct Box {
	int val;
};
void f() {
	struct Box *b = malloc();
	b->val = 1;
	free(b);
	int v = b->val;
	use_val(v);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("freed-base field access missed: %v", reports)
	}
}

func TestStructFieldConditionCorrelation(t *testing.T) {
	// Free and use of the field value under complementary conditions.
	reports, _ := check(t, `
struct S { int *p; };
void f(bool c) {
	struct S *s = malloc();
	int *buf = malloc();
	s->p = buf;
	if (c) { free(buf); }
	if (!c) { int *q = s->p; int v = *q; use_val(v); }
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 0 {
		t.Fatalf("infeasible struct path reported: %v", reports)
	}
	reports2, _ := check(t, `
struct S { int *p; };
void f(bool c) {
	struct S *s = malloc();
	int *buf = malloc();
	s->p = buf;
	if (c) { free(buf); }
	if (c) { int *q = s->p; int v = *q; use_val(v); }
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports2) != 1 {
		t.Fatalf("feasible struct path missed: %v", reports2)
	}
}

func TestStructCrossFunction(t *testing.T) {
	// The callee frees the payload it is handed through a struct field —
	// the connector interface collapses fields, which is sound (may-
	// alias) and here also precise enough.
	reports, _ := check(t, `
struct Conn { int *session; };
void teardown(int *s) { free(s); }
void f() {
	struct Conn *c = malloc();
	int *sess = malloc();
	c->session = sess;
	teardown(c->session);
	int *again = c->session;
	int v = *again;
	use_val(v);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("cross-function struct UAF missed: %v", reports)
	}
}

func TestStructLeak(t *testing.T) {
	// The payload is freed but the struct itself is not.
	a := buildAnalysis(t, `
struct Holder { int *data; };
void f() {
	struct Holder *h = malloc();
	int *d = malloc();
	h->data = d;
	free(d);
}`)
	leaks, _ := detect.FindLeaks(a.Prog, detect.Options{})
	if len(leaks) != 1 {
		t.Fatalf("struct leak: %v, want exactly the Holder allocation", leaks)
	}
}
