package detect

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/seg"
	"repro/internal/smt"
)

// checkCandidate builds and solves the SMT query for a candidate path —
// the realization of Equations 1–3 of the paper:
//
//   - CD(v@s) for every step's statement (control dependence);
//   - v(i-1) = v(i) for equality-preserving flow steps;
//   - the Ld edge labels (already folded into the per-instance conditions
//     during the search);
//   - DD(·) closures for every mentioned value, recursively and memoized;
//   - actual=formal / return=receiver equalities at context boundaries.
//
// All variables are renamed per context instance, which is exactly the
// cloning-based context sensitivity of §3.3.1(2).
func (e *Engine) checkCandidate(c *candidate) smt.Result {
	start := time.Now()

	s := e.querySolver()
	if e.opts.SMTIncremental {
		// Long-lived solver: scope this candidate's assertions so Pop
		// retracts them while scope-independent learned clauses persist.
		s.Push()
		defer s.Pop()
	}
	if e.obs != nil {
		s.Observer = smtObserver(e.obs)
	}
	enc := &encoder{
		eng:    e,
		tb:     s.TB,
		ddDone: make(map[ddKey]bool),
		cdDone: make(map[cdKey]bool),
		budget: e.opts.SMTBudget,
		instFn: make(map[int]*ir.Func),
		atoms:  make(map[string]atomOrigin),
	}
	for inst, ic := range c.conds {
		enc.instFn[inst] = ic.fn
	}
	for _, st := range c.steps {
		if _, ok := enc.instFn[st.inst]; !ok {
			// Instance without extra conditions: derive from the step's
			// node.
			if st.node.Instr != nil {
				enc.instFn[st.inst] = st.node.Instr.Block.Fn
			} else if st.node.Val != nil && st.node.Val.Def != nil {
				enc.instFn[st.inst] = st.node.Val.Def.Block.Fn
			}
		}
	}

	// Per-instance accumulated conditions (edge labels + CDs collected
	// during the search) plus their DD closures. Instances are asserted in
	// ascending order: the assertion order fixes CNF variable numbering and
	// hence the SAT search, keeping witnesses reproducible run to run.
	insts := make([]int, 0, len(c.conds))
	for inst := range c.conds {
		insts = append(insts, inst)
	}
	sort.Ints(insts)
	for _, inst := range insts {
		ic := c.conds[inst]
		enc.assertCond(inst, ic.fn, ic.cond)
	}

	// Equality chain along the path. Equality holds for steps whose
	// receiving value is defined by an equality-preserving instruction
	// (copy, φ, load); operator results relate by DD instead.
	for i := 1; i < len(c.steps); i++ {
		prev, cur := c.steps[i-1], c.steps[i]
		if prev.inst != cur.inst {
			continue // boundaries carry their own equalities
		}
		if prev.node.Kind != seg.NValue || cur.node.Kind != seg.NValue {
			continue
		}
		def := cur.node.Val.Def
		if def == nil {
			continue
		}
		switch def.Op {
		case ir.OpCopy, ir.OpPhi, ir.OpLoad:
			a := enc.valueTerm(prev.inst, prev.node.Val)
			b := enc.valueTerm(cur.inst, cur.node.Val)
			if a.Sort == b.Sort {
				enc.add(enc.tb.Eq(a, b))
			}
			enc.emitDD(prev.inst, prev.node.Val)
			enc.emitDD(cur.inst, cur.node.Val)
		}
	}

	// Boundary equalities.
	for _, bd := range c.bounds {
		if !bd.equality {
			continue
		}
		a := enc.valueTerm(bd.instA, bd.valA)
		b := enc.valueTerm(bd.instB, bd.valB)
		if a.Sort == b.Sort {
			enc.add(enc.tb.Eq(a, b))
		}
		enc.emitDD(bd.instA, bd.valA)
		enc.emitDD(bd.instB, bd.valB)
	}

	// Control dependence of every step statement (use vertices and value
	// definitions alike), with DD of the controlling atoms.
	for _, st := range c.steps {
		if st.node.Instr == nil {
			continue
		}
		fn := enc.instFn[st.inst]
		if fn == nil {
			continue
		}
		g := e.prog.SEGs[fn]
		enc.assertCond(st.inst, fn, g.CD(st.node.Instr))
	}

	res, model, how := decideQuery(s, enc.terms, e.prog.smtCache, e.opts)

	d := time.Since(start)
	e.stats.SMTTime += d
	e.stats.SMTQueries++
	switch {
	case how == querySolved:
		e.stats.SMTSolved++
	case how.isCacheHit():
		e.stats.SMTCacheHits++
	case how == queryPrefilterUnsat:
		e.stats.SMTPrefilterUnsat++
	}
	if e.obs != nil {
		switch {
		case how == querySolved:
			// Only queries that actually entered the DPLL(T) loop count
			// toward solver latency (and its trace spans); eliminated
			// candidates land on their own counters.
			e.obs.Histogram("smt.query_ns").Observe(int64(d))
			if e.obs.Tracing() {
				e.obs.Event(e.tid, "smt", start, d, obs.Arg{Key: "checker", Val: e.spec.Name})
			}
		case how.isCacheHit():
			e.obs.Counter("smt.cache_hits").Inc()
		case how == queryPrefilterUnsat:
			e.obs.Counter("smt.prefilter_unsat").Inc()
		}
	}
	if e.opts.Witness {
		e.lastCondTerms = len(enc.terms)
		e.lastVerdictSource = verdictSourceOf(how)
	}

	switch res {
	case smt.Sat:
		e.stats.SMTSat++
		e.lastWitness = extractWitness(model, enc)
	case smt.Unsat:
		e.stats.SMTUnsat++
	default:
		e.stats.SMTUnknown++
	}
	return res
}

// smtObserver adapts a recorder to the smt.Solver observer hook, feeding
// the SAT-core effort counters and per-verdict counts into the registry.
func smtObserver(rec *obs.Recorder) func(smt.CheckInfo) {
	return func(ci smt.CheckInfo) {
		rec.Counter("smt.decisions").Add(ci.Decisions)
		rec.Counter("smt.conflicts").Add(ci.Conflicts)
		rec.Counter("smt.learned").Add(ci.Learned)
		rec.Counter("smt.theory_conflicts").Add(ci.TheoryConflicts)
		rec.Counter("smt.result." + ci.Result.String()).Inc()
	}
}

// extractWitness renders the model of the branch atoms as trigger hints,
// sorted for determinism. The model comes either from a fresh solve
// (Solver.BoolModel) or from a cached verdict projected into this query's
// variable names — the two are identical for isomorphic queries.
func extractWitness(model map[string]bool, enc *encoder) []string {
	var out []string
	for name, origin := range enc.atoms {
		v, ok := model[name]
		if !ok {
			continue
		}
		out = append(out, fmt.Sprintf("%s@%s#%d = %v", origin.val.Name, origin.fn.Name, origin.inst, v))
	}
	sort.Strings(out)
	return out
}

type ddKey struct {
	inst int
	vid  int
}

type cdKey struct {
	inst int
	cid  int
}

type encoder struct {
	eng *Engine
	// tb builds terms; terms accumulates the assertion sequence. The
	// encoder defers asserting into a solver so the elimination pipeline
	// (decideQuery) can prefilter and cache-match the sequence before any
	// CNF is built. Assertion order is preserved exactly, so a replayed
	// sequence produces the identical solver run.
	tb     *smt.TermBuilder
	terms  []*smt.Term
	ddDone map[ddKey]bool
	cdDone map[cdKey]bool
	budget int
	instFn map[int]*ir.Func
	// atoms maps SMT variable names of branch atoms back to the program
	// value and context they came from, for witness extraction.
	atoms map[string]atomOrigin
}

// add appends t to the assertion sequence.
func (e *encoder) add(t *smt.Term) {
	e.terms = append(e.terms, t)
}

type atomOrigin struct {
	inst int
	val  *ir.Value
	fn   *ir.Func
}

// valueTerm returns the SMT term of a value within a context instance.
func (e *encoder) valueTerm(inst int, v *ir.Value) *smt.Term {
	tb := e.tb
	switch v.Kind {
	case ir.VConstInt:
		return tb.Int(v.IntVal)
	case ir.VConstBool:
		return tb.Bool(v.BoolVal)
	case ir.VConstNull:
		return tb.Int(0)
	}
	name := fmt.Sprintf("i%d.v%d", inst, v.ID)
	if v.Type.Base == "bool" && v.Type.Ptr == 0 {
		return tb.BoolVar(name)
	}
	return tb.IntVar(name)
}

// assertCond asserts a condition-DAG formula, translating atoms to boolean
// value terms and emitting their DD closures.
func (e *encoder) assertCond(inst int, fn *ir.Func, c *cond.Cond) {
	t := e.condTerm(inst, fn, c)
	if debugSMT {
		fmt.Printf("SMT assert cond: %s\n", t)
	}
	e.add(t)
}

// debugSMT dumps every assertion (set via the PINPOINT_DEBUG_SMT env var).
var debugSMT = os.Getenv("PINPOINT_DEBUG_SMT") != ""

func (e *encoder) condTerm(inst int, fn *ir.Func, c *cond.Cond) *smt.Term {
	tb := e.tb
	switch c.Kind() {
	case cond.KTrue:
		return tb.True()
	case cond.KFalse:
		return tb.False()
	case cond.KAtom:
		v := e.eng.prog.Infos[fn].AtomValue[c.Atom()]
		if v == nil {
			// Unknown atom: opaque boolean.
			return tb.BoolVar(fmt.Sprintf("i%d.a%d", inst, c.Atom()))
		}
		e.emitDD(inst, v)
		t := e.valueTerm(inst, v)
		if e.atoms != nil && t.Kind == smt.TVar {
			e.atoms[t.Name] = atomOrigin{inst: inst, val: v, fn: fn}
		}
		return t
	case cond.KNot:
		return tb.Not(e.condTerm(inst, fn, c.Ops()[0]))
	case cond.KAnd:
		parts := make([]*smt.Term, len(c.Ops()))
		for i, op := range c.Ops() {
			parts[i] = e.condTerm(inst, fn, op)
		}
		return tb.And(parts...)
	default: // KOr
		parts := make([]*smt.Term, len(c.Ops()))
		for i, op := range c.Ops() {
			parts[i] = e.condTerm(inst, fn, op)
		}
		return tb.Or(parts...)
	}
}

// emitDD asserts the data-dependence constraints defining a value,
// recursively and bounded by the budget. Constraints use the disjunctive
// form (the value equals one of its possible definitions under that
// definition's condition), which stays sound when conditions were widened.
func (e *encoder) emitDD(inst int, v *ir.Value) {
	if v.IsConst() {
		return
	}
	key := ddKey{inst: inst, vid: v.ID}
	if e.ddDone[key] {
		return
	}
	e.ddDone[key] = true
	if e.budget <= 0 {
		return
	}
	e.budget--

	def := v.Def
	if debugSMT {
		fmt.Printf("SMT DD: i%d v%d (%s) def=%v\n", inst, v.ID, v, def)
	}
	if def == nil {
		// Parameter or undef: a free variable; its range is constrained
		// at boundaries.
		return
	}
	fn := def.Block.Fn
	tb := e.tb
	vt := e.valueTerm(inst, v)

	switch def.Op {
	case ir.OpCopy:
		at := e.valueTerm(inst, def.Args[0])
		if at.Sort == vt.Sort {
			e.add(tb.Eq(vt, at))
		}
		e.emitDD(inst, def.Args[0])
	case ir.OpUn:
		a := def.Args[0]
		at := e.valueTerm(inst, a)
		switch def.Sub {
		case "-":
			e.add(tb.Eq(vt, tb.Neg(at)))
		case "!":
			if at.Sort == smt.SortBool && vt.Sort == smt.SortBool {
				e.add(tb.Eq(vt, tb.Not(at)))
			}
		}
		e.emitDD(inst, a)
	case ir.OpBin:
		e.emitBinDD(inst, v, def)
	case ir.OpPhi:
		gates := e.eng.prog.Infos[fn].Gates[def]
		var arms []*smt.Term
		for i, a := range def.Args {
			at := e.valueTerm(inst, a)
			if at.Sort != vt.Sort {
				continue
			}
			g := tb.True()
			if gates != nil {
				g = e.condTerm(inst, fn, gates[i])
			}
			arms = append(arms, tb.And(g, tb.Eq(vt, at)))
			e.emitDD(inst, a)
		}
		if len(arms) > 0 {
			e.add(tb.Or(arms...))
		}
	case ir.OpLoad:
		sources := e.eng.prog.SEGs[fn].PTA.LoadSources[def]
		var arms []*smt.Term
		for _, gv := range sources {
			wt := e.valueTerm(inst, gv.Val)
			if wt.Sort != vt.Sort {
				continue
			}
			arms = append(arms, tb.And(e.condTerm(inst, fn, gv.Cond), tb.Eq(vt, wt)))
			e.emitDD(inst, gv.Val)
		}
		if len(arms) > 0 {
			e.add(tb.Or(arms...))
		}
	case ir.OpMalloc, ir.OpAlloc, ir.OpGlobalAddr:
		// Allocation addresses are non-null.
		e.add(tb.Ne(vt, tb.Int(0)))
	case ir.OpFieldAddr:
		// An uninterpreted, per-field offset function: injective enough
		// for congruence reasoning, and field addresses of non-null
		// bases are non-null.
		base := e.valueTerm(inst, def.Args[0])
		if base.Sort == smt.SortInt {
			e.add(tb.Eq(vt, tb.App("field$"+def.Sub, smt.SortInt, base)))
		}
		e.add(tb.Ne(vt, tb.Int(0)))
		e.emitDD(inst, def.Args[0])
	case ir.OpCall:
		// Receiver: free variable (summaries constrain it only through
		// boundary equalities on traversed paths).
	}
}

// emitBinDD encodes a binary operator definition.
func (e *encoder) emitBinDD(inst int, v *ir.Value, def *ir.Instr) {
	tb := e.tb
	vt := e.valueTerm(inst, v)
	a, b := def.Args[0], def.Args[1]
	at, bt := e.valueTerm(inst, a), e.valueTerm(inst, b)
	boolOperands := at.Sort == smt.SortBool || bt.Sort == smt.SortBool

	defer func() {
		e.emitDD(inst, a)
		e.emitDD(inst, b)
	}()

	if vt.Sort == smt.SortBool {
		var cmp *smt.Term
		switch def.Sub {
		case "==":
			if at.Sort == bt.Sort {
				cmp = tb.Eq(at, bt)
			}
		case "!=":
			if at.Sort == bt.Sort {
				cmp = tb.Ne(at, bt)
			}
		case "<":
			if !boolOperands {
				cmp = tb.Lt(at, bt)
			}
		case "<=":
			if !boolOperands {
				cmp = tb.Le(at, bt)
			}
		case ">":
			if !boolOperands {
				cmp = tb.Gt(at, bt)
			}
		case ">=":
			if !boolOperands {
				cmp = tb.Ge(at, bt)
			}
		}
		if cmp != nil {
			e.add(tb.Eq(vt, cmp))
		}
		return
	}
	if boolOperands {
		return
	}
	switch def.Sub {
	case "+":
		e.add(tb.Eq(vt, tb.Add(at, bt)))
	case "-":
		e.add(tb.Eq(vt, tb.Sub(at, bt)))
	case "*":
		e.add(tb.Eq(vt, tb.Mul(at, bt)))
	case "/", "%":
		// Uninterpreted: congruence only.
		e.add(tb.Eq(vt, tb.App("op"+def.Sub, smt.SortInt, at, bt)))
	}
}
