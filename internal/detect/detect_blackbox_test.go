package detect_test

import (
	"strings"
	"testing"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
)

func check(t *testing.T, src string, spec *checkers.Spec, opts detect.Options) ([]detect.Report, detect.Stats) {
	t.Helper()
	a, err := core.BuildFromSource([]minic.NamedSource{{Name: "t.mc", Src: src}}, core.BuildOptions{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return a.Check(spec, opts)
}

func TestUAFIntraproceduralBasic(t *testing.T) {
	reports, _ := check(t, `
void f() {
	int *p = malloc();
	free(p);
	sink(*p);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("reports = %v, want 1", reports)
	}
}

func TestUAFNoBugWhenUseBeforeFree(t *testing.T) {
	reports, _ := check(t, `
void f() {
	int *p = malloc();
	sink(*p);
	free(p);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 0 {
		t.Fatalf("false positive on use-before-free: %v", reports)
	}
}

func TestUAFInfeasiblePathPruned(t *testing.T) {
	// free under c, use under !c: path-sensitive analysis must prune.
	reports, stats := check(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); }
	if (!c) { sink(*p); }
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 0 {
		t.Fatalf("false positive on infeasible path: %v", reports)
	}
	// The contradictory flow is discharged either by the linear filter
	// (cheap) or by the SMT solver; it must have been considered.
	if stats.LinearFiltered == 0 && stats.SMTUnsat == 0 {
		t.Fatalf("infeasible path never considered: %+v", stats)
	}
}

func TestUAFFeasibleSameCondition(t *testing.T) {
	// free under c, use under c: feasible.
	reports, _ := check(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); }
	if (c) { sink(*p); }
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("missed same-condition UAF: %v", reports)
	}
}

func TestUAFArithmeticConditions(t *testing.T) {
	// free under x > 0, use under x < 0: arithmetic infeasibility.
	reports, _ := check(t, `
void f(int x) {
	int *p = malloc();
	if (x > 0) { free(p); }
	if (x < 0) { sink(*p); }
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 0 {
		t.Fatalf("arithmetic contradiction not pruned: %v", reports)
	}
	reports2, _ := check(t, `
void f(int x) {
	int *p = malloc();
	if (x > 0) { free(p); }
	if (x > 1) { sink(*p); }
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports2) != 1 {
		t.Fatalf("compatible ranges wrongly pruned: %v", reports2)
	}
}

func TestUAFThroughMemory(t *testing.T) {
	reports, _ := check(t, `
void f() {
	int *c = malloc();
	int **slot = malloc();
	*slot = c;
	free(c);
	int *u = *slot;
	sink(*u);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("memory-mediated UAF missed: %v", reports)
	}
}

func TestUAFAliasViaObjectRoots(t *testing.T) {
	// q aliases p via the shared malloc; free(p) then *q.
	reports, _ := check(t, `
void f() {
	int *p = malloc();
	int *q = p;
	free(p);
	sink(*q);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("alias UAF missed: %v", reports)
	}
}

func TestUAFInterproceduralCalleeFrees(t *testing.T) {
	// VF3 pattern: callee frees its parameter; caller uses afterwards.
	reports, _ := check(t, `
void release(int *x) { free(x); }
void f() {
	int *p = malloc();
	release(p);
	sink(*p);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("callee-frees UAF missed: %v", reports)
	}
}

func TestUAFInterproceduralCalleeUses(t *testing.T) {
	// VF4 pattern: freed value passed into a callee that dereferences.
	reports, _ := check(t, `
void useit(int *x) { sink(*x); }
void f() {
	int *p = malloc();
	free(p);
	useit(p);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("callee-uses UAF missed: %v", reports)
	}
}

func TestUAFReturnedFreedValue(t *testing.T) {
	// VF2 pattern: callee returns a freed pointer.
	reports, _ := check(t, `
int *makefreed() {
	int *p = malloc();
	free(p);
	return p;
}
void f() {
	int *q = makefreed();
	sink(*q);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("returned-freed UAF missed: %v", reports)
	}
}

func TestUAFNoBugCalleeUsesBeforeCallerFrees(t *testing.T) {
	reports, _ := check(t, `
void useit(int *x) { sink(*x); }
void f() {
	int *p = malloc();
	useit(p);
	free(p);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 0 {
		t.Fatalf("false positive (use before free across call): %v", reports)
	}
}

// TestMotivatingExample reproduces Figure 1/2 of the paper: the
// use-after-free hides behind an inter-procedural store via bar, guarded by
// θ1 ∧ θ3 ∧ θ2, while qux's values are irrelevant.
func TestMotivatingExample(t *testing.T) {
	reports, stats := check(t, `
void foo(int *a, bool t1, bool t2) {
	int **ptr = malloc();
	*ptr = a;
	if (t1) {
		bar(ptr);
	} else {
		qux(ptr);
	}
	int *f = *ptr;
	if (t2) { sink(*f); }
}
void bar(int **q) {
	int *c = malloc();
	if (*q != null) {
		*q = c;
		free(c);
	} else {
		if (input()) { *q = source_b(); }
	}
}
void qux(int **r) {
	if (input()) { *r = source_d(); } else { *r = source_e(); }
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("motivating example: reports = %v, want exactly the bar->foo UAF", reports)
	}
	r := reports[0]
	if r.SourceFn != "bar" || r.SinkFn != "foo" {
		t.Errorf("report spans %s -> %s, want bar -> foo", r.SourceFn, r.SinkFn)
	}
	if r.Contexts < 2 {
		t.Errorf("contexts = %d, want >= 2 (inter-procedural)", r.Contexts)
	}
	if stats.SMTQueries == 0 {
		t.Error("no SMT query was made")
	}
}

func TestDoubleFree(t *testing.T) {
	reports, _ := check(t, `
void f(bool c) {
	int *p = malloc();
	free(p);
	free(p);
}`, checkers.DoubleFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("double free missed: %v", reports)
	}
	// Exclusive branches: no double free.
	reports2, _ := check(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); } else { free(p); }
}`, checkers.DoubleFree(), detect.Options{})
	if len(reports2) != 0 {
		t.Fatalf("false double-free on exclusive branches: %v", reports2)
	}
}

func TestTaintPathTraversal(t *testing.T) {
	reports, _ := check(t, `
void f() {
	int *path = user_input();
	open_file(path);
}`, checkers.PathTraversal(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("taint flow missed: %v", reports)
	}
}

func TestTaintInterprocedural(t *testing.T) {
	reports, _ := check(t, `
int *fetch() { return user_input(); }
void consume(int *p) { open_file(p); }
void f() {
	int *d = fetch();
	consume(d);
}`, checkers.PathTraversal(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("inter-procedural taint missed: %v", reports)
	}
}

func TestTaintPropagationThroughTransfer(t *testing.T) {
	reports, _ := check(t, `
void f() {
	int *raw = user_input();
	int *path = to_path(raw);
	open_file(path);
}`, checkers.PathTraversal(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("transfer-function taint missed: %v", reports)
	}
}

func TestTaintNoFlowNoReport(t *testing.T) {
	reports, _ := check(t, `
void f() {
	int *a = user_input();
	int *b = safe_constant();
	open_file(b);
	log_local(a);
}`, checkers.PathTraversal(), detect.Options{})
	if len(reports) != 0 {
		t.Fatalf("spurious taint report: %v", reports)
	}
}

func TestDataTransmission(t *testing.T) {
	reports, _ := check(t, `
void f() {
	int *secret = getpass();
	send_data(secret);
}`, checkers.DataTransmission(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("data transmission missed: %v", reports)
	}
}

func TestNullDeref(t *testing.T) {
	reports, _ := check(t, `
void f(bool c) {
	int *p = null;
	if (c) { p = malloc(); }
	if (!c) { sink(*p); }
}`, checkers.NullDeref(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("null deref missed: %v", reports)
	}
}

func TestPathInsensitiveAblationReportsMore(t *testing.T) {
	src := `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); }
	if (!c) { sink(*p); }
}`
	sensitive, _ := check(t, src, checkers.UseAfterFree(), detect.Options{})
	insensitive, _ := check(t, src, checkers.UseAfterFree(), detect.Options{DisablePathSensitivity: true})
	if len(sensitive) != 0 {
		t.Fatalf("path-sensitive run has FP: %v", sensitive)
	}
	if len(insensitive) != 1 {
		t.Fatalf("path-insensitive run should report the infeasible candidate: %v", insensitive)
	}
}

func TestDeepCallChain(t *testing.T) {
	// Free five levels down, use at top: within the depth budget of 6.
	reports, _ := check(t, `
void l5(int *p) { free(p); }
void l4(int *p) { l5(p); }
void l3(int *p) { l4(p); }
void l2(int *p) { l3(p); }
void f() {
	int *p = malloc();
	l2(p);
	sink(*p);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("deep chain UAF missed: %v", reports)
	}
}

func TestCallDepthBound(t *testing.T) {
	// Free eight levels down: beyond MaxCallDepth=3 the search truncates.
	src := `
void l8(int *p) { free(p); }
void l7(int *p) { l8(p); }
void l6(int *p) { l7(p); }
void l5(int *p) { l6(p); }
void l4(int *p) { l5(p); }
void l3(int *p) { l4(p); }
void l2(int *p) { l3(p); }
void f() {
	int *p = malloc();
	l2(p);
	sink(*p);
}`
	reports, stats := check(t, src, checkers.UseAfterFree(), detect.Options{MaxCallDepth: 3})
	if len(reports) != 0 {
		t.Fatalf("depth bound not respected: %v", reports)
	}
	if stats.TruncatedSearches == 0 {
		t.Error("no truncation recorded")
	}
	// With the default depth it is found.
	reports2, _ := check(t, src, checkers.UseAfterFree(), detect.Options{MaxCallDepth: 10})
	if len(reports2) != 1 {
		t.Fatalf("deep bug missed at depth 10: %v", reports2)
	}
}

func TestCrossUnitUAF(t *testing.T) {
	// Bug spanning two compilation units (the Infer/CSA baselines cannot
	// see this; Pinpoint must).
	a, err := core.BuildFromSource([]minic.NamedSource{
		{Name: "unit1.mc", Src: `
void release(int *x) { free(x); }`},
		{Name: "unit2.mc", Src: `
void f() {
	int *p = malloc();
	release(p);
	sink(*p);
}`},
	}, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reports, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("cross-unit UAF missed: %v", reports)
	}
}

func TestReportString(t *testing.T) {
	reports, _ := check(t, `
void f() {
	int *p = malloc();
	free(p);
	sink(*p);
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 || reports[0].String() == "" {
		t.Fatal("report rendering broken")
	}
}

func TestReportWitness(t *testing.T) {
	reports, _ := check(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); }
	if (c) { sink(*p); }
}`, checkers.UseAfterFree(), detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
	w := reports[0].Witness
	if len(w) == 0 {
		t.Fatal("no witness extracted")
	}
	// The witness must set the branch condition c to true.
	found := false
	for _, entry := range w {
		if strings.Contains(entry, "= true") {
			found = true
		}
	}
	if !found {
		t.Fatalf("witness lacks the triggering assignment: %v", w)
	}
}

func TestWitnessEmptyWhenPathInsensitive(t *testing.T) {
	reports, _ := check(t, `
void f() {
	int *p = malloc();
	free(p);
	sink(*p);
}`, checkers.UseAfterFree(), detect.Options{DisablePathSensitivity: true})
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
	if len(reports[0].Witness) != 0 {
		t.Fatalf("unexpected witness without SMT: %v", reports[0].Witness)
	}
}

func TestSanitizerModelingExtension(t *testing.T) {
	src := `
void f() {
	int *path = user_input();
	if (validate_path(path) > 0) {
		open_file(path);
	}
}
void g() {
	int *path = user_input();
	open_file(path);
}`
	// Paper configuration: sanitizers unmodeled, both flows reported.
	plain, _ := check(t, src, checkers.PathTraversal(), detect.Options{})
	if len(plain) != 2 {
		t.Fatalf("unmodeled sanitizers: reports = %v, want 2", plain)
	}
	// Extension: the guarded flow in f is suppressed, g still reported.
	spec := checkers.PathTraversal().WithSanitizers("validate_path")
	guarded, _ := check(t, src, spec, detect.Options{})
	if len(guarded) != 1 {
		t.Fatalf("sanitizer modeling: reports = %v, want 1", guarded)
	}
	if guarded[0].SourceFn != "g" {
		t.Fatalf("wrong flow survived: %v", guarded)
	}
}

func TestSanitizerMustGuardTheTaintedValue(t *testing.T) {
	// The sanitizer checks an unrelated value: suppression must not fire.
	src := `
void f(int *other) {
	int *path = user_input();
	if (validate_path(other) > 0) {
		open_file(path);
	}
}`
	spec := checkers.PathTraversal().WithSanitizers("validate_path")
	reports, _ := check(t, src, spec, detect.Options{})
	if len(reports) != 1 {
		t.Fatalf("unrelated sanitizer suppressed a real flow: %v", reports)
	}
}
