package detect_test

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/workload"
)

// buildWorkloadSubject synthesizes a mid-size subject with UAF, taint, and
// leak flows and builds the full analysis for it.
func buildWorkloadSubject(t testing.TB) *core.Analysis {
	t.Helper()
	subj := workload.Subject{
		Name: "sched-test", Origin: "synthetic", PaperKLoC: 60,
		TrueBugs: 6, OpaqueTraps: 4,
	}
	gen := workload.Generate(subj, workload.GenOptions{Taint: true})
	a, err := core.BuildFromSource(gen.Units, core.BuildOptions{Workers: -1})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return a
}

// zeroTimings clears the wall-clock fields — and the schedule-dependent
// solved/cache-hit split of the shared SMT verdict cache — so stats compare
// structurally. The split's sum (and every other counter, including the
// deterministic prefilter kills) still must match exactly.
func zeroTimings(rs *detect.Results) {
	rs.Wall = 0
	rs.Workers = 0
	for i := range rs.Checkers {
		rs.Checkers[i].Stats.SMTTime = 0
		zeroCacheSplit(&rs.Checkers[i].Stats)
	}
}

// zeroCacheSplit folds the solved/cached partition into Solved alone: which
// stage answered depends on which worker reached an isomorphic formula first
// and on cache warmth across CheckAll calls, but the sum is invariant.
func zeroCacheSplit(st *detect.Stats) {
	st.SMTSolved += st.SMTCacheHits
	st.SMTCacheHits = 0
}

// TestCheckAllParallelMatchesSequential is the headline determinism
// guarantee: with Workers = GOMAXPROCS the sorted reports — including SMT
// witnesses — and the merged stats are identical to the sequential run.
// Running under -race additionally exercises the shared-cache locking.
func TestCheckAllParallelMatchesSequential(t *testing.T) {
	a := buildWorkloadSubject(t)
	specs := checkers.All()

	seq := a.CheckAll(specs, detect.Options{Workers: 1})
	zeroTimings(&seq)
	if len(seq.Reports) == 0 {
		t.Fatal("workload subject produced no reports; test is vacuous")
	}

	for _, w := range []int{2, runtime.GOMAXPROCS(0), -1} {
		par := a.CheckAll(specs, detect.Options{Workers: w})
		zeroTimings(&par)
		if !reflect.DeepEqual(seq.Reports, par.Reports) {
			t.Fatalf("workers=%d: reports differ from sequential run\nseq: %v\npar: %v",
				w, seq.Reports, par.Reports)
		}
		if !reflect.DeepEqual(seq.Checkers, par.Checkers) {
			t.Fatalf("workers=%d: stats differ from sequential run\nseq: %+v\npar: %+v",
				w, seq.Checkers, par.Checkers)
		}
		if seq.SummaryCapHits != par.SummaryCapHits {
			t.Fatalf("workers=%d: cap hits differ: %d vs %d", w, seq.SummaryCapHits, par.SummaryCapHits)
		}
	}
}

// TestCheckAllRepeatable runs the parallel scheduler twice and demands
// byte-identical output — catching any schedule-dependent state leaking
// into reports (witnesses are the sensitive part).
func TestCheckAllRepeatable(t *testing.T) {
	a := buildWorkloadSubject(t)
	specs := checkers.All()
	first := a.CheckAll(specs, detect.Options{Workers: -1})
	zeroTimings(&first)
	for i := 0; i < 2; i++ {
		again := a.CheckAll(specs, detect.Options{Workers: -1})
		zeroTimings(&again)
		if !reflect.DeepEqual(first.Reports, again.Reports) {
			t.Fatalf("run %d: parallel reports not repeatable", i+2)
		}
	}
}

// TestCheckAllMatchesSingleEngine pins the scheduler to the legacy
// sequential engine: for each source–sink checker, CheckAll's reports and
// stats must equal Analysis.Check modulo the canonical sort.
func TestCheckAllMatchesSingleEngine(t *testing.T) {
	a := buildWorkloadSubject(t)
	for _, sp := range checkers.All() {
		res := a.CheckAll([]*checkers.Spec{sp}, detect.Options{Workers: -1})
		legacy, legacyStats := a.Check(sp, detect.Options{})
		detect.SortReports(legacy)
		if !reflect.DeepEqual(legacy, res.Reports) {
			t.Errorf("%s: CheckAll reports != sequential engine reports\nengine: %v\nsched:  %v",
				sp.Name, legacy, res.Reports)
		}
		st := res.Checkers[0].Stats
		st.SMTTime = 0
		legacyStats.SMTTime = 0
		// The shared verdict cache is warm after the first run, so the
		// solved/cached split shifts between runs; only its sum is pinned.
		zeroCacheSplit(&st)
		zeroCacheSplit(&legacyStats)
		// The single engine reads cap hits from its private cache; the
		// scheduler reports them at the Results level.
		st.SummaryCapHits = legacyStats.SummaryCapHits
		if st != legacyStats {
			t.Errorf("%s: CheckAll stats != sequential engine stats\nengine: %+v\nsched:  %+v",
				sp.Name, legacyStats, st)
		}
	}
}

// TestCheckAllLeakMatchesFindLeaks pins the unified memory-leak path to the
// legacy FindLeaks API.
func TestCheckAllLeakMatchesFindLeaks(t *testing.T) {
	a := buildWorkloadSubject(t)
	res := a.CheckAll([]*checkers.Spec{checkers.MemoryLeak()}, detect.Options{Workers: -1})
	legacy, legacyStats := detect.FindLeaks(a.Prog, detect.Options{})
	if len(res.Reports) != len(legacy) {
		t.Fatalf("report count: CheckAll %d, FindLeaks %d", len(res.Reports), len(legacy))
	}
	st := res.Checkers[0].Stats
	if st.Sources != legacyStats.Allocs || st.Escaped != legacyStats.Escaped || st.SMTQueries != legacyStats.SMTQueries {
		t.Fatalf("stats: CheckAll %+v, FindLeaks %+v", st, legacyStats)
	}
	// FindLeaks reports in module order; CheckAll sorts by source position.
	// Match them up by allocation instruction.
	byAlloc := make(map[interface{}]detect.LeakReport, len(legacy))
	for _, lr := range legacy {
		byAlloc[lr.Alloc] = lr
	}
	for _, r := range res.Reports {
		lr, ok := byAlloc[r.Source]
		if !ok {
			t.Fatalf("CheckAll reported alloc at %s not reported by FindLeaks", r.SourcePos)
		}
		if r.Kind != lr.Kind.String() || r.SourceFn != lr.Fn || r.SourcePos != lr.Pos ||
			!reflect.DeepEqual(r.Witness, lr.Witness) {
			t.Fatalf("leak report mismatch at %s:\nCheckAll: %+v\nFindLeaks: %+v", r.SourcePos, r, lr)
		}
	}
}

// TestCheckAllAllEqualsEachIndividually is the -checkers all regression:
// running every checker in one CheckAll call produces exactly the union of
// running each checker alone.
func TestCheckAllAllEqualsEachIndividually(t *testing.T) {
	a := buildWorkloadSubject(t)
	all := a.CheckAll(checkers.All(), detect.Options{Workers: -1})
	var union []detect.Report
	for _, sp := range checkers.All() {
		one := a.CheckAll([]*checkers.Spec{sp}, detect.Options{Workers: -1})
		union = append(union, one.Reports...)
	}
	detect.SortReports(union)
	if !reflect.DeepEqual(all.Reports, union) {
		t.Fatalf("-checkers all != union of individual runs\nall:   %v\nunion: %v", all.Reports, union)
	}
}

// TestCheckAllReportCap checks MaxReportsPerChecker keeps the sequential
// cap semantics under parallel execution.
func TestCheckAllReportCap(t *testing.T) {
	a := buildWorkloadSubject(t)
	spec := checkers.UseAfterFree()
	full := a.CheckAll([]*checkers.Spec{spec}, detect.Options{Workers: -1})
	if len(full.Reports) < 2 {
		t.Skip("need at least 2 UAF reports to exercise the cap")
	}
	capped := a.CheckAll([]*checkers.Spec{spec}, detect.Options{Workers: -1, MaxReportsPerChecker: 1})
	seqCapped := a.CheckAll([]*checkers.Spec{spec}, detect.Options{Workers: 1, MaxReportsPerChecker: 1})
	if len(capped.Reports) != 1 {
		t.Fatalf("cap=1 returned %d reports", len(capped.Reports))
	}
	if !reflect.DeepEqual(capped.Reports, seqCapped.Reports) {
		t.Fatalf("capped parallel != capped sequential")
	}
}

// TestJSONReportShape checks the exported schema round-trips the fields the
// CLI used to emit.
func TestJSONReportShape(t *testing.T) {
	a := buildWorkloadSubject(t)
	res := a.CheckAll(checkers.All(), detect.Options{Workers: -1})
	for _, r := range res.Reports {
		j := r.ToJSON()
		if j.Checker != r.Checker || j.SourceFile != r.SourcePos.File || j.SourceLine != r.SourcePos.Line {
			t.Fatalf("ToJSON dropped source fields: %+v from %+v", j, r)
		}
		if r.Sink == nil {
			if j.SinkFile != "" || j.PathLen != 0 {
				t.Fatalf("leak report leaked sink fields: %+v", j)
			}
			if j.Kind == "" {
				t.Fatalf("leak report missing kind: %+v", j)
			}
		} else if j.SinkFile != r.SinkPos.File || j.SinkLine != r.SinkPos.Line {
			t.Fatalf("ToJSON dropped sink fields: %+v from %+v", j, r)
		}
	}
}
