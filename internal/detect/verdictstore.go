package detect

// Persistence of the canonical SMT verdict cache (smtcache.go). The
// in-memory sharded cache stays the canonical tier; a persistent
// store.Store attached via Program.AttachStore becomes a third lookup
// stage behind it: queries that miss both memory tiers consult the store,
// and fresh solves write through. A restarted process pointed at the same
// store directory therefore replays the verdicts it solved before instead
// of re-entering DPLL(T).
//
// Record formats (little-endian, fixed width — no gob, the records are
// tiny and read on the detection hot path):
//
//	NSVerdict, key = hex(Canon.Exact):
//	    1 byte result (smt.Sat / smt.Unsat)
//	    followed by the canonical Sat model as 5-byte pairs:
//	    uint32 canonical variable id, 1 byte boolean value,
//	    sorted by id. Unsat records carry no pairs.
//	NSVerdictShape, key = hex(Canon.Shape):
//	    the single byte 0x01, present iff the shape was proven Unsat.
//
// Unknown verdicts are never persisted: Unknown encodes this run's budget
// boundary, not a property of the formula, so replaying one under a
// different SMTBudget could mask a now-affordable solve. (The in-memory
// tier does cache Unknowns — within one Program the budget is fixed.)
// The incremental-solver guard of store() applies before write-through,
// so only Unsat ever reaches disk from incremental runs.

import (
	"encoding/binary"
	"encoding/hex"
	"sort"

	"repro/internal/smt"
	"repro/internal/store"
)

// AttachStore backs the verdict cache with a persistent store. Memory
// misses read through to it and fresh solves write through, so verdicts
// survive restarts; which pipeline stage answers a query changes, the
// answer never does. A nil or non-persistent store is a no-op — the
// in-memory cache is already the canonical map, and mirroring it into
// another memory map would be pure overhead.
func (p *Program) AttachStore(st store.Store) {
	if p == nil || p.smtCache == nil || st == nil || !st.Persistent() {
		return
	}
	p.smtCache.backing.Store(&verdictBacking{st: st})
}

// verdictBacking wraps the store handle so the cache can swap it
// atomically (AttachStore may race with in-flight CheckAll lookups).
type verdictBacking struct {
	st store.Store
}

func (c *smtVerdictCache) backingHandle() store.Store {
	if b := c.backing.Load(); b != nil {
		return b.st
	}
	return nil
}

// backingLookup is the third lookup stage, tried after both memory tiers
// miss. A hit populates the memory shard (so the next isomorphic query
// stops there) and reports the same tier outcome a memory hit would.
// Store errors and undecodable records read as misses: the caller solves.
func (c *smtVerdictCache) backingLookup(fp *smt.Canon) (smt.Result, map[string]bool, queryOutcome, bool) {
	st := c.backingHandle()
	if st == nil {
		return smt.Unknown, nil, querySolved, false
	}
	if data, ok, err := st.Get(store.NSVerdict, hex.EncodeToString(fp.Exact[:])); err == nil && ok {
		if res, model, ok := decodeVerdict(data); ok {
			sh := c.shard(fp.Exact)
			sh.mu.Lock()
			if _, dup := sh.exact[fp.Exact]; !dup {
				sh.exact[fp.Exact] = &smtVerdict{res: res, model: model}
			}
			sh.mu.Unlock()
			if res == smt.Unsat {
				sh = c.shard(fp.Shape)
				sh.mu.Lock()
				sh.shape[fp.Shape] = struct{}{}
				sh.mu.Unlock()
			}
			return res, fp.ProjectModel(model), queryCacheExact, true
		}
	}
	if data, ok, err := st.Get(store.NSVerdictShape, hex.EncodeToString(fp.Shape[:])); err == nil && ok && len(data) == 1 && data[0] == 1 {
		sh := c.shard(fp.Shape)
		sh.mu.Lock()
		sh.shape[fp.Shape] = struct{}{}
		sh.mu.Unlock()
		return smt.Unsat, nil, queryCacheShape, true
	}
	return smt.Unknown, nil, querySolved, false
}

// backingStore writes a freshly solved verdict through to the persistent
// store. Put errors are swallowed: persistence is best-effort, the memory
// tier carries the current run either way.
func (c *smtVerdictCache) backingStore(fp *smt.Canon, res smt.Result, model map[int]bool) {
	st := c.backingHandle()
	if st == nil {
		return
	}
	if res == smt.Sat || res == smt.Unsat {
		_ = st.Put(store.NSVerdict, hex.EncodeToString(fp.Exact[:]), encodeVerdict(res, model))
	}
	if res == smt.Unsat {
		_ = st.Put(store.NSVerdictShape, hex.EncodeToString(fp.Shape[:]), []byte{1})
	}
}

// encodeVerdict flattens one exact-tier record; see the format comment at
// the top of the file.
func encodeVerdict(res smt.Result, model map[int]bool) []byte {
	buf := make([]byte, 1, 1+5*len(model))
	buf[0] = byte(res)
	ids := make([]int, 0, len(model))
	for id := range model {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var pair [5]byte
	for _, id := range ids {
		binary.LittleEndian.PutUint32(pair[:4], uint32(id))
		pair[4] = 0
		if model[id] {
			pair[4] = 1
		}
		buf = append(buf, pair[:]...)
	}
	return buf
}

// decodeVerdict parses an exact-tier record, reporting ok=false for any
// malformed byte so corrupted records degrade to cache misses.
func decodeVerdict(data []byte) (smt.Result, map[int]bool, bool) {
	if len(data) < 1 || (len(data)-1)%5 != 0 {
		return smt.Unknown, nil, false
	}
	res := smt.Result(data[0])
	if res != smt.Sat && res != smt.Unsat {
		return smt.Unknown, nil, false
	}
	n := (len(data) - 1) / 5
	var model map[int]bool
	if n > 0 {
		model = make(map[int]bool, n)
		for i := 0; i < n; i++ {
			p := data[1+5*i:]
			v := p[4]
			if v > 1 {
				return smt.Unknown, nil, false
			}
			model[int(int32(binary.LittleEndian.Uint32(p[:4])))] = v == 1
		}
	}
	return res, model, true
}
