package detect

import (
	"sync"

	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/seg"
	"repro/internal/summary"
)

// caches holds the detection-phase artifacts that are expensive to build
// and profitable to share across demand sources: memoized local flow
// summaries, per-function linear solvers, and per-graph reverse adjacency.
//
// The outer maps are fully populated at construction and never written
// again, so workers index them without synchronization; mutation happens
// only inside the per-entry locks (flow tables and linear solvers memoize
// on demand) or under a sync.Once (reverse indexes are built at most once).
// Because every memoized result is a pure function of the frozen program,
// the cache contents — and everything derived from them — are independent
// of worker interleaving.
type caches struct {
	prog  *Program
	flows map[*seg.Graph]*flowTable
	lin   map[*ir.Func]*linearCache
	rev   map[*seg.Graph]*revEntry
}

type flowTable struct {
	mu sync.Mutex
	t  *summary.Table
}

type linearCache struct {
	mu sync.Mutex
	ls *cond.LinearSolver
}

type revEntry struct {
	once sync.Once
	r    map[*seg.Node][]*seg.Node
}

func newCaches(prog *Program) *caches {
	c := &caches{
		prog:  prog,
		flows: make(map[*seg.Graph]*flowTable, len(prog.SEGs)),
		lin:   make(map[*ir.Func]*linearCache, len(prog.SEGs)),
		rev:   make(map[*seg.Graph]*revEntry, len(prog.SEGs)),
	}
	for f, g := range prog.SEGs {
		if g == nil {
			continue
		}
		c.flows[g] = &flowTable{t: summary.NewTable()}
		c.lin[f] = &linearCache{ls: cond.NewLinearSolver()}
		c.rev[g] = &revEntry{}
	}
	return c
}

// flowsFrom enumerates (memoized) local flows from a vertex. Local flows
// never leave their graph, so one lock per graph suffices and independent
// functions proceed in parallel.
func (c *caches) flowsFrom(g *seg.Graph, from *seg.Node) []summary.Flow {
	ft := c.flows[g]
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.t.FlowsFrom(g, from)
}

// apparentlyUnsat runs the linear contradiction filter of fn's solver.
func (c *caches) apparentlyUnsat(fn *ir.Func, co *cond.Cond) bool {
	lc := c.lin[fn]
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.ls.ApparentlyUnsat(co)
}

// reverse returns the value-node reverse adjacency of a graph, built on
// first use.
func (c *caches) reverse(g *seg.Graph) map[*seg.Node][]*seg.Node {
	re := c.rev[g]
	re.once.Do(func() {
		r := make(map[*seg.Node][]*seg.Node)
		for _, n := range g.AllNodes() {
			for _, edge := range g.Succs(n) {
				r[edge.To] = append(r[edge.To], n)
			}
		}
		re.r = r
	})
	return re.r
}

// capHits sums the summary-table truncation counters across all graphs.
// Truncation is decided by the (deterministic) enumeration of each vertex,
// so the total does not depend on scheduling.
func (c *caches) capHits() int {
	total := 0
	for _, ft := range c.flows {
		ft.mu.Lock()
		total += ft.t.CapHits
		ft.mu.Unlock()
	}
	return total
}

// summaryStats sums the flow-cache lookup counters across all graphs.
// Every vertex is enumerated exactly once (the per-graph lock serializes
// the memo), so misses equal the number of distinct vertices touched and
// the totals are as deterministic as the rest of the run.
func (c *caches) summaryStats() (hits, misses int) {
	for _, ft := range c.flows {
		ft.mu.Lock()
		hits += ft.t.Hits
		misses += ft.t.Misses
		ft.mu.Unlock()
	}
	return hits, misses
}
