package detect_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
)

// The differential suite behind the SMT-query-elimination guarantee: every
// combination of verdict cache and prefilter — including a warm cache, whose
// exact-tier entries replay stored models — must produce JSON reports
// byte-identical to the eliminate-nothing baseline, at one worker and at
// GOMAXPROCS. scripts/check.sh runs the package under -race, which makes the
// shared-cache locking part of what these tests exercise.

// exampleUnits loads the checked-in CLI example sources.
func exampleUnits(t *testing.T) []minic.NamedSource {
	t.Helper()
	paths, err := filepath.Glob("../../examples/mc/*.mc")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example sources found: %v", err)
	}
	units := make([]minic.NamedSource, len(paths))
	for i, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		units[i] = minic.NamedSource{Name: filepath.Base(p), Src: string(src)}
	}
	return units
}

func marshalReports(t *testing.T, rs []detect.Report) string {
	t.Helper()
	js := make([]detect.JSONReport, len(rs))
	for i, r := range rs {
		js[i] = r.ToJSON()
	}
	b, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runSMTDifferential checks CheckAll over a — under every elimination
// configuration and worker count — against the both-stages-disabled
// baseline. One Analysis is shared deliberately: later runs with the cache
// enabled hit entries stored by earlier ones, so warm-cache model replay is
// part of the contract under test.
func runSMTDifferential(t *testing.T, a *core.Analysis) {
	specs := checkers.All()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		base := a.CheckAll(specs, detect.Options{
			Workers: workers, DisableSMTCache: true, DisableSMTPrefilter: true,
		})
		baseJSON := marshalReports(t, base.Reports)
		if len(base.Reports) == 0 {
			t.Fatal("baseline produced no reports; differential is vacuous")
		}
		variants := []struct {
			name string
			opts detect.Options
		}{
			{"prefilter-only", detect.Options{Workers: workers, DisableSMTCache: true}},
			{"cache-only", detect.Options{Workers: workers, DisableSMTPrefilter: true}},
			{"cache+prefilter", detect.Options{Workers: workers}},
			{"cache+prefilter-warm", detect.Options{Workers: workers}},
		}
		for _, v := range variants {
			res := a.CheckAll(specs, v.opts)
			if got := marshalReports(t, res.Reports); got != baseJSON {
				t.Fatalf("workers=%d %s: reports differ from elimination-off baseline\nbase: %s\ngot:  %s",
					workers, v.name, baseJSON, got)
			}
			// The stages must partition the query count exactly.
			for _, cs := range res.Checkers {
				st := cs.Stats
				if st.SMTSolved+st.SMTCacheHits+st.SMTPrefilterUnsat != st.SMTQueries {
					t.Fatalf("workers=%d %s %s: stages %d+%d+%d != queries %d",
						workers, v.name, cs.Checker,
						st.SMTSolved, st.SMTCacheHits, st.SMTPrefilterUnsat, st.SMTQueries)
				}
				if v.opts.DisableSMTCache && st.SMTCacheHits != 0 {
					t.Fatalf("workers=%d %s %s: cache disabled but %d hits",
						workers, v.name, cs.Checker, st.SMTCacheHits)
				}
				if v.opts.DisableSMTPrefilter && st.SMTPrefilterUnsat != 0 {
					t.Fatalf("workers=%d %s %s: prefilter disabled but %d kills",
						workers, v.name, cs.Checker, st.SMTPrefilterUnsat)
				}
			}
		}
	}
}

func TestSMTEliminationDifferentialExamples(t *testing.T) {
	a, err := core.BuildFromSource(exampleUnits(t), core.BuildOptions{Workers: -1})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	runSMTDifferential(t, a)
}

func TestSMTEliminationDifferentialWorkload(t *testing.T) {
	runSMTDifferential(t, buildWorkloadSubject(t))
}

// TestSMTEliminationAblationStats pins the elimination machinery's effect,
// not just its harmlessness: with both stages on, a second (warm) run must
// answer every query without entering the DPLL(T) solver, and the prefilter
// must refute at least one candidate on the workload subject.
func TestSMTEliminationAblationStats(t *testing.T) {
	a := buildWorkloadSubject(t)
	specs := checkers.All()
	opts := detect.Options{Workers: 1}
	a.CheckAll(specs, opts) // cold run populates the verdict cache
	warm := a.CheckAll(specs, opts)
	var solved, hits, prefiltered, queries int
	for _, cs := range warm.Checkers {
		solved += cs.Stats.SMTSolved
		hits += cs.Stats.SMTCacheHits
		prefiltered += cs.Stats.SMTPrefilterUnsat
		queries += cs.Stats.SMTQueries
	}
	if queries == 0 {
		t.Fatal("no SMT queries issued; ablation is vacuous")
	}
	if solved != 0 {
		t.Errorf("warm run still solved %d of %d queries; verdict cache not retaining", solved, queries)
	}
	if hits == 0 {
		t.Error("warm run recorded no cache hits")
	}
	if prefiltered == 0 {
		t.Error("prefilter refuted no candidate on the workload subject")
	}
}

// TestSMTIncrementalMode exercises the opt-in grouped Push/Pop solver
// reuse. Retained learned clauses may steer Sat model search, so the
// guarantee is weaker than byte-identity: the same bugs (checker, source,
// sink, verdict) must be found, and the mode must be stable across worker
// counts and repeated runs.
func TestSMTIncrementalMode(t *testing.T) {
	a := buildWorkloadSubject(t)
	specs := checkers.All()
	base := a.CheckAll(specs, detect.Options{Workers: 1})

	key := func(rs []detect.Report) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = fmt.Sprintf("%s|%s|%s|%s|%s|%v", r.Checker, r.Kind,
				r.SourcePos, r.SinkPos, r.SourceFn, r.Verdict)
		}
		return out
	}
	want := key(base.Reports)

	var first []string
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		inc := a.CheckAll(specs, detect.Options{Workers: workers, SMTIncremental: true})
		got := key(inc.Reports)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: incremental mode found %d reports, default %d",
				workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d report %d: %s != %s", workers, i, got[i], want[i])
			}
		}
		if first == nil {
			first = got
		}
	}
}
