// Package lower translates MiniC ASTs into the CFG-based IR of package ir.
//
// Lowering applies the soundiness policies of Pinpoint §4.2 at the earliest
// possible stage:
//
//   - while-loops are unrolled once (the body is guarded by the condition
//     and executed at most one time);
//   - functions are normalized to a single return (the paper's language
//     assumes one return statement per function);
//   - short-circuit && and || become explicit control flow so their
//     evaluation order contributes branch conditions;
//   - malloc/free are intrinsics; all other undefined callees remain
//     external calls that the checkers model by name.
//
// Local variables whose address is never taken stay virtual registers and
// are later SSA-renamed; address-taken locals get an explicit stack slot
// (OpAlloc) accessed through loads and stores, exactly the memory the local
// points-to analysis reasons about.
package lower

import (
	"fmt"

	"repro/internal/conc"
	"repro/internal/ir"
	"repro/internal/minic"
)

// Intrinsic names recognized by lowering.
const (
	mallocName = "malloc"
	freeName   = "free"
)

// Program lowers a parsed program into an IR module. Duplicate function
// definitions (same name in any units) are rejected: the analysis resolves
// calls by name, so a second body would silently shadow the first.
func Program(prog *minic.Program) (*ir.Module, error) {
	return ProgramWith(prog, 1)
}

// ProgramWith is Program on a bounded worker pool: function declarations
// lower independently (FuncWith reads the module's global table and the
// pre-collected signature/struct tables, all frozen by then), so they
// run per-function in parallel and are appended to the module in
// declaration order afterwards. Output is identical to the sequential
// lowering at any worker count.
func ProgramWith(prog *minic.Program, workers int) (*ir.Module, error) {
	m := ir.NewModule()
	m.Units = len(prog.Files)
	for _, file := range prog.Files {
		for _, g := range file.Globals {
			m.AddGlobal(&ir.Global{Name: g.Name, Type: g.Type})
		}
	}
	sigs := Sigs(prog)
	structs := Structs(prog)
	seen := make(map[string]*minic.FuncDecl)
	var decls []*minic.FuncDecl
	for _, file := range prog.Files {
		for _, fn := range file.Funcs {
			if prev, ok := seen[fn.Name]; ok {
				return nil, fmt.Errorf("duplicate function %q (at %s and %s)", fn.Name, prev.Pos, fn.Pos)
			}
			seen[fn.Name] = fn
			decls = append(decls, fn)
		}
	}
	fns := make([]*ir.Func, len(decls))
	if err := conc.ForEach(len(decls), workers, func(_, i int) error {
		lf, err := FuncWith(m, decls[i], sigs, structs)
		if err != nil {
			return err
		}
		fns[i] = lf
		return nil
	}); err != nil {
		return nil, err
	}
	for _, lf := range fns {
		m.AddFunc(lf)
	}
	return m, nil
}

// Sigs pre-collects every function's declared return type so forward calls
// resolve their result type during lowering.
func Sigs(prog *minic.Program) map[string]minic.Type {
	sigs := make(map[string]minic.Type)
	for _, fn := range prog.Funcs() {
		sigs[fn.Name] = fn.Ret
	}
	return sigs
}

// Structs pre-collects every struct layout so field accesses resolve their
// types during lowering.
func Structs(prog *minic.Program) map[string][]minic.Param {
	structs := make(map[string][]minic.Param)
	for _, file := range prog.Files {
		for _, sd := range file.Structs {
			structs[sd.Name] = sd.Fields
		}
	}
	return structs
}

// FuncWith lowers a single declaration with explicit signature and struct
// tables — the per-function artifact producer the incremental session
// builds on. Lowering one declaration with the same tables always yields a
// structurally identical ir.Func, whichever other functions exist.
func FuncWith(m *ir.Module, decl *minic.FuncDecl, sigs map[string]minic.Type, structs map[string][]minic.Param) (*ir.Func, error) {
	return lowerFuncWithStructs(m, decl, sigs, structs)
}

// Func lowers a single function into IR. Callee return types are resolved
// from functions already registered in m.
func Func(m *ir.Module, decl *minic.FuncDecl) (*ir.Func, error) {
	sigs := make(map[string]minic.Type, len(m.Funcs))
	for _, f := range m.Funcs {
		sigs[f.Name] = f.Ret
	}
	return lowerFunc(m, decl, sigs)
}

func lowerFunc(m *ir.Module, decl *minic.FuncDecl, sigs map[string]minic.Type) (*ir.Func, error) {
	return lowerFuncWithStructs(m, decl, sigs, nil)
}

func lowerFuncWithStructs(m *ir.Module, decl *minic.FuncDecl, sigs map[string]minic.Type, structs map[string][]minic.Param) (*ir.Func, error) {
	lw := &lowerer{
		m:       m,
		f:       ir.NewFunc(decl.Name, decl.Ret, decl.Unit, decl.Pos),
		scopes:  []map[string]binding{{}},
		addrOf:  collectAddressTaken(decl),
		sigs:    sigs,
		structs: structs,
	}
	f := lw.f
	f.Entry = f.NewBlock()
	lw.cur = f.Entry

	// Exit block with single return.
	f.Exit = f.NewBlock()
	if !decl.Ret.IsVoid() {
		lw.retVar = f.NewVar("ret$"+decl.Name, decl.Ret)
		f.Append(f.Exit, ir.Instr{Op: ir.OpRet, Args: []*ir.Value{lw.retVar}, Pos: decl.Pos})
	} else {
		f.Append(f.Exit, ir.Instr{Op: ir.OpRet, Pos: decl.Pos})
	}

	// Parameters. Address-taken parameters are spilled to a slot.
	for _, p := range decl.Params {
		pv := f.NewParam(p.Name, p.Type, false)
		if lw.addrOf[p.Name] {
			slot := lw.emitAlloc(p.Name, p.Type, decl.Pos)
			lw.emit(ir.Instr{Op: ir.OpStore, Args: []*ir.Value{slot, pv}, Pos: decl.Pos})
			lw.bind(p.Name, binding{slot: slot, typ: p.Type})
		} else {
			lw.bind(p.Name, binding{reg: pv, typ: p.Type})
		}
	}

	if err := lw.stmt(decl.Body); err != nil {
		return nil, err
	}
	// Fall-through at end of body: default return value.
	if lw.cur != nil {
		if lw.retVar != nil {
			lw.emit(ir.Instr{Op: ir.OpCopy, Dst: lw.retVar, Args: []*ir.Value{lw.defaultValue(decl.Ret)}, Pos: decl.Pos})
		}
		lw.emitJmp(f.Exit, decl.Pos)
	}
	// Drop unreachable empty shells (blocks never jumped to).
	pruneUnreachable(f)
	if err := ir.Verify(f); err != nil {
		return nil, fmt.Errorf("lower %s: %w", decl.Name, err)
	}
	return f, nil
}

// binding is a name resolution result: either a register variable or a
// memory slot address.
type binding struct {
	reg  *ir.Value // register variable (nil if in memory)
	slot *ir.Value // address of stack slot (nil if register)
	typ  minic.Type
}

type lowerer struct {
	m       *ir.Module
	f       *ir.Func
	cur     *ir.Block // nil after a terminator, until a new block starts
	scopes  []map[string]binding
	addrOf  map[string]bool
	sigs    map[string]minic.Type
	structs map[string][]minic.Param
	retVar  *ir.Value
	tmpN    int
}

// fieldType resolves the type of base->field, where base is a pointer to a
// struct. Unknown structs or fields default to int (soundy typing).
func (lw *lowerer) fieldType(base minic.Type, field string) minic.Type {
	if !base.IsPointer() {
		return minic.IntType
	}
	elem := base.Elem()
	for _, f := range lw.structs[elem.StructName()] {
		if f.Name == field {
			return f.Type
		}
	}
	return minic.IntType
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]binding{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) bind(name string, b binding) {
	lw.scopes[len(lw.scopes)-1][name] = b
}

func (lw *lowerer) lookup(name string) (binding, bool) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if b, ok := lw.scopes[i][name]; ok {
			return b, true
		}
	}
	return binding{}, false
}

func (lw *lowerer) emit(in ir.Instr) *ir.Instr {
	if lw.cur == nil {
		// Unreachable code (after return); emit into a fresh dead block
		// that pruneUnreachable removes.
		lw.cur = lw.f.NewBlock()
	}
	return lw.f.Append(lw.cur, in)
}

func (lw *lowerer) emitJmp(to *ir.Block, pos minic.Pos) {
	if lw.cur == nil {
		return
	}
	lw.f.Append(lw.cur, ir.Instr{Op: ir.OpJmp, Blocks: []*ir.Block{to}, Pos: pos})
	ir.Connect(lw.cur, to)
	lw.cur = nil
}

func (lw *lowerer) emitBr(cond *ir.Value, t, e *ir.Block, pos minic.Pos) {
	if lw.cur == nil {
		return
	}
	lw.f.Append(lw.cur, ir.Instr{Op: ir.OpBr, Args: []*ir.Value{cond}, Blocks: []*ir.Block{t, e}, Pos: pos})
	ir.Connect(lw.cur, t)
	ir.Connect(lw.cur, e)
	lw.cur = nil
}

func (lw *lowerer) emitAlloc(name string, t minic.Type, pos minic.Pos) *ir.Value {
	slot := lw.f.NewVar("&"+name, t.Pointer())
	lw.emit(ir.Instr{Op: ir.OpAlloc, Dst: slot, Sub: name, Pos: pos})
	return slot
}

func (lw *lowerer) tmp(t minic.Type) *ir.Value {
	lw.tmpN++
	return lw.f.NewVar(fmt.Sprintf("t%d", lw.tmpN), t)
}

func (lw *lowerer) defaultValue(t minic.Type) *ir.Value {
	switch {
	case t.IsPointer():
		return lw.f.ConstNull()
	case t.Base == "bool":
		return lw.f.ConstBool(false)
	default:
		return lw.f.ConstInt(0)
	}
}

func (lw *lowerer) stmt(s minic.Stmt) error {
	switch st := s.(type) {
	case *minic.BlockStmt:
		lw.pushScope()
		for _, inner := range st.Stmts {
			if err := lw.stmt(inner); err != nil {
				return err
			}
		}
		lw.popScope()
		return nil
	case *minic.DeclStmt:
		return lw.declStmt(st)
	case *minic.AssignStmt:
		return lw.assignStmt(st)
	case *minic.IfStmt:
		return lw.ifStmt(st)
	case *minic.WhileStmt:
		// Unroll once: while (c) S  ==>  if (c) { S }.
		return lw.ifStmt(&minic.IfStmt{Pos: st.Pos, Cond: st.Cond, Then: st.Body})
	case *minic.ReturnStmt:
		if st.Value != nil {
			v, err := lw.expr(st.Value, lw.f.Ret)
			if err != nil {
				return err
			}
			if lw.retVar != nil {
				lw.emit(ir.Instr{Op: ir.OpCopy, Dst: lw.retVar, Args: []*ir.Value{v}, Pos: st.Pos})
			}
		} else if lw.retVar != nil {
			lw.emit(ir.Instr{Op: ir.OpCopy, Dst: lw.retVar, Args: []*ir.Value{lw.defaultValue(lw.f.Ret)}, Pos: st.Pos})
		}
		lw.emitJmp(lw.f.Exit, st.Pos)
		return nil
	case *minic.ExprStmt:
		_, err := lw.expr(st.X, minic.VoidType)
		return err
	default:
		return fmt.Errorf("lower: unknown statement %T", s)
	}
}

func (lw *lowerer) declStmt(st *minic.DeclStmt) error {
	d := st.Decl
	var init *ir.Value
	if d.Init != nil {
		v, err := lw.expr(d.Init, d.Type)
		if err != nil {
			return err
		}
		init = v
	} else {
		init = lw.defaultValue(d.Type)
	}
	if lw.addrOf[d.Name] {
		slot := lw.emitAlloc(d.Name, d.Type, d.Pos)
		lw.emit(ir.Instr{Op: ir.OpStore, Args: []*ir.Value{slot, init}, Pos: d.Pos})
		lw.bind(d.Name, binding{slot: slot, typ: d.Type})
	} else {
		reg := lw.f.NewVar(d.Name, d.Type)
		lw.emit(ir.Instr{Op: ir.OpCopy, Dst: reg, Args: []*ir.Value{init}, Pos: d.Pos})
		lw.bind(d.Name, binding{reg: reg, typ: d.Type})
	}
	return nil
}

func (lw *lowerer) assignStmt(st *minic.AssignStmt) error {
	switch target := st.Target.(type) {
	case *minic.Ident:
		b, global, err := lw.resolve(target)
		if err != nil {
			return err
		}
		v, verr := lw.expr(st.Value, bindingType(b, global, lw.m))
		if verr != nil {
			return verr
		}
		return lw.storeTo(target, b, global, v, st.Pos)
	case *minic.ArrowExpr: // p->f = v
		addr, err := lw.fieldAddr(target)
		if err != nil {
			return err
		}
		var hint minic.Type
		if addr.Type.IsPointer() {
			hint = addr.Type.Elem()
		} else {
			hint = minic.IntType
		}
		v, err := lw.expr(st.Value, hint)
		if err != nil {
			return err
		}
		lw.emit(ir.Instr{Op: ir.OpStore, Args: []*ir.Value{addr, v}, Pos: st.Pos})
		return nil
	case *minic.UnaryExpr: // *e = v (possibly multi-level)
		if target.Op != "*" {
			return fmt.Errorf("%s: invalid assignment target", st.Pos)
		}
		addr, err := lw.expr(target.X, minic.VoidType)
		if err != nil {
			return err
		}
		var hint minic.Type
		if addr.Type.IsPointer() {
			hint = addr.Type.Elem()
		} else {
			hint = minic.IntType
		}
		v, err := lw.expr(st.Value, hint)
		if err != nil {
			return err
		}
		lw.emit(ir.Instr{Op: ir.OpStore, Args: []*ir.Value{addr, v}, Pos: st.Pos})
		return nil
	default:
		return fmt.Errorf("%s: invalid assignment target", st.Pos)
	}
}

// resolve looks up an identifier as a local binding or a global.
func (lw *lowerer) resolve(id *minic.Ident) (binding, *ir.Global, error) {
	if b, ok := lw.lookup(id.Name); ok {
		return b, nil, nil
	}
	if g, ok := lw.m.GlobalByName[id.Name]; ok {
		return binding{}, g, nil
	}
	return binding{}, nil, fmt.Errorf("%s: undefined variable %q", id.Pos, id.Name)
}

func bindingType(b binding, g *ir.Global, m *ir.Module) minic.Type {
	if g != nil {
		return g.Type
	}
	return b.typ
}

func (lw *lowerer) storeTo(id *minic.Ident, b binding, g *ir.Global, v *ir.Value, pos minic.Pos) error {
	switch {
	case g != nil:
		addr := lw.tmp(g.Type.Pointer())
		lw.emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Sub: g.Name, Pos: pos})
		lw.emit(ir.Instr{Op: ir.OpStore, Args: []*ir.Value{addr, v}, Pos: pos})
	case b.slot != nil:
		lw.emit(ir.Instr{Op: ir.OpStore, Args: []*ir.Value{b.slot, v}, Pos: pos})
	case b.reg != nil:
		if b.reg.Kind == ir.VParam {
			// Parameters are immutable SSA values; introduce a shadow
			// register on first write.
			shadow := lw.f.NewVar(id.Name, b.typ)
			lw.emit(ir.Instr{Op: ir.OpCopy, Dst: shadow, Args: []*ir.Value{v}, Pos: pos})
			lw.rebind(id.Name, binding{reg: shadow, typ: b.typ})
		} else {
			lw.emit(ir.Instr{Op: ir.OpCopy, Dst: b.reg, Args: []*ir.Value{v}, Pos: pos})
		}
	default:
		return fmt.Errorf("%s: cannot assign to %q", pos, id.Name)
	}
	return nil
}

// rebind updates the innermost scope that binds name.
func (lw *lowerer) rebind(name string, b binding) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if _, ok := lw.scopes[i][name]; ok {
			lw.scopes[i][name] = b
			return
		}
	}
	lw.bind(name, b)
}

func (lw *lowerer) ifStmt(st *minic.IfStmt) error {
	cond, err := lw.boolExpr(st.Cond)
	if err != nil {
		return err
	}
	thenB := lw.f.NewBlock()
	var elseB *ir.Block
	join := lw.f.NewBlock()
	if st.Else != nil {
		elseB = lw.f.NewBlock()
		lw.emitBr(cond, thenB, elseB, st.Pos)
	} else {
		lw.emitBr(cond, thenB, join, st.Pos)
	}
	lw.cur = thenB
	if err := lw.stmt(st.Then); err != nil {
		return err
	}
	lw.emitJmp(join, st.Pos)
	if elseB != nil {
		lw.cur = elseB
		if err := lw.stmt(st.Else); err != nil {
			return err
		}
		lw.emitJmp(join, st.Pos)
	}
	if len(join.Preds) == 0 {
		// Both arms returned; everything after is unreachable.
		lw.cur = nil
		removeBlock(lw.f, join)
		return nil
	}
	lw.cur = join
	return nil
}

// boolExpr lowers a condition into a bool-typed value, materializing a named
// branch variable so that path conditions have stable atoms.
func (lw *lowerer) boolExpr(e minic.Expr) (*ir.Value, error) {
	v, err := lw.expr(e, minic.BoolType)
	if err != nil {
		return nil, err
	}
	if v.Type.Base == "bool" && v.Type.Ptr == 0 {
		return v, nil
	}
	// Coerce: c = (v != 0) for ints, (v != null) for pointers.
	var zero *ir.Value
	if v.Type.IsPointer() {
		zero = lw.f.ConstNull()
	} else {
		zero = lw.f.ConstInt(0)
	}
	c := lw.tmp(minic.BoolType)
	lw.emit(ir.Instr{Op: ir.OpBin, Dst: c, Sub: "!=", Args: []*ir.Value{v, zero}, Pos: e.ExprPos()})
	return c, nil
}

func pruneUnreachable(f *ir.Func) {
	reach := map[*ir.Block]bool{f.Entry: true}
	work := []*ir.Block{f.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	for _, b := range kept {
		var preds []*ir.Block
		for _, p := range b.Preds {
			if reach[p] {
				preds = append(preds, p)
			}
		}
		b.Preds = preds
	}
	f.Blocks = kept
}

func removeBlock(f *ir.Func, b *ir.Block) {
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}

// collectAddressTaken finds all variable names whose address is taken
// anywhere in the function.
func collectAddressTaken(fn *minic.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	var walkExpr func(e minic.Expr)
	var walkStmt func(s minic.Stmt)
	walkExpr = func(e minic.Expr) {
		switch x := e.(type) {
		case *minic.UnaryExpr:
			if x.Op == "&" {
				if id, ok := x.X.(*minic.Ident); ok {
					out[id.Name] = true
				}
			}
			walkExpr(x.X)
		case *minic.BinaryExpr:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *minic.CallExpr:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	walkStmt = func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.BlockStmt:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		case *minic.DeclStmt:
			if st.Decl.Init != nil {
				walkExpr(st.Decl.Init)
			}
		case *minic.AssignStmt:
			walkExpr(st.Target)
			walkExpr(st.Value)
		case *minic.IfStmt:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *minic.WhileStmt:
			walkExpr(st.Cond)
			walkStmt(st.Body)
		case *minic.ReturnStmt:
			if st.Value != nil {
				walkExpr(st.Value)
			}
		case *minic.ExprStmt:
			walkExpr(st.X)
		}
	}
	walkStmt(fn.Body)
	return out
}
