package lower

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/minic"
)

// expr lowers an expression; hint suggests the result type when the
// expression alone cannot determine it (malloc, external calls, null).
func (lw *lowerer) expr(e minic.Expr, hint minic.Type) (*ir.Value, error) {
	switch x := e.(type) {
	case *minic.IntLit:
		return lw.f.ConstInt(x.Val), nil
	case *minic.BoolLit:
		return lw.f.ConstBool(x.Val), nil
	case *minic.NullLit:
		return lw.f.ConstNull(), nil
	case *minic.Ident:
		return lw.loadIdent(x)
	case *minic.UnaryExpr:
		return lw.unary(x, hint)
	case *minic.BinaryExpr:
		return lw.binary(x)
	case *minic.ArrowExpr:
		addr, err := lw.fieldAddr(x)
		if err != nil {
			return nil, err
		}
		var t minic.Type
		if addr.Type.IsPointer() {
			t = addr.Type.Elem()
		} else {
			t = minic.IntType
		}
		v := lw.tmp(t)
		lw.emit(ir.Instr{Op: ir.OpLoad, Dst: v, Args: []*ir.Value{addr}, Pos: x.Pos})
		return v, nil
	case *minic.CallExpr:
		return lw.call(x, hint)
	default:
		return nil, fmt.Errorf("lower: unknown expression %T", e)
	}
}

// fieldAddr lowers &(base->field): the base pointer is evaluated and an
// OpFieldAddr computes the field's address.
func (lw *lowerer) fieldAddr(x *minic.ArrowExpr) (*ir.Value, error) {
	base, err := lw.expr(x.X, minic.IntType.Pointer())
	if err != nil {
		return nil, err
	}
	ft := lw.fieldType(base.Type, x.Field)
	addr := lw.tmp(ft.Pointer())
	lw.emit(ir.Instr{Op: ir.OpFieldAddr, Dst: addr, Sub: x.Field, Args: []*ir.Value{base}, Pos: x.Pos})
	return addr, nil
}

func (lw *lowerer) loadIdent(id *minic.Ident) (*ir.Value, error) {
	b, g, err := lw.resolve(id)
	if err != nil {
		return nil, err
	}
	switch {
	case g != nil:
		addr := lw.tmp(g.Type.Pointer())
		lw.emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Sub: g.Name, Pos: id.Pos})
		v := lw.tmp(g.Type)
		lw.emit(ir.Instr{Op: ir.OpLoad, Dst: v, Args: []*ir.Value{addr}, Pos: id.Pos})
		return v, nil
	case b.slot != nil:
		v := lw.tmp(b.typ)
		lw.emit(ir.Instr{Op: ir.OpLoad, Dst: v, Args: []*ir.Value{b.slot}, Pos: id.Pos})
		return v, nil
	default:
		return b.reg, nil
	}
}

func (lw *lowerer) unary(x *minic.UnaryExpr, hint minic.Type) (*ir.Value, error) {
	switch x.Op {
	case "*":
		addr, err := lw.expr(x.X, hint.Pointer())
		if err != nil {
			return nil, err
		}
		var t minic.Type
		if addr.Type.IsPointer() {
			t = addr.Type.Elem()
		} else {
			t = minic.IntType
		}
		v := lw.tmp(t)
		lw.emit(ir.Instr{Op: ir.OpLoad, Dst: v, Args: []*ir.Value{addr}, Pos: x.Pos})
		return v, nil
	case "&":
		id, ok := x.X.(*minic.Ident)
		if !ok {
			return nil, fmt.Errorf("%s: '&' requires a variable operand", x.Pos)
		}
		b, g, err := lw.resolve(id)
		if err != nil {
			return nil, err
		}
		switch {
		case g != nil:
			addr := lw.tmp(g.Type.Pointer())
			lw.emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Sub: g.Name, Pos: x.Pos})
			return addr, nil
		case b.slot != nil:
			return b.slot, nil
		default:
			return nil, fmt.Errorf("%s: internal: %q address-taken but not spilled", x.Pos, id.Name)
		}
	case "-", "!":
		v, err := lw.expr(x.X, hint)
		if err != nil {
			return nil, err
		}
		t := v.Type
		if x.Op == "!" {
			t = minic.BoolType
		}
		d := lw.tmp(t)
		lw.emit(ir.Instr{Op: ir.OpUn, Dst: d, Sub: x.Op, Args: []*ir.Value{v}, Pos: x.Pos})
		return d, nil
	default:
		return nil, fmt.Errorf("%s: unknown unary operator %q", x.Pos, x.Op)
	}
}

func (lw *lowerer) binary(x *minic.BinaryExpr) (*ir.Value, error) {
	switch x.Op {
	case "&&", "||":
		return lw.shortCircuit(x)
	}
	a, err := lw.expr(x.X, minic.IntType)
	if err != nil {
		return nil, err
	}
	b, err := lw.expr(x.Y, a.Type)
	if err != nil {
		return nil, err
	}
	t := a.Type
	switch x.Op {
	case "==", "!=", "<", "<=", ">", ">=":
		t = minic.BoolType
	}
	d := lw.tmp(t)
	lw.emit(ir.Instr{Op: ir.OpBin, Dst: d, Sub: x.Op, Args: []*ir.Value{a, b}, Pos: x.Pos})
	return d, nil
}

// shortCircuit lowers && and || into control flow:
//
//	t = X; if (t) { t = Y }        for &&  (skip Y when X is false)
//	t = X; if (!t) { t = Y }       for ||
//
// The join's phi (created by SSA construction) carries the gate condition,
// so the evaluation-order semantics surface in path conditions.
func (lw *lowerer) shortCircuit(x *minic.BinaryExpr) (*ir.Value, error) {
	a, err := lw.boolExpr(x.X)
	if err != nil {
		return nil, err
	}
	t := lw.tmp(minic.BoolType)
	lw.emit(ir.Instr{Op: ir.OpCopy, Dst: t, Args: []*ir.Value{a}, Pos: x.Pos})
	evalY := lw.f.NewBlock()
	join := lw.f.NewBlock()
	if x.Op == "&&" {
		lw.emitBr(a, evalY, join, x.Pos)
	} else {
		lw.emitBr(a, join, evalY, x.Pos)
	}
	lw.cur = evalY
	b, err := lw.boolExpr(x.Y)
	if err != nil {
		return nil, err
	}
	lw.emit(ir.Instr{Op: ir.OpCopy, Dst: t, Args: []*ir.Value{b}, Pos: x.Pos})
	lw.emitJmp(join, x.Pos)
	lw.cur = join
	return t, nil
}

func (lw *lowerer) call(x *minic.CallExpr, hint minic.Type) (*ir.Value, error) {
	switch x.Fun {
	case mallocName:
		if len(x.Args) != 0 {
			return nil, fmt.Errorf("%s: malloc takes no arguments", x.Pos)
		}
		t := hint
		if !t.IsPointer() {
			t = minic.IntType.Pointer()
		}
		d := lw.tmp(t)
		lw.emit(ir.Instr{Op: ir.OpMalloc, Dst: d, Pos: x.Pos})
		return d, nil
	case freeName:
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("%s: free takes one argument", x.Pos)
		}
		p, err := lw.expr(x.Args[0], minic.IntType.Pointer())
		if err != nil {
			return nil, err
		}
		lw.emit(ir.Instr{Op: ir.OpFree, Args: []*ir.Value{p}, Pos: x.Pos})
		return p, nil
	}
	var args []*ir.Value
	for _, a := range x.Args {
		v, err := lw.expr(a, minic.IntType)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	// Result type: known callee's declared return; externals get the
	// hint (or int when called for effect).
	var retT minic.Type
	if sig, ok := lw.sigs[x.Fun]; ok {
		retT = sig
	} else {
		retT = hint
		if retT.IsVoid() {
			retT = minic.IntType
		}
	}
	var dst *ir.Value
	if !retT.IsVoid() {
		dst = lw.tmp(retT)
	}
	lw.emit(ir.Instr{Op: ir.OpCall, Dsts: []*ir.Value{dst}, Callee: x.Fun, Args: args, Pos: x.Pos})
	if dst == nil {
		// Void call in expression position: produce a dummy 0 so the
		// caller always gets a value.
		return lw.f.ConstInt(0), nil
	}
	return dst, nil
}
