package lower

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
)

func mustLower(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := Program(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestLowerStraightLine(t *testing.T) {
	m := mustLower(t, "int f(int a, int b) { int c = a + b; return c; }")
	f := m.ByName["f"]
	if f == nil {
		t.Fatal("f not lowered")
	}
	if got := countOps(f, ir.OpBin); got != 1 {
		t.Errorf("bin ops = %d, want 1", got)
	}
	if got := countOps(f, ir.OpRet); got != 1 {
		t.Errorf("ret ops = %d, want 1 (single-return normalization)", got)
	}
}

func TestLowerSingleReturnNormalization(t *testing.T) {
	m := mustLower(t, `
int f(int a) {
	if (a > 0) { return 1; }
	return 2;
}`)
	f := m.ByName["f"]
	if got := countOps(f, ir.OpRet); got != 1 {
		t.Fatalf("ret count = %d, want 1", got)
	}
	if f.Exit == nil || f.Exit.Term().Op != ir.OpRet {
		t.Fatal("exit block is not the return block")
	}
}

func TestLowerIfElseCFG(t *testing.T) {
	m := mustLower(t, `
int f(bool c) {
	int x = 0;
	if (c) { x = 1; } else { x = 2; }
	return x;
}`)
	f := m.ByName["f"]
	if got := countOps(f, ir.OpBr); got != 1 {
		t.Fatalf("br count = %d, want 1", got)
	}
	// The join block must have two predecessors.
	joins := 0
	for _, b := range f.Blocks {
		if len(b.Preds) == 2 {
			joins++
		}
	}
	if joins == 0 {
		t.Fatal("no join block with 2 preds")
	}
}

func TestLowerWhileUnrolledOnce(t *testing.T) {
	m := mustLower(t, `
int f(int n) {
	int s = 0;
	while (n > 0) { s = s + n; n = n - 1; }
	return s;
}`)
	f := m.ByName["f"]
	// Unrolled loop is an if: no back edges anywhere (CFG is a DAG).
	seen := map[*ir.Block]int{}
	order := 0
	for _, b := range f.Blocks {
		seen[b] = order
		order++
	}
	// Since blocks are created in lowering order and we never jump
	// backwards, every edge must go to an unvisited-later block or the
	// exit; verify acyclicity by DFS.
	if hasCycle(f) {
		t.Fatal("CFG has a cycle; while was not unrolled")
	}
}

func hasCycle(f *ir.Func) bool {
	state := map[*ir.Block]int{} // 0 unvisited, 1 in progress, 2 done
	var dfs func(*ir.Block) bool
	dfs = func(b *ir.Block) bool {
		switch state[b] {
		case 1:
			return true
		case 2:
			return false
		}
		state[b] = 1
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		state[b] = 2
		return false
	}
	return dfs(f.Entry)
}

func TestLowerAddressTakenLocal(t *testing.T) {
	m := mustLower(t, `
int f() {
	int x = 1;
	int *p = &x;
	*p = 2;
	return x;
}`)
	f := m.ByName["f"]
	if got := countOps(f, ir.OpAlloc); got != 1 {
		t.Errorf("alloc count = %d, want 1 (x spilled)", got)
	}
	// x reads become loads, x writes stores: init store + *p store.
	if got := countOps(f, ir.OpStore); got < 2 {
		t.Errorf("store count = %d, want >= 2", got)
	}
	if got := countOps(f, ir.OpLoad); got < 1 {
		t.Errorf("load count = %d, want >= 1", got)
	}
}

func TestLowerMallocFreeIntrinsics(t *testing.T) {
	m := mustLower(t, `
void f() {
	int *p = malloc();
	free(p);
}`)
	f := m.ByName["f"]
	if countOps(f, ir.OpMalloc) != 1 || countOps(f, ir.OpFree) != 1 {
		t.Fatalf("malloc/free not lowered as intrinsics:\n%s", f)
	}
	if countOps(f, ir.OpCall) != 0 {
		t.Fatal("intrinsics lowered as calls")
	}
}

func TestLowerMallocTypeHint(t *testing.T) {
	m := mustLower(t, "void f() { int **pp = malloc(); }")
	f := m.ByName["f"]
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMalloc {
				if got := in.Dst.Type.String(); got != "int**" {
					t.Fatalf("malloc type = %s, want int**", got)
				}
				return
			}
		}
	}
	t.Fatal("no malloc found")
}

func TestLowerCallsAndExternals(t *testing.T) {
	m := mustLower(t, `
int g(int x) { return x + 1; }
void f() {
	int a = g(3);
	int b = ext(a);
	sink(b);
}`)
	f := m.ByName["f"]
	if got := countOps(f, ir.OpCall); got != 3 {
		t.Fatalf("call count = %d, want 3", got)
	}
}

func TestLowerShortCircuit(t *testing.T) {
	m := mustLower(t, `
void f(bool a, bool b) {
	if (a && b) { g(); }
}`)
	f := m.ByName["f"]
	// && lowers to an extra branch.
	if got := countOps(f, ir.OpBr); got != 2 {
		t.Fatalf("br count = %d, want 2:\n%s", got, f)
	}
}

func TestLowerGlobals(t *testing.T) {
	m := mustLower(t, `
int g;
void f() { g = 3; int x = g; }`)
	f := m.ByName["f"]
	if got := countOps(f, ir.OpGlobalAddr); got != 2 {
		t.Errorf("gaddr count = %d, want 2", got)
	}
	if len(m.Globals) != 1 || m.Globals[0].Name != "g" {
		t.Errorf("globals = %+v", m.Globals)
	}
}

func TestLowerDerefChain(t *testing.T) {
	m := mustLower(t, `
void f(int **pp) {
	int x = **pp;
	**pp = 3;
}`)
	f := m.ByName["f"]
	// **pp read: 2 loads; **pp write: 1 load + 1 store.
	if got := countOps(f, ir.OpLoad); got != 3 {
		t.Errorf("load count = %d, want 3:\n%s", got, f)
	}
	if got := countOps(f, ir.OpStore); got != 1 {
		t.Errorf("store count = %d, want 1", got)
	}
}

func TestLowerParamWrite(t *testing.T) {
	m := mustLower(t, "int f(int a) { a = a + 1; return a; }")
	f := m.ByName["f"]
	// Writing a parameter introduces a shadow copy, not a param mutation.
	if got := countOps(f, ir.OpCopy); got < 1 {
		t.Errorf("copy count = %d, want >= 1:\n%s", got, f)
	}
}

func TestLowerImplicitReturn(t *testing.T) {
	m := mustLower(t, "int f() { }")
	f := m.ByName["f"]
	ret := f.Exit.Term()
	if ret.Op != ir.OpRet || len(ret.Args) != 1 {
		t.Fatalf("exit terminator = %s", ret)
	}
}

func TestLowerBothArmsReturn(t *testing.T) {
	m := mustLower(t, `
int f(bool c) {
	if (c) { return 1; } else { return 2; }
}`)
	f := m.ByName["f"]
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestLowerUndefinedVariable(t *testing.T) {
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t", Src: "void f() { x = 1; }"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Program(prog); err == nil {
		t.Fatal("lowering undefined variable succeeded")
	}
}

func TestLowerPrintSmoke(t *testing.T) {
	m := mustLower(t, `
int *id(int *p) { return p; }
void f(int *a) {
	int *q = id(a);
	if (q != null) { free(q); }
}`)
	s := m.String()
	for _, frag := range []string{"func id", "func f", "call id", "free", "br"} {
		if !strings.Contains(s, frag) {
			t.Errorf("module print missing %q:\n%s", frag, s)
		}
	}
}

func TestLineCount(t *testing.T) {
	m := mustLower(t, "void f() { int x = 1; int y = 2; }")
	if m.LineCount() < 3 {
		t.Errorf("LineCount = %d, want >= 3", m.LineCount())
	}
}
