package tenant_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// TestCostLedger: request deltas accumulate per project, the ranked report
// orders by attributed CPU with shares summing to 1, and the labeled
// tenant.cost_* metrics mirror the ledger.
func TestCostLedger(t *testing.T) {
	rec := obs.New()
	m := tenant.NewManager(tenant.Config{Obs: rec})

	add := func(project string, d tenant.CostDelta) {
		t.Helper()
		h, err := m.Acquire(t.Context(), project)
		if err != nil {
			t.Fatal(err)
		}
		h.RecordCost(d)
		h.Release()
	}
	add("alpha", tenant.CostDelta{BuildNs: 100, DetectNs: 200, SMTNs: 50, SMTSolved: 3, SMTEliminated: 7})
	add("alpha", tenant.CostDelta{BuildNs: 100, DetectNs: 200})
	add("beta", tenant.CostDelta{BuildNs: 10, DetectNs: 20, SMTNs: 5, SMTSolved: 1})

	rep := m.Costs()
	// default + alpha + beta ledgers exist; ranked alpha > beta > default.
	if len(rep.Tenants) != 3 {
		t.Fatalf("report has %d tenants, want 3: %+v", len(rep.Tenants), rep.Tenants)
	}
	if rep.Tenants[0].Project != "alpha" || rep.Tenants[1].Project != "beta" {
		t.Fatalf("ranking = %s, %s; want alpha, beta", rep.Tenants[0].Project, rep.Tenants[1].Project)
	}
	a := rep.Tenants[0]
	if a.Requests != 2 || a.BuildNs != 200 || a.DetectNs != 400 || a.CPUNs != 600 ||
		a.SMTNs != 50 || a.SMTSolved != 3 || a.SMTEliminated != 7 {
		t.Fatalf("alpha ledger = %+v", a)
	}
	if !a.Resident {
		t.Error("alpha should be resident")
	}
	if rep.TotalCPUNs != 630 {
		t.Fatalf("TotalCPUNs = %d, want 630", rep.TotalCPUNs)
	}
	var shares float64
	for _, ts := range rep.Tenants {
		shares += ts.Share
	}
	if shares < 0.999 || shares > 1.001 {
		t.Errorf("shares sum to %g, want 1", shares)
	}

	// Metrics mirror the ledger.
	if got := rec.Counter(obs.Labeled("tenant.cost_cpu_ns", "phase", "detect", "tenant", "alpha")).Value(); got != 400 {
		t.Errorf("cost_cpu_ns{detect,alpha} = %d, want 400", got)
	}
	if got := rec.Counter(obs.Labeled("tenant.cost_requests", "tenant", "beta")).Value(); got != 1 {
		t.Errorf("cost_requests{beta} = %d, want 1", got)
	}

	// The per-tenant snapshot rides /v1/debug/tenants rows too.
	snap := m.Snapshot()
	for _, info := range snap.Tenants {
		if info.Cost == nil {
			t.Fatalf("tenant %s row has no cost", info.Project)
		}
		if info.Project == "alpha" && info.Cost.CPUNs != 600 {
			t.Errorf("alpha row CPUNs = %d, want 600", info.Cost.CPUNs)
		}
	}
}

// TestCostSurvivesEviction: eviction drops the session but not the ledger,
// and readmission continues it.
func TestCostSurvivesEviction(t *testing.T) {
	m := tenant.NewManager(tenant.Config{MaxResident: 2, IdleTTL: -1})
	clock := newFakeClock(m)

	add := func(project string, d tenant.CostDelta) {
		t.Helper()
		h, err := m.Acquire(t.Context(), project)
		if err != nil {
			t.Fatal(err)
		}
		h.RecordCost(d)
		h.Release()
		clock.advance(time.Second)
	}
	add("alpha", tenant.CostDelta{BuildNs: 100, DetectNs: 100})
	add("beta", tenant.CostDelta{BuildNs: 1, DetectNs: 1}) // evicts alpha (cap 2: default+alpha)

	rep := m.Costs()
	var alpha *tenant.CostSnapshot
	for i := range rep.Tenants {
		if rep.Tenants[i].Project == "alpha" {
			alpha = &rep.Tenants[i]
		}
	}
	if alpha == nil {
		t.Fatal("evicted alpha missing from cost report")
	}
	if alpha.Resident {
		t.Error("alpha should be evicted")
	}
	if alpha.CPUNs != 200 {
		t.Errorf("evicted alpha CPUNs = %d, want 200", alpha.CPUNs)
	}

	add("alpha", tenant.CostDelta{BuildNs: 50, DetectNs: 50})
	rep = m.Costs()
	for _, ts := range rep.Tenants {
		if ts.Project == "alpha" && ts.CPUNs != 300 {
			t.Errorf("readmitted alpha CPUNs = %d, want 300 (ledger continued)", ts.CPUNs)
		}
	}
}

// TestCostStoreAttribution: with a persistent store, each tenant's writes
// land on its own ledger — cumulative bytes plus a resident-artifact figure
// that replaces, not accumulates, superseded keys.
func TestCostStoreAttribution(t *testing.T) {
	rec := obs.New()
	st := openDisk(t, t.TempDir())
	defer st.Close()
	m := tenant.NewManager(tenant.Config{Obs: rec, Build: core.BuildOptions{Store: st}})

	genA := workload.Generate(workload.Subjects[0], workload.GenOptions{Scale: 30})
	genB := workload.Generate(workload.Subjects[1], workload.GenOptions{Scale: 20})
	analyzeOnce(t, m, "alpha", genA)
	analyzeOnce(t, m, "beta", genB)

	rep := m.Costs()
	byProject := map[string]tenant.CostSnapshot{}
	for _, ts := range rep.Tenants {
		byProject[ts.Project] = ts
	}
	for _, p := range []string{"alpha", "beta"} {
		ts := byProject[p]
		if ts.StoreBytesWritten <= 0 {
			t.Errorf("%s StoreBytesWritten = %d, want > 0", p, ts.StoreBytesWritten)
		}
		if ts.ResidentArtifactBytes <= 0 {
			t.Errorf("%s ResidentArtifactBytes = %d, want > 0", p, ts.ResidentArtifactBytes)
		}
		if ts.ResidentArtifactBytes > ts.StoreBytesWritten {
			t.Errorf("%s resident %d > written %d", p, ts.ResidentArtifactBytes, ts.StoreBytesWritten)
		}
		if g := rec.Gauge(obs.Labeled("tenant.cost_artifact_bytes", "tenant", p)).Value(); g != ts.ResidentArtifactBytes {
			t.Errorf("%s gauge %d != ledger %d", p, g, ts.ResidentArtifactBytes)
		}
	}

	// Re-analyzing identical sources re-puts identical artifacts: the store
	// dedups them, but even if it re-accepted them the resident figure must
	// not grow (same keys, same sizes).
	before := byProject["alpha"].ResidentArtifactBytes
	analyzeOnce(t, m, "alpha", genA)
	rep = m.Costs()
	for _, ts := range rep.Tenants {
		if ts.Project == "alpha" && ts.ResidentArtifactBytes != before {
			t.Errorf("resident bytes grew on identical re-analysis: %d -> %d", before, ts.ResidentArtifactBytes)
		}
	}

	// The default tenant did nothing and must have a zero store ledger —
	// attribution, not pooling.
	if ts := byProject["default"]; ts.StoreBytesWritten != 0 {
		t.Errorf("default tenant charged %d store bytes for others' writes", ts.StoreBytesWritten)
	}
}

// TestCostProjectLabelNames: project IDs flow into label values unescaped
// only through Labeled's escaping; a dot-bearing project stays intact.
func TestCostProjectLabelNames(t *testing.T) {
	rec := obs.New()
	m := tenant.NewManager(tenant.Config{Obs: rec})
	h, err := m.Acquire(t.Context(), "svc.web-1")
	if err != nil {
		t.Fatal(err)
	}
	h.RecordCost(tenant.CostDelta{BuildNs: 1})
	h.Release()
	var sb strings.Builder
	if err := rec.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `pinpoint_tenant_cost_requests{tenant="svc.web-1"} 1`) {
		t.Errorf("exposition missing cost series for svc.web-1:\n%s", sb.String())
	}
}
