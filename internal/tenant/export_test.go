package tenant

import "time"

// SetClock replaces the manager's wall clock so tests drive LRU age and
// idle TTLs deterministically.
func (m *Manager) SetClock(now func() time.Time) {
	m.mu.Lock()
	m.now = now
	m.mu.Unlock()
}
