// Package tenant turns the single persistent analysis session into a
// multi-project session manager: a Manager maps project IDs to
// independently locked core.Sessions, so requests for different projects
// build and detect concurrently while same-project requests keep the
// serialized, sticky-cache-identical semantics of the single-session
// server.
//
// Residency is bounded: at most MaxResident sessions are held in memory,
// with least-recently-used idle eviction when a new project needs a slot
// and time-based eviction for projects idle past IdleTTL. Eviction
// persists the session's artifacts first (core.Session.Persist), and each
// project's records live under their own store namespace
// (store.Namespaced), so an evicted project re-admitted later warm-loads
// from disk instead of cold-building — residency control in the DFI style:
// the disk format holds the long tail, memory holds the working set.
//
// Lock hierarchy (deadlock freedom):
//
//	Manager.mu  >  Tenant.lock
//
// Manager.mu guards the resident map, the per-tenant active counts, and
// LRU bookkeeping; Tenant.lock serializes all use of one tenant's
// session. Code may take a Tenant.lock while holding Manager.mu (eviction
// does, for a tenant with no active holders, so the wait is at most a
// debug reader); code must NEVER take Manager.mu while holding any
// Tenant.lock. Analysis requests hold only Tenant.lock for the duration
// of build+detect, so the manager's map stays responsive while requests
// run.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
)

// DefaultMaxResident is the resident-session cap when Config.MaxResident
// is zero. Sessions are memory-heavy (full IR + SEG + caches), so the
// default is deliberately modest; deployments with deep memory raise it.
const DefaultMaxResident = 64

// DefaultIdleTTL is the idle-eviction age when Config.IdleTTL is zero.
const DefaultIdleTTL = 15 * time.Minute

// ErrResidentLimit is returned by Acquire when admitting a new project
// would exceed the resident cap and every resident tenant has requests in
// flight — there is nothing idle to evict.
var ErrResidentLimit = errors.New("tenant: resident session limit reached and no tenant is idle")

// Config parameterizes a Manager.
type Config struct {
	// MaxResident caps concurrently resident sessions. 0 means
	// DefaultMaxResident; negative means unlimited.
	MaxResident int
	// IdleTTL is the age past which an idle tenant is evicted (checked
	// lazily on Acquire and by SweepIdle). 0 means DefaultIdleTTL;
	// negative disables time-based eviction.
	IdleTTL time.Duration
	// MaxInFlight bounds per-tenant concurrently admitted requests,
	// layered under the server's global admission gate. 0 disables the
	// per-tenant gate (the global gate still bounds totals); otherwise
	// conc.Workers semantics (1 = one at a time, negative = GOMAXPROCS).
	MaxInFlight int
	// Build is the base build-option set for every tenant's session. Its
	// Store, when persistent, is re-namespaced per project with
	// store.Namespaced, so tenants share one physical store without key
	// collisions. The default project keeps the bare store — byte- and
	// disk-compatible with the single-session server.
	Build core.BuildOptions
	// Obs receives the tenant.* metrics. Nil is a no-op.
	Obs *obs.Recorder
}

// Manager owns the resident tenant set. Create with NewManager.
type Manager struct {
	cfg Config
	now func() time.Time // test clock

	mu        sync.Mutex
	tenants   map[string]*Tenant
	evicted   map[string]bool  // projects evicted at least once
	costs     map[string]*Cost // per-project ledgers; entries survive eviction
	evictions int64
}

// Tenant is one project's resident state: a session behind its own lock,
// a per-tenant admission gate, and use bookkeeping.
type Tenant struct {
	project string
	gate    *conc.Gate // nil = no per-tenant bound

	// active and lastUsed are guarded by Manager.mu: active counts
	// requests between Acquire and Release (including those still waiting
	// on the gate or the lock), and a tenant with active > 0 is never
	// evicted.
	active   int
	lastUsed time.Time

	// lock serializes all session access: core.Session.Update is not safe
	// for concurrent use, and serializing CheckAll too keeps the warm
	// sticky-cache behavior identical to the single-session server. It is
	// a capacity-1 Gate rather than a sync.Mutex so waiters honor their
	// request deadline (Enter returns ctx.Err() instead of blocking past
	// it).
	lock *conc.Gate
	sess *core.Session
	cost *Cost

	requests atomic.Int64
}

// NewManager builds a Manager and eagerly admits the default project, so
// the first request to a fresh server behaves exactly like every later
// one — the same contract server.New had with its single session.
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:     cfg,
		now:     time.Now,
		tenants: make(map[string]*Tenant),
		evicted: make(map[string]bool),
		costs:   make(map[string]*Cost),
	}
	m.mu.Lock()
	m.newTenantLocked(store.DefaultProject)
	m.mu.Unlock()
	return m
}

// Canonical maps the absent project spelling to the default tenant.
func Canonical(project string) string {
	if project == "" {
		return store.DefaultProject
	}
	return project
}

// ValidProject reports whether a project ID is acceptable: 1..64 bytes of
// [A-Za-z0-9._-]. The character set keeps IDs safe as store-namespace
// prefixes (no '/' separator collisions) and as Prometheus label values.
func ValidProject(project string) bool {
	if len(project) == 0 || len(project) > 64 {
		return false
	}
	for i := 0; i < len(project); i++ {
		c := project[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Handle is an acquired tenant: the holder owns the tenant lock until
// Release. Exactly one Release per successful Acquire.
type Handle struct {
	m *Manager
	t *Tenant
}

// Session is the held tenant's session. Valid only until Release.
func (h *Handle) Session() *core.Session { return h.t.sess }

// Project is the held tenant's canonical project ID.
func (h *Handle) Project() string { return h.t.project }

// Release unlocks the tenant and returns its gate slot.
func (h *Handle) Release() {
	t := h.t
	t.requests.Add(1)
	t.lock.Leave()
	if t.gate != nil {
		t.gate.Leave()
	}
	h.m.release(t)
}

// Acquire admits one request for project: it resolves (or creates,
// evicting the LRU idle tenant if the resident cap demands it) the
// tenant, waits for a per-tenant gate slot and then the tenant lock under
// ctx's deadline, and returns a Handle holding the lock. The elapsed time
// inside Acquire is exactly the request's "session wait".
func (m *Manager) Acquire(ctx context.Context, project string) (*Handle, error) {
	project = Canonical(project)
	if !ValidProject(project) {
		return nil, fmt.Errorf("tenant: invalid project ID %q", project)
	}

	m.mu.Lock()
	m.sweepIdleLocked()
	t := m.tenants[project]
	if t == nil {
		if err := m.makeRoomLocked(); err != nil {
			m.mu.Unlock()
			return nil, err
		}
		t = m.newTenantLocked(project)
	}
	t.active++
	t.lastUsed = m.now()
	m.mu.Unlock()

	if t.gate != nil {
		if err := t.gate.Enter(ctx); err != nil {
			m.release(t)
			return nil, err
		}
	}
	if err := t.lock.Enter(ctx); err != nil {
		// The deadline burned down waiting for the tenant lock; don't
		// start an analysis nobody is waiting for.
		if t.gate != nil {
			t.gate.Leave()
		}
		m.release(t)
		return nil, err
	}
	return &Handle{m: m, t: t}, nil
}

// release drops one active hold and refreshes the LRU clock.
func (m *Manager) release(t *Tenant) {
	m.mu.Lock()
	t.active--
	t.lastUsed = m.now()
	m.mu.Unlock()
}

// newTenantLocked creates and registers a tenant. Caller holds m.mu.
func (m *Manager) newTenantLocked(project string) *Tenant {
	cost := m.costLocked(project)
	opts := m.cfg.Build
	opts.Store = store.Namespaced(opts.Store, project)
	if opts.Store != nil {
		// Meter the tenant's writes at the store boundary, inside the
		// namespace rewrite, so logical namespaces ("artifact", ...) are
		// still visible to the meter.
		opts.Store = &costStore{Store: opts.Store, cost: cost}
	}
	t := &Tenant{
		project:  project,
		lock:     conc.NewGate(1),
		sess:     core.NewSession(opts),
		cost:     cost,
		lastUsed: m.now(),
	}
	if m.cfg.MaxInFlight != 0 {
		t.gate = conc.NewGate(m.cfg.MaxInFlight)
	}
	m.tenants[project] = t
	if rec := m.cfg.Obs; rec != nil {
		rec.Counter("tenant.created").Inc()
		if m.evicted[project] {
			// A re-admission: with a persistent store the session's first
			// Update warm-loads this project's namespaced artifacts.
			rec.Counter("tenant.readmissions").Inc()
		}
		rec.Gauge("tenant.resident").Set(int64(len(m.tenants)))
	}
	return t
}

// maxResident normalizes the resident cap.
func (m *Manager) maxResident() int {
	switch {
	case m.cfg.MaxResident == 0:
		return DefaultMaxResident
	case m.cfg.MaxResident < 0:
		return int(^uint(0) >> 1) // unlimited
	default:
		return m.cfg.MaxResident
	}
}

// idleTTL normalizes the idle-eviction age (0 = disabled).
func (m *Manager) idleTTL() time.Duration {
	switch {
	case m.cfg.IdleTTL == 0:
		return DefaultIdleTTL
	case m.cfg.IdleTTL < 0:
		return 0
	default:
		return m.cfg.IdleTTL
	}
}

// makeRoomLocked evicts LRU idle tenants until one slot is free. Caller
// holds m.mu.
func (m *Manager) makeRoomLocked() error {
	for len(m.tenants) >= m.maxResident() {
		victim := m.lruIdleLocked()
		if victim == nil {
			return ErrResidentLimit
		}
		m.evictLocked(victim)
	}
	return nil
}

// lruIdleLocked picks the least-recently-used tenant with no requests in
// flight (nil if every resident tenant is busy). Caller holds m.mu.
func (m *Manager) lruIdleLocked() *Tenant {
	var victim *Tenant
	for _, t := range m.tenants {
		if t.active > 0 {
			continue
		}
		if victim == nil || t.lastUsed.Before(victim.lastUsed) {
			victim = t
		}
	}
	return victim
}

// evictLocked removes a tenant with no active holders: persist first (so
// re-admission warm-loads instead of cold-building), then drop. Caller
// holds m.mu; the victim's active count is zero, so taking its lock waits
// at most for a debug reader.
func (m *Manager) evictLocked(t *Tenant) {
	t.lock.Enter(context.Background())
	t.sess.Persist()
	t.lock.Leave()
	delete(m.tenants, t.project)
	m.evicted[t.project] = true
	m.evictions++
	if rec := m.cfg.Obs; rec != nil {
		rec.Counter("tenant.evictions").Inc()
		rec.Counter(obs.Labeled("tenant.evicted", "tenant", t.project)).Inc()
		rec.Gauge("tenant.resident").Set(int64(len(m.tenants)))
	}
}

// sweepIdleLocked evicts every tenant idle past the TTL. Caller holds
// m.mu.
func (m *Manager) sweepIdleLocked() int {
	ttl := m.idleTTL()
	if ttl <= 0 {
		return 0
	}
	cutoff := m.now().Add(-ttl)
	var victims []*Tenant
	for _, t := range m.tenants {
		if t.active == 0 && t.lastUsed.Before(cutoff) {
			victims = append(victims, t)
		}
	}
	for _, t := range victims {
		m.evictLocked(t)
	}
	return len(victims)
}

// SweepIdle evicts every tenant idle past the TTL and reports how many it
// dropped. The server's janitor calls this on a timer; Acquire also
// sweeps lazily, so a manager without a janitor still converges.
func (m *Manager) SweepIdle() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepIdleLocked()
}

// Resident reports the current resident-session count.
func (m *Manager) Resident() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tenants)
}

// Evictions reports the cumulative eviction count.
func (m *Manager) Evictions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}

// View runs f with project's session under the tenant lock, without
// creating the tenant or counting as use. It reports whether the project
// was resident. Debug endpoints use it to read occupancy.
func (m *Manager) View(project string, f func(*core.Session)) bool {
	m.mu.Lock()
	t := m.tenants[Canonical(project)]
	if t == nil {
		m.mu.Unlock()
		return false
	}
	t.active++ // pin against eviction while reading
	m.mu.Unlock()
	t.lock.Enter(context.Background())
	f(t.sess)
	t.lock.Leave()
	// Unpin without refreshing lastUsed: a debug read is not use and must
	// not keep an idle tenant resident.
	m.mu.Lock()
	t.active--
	m.mu.Unlock()
	return true
}

// Info is one resident tenant's occupancy snapshot.
type Info struct {
	// Project is the canonical project ID.
	Project string `json:"project"`
	// Units and Artifacts are the session's parse- and function-artifact
	// store sizes; Functions is the current program's function count.
	Units     int `json:"units"`
	Artifacts int `json:"artifacts"`
	Functions int `json:"functions"`
	// Requests counts completed Acquire/Release cycles; InFlight is the
	// current active count (admitted or waiting).
	Requests int64 `json:"requests"`
	InFlight int   `json:"inFlight"`
	// LastUsedUnixNano is the wall clock of the last acquire or release;
	// IdleNs is the age relative to the snapshot time.
	LastUsedUnixNano int64 `json:"lastUsedUnixNano"`
	IdleNs           int64 `json:"idleNs"`
	// Cost is the tenant's cumulative resource ledger (Share is left 0
	// here; the ranked view with shares is GET /v1/debug/costs).
	Cost *CostSnapshot `json:"cost,omitempty"`
}

// Snapshot is the manager-wide view behind GET /v1/debug/tenants.
type Snapshot struct {
	// MaxResident is the normalized resident cap; IdleTTLNs the
	// normalized idle-eviction age (0 = disabled).
	MaxResident int   `json:"maxResident"`
	IdleTTLNs   int64 `json:"idleTtlNs"`
	// Resident is the live session count; Evictions the cumulative
	// evictions since the manager was created.
	Resident  int   `json:"resident"`
	Evictions int64 `json:"evictions"`
	// Tenants lists every resident tenant, sorted by project ID.
	Tenants []Info `json:"tenants"`
}

// Snapshot captures the resident set. Per-tenant occupancy is read under
// each tenant's lock in turn, so a tenant mid-analysis delays its own row
// but never blocks the manager map.
func (m *Manager) Snapshot() Snapshot {
	m.mu.Lock()
	now := m.now()
	snap := Snapshot{
		MaxResident: m.maxResident(),
		IdleTTLNs:   m.idleTTL().Nanoseconds(),
		Resident:    len(m.tenants),
		Evictions:   m.evictions,
	}
	pinned := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		t.active++ // pin against eviction until this row is read
		pinned = append(pinned, t)
	}
	m.mu.Unlock()

	for _, t := range pinned {
		t.lock.Enter(context.Background())
		cost := t.cost.snapshot(t.project)
		cost.Resident = true
		info := Info{
			Project:   t.project,
			Units:     t.sess.UnitCount(),
			Artifacts: t.sess.ArtifactCount(),
			Requests:  t.requests.Load(),
			Cost:      &cost,
		}
		if a := t.sess.Analysis(); a != nil {
			info.Functions = a.Sizes.Functions
		}
		t.lock.Leave()
		m.mu.Lock()
		t.active--
		info.InFlight = t.active
		info.LastUsedUnixNano = t.lastUsed.UnixNano()
		info.IdleNs = now.Sub(t.lastUsed).Nanoseconds()
		m.mu.Unlock()
		snap.Tenants = append(snap.Tenants, info)
	}
	sort.Slice(snap.Tenants, func(i, j int) bool {
		return snap.Tenants[i].Project < snap.Tenants[j].Project
	})
	return snap
}
