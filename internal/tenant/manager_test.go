package tenant_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// analyzeOnce runs one Update+CheckAll request against a project through
// the manager, returning the canonical report bytes.
func analyzeOnce(t *testing.T, m *tenant.Manager, project string, gen *workload.Generated) []byte {
	t.Helper()
	h, err := m.Acquire(context.Background(), project)
	if err != nil {
		t.Fatalf("Acquire(%q): %v", project, err)
	}
	defer h.Release()
	a, err := h.Session().Update(gen.Units)
	if err != nil {
		t.Fatalf("Update(%q): %v", project, err)
	}
	res := a.CheckAll(checkers.All(), detect.Options{Workers: 1})
	return reportsJSON(t, res.Reports)
}

func reportsJSON(t *testing.T, rs []detect.Report) []byte {
	t.Helper()
	js := make([]detect.JSONReport, len(rs))
	for i, r := range rs {
		js[i] = r.ToJSON()
	}
	b, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fakeClock drives a manager's LRU and idle clocks deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock(m *tenant.Manager) *fakeClock {
	c := &fakeClock{now: time.Unix(1700000000, 0)}
	m.SetClock(func() time.Time {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.now
	})
	return c
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func openDisk(t *testing.T, dir string) *store.DiskStore {
	t.Helper()
	st, err := store.Open(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAcquireStickySession: same-project requests land on one session —
// the second Update of identical sources is a full cache hit, the contract
// the single-session server's sticky cache gave every client.
func TestAcquireStickySession(t *testing.T) {
	gen := workload.Generate(workload.Subjects[0], workload.GenOptions{Scale: 30})
	m := tenant.NewManager(tenant.Config{})

	if got := analyzeOnce(t, m, "", gen); len(got) == 0 {
		t.Fatal("first request produced no report bytes")
	}
	h, err := m.Acquire(context.Background(), "default")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Session().Update(gen.Units); err != nil {
		t.Fatal(err)
	}
	stats := h.Session().ArtifactStats()
	h.Release()
	if stats.Misses != 0 || stats.Hits == 0 {
		t.Fatalf("repeat request on the same tenant rebuilt artifacts: %+v", stats)
	}
	if m.Resident() != 1 {
		t.Fatalf("Resident() = %d, want 1 (canonical default only)", m.Resident())
	}
}

// TestCrossTenantParallelism is the deterministic lock-shape proof: while
// project A's tenant lock is held, a request for project B completes, but
// a second request for A times out waiting — different projects proceed
// concurrently, same-project requests serialize.
func TestCrossTenantParallelism(t *testing.T) {
	m := tenant.NewManager(tenant.Config{})

	held, err := m.Acquire(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}

	// Different project: must not block on alpha's lock.
	ctxB, cancelB := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelB()
	hb, err := m.Acquire(ctxB, "beta")
	if err != nil {
		t.Fatalf("Acquire(beta) blocked behind alpha's lock: %v", err)
	}
	hb.Release()

	// Same project: must wait, and the deadline must surface as the error.
	ctxA, cancelA := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancelA()
	if _, err := m.Acquire(ctxA, "alpha"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second Acquire(alpha) = %v, want deadline exceeded", err)
	}

	held.Release()
	// The timed-out acquire must have unwound its hold: alpha is idle
	// again and evictable.
	h2, err := m.Acquire(context.Background(), "alpha")
	if err != nil {
		t.Fatalf("alpha unusable after a timed-out waiter: %v", err)
	}
	h2.Release()
}

// TestLRUEvictionOrder: with a resident cap, admitting a new project
// evicts the least-recently-used idle tenant, busy tenants are never
// victims, and a full house of busy tenants rejects with ErrResidentLimit.
func TestLRUEvictionOrder(t *testing.T) {
	rec := obs.New()
	m := tenant.NewManager(tenant.Config{MaxResident: 2, IdleTTL: -1, Obs: rec})
	clock := newFakeClock(m)

	// Touch default, then admit alpha later: default is the LRU.
	h, err := m.Acquire(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	clock.advance(time.Second)
	h, err = m.Acquire(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	clock.advance(time.Second)

	// Admitting beta must evict default (older), not alpha.
	hb, err := m.Acquire(context.Background(), "beta")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Evictions(); got != 1 {
		t.Fatalf("Evictions() = %d, want 1", got)
	}
	if !m.View("alpha", func(*core.Session) {}) {
		t.Fatal("alpha was evicted; want default (the LRU) evicted")
	}
	if m.View("default", func(*core.Session) {}) {
		t.Fatal("default still resident after LRU eviction")
	}

	// Both residents busy: a third project has nothing to evict.
	ha, err := m.Acquire(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(context.Background(), "gamma"); !errors.Is(err, tenant.ErrResidentLimit) {
		t.Fatalf("Acquire(gamma) with a busy full house = %v, want ErrResidentLimit", err)
	}
	ha.Release()
	hb.Release()

	// Re-admitting default counts as a readmission.
	h, err = m.Acquire(context.Background(), "default")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if got := rec.Counter("tenant.readmissions").Value(); got != 1 {
		t.Fatalf("tenant.readmissions = %d, want 1", got)
	}
	if got := rec.Gauge("tenant.resident").Value(); got != 2 {
		t.Fatalf("tenant.resident gauge = %d, want 2", got)
	}
}

// TestIdleSweep: tenants idle past the TTL are evicted by SweepIdle and
// lazily by Acquire; active tenants survive the sweep.
func TestIdleSweep(t *testing.T) {
	m := tenant.NewManager(tenant.Config{MaxResident: -1, IdleTTL: time.Minute})
	clock := newFakeClock(m)

	// Touch default too: its creation stamp predates the fake clock.
	for _, p := range []string{"", "a", "b"} {
		h, err := m.Acquire(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	held, err := m.Acquire(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Minute)

	if n := m.SweepIdle(); n != 3 { // default, a, b — not the held c
		t.Fatalf("SweepIdle() = %d, want 3", n)
	}
	if m.Resident() != 1 {
		t.Fatalf("Resident() = %d after sweep, want 1 (the held tenant)", m.Resident())
	}
	held.Release()

	// Release refreshed c's clock; a later lazy sweep inside Acquire
	// evicts it once it ages out.
	clock.advance(2 * time.Minute)
	h, err := m.Acquire(context.Background(), "d")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if m.View("c", func(*core.Session) {}) {
		t.Fatal("idle tenant c survived the lazy sweep in Acquire")
	}
}

// TestEvictReadmitEquivalence is the correctness half of eviction: an
// evicted-then-readmitted tenant's reports are byte-identical to an
// always-resident tenant's, both warm (persistent store, artifacts
// reload) and cold (no store, full rebuild).
func TestEvictReadmitEquivalence(t *testing.T) {
	gen := workload.Generate(workload.Subjects[2], workload.GenOptions{Scale: 80, Taint: true})

	for _, mode := range []string{"warm", "cold"} {
		t.Run(mode, func(t *testing.T) {
			var st store.Store
			if mode == "warm" {
				disk := openDisk(t, t.TempDir())
				defer disk.Close()
				st = disk
			}

			// Always-resident baseline: no cap, two requests (the second is
			// the warm in-memory path every sticky client sees).
			resident := tenant.NewManager(tenant.Config{MaxResident: -1, IdleTTL: -1,
				Build: core.BuildOptions{Store: st}})
			analyzeOnce(t, resident, "proj", gen)
			want := analyzeOnce(t, resident, "proj", gen)

			// Evicting manager: cap 1, so admitting "other" evicts "proj"
			// (persisting it first), and re-requesting "proj" readmits it.
			var est store.Store
			if mode == "warm" {
				disk := openDisk(t, t.TempDir())
				defer disk.Close()
				est = disk
			}
			evicting := tenant.NewManager(tenant.Config{MaxResident: 1, IdleTTL: -1,
				Build: core.BuildOptions{Store: est}})
			analyzeOnce(t, evicting, "proj", gen)
			h, err := evicting.Acquire(context.Background(), "other")
			if err != nil {
				t.Fatal(err)
			}
			h.Release()
			if evicting.Evictions() == 0 {
				t.Fatal("admitting a second project under cap 1 evicted nothing")
			}
			if evicting.View("proj", func(*core.Session) {}) {
				t.Fatal("proj still resident after eviction")
			}

			h, err = evicting.Acquire(context.Background(), "proj")
			if err != nil {
				t.Fatal(err)
			}
			a, err := h.Session().Update(gen.Units)
			if err != nil {
				t.Fatal(err)
			}
			stats := h.Session().ArtifactStats()
			got := reportsJSON(t, a.CheckAll(checkers.All(), detect.Options{Workers: 1}).Reports)
			h.Release()

			if !bytes.Equal(got, want) {
				t.Fatalf("readmitted reports differ from always-resident\ngot:  %s\nwant: %s", got, want)
			}
			if mode == "warm" {
				if stats.Misses != 0 || stats.StoreHits == 0 || stats.StoreHits != stats.Hits {
					t.Fatalf("warm readmission rebuilt artifacts instead of loading: %+v", stats)
				}
			} else {
				if stats.Misses == 0 {
					t.Fatalf("cold readmission reported cache hits with no store: %+v", stats)
				}
			}
		})
	}
}

// TestPerTenantGate: MaxInFlight=1 serializes admissions per tenant even
// before the tenant lock, and a blocked gate waiter honors its deadline.
func TestPerTenantGate(t *testing.T) {
	m := tenant.NewManager(tenant.Config{MaxInFlight: 1})
	h, err := m.Acquire(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := m.Acquire(ctx, "p"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("gate waiter = %v, want deadline exceeded", err)
	}
	h.Release()
	h2, err := m.Acquire(context.Background(), "p")
	if err != nil {
		t.Fatalf("gate slot not returned after timeout unwind: %v", err)
	}
	h2.Release()
}

// TestInvalidProject rejects IDs that would break store prefixes or
// metric labels.
func TestInvalidProject(t *testing.T) {
	m := tenant.NewManager(tenant.Config{})
	for _, bad := range []string{"a/b", "a b", "p\n", string(make([]byte, 65)), "é"} {
		if _, err := m.Acquire(context.Background(), bad); err == nil {
			t.Errorf("Acquire(%q) admitted an invalid project ID", bad)
		}
	}
}

// TestSnapshotShape: the debug snapshot lists residents sorted by project
// with request counts and occupancy.
func TestSnapshotShape(t *testing.T) {
	gen := workload.Generate(workload.Subjects[0], workload.GenOptions{Scale: 20})
	m := tenant.NewManager(tenant.Config{MaxResident: 8, IdleTTL: -1})
	analyzeOnce(t, m, "zeta", gen)
	analyzeOnce(t, m, "alpha", gen)
	analyzeOnce(t, m, "alpha", gen)

	snap := m.Snapshot()
	if snap.Resident != 3 || len(snap.Tenants) != 3 {
		t.Fatalf("snapshot residents = %d/%d rows, want 3", snap.Resident, len(snap.Tenants))
	}
	if snap.MaxResident != 8 {
		t.Fatalf("MaxResident = %d, want 8", snap.MaxResident)
	}
	order := []string{"alpha", "default", "zeta"}
	for i, info := range snap.Tenants {
		if info.Project != order[i] {
			t.Fatalf("row %d = %q, want %q (sorted)", i, info.Project, order[i])
		}
	}
	alpha := snap.Tenants[0]
	if alpha.Requests != 2 || alpha.Units == 0 || alpha.Artifacts == 0 || alpha.Functions == 0 {
		t.Fatalf("alpha row %+v: want 2 requests and non-zero occupancy", alpha)
	}
	if alpha.InFlight != 0 {
		t.Fatalf("alpha InFlight = %d with no request running", alpha.InFlight)
	}
	zeta := snap.Tenants[2]
	if zeta.LastUsedUnixNano == 0 || zeta.IdleNs < 0 {
		t.Fatalf("zeta occupancy clock %+v", zeta)
	}
}

// TestEvictUnderLoadRace hammers more projects than the resident cap from
// GOMAXPROCS workers while a spectator loops Snapshot/SweepIdle/View, so
// admission, eviction, persistence, and re-admission all interleave. Run
// with -race this is the eviction data-race proof; in any mode every
// project's final reports must match its isolated baseline.
func TestEvictUnderLoadRace(t *testing.T) {
	const projects = 5
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	iters := 4
	if testing.Short() {
		iters = 2
	}

	gens := make([]*workload.Generated, projects)
	want := make([][]byte, projects)
	for i := range gens {
		gens[i] = workload.Generate(workload.Subjects[i%len(workload.Subjects)],
			workload.GenOptions{Scale: 20 + 5*i, Taint: i%2 == 0})
		base := tenant.NewManager(tenant.Config{})
		want[i] = analyzeOnce(t, base, "", gens[i])
	}

	disk := openDisk(t, t.TempDir())
	defer disk.Close()
	m := tenant.NewManager(tenant.Config{
		MaxResident: 3,
		IdleTTL:     -1,
		Build:       core.BuildOptions{Store: disk},
		Obs:         obs.New(),
	})

	stop := make(chan struct{})
	var spectator sync.WaitGroup
	spectator.Add(1)
	go func() {
		defer spectator.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				m.Snapshot()
			case 1:
				m.SweepIdle()
			default:
				m.View(fmt.Sprintf("p%d", i%projects), func(s *core.Session) {
					s.ArtifactCount()
				})
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				p := (w + it) % projects
				name := fmt.Sprintf("p%d", p)
				h, err := m.Acquire(context.Background(), name)
				if errors.Is(err, tenant.ErrResidentLimit) {
					// All residents busy — legal under cap 3 with more
					// workers; retry counts as load, not failure.
					it--
					runtime.Gosched()
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d Acquire(%s): %w", w, name, err)
					return
				}
				a, err := h.Session().Update(gens[p].Units)
				if err != nil {
					h.Release()
					errs <- fmt.Errorf("worker %d Update(%s): %w", w, name, err)
					return
				}
				got := reportsJSON(t, a.CheckAll(checkers.All(), detect.Options{Workers: 1}).Reports)
				h.Release()
				if !bytes.Equal(got, want[p]) {
					errs <- fmt.Errorf("worker %d: %s reports diverged under eviction load", w, name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	spectator.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if m.Evictions() == 0 {
		t.Error("load over cap 3 with 5 projects evicted nothing — test lost its teeth")
	}
	if m.Resident() > 3 {
		t.Errorf("Resident() = %d exceeds cap 3", m.Resident())
	}
}
