package tenant

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/store"
)

// Per-tenant cost accounting. Every analysis request already carries an
// exact timing partition (the server's TimingJSON); the cost meter folds
// those partitions into per-project accumulators, so "who is spending the
// CPU" is answerable without log mining. A project's Cost outlives its
// resident session: eviction drops the memory-heavy session but keeps the
// meter, so readmission continues the same ledger.
//
// Store consumption is metered at the store boundary: each tenant's
// namespaced store view is wrapped in a counting layer that attributes
// every Put's bytes to the writing project — cumulative bytes written for
// all namespaces, plus a live resident-artifact figure that tracks the
// last-written size of each artifact key (superseding a key replaces its
// contribution rather than double-counting).

// Cost is one project's cumulative resource ledger. All methods are safe
// for concurrent use; a nil *Cost is a no-op everywhere.
type Cost struct {
	requests      atomic.Int64
	buildNs       atomic.Int64
	detectNs      atomic.Int64
	smtNs         atomic.Int64
	smtSolved     atomic.Int64
	smtEliminated atomic.Int64
	storeBytes    atomic.Int64
	artifactBytes atomic.Int64

	// artSizes maps artifact key → last-written size, so re-putting a key
	// adjusts the resident figure by the delta instead of accumulating.
	artMu    sync.Mutex
	artSizes map[string]int64

	// Hoisted labeled metric handles (nil with no recorder; nil-safe).
	mRequests      *obs.Counter
	mBuildNs       *obs.Counter
	mDetectNs      *obs.Counter
	mSMTNs         *obs.Counter
	mSMTSolved     *obs.Counter
	mSMTEliminated *obs.Counter
	mStoreBytes    *obs.Counter
	mArtifactBytes *obs.Gauge
}

func newCost(project string, rec *obs.Recorder) *Cost {
	c := &Cost{artSizes: make(map[string]int64)}
	if rec != nil {
		c.mRequests = rec.Counter(obs.Labeled("tenant.cost_requests", "tenant", project))
		c.mBuildNs = rec.Counter(obs.Labeled("tenant.cost_cpu_ns", "phase", "build", "tenant", project))
		c.mDetectNs = rec.Counter(obs.Labeled("tenant.cost_cpu_ns", "phase", "detect", "tenant", project))
		c.mSMTNs = rec.Counter(obs.Labeled("tenant.cost_cpu_ns", "phase", "smt", "tenant", project))
		c.mSMTSolved = rec.Counter(obs.Labeled("tenant.cost_smt_solved", "tenant", project))
		c.mSMTEliminated = rec.Counter(obs.Labeled("tenant.cost_smt_eliminated", "tenant", project))
		c.mStoreBytes = rec.Counter(obs.Labeled("tenant.cost_store_bytes", "tenant", project))
		c.mArtifactBytes = rec.Gauge(obs.Labeled("tenant.cost_artifact_bytes", "tenant", project))
	}
	return c
}

// CostDelta is one completed request's contribution, taken verbatim from
// the request's timing partition and SMT stats.
type CostDelta struct {
	// BuildNs and DetectNs are the request's build and detect phase times;
	// SMTNs is the solver time inside detect (SMTNs ⊆ DetectNs, so total
	// attributed CPU is BuildNs + DetectNs, not the three summed).
	BuildNs  int64
	DetectNs int64
	SMTNs    int64
	// SMTSolved counts queries the solver actually ran; SMTEliminated
	// counts queries answered without solving (verdict-cache hits plus
	// prefilter unsat decisions).
	SMTSolved     int64
	SMTEliminated int64
}

// Add folds one request into the ledger.
func (c *Cost) Add(d CostDelta) {
	if c == nil {
		return
	}
	c.requests.Add(1)
	c.buildNs.Add(d.BuildNs)
	c.detectNs.Add(d.DetectNs)
	c.smtNs.Add(d.SMTNs)
	c.smtSolved.Add(d.SMTSolved)
	c.smtEliminated.Add(d.SMTEliminated)
	c.mRequests.Inc()
	c.mBuildNs.Add(d.BuildNs)
	c.mDetectNs.Add(d.DetectNs)
	c.mSMTNs.Add(d.SMTNs)
	c.mSMTSolved.Add(d.SMTSolved)
	c.mSMTEliminated.Add(d.SMTEliminated)
}

// addPut attributes one store write.
func (c *Cost) addPut(ns, key string, n int64) {
	if c == nil {
		return
	}
	c.storeBytes.Add(n)
	c.mStoreBytes.Add(n)
	if ns != store.NSArtifact {
		return
	}
	c.artMu.Lock()
	delta := n - c.artSizes[key]
	c.artSizes[key] = n
	c.artMu.Unlock()
	if delta != 0 {
		c.mArtifactBytes.Set(c.artifactBytes.Add(delta))
	}
}

// CostSnapshot is one project's ledger, as /v1/debug/costs reports it.
type CostSnapshot struct {
	Project  string `json:"project"`
	Requests int64  `json:"requests"`
	// CPUNs is the total attributed analysis CPU: BuildNs + DetectNs
	// (SMTNs is inside DetectNs and broken out for visibility).
	CPUNs    int64 `json:"cpuNs"`
	BuildNs  int64 `json:"buildNs"`
	DetectNs int64 `json:"detectNs"`
	SMTNs    int64 `json:"smtNs"`
	// SMTSolved vs SMTEliminated splits query outcomes into paid-for solver
	// runs and queries the caches/prefilter answered for free.
	SMTSolved     int64 `json:"smtSolved"`
	SMTEliminated int64 `json:"smtEliminated"`
	// StoreBytesWritten is cumulative bytes accepted by the store for this
	// project (all namespaces); ResidentArtifactBytes is the live size of
	// its artifact records (last write per key). Both are zero when the
	// server runs without a persistent store — nothing is encoded then.
	StoreBytesWritten     int64 `json:"storeBytesWritten"`
	ResidentArtifactBytes int64 `json:"residentArtifactBytes"`
	// Resident reports whether the project's session is currently in
	// memory; Share is this project's fraction of the report's TotalCPUNs.
	Resident bool    `json:"resident"`
	Share    float64 `json:"share"`
}

func (c *Cost) snapshot(project string) CostSnapshot {
	if c == nil {
		return CostSnapshot{Project: project}
	}
	b, d := c.buildNs.Load(), c.detectNs.Load()
	return CostSnapshot{
		Project:               project,
		Requests:              c.requests.Load(),
		CPUNs:                 b + d,
		BuildNs:               b,
		DetectNs:              d,
		SMTNs:                 c.smtNs.Load(),
		SMTSolved:             c.smtSolved.Load(),
		SMTEliminated:         c.smtEliminated.Load(),
		StoreBytesWritten:     c.storeBytes.Load(),
		ResidentArtifactBytes: c.artifactBytes.Load(),
	}
}

// CostReport is the ranked per-tenant cost view behind GET /v1/debug/costs.
type CostReport struct {
	// TotalCPUNs sums every tenant's CPUNs; each row's Share is its
	// fraction of this (0 when the total is 0).
	TotalCPUNs int64 `json:"totalCpuNs"`
	// Tenants is ranked by CPUNs descending (project ID ascending on ties),
	// evicted projects included — the ledger outlives the session.
	Tenants []CostSnapshot `json:"tenants"`
}

// cost returns project's ledger, creating it on first use. Caller holds
// m.mu.
func (m *Manager) costLocked(project string) *Cost {
	c := m.costs[project]
	if c == nil {
		c = newCost(project, m.cfg.Obs)
		m.costs[project] = c
	}
	return c
}

// Cost returns project's ledger for out-of-band accounting (the server
// records request costs through the Handle instead).
func (m *Manager) Cost(project string) *Cost {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.costLocked(Canonical(project))
}

// Costs reports every project's ledger — resident or evicted — ranked by
// attributed CPU.
func (m *Manager) Costs() CostReport {
	m.mu.Lock()
	rep := CostReport{}
	for project, c := range m.costs {
		snap := c.snapshot(project)
		_, snap.Resident = m.tenants[project]
		rep.TotalCPUNs += snap.CPUNs
		rep.Tenants = append(rep.Tenants, snap)
	}
	m.mu.Unlock()
	if rep.TotalCPUNs > 0 {
		for i := range rep.Tenants {
			rep.Tenants[i].Share = float64(rep.Tenants[i].CPUNs) / float64(rep.TotalCPUNs)
		}
	}
	sort.Slice(rep.Tenants, func(i, j int) bool {
		a, b := &rep.Tenants[i], &rep.Tenants[j]
		if a.CPUNs != b.CPUNs {
			return a.CPUNs > b.CPUNs
		}
		return a.Project < b.Project
	})
	return rep
}

// RecordCost attributes one completed request's resources to the held
// tenant. The server calls this with the response's timing partition.
func (h *Handle) RecordCost(d CostDelta) { h.t.cost.Add(d) }

// costStore wraps a tenant's (already namespaced) store view, attributing
// every write to the tenant's ledger. Reads pass through untouched — cost
// accounting is write-side only.
type costStore struct {
	store.Store
	cost *Cost
}

func (s *costStore) Put(ns, key string, val []byte) error {
	err := s.Store.Put(ns, key, val)
	if err == nil {
		s.cost.addPut(ns, key, int64(len(val)))
	}
	return err
}
