package pta

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/ssa"
)

func buildSSAModule(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	for _, f := range m.Funcs {
		if _, err := ssa.Transform(f); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func findVal(f *ir.Func, pred func(*ir.Instr) *ir.Value) *ir.Value {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if v := pred(in); v != nil {
				return v
			}
		}
	}
	return nil
}

func TestAndersenCopyAndPhi(t *testing.T) {
	m := buildSSAModule(t, `
void f(bool c) {
	int *a = malloc();
	int *b = malloc();
	int *p = a;
	if (c) { p = b; }
	int v = *p;
}`)
	ap := Andersen(m)
	f := m.ByName["f"]
	var phi *ir.Value
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi && in.Dst.Type.IsPointer() {
				phi = in.Dst
			}
		}
	}
	if phi == nil {
		t.Fatal("no pointer phi")
	}
	// Flow-insensitively, the phi points to both mallocs.
	if got := len(ap.PointsTo(phi)); got != 2 {
		t.Fatalf("pts(phi) has %d locs, want 2", got)
	}
}

func TestAndersenLoadStore(t *testing.T) {
	m := buildSSAModule(t, `
void f() {
	int **slot = malloc();
	int *a = malloc();
	*slot = a;
	int *b = *slot;
	int v = *b;
}`)
	ap := Andersen(m)
	f := m.ByName["f"]
	aVal := findVal(f, func(in *ir.Instr) *ir.Value {
		if in.Op == ir.OpCopy && in.Dst.Type.String() == "int*" && in.Args[0].Def != nil && in.Args[0].Def.Op == ir.OpMalloc {
			return in.Dst
		}
		return nil
	})
	bVal := findVal(f, func(in *ir.Instr) *ir.Value {
		if in.Op == ir.OpLoad && in.Dst.Type.IsPointer() {
			return in.Dst
		}
		return nil
	})
	if aVal == nil || bVal == nil {
		t.Fatalf("values not found: a=%v b=%v", aVal, bVal)
	}
	if !ap.Alias(aVal, bVal) {
		t.Fatal("store/load flow lost")
	}
	// Contents of the slot location include the stored pointer.
	foundContents := false
	for _, vals := range ap.Contents {
		for v := range vals {
			if v == aVal || (v.Def != nil && v.Def.Op == ir.OpCopy) {
				foundContents = true
			}
		}
	}
	if !foundContents {
		t.Fatal("contents sets empty")
	}
}

func TestAndersenGlobalsAndParams(t *testing.T) {
	m := buildSSAModule(t, `
int *g;
void set(int *p) { g = p; }
void f() {
	int *a = malloc();
	set(a);
	int *b = g;
	int v = *b;
}`)
	ap := Andersen(m)
	f := m.ByName["f"]
	aVal := findVal(f, func(in *ir.Instr) *ir.Value {
		if in.Op == ir.OpCopy && in.Dst.Type.IsPointer() && in.Args[0].Def != nil && in.Args[0].Def.Op == ir.OpMalloc {
			return in.Dst
		}
		return nil
	})
	bVal := findVal(f, func(in *ir.Instr) *ir.Value {
		if in.Op == ir.OpLoad && in.Dst.Type.IsPointer() {
			return in.Dst
		}
		return nil
	})
	if aVal == nil || bVal == nil {
		t.Fatal("values not found")
	}
	// Through the global cell, context-insensitively.
	if !ap.Alias(aVal, bVal) {
		t.Fatal("flow through global lost")
	}
}

func TestAndersenBudgetTimeout(t *testing.T) {
	m := buildSSAModule(t, `
void f() {
	int *a = malloc();
	int *b = a;
	int *c = b;
	int *d = c;
	int v = *d;
}`)
	ap := AndersenWithBudget(m, 1)
	if !ap.TimedOut {
		t.Fatal("budget not enforced")
	}
	full := Andersen(m)
	if full.TimedOut {
		t.Fatal("unlimited run timed out")
	}
	if full.Iterations <= 1 {
		t.Fatalf("iterations = %d", full.Iterations)
	}
}

func TestAndersenExternalCall(t *testing.T) {
	m := buildSSAModule(t, `
void f() {
	int *p = mystery();
	int v = *p;
}`)
	ap := Andersen(m)
	f := m.ByName["f"]
	recv := findVal(f, func(in *ir.Instr) *ir.Value {
		if in.Op == ir.OpCall && in.Dsts[0] != nil {
			return in.Dsts[0]
		}
		return nil
	})
	pts := ap.PointsTo(recv)
	if len(pts) != 1 {
		t.Fatalf("external receiver pts = %v", pts)
	}
	for l := range pts {
		if l.Kind != LExt {
			t.Fatalf("kind = %v, want LExt", l.Kind)
		}
	}
}

func TestAndersenAliasNoFalseNegativeOnDisjoint(t *testing.T) {
	m := buildSSAModule(t, `
void f() {
	int *a = malloc();
	int *b = malloc();
	int x = *a;
	int y = *b;
}`)
	ap := Andersen(m)
	f := m.ByName["f"]
	var mallocs []*ir.Value
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMalloc {
				mallocs = append(mallocs, in.Dst)
			}
		}
	}
	if len(mallocs) != 2 {
		t.Fatal("mallocs not found")
	}
	if ap.Alias(mallocs[0], mallocs[1]) {
		t.Fatal("disjoint allocations alias")
	}
}
