package pta

// Andersen-style global points-to analysis: whole-program, inclusion-based,
// flow- and context-insensitive. This is the substrate of the "layered"
// SVF baseline (paper §5.1): precise enough to build a full sparse
// value-flow graph, imprecise enough to fall into the "pointer trap" — its
// results conflate stores and loads across contexts and branches, blowing
// the value-flow graph up with spurious edges.
//
// The solver is a standard worklist over a constraint graph:
//
//	address-of   p ⊇ {loc}
//	copy         p ⊇ q
//	load         p ⊇ *q   (for each loc in pts(q): edge contents(loc) → p)
//	store        *p ⊇ q   (for each loc in pts(p): edge q → contents(loc))
//
// Call and return bindings are copy edges (direct calls only).

import (
	"repro/internal/ir"
)

// AndersenResult holds the global points-to relation.
type AndersenResult struct {
	// Pts maps SSA pointer values to abstract locations.
	Pts map[*ir.Value]map[Loc]bool
	// Contents maps each location to the values stored in it anywhere in
	// the program.
	Contents map[Loc]map[*ir.Value]bool
	// Iterations counts worklist rounds (a cost indicator).
	Iterations int
	// TimedOut reports that the work budget was exhausted before the
	// fixpoint; the relation is a sound-but-partial under-approximation
	// of the full result's cost (the harness treats it as a timeout).
	TimedOut bool
}

// PointsTo returns the points-to set of v (nil-safe).
func (r *AndersenResult) PointsTo(v *ir.Value) map[Loc]bool { return r.Pts[v] }

// Alias reports whether two pointers may alias (overlapping points-to
// sets).
func (r *AndersenResult) Alias(a, b *ir.Value) bool {
	pa, pb := r.Pts[a], r.Pts[b]
	if len(pa) > len(pb) {
		pa, pb = pb, pa
	}
	for l := range pa {
		if pb[l] {
			return true
		}
	}
	return false
}

// andersenSolver is the constraint-graph state.
type andersenSolver struct {
	pts      map[*ir.Value]map[Loc]bool
	succs    map[*ir.Value]map[*ir.Value]bool // copy edges
	loadsOf  map[*ir.Value][]*ir.Value        // q -> loads p = *q
	storesOf map[*ir.Value][]*ir.Value        // p -> stores *p = q
	contents map[Loc]*ir.Value                // contents proxy node per loc
	contentV map[*ir.Value]Loc
	work     []*ir.Value
	inWork   map[*ir.Value]bool
	rounds   int
}

// Andersen runs the global analysis over a module (typically one built
// without the connector transformation — the baseline pipeline) with no
// work budget.
func Andersen(m *ir.Module) *AndersenResult {
	return AndersenWithBudget(m, 0)
}

// AndersenWithBudget bounds the solver's propagation work (counted in
// worklist pops plus points-to set insertions); 0 means unlimited. An
// exhausted budget marks the result TimedOut.
func AndersenWithBudget(m *ir.Module, budget int) *AndersenResult {
	s := &andersenSolver{
		pts:      make(map[*ir.Value]map[Loc]bool),
		succs:    make(map[*ir.Value]map[*ir.Value]bool),
		loadsOf:  make(map[*ir.Value][]*ir.Value),
		storesOf: make(map[*ir.Value][]*ir.Value),
		contents: make(map[Loc]*ir.Value),
		contentV: make(map[*ir.Value]Loc),
		inWork:   make(map[*ir.Value]bool),
	}

	proxyID := -1
	proxy := func(l Loc) *ir.Value {
		if v, ok := s.contents[l]; ok {
			return v
		}
		v := &ir.Value{ID: proxyID, Kind: ir.VVar, Name: "*" + l.String()}
		proxyID--
		s.contents[l] = v
		s.contentV[v] = l
		return v
	}

	addPts := func(v *ir.Value, l Loc) {
		set := s.pts[v]
		if set == nil {
			set = make(map[Loc]bool)
			s.pts[v] = set
		}
		if !set[l] {
			set[l] = true
			s.push(v)
		}
	}
	addEdge := func(from, to *ir.Value) {
		es := s.succs[from]
		if es == nil {
			es = make(map[*ir.Value]bool)
			s.succs[from] = es
		}
		if !es[to] {
			es[to] = true
			if len(s.pts[from]) > 0 {
				s.push(from)
			}
		}
	}

	// Collect base constraints.
	for _, f := range m.Funcs {
		for _, p := range f.Params {
			if p.Type.IsPointer() {
				addPts(p, Loc{Kind: LExt, Val: p})
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpAlloc:
					addPts(in.Dst, Loc{Kind: LAlloc, Instr: in})
				case ir.OpMalloc:
					addPts(in.Dst, Loc{Kind: LMalloc, Instr: in})
				case ir.OpGlobalAddr:
					addPts(in.Dst, Loc{Kind: LGlobal, Name: in.Sub})
				case ir.OpCopy, ir.OpUn, ir.OpFieldAddr:
					// Field addresses collapse to the base object in the
					// field-insensitive baseline.
					addEdge(in.Args[0], in.Dst)
				case ir.OpBin:
					addEdge(in.Args[0], in.Dst)
					addEdge(in.Args[1], in.Dst)
				case ir.OpPhi:
					for _, a := range in.Args {
						addEdge(a, in.Dst)
					}
				case ir.OpLoad:
					s.loadsOf[in.Args[0]] = append(s.loadsOf[in.Args[0]], in.Dst)
					s.push(in.Args[0])
				case ir.OpStore:
					s.storesOf[in.Args[0]] = append(s.storesOf[in.Args[0]], in.Args[1])
					s.push(in.Args[0])
				case ir.OpCall:
					callee, known := m.ByName[in.Callee]
					if known {
						for i, a := range in.Args {
							if i < len(callee.Params) {
								addEdge(a, callee.Params[i])
							}
						}
						ret := callee.Exit.Term()
						for ri, rv := range ret.Args {
							var dstIdx int
							auxStart := len(ret.Args) - len(callee.AuxOut)
							if ri >= auxStart {
								dstIdx = 1 + (ri - auxStart)
							}
							if dstIdx < len(in.Dsts) && in.Dsts[dstIdx] != nil {
								addEdge(rv, in.Dsts[dstIdx])
							}
						}
					} else {
						for _, d := range in.Dsts {
							if d != nil && d.Type.IsPointer() {
								addPts(d, Loc{Kind: LExt, Val: d})
							}
						}
					}
				}
			}
		}
	}

	// Worklist solving with dynamic load/store edges.
	timedOut := false
	for len(s.work) > 0 {
		if budget > 0 && s.rounds > budget {
			timedOut = true
			break
		}
		v := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		s.inWork[v] = false
		s.rounds++
		// Propagate along copy edges.
		for to := range s.succs[v] {
			if s.union(to, v) {
				s.push(to)
			}
		}
		// Complex constraints keyed by v as a pointer operand.
		for l := range s.pts[v] {
			if l.Kind == LNull {
				continue
			}
			pv := proxy(l)
			for _, dst := range s.loadsOf[v] {
				addEdge(pv, dst)
			}
			for _, src := range s.storesOf[v] {
				addEdge(src, pv)
			}
		}
	}

	res := &AndersenResult{
		Pts:        s.pts,
		Contents:   make(map[Loc]map[*ir.Value]bool),
		Iterations: s.rounds,
		TimedOut:   timedOut,
	}
	// Derive contents sets from the proxy nodes' incoming copy edges.
	for from, tos := range s.succs {
		for to := range tos {
			if l, ok := s.contentV[to]; ok {
				set := res.Contents[l]
				if set == nil {
					set = make(map[*ir.Value]bool)
					res.Contents[l] = set
				}
				set[from] = true
			}
		}
	}
	return res
}

func (s *andersenSolver) push(v *ir.Value) {
	if !s.inWork[v] {
		s.inWork[v] = true
		s.work = append(s.work, v)
	}
}

// union adds pts(src) into pts(dst); it reports whether dst grew.
func (s *andersenSolver) union(dst, src *ir.Value) bool {
	sp := s.pts[src]
	if len(sp) == 0 {
		return false
	}
	dp := s.pts[dst]
	if dp == nil {
		dp = make(map[Loc]bool, len(sp))
		s.pts[dst] = dp
	}
	grew := false
	for l := range sp {
		if !dp[l] {
			dp[l] = true
			grew = true
			s.rounds++ // insertions dominate cost; they count toward the budget
		}
	}
	return grew
}
