package pta

import (
	"testing"

	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/modref"
	"repro/internal/ssa"
	"repro/internal/transform"
)

// buildAnalyzed runs the full local pipeline: parse, lower, SSA, modref,
// transform, pta.
func buildAnalyzed(t *testing.T, src string) (*ir.Module, map[string]*Result) {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	infos := make(map[string]*ssa.Info)
	for _, f := range m.Funcs {
		inf, err := ssa.Transform(f)
		if err != nil {
			t.Fatalf("ssa %s: %v", f.Name, err)
		}
		infos[f.Name] = inf
	}
	mr := modref.Analyze(m)
	if err := transform.Apply(m, mr); err != nil {
		t.Fatalf("transform: %v", err)
	}
	results := make(map[string]*Result)
	for _, f := range m.Funcs {
		r, err := Analyze(f, infos[f.Name], Options{})
		if err != nil {
			t.Fatalf("pta %s: %v", f.Name, err)
		}
		results[f.Name] = r
	}
	return m, results
}

func findInstr(f *ir.Func, op ir.Op, nth int) *ir.Instr {
	count := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				if count == nth {
					return in
				}
				count++
			}
		}
	}
	return nil
}

func TestMallocPointsTo(t *testing.T) {
	m, res := buildAnalyzed(t, `
void f() {
	int *p = malloc();
	*p = 3;
	int x = *p;
}`)
	f := m.ByName["f"]
	r := res["f"]
	ml := findInstr(f, ir.OpMalloc, 0)
	pts := r.PTS[ml.Dst]
	if len(pts) != 1 || pts[0].Loc.Kind != LMalloc || pts[0].Loc.Instr != ml {
		t.Fatalf("pts(malloc dst) = %v", pts)
	}
	// The load sees the stored constant 3.
	ld := findInstr(f, ir.OpLoad, 0)
	srcs := r.LoadSources[ld]
	if len(srcs) != 1 || srcs[0].Val.Kind != ir.VConstInt || srcs[0].Val.IntVal != 3 {
		t.Fatalf("load sources = %v", srcs)
	}
	if !srcs[0].Cond.IsTrue() {
		t.Errorf("unconditional flow has cond %s", srcs[0].Cond)
	}
}

func TestStrongUpdateKillsOldContent(t *testing.T) {
	m, res := buildAnalyzed(t, `
void f() {
	int *p = malloc();
	*p = 1;
	*p = 2;
	int x = *p;
}`)
	f := m.ByName["f"]
	r := res["f"]
	ld := findInstr(f, ir.OpLoad, 0)
	srcs := r.LoadSources[ld]
	if len(srcs) != 1 || srcs[0].Val.IntVal != 2 {
		t.Fatalf("strong update failed, sources = %v", srcs)
	}
}

func TestConditionalStoreGuards(t *testing.T) {
	m, res := buildAnalyzed(t, `
void f(bool c) {
	int *p = malloc();
	*p = 1;
	if (c) { *p = 2; }
	int x = *p;
}`)
	f := m.ByName["f"]
	r := res["f"]
	ld := findInstr(f, ir.OpLoad, 0)
	srcs := r.LoadSources[ld]
	if len(srcs) != 2 {
		t.Fatalf("want 2 guarded sources, got %v", srcs)
	}
	// One source guarded by c, the other by !c (the strong update in the
	// then-arm kills 1 along that path; the else path keeps it).
	byVal := map[int64]*cond.Cond{}
	for _, s := range srcs {
		byVal[s.Val.IntVal] = s.Cond
	}
	c2 := byVal[2]
	c1 := byVal[1]
	if c2 == nil || c1 == nil {
		t.Fatalf("sources = %v", srcs)
	}
	if c2.IsTrue() || c1.IsTrue() {
		t.Errorf("conditional flows unguarded: 1:%s 2:%s", c1, c2)
	}
	// Guards must be complementary atoms.
	b := r.Info.Conds
	if b.Not(c2) != c1 {
		t.Errorf("guards not complementary: %s vs %s", c2, c1)
	}
}

func TestDiamondStoreBothArms(t *testing.T) {
	m, res := buildAnalyzed(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { *p = 1; } else { *p = 2; }
	int x = *p;
}`)
	f := m.ByName["f"]
	r := res["f"]
	ld := findInstr(f, ir.OpLoad, 0)
	srcs := r.LoadSources[ld]
	if len(srcs) != 2 {
		t.Fatalf("want 2 sources, got %v", srcs)
	}
	for _, s := range srcs {
		if s.Cond.IsTrue() || s.Cond.IsFalse() {
			t.Errorf("source %v has degenerate guard %s", s.Val, s.Cond)
		}
	}
}

func TestParamConnectorContents(t *testing.T) {
	// After the transformation, *p at entry holds the aux formal.
	m, res := buildAnalyzed(t, `
int deref(int *p) { return *p; }`)
	f := m.ByName["deref"]
	r := res["deref"]
	ld := findInstr(f, ir.OpLoad, 0)
	srcs := r.LoadSources[ld]
	if len(srcs) != 1 {
		t.Fatalf("sources = %v", srcs)
	}
	if !srcs[0].Val.Aux || srcs[0].Val.Kind != ir.VParam {
		t.Fatalf("load source is not the aux formal: %v", srcs[0].Val)
	}
}

func TestAddressTakenLocal(t *testing.T) {
	m, res := buildAnalyzed(t, `
int f() {
	int x = 1;
	int *p = &x;
	*p = 2;
	return x;
}`)
	f := m.ByName["f"]
	r := res["f"]
	// The final load of x (for the return) must see 2, not 1.
	var lastLoad *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				lastLoad = in
			}
		}
	}
	srcs := r.LoadSources[lastLoad]
	if len(srcs) != 1 || srcs[0].Val.IntVal != 2 {
		t.Fatalf("aliased store missed: %v", srcs)
	}
}

func TestNullPointsTo(t *testing.T) {
	m, res := buildAnalyzed(t, `
void f() {
	int *p = null;
	int x = *p;
}`)
	f := m.ByName["f"]
	r := res["f"]
	var copyIn *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCopy && in.Args[0].Kind == ir.VConstNull {
				copyIn = in
			}
		}
	}
	pts := r.PTS[copyIn.Dst]
	if len(pts) != 1 || pts[0].Loc.Kind != LNull {
		t.Fatalf("pts(null copy) = %v", pts)
	}
	// Loading through null yields no sources.
	ld := findInstr(f, ir.OpLoad, 0)
	if len(r.LoadSources[ld]) != 0 {
		t.Fatalf("null load has sources: %v", r.LoadSources[ld])
	}
}

func TestInfeasiblePathPruned(t *testing.T) {
	// Store happens under c; load's value propagated under !c through a
	// second branch on the same condition. The linear solver must prune
	// the contradictory flow c & !c.
	m, res := buildAnalyzed(t, `
void f(bool c) {
	int *p = malloc();
	int **pp = malloc();
	*pp = null;
	if (c) { *pp = p; }
	if (!c) {
		int *q = *pp;
		use(q);
	}
}`)
	f := m.ByName["f"]
	r := res["f"]
	// Find the load of *pp inside the second branch.
	var ld *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad && in.Dst.Type.IsPointer() {
				ld = in
			}
		}
	}
	if ld == nil {
		t.Fatal("no pointer load found")
	}
	// Sources flowing from the conditional store get guard c; the load
	// itself sits under !c. The merge guard alone keeps both (merging at
	// the first join), but p's pair is guarded by c. The SEG/detection
	// layer conjoins the load's control dependence (!c); here we check
	// the pair carries the c guard so that conjunction is refutable.
	for _, s := range r.LoadSources[ld] {
		if s.Val.Kind == ir.VConstNull {
			continue
		}
		if s.Cond.IsTrue() {
			t.Errorf("conditional store source lost its guard: %v", s)
		}
	}
	if r.Stats.GuardsKept == 0 {
		t.Error("no guards tracked")
	}
}

func TestCallReceiverOpaque(t *testing.T) {
	m, res := buildAnalyzed(t, `
int *mk() { return malloc(); }
void f() {
	int *p = mk();
	int x = *p;
}`)
	f := m.ByName["f"]
	r := res["f"]
	call := findInstr(f, ir.OpCall, 0)
	pts := r.PTS[call.Dsts[0]]
	if len(pts) != 1 || pts[0].Loc.Kind != LExt {
		t.Fatalf("call receiver pts = %v", pts)
	}
}

func TestStatsPruning(t *testing.T) {
	// A value flow whose guard is c & !c inside one function via
	// nested branches on the same variable.
	_, res := buildAnalyzed(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { *p = 1; } else { *p = 2; }
	int x = 0;
	if (c) { x = *p; }
}`)
	r := res["f"]
	_ = r
	// No assertion on exact numbers — just exercise the counters.
	if r.Stats.LinearQueries == 0 {
		t.Error("linear solver never queried")
	}
}

func TestAblationDisableLinearSolver(t *testing.T) {
	src := `
void f(bool c) {
	int *p = malloc();
	if (c) { *p = 1; } else { *p = 2; }
	int x = *p;
}`
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Funcs[0]
	inf, err := ssa.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	mr := modref.Analyze(m)
	if err := transform.Apply(m, mr); err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(f, inf, Options{DisableLinearSolver: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.LinearQueries != 0 {
		t.Errorf("linear solver ran despite ablation: %d queries", r.Stats.LinearQueries)
	}
}

func TestLocString(t *testing.T) {
	locs := []Loc{
		{Kind: LGlobal, Name: "g"},
		{Kind: LNull},
	}
	for _, l := range locs {
		if l.String() == "" {
			t.Error("empty Loc string")
		}
	}
}
