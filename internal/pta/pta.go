// Package pta implements Pinpoint's local, quasi path-sensitive points-to
// analysis (§3.1.1), the first stage of the holistic design.
//
// The analysis runs per function, after the connector transformation, on an
// acyclic SSA CFG. It tracks:
//
//   - the guarded points-to set of every SSA pointer value: pairs (location,
//     condition) over abstract locations (stack slots, heap allocations,
//     globals, and opaque "external" locations for connector roots);
//   - the guarded contents of every location: pairs (value, condition)
//     stating "under this condition the location holds this value".
//
// Conditions are boolean DAGs over branch atoms. At control-flow joins,
// pairs arriving from different predecessors are guarded with the join
// gates (the same conditions gating φ operands); contradictory guards are
// pruned by the linear-time solver of package cond — never by the SMT
// solver, which is the point: about 70% of path conditions built here are
// satisfiable and will be solved again at the bug-finding stage anyway
// (paper §3.1.1), so filtering only the "easy" unsatisfiable ones removes
// redundant work without paying SMT costs twice.
//
// The key product consumed by SEG construction is LoadSources: for every
// load, the guarded set of stored values that may reach it — the
// memory-induced data-dependence edges of the SEG.
package pta

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// LocKind discriminates abstract memory locations.
type LocKind uint8

const (
	// LAlloc is a stack slot (per OpAlloc site).
	LAlloc LocKind = iota
	// LMalloc is a heap object (per OpMalloc site).
	LMalloc
	// LGlobal is a global variable's cell.
	LGlobal
	// LExt is the opaque pointee of an external root pointer (a
	// parameter, aux parameter, or call-received pointer). Distinct
	// roots are assumed unaliased (paper §4.2).
	LExt
	// LNull is the null pseudo-location.
	LNull
)

// Loc is an abstract memory location.
type Loc struct {
	Kind  LocKind
	Instr *ir.Instr // alloc/malloc site (LAlloc, LMalloc)
	Val   *ir.Value // root value (LExt)
	Name  string    // global name (LGlobal)
	// Field distinguishes struct fields of locally-allocated objects
	// ("" = the whole object / non-struct cell). External and global
	// objects collapse their fields (the connector model is
	// field-insensitive across function boundaries; see DESIGN.md).
	Field string
}

func (l Loc) String() string {
	base := ""
	switch l.Kind {
	case LAlloc:
		base = fmt.Sprintf("alloc#%d", l.Instr.ID)
	case LMalloc:
		base = fmt.Sprintf("malloc#%d", l.Instr.ID)
	case LGlobal:
		base = "@" + l.Name
	case LExt:
		base = "ext(" + l.Val.String() + ")"
	default:
		base = "null"
	}
	if l.Field != "" {
		base += "." + l.Field
	}
	return base
}

// GuardedLoc is a location with the condition under which it is pointed to.
type GuardedLoc struct {
	Loc  Loc
	Cond *cond.Cond
}

// GuardedVal is a stored value with the condition under which it is the
// content of a location (or, in LoadSources, flows to the load).
type GuardedVal struct {
	Val  *ir.Value
	Cond *cond.Cond
}

// Options tunes the analysis; the zero value is the paper configuration.
type Options struct {
	// DisableLinearSolver turns off infeasible-guard pruning (ablation:
	// "what if we never filtered easy-unsat conditions").
	DisableLinearSolver bool
	// CondSizeCap bounds guard sizes; larger guards widen to true.
	// 0 means the default (64 nodes).
	CondSizeCap int
}

// Stats reports analysis effort counters.
type Stats struct {
	// GuardsPruned counts guarded pairs dropped as apparently unsat.
	GuardsPruned int
	// GuardsKept counts guarded pairs that survived feasibility checks.
	GuardsKept int
	// CapWidened counts guards widened to true by the size cap.
	CapWidened int
	// LinearQueries/LinearUnsat mirror the linear solver counters.
	LinearQueries int
	LinearUnsat   int
}

// Add accumulates o into s — the cross-function aggregation used by the
// pipeline driver and the benchmarks.
func (s *Stats) Add(o Stats) {
	s.GuardsPruned += o.GuardsPruned
	s.GuardsKept += o.GuardsKept
	s.CapWidened += o.CapWidened
	s.LinearQueries += o.LinearQueries
	s.LinearUnsat += o.LinearUnsat
}

// String renders the counters in the shape cmd/pinpoint's -stats output
// uses.
func (s Stats) String() string {
	return fmt.Sprintf("%d guards kept, %d pruned, %d widened by cap; %d linear queries (%d unsat)",
		s.GuardsKept, s.GuardsPruned, s.CapWidened, s.LinearQueries, s.LinearUnsat)
}

// Result is the per-function analysis result.
type Result struct {
	Fn   *ir.Func
	Info *ssa.Info
	// PTS is the guarded points-to set of each pointer value.
	PTS map[*ir.Value][]GuardedLoc
	// LoadSources maps each load to the guarded values reaching it.
	LoadSources map[*ir.Instr][]GuardedVal
	// StoredAt maps each store instruction to its guarded target
	// locations (used by checkers that reason about writes).
	StoredAt map[*ir.Instr][]GuardedLoc
	Stats    Stats
}

// state is the memory state at a program point: contents of locations.
type state map[Loc][]GuardedVal

func (s state) clone() state {
	out := make(state, len(s))
	for l, vs := range s {
		out[l] = vs // slices are copy-on-write; see setContents
	}
	return out
}

type analyzer struct {
	f    *ir.Func
	inf  *ssa.Info
	res  *Result
	ls   *cond.LinearSolver
	opts Options
	cap  int
}

// Analyze runs the quasi path-sensitive points-to analysis on f.
func Analyze(f *ir.Func, inf *ssa.Info, opts Options) (*Result, error) {
	order, err := cfg.Topological(f)
	if err != nil {
		return nil, err
	}
	a := &analyzer{
		f:   f,
		inf: inf,
		res: &Result{
			Fn:          f,
			Info:        inf,
			PTS:         make(map[*ir.Value][]GuardedLoc),
			LoadSources: make(map[*ir.Instr][]GuardedVal),
			StoredAt:    make(map[*ir.Instr][]GuardedLoc),
		},
		ls:   cond.NewLinearSolver(),
		opts: opts,
		cap:  opts.CondSizeCap,
	}
	if a.cap == 0 {
		a.cap = 64
	}

	exits := make(map[*ir.Block]state, len(order))
	for _, b := range order {
		st := a.mergePreds(b, exits)
		for _, in := range b.Instrs {
			a.transfer(st, in)
		}
		exits[b] = st
	}
	a.res.Stats.LinearQueries = a.ls.Queries
	a.res.Stats.LinearUnsat = a.ls.Unsat
	return a.res, nil
}

// feasible checks (and conjoins) a guard; pruned guards return ok=false.
func (a *analyzer) feasible(parts ...*cond.Cond) (*cond.Cond, bool) {
	c := a.inf.Conds.And(parts...)
	if c.IsFalse() {
		a.res.Stats.GuardsPruned++
		return c, false
	}
	if !a.opts.DisableLinearSolver && a.ls.ApparentlyUnsat(c) {
		a.res.Stats.GuardsPruned++
		return a.inf.Conds.False(), false
	}
	a.res.Stats.GuardsKept++
	if cond.Size(c) > a.cap {
		a.res.Stats.CapWidened++
		return a.inf.Conds.True(), true
	}
	return c, true
}

// mergePreds computes the block-entry state from predecessor exits, gating
// pairs with the join gates. Pairs identical across all predecessors pass
// through untouched to keep conditions compact.
func (a *analyzer) mergePreds(b *ir.Block, exits map[*ir.Block]state) state {
	switch len(b.Preds) {
	case 0:
		return make(state)
	case 1:
		return exits[b.Preds[0]].clone()
	}
	gates := a.inf.JoinGates(b)
	// Collect all locations mentioned by any predecessor.
	locs := make(map[Loc]bool)
	for _, p := range b.Preds {
		for l := range exits[p] {
			locs[l] = true
		}
	}
	out := make(state, len(locs))
	for l := range locs {
		// Fast path: identical slices in all preds.
		first := exits[b.Preds[0]][l]
		same := true
		for _, p := range b.Preds[1:] {
			if !sameGuardedVals(exits[p][l], first) {
				same = false
				break
			}
		}
		if same {
			if first != nil {
				out[l] = first
			}
			continue
		}
		var merged []GuardedVal
		for _, p := range b.Preds {
			g := gates[p]
			for _, gv := range exits[p][l] {
				c, ok := a.feasible(gv.Cond, g)
				if !ok {
					continue
				}
				merged = append(merged, GuardedVal{Val: gv.Val, Cond: c})
			}
		}
		out[l] = dedupGuarded(a.inf.Conds, merged)
	}
	return out
}

func sameGuardedVals(x, y []GuardedVal) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// dedupGuarded groups pairs by value, Or-ing their conditions.
func dedupGuarded(cb *cond.Builder, in []GuardedVal) []GuardedVal {
	if len(in) < 2 {
		return in
	}
	idx := make(map[*ir.Value]int, len(in))
	out := in[:0]
	for _, gv := range in {
		if i, ok := idx[gv.Val]; ok {
			out[i].Cond = cb.Or(out[i].Cond, gv.Cond)
			continue
		}
		idx[gv.Val] = len(out)
		out = append(out, gv)
	}
	return out
}

// ptsOf returns the guarded points-to set of v, computing the base cases
// for parameters and constants lazily.
func (a *analyzer) ptsOf(v *ir.Value) []GuardedLoc {
	if p, ok := a.res.PTS[v]; ok {
		return p
	}
	var p []GuardedLoc
	tr := a.inf.Conds.True()
	switch {
	case v.Kind == ir.VConstNull:
		p = []GuardedLoc{{Loc: Loc{Kind: LNull}, Cond: tr}}
	case v.Kind == ir.VParam && v.Type.IsPointer():
		p = []GuardedLoc{{Loc: Loc{Kind: LExt, Val: v}, Cond: tr}}
	case v.Type.IsPointer():
		// Opaque pointer with no recorded definition semantics.
		p = []GuardedLoc{{Loc: Loc{Kind: LExt, Val: v}, Cond: tr}}
	}
	a.res.PTS[v] = p
	return p
}

func (a *analyzer) setPTS(v *ir.Value, p []GuardedLoc) {
	a.res.PTS[v] = dedupLocs(a.inf.Conds, p)
}

func dedupLocs(cb *cond.Builder, in []GuardedLoc) []GuardedLoc {
	if len(in) < 2 {
		return in
	}
	idx := make(map[Loc]int, len(in))
	out := in[:0]
	for _, gl := range in {
		if i, ok := idx[gl.Loc]; ok {
			out[i].Cond = cb.Or(out[i].Cond, gl.Cond)
			continue
		}
		idx[gl.Loc] = len(out)
		out = append(out, gl)
	}
	return out
}

func (a *analyzer) transfer(st state, in *ir.Instr) {
	tr := a.inf.Conds.True()
	switch in.Op {
	case ir.OpAlloc:
		a.setPTS(in.Dst, []GuardedLoc{{Loc: Loc{Kind: LAlloc, Instr: in}, Cond: tr}})
	case ir.OpMalloc:
		a.setPTS(in.Dst, []GuardedLoc{{Loc: Loc{Kind: LMalloc, Instr: in}, Cond: tr}})
	case ir.OpGlobalAddr:
		a.setPTS(in.Dst, []GuardedLoc{{Loc: Loc{Kind: LGlobal, Name: in.Sub}, Cond: tr}})
	case ir.OpFieldAddr:
		// Field-sensitive for local objects: the field address denotes a
		// distinct cell of the base object. Opaque (external/global)
		// objects keep a single collapsed cell, matching the
		// field-insensitive connector interface.
		var p []GuardedLoc
		for _, gl := range a.ptsOf(in.Args[0]) {
			switch gl.Loc.Kind {
			case LNull:
				continue
			case LAlloc, LMalloc:
				nl := gl.Loc
				nl.Field = in.Sub
				p = append(p, GuardedLoc{Loc: nl, Cond: gl.Cond})
			default:
				p = append(p, gl)
			}
		}
		if len(p) == 0 {
			p = []GuardedLoc{{Loc: Loc{Kind: LExt, Val: in.Dst}, Cond: tr}}
		}
		a.setPTS(in.Dst, p)
	case ir.OpCopy:
		if in.Dst.Type.IsPointer() {
			a.setPTS(in.Dst, a.ptsOf(in.Args[0]))
		}
	case ir.OpUn:
		if in.Dst.Type.IsPointer() {
			a.setPTS(in.Dst, a.ptsOf(in.Args[0]))
		}
	case ir.OpBin:
		if in.Dst.Type.IsPointer() {
			// Pointer arithmetic: the result may point wherever either
			// operand points (array elements collapse).
			var p []GuardedLoc
			for _, arg := range in.Args {
				if arg.Type.IsPointer() {
					p = append(p, a.ptsOf(arg)...)
				}
			}
			a.setPTS(in.Dst, p)
		}
	case ir.OpPhi:
		if in.Dst.Type.IsPointer() {
			gates := a.inf.Gates[in]
			var p []GuardedLoc
			for i, arg := range in.Args {
				g := tr
				if gates != nil {
					g = gates[i]
				}
				for _, gl := range a.ptsOf(arg) {
					c, ok := a.feasible(gl.Cond, g)
					if !ok {
						continue
					}
					p = append(p, GuardedLoc{Loc: gl.Loc, Cond: c})
				}
			}
			a.setPTS(in.Dst, p)
		}
	case ir.OpLoad:
		a.transferLoad(st, in)
	case ir.OpStore:
		a.transferStore(st, in)
	case ir.OpCall:
		for _, d := range in.Dsts {
			if d != nil && d.Type.IsPointer() {
				a.setPTS(d, []GuardedLoc{{Loc: Loc{Kind: LExt, Val: d}, Cond: tr}})
			}
		}
	}
}

func (a *analyzer) transferLoad(st state, in *ir.Instr) {
	addrPts := a.ptsOf(in.Args[0])
	var sources []GuardedVal
	for _, gl := range addrPts {
		if gl.Loc.Kind == LNull {
			continue
		}
		for _, gv := range st[gl.Loc] {
			c, ok := a.feasible(gl.Cond, gv.Cond)
			if !ok {
				continue
			}
			sources = append(sources, GuardedVal{Val: gv.Val, Cond: c})
		}
	}
	sources = dedupGuarded(a.inf.Conds, sources)
	a.res.LoadSources[in] = sources

	if in.Dst.Type.IsPointer() {
		var p []GuardedLoc
		for _, gv := range sources {
			for _, gl := range a.ptsOf(gv.Val) {
				c, ok := a.feasible(gl.Cond, gv.Cond)
				if !ok {
					continue
				}
				p = append(p, GuardedLoc{Loc: gl.Loc, Cond: c})
			}
		}
		if len(p) == 0 {
			// Unknown content: opaque pointee.
			p = []GuardedLoc{{Loc: Loc{Kind: LExt, Val: in.Dst}, Cond: a.inf.Conds.True()}}
		}
		a.setPTS(in.Dst, p)
	}
}

func (a *analyzer) transferStore(st state, in *ir.Instr) {
	addrPts := a.ptsOf(in.Args[0])
	a.res.StoredAt[in] = addrPts
	v := in.Args[1]
	if len(addrPts) == 1 && addrPts[0].Cond.IsTrue() && addrPts[0].Loc.Kind != LNull {
		// Strong update: in an acyclic CFG every location is a
		// singleton, so a must-aliased store kills prior contents.
		st[addrPts[0].Loc] = []GuardedVal{{Val: v, Cond: a.inf.Conds.True()}}
		return
	}
	for _, gl := range addrPts {
		if gl.Loc.Kind == LNull {
			continue
		}
		old := st[gl.Loc]
		// Copy-on-write: never mutate a slice shared with another
		// block's state.
		nv := make([]GuardedVal, 0, len(old)+1)
		nv = append(nv, old...)
		nv = append(nv, GuardedVal{Val: v, Cond: gl.Cond})
		st[gl.Loc] = dedupGuarded(a.inf.Conds, nv)
	}
}
