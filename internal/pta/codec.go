package pta

import (
	"fmt"
	"sort"

	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// Wire form of a Result for the persistent artifact store. Values,
// instructions, and conditions are referenced by their dense per-function
// IDs (-1 = nil); map entries are sorted by key ID so the encoding is
// deterministic, while the guarded-pair slices keep their original order
// (downstream traversals iterate them in order).

// LocWire is the serialized form of a Loc.
type LocWire struct {
	Kind  LocKind
	Instr int32
	Val   int32
	Name  string
	Field string
}

// GuardedLocWire is the serialized form of a GuardedLoc.
type GuardedLocWire struct {
	Loc  LocWire
	Cond int32
}

// GuardedValWire is the serialized form of a GuardedVal.
type GuardedValWire struct {
	Val  int32
	Cond int32
}

// PTSWire is one PTS entry. An entry with an empty Locs list is still
// meaningful: it caches "not a pointer / no targets".
type PTSWire struct {
	Val  int32
	Locs []GuardedLocWire
}

// InstrLocsWire is one StoredAt entry.
type InstrLocsWire struct {
	Instr int32
	Locs  []GuardedLocWire
}

// InstrValsWire is one LoadSources entry.
type InstrValsWire struct {
	Instr int32
	Vals  []GuardedValWire
}

// ResultWire is the serialized form of a Result (minus Fn and Info, which
// are re-attached at import).
type ResultWire struct {
	PTS         []PTSWire
	LoadSources []InstrValsWire
	StoredAt    []InstrLocsWire
	Stats       Stats
}

func wireLoc(l Loc) LocWire {
	w := LocWire{Kind: l.Kind, Instr: -1, Val: -1, Name: l.Name, Field: l.Field}
	if l.Instr != nil {
		w.Instr = int32(l.Instr.ID)
	}
	if l.Val != nil {
		w.Val = int32(l.Val.ID)
	}
	return w
}

func wireCond(c *cond.Cond) int32 {
	if c == nil {
		return -1
	}
	return int32(c.ID())
}

func wireLocs(ls []GuardedLoc) []GuardedLocWire {
	if ls == nil {
		return nil
	}
	out := make([]GuardedLocWire, len(ls))
	for i, gl := range ls {
		out[i] = GuardedLocWire{Loc: wireLoc(gl.Loc), Cond: wireCond(gl.Cond)}
	}
	return out
}

// ExportResult flattens r into wire form.
func ExportResult(r *Result) *ResultWire {
	w := &ResultWire{Stats: r.Stats}
	for v, locs := range r.PTS {
		w.PTS = append(w.PTS, PTSWire{Val: int32(v.ID), Locs: wireLocs(locs)})
	}
	sort.Slice(w.PTS, func(i, j int) bool { return w.PTS[i].Val < w.PTS[j].Val })
	for in, vals := range r.LoadSources {
		vw := InstrValsWire{Instr: int32(in.ID)}
		if vals != nil {
			vw.Vals = make([]GuardedValWire, len(vals))
			for i, gv := range vals {
				vw.Vals[i] = GuardedValWire{Val: int32(gv.Val.ID), Cond: wireCond(gv.Cond)}
			}
		}
		w.LoadSources = append(w.LoadSources, vw)
	}
	sort.Slice(w.LoadSources, func(i, j int) bool { return w.LoadSources[i].Instr < w.LoadSources[j].Instr })
	for in, locs := range r.StoredAt {
		w.StoredAt = append(w.StoredAt, InstrLocsWire{Instr: int32(in.ID), Locs: wireLocs(locs)})
	}
	sort.Slice(w.StoredAt, func(i, j int) bool { return w.StoredAt[i].Instr < w.StoredAt[j].Instr })
	return w
}

type importer struct {
	fn    *ir.Func
	ix    *ir.Index
	nodes []*cond.Cond
}

func (im *importer) value(id int32) (*ir.Value, error) {
	if id == -1 {
		return nil, nil
	}
	if id < 0 || int(id) >= len(im.ix.Values) || im.ix.Values[id] == nil {
		return nil, fmt.Errorf("pta: import %s: bad value id %d", im.fn.Name, id)
	}
	return im.ix.Values[id], nil
}

func (im *importer) instr(id int32) (*ir.Instr, error) {
	if id == -1 {
		return nil, nil
	}
	if id < 0 || int(id) >= len(im.ix.Instrs) || im.ix.Instrs[id] == nil {
		return nil, fmt.Errorf("pta: import %s: bad instr id %d", im.fn.Name, id)
	}
	return im.ix.Instrs[id], nil
}

func (im *importer) cond(id int32) (*cond.Cond, error) {
	if id == -1 {
		return nil, nil
	}
	if id < 0 || int(id) >= len(im.nodes) {
		return nil, fmt.Errorf("pta: import %s: bad cond id %d", im.fn.Name, id)
	}
	return im.nodes[id], nil
}

func (im *importer) locs(ws []GuardedLocWire) ([]GuardedLoc, error) {
	if ws == nil {
		return nil, nil
	}
	out := make([]GuardedLoc, len(ws))
	for i, glw := range ws {
		l := Loc{Kind: glw.Loc.Kind, Name: glw.Loc.Name, Field: glw.Loc.Field}
		var err error
		if l.Instr, err = im.instr(glw.Loc.Instr); err != nil {
			return nil, err
		}
		if l.Val, err = im.value(glw.Loc.Val); err != nil {
			return nil, err
		}
		c, err := im.cond(glw.Cond)
		if err != nil {
			return nil, err
		}
		out[i] = GuardedLoc{Loc: l, Cond: c}
	}
	return out, nil
}

// ImportResult rebuilds a Result for f from wire form. ix and nodes must
// come from the companion ir/cond imports of the same artifact.
func ImportResult(w *ResultWire, f *ir.Func, inf *ssa.Info, ix *ir.Index, nodes []*cond.Cond) (*Result, error) {
	im := &importer{fn: f, ix: ix, nodes: nodes}
	r := &Result{
		Fn:          f,
		Info:        inf,
		PTS:         make(map[*ir.Value][]GuardedLoc, len(w.PTS)),
		LoadSources: make(map[*ir.Instr][]GuardedVal, len(w.LoadSources)),
		StoredAt:    make(map[*ir.Instr][]GuardedLoc, len(w.StoredAt)),
		Stats:       w.Stats,
	}
	for _, pw := range w.PTS {
		v, err := im.value(pw.Val)
		if err != nil || v == nil {
			return nil, fmt.Errorf("pta: import %s: bad PTS value id %d", f.Name, pw.Val)
		}
		locs, err := im.locs(pw.Locs)
		if err != nil {
			return nil, err
		}
		r.PTS[v] = locs
	}
	for _, lw := range w.LoadSources {
		in, err := im.instr(lw.Instr)
		if err != nil || in == nil {
			return nil, fmt.Errorf("pta: import %s: bad load instr id %d", f.Name, lw.Instr)
		}
		var vals []GuardedVal
		if lw.Vals != nil {
			vals = make([]GuardedVal, len(lw.Vals))
			for i, gvw := range lw.Vals {
				v, err := im.value(gvw.Val)
				if err != nil || v == nil {
					return nil, fmt.Errorf("pta: import %s: bad source value id %d", f.Name, gvw.Val)
				}
				c, err := im.cond(gvw.Cond)
				if err != nil {
					return nil, err
				}
				vals[i] = GuardedVal{Val: v, Cond: c}
			}
		}
		r.LoadSources[in] = vals
	}
	for _, sw := range w.StoredAt {
		in, err := im.instr(sw.Instr)
		if err != nil || in == nil {
			return nil, fmt.Errorf("pta: import %s: bad store instr id %d", f.Name, sw.Instr)
		}
		locs, err := im.locs(sw.Locs)
		if err != nil {
			return nil, err
		}
		r.StoredAt[in] = locs
	}
	return r, nil
}
