package pta

import (
	"fmt"
	"sort"

	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/ssa"
	"repro/internal/wirebin"
)

// Wire form of a Result for the persistent artifact store. Values,
// instructions, and conditions are referenced by their dense per-function
// IDs (-1 = nil); map entries are sorted by key ID so the encoding is
// deterministic, while the guarded-pair slices keep their original order
// (downstream traversals iterate them in order).

// LocWire is the serialized form of a Loc.
type LocWire struct {
	Kind  LocKind
	Instr int32
	Val   int32
	Name  string
	Field string
}

// GuardedLocWire is the serialized form of a GuardedLoc.
type GuardedLocWire struct {
	Loc  LocWire
	Cond int32
}

// GuardedValWire is the serialized form of a GuardedVal.
type GuardedValWire struct {
	Val  int32
	Cond int32
}

// PTSWire is one PTS entry. An entry with an empty Locs list is still
// meaningful: it caches "not a pointer / no targets".
type PTSWire struct {
	Val  int32
	Locs []GuardedLocWire
}

// InstrLocsWire is one StoredAt entry.
type InstrLocsWire struct {
	Instr int32
	Locs  []GuardedLocWire
}

// InstrValsWire is one LoadSources entry.
type InstrValsWire struct {
	Instr int32
	Vals  []GuardedValWire
}

// ResultWire is the serialized form of a Result (minus Fn and Info, which
// are re-attached at import).
type ResultWire struct {
	PTS         []PTSWire
	LoadSources []InstrValsWire
	StoredAt    []InstrLocsWire
	Stats       Stats
}

func wireLoc(l Loc) LocWire {
	w := LocWire{Kind: l.Kind, Instr: -1, Val: -1, Name: l.Name, Field: l.Field}
	if l.Instr != nil {
		w.Instr = int32(l.Instr.ID)
	}
	if l.Val != nil {
		w.Val = int32(l.Val.ID)
	}
	return w
}

func wireCond(c *cond.Cond) int32 {
	if c == nil {
		return -1
	}
	return int32(c.ID())
}

func wireLocs(ls []GuardedLoc) []GuardedLocWire {
	if ls == nil {
		return nil
	}
	out := make([]GuardedLocWire, len(ls))
	for i, gl := range ls {
		out[i] = GuardedLocWire{Loc: wireLoc(gl.Loc), Cond: wireCond(gl.Cond)}
	}
	return out
}

// ExportResult flattens r into wire form.
func ExportResult(r *Result) *ResultWire {
	w := &ResultWire{Stats: r.Stats}
	for v, locs := range r.PTS {
		w.PTS = append(w.PTS, PTSWire{Val: int32(v.ID), Locs: wireLocs(locs)})
	}
	sort.Slice(w.PTS, func(i, j int) bool { return w.PTS[i].Val < w.PTS[j].Val })
	for in, vals := range r.LoadSources {
		vw := InstrValsWire{Instr: int32(in.ID)}
		if vals != nil {
			vw.Vals = make([]GuardedValWire, len(vals))
			for i, gv := range vals {
				vw.Vals[i] = GuardedValWire{Val: int32(gv.Val.ID), Cond: wireCond(gv.Cond)}
			}
		}
		w.LoadSources = append(w.LoadSources, vw)
	}
	sort.Slice(w.LoadSources, func(i, j int) bool { return w.LoadSources[i].Instr < w.LoadSources[j].Instr })
	for in, locs := range r.StoredAt {
		w.StoredAt = append(w.StoredAt, InstrLocsWire{Instr: int32(in.ID), Locs: wireLocs(locs)})
	}
	sort.Slice(w.StoredAt, func(i, j int) bool { return w.StoredAt[i].Instr < w.StoredAt[j].Instr })
	return w
}

type importer struct {
	fn    *ir.Func
	ix    *ir.Index
	nodes []*cond.Cond
}

func (im *importer) value(id int32) (*ir.Value, error) {
	if id == -1 {
		return nil, nil
	}
	if id < 0 || int(id) >= len(im.ix.Values) || im.ix.Values[id] == nil {
		return nil, fmt.Errorf("pta: import %s: bad value id %d", im.fn.Name, id)
	}
	return im.ix.Values[id], nil
}

func (im *importer) instr(id int32) (*ir.Instr, error) {
	if id == -1 {
		return nil, nil
	}
	if id < 0 || int(id) >= len(im.ix.Instrs) || im.ix.Instrs[id] == nil {
		return nil, fmt.Errorf("pta: import %s: bad instr id %d", im.fn.Name, id)
	}
	return im.ix.Instrs[id], nil
}

func (im *importer) cond(id int32) (*cond.Cond, error) {
	if id == -1 {
		return nil, nil
	}
	if id < 0 || int(id) >= len(im.nodes) {
		return nil, fmt.Errorf("pta: import %s: bad cond id %d", im.fn.Name, id)
	}
	return im.nodes[id], nil
}

func (im *importer) locs(ws []GuardedLocWire) ([]GuardedLoc, error) {
	if ws == nil {
		return nil, nil
	}
	out := make([]GuardedLoc, len(ws))
	for i, glw := range ws {
		l := Loc{Kind: glw.Loc.Kind, Name: glw.Loc.Name, Field: glw.Loc.Field}
		var err error
		if l.Instr, err = im.instr(glw.Loc.Instr); err != nil {
			return nil, err
		}
		if l.Val, err = im.value(glw.Loc.Val); err != nil {
			return nil, err
		}
		c, err := im.cond(glw.Cond)
		if err != nil {
			return nil, err
		}
		out[i] = GuardedLoc{Loc: l, Cond: c}
	}
	return out, nil
}

// ImportResult rebuilds a Result for f from wire form. ix and nodes must
// come from the companion ir/cond imports of the same artifact.
func ImportResult(w *ResultWire, f *ir.Func, inf *ssa.Info, ix *ir.Index, nodes []*cond.Cond) (*Result, error) {
	im := &importer{fn: f, ix: ix, nodes: nodes}
	r := &Result{
		Fn:          f,
		Info:        inf,
		PTS:         make(map[*ir.Value][]GuardedLoc, len(w.PTS)),
		LoadSources: make(map[*ir.Instr][]GuardedVal, len(w.LoadSources)),
		StoredAt:    make(map[*ir.Instr][]GuardedLoc, len(w.StoredAt)),
		Stats:       w.Stats,
	}
	for _, pw := range w.PTS {
		v, err := im.value(pw.Val)
		if err != nil || v == nil {
			return nil, fmt.Errorf("pta: import %s: bad PTS value id %d", f.Name, pw.Val)
		}
		locs, err := im.locs(pw.Locs)
		if err != nil {
			return nil, err
		}
		r.PTS[v] = locs
	}
	for _, lw := range w.LoadSources {
		in, err := im.instr(lw.Instr)
		if err != nil || in == nil {
			return nil, fmt.Errorf("pta: import %s: bad load instr id %d", f.Name, lw.Instr)
		}
		var vals []GuardedVal
		if lw.Vals != nil {
			vals = make([]GuardedVal, len(lw.Vals))
			for i, gvw := range lw.Vals {
				v, err := im.value(gvw.Val)
				if err != nil || v == nil {
					return nil, fmt.Errorf("pta: import %s: bad source value id %d", f.Name, gvw.Val)
				}
				c, err := im.cond(gvw.Cond)
				if err != nil {
					return nil, err
				}
				vals[i] = GuardedVal{Val: v, Cond: c}
			}
		}
		r.LoadSources[in] = vals
	}
	for _, sw := range w.StoredAt {
		in, err := im.instr(sw.Instr)
		if err != nil || in == nil {
			return nil, fmt.Errorf("pta: import %s: bad store instr id %d", f.Name, sw.Instr)
		}
		locs, err := im.locs(sw.Locs)
		if err != nil {
			return nil, err
		}
		r.StoredAt[in] = locs
	}
	return r, nil
}

// Binary codec for ResultWire. Loc names and fields repeat heavily across
// a function's points-to sets, so they are interned into a per-result
// string table (index -1 = ""). Nil and empty guarded lists are distinct
// on the wire (0 = nil, n+1 = list of n): an empty PTS entry caches "no
// targets" and must survive the round trip.

type strTable struct {
	ids map[string]int32
	s   []string
}

func (t *strTable) id(s string) int32 {
	if s == "" {
		return -1
	}
	if id, ok := t.ids[s]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]int32)
	}
	id := int32(len(t.s))
	t.ids[s] = id
	t.s = append(t.s, s)
	return id
}

func appendLocList(e *wirebin.Writer, t *strTable, ls []GuardedLocWire) {
	if ls == nil {
		e.Uvarint(0)
		return
	}
	e.Uvarint(uint64(len(ls)) + 1)
	for i := range ls {
		gl := &ls[i]
		e.U8(uint8(gl.Loc.Kind))
		e.I32(gl.Loc.Instr)
		e.I32(gl.Loc.Val)
		e.I32(t.id(gl.Loc.Name))
		e.I32(t.id(gl.Loc.Field))
		e.I32(gl.Cond)
	}
}

func decodeLocList(r *wirebin.Reader, strs []string) ([]GuardedLocWire, error) {
	n := r.Uvarint()
	if n == 0 {
		return nil, nil
	}
	n--
	if n > uint64(r.Rest()) {
		return nil, fmt.Errorf("pta: decode: loc list length %d exceeds input", n)
	}
	str := func(id int32) (string, error) {
		if id == -1 {
			return "", nil
		}
		if id < 0 || int(id) >= len(strs) {
			return "", fmt.Errorf("pta: decode: bad string id %d", id)
		}
		return strs[id], nil
	}
	out := make([]GuardedLocWire, n)
	for i := range out {
		gl := &out[i]
		gl.Loc.Kind = LocKind(r.U8())
		gl.Loc.Instr = r.I32()
		gl.Loc.Val = r.I32()
		var err error
		if gl.Loc.Name, err = str(r.I32()); err != nil {
			return nil, err
		}
		if gl.Loc.Field, err = str(r.I32()); err != nil {
			return nil, err
		}
		gl.Cond = r.I32()
	}
	return out, nil
}

// AppendWire appends w's binary encoding to e.
func (w *ResultWire) AppendWire(e *wirebin.Writer) {
	// The string table is built while encoding entries into a side buffer,
	// then emitted first so decoding can resolve indices in one pass.
	var body wirebin.Writer
	var t strTable
	body.Uvarint(uint64(len(w.PTS)))
	for i := range w.PTS {
		body.I32(w.PTS[i].Val)
		appendLocList(&body, &t, w.PTS[i].Locs)
	}
	body.Uvarint(uint64(len(w.LoadSources)))
	for i := range w.LoadSources {
		vw := &w.LoadSources[i]
		body.I32(vw.Instr)
		if vw.Vals == nil {
			body.Uvarint(0)
		} else {
			body.Uvarint(uint64(len(vw.Vals)) + 1)
			for j := range vw.Vals {
				body.I32(vw.Vals[j].Val)
				body.I32(vw.Vals[j].Cond)
			}
		}
	}
	body.Uvarint(uint64(len(w.StoredAt)))
	for i := range w.StoredAt {
		body.I32(w.StoredAt[i].Instr)
		appendLocList(&body, &t, w.StoredAt[i].Locs)
	}
	body.Int(w.Stats.GuardsPruned)
	body.Int(w.Stats.GuardsKept)
	body.Int(w.Stats.CapWidened)
	body.Int(w.Stats.LinearQueries)
	body.Int(w.Stats.LinearUnsat)
	e.Strs(t.s)
	e.B = append(e.B, body.B...)
}

// DecodeResultWire reads one ResultWire from r.
func DecodeResultWire(r *wirebin.Reader) (*ResultWire, error) {
	strs := r.Strs()
	w := &ResultWire{}
	var err error
	if n := r.Len(); n > 0 {
		w.PTS = make([]PTSWire, n)
		for i := range w.PTS {
			w.PTS[i].Val = r.I32()
			if w.PTS[i].Locs, err = decodeLocList(r, strs); err != nil {
				return nil, err
			}
		}
	}
	if n := r.Len(); n > 0 {
		w.LoadSources = make([]InstrValsWire, n)
		for i := range w.LoadSources {
			vw := &w.LoadSources[i]
			vw.Instr = r.I32()
			if m := r.Uvarint(); m > 0 {
				m--
				if m > uint64(r.Rest()) {
					return nil, fmt.Errorf("pta: decode: val list length %d exceeds input", m)
				}
				vw.Vals = make([]GuardedValWire, m)
				for j := range vw.Vals {
					vw.Vals[j] = GuardedValWire{Val: r.I32(), Cond: r.I32()}
				}
			}
		}
	}
	if n := r.Len(); n > 0 {
		w.StoredAt = make([]InstrLocsWire, n)
		for i := range w.StoredAt {
			w.StoredAt[i].Instr = r.I32()
			if w.StoredAt[i].Locs, err = decodeLocList(r, strs); err != nil {
				return nil, err
			}
		}
	}
	w.Stats.GuardsPruned = r.Int()
	w.Stats.GuardsKept = r.Int()
	w.Stats.CapWidened = r.Int()
	w.Stats.LinearQueries = r.Int()
	w.Stats.LinearUnsat = r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("pta: decode result wire: %w", err)
	}
	return w, nil
}
