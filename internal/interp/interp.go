// Package interp is a concrete interpreter for MiniC ASTs. It executes a
// program with a real heap — objects with identity, a freed bit, and cells —
// and records the memory-safety events the static checkers predict:
// use-after-free, double-free, and null dereferences.
//
// Its role in this repository is ground truth: the differential test
// harness (package difftest) enumerates all inputs of small generated
// programs, executes them here, and compares the set of *actually
// triggerable* bugs against the static analysis verdict. The analysis is
// expected to be exact on that restricted program class — every
// divergence is a bug in one of the two.
package interp

import (
	"fmt"

	"repro/internal/minic"
)

// Kind discriminates runtime values.
type Kind uint8

const (
	// KInt is an integer.
	KInt Kind = iota
	// KBool is a boolean.
	KBool
	// KPtr is a pointer to an object cell.
	KPtr
	// KNull is the null pointer.
	KNull
)

// Value is a concrete runtime value.
type Value struct {
	Kind Kind
	Int  int64
	Bool bool
	Obj  *Object
}

// IntV, BoolV, NullV construct values.
func IntV(v int64) Value { return Value{Kind: KInt, Int: v} }
func BoolV(v bool) Value { return Value{Kind: KBool, Bool: v} }
func NullV() Value       { return Value{Kind: KNull} }

// Object is one heap allocation with a default cell plus named field cells
// for struct use (array elements collapse; fields do not).
type Object struct {
	ID     int
	Cell   Value
	Fields map[string]Value
	Freed  bool
	// FreedAt is the statement that freed the object.
	FreedAt minic.Pos
}

func (o *Object) getField(f string) Value {
	if o.Fields == nil {
		return Value{Kind: KInt}
	}
	return o.Fields[f]
}

func (o *Object) setField(f string, v Value) {
	if o.Fields == nil {
		o.Fields = make(map[string]Value)
	}
	o.Fields[f] = v
}

// EventKind classifies recorded memory-safety events.
type EventKind uint8

const (
	// EvUseAfterFree: a freed object's cell was loaded or stored.
	EvUseAfterFree EventKind = iota
	// EvDoubleFree: free of an already-freed object.
	EvDoubleFree
	// EvNullDeref: dereference of null.
	EvNullDeref
)

var eventNames = [...]string{"use-after-free", "double-free", "null-deref"}

func (k EventKind) String() string { return eventNames[k] }

// Event is one recorded memory-safety violation.
type Event struct {
	Kind EventKind
	// At is the statement performing the violating access.
	At minic.Pos
	// FreedAt is the free site (UAF/double-free).
	FreedAt minic.Pos
}

func (e Event) String() string {
	return fmt.Sprintf("%s at %s (freed at %s)", e.Kind, e.At, e.FreedAt)
}

// Result is one execution's outcome.
type Result struct {
	Events []Event
	// Steps counts executed statements (budget accounting).
	Steps int
	// Return is the entry function's return value.
	Return Value
}

// Has reports whether an event of the given kind was recorded.
func (r *Result) Has(kind EventKind) bool {
	for _, e := range r.Events {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

// Options bounds execution.
type Options struct {
	// MaxSteps aborts runaway executions (default 100000).
	MaxSteps int
	// ExternReturn supplies return values for external calls by name;
	// unlisted externals return 0.
	ExternReturn map[string]Value
}

// budgetError distinguishes step exhaustion.
type budgetError struct{}

func (budgetError) Error() string { return "interp: step budget exhausted" }

// IsBudget reports whether err is the step-budget error.
func IsBudget(err error) bool {
	_, ok := err.(budgetError)
	return ok
}

type interp struct {
	prog    *minic.Program
	funcs   map[string]*minic.FuncDecl
	globals map[string]*cell
	res     *Result
	opts    Options
	nextObj int
}

// cell is an addressable storage location (a local, global, or heap cell).
// Address-taken variables and heap cells carry an obj; all reads and writes
// of such cells go through the object so aliases stay coherent. A non-empty
// field selects a struct field cell of the object.
type cell struct {
	v Value
	// obj is set when the cell's storage lives in an Object.
	obj   *Object
	field string
}

func (c *cell) get() Value {
	if c.obj != nil {
		if c.field != "" {
			return c.obj.getField(c.field)
		}
		return c.obj.Cell
	}
	return c.v
}

func (c *cell) set(v Value) {
	if c.obj != nil {
		if c.field != "" {
			c.obj.setField(c.field, v)
			return
		}
		c.obj.Cell = v
		return
	}
	c.v = v
}

// Run executes entry(args...) and returns the recorded events.
func Run(prog *minic.Program, entry string, args []Value, opts Options) (*Result, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 100000
	}
	in := &interp{
		prog:    prog,
		funcs:   make(map[string]*minic.FuncDecl),
		globals: make(map[string]*cell),
		res:     &Result{},
		opts:    opts,
	}
	for _, f := range prog.Funcs() {
		in.funcs[f.Name] = f
	}
	for _, file := range prog.Files {
		for _, g := range file.Globals {
			c := &cell{v: zeroValue(g.Type)}
			in.globals[g.Name] = c
		}
	}
	// Globals with initializers evaluate in an empty scope.
	for _, file := range prog.Files {
		for _, g := range file.Globals {
			if g.Init != nil {
				v, err := in.eval(g.Init, newScope(nil))
				if err != nil {
					return in.res, err
				}
				in.globals[g.Name].v = v
			}
		}
	}
	fn, ok := in.funcs[entry]
	if !ok {
		return in.res, fmt.Errorf("interp: no function %q", entry)
	}
	ret, err := in.call(fn, args)
	if err != nil {
		return in.res, err
	}
	in.res.Return = ret
	return in.res, nil
}

func zeroValue(t minic.Type) Value {
	switch {
	case t.IsPointer():
		return NullV()
	case t.Base == "bool":
		return BoolV(false)
	default:
		return IntV(0)
	}
}

// scope is a lexical environment of cells.
type scope struct {
	parent *scope
	vars   map[string]*cell
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: make(map[string]*cell)}
}

func (s *scope) lookup(name string) (*cell, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if c, ok := cur.vars[name]; ok {
			return c, true
		}
	}
	return nil, false
}

func (in *interp) step(pos minic.Pos) error {
	in.res.Steps++
	if in.res.Steps > in.opts.MaxSteps {
		return budgetError{}
	}
	return nil
}

func (in *interp) call(fn *minic.FuncDecl, args []Value) (Value, error) {
	sc := newScope(nil)
	for i, p := range fn.Params {
		v := zeroValue(p.Type)
		if i < len(args) {
			v = args[i]
		}
		sc.vars[p.Name] = &cell{v: v}
	}
	var ret Value
	err := in.execBlock(fn.Body, sc, &ret)
	if err == errReturn {
		err = nil
	}
	return ret, err
}

// errReturn marks a return statement's unwind.
var errReturn = fmt.Errorf("interp: return")

func (in *interp) execBlock(b *minic.BlockStmt, sc *scope, ret *Value) error {
	inner := newScope(sc)
	for _, st := range b.Stmts {
		if err := in.exec(st, inner, ret); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) exec(st minic.Stmt, sc *scope, ret *Value) error {
	if err := in.step(st.StmtPos()); err != nil {
		return err
	}
	switch s := st.(type) {
	case *minic.BlockStmt:
		return in.execBlock(s, sc, ret)
	case *minic.DeclStmt:
		v := zeroValue(s.Decl.Type)
		if s.Decl.Init != nil {
			iv, err := in.eval(s.Decl.Init, sc)
			if err != nil {
				return err
			}
			v = iv
		}
		sc.vars[s.Decl.Name] = &cell{v: v}
		return nil
	case *minic.AssignStmt:
		return in.assign(s, sc)
	case *minic.IfStmt:
		cv, err := in.eval(s.Cond, sc)
		if err != nil {
			return err
		}
		if truthy(cv) {
			return in.exec(s.Then, newScope(sc), ret)
		}
		if s.Else != nil {
			return in.exec(s.Else, newScope(sc), ret)
		}
		return nil
	case *minic.WhileStmt:
		for {
			cv, err := in.eval(s.Cond, sc)
			if err != nil {
				return err
			}
			if !truthy(cv) {
				return nil
			}
			if err := in.exec(s.Body, newScope(sc), ret); err != nil {
				return err
			}
			if err := in.step(s.Pos); err != nil {
				return err
			}
		}
	case *minic.ReturnStmt:
		if s.Value != nil {
			v, err := in.eval(s.Value, sc)
			if err != nil {
				return err
			}
			*ret = v
		}
		return errReturn
	case *minic.ExprStmt:
		_, err := in.eval(s.X, sc)
		return err
	default:
		return fmt.Errorf("interp: unknown statement %T", st)
	}
}

func truthy(v Value) bool {
	switch v.Kind {
	case KBool:
		return v.Bool
	case KInt:
		return v.Int != 0
	case KPtr:
		return true
	default:
		return false
	}
}

func (in *interp) assign(s *minic.AssignStmt, sc *scope) error {
	v, err := in.eval(s.Value, sc)
	if err != nil {
		return err
	}
	c, err := in.lvalue(s.Target, sc)
	if err != nil {
		return err
	}
	if c == nil {
		return nil // store through null already reported
	}
	c.set(v)
	return nil
}

// lvalue resolves an assignable expression to its cell, recording UAF /
// null-deref events for bad targets (returning nil to skip the store).
func (in *interp) lvalue(e minic.Expr, sc *scope) (*cell, error) {
	switch x := e.(type) {
	case *minic.Ident:
		if c, ok := sc.lookup(x.Name); ok {
			return c, nil
		}
		if c, ok := in.globals[x.Name]; ok {
			return c, nil
		}
		return nil, fmt.Errorf("interp: %s: undefined %q", x.Pos, x.Name)
	case *minic.UnaryExpr:
		if x.Op != "*" {
			return nil, fmt.Errorf("interp: %s: bad assignment target", x.Pos)
		}
		pv, err := in.eval(x.X, sc)
		if err != nil {
			return nil, err
		}
		return in.derefCell(pv, x.Pos), nil
	case *minic.ArrowExpr:
		pv, err := in.eval(x.X, sc)
		if err != nil {
			return nil, err
		}
		c := in.derefCell(pv, x.Pos)
		if c != nil {
			c.field = x.Field
		}
		return c, nil
	}
	return nil, fmt.Errorf("interp: bad assignment target %T", e)
}

// derefCell checks a pointer value and returns its target cell (nil after
// recording a violation).
func (in *interp) derefCell(pv Value, at minic.Pos) *cell {
	switch pv.Kind {
	case KNull:
		in.res.Events = append(in.res.Events, Event{Kind: EvNullDeref, At: at})
		return nil
	case KPtr:
		if pv.Obj.Freed {
			in.res.Events = append(in.res.Events, Event{
				Kind: EvUseAfterFree, At: at, FreedAt: pv.Obj.FreedAt,
			})
			// Keep executing: the dangling cell still exists.
		}
		return &cell{v: pv.Obj.Cell, obj: pv.Obj}
	default:
		// Dereferencing a non-pointer: treat as null-like.
		in.res.Events = append(in.res.Events, Event{Kind: EvNullDeref, At: at})
		return nil
	}
}

func (in *interp) eval(e minic.Expr, sc *scope) (Value, error) {
	switch x := e.(type) {
	case *minic.IntLit:
		return IntV(x.Val), nil
	case *minic.BoolLit:
		return BoolV(x.Val), nil
	case *minic.NullLit:
		return NullV(), nil
	case *minic.Ident:
		if c, ok := sc.lookup(x.Name); ok {
			return c.get(), nil
		}
		if c, ok := in.globals[x.Name]; ok {
			return c.get(), nil
		}
		return Value{}, fmt.Errorf("interp: %s: undefined %q", x.Pos, x.Name)
	case *minic.ArrowExpr:
		c, err := in.lvalue(x, sc)
		if err != nil {
			return Value{}, err
		}
		if c == nil {
			return IntV(0), nil
		}
		return c.get(), nil
	case *minic.UnaryExpr:
		return in.evalUnary(x, sc)
	case *minic.BinaryExpr:
		return in.evalBinary(x, sc)
	case *minic.CallExpr:
		return in.evalCall(x, sc)
	default:
		return Value{}, fmt.Errorf("interp: unknown expression %T", e)
	}
}

func (in *interp) evalUnary(x *minic.UnaryExpr, sc *scope) (Value, error) {
	switch x.Op {
	case "*":
		pv, err := in.eval(x.X, sc)
		if err != nil {
			return Value{}, err
		}
		c := in.derefCell(pv, x.Pos)
		if c == nil {
			return IntV(0), nil
		}
		return c.get(), nil
	case "&":
		id, ok := x.X.(*minic.Ident)
		if !ok {
			return Value{}, fmt.Errorf("interp: %s: '&' needs a variable", x.Pos)
		}
		// Address-of is modeled by boxing the variable into an object
		// whose cell shadows it. For the differential-test grammar,
		// address-of is not generated, so a faithful-enough model
		// suffices: create a pseudo object aliased to the cell.
		c, okc := sc.lookup(id.Name)
		if !okc {
			if g, okg := in.globals[id.Name]; okg {
				c = g
			} else {
				return Value{}, fmt.Errorf("interp: %s: undefined %q", x.Pos, id.Name)
			}
		}
		if c.obj == nil {
			// Box the variable: from now on all accesses to the cell go
			// through the object, so pointer aliases stay coherent.
			in.nextObj++
			c.obj = &Object{ID: in.nextObj, Cell: c.v}
		}
		return Value{Kind: KPtr, Obj: c.obj}, nil
	case "-":
		v, err := in.eval(x.X, sc)
		if err != nil {
			return Value{}, err
		}
		return IntV(-v.Int), nil
	case "!":
		v, err := in.eval(x.X, sc)
		if err != nil {
			return Value{}, err
		}
		return BoolV(!truthy(v)), nil
	}
	return Value{}, fmt.Errorf("interp: unary %q", x.Op)
}

func (in *interp) evalBinary(x *minic.BinaryExpr, sc *scope) (Value, error) {
	if x.Op == "&&" || x.Op == "||" {
		l, err := in.eval(x.X, sc)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "&&" && !truthy(l) {
			return BoolV(false), nil
		}
		if x.Op == "||" && truthy(l) {
			return BoolV(true), nil
		}
		r, err := in.eval(x.Y, sc)
		if err != nil {
			return Value{}, err
		}
		return BoolV(truthy(r)), nil
	}
	l, err := in.eval(x.X, sc)
	if err != nil {
		return Value{}, err
	}
	r, err := in.eval(x.Y, sc)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "+":
		return IntV(l.Int + r.Int), nil
	case "-":
		return IntV(l.Int - r.Int), nil
	case "*":
		return IntV(l.Int * r.Int), nil
	case "/":
		if r.Int == 0 {
			return IntV(0), nil
		}
		return IntV(l.Int / r.Int), nil
	case "%":
		if r.Int == 0 {
			return IntV(0), nil
		}
		return IntV(l.Int % r.Int), nil
	case "==":
		return BoolV(equalValues(l, r)), nil
	case "!=":
		return BoolV(!equalValues(l, r)), nil
	case "<":
		return BoolV(l.Int < r.Int), nil
	case "<=":
		return BoolV(l.Int <= r.Int), nil
	case ">":
		return BoolV(l.Int > r.Int), nil
	case ">=":
		return BoolV(l.Int >= r.Int), nil
	}
	return Value{}, fmt.Errorf("interp: binary %q", x.Op)
}

func equalValues(l, r Value) bool {
	if l.Kind == KPtr || r.Kind == KPtr {
		return l.Kind == r.Kind && l.Obj == r.Obj
	}
	if l.Kind == KNull || r.Kind == KNull {
		return l.Kind == r.Kind
	}
	if l.Kind == KBool && r.Kind == KBool {
		return l.Bool == r.Bool
	}
	return l.Int == r.Int
}

func (in *interp) evalCall(x *minic.CallExpr, sc *scope) (Value, error) {
	switch x.Fun {
	case "malloc":
		in.nextObj++
		return Value{Kind: KPtr, Obj: &Object{ID: in.nextObj}}, nil
	case "free":
		pv, err := in.eval(x.Args[0], sc)
		if err != nil {
			return Value{}, err
		}
		if pv.Kind == KPtr {
			if pv.Obj.Freed {
				in.res.Events = append(in.res.Events, Event{
					Kind: EvDoubleFree, At: x.Pos, FreedAt: pv.Obj.FreedAt,
				})
			} else {
				pv.Obj.Freed = true
				pv.Obj.FreedAt = x.Pos
			}
		}
		return pv, nil
	}
	var args []Value
	for _, a := range x.Args {
		v, err := in.eval(a, sc)
		if err != nil {
			return Value{}, err
		}
		args = append(args, v)
	}
	fn, ok := in.funcs[x.Fun]
	if !ok {
		// External: configured return or zero.
		if v, okr := in.opts.ExternReturn[x.Fun]; okr {
			return v, nil
		}
		return IntV(0), nil
	}
	v, err := in.call(fn, args)
	if err == errReturn {
		err = nil
	}
	return v, err
}
