package interp

import (
	"testing"

	"repro/internal/minic"
)

func run(t *testing.T, src, entry string, args ...Value) *Result {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(prog, entry, args, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestArithmeticAndReturn(t *testing.T) {
	res := run(t, `
int f(int a, int b) {
	int s = a * 3 + b;
	if (s > 10) { s = s - 1; }
	return s;
}`, "f", IntV(4), IntV(2))
	if res.Return.Int != 13 {
		t.Fatalf("return = %v, want 13", res.Return)
	}
	if len(res.Events) != 0 {
		t.Fatalf("events = %v", res.Events)
	}
}

func TestWhileLoopConcrete(t *testing.T) {
	res := run(t, `
int sum(int n) {
	int s = 0;
	while (n > 0) {
		s = s + n;
		n = n - 1;
	}
	return s;
}`, "sum", IntV(5))
	if res.Return.Int != 15 {
		t.Fatalf("sum(5) = %v", res.Return)
	}
}

func TestHeapAndAliasing(t *testing.T) {
	res := run(t, `
int f() {
	int *p = malloc();
	*p = 7;
	int *q = p;
	*q = 9;
	return *p;
}`, "f")
	if res.Return.Int != 9 {
		t.Fatalf("aliased store lost: %v", res.Return)
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	res := run(t, `
int f() {
	int *p = malloc();
	*p = 1;
	free(p);
	return *p;
}`, "f")
	if !res.Has(EvUseAfterFree) {
		t.Fatalf("UAF not recorded: %v", res.Events)
	}
}

func TestUseBeforeFreeClean(t *testing.T) {
	res := run(t, `
int f() {
	int *p = malloc();
	*p = 1;
	int v = *p;
	free(p);
	return v;
}`, "f")
	if len(res.Events) != 0 {
		t.Fatalf("spurious events: %v", res.Events)
	}
}

func TestDoubleFree(t *testing.T) {
	res := run(t, `
void f() {
	int *p = malloc();
	free(p);
	free(p);
}`, "f")
	if !res.Has(EvDoubleFree) {
		t.Fatalf("double free not recorded: %v", res.Events)
	}
}

func TestNullDeref(t *testing.T) {
	res := run(t, `
int f() {
	int *p = null;
	return *p;
}`, "f")
	if !res.Has(EvNullDeref) {
		t.Fatalf("null deref not recorded: %v", res.Events)
	}
}

func TestConditionalPathsRespectInputs(t *testing.T) {
	src := `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); }
	if (!c) { int v = *p; keep(v); }
}`
	// c=true: free but no use. c=false: use but no free. Never both.
	for _, c := range []bool{true, false} {
		res := run(t, src, "f", BoolV(c))
		if res.Has(EvUseAfterFree) {
			t.Fatalf("c=%v: spurious UAF", c)
		}
	}
	src2 := `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); }
	if (c) { int v = *p; keep(v); }
}`
	res := run(t, src2, "f", BoolV(true))
	if !res.Has(EvUseAfterFree) {
		t.Fatal("correlated UAF missed")
	}
}

func TestInterproceduralFree(t *testing.T) {
	res := run(t, `
void release(int *x) { free(x); }
int f() {
	int *p = malloc();
	release(p);
	return *p;
}`, "f")
	if !res.Has(EvUseAfterFree) {
		t.Fatalf("cross-function UAF missed: %v", res.Events)
	}
}

func TestGlobals(t *testing.T) {
	res := run(t, `
int g;
int f() {
	g = 5;
	int x = g + 1;
	return x;
}`, "f")
	if res.Return.Int != 6 {
		t.Fatalf("global handling broken: %v", res.Return)
	}
}

func TestAddressTaken(t *testing.T) {
	res := run(t, `
int f() {
	int x = 1;
	int *p = &x;
	*p = 42;
	return x;
}`, "f")
	if res.Return.Int != 42 {
		t.Fatalf("address-of aliasing broken: %v", res.Return)
	}
}

func TestHeapIndirection(t *testing.T) {
	res := run(t, `
int f() {
	int *obj = malloc();
	*obj = 3;
	int **slot = malloc();
	*slot = obj;
	int *back = *slot;
	return *back;
}`, "f")
	if res.Return.Int != 3 {
		t.Fatalf("double indirection broken: %v", res.Return)
	}
}

func TestExternReturn(t *testing.T) {
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: `
int f() { return query(); }`}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, "f", nil, Options{ExternReturn: map[string]Value{"query": IntV(99)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Return.Int != 99 {
		t.Fatalf("extern return = %v", res.Return)
	}
}

func TestStepBudget(t *testing.T) {
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: `
void f() {
	int i = 0;
	while (i < 1000000) { i = i + 1; }
}`}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(prog, "f", nil, Options{MaxSteps: 100})
	if !IsBudget(err) {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not evaluate when the left is false:
	// otherwise the null deref fires.
	res := run(t, `
bool f(int *p) {
	return p != null && *p > 0;
}`, "f", NullV())
	if res.Has(EvNullDeref) {
		t.Fatalf("short-circuit broken: %v", res.Events)
	}
	if res.Return.Bool {
		t.Fatal("wrong result")
	}
}

func TestArithmeticOperators(t *testing.T) {
	res := run(t, `
int f(int a, int b) {
	int q = a / b;
	int r = a % b;
	int m = -a;
	int z = a / 0;
	int w = a % 0;
	return q * 100 + r * 10 + m + z + w;
}`, "f", IntV(7), IntV(2))
	// 3*100 + 1*10 + (-7) + 0 + 0 = 303.
	if res.Return.Int != 303 {
		t.Fatalf("got %v", res.Return)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	res := run(t, `
bool f(int a, int b) {
	bool x = a < b;
	bool y = a <= b;
	bool z = a > b;
	bool w = a >= b;
	bool e = a == b;
	bool n = a != b;
	return x && y && !z && !w && !e && n || false;
}`, "f", IntV(1), IntV(2))
	if !res.Return.Bool {
		t.Fatalf("got %v", res.Return)
	}
}

func TestGlobalInitializer(t *testing.T) {
	res := run(t, `
int g = 40;
int f() { return g + 2; }`, "f")
	if res.Return.Int != 42 {
		t.Fatalf("got %v", res.Return)
	}
}

func TestPointerEquality(t *testing.T) {
	res := run(t, `
bool f() {
	int *a = malloc();
	int *b = malloc();
	int *c = a;
	return a == c && a != b && b != null;
}`, "f")
	if !res.Return.Bool {
		t.Fatalf("got %v", res.Return)
	}
}

func TestForLoopInterp(t *testing.T) {
	res := run(t, `
int f(int n) {
	int s = 0;
	for (int i = 1; i <= n; i = i + 1) {
		s = s + i;
	}
	return s;
}`, "f", IntV(10))
	if res.Return.Int != 55 {
		t.Fatalf("got %v", res.Return)
	}
}

func TestMissingEntry(t *testing.T) {
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t", Src: "void f() { }"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, "nope", nil, Options{}); err == nil {
		t.Fatal("missing entry accepted")
	}
}

func TestEventString(t *testing.T) {
	res := run(t, `
void f() {
	int *p = malloc();
	free(p);
	int v = *p;
	keep(v);
}`, "f")
	if len(res.Events) == 0 || res.Events[0].String() == "" {
		t.Fatal("event rendering broken")
	}
}

func TestStructFields(t *testing.T) {
	res := run(t, `
struct Point { int x; int y; };
int f() {
	struct Point *p = malloc();
	p->x = 3;
	p->y = 4;
	return p->x * 10 + p->y;
}`, "f")
	if res.Return.Int != 34 {
		t.Fatalf("got %v", res.Return)
	}
}

func TestStructFieldPointerUAF(t *testing.T) {
	res := run(t, `
struct Node { int *data; };
void f() {
	struct Node *n = malloc();
	int *d = malloc();
	n->data = d;
	free(d);
	int *back = n->data;
	int v = *back;
	keep(v);
}`, "f")
	if !res.Has(EvUseAfterFree) {
		t.Fatalf("struct-routed UAF missed: %v", res.Events)
	}
}

func TestStructFreedBaseAccess(t *testing.T) {
	res := run(t, `
struct Box { int v; };
int f() {
	struct Box *b = malloc();
	b->v = 9;
	free(b);
	return b->v;
}`, "f")
	if !res.Has(EvUseAfterFree) {
		t.Fatalf("freed-base field access missed: %v", res.Events)
	}
}

func TestStructFieldsIndependent(t *testing.T) {
	res := run(t, `
struct Pair { int a; int b; };
int f() {
	struct Pair *p = malloc();
	p->a = 1;
	p->b = 2;
	p->a = 10;
	return p->a + p->b;
}`, "f")
	if res.Return.Int != 12 {
		t.Fatalf("fields not independent: %v", res.Return)
	}
}
