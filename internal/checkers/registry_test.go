package checkers

import "testing"

func TestRegistryAll(t *testing.T) {
	all := All()
	if len(all) != len(Names()) {
		t.Fatalf("All returned %d specs, Names %d", len(all), len(Names()))
	}
	seen := map[string]bool{}
	for i, sp := range all {
		if sp.Name != Names()[i] {
			t.Errorf("All()[%d].Name = %q, Names()[%d] = %q", i, sp.Name, i, Names()[i])
		}
		if seen[sp.Name] {
			t.Errorf("duplicate checker name %q", sp.Name)
		}
		seen[sp.Name] = true
		if sp.Kind == KindSourceSink && sp.LocalSources == nil {
			t.Errorf("%s: source–sink checker without LocalSources", sp.Name)
		}
	}
	if !seen["memory-leak"] {
		t.Error("memory-leak missing from registry")
	}
}

func TestRegistryByName(t *testing.T) {
	for _, name := range Names() {
		sp, ok := ByName(name)
		if !ok || sp.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, sp, ok)
		}
	}
	// CLI alias.
	sp, ok := ByName("uaf")
	if !ok || sp.Name != "use-after-free" {
		t.Errorf("ByName(uaf) = %v, %v", sp, ok)
	}
	if _, ok := ByName("no-such-checker"); ok {
		t.Error("ByName accepted an unknown name")
	}
	if lk, ok := ByName("memory-leak"); !ok || lk.Kind != KindUnreleased {
		t.Errorf("memory-leak spec = %+v, %v; want KindUnreleased", lk, ok)
	}
	// Fresh specs each call: mutating one must not leak into the next.
	a, _ := ByName("path-traversal")
	a.SanitizerCalls = map[string]bool{"x": true}
	b, _ := ByName("path-traversal")
	if b.SanitizerCalls != nil {
		t.Error("ByName returned a shared spec instance")
	}
}
