package checkers

// The checker registry: one place that knows every detector, so frontends
// (cmd/pinpoint, benchmarks, examples) select checkers by name instead of
// hard-coding factory maps and special cases.

// registry lists every checker factory with its canonical name and the CLI
// aliases it answers to. Order is the canonical enumeration order of All.
var registry = []struct {
	name    string
	aliases []string
	make    func() *Spec
}{
	{name: "use-after-free", aliases: []string{"uaf"}, make: UseAfterFree},
	{name: "double-free", make: DoubleFree},
	{name: "path-traversal", make: PathTraversal},
	{name: "data-transmission", make: DataTransmission},
	{name: "null-deref", make: NullDeref},
	{name: "memory-leak", make: MemoryLeak},
}

// All returns a fresh spec for every registered checker, in a fixed order.
func All() []*Spec {
	out := make([]*Spec, len(registry))
	for i, e := range registry {
		out[i] = e.make()
	}
	return out
}

// ByName returns a fresh spec for the checker with the given canonical name
// or alias. The second result is false for unknown names.
func ByName(name string) (*Spec, bool) {
	for _, e := range registry {
		if e.name == name {
			return e.make(), true
		}
		for _, a := range e.aliases {
			if a == name {
				return e.make(), true
			}
		}
	}
	return nil, false
}

// Names returns the canonical checker names in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}
