// Package checkers defines the source–sink specifications of the bug
// detectors built on the Pinpoint engine (§4.1): use-after-free,
// double-free, and the two taint checkers evaluated in the paper
// (path-traversal and data-transmission vulnerabilities), plus a
// null-dereference checker as an extension.
//
// A checker is purely declarative: it names the SEG vertices that originate
// a dangerous value (sources), the vertices that consume one (sinks), and a
// few policy bits (whether sinks must execute after the source; whether the
// tracked value should be widened backward to its allocation roots so
// aliases of the freed object are covered). The demand-driven engine in
// package detect interprets the spec.
package checkers

import (
	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/seg"
)

// Source is a dangerous-value origin.
type Source struct {
	// Val is the tracked SSA value.
	Val *ir.Value
	// At is the instruction after which the value is dangerous (the free
	// for UAF; the defining call for taint).
	At *ir.Instr
	// Cond is the condition under which the source fires (the control
	// dependence of At), in the function-local condition domain.
	Cond *cond.Cond
}

// Kind discriminates how the detection engine interprets a spec.
type Kind uint8

const (
	// KindSourceSink is the standard must-not-flow property: a value from
	// a source vertex must not reach a sink vertex. The zero value, so
	// plain source–sink specs need not set it.
	KindSourceSink Kind = iota
	// KindUnreleased is the dual "absence of a flow" property (memory
	// leaks): an allocation must reach a release on every feasible path.
	// Specs of this kind carry no LocalSources/IsSink; the engine runs
	// its unreleased-resource checker instead.
	//
	// The registry dispatches on Kind rather than attaching a Run closure
	// to each entry: a closure would need the detect package's Program
	// and Options types, and detect already imports checkers.
	KindUnreleased
)

// Spec is a checker definition.
type Spec struct {
	// Name identifies the checker in reports.
	Name string
	// Kind selects the engine interpretation (source–sink by default).
	Kind Kind
	// LocalSources extracts the sources of one function's SEG.
	LocalSources func(g *seg.Graph) []Source
	// IsSink reports whether a use vertex consumes the dangerous value.
	// The source's originating instruction is provided so checkers can
	// exclude it (a free is not its own sink).
	IsSink func(g *seg.Graph, n *seg.Node, sourceAt *ir.Instr) bool
	// OrderingRequired demands the sink execute after the source (UAF
	// semantics); taint flows are ordered by data dependence already.
	OrderingRequired bool
	// WidenToRoots walks backward from the source value to its
	// allocation roots before searching forward, so sibling aliases of
	// the freed object are tracked too.
	WidenToRoots bool
	// SourceCalls maps external callee names to the fact that their
	// return value is a source (taint checkers).
	SourceCalls map[string]bool
	// SinkCalls maps external callee names to the argument positions
	// that are sinks (-1 = every argument).
	SinkCalls map[string]int
	// PropagateCalls are external callees whose return value carries the
	// taint of their arguments (str_copy-style transfer functions).
	PropagateCalls map[string]bool
	// SanitizerCalls are external predicates that, when guarding a sink,
	// neutralize the flow: a candidate whose sink is control-dependent on
	// a sanitizer call over the tainted value is suppressed. The paper's
	// checkers deliberately leave this empty (§4.1, §5.3) and count the
	// resulting reports as false positives; WithSanitizers opts in.
	SanitizerCalls map[string]bool
}

// WithSanitizers returns a copy of the spec with sanitizer modeling
// enabled — the extension the paper defers. The FP rate of the taint
// checkers drops accordingly (see the sanitizer test and bench).
func (s *Spec) WithSanitizers(names ...string) *Spec {
	out := *s
	out.SanitizerCalls = make(map[string]bool, len(names))
	for _, n := range names {
		out.SanitizerCalls[n] = true
	}
	return &out
}

// freeSources extracts free-instruction sources (shared by UAF and
// double-free).
func freeSources(g *seg.Graph) []Source {
	var out []Source
	for _, n := range g.ByRole[seg.RoleFreeArg] {
		out = append(out, Source{
			Val:  n.Val,
			At:   n.Instr,
			Cond: g.CD(n.Instr),
		})
	}
	return out
}

// UseAfterFree reports dereferences (and re-frees) of freed values; this is
// the checker of the paper's headline experiment (§5.1, Table 1).
func UseAfterFree() *Spec {
	return &Spec{
		Name:         "use-after-free",
		LocalSources: freeSources,
		IsSink: func(g *seg.Graph, n *seg.Node, sourceAt *ir.Instr) bool {
			if n.Instr == sourceAt || n.Instr.Synthetic {
				return false
			}
			return n.Role == seg.RoleDerefAddr || n.Role == seg.RoleFreeArg
		},
		OrderingRequired: true,
		WidenToRoots:     true,
	}
}

// DoubleFree restricts the UAF sinks to second frees.
func DoubleFree() *Spec {
	return &Spec{
		Name:         "double-free",
		LocalSources: freeSources,
		IsSink: func(g *seg.Graph, n *seg.Node, sourceAt *ir.Instr) bool {
			return n.Role == seg.RoleFreeArg && n.Instr != sourceAt
		},
		OrderingRequired: true,
		WidenToRoots:     true,
	}
}

// taintSources extracts receivers of source calls.
func taintSources(names map[string]bool) func(g *seg.Graph) []Source {
	return func(g *seg.Graph) []Source {
		var out []Source
		for _, b := range g.Fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall || !names[in.Callee] {
					continue
				}
				if len(in.Dsts) == 0 || in.Dsts[0] == nil {
					continue
				}
				out = append(out, Source{Val: in.Dsts[0], At: in, Cond: g.CD(in)})
			}
		}
		return out
	}
}

// callArgSink builds an IsSink predicate from a callee→argument map.
func callArgSink(sinks map[string]int) func(g *seg.Graph, n *seg.Node, sourceAt *ir.Instr) bool {
	return func(g *seg.Graph, n *seg.Node, sourceAt *ir.Instr) bool {
		if n.Role != seg.RoleCallArg {
			return false
		}
		pos, ok := sinks[n.Instr.Callee]
		if !ok {
			return false
		}
		return pos < 0 || pos == n.ArgIdx
	}
}

// PathTraversal models CWE-23: user-controlled input reaching a file-path
// operation (§4.1). Sanitizers are deliberately not modeled, matching the
// paper's taint checkers.
func PathTraversal() *Spec {
	sources := map[string]bool{
		"user_input": true, "read_line": true, "fgetc": true, "recv_str": true,
	}
	sinks := map[string]int{
		"open_file": 0, "fopen_path": 0, "remove_file": 0, "exec_path": 0,
	}
	return &Spec{
		Name:         "path-traversal",
		LocalSources: taintSources(sources),
		IsSink:       callArgSink(sinks),
		SourceCalls:  sources,
		SinkCalls:    sinks,
		PropagateCalls: map[string]bool{
			"str_copy": true, "str_cat": true, "to_path": true,
		},
	}
}

// DataTransmission models CWE-402: sensitive data leaking to a network
// transmission sink (§4.1).
func DataTransmission() *Spec {
	sources := map[string]bool{
		"getpass": true, "read_secret": true, "load_key": true,
	}
	sinks := map[string]int{
		"send_data": 0, "sendto_net": 0, "write_socket": 0, "log_remote": 0,
	}
	return &Spec{
		Name:         "data-transmission",
		LocalSources: taintSources(sources),
		IsSink:       callArgSink(sinks),
		SourceCalls:  sources,
		SinkCalls:    sinks,
		PropagateCalls: map[string]bool{
			"str_copy": true, "str_cat": true, "encode_buf": true,
		},
	}
}

// MemoryLeak reports allocations that fail to reach a free on some feasible
// path (Fastcheck/Saber-style, cited in §1 of the paper). It is the one
// non-source–sink checker: the engine dispatches on Kind and runs the
// path-sensitive unreleased-resource analysis of package detect.
func MemoryLeak() *Spec {
	return &Spec{
		Name: "memory-leak",
		Kind: KindUnreleased,
	}
}

// NullDeref reports dereferences of values that may be null — an extension
// checker demonstrating the framework's generality beyond the paper's
// evaluation.
func NullDeref() *Spec {
	return &Spec{
		Name: "null-deref",
		LocalSources: func(g *seg.Graph) []Source {
			var out []Source
			seen := map[*ir.Value]bool{}
			for _, b := range g.Fn.Blocks {
				for _, in := range b.Instrs {
					for _, a := range in.Args {
						if a.Kind == ir.VConstNull && !seen[a] {
							seen[a] = true
							out = append(out, Source{Val: a, At: in, Cond: g.Info.Conds.True()})
						}
					}
				}
			}
			return out
		},
		IsSink: func(g *seg.Graph, n *seg.Node, sourceAt *ir.Instr) bool {
			return n.Role == seg.RoleDerefAddr && !n.Instr.Synthetic
		},
	}
}
