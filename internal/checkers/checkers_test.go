package checkers

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/modref"
	"repro/internal/pta"
	"repro/internal/seg"
	"repro/internal/ssa"
	"repro/internal/transform"
)

func buildGraphs(t *testing.T, src string) map[string]*seg.Graph {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatal(err)
	}
	infos := map[*ir.Func]*ssa.Info{}
	for _, f := range m.Funcs {
		inf, err := ssa.Transform(f)
		if err != nil {
			t.Fatal(err)
		}
		infos[f] = inf
	}
	if err := transform.Apply(m, modref.Analyze(m)); err != nil {
		t.Fatal(err)
	}
	out := map[string]*seg.Graph{}
	for _, f := range m.Funcs {
		pr, err := pta.Analyze(f, infos[f], pta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out[f.Name] = seg.Build(f, infos[f], pr)
	}
	return out
}

func TestUAFSources(t *testing.T) {
	gs := buildGraphs(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); }
}`)
	spec := UseAfterFree()
	srcs := spec.LocalSources(gs["f"])
	if len(srcs) != 1 {
		t.Fatalf("sources = %d, want 1", len(srcs))
	}
	if srcs[0].Cond.IsTrue() {
		t.Error("conditional free has trivial source condition")
	}
	if !spec.OrderingRequired || !spec.WidenToRoots {
		t.Error("UAF policy bits wrong")
	}
}

func TestUAFSinkPredicate(t *testing.T) {
	gs := buildGraphs(t, `
void f() {
	int *p = malloc();
	free(p);
	int v = *p;
	free(p);
}`)
	g := gs["f"]
	spec := UseAfterFree()
	srcs := spec.LocalSources(g)
	if len(srcs) != 2 {
		t.Fatalf("sources = %d", len(srcs))
	}
	first := srcs[0].At
	derefs := g.ByRole[seg.RoleDerefAddr]
	if len(derefs) == 0 {
		t.Fatal("no deref uses")
	}
	if !spec.IsSink(g, derefs[0], first) {
		t.Error("deref not a sink")
	}
	frees := g.ByRole[seg.RoleFreeArg]
	// A free is not its own sink but is a sink for the other free.
	for _, fn := range frees {
		if fn.Instr == first && spec.IsSink(g, fn, first) {
			t.Error("free counted as its own sink")
		}
		if fn.Instr != first && !spec.IsSink(g, fn, first) {
			t.Error("second free not a sink")
		}
	}
}

func TestDoubleFreeSinkOnlyFrees(t *testing.T) {
	gs := buildGraphs(t, `
void f() {
	int *p = malloc();
	free(p);
	int v = *p;
}`)
	g := gs["f"]
	spec := DoubleFree()
	srcs := spec.LocalSources(g)
	derefs := g.ByRole[seg.RoleDerefAddr]
	if spec.IsSink(g, derefs[0], srcs[0].At) {
		t.Error("double-free checker treats deref as sink")
	}
}

func TestTaintSourcesAndSinks(t *testing.T) {
	gs := buildGraphs(t, `
void f() {
	int *x = user_input();
	open_file(x);
	harmless(x);
}`)
	g := gs["f"]
	spec := PathTraversal()
	srcs := spec.LocalSources(g)
	if len(srcs) != 1 {
		t.Fatalf("taint sources = %d", len(srcs))
	}
	sinks := 0
	for _, n := range g.ByRole[seg.RoleCallArg] {
		if spec.IsSink(g, n, nil) {
			sinks++
		}
	}
	if sinks != 1 {
		t.Fatalf("taint sinks = %d, want 1 (open_file only)", sinks)
	}
}

func TestDataTransmissionSpec(t *testing.T) {
	spec := DataTransmission()
	if !spec.SourceCalls["getpass"] || spec.SinkCalls["send_data"] != 0 {
		t.Error("registry wrong")
	}
	if spec.OrderingRequired {
		t.Error("taint should not require ordering")
	}
}

func TestNullDerefSources(t *testing.T) {
	gs := buildGraphs(t, `
void f() {
	int *p = null;
	int v = *p;
}`)
	spec := NullDeref()
	srcs := spec.LocalSources(gs["f"])
	if len(srcs) != 1 {
		t.Fatalf("null sources = %d", len(srcs))
	}
	if srcs[0].Val.Kind != ir.VConstNull {
		t.Error("source is not the null constant")
	}
}

func TestSyntheticSinksExcluded(t *testing.T) {
	// The call-site glue loads inserted by the transformation are
	// synthetic and must not be sinks.
	gs := buildGraphs(t, `
void callee(int *q) { int v = *q; }
void f(int *p) { callee(p); }`)
	g := gs["f"]
	spec := UseAfterFree()
	for _, n := range g.ByRole[seg.RoleDerefAddr] {
		if n.Instr.Synthetic && spec.IsSink(g, n, nil) {
			t.Error("synthetic deref counted as sink")
		}
	}
}
