package vfg

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/pta"
	"repro/internal/ssa"
)

func buildModule(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Funcs {
		if _, err := ssa.Transform(f); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestBuildMemoryEdges(t *testing.T) {
	m := buildModule(t, `
void f() {
	int *p = malloc();
	*p = 7;
	int x = *p;
	use(x);
}`)
	g, err := Build(m, pta.Andersen(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty graph")
	}
	// The stored constant reaches the load destination.
	f := m.ByName["f"]
	var storedVal, loadDst *ir.Value
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				storedVal = in.Args[1]
			case ir.OpLoad:
				loadDst = in.Dst
			}
		}
	}
	found := false
	for _, to := range g.Succs(storedVal) {
		if to == loadDst {
			found = true
		}
	}
	if !found {
		t.Fatal("store->load memory edge missing")
	}
}

func TestCrossFunctionBlowup(t *testing.T) {
	// Two functions share a global slot: flow-insensitive points-to
	// cross-connects their stores and loads (2 stores x 2 loads).
	m := buildModule(t, `
int *slot_g;
int f1(int x) { int *p = malloc(); slot_g = p; int *q = slot_g; return *q; }
int f2(int x) { int *p = malloc(); slot_g = p; int *q = slot_g; return *q; }`)
	g, err := Build(m, pta.Andersen(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each function's store feeds BOTH functions' loads: the spurious
	// cross edges are the point of the baseline.
	crossEdges := 0
	for _, f := range m.Funcs {
		var stored *ir.Value
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStore && in.Args[1].Type.IsPointer() {
					stored = in.Args[1]
				}
			}
		}
		if stored == nil {
			continue
		}
		for _, to := range g.Succs(stored) {
			if to.Def != nil && to.Def.Block.Fn != f {
				crossEdges++
			}
		}
	}
	if crossEdges == 0 {
		t.Fatal("no spurious cross-function memory edges — the baseline is too precise")
	}
}

func TestEdgeBudget(t *testing.T) {
	m := buildModule(t, `
void f() {
	int *p = malloc();
	*p = 1;
	int a = *p;
	int b = *p;
	use(a); use(b);
}`)
	_, err := Build(m, pta.Andersen(m), Options{MaxEdges: 1})
	if err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestReachableDerefsAndBudget(t *testing.T) {
	m := buildModule(t, `
void f() {
	int *p = malloc();
	free(p);
	int v = *p;
	use(v);
}`)
	g, err := Build(m, pta.Andersen(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Frees) != 1 {
		t.Fatalf("frees = %d", len(g.Frees))
	}
	sinks := g.ReachableDerefs(g.Frees[0].Args[0], g.Frees[0], nil)
	if len(sinks) == 0 {
		t.Fatal("no reachable deref")
	}
	// Budget zero: traversal yields nothing.
	var zero int64
	if got := g.ReachableDerefs(g.Frees[0].Args[0], g.Frees[0], &zero); len(got) != 0 {
		t.Fatalf("budget ignored: %v", got)
	}
}

func TestNoOrderingNoConditions(t *testing.T) {
	// Use-before-free: the baseline reports it anyway (its defining
	// imprecision).
	m := buildModule(t, `
void f() {
	int *p = malloc();
	int v = *p;
	use(v);
	free(p);
}`)
	g, err := Build(m, pta.Andersen(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sinks := g.ReachableDerefs(g.Frees[0].Args[0], g.Frees[0], nil)
	if len(sinks) == 0 {
		t.Fatal("orderless baseline unexpectedly silent")
	}
}
