// Package vfg builds the full sparse value-flow graph (FSVFG) of the
// "layered" baseline (SVF, paper §5.1): a whole-program value-flow graph
// whose memory edges come from a global flow- and context-insensitive
// Andersen points-to analysis.
//
// Every store to a location is connected to every load from an aliased
// location, program-wide and unconditionally — the construction that blows
// up on imprecise points-to results. The node and edge counts are the
// "memory cost" the baseline pays in Figures 7–9; Build enforces an edge
// budget so the harness can report timeouts the way the paper does.
package vfg

import (
	"errors"

	"repro/internal/ir"
	"repro/internal/pta"
)

// ErrBudget is returned when the graph exceeds the construction budget —
// the analogue of the paper's 12-hour timeout.
var ErrBudget = errors.New("vfg: edge budget exhausted")

// Graph is the whole-program FSVFG. Nodes are SSA values; edges are value
// flows (direct def-use and store→load through may-aliased memory).
type Graph struct {
	Module *ir.Module
	PTS    *pta.AndersenResult

	succ map[*ir.Value][]*ir.Value
	// Derefs maps each value to the load/store instructions that
	// dereference it (the UAF sinks of the baseline checker).
	Derefs map[*ir.Value][]*ir.Instr
	// Frees lists all free instructions.
	Frees []*ir.Instr

	nodes map[*ir.Value]bool
	edges int
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Succs returns the successors of a value node.
func (g *Graph) Succs(v *ir.Value) []*ir.Value { return g.succ[v] }

// Options bounds construction cost.
type Options struct {
	// MaxEdges aborts construction when exceeded (0 = unlimited).
	MaxEdges int
}

// Build constructs the FSVFG from a module and its Andersen result.
func Build(m *ir.Module, pts *pta.AndersenResult, opts Options) (*Graph, error) {
	g := &Graph{
		Module: m,
		PTS:    pts,
		succ:   make(map[*ir.Value][]*ir.Value),
		Derefs: make(map[*ir.Value][]*ir.Instr),
		nodes:  make(map[*ir.Value]bool),
	}
	addEdge := func(from, to *ir.Value) error {
		g.nodes[from] = true
		g.nodes[to] = true
		g.succ[from] = append(g.succ[from], to)
		g.edges++
		if opts.MaxEdges > 0 && g.edges > opts.MaxEdges {
			return ErrBudget
		}
		return nil
	}

	// Index stores and loads by location.
	storesByLoc := make(map[pta.Loc][]*ir.Value) // stored values
	loadsByLoc := make(map[pta.Loc][]*ir.Value)  // load destinations

	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpCopy, ir.OpUn:
					if err := addEdge(in.Args[0], in.Dst); err != nil {
						return g, err
					}
				case ir.OpBin:
					for _, a := range in.Args {
						if err := addEdge(a, in.Dst); err != nil {
							return g, err
						}
					}
				case ir.OpPhi:
					for _, a := range in.Args {
						if err := addEdge(a, in.Dst); err != nil {
							return g, err
						}
					}
				case ir.OpLoad:
					g.Derefs[in.Args[0]] = append(g.Derefs[in.Args[0]], in)
					for l := range pts.PointsTo(in.Args[0]) {
						loadsByLoc[l] = append(loadsByLoc[l], in.Dst)
					}
				case ir.OpStore:
					g.Derefs[in.Args[0]] = append(g.Derefs[in.Args[0]], in)
					for l := range pts.PointsTo(in.Args[0]) {
						storesByLoc[l] = append(storesByLoc[l], in.Args[1])
					}
				case ir.OpFree:
					g.Frees = append(g.Frees, in)
				case ir.OpCall:
					callee, known := m.ByName[in.Callee]
					if !known {
						continue
					}
					for i, a := range in.Args {
						if i < len(callee.Params) {
							if err := addEdge(a, callee.Params[i]); err != nil {
								return g, err
							}
						}
					}
					ret := callee.Exit.Term()
					auxStart := len(ret.Args) - len(callee.AuxOut)
					for ri, rv := range ret.Args {
						dstIdx := 0
						if ri >= auxStart {
							dstIdx = 1 + (ri - auxStart)
						}
						if dstIdx < len(in.Dsts) && in.Dsts[dstIdx] != nil {
							if err := addEdge(rv, in.Dsts[dstIdx]); err != nil {
								return g, err
							}
						}
					}
				}
			}
		}
	}

	// Memory edges: every store to L feeds every load from any location
	// aliased with L. With flow-insensitive points-to this is simply the
	// per-location cross product.
	for l, stores := range storesByLoc {
		loads := loadsByLoc[l]
		for _, sv := range stores {
			for _, ld := range loads {
				if err := addEdge(sv, ld); err != nil {
					return g, err
				}
			}
		}
	}
	return g, nil
}

// ReachableDerefs runs the baseline bug query: all dereference and free
// instructions whose operand is graph-reachable from the freed value. No
// ordering, no conditions, no contexts — exactly the precision the layered
// design affords without re-running an expensive analysis.
//
// The traversal decrements *budget per visited node (pass nil for
// unlimited); when it hits zero, the walk stops and the results so far are
// returned — the caller treats that as the checking-phase timeout the paper
// reports for SVF on half its subjects.
func (g *Graph) ReachableDerefs(freed *ir.Value, from *ir.Instr, budget *int64) []*ir.Instr {
	var out []*ir.Instr
	seen := map[*ir.Value]bool{}
	var walk func(v *ir.Value)
	walk = func(v *ir.Value) {
		if seen[v] {
			return
		}
		if budget != nil {
			if *budget <= 0 {
				return
			}
			*budget--
		}
		seen[v] = true
		for _, in := range g.Derefs[v] {
			if in != from {
				out = append(out, in)
			}
		}
		for _, to := range g.succ[v] {
			walk(to)
		}
	}
	walk(freed)
	return out
}
