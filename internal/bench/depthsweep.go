package bench

import (
	"fmt"
	"time"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/workload"
)

// DepthRow is one row of the calling-context depth sweep: the paper fixes
// "the number of nested levels of calling context" to six (§5.1); the sweep
// shows what that knob buys — recall saturates once the deepest injected
// call chains fit, while search cost grows with the budget.
type DepthRow struct {
	Depth     int
	Reports   int
	TP        int
	FP        int
	Time      time.Duration
	Truncated int
}

// RunDepthSweep checks the mysql subject at increasing call-depth budgets.
func RunDepthSweep(cfg Config, depths []int) ([]*DepthRow, error) {
	cfg = cfg.withDefaults()
	if len(depths) == 0 {
		depths = []int{1, 2, 3, 4, 6, 8}
	}
	subj, _ := workload.SubjectByName("mysql")
	gen := workload.Generate(subj, workload.GenOptions{Scale: cfg.Scale})
	a, err := core.BuildFromSource(gen.Units, core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	var out []*DepthRow
	for _, d := range depths {
		row := &DepthRow{Depth: d}
		t0 := time.Now()
		reports, st := a.Check(checkers.UseAfterFree(), detect.Options{MaxCallDepth: d})
		row.Time = time.Since(t0)
		row.Reports = len(reports)
		row.Truncated = st.TruncatedSearches
		for _, r := range reports {
			if gen.Truth.IsTrueUAF(r.SourcePos.File, r.SourcePos.Line) {
				row.TP++
			} else {
				row.FP++
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderDepthSweep prints the sweep table.
func RenderDepthSweep(rows []*DepthRow) string {
	t := newTable("Calling-context depth sweep (mysql subject; the paper fixes depth = 6)")
	t.row("depth", "reports", "TP", "FP", "time", "truncated searches")
	for _, r := range rows {
		t.row(fmt.Sprint(r.Depth), fmt.Sprint(r.Reports), fmt.Sprint(r.TP),
			fmt.Sprint(r.FP), dur(r.Time), fmt.Sprint(r.Truncated))
	}
	return t.done("Recall saturates once the deepest injected call chain fits inside the budget; deeper budgets only add search cost.")
}
