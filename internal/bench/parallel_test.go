package bench

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/workload"
)

func TestMeasureDetectScaling(t *testing.T) {
	subj := workload.Subject{Name: "scaling-smoke", PaperKLoC: 20, TrueBugs: 3, OpaqueTraps: 2}
	ds, err := MeasureDetectScaling(subj, 10, []int{1, runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Rows) != 2 {
		t.Fatalf("rows = %d", len(ds.Rows))
	}
	if ds.Rows[0].Workers != 1 {
		t.Fatalf("first row workers = %d", ds.Rows[0].Workers)
	}
	if ds.Reports == 0 {
		t.Fatal("scaling subject produced no reports")
	}
}

// BenchmarkCheckAll measures detection wall-clock at several worker counts
// on one prebuilt workload subject. Run with:
//
//	go test -bench CheckAll -benchtime 3x ./internal/bench
func BenchmarkCheckAll(b *testing.B) {
	subj := workload.Subject{Name: "bench-detect", PaperKLoC: 120, TrueBugs: 8, OpaqueTraps: 6}
	gen := workload.Generate(subj, workload.GenOptions{Taint: true})
	a, err := core.BuildFromSource(gen.Units, core.BuildOptions{Workers: -1})
	if err != nil {
		b.Fatal(err)
	}
	specs := checkers.All()
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := a.CheckAll(specs, detect.Options{Workers: w})
				if len(res.Reports) == 0 {
					b.Fatal("no reports")
				}
			}
		})
	}
}
