package bench

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/workload"
)

// table is a small helper around tabwriter.
type table struct {
	b strings.Builder
	w *tabwriter.Writer
}

func newTable(title string) *table {
	t := &table{}
	t.b.WriteString(title + "\n")
	t.b.WriteString(strings.Repeat("=", len(title)) + "\n")
	t.w = tabwriter.NewWriter(&t.b, 2, 4, 2, ' ', 0)
	return t
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.w, strings.Join(cells, "\t"))
}

func (t *table) done(footer string) string {
	t.w.Flush()
	if footer != "" {
		t.b.WriteString(footer + "\n")
	}
	t.b.WriteString("\n")
	return t.b.String()
}

func dur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// RenderFigure7 prints the SEG-vs-FSVFG build-time comparison (Figure 7):
// per subject ordered by size, both build times, with the baseline's
// timeouts marked exactly as in the paper.
func RenderFigure7(runs []*SubjectRun) string {
	t := newTable("Figure 7 — time cost: building SEG vs building FSVFG (subjects ordered by size)")
	t.row("subject", "lines", "SEG build", "FSVFG build", "speedup")
	sorted := bySize(runs)
	for _, r := range sorted {
		fs := dur(r.SVFBuildTime)
		sp := ""
		if r.SVFTimedOut {
			fs = "TIMEOUT"
			sp = "unbounded"
		} else if r.SEGTime > 0 {
			sp = fmt.Sprintf("%.1fx", float64(r.SVFBuildTime)/float64(r.SEGTime))
		}
		t.row(r.Subject.Name, fmt.Sprint(r.Lines), dur(r.SEGTime), fs, sp)
	}
	return t.done("Paper shape: comparable below the threshold, FSVFG times out above it while SEG stays sub-linear-feeling (paper: up to >400x faster, timeout at >135 paper-KLoC).")
}

// RenderFigure8 prints the build memory comparison (Figure 8).
func RenderFigure8(runs []*SubjectRun) string {
	t := newTable("Figure 8 — memory cost: building SEG vs building FSVFG")
	t.row("subject", "lines", "SEG alloc MB", "SEG nodes+edges", "FSVFG alloc MB", "FSVFG nodes+edges")
	for _, r := range bySize(runs) {
		fsMem := fmt.Sprintf("%.1f", MB(r.SVFBuildMem.AllocBytes))
		fsSize := fmt.Sprintf("%d+%d", r.SVFNodes, r.SVFEdges)
		if r.SVFTimedOut {
			fsMem += " (TIMEOUT)"
		}
		t.row(r.Subject.Name, fmt.Sprint(r.Lines),
			fmt.Sprintf("%.1f", MB(r.SEGMem.AllocBytes)),
			fmt.Sprintf("%d+%d", r.SEGNodes, r.SEGEdges),
			fsMem, fsSize)
	}
	return t.done("Paper shape: FSVFG needs 40-60G more at scale; here the FSVFG edge count grows superlinearly while the SEG stays linear.")
}

// RenderFigure9 prints the total checker memory comparison (Figure 9).
func RenderFigure9(runs []*SubjectRun) string {
	t := newTable("Figure 9 — memory cost: SEG-based vs FSVFG-based checker (build + check)")
	t.row("subject", "lines", "Pinpoint total MB", "SVF total MB")
	for _, r := range bySize(runs) {
		pin := MB(r.SEGMem.AllocBytes + r.CheckMem.AllocBytes)
		svf := fmt.Sprintf("%.1f", MB(r.SVFBuildMem.AllocBytes))
		if r.SVFTimedOut {
			svf += " (fail: FSVFG not built)"
		}
		t.row(r.Subject.Name, fmt.Sprint(r.Lines), fmt.Sprintf("%.1f", pin), svf)
	}
	return t.done("")
}

// RenderFigure10 prints the scalability fits (Figure 10): Pinpoint time and
// memory versus program size with R².
func RenderFigure10(runs []*SubjectRun) string {
	var xs, ts, ms []float64
	for _, r := range bySize(runs) {
		xs = append(xs, float64(r.Lines))
		ts = append(ts, (r.SEGTime+r.CheckTime).Seconds()*1000) // ms
		ms = append(ms, MB(r.SEGMem.AllocBytes+r.CheckMem.AllocBytes))
	}
	timeFit := FitLinear(xs, ts)
	memFit := FitLinear(xs, ms)
	_, kTime, _ := FitPower(xs, ts)
	_, kMem, _ := FitPower(xs, ms)

	t := newTable("Figure 10 — scalability of the SEG-based checker (linear fits)")
	t.row("metric", "fit", "R^2", "power-law exponent")
	t.row("time (ms)", fmt.Sprintf("%.4g*lines%+.4g", timeFit.A, timeFit.B), fmt.Sprintf("%.4f", timeFit.R2), fmt.Sprintf("%.2f", kTime))
	t.row("memory (MB)", fmt.Sprintf("%.4g*lines%+.4g", memFit.A, memFit.B), fmt.Sprintf("%.4f", memFit.R2), fmt.Sprintf("%.2f", kMem))
	return t.done("Paper: both fits have R^2 > 0.9 — observed linear scalability. Exponent near 1.0 confirms it independently.")
}

// RenderTable1 prints the use-after-free checker comparison (Table 1).
func RenderTable1(runs []*SubjectRun) string {
	t := newTable("Table 1 — results of use-after-free checkers (Pinpoint vs SVF baseline)")
	t.row("origin", "subject", "lines", "Pinpoint #FP", "Pinpoint #Rep", "FP rate", "SVF #Rep", "paper Pin #Rep", "paper SVF #Rep")
	totalRep, totalFP, totalSVF := 0, 0, 0
	for _, r := range runs {
		fpRate := "0"
		if r.Reports > 0 {
			fpRate = fmt.Sprintf("%.1f%%", 100*float64(r.FP)/float64(r.Reports))
		}
		svf := fmt.Sprint(r.SVFReports)
		switch {
		case r.SVFTimedOut:
			svf = "NA (build timeout)"
		case r.SVFCheckTimedOut:
			svf = fmt.Sprintf(">%d (check timeout)", r.SVFReports)
		default:
			totalSVF += r.SVFReports
		}
		paperSVF := fmt.Sprint(r.Subject.PaperSVFReports)
		if r.Subject.PaperSVFReports < 0 {
			paperSVF = "NA"
		}
		t.row(r.Subject.Origin, r.Subject.Name, fmt.Sprint(r.Lines),
			fmt.Sprint(r.FP), fmt.Sprint(r.Reports), fpRate, svf,
			fmt.Sprint(r.Subject.PaperPinpointReports), paperSVF)
		totalRep += r.Reports
		totalFP += r.FP
	}
	rate := 0.0
	if totalRep > 0 {
		rate = 100 * float64(totalFP) / float64(totalRep)
	}
	footer := fmt.Sprintf("Totals: Pinpoint %d reports, %d FP (%.1f%%); SVF %d reports on finished subjects.\nPaper: 14 reports, 2 FP (14.3%%); SVF ~10,000 reports, no TPs found in sampling.",
		totalRep, totalFP, rate, totalSVF)
	return t.done(footer)
}

// RenderTable2 prints the taint checker summary (Table 2).
func RenderTable2(taint []*TaintRun) string {
	t := newTable("Table 2 — SEG-based taint analysis on mysql")
	t.row("checker", "memory MB", "time", "#FP/#Reports", "FP rate", "paper")
	paper := map[string]string{
		"path-traversal":    "11/56 (43.1G, 1.4hr)",
		"data-transmission": "24/92 (52.6G, 1.5hr)",
	}
	for _, tr := range taint {
		rate := 0.0
		if tr.Reports > 0 {
			rate = 100 * float64(tr.FP) / float64(tr.Reports)
		}
		t.row(tr.Checker, fmt.Sprintf("%.1f", MB(tr.Mem.AllocBytes)), dur(tr.Time),
			fmt.Sprintf("%d/%d", tr.FP, tr.Reports), fmt.Sprintf("%.1f%%", rate), paper[tr.Checker])
	}
	return t.done("Paper overall taint FP rate: 23.6%. Sanitizers are unmodeled by design (§4.1), so the opaque (sanitized) flows are reported and counted as FPs.")
}

// RenderTable3 prints the Infer/CSA comparison (Table 3).
func RenderTable3(rows []*BaselineRun) string {
	t := newTable("Table 3 — results of Infer-like and CSA-like baselines (use-after-free)")
	t.row("subject", "lines(paper KLoC)", "tool", "time", "#FP/#Rep", "missed true bugs")
	totFP := map[string]int{}
	totRep := map[string]int{}
	totMiss := map[string]int{}
	for _, r := range rows {
		missed := r.Subject.TrueBugs - r.TP
		t.row(r.Subject.Name, fmt.Sprint(r.Subject.PaperKLoC), r.Tool, dur(r.Time),
			fmt.Sprintf("%d/%d", r.FP, r.Reports), fmt.Sprint(missed))
		totFP[r.Tool] += r.FP
		totRep[r.Tool] += r.Reports
		totMiss[r.Tool] += missed
	}
	footer := fmt.Sprintf("Totals: Infer-like %d/%d FP/rep, %d bugs missed; CSA-like %d/%d FP/rep, %d bugs missed.\nPaper: Infer 35/35 all-FP; CSA 24/26 FP (2 TP); both confined to single compilation units.",
		totFP["Infer"], totRep["Infer"], totMiss["Infer"],
		totFP["CSA"], totRep["CSA"], totMiss["CSA"])
	return t.done(footer)
}

// RenderJuliet prints the recall experiment (§5.1.2).
func RenderJuliet(r *JulietResult) string {
	t := newTable("Juliet recall — use-after-free / double-free corpus")
	t.row("metric", "value", "paper")
	t.row("cases", fmt.Sprint(r.Total), "1421")
	t.row("flaw types", fmt.Sprint(r.FlawTypes), "51")
	t.row("detected", fmt.Sprintf("%d (%.1f%%)", r.Detected, 100*float64(r.Detected)/float64(r.Total)), "1421 (100%)")
	t.row("time", dur(r.Time), "-")
	footer := ""
	if len(r.MissedByFlaw) > 0 {
		var keys []string
		for k := range r.MissedByFlaw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		footer = "Missed flaw types: "
		for _, k := range keys {
			footer += fmt.Sprintf("%s(%d) ", k, r.MissedByFlaw[k])
		}
	}
	return t.done(footer)
}

func bySize(runs []*SubjectRun) []*SubjectRun {
	out := append([]*SubjectRun(nil), runs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Lines < out[j].Lines })
	return out
}

var _ = workload.Subjects // keep the import for documentation references
