package bench

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/store"
	"repro/internal/workload"
)

// Warm-restart experiment for the persistent store: how close does a fresh
// process pointed at a populated -store-dir get to an in-process warm
// session? The store should serve every artifact (zero rebuilds), so the
// restart build time is dominated by parsing plus record decode instead of
// the full SSA/PTA/SEG pipeline.

// StoreResult is the outcome of one cold-vs-warm-restart measurement.
type StoreResult struct {
	Subject   string
	Lines     int
	Functions int
	Units     int
	// Cold is the from-scratch build time with no store at all.
	Cold time.Duration
	// WarmRestart is the first Update of a fresh session (a restarted
	// process) warm-loading from the populated store.
	WarmRestart time.Duration
	// WarmLoad is the store.load slice of WarmRestart: reading and
	// decoding artifact segments. WarmParse is the parse slice, and
	// WarmPersist is any store.save time inside the warm window (zero
	// when the restart found everything current — re-persisting what was
	// just loaded would be pure waste, and timing it as "restart cost"
	// was exactly the measurement bug this split exposes).
	WarmLoad    time.Duration
	WarmParse   time.Duration
	WarmPersist time.Duration
	// Speedup is Cold / WarmRestart.
	Speedup float64
	// StoreHits is the number of artifacts the restart served from disk;
	// it must equal the function count (zero rebuilds).
	StoreHits int
	// Stats is the store's view after the restart: records, disk bytes,
	// and residency.
	Stats store.Stats
}

// storeReps is the number of repetitions of each timed window. The
// shared benchmark hosts this runs on show >50% run-to-run swings on a
// single measurement; min-of-N is the standard estimator for "what does
// this code cost without interference" and stabilizes the cold/warm
// ratio to a few percent.
const storeReps = 5

// MeasureStore populates a DiskStore through one build+detect cycle,
// discards all in-memory state, and times a fresh session's warm-load
// against a cold from-scratch build (best of storeReps runs each).
// Reports of the cold and restarted runs are verified byte-identical
// before timings are returned.
func MeasureStore(subj workload.Subject, scale int) (*StoreResult, error) {
	gen := workload.Generate(subj, workload.GenOptions{Scale: scale, Taint: true})
	dir, err := os.MkdirTemp("", "pinpoint-bench-store-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	specs := checkers.All()
	dopts := detect.Options{Workers: -1}

	// Cold: no store anywhere.
	var coldA *core.Analysis
	var cold time.Duration
	for i := 0; i < storeReps; i++ {
		t0 := time.Now()
		a, err := core.BuildFromSource(gen.Units, core.BuildOptions{Workers: -1})
		if err != nil {
			return nil, err
		}
		if d := time.Since(t0); i == 0 || d < cold {
			cold, coldA = d, a
		}
	}
	cj, err := reportsJSON(coldA.CheckAll(specs, dopts).Reports)
	if err != nil {
		return nil, err
	}

	// Populate the store: one full build+detect cycle, then drop the
	// process state.
	st1, err := store.Open(dir, store.DiskOptions{})
	if err != nil {
		return nil, err
	}
	s1 := core.NewSession(core.BuildOptions{Workers: -1, Store: st1})
	a1, err := s1.Update(gen.Units)
	if err != nil {
		return nil, err
	}
	a1.CheckAll(specs, dopts)
	if err := st1.Close(); err != nil {
		return nil, err
	}

	// Restart: fresh store handle, fresh session, same directory. Every
	// repetition builds a brand-new session so each one pays the full
	// warm-load path (segment read, decode, import).
	st2, err := store.Open(dir, store.DiskOptions{})
	if err != nil {
		return nil, err
	}
	defer st2.Close()
	var warmA *core.Analysis
	var warm time.Duration
	for i := 0; i < storeReps; i++ {
		s2 := core.NewSession(core.BuildOptions{Workers: -1, Store: st2})
		t0 := time.Now()
		a2, err := s2.Update(gen.Units)
		if err != nil {
			return nil, err
		}
		if d := time.Since(t0); i == 0 || d < warm {
			warm, warmA = d, a2
		}
	}

	if got, want := warmA.Artifacts.StoreHits, warmA.Sizes.Functions; got != want {
		return nil, fmt.Errorf("warm restart store-loaded %d of %d artifacts", got, want)
	}
	wj, err := reportsJSON(warmA.CheckAll(specs, dopts).Reports)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(wj, cj) {
		return nil, fmt.Errorf("warm restart and cold build disagree on reports")
	}

	out := &StoreResult{
		Subject:     subj.Name,
		Lines:       gen.Lines,
		Functions:   warmA.Sizes.Functions,
		Units:       len(gen.Units),
		Cold:        cold,
		WarmRestart: warm,
		WarmLoad:    warmA.Timings.StoreLoad,
		WarmParse:   warmA.Timings.Parse,
		WarmPersist: warmA.Timings.StoreSave,
		StoreHits:   warmA.Artifacts.StoreHits,
		Stats:       st2.Stat(),
	}
	if warm > 0 {
		out.Speedup = float64(cold) / float64(warm)
	}
	return out, nil
}
