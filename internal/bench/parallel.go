package bench

import (
	"fmt"
	"time"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/workload"
)

// Detection-scheduler scaling experiment: how does detection wall-clock
// change with the worker-pool size? The detection phase is embarrassingly
// parallel across demand sources, so the curve should approach linear
// speedup until sources run out or memory bandwidth saturates.

// DetectScalingRow is one worker-count measurement.
type DetectScalingRow struct {
	Workers int
	Wall    time.Duration
	// Speedup is Wall(1 worker) / Wall.
	Speedup float64
}

// DetectScaling is the result of one scaling sweep.
type DetectScaling struct {
	Subject string
	Lines   int
	Reports int
	Rows    []DetectScalingRow
}

// MeasureDetectScaling generates a workload subject, builds it once, and
// times CheckAll over every checker at each worker count. The report sets
// are verified identical across worker counts (the scheduler's determinism
// guarantee) before timings are returned.
func MeasureDetectScaling(subj workload.Subject, scale int, workerCounts []int) (*DetectScaling, error) {
	gen := workload.Generate(subj, workload.GenOptions{Scale: scale, Taint: true})
	a, err := core.BuildFromSource(gen.Units, core.BuildOptions{Workers: -1})
	if err != nil {
		return nil, err
	}
	specs := checkers.All()

	out := &DetectScaling{Subject: subj.Name, Lines: gen.Lines}
	var baseline time.Duration
	var baseReports []detect.Report
	for i, w := range workerCounts {
		res := a.CheckAll(specs, detect.Options{Workers: w})
		if i == 0 {
			baseline = res.Wall
			baseReports = res.Reports
			out.Reports = len(res.Reports)
		} else if len(res.Reports) != len(baseReports) {
			return nil, fmt.Errorf("workers=%d: %d reports, workers=%d: %d reports — scheduler nondeterminism",
				workerCounts[0], len(baseReports), w, len(res.Reports))
		}
		row := DetectScalingRow{Workers: res.Workers, Wall: res.Wall}
		if res.Wall > 0 {
			row.Speedup = float64(baseline) / float64(res.Wall)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
