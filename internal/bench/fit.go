// Package bench implements the experiment harness: it generates the
// evaluation subjects, runs Pinpoint and the baselines over them, measures
// time/memory, fits scalability curves, and renders each table and figure
// of the paper's evaluation section (§5).
package bench

import (
	"fmt"
	"math"
)

// LinearFit is a least-squares fit y = a·x + b with its coefficient of
// determination R² — the statistic of Figure 10 (the paper reports
// R² > 0.9 for both time and memory versus program size and concludes
// observed linear scalability).
type LinearFit struct {
	A, B float64
	R2   float64
}

// FitLinear computes the least-squares line through (x[i], y[i]).
func FitLinear(xs, ys []float64) LinearFit {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return LinearFit{R2: math.NaN()}
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{R2: math.NaN()}
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n

	mean := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := a*xs[i] + b
		ssTot += (ys[i] - mean) * (ys[i] - mean)
		ssRes += (ys[i] - pred) * (ys[i] - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{A: a, B: b, R2: r2}
}

func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.4g*x + %.4g (R^2 = %.4f)", f.A, f.B, f.R2)
}

// FitPower fits y = c·x^k by linear regression in log space (used to
// characterize the baseline's superlinear growth).
func FitPower(xs, ys []float64) (c, k, r2 float64) {
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, math.Log(ys[i]))
	}
	f := FitLinear(lx, ly)
	return math.Exp(f.B), f.A, f.R2
}
