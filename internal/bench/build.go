package bench

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/workload"
)

// Build-scaling experiment: how does the cold build wall-clock change
// with the worker-pool size now that the whole pipeline — parse, lower,
// SSA, the Mod/Ref wavefront, the connector transform, PTA+SEG — runs
// on the shared pool? The wavefront's dependency counting should keep
// the curve near-linear until the condensed call graph's width runs out.

// BuildScalingRow is one worker-count measurement.
type BuildScalingRow struct {
	Workers int
	Wall    time.Duration
	// Speedup is Wall(first row) / Wall; the first row is workers=1.
	Speedup float64
}

// BuildScaling is the result of one build-scaling sweep.
type BuildScaling struct {
	Subject   string
	Lines     int
	Functions int
	Units     int
	Reports   int
	// Equivalent records that reports and artifact fingerprints were
	// byte-identical across every measured worker count; MeasureBuild
	// fails instead of returning false.
	Equivalent bool
	Rows       []BuildScalingRow
}

// MeasureBuild generates a workload subject and times a cold
// from-scratch session build (core.NewSession + first Update — the same
// path serve mode holds its tenant lock for) at each worker count,
// keeping the best of reps runs. Before timings are returned it
// verifies the determinism contract: detect.JSONReport bytes and the
// session artifact fingerprint must be identical at every worker count.
func MeasureBuild(subj workload.Subject, scale int, workerCounts []int, reps int) (*BuildScaling, error) {
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("bench: no worker counts")
	}
	if reps < 1 {
		reps = 1
	}
	gen := workload.Generate(subj, workload.GenOptions{Scale: scale, Taint: true})
	out := &BuildScaling{Subject: subj.Name, Lines: gen.Lines, Units: len(gen.Units)}

	specs := checkers.All()
	var baseWall time.Duration
	var baseReports []byte
	var baseFP string
	for wi, w := range workerCounts {
		var best time.Duration
		var fp string
		var a *core.Analysis
		for r := 0; r < reps; r++ {
			sess := core.NewSession(core.BuildOptions{Workers: w})
			t0 := time.Now()
			ar, err := sess.Update(gen.Units)
			wall := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("workers=%d: %w", w, err)
			}
			if r == 0 || wall < best {
				best = wall
			}
			a = ar
			fp = sess.ArtifactFingerprint()
		}
		res := a.CheckAll(specs, detect.Options{Workers: w})
		rj, err := reportsJSON(res.Reports)
		if err != nil {
			return nil, err
		}
		if wi == 0 {
			baseWall, baseReports, baseFP = best, rj, fp
			out.Functions = a.Sizes.Functions
			out.Reports = len(res.Reports)
		} else {
			if !bytes.Equal(rj, baseReports) {
				return nil, fmt.Errorf("workers=%d: reports differ from workers=%d — build nondeterminism", w, workerCounts[0])
			}
			if fp != baseFP {
				return nil, fmt.Errorf("workers=%d: artifact fingerprint differs from workers=%d — build nondeterminism", w, workerCounts[0])
			}
		}
		row := BuildScalingRow{Workers: w, Wall: best}
		if best > 0 {
			row.Speedup = float64(baseWall) / float64(best)
		}
		out.Rows = append(out.Rows, row)
	}
	out.Equivalent = true
	return out, nil
}
