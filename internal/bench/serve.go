package bench

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"time"

	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/workload"
)

// Service-latency experiment: drive an in-process analysis service through
// the three canonical traffic shapes (cold builds, warm single-function
// edits, burst arrivals) with the loadgen harness and record the
// client-observed latency distribution next to the server's own
// phase-attributed breakdown. The attribution gap — the slice of client
// latency the server's timing does not explain — is the experiment's
// honesty check: if the phase histograms on /metrics are to be trusted for
// capacity planning, the per-request breakdown must account for what
// clients actually feel.

// ServeScenario is one scenario's outcome.
type ServeScenario struct {
	Name     string
	Requests int
	Errors   int
	// Tenants is the number of distinct server-side tenants the
	// scenario's client groups map to (1 for the single-project
	// scenarios; the tenants scenario uses one project per group).
	Tenants    int
	Throughput float64
	Latency    loadgen.LatencyNs
	// PhaseMeanNs attributes the mean request to server phases (same
	// names as server.phase_ns{phase=...} on /metrics).
	PhaseMeanNs map[string]int64
	// Gap is the unattributed fraction of client latency.
	Gap loadgen.GapStats
}

// ServeResult is the outcome of one MeasureServe run.
type ServeResult struct {
	Subject   string
	Lines     int
	Scenarios []ServeScenario
	// MaxGapP50 is the worst median attribution gap across the
	// closed-loop scenarios (cold, warm, edit). The serve snapshot gate
	// wants this at or below GapBudget: the median request's server-side
	// breakdown explains at least 90% of what the client measured (the
	// remainder is response marshaling and loopback transfer, which the
	// server cannot time into its own response body). The burst scenario
	// is excluded — overlapped arrivals queue in the kernel accept path
	// and the Go scheduler before the handler's first line runs, wait no
	// server-side clock can observe — but its gap is still recorded in
	// its ServeScenario for the snapshot trend.
	MaxGapP50 float64
}

// GapBudget is the acceptable median attribution gap.
const GapBudget = 0.10

// serveRequests is the per-scenario request budget. Enough for stable
// medians; small enough that the whole trajectory runs in CI.
const serveRequests = 12

// MeasureServe starts an in-process analysis service and runs the cold,
// warm, edit, and burst scenarios against it in that order (cold first, so
// the later scenarios measure the warm steady state the service is built
// for).
func MeasureServe(subj workload.Subject, scale int) (*ServeResult, error) {
	gen := workload.Generate(subj, workload.GenOptions{Scale: scale})

	srv := server.New(server.Config{
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		Workers: -1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	scenarios := []struct {
		name string
		spec loadgen.Spec
	}{
		{"cold", loadgen.Spec{Clients: []loadgen.ClientSpec{{
			ID: "cold", Mutate: "fresh", Requests: serveRequests,
			Arrival: loadgen.ArrivalSpec{Process: "closed"},
		}}}},
		{"warm", loadgen.Spec{Clients: []loadgen.ClientSpec{{
			ID: "warm", Requests: serveRequests,
			Arrival: loadgen.ArrivalSpec{Process: "closed"},
		}}}},
		{"edit", loadgen.Spec{Clients: []loadgen.ClientSpec{{
			ID: "editor", Mutate: "edit", Requests: serveRequests,
			Arrival: loadgen.ArrivalSpec{Process: "closed"},
		}}}},
		{"burst", loadgen.Spec{Clients: []loadgen.ClientSpec{{
			ID: "burst", Mutate: "edit", Requests: serveRequests,
			Arrival: loadgen.ArrivalSpec{Process: "burst", Rate: 16, Burst: 4},
		}}}},
		// The cross-tenant proof: two closed-loop editing groups, each with
		// its own codebase (distinct SubjectSeeds — real projects are
		// different programs). tenants-serial offers both to ONE session,
		// the pre-tenant single-mutex shape: every request serializes AND
		// every alternation between the two programs invalidates the
		// session's sticky cache, so each request pays a near-cold rebuild.
		// tenants offers byte-identical bodies (plus the project field)
		// split across two projects: each session stays warm on its own
		// program and the builds overlap. The aggregate-throughput delta —
		// cache isolation plus concurrency — is the tenant layer's
		// contribution.
		{"tenants-serial", loadgen.Spec{Clients: []loadgen.ClientSpec{
			{ID: "alpha", Mutate: "edit", Requests: serveRequests,
				Arrival: loadgen.ArrivalSpec{Process: "closed"}},
			{ID: "beta", SubjectSeed: 9973, Mutate: "edit", Requests: serveRequests,
				Arrival: loadgen.ArrivalSpec{Process: "closed"}},
		}}},
		{"tenants", loadgen.Spec{Clients: []loadgen.ClientSpec{
			{ID: "alpha", Project: "tenant-a", Mutate: "edit", Requests: serveRequests,
				Arrival: loadgen.ArrivalSpec{Process: "closed"}},
			{ID: "beta", Project: "tenant-b", SubjectSeed: 9973, Mutate: "edit", Requests: serveRequests,
				Arrival: loadgen.ArrivalSpec{Process: "closed"}},
		}}},
	}

	res := &ServeResult{Subject: subj.Name, Lines: gen.Lines}
	for _, sc := range scenarios {
		spec := sc.spec
		spec.Name = sc.name
		spec.Subject = loadgen.SubjectSpec{Scale: scale}
		spec.SubjectOverride = &subj
		if sc.name == "tenants" {
			// Warm each project's session first: the serialized baseline
			// inherits a session warmed by the earlier scenarios, so the
			// comparison must not charge the tenant scenario two cold
			// builds.
			warm := spec
			warm.Name = "tenants-warmup"
			warm.Clients = make([]loadgen.ClientSpec, len(spec.Clients))
			for i, c := range spec.Clients {
				c.Requests, c.Mutate = 1, ""
				warm.Clients[i] = c
			}
			if _, err := loadgen.Run(context.Background(), &warm, loadgen.Options{
				BaseURL: ts.URL, Duration: 5 * time.Minute, Timeout: time.Minute,
			}); err != nil {
				return nil, err
			}
		}
		run, err := loadgen.Run(context.Background(), &spec, loadgen.Options{
			BaseURL: ts.URL,
			// A generous cap: the budget ends the run, the duration only
			// guards against a wedged server.
			Duration: 5 * time.Minute,
			Timeout:  time.Minute,
		})
		if err != nil {
			return nil, err
		}
		sum := loadgen.Summarize(run)
		projects := map[string]bool{}
		for _, c := range spec.Clients {
			p := c.Project
			if p == "" {
				p = "default"
			}
			projects[p] = true
		}
		res.Scenarios = append(res.Scenarios, ServeScenario{
			Name:        sc.name,
			Requests:    sum.Requests,
			Errors:      sum.Errors,
			Tenants:     len(projects),
			Throughput:  sum.Throughput,
			Latency:     sum.Latency,
			PhaseMeanNs: sum.PhaseMeanNs,
			Gap:         sum.AttributionGap,
		})
		// burst and the two tenants scenarios are excluded from the gap
		// gate: overlapped arrivals (burst) and cross-tenant CPU sharing
		// (tenants) put queueing in the kernel and the Go scheduler that no
		// server-side clock can observe. Their gaps still land in the
		// snapshot for the trend.
		switch sc.name {
		case "burst", "tenants", "tenants-serial":
		default:
			if sum.AttributionGap.P50 > res.MaxGapP50 {
				res.MaxGapP50 = sum.AttributionGap.P50
			}
		}
	}
	return res, nil
}
