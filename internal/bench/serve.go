package bench

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"time"

	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/workload"
)

// Service-latency experiment: drive an in-process analysis service through
// the three canonical traffic shapes (cold builds, warm single-function
// edits, burst arrivals) with the loadgen harness and record the
// client-observed latency distribution next to the server's own
// phase-attributed breakdown. The attribution gap — the slice of client
// latency the server's timing does not explain — is the experiment's
// honesty check: if the phase histograms on /metrics are to be trusted for
// capacity planning, the per-request breakdown must account for what
// clients actually feel.

// ServeScenario is one scenario's outcome.
type ServeScenario struct {
	Name       string
	Requests   int
	Errors     int
	Throughput float64
	Latency    loadgen.LatencyNs
	// PhaseMeanNs attributes the mean request to server phases (same
	// names as server.phase_ns{phase=...} on /metrics).
	PhaseMeanNs map[string]int64
	// Gap is the unattributed fraction of client latency.
	Gap loadgen.GapStats
}

// ServeResult is the outcome of one MeasureServe run.
type ServeResult struct {
	Subject   string
	Lines     int
	Scenarios []ServeScenario
	// MaxGapP50 is the worst median attribution gap across the
	// closed-loop scenarios (cold, warm, edit). The serve snapshot gate
	// wants this at or below GapBudget: the median request's server-side
	// breakdown explains at least 90% of what the client measured (the
	// remainder is response marshaling and loopback transfer, which the
	// server cannot time into its own response body). The burst scenario
	// is excluded — overlapped arrivals queue in the kernel accept path
	// and the Go scheduler before the handler's first line runs, wait no
	// server-side clock can observe — but its gap is still recorded in
	// its ServeScenario for the snapshot trend.
	MaxGapP50 float64
}

// GapBudget is the acceptable median attribution gap.
const GapBudget = 0.10

// serveRequests is the per-scenario request budget. Enough for stable
// medians; small enough that the whole trajectory runs in CI.
const serveRequests = 12

// MeasureServe starts an in-process analysis service and runs the cold,
// warm, edit, and burst scenarios against it in that order (cold first, so
// the later scenarios measure the warm steady state the service is built
// for).
func MeasureServe(subj workload.Subject, scale int) (*ServeResult, error) {
	gen := workload.Generate(subj, workload.GenOptions{Scale: scale})

	srv := server.New(server.Config{
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		Workers: -1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	scenarios := []struct {
		name string
		spec loadgen.Spec
	}{
		{"cold", loadgen.Spec{Clients: []loadgen.ClientSpec{{
			ID: "cold", Mutate: "fresh", Requests: serveRequests,
			Arrival: loadgen.ArrivalSpec{Process: "closed"},
		}}}},
		{"warm", loadgen.Spec{Clients: []loadgen.ClientSpec{{
			ID: "warm", Requests: serveRequests,
			Arrival: loadgen.ArrivalSpec{Process: "closed"},
		}}}},
		{"edit", loadgen.Spec{Clients: []loadgen.ClientSpec{{
			ID: "editor", Mutate: "edit", Requests: serveRequests,
			Arrival: loadgen.ArrivalSpec{Process: "closed"},
		}}}},
		{"burst", loadgen.Spec{Clients: []loadgen.ClientSpec{{
			ID: "burst", Mutate: "edit", Requests: serveRequests,
			Arrival: loadgen.ArrivalSpec{Process: "burst", Rate: 16, Burst: 4},
		}}}},
	}

	res := &ServeResult{Subject: subj.Name, Lines: gen.Lines}
	for _, sc := range scenarios {
		spec := sc.spec
		spec.Name = sc.name
		spec.Subject = loadgen.SubjectSpec{Scale: scale}
		spec.SubjectOverride = &subj
		run, err := loadgen.Run(context.Background(), &spec, loadgen.Options{
			BaseURL: ts.URL,
			// A generous cap: the budget ends the run, the duration only
			// guards against a wedged server.
			Duration: 5 * time.Minute,
			Timeout:  time.Minute,
		})
		if err != nil {
			return nil, err
		}
		sum := loadgen.Summarize(run)
		res.Scenarios = append(res.Scenarios, ServeScenario{
			Name:        sc.name,
			Requests:    sum.Requests,
			Errors:      sum.Errors,
			Throughput:  sum.Throughput,
			Latency:     sum.Latency,
			PhaseMeanNs: sum.PhaseMeanNs,
			Gap:         sum.AttributionGap,
		})
		if sc.name != "burst" && sum.AttributionGap.P50 > res.MaxGapP50 {
			res.MaxGapP50 = sum.AttributionGap.P50
		}
	}
	return res, nil
}
