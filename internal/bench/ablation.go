package bench

import (
	"time"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/pta"
	"repro/internal/workload"
)

// AblationResult compares the full system against one disabled design
// choice on a single subject (DESIGN.md's ablation index).
type AblationResult struct {
	Name    string
	Subject string

	FullTime    time.Duration
	FullReports int
	FullTP      int
	FullFP      int

	AblatedTime    time.Duration
	AblatedReports int
	AblatedTP      int
	AblatedFP      int

	// Notes carries ablation-specific counters.
	Notes map[string]int64
}

// RunAblations measures the three design-choice ablations on a mid-size
// subject (mysql by default).
func RunAblations(cfg Config) ([]*AblationResult, error) {
	cfg = cfg.withDefaults()
	subj, _ := workload.SubjectByName("mysql")
	gen := workload.Generate(subj, workload.GenOptions{Scale: cfg.Scale})

	classify := func(reports []detect.Report) (tp, fp int) {
		for _, r := range reports {
			if gen.Truth.IsTrueUAF(r.SourcePos.File, r.SourcePos.Line) {
				tp++
			} else {
				fp++
			}
		}
		return
	}

	// Reference run.
	t0 := time.Now()
	full, err := core.BuildFromSource(gen.Units, core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	fullReports, _ := full.Check(checkers.UseAfterFree(), detect.Options{})
	fullTime := time.Since(t0)
	fullTP, fullFP := classify(fullReports)

	mk := func(name string) *AblationResult {
		return &AblationResult{
			Name: name, Subject: subj.Name,
			FullTime: fullTime, FullReports: len(fullReports), FullTP: fullTP, FullFP: fullFP,
			Notes: map[string]int64{},
		}
	}
	var out []*AblationResult

	// Ablation 1: no linear-time contradiction solver (§3.1.1), in both
	// the local points-to analysis and the global search. Candidates the
	// filter would have discarded for free now burn SMT queries.
	{
		r := mk("linear-solver-off")
		t0 := time.Now()
		a, err := core.BuildFromSource(gen.Units, core.BuildOptions{
			PTA: pta.Options{DisableLinearSolver: true},
		})
		if err != nil {
			return nil, err
		}
		reports, st := a.Check(checkers.UseAfterFree(), detect.Options{DisableLinearFilter: true})
		r.AblatedTime = time.Since(t0)
		r.AblatedReports = len(reports)
		r.AblatedTP, r.AblatedFP = classify(reports)
		r.Notes["ablated_smt_queries"] = int64(st.SMTQueries)
		r.Notes["ablated_smt_unsat"] = int64(st.SMTUnsat)
		// Reference: how many infeasible candidates the cheap filter
		// discharged in the full configuration.
		_, fullSt := full.Check(checkers.UseAfterFree(), detect.Options{})
		r.Notes["full_linear_filtered"] = int64(fullSt.LinearFiltered)
		r.Notes["full_smt_queries"] = int64(fullSt.SMTQueries)
		out = append(out, r)
	}

	// Ablation 2: no connector transformation (§3.1.2). Side effects
	// stay invisible across calls, so inter-procedural memory flows (and
	// the bugs that ride them) disappear.
	{
		r := mk("connectors-off")
		t0 := time.Now()
		a, err := core.BuildFromSource(gen.Units, core.BuildOptions{DisableConnectors: true})
		if err != nil {
			return nil, err
		}
		reports, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
		r.AblatedTime = time.Since(t0)
		r.AblatedReports = len(reports)
		r.AblatedTP, r.AblatedFP = classify(reports)
		out = append(out, r)
	}

	// Ablation 3: no path sensitivity at detection (SMT off) — the
	// precision the holistic design buys.
	{
		r := mk("path-sensitivity-off")
		t0 := time.Now()
		reports, st := full.Check(checkers.UseAfterFree(), detect.Options{DisablePathSensitivity: true})
		r.AblatedTime = time.Since(t0)
		r.AblatedReports = len(reports)
		r.AblatedTP, r.AblatedFP = classify(reports)
		r.Notes["candidates"] = int64(st.Candidates)
		out = append(out, r)
	}
	return out, nil
}

// RenderAblations prints the ablation table.
func RenderAblations(rows []*AblationResult) string {
	t := newTable("Ablations — design choices isolated on the mysql subject")
	t.row("ablation", "full rep(TP/FP)", "ablated rep(TP/FP)", "full time", "ablated time", "notes")
	for _, r := range rows {
		notes := ""
		for k, v := range r.Notes {
			notes += k + "=" + itoa64(v) + " "
		}
		t.row(r.Name,
			itoa(r.FullReports)+"("+itoa(r.FullTP)+"/"+itoa(r.FullFP)+")",
			itoa(r.AblatedReports)+"("+itoa(r.AblatedTP)+"/"+itoa(r.AblatedFP)+")",
			dur(r.FullTime), dur(r.AblatedTime), notes)
	}
	return t.done("linear-solver-off: same verdicts, more downstream work; connectors-off: inter-procedural bugs lost; path-sensitivity-off: infeasible traps reported.")
}

func itoa(v int) string { return itoa64(int64(v)) }

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
