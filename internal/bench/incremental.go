package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/minic"
	"repro/internal/workload"
)

// Incremental-rebuild experiment: after editing one function body, how much
// of the build does a warm core.Session avoid compared to rebuilding from
// scratch? The content-addressed artifact store should rebuild only the
// dirty function (and whatever the summary fixpoint drags back in), so the
// warm wall-clock should be a small fraction of the cold one.

// IncrementalResult is the outcome of one cold-vs-warm measurement.
type IncrementalResult struct {
	Subject   string
	Lines     int
	Functions int
	Units     int
	// Cold is the from-scratch build time of the edited program.
	Cold time.Duration
	// Warm is the Session.Update time for the same edit against a
	// previously built session.
	Warm time.Duration
	// Speedup is Cold / Warm.
	Speedup float64
	// Artifacts is the warm round's artifact-store outcome; Hits should
	// dominate and Misses+Invalidated should cover only the dirty frontier.
	Artifacts core.ArtifactStats
}

// MeasureIncremental generates a workload subject, builds it through a
// session, edits one driver-function body in the last unit (a change that
// leaves the function's Mod/Ref summary and connector signature intact), and
// times the warm Session.Update against a cold from-scratch build of the
// edited program. The two builds' report sets are verified identical before
// timings are returned.
func MeasureIncremental(subj workload.Subject, scale int) (*IncrementalResult, error) {
	gen := workload.Generate(subj, workload.GenOptions{Scale: scale, Taint: true})
	opts := core.BuildOptions{Workers: -1}

	sess := core.NewSession(opts)
	if _, err := sess.Update(gen.Units); err != nil {
		return nil, err
	}

	edited := make([]minic.NamedSource, len(gen.Units))
	copy(edited, gen.Units)
	last, err := editDriver(edited[len(edited)-1])
	if err != nil {
		return nil, err
	}
	edited[len(edited)-1] = last

	t0 := time.Now()
	warmA, err := sess.Update(edited)
	if err != nil {
		return nil, err
	}
	warm := time.Since(t0)

	t0 = time.Now()
	coldA, err := core.BuildFromSource(edited, opts)
	if err != nil {
		return nil, err
	}
	cold := time.Since(t0)

	specs := checkers.All()
	dopts := detect.Options{Workers: -1}
	wj, err := reportsJSON(warmA.CheckAll(specs, dopts).Reports)
	if err != nil {
		return nil, err
	}
	cj, err := reportsJSON(coldA.CheckAll(specs, dopts).Reports)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(wj, cj) {
		return nil, fmt.Errorf("warm and cold rebuilds disagree on reports")
	}

	out := &IncrementalResult{
		Subject:   subj.Name,
		Lines:     gen.Lines,
		Functions: warmA.Sizes.Functions,
		Units:     len(gen.Units),
		Cold:      cold,
		Warm:      warm,
		Artifacts: warmA.Artifacts,
	}
	if warm > 0 {
		out.Speedup = float64(cold) / float64(warm)
	}
	return out, nil
}

// editDriver inserts a statement right after the unit's driver-function
// opening line: a body edit that dirties exactly one function without
// changing its Mod/Ref summary or connector signature.
func editDriver(u minic.NamedSource) (minic.NamedSource, error) {
	lines := strings.Split(u.Src, "\n")
	for i, ln := range lines {
		if strings.HasPrefix(ln, "void drive_") {
			lines = append(lines[:i+1], append([]string{"\tseed = seed + 1;"}, lines[i+1:]...)...)
			return minic.NamedSource{Name: u.Name, Src: strings.Join(lines, "\n")}, nil
		}
	}
	return u, fmt.Errorf("no driver function in %s", u.Name)
}

func reportsJSON(rs []detect.Report) ([]byte, error) {
	js := make([]detect.JSONReport, len(rs))
	for i, r := range rs {
		js[i] = r.ToJSON()
	}
	return json.Marshal(js)
}
