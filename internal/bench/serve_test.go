package bench

import (
	"testing"

	"repro/internal/workload"
)

func TestMeasureServe(t *testing.T) {
	subj := workload.Subject{
		Name: "bench-serve-test", Origin: "synthetic", PaperKLoC: 60,
		TrueBugs: 2, OpaqueTraps: 1,
	}
	sv, err := MeasureServe(subj, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Subject != subj.Name || sv.Lines <= 0 {
		t.Errorf("subject=%q lines=%d", sv.Subject, sv.Lines)
	}
	want := map[string]bool{
		"cold": false, "warm": false, "edit": false, "burst": false,
		"tenants-serial": false, "tenants": false,
	}
	// The two tenant scenarios run two client groups with a full budget
	// each; the single-group scenarios issue one budget.
	wantReqs := map[string]int{"tenants-serial": 2 * serveRequests, "tenants": 2 * serveRequests}
	wantTenants := map[string]int{"tenants": 2}
	for _, sc := range sv.Scenarios {
		if _, ok := want[sc.Name]; !ok {
			t.Errorf("unexpected scenario %q", sc.Name)
			continue
		}
		want[sc.Name] = true
		if sc.Errors != 0 {
			t.Errorf("%s: %d errors", sc.Name, sc.Errors)
		}
		wr := serveRequests
		if n, ok := wantReqs[sc.Name]; ok {
			wr = n
		}
		if sc.Requests != wr {
			t.Errorf("%s: %d requests, want %d", sc.Name, sc.Requests, wr)
		}
		wt := 1
		if n, ok := wantTenants[sc.Name]; ok {
			wt = n
		}
		if sc.Tenants != wt {
			t.Errorf("%s: %d tenants, want %d", sc.Name, sc.Tenants, wt)
		}
		if sc.Latency.P50 <= 0 || sc.Latency.Max < sc.Latency.P50 {
			t.Errorf("%s: bad latency summary %+v", sc.Name, sc.Latency)
		}
		if sc.Throughput <= 0 {
			t.Errorf("%s: throughput %v", sc.Name, sc.Throughput)
		}
		if sc.PhaseMeanNs["build"] <= 0 || sc.PhaseMeanNs["detect"] <= 0 {
			t.Errorf("%s: phase means missing build/detect: %v", sc.Name, sc.PhaseMeanNs)
		}
		// The breakdown can't explain more than everything; the tight
		// GapBudget check belongs to the full-scale snapshot, where
		// per-request work dwarfs the fixed marshaling overhead.
		if sc.Gap.P50 >= 1 || sc.Gap.Max >= 1 {
			t.Errorf("%s: attribution gap out of range: %+v", sc.Name, sc.Gap)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("scenario %q missing", name)
		}
	}
}
