package bench

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	f := FitLinear(xs, ys)
	if math.Abs(f.A-2) > 1e-9 || math.Abs(f.B-1) > 1e-9 {
		t.Fatalf("fit = %v", f)
	}
	if math.Abs(f.R2-1) > 1e-9 {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
	if f.String() == "" {
		t.Fatal("empty render")
	}
}

func TestFitLinearNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9}
	f := FitLinear(xs, ys)
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %v on nearly-linear data", f.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if f := FitLinear([]float64{1}, []float64{2}); !math.IsNaN(f.R2) {
		t.Fatal("single point should be NaN")
	}
	if f := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); !math.IsNaN(f.R2) {
		t.Fatal("vertical line should be NaN")
	}
}

func TestFitPower(t *testing.T) {
	// y = 3 * x^2
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	c, k, r2 := FitPower(xs, ys)
	if math.Abs(k-2) > 1e-6 || math.Abs(c-3) > 1e-6 || r2 < 0.999 {
		t.Fatalf("power fit c=%v k=%v r2=%v", c, k, r2)
	}
}

// Property: R² of an exact linear relation is 1 regardless of slope.
func TestQuickFitExactIsPerfect(t *testing.T) {
	f := func(a, b int8) bool {
		slope := float64(a)
		icept := float64(b)
		xs := []float64{0, 1, 2, 3, 4}
		ys := make([]float64, len(xs))
		varied := false
		for i, x := range xs {
			ys[i] = slope*x + icept
			if i > 0 && ys[i] != ys[0] {
				varied = true
			}
		}
		fit := FitLinear(xs, ys)
		if !varied {
			// Flat data: ssTot = 0 -> R2 defined as 1 here.
			return fit.R2 == 1
		}
		return math.Abs(fit.R2-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureMem(t *testing.T) {
	res, mu, dur := MeasureMem(func() any {
		buf := make([]byte, 1<<20)
		return buf
	})
	if res == nil || dur < 0 {
		t.Fatal("bad result")
	}
	if mu.AllocBytes < 1<<20 {
		t.Fatalf("alloc = %d, want >= 1MiB", mu.AllocBytes)
	}
	if MB(1<<20) != 1.0 {
		t.Fatal("MB conversion wrong")
	}
}

func TestRunSubjectSmall(t *testing.T) {
	s, _ := workload.SubjectByName("gzip")
	run, err := RunSubject(s, Config{Scale: 6})
	if err != nil {
		t.Fatal(err)
	}
	if run.Lines == 0 || run.SEGNodes == 0 {
		t.Fatal("empty run")
	}
	if run.Reports != 0 {
		t.Fatalf("gzip should be clean, got %d reports", run.Reports)
	}
	if run.SVFReports == 0 && !run.SVFTimedOut {
		t.Fatal("baseline silent on gzip")
	}
}

func TestRunSubjectWithBugs(t *testing.T) {
	s, _ := workload.SubjectByName("shadowsocks")
	run, err := RunSubject(s, Config{Scale: 6})
	if err != nil {
		t.Fatal(err)
	}
	if run.TP != s.TrueBugs {
		t.Fatalf("TP = %d, want %d", run.TP, s.TrueBugs)
	}
	if run.Unexpected != 0 {
		t.Fatalf("unexpected reports: %d", run.Unexpected)
	}
}

func TestRenderersSmoke(t *testing.T) {
	s1, _ := workload.SubjectByName("gzip")
	s2, _ := workload.SubjectByName("webassembly")
	cfg := Config{Scale: 6, Subjects: []workload.Subject{s1, s2}}
	runs, err := RunAllSubjects(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"fig7":   RenderFigure7(runs),
		"fig8":   RenderFigure8(runs),
		"fig9":   RenderFigure9(runs),
		"fig10":  RenderFigure10(runs),
		"table1": RenderTable1(runs),
	} {
		if !strings.Contains(out, "gzip") && name != "fig10" {
			t.Errorf("%s output missing subject:\n%s", name, out)
		}
		if out == "" {
			t.Errorf("%s empty", name)
		}
	}
}

func TestTaintHarness(t *testing.T) {
	taint, err := RunTaint(Config{Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(taint) != 2 {
		t.Fatalf("taint rows = %d", len(taint))
	}
	for _, tr := range taint {
		if tr.Reports == 0 {
			t.Errorf("%s: no reports", tr.Checker)
		}
		if tr.FP == 0 {
			t.Errorf("%s: opaque flows not reported", tr.Checker)
		}
	}
	out := RenderTable2(taint)
	if !strings.Contains(out, "path-traversal") {
		t.Error("table 2 render broken")
	}
}

func TestBaselineHarnessRow(t *testing.T) {
	// Restrict to one subject via a focused config: reuse the public
	// API (it iterates all OSS subjects), so just verify shape on the
	// smallest scale.
	rows, err := RunUnitConfinedBaselines(Config{Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 36 { // 18 subjects x 2 tools
		t.Fatalf("rows = %d, want 36", len(rows))
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "Infer") || !strings.Contains(out, "CSA") {
		t.Error("table 3 render broken")
	}
}

func TestDepthSweep(t *testing.T) {
	rows, err := RunDepthSweep(Config{Scale: 4}, []int{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Depth 6 finds at least as many true bugs as depth 1.
	if rows[1].TP < rows[0].TP {
		t.Fatalf("deeper budget lost bugs: %+v", rows)
	}
	// mysql's bugs include inter-procedural chains: depth 1 must miss
	// some.
	if rows[0].TP >= rows[1].TP && rows[0].TP == 4 {
		t.Fatalf("depth 1 should not reach full recall: %+v", rows)
	}
	if RenderDepthSweep(rows) == "" {
		t.Fatal("empty render")
	}
}
