package bench

import (
	"runtime"
	"time"
)

// MemUsage captures the memory cost of running f: the cumulative
// allocation volume (TotalAlloc delta — deterministic and monotone, the
// primary metric) and the live heap after the call with f's results still
// referenced (HeapAlloc after a GC).
type MemUsage struct {
	// AllocBytes is the total allocation volume of f.
	AllocBytes uint64
	// LiveBytes is the live heap growth attributable to f's results.
	LiveBytes uint64
}

// MeasureMem runs f and reports its memory usage and duration. The
// function's return value must keep its data structures reachable so
// LiveBytes reflects retained memory.
func MeasureMem(f func() any) (any, MemUsage, time.Duration) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	result := f()
	dur := time.Since(t0)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	runtime.GC()
	var m2 runtime.MemStats
	runtime.ReadMemStats(&m2)
	mu := MemUsage{
		AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
	}
	if m2.HeapAlloc > m0.HeapAlloc {
		mu.LiveBytes = m2.HeapAlloc - m0.HeapAlloc
	}
	runtime.KeepAlive(result)
	return result, mu, dur
}

// MB renders bytes as mebibytes.
func MB(b uint64) float64 { return float64(b) / (1 << 20) }
