package bench

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/workload"
)

// SMT query-elimination experiment: how many of the feasibility queries the
// detection stage issues are answered without entering the DPLL(T) solver —
// by the linear-time prefilter or the canonical verdict cache — and what
// that does to end-to-end detection wall time. The two configurations must
// produce byte-identical reports; the measurement aborts otherwise.

// SMTResult is the outcome of one elimination-on vs elimination-off
// measurement.
type SMTResult struct {
	Subject string
	Lines   int
	Reports int
	// Queries is the number of SMT feasibility queries issued (identical in
	// both configurations); Solved/CacheHits/PrefilterUnsat partition it in
	// the elimination-on run.
	Queries        int
	Solved         int
	CacheHits      int
	PrefilterUnsat int
	// EliminationRate is (CacheHits+PrefilterUnsat)/Queries.
	EliminationRate float64
	// CacheHitRate and PrefilterKillRate are the per-stage fractions.
	CacheHitRate      float64
	PrefilterKillRate float64
	// WallOn/WallOff are the detection wall times with the pipeline
	// enabled/disabled; Speedup is WallOff/WallOn.
	WallOff time.Duration
	WallOn  time.Duration
	Speedup float64
	// QueryNsOff and QueryNsOn are the solver-latency distributions of the
	// queries that reached DPLL(T) in each configuration (all of them when
	// off, only the residue when on).
	QueryNsOff obs.HistSnapshot
	QueryNsOn  obs.HistSnapshot
}

// MeasureSMT generates a workload subject and runs full detection twice on
// it — first with the elimination pipeline disabled, then enabled on a cold
// verdict cache — verifying byte-identical JSON reports before returning
// counters and timings.
func MeasureSMT(subj workload.Subject, scale int) (*SMTResult, error) {
	gen := workload.Generate(subj, workload.GenOptions{Scale: scale, Taint: true})
	a, err := core.BuildFromSource(gen.Units, core.BuildOptions{Workers: -1})
	if err != nil {
		return nil, err
	}
	specs := checkers.All()

	recOff := obs.New()
	offRes := a.CheckAll(specs, detect.Options{
		Workers: -1, Obs: recOff,
		DisableSMTCache: true, DisableSMTPrefilter: true,
	})

	recOn := obs.New()
	onRes := a.CheckAll(specs, detect.Options{Workers: -1, Obs: recOn})

	offJSON, err := reportsJSON(offRes.Reports)
	if err != nil {
		return nil, err
	}
	onJSON, err := reportsJSON(onRes.Reports)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(offJSON, onJSON) {
		return nil, fmt.Errorf("elimination-on and -off runs disagree on reports")
	}

	out := &SMTResult{
		Subject:    subj.Name,
		Lines:      gen.Lines,
		Reports:    len(onRes.Reports),
		WallOff:    offRes.Wall,
		WallOn:     onRes.Wall,
		QueryNsOff: recOff.Snapshot().Histograms["smt.query_ns"],
		QueryNsOn:  recOn.Snapshot().Histograms["smt.query_ns"],
	}
	for _, cs := range onRes.Checkers {
		out.Queries += cs.Stats.SMTQueries
		out.Solved += cs.Stats.SMTSolved
		out.CacheHits += cs.Stats.SMTCacheHits
		out.PrefilterUnsat += cs.Stats.SMTPrefilterUnsat
	}
	if out.Queries > 0 {
		out.EliminationRate = float64(out.CacheHits+out.PrefilterUnsat) / float64(out.Queries)
		out.CacheHitRate = float64(out.CacheHits) / float64(out.Queries)
		out.PrefilterKillRate = float64(out.PrefilterUnsat) / float64(out.Queries)
	}
	if out.WallOn > 0 {
		out.Speedup = float64(out.WallOff) / float64(out.WallOn)
	}
	return out, nil
}
