package bench

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/workload"
)

// Config tunes all experiments.
type Config struct {
	// Scale is the generated-lines-per-paper-KLoC factor (default 15).
	Scale int
	// SVFPTAWorkBudget / SVFEdgeBudget are the layered baseline's
	// timeout analogues (defaults reproduce the paper's ">135 KLoC times
	// out" boundary at the default scale; see DESIGN.md).
	SVFPTAWorkBudget int
	SVFEdgeBudget    int
	// SVFCheckWorkBudget bounds the baseline's reachability phase.
	SVFCheckWorkBudget int64
	// SVFMaxReports caps the baseline's warning flood.
	SVFMaxReports int
	// Subjects restricts the subject list (nil = all 30).
	Subjects []workload.Subject
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 15
	}
	if c.SVFPTAWorkBudget == 0 {
		c.SVFPTAWorkBudget = defaultSVFPTAWork * c.Scale / 15
	}
	if c.SVFEdgeBudget == 0 {
		c.SVFEdgeBudget = defaultSVFEdges * c.Scale / 15
	}
	if c.SVFCheckWorkBudget == 0 {
		c.SVFCheckWorkBudget = int64(defaultSVFCheckWork) * int64(c.Scale) / 15
	}
	if c.SVFMaxReports == 0 {
		c.SVFMaxReports = 25000
	}
	if c.Subjects == nil {
		c.Subjects = workload.Subjects
	}
	return c
}

// Budget defaults, calibrated at Scale=15 so the layered baseline's
// timeout threshold falls between gcc (135 paper-KLoC: Andersen work 6.6k,
// 6.5k FSVFG edges — finishes) and git (185 paper-KLoC: 11k work, 10k
// edges — times out), reproducing Table 1's NA boundary and Figure 7's
// ">135 KLoC times out" shape.
const (
	defaultSVFPTAWork   = 9_000
	defaultSVFEdges     = 8_000
	defaultSVFCheckWork = 5_000_000
)

// SubjectRun is the measured outcome of one subject under both tools.
type SubjectRun struct {
	Subject workload.Subject
	Lines   int

	// Pinpoint SEG construction (full pipeline after parsing).
	SEGTime  time.Duration
	SEGMem   MemUsage
	SEGNodes int
	SEGEdges int

	// Pinpoint checking (use-after-free).
	CheckTime   time.Duration
	CheckMem    MemUsage
	Reports     int
	TP          int
	FP          int // opaque traps + anything unexpected
	Unexpected  int // reports matching no ground-truth marker
	DetectStats detect.Stats

	// Layered baseline (Andersen + FSVFG + reachability).
	SVFBuildTime     time.Duration
	SVFBuildMem      MemUsage
	SVFNodes         int
	SVFEdges         int
	SVFTimedOut      bool
	SVFCheckTimedOut bool
	SVFCheckTime     time.Duration
	SVFReports       int
	SVFTP            int
}

// RunSubject generates one subject and measures both tools on it.
func RunSubject(s workload.Subject, cfg Config) (*SubjectRun, error) {
	cfg = cfg.withDefaults()
	gen := workload.Generate(s, workload.GenOptions{Scale: cfg.Scale})
	run := &SubjectRun{Subject: s, Lines: gen.Lines}

	// Pinpoint: SEG construction.
	var a *core.Analysis
	res, mem, dur := MeasureMem(func() any {
		an, err := core.BuildFromSource(gen.Units, core.BuildOptions{})
		if err != nil {
			return err
		}
		return an
	})
	if err, ok := res.(error); ok {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	a = res.(*core.Analysis)
	run.SEGTime, run.SEGMem = dur, mem
	run.SEGNodes, run.SEGEdges = a.Sizes.SEGNodes, a.Sizes.SEGEdges

	// Pinpoint: checking.
	var reports []detect.Report
	res, mem, dur = MeasureMem(func() any {
		r, st := a.Check(checkers.UseAfterFree(), detect.Options{})
		run.DetectStats = st
		return r
	})
	reports = res.([]detect.Report)
	run.CheckTime, run.CheckMem = dur, mem
	run.Reports = len(reports)
	for _, r := range reports {
		switch {
		case gen.Truth.IsTrueUAF(r.SourcePos.File, r.SourcePos.Line):
			run.TP++
		case gen.Truth.IsOpaqueUAF(r.SourcePos.File, r.SourcePos.Line):
			run.FP++
		default:
			run.FP++
			run.Unexpected++
		}
	}

	// Layered baseline.
	m, err := baseline.BuildBaselineModule(gen.Units)
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", s.Name, err)
	}
	var sv *baseline.SVFResult
	res, mem, _ = MeasureMem(func() any {
		return baseline.RunSVF(m, baseline.SVFOptions{
			MaxEdges:     cfg.SVFEdgeBudget,
			MaxPTAWork:   cfg.SVFPTAWorkBudget,
			MaxCheckWork: cfg.SVFCheckWorkBudget,
			MaxReports:   cfg.SVFMaxReports,
		})
	})
	sv = res.(*baseline.SVFResult)
	run.SVFBuildTime = sv.PTATime + sv.BuildTime
	run.SVFBuildMem = mem
	run.SVFNodes, run.SVFEdges = sv.Nodes, sv.Edges
	run.SVFTimedOut = sv.TimedOut
	run.SVFCheckTimedOut = sv.CheckTimedOut
	run.SVFCheckTime = sv.CheckTime
	run.SVFReports = len(sv.Reports)
	for _, r := range sv.Reports {
		if gen.Truth.IsTrueUAF(r.Source.Pos.File, r.Source.Pos.Line) {
			run.SVFTP++
		}
	}
	return run, nil
}

// RunAllSubjects measures every configured subject once; results feed
// Figures 7–10 and Table 1.
func RunAllSubjects(cfg Config) ([]*SubjectRun, error) {
	cfg = cfg.withDefaults()
	var out []*SubjectRun
	for _, s := range cfg.Subjects {
		run, err := RunSubject(s, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, run)
	}
	return out, nil
}

// TaintRun is the Table 2 measurement: one taint checker on the mysql
// subject.
type TaintRun struct {
	Checker string
	Time    time.Duration
	Mem     MemUsage
	Reports int
	TP      int
	FP      int
}

// RunTaint measures the two taint checkers on mysql (Table 2).
func RunTaint(cfg Config) ([]*TaintRun, error) {
	cfg = cfg.withDefaults()
	subj, _ := workload.SubjectByName("mysql")
	gen := workload.Generate(subj, workload.GenOptions{Scale: cfg.Scale, Taint: true})
	a, err := core.BuildFromSource(gen.Units, core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	var out []*TaintRun
	for _, spec := range []*checkers.Spec{checkers.PathTraversal(), checkers.DataTransmission()} {
		tr := &TaintRun{Checker: spec.Name}
		res, mem, dur := MeasureMem(func() any {
			r, _ := a.Check(spec, detect.Options{})
			return r
		})
		reports := res.([]detect.Report)
		tr.Time, tr.Mem = dur, mem
		tr.Reports = len(reports)
		for _, r := range reports {
			isTrue, _ := gen.Truth.MatchTaint(spec.Name, r.SourcePos.File, r.SourcePos.Line)
			if isTrue {
				tr.TP++
			} else {
				tr.FP++
			}
		}
		out = append(out, tr)
	}
	return out, nil
}

// BaselineRun is one Table 3 row: an Infer-like or CSA-like result on one
// open-source subject.
type BaselineRun struct {
	Subject workload.Subject
	Tool    string
	Time    time.Duration
	Reports int
	TP      int
	FP      int
}

// RunUnitConfinedBaselines measures the Infer-like and CSA-like tools on
// the open-source subjects (Table 3).
func RunUnitConfinedBaselines(cfg Config) ([]*BaselineRun, error) {
	cfg = cfg.withDefaults()
	var out []*BaselineRun
	for _, s := range workload.OpenSourceSubjects() {
		gen := workload.Generate(s, workload.GenOptions{Scale: cfg.Scale})
		a, err := core.BuildFromSource(gen.Units, core.BuildOptions{})
		if err != nil {
			return nil, err
		}
		for _, tool := range []string{"Infer", "CSA"} {
			br := &BaselineRun{Subject: s, Tool: tool}
			t0 := time.Now()
			var reports []detect.Report
			if tool == "Infer" {
				reports, _ = baseline.RunInferLike(a, checkers.UseAfterFree())
			} else {
				reports, _ = baseline.RunCSALike(a, checkers.UseAfterFree())
			}
			br.Time = time.Since(t0)
			br.Reports = len(reports)
			for _, r := range reports {
				if gen.Truth.IsTrueUAF(r.SourcePos.File, r.SourcePos.Line) {
					br.TP++
				} else {
					br.FP++
				}
			}
			out = append(out, br)
		}
	}
	return out, nil
}

// JulietResult is the recall experiment outcome (§5.1.2).
type JulietResult struct {
	Total    int
	Detected int
	// MissedByFlaw lists flaw types with missed cases.
	MissedByFlaw map[string]int
	FlawTypes    int
	Time         time.Duration
}

// RunJuliet runs the UAF checker over the 1421-case suite.
func RunJuliet() (*JulietResult, error) {
	cases := workload.JulietSuite()
	res := &JulietResult{
		Total:        len(cases),
		MissedByFlaw: map[string]int{},
		FlawTypes:    len(workload.FlawTypes(cases)),
	}
	t0 := time.Now()
	for _, c := range cases {
		a, err := core.BuildFromSource(c.Units, core.BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		reports, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
		if len(reports) > 0 {
			res.Detected++
		} else {
			res.MissedByFlaw[c.FlawType]++
		}
	}
	res.Time = time.Since(t0)
	return res, nil
}
