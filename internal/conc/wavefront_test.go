package conc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWavefrontRespectsDeps runs a random-ish layered DAG at several
// worker counts and asserts every node starts only after all of its
// dependencies completed.
func TestWavefrontRespectsDeps(t *testing.T) {
	const n = 64
	deps := make([][]int, n)
	for i := 2; i < n; i++ {
		// Two dependencies per node, drawn deterministically from below.
		deps[i] = []int{(i * 7) % i, (i*13 + 5) % i}
		if deps[i][0] == deps[i][1] {
			deps[i] = deps[i][:1]
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		var mu sync.Mutex
		finished := make([]bool, n)
		_, err := Wavefront(n, deps, workers, func(w, i int) error {
			mu.Lock()
			for _, d := range deps[i] {
				if !finished[d] {
					mu.Unlock()
					return fmt.Errorf("node %d started before dependency %d finished", i, d)
				}
			}
			mu.Unlock()
			mu.Lock()
			finished[i] = true
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, ok := range finished {
			if !ok {
				t.Fatalf("workers=%d: node %d never ran", workers, i)
			}
		}
	}
}

func TestWavefrontWidth(t *testing.T) {
	// A chain exposes width 1 regardless of workers.
	chain := make([][]int, 8)
	for i := 1; i < len(chain); i++ {
		chain[i] = []int{i - 1}
	}
	w, err := Wavefront(len(chain), chain, 4, func(_, _ int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Fatalf("chain width = %d, want 1", w)
	}
	// Independent nodes are all ready at once: width n.
	w, err = Wavefront(6, make([][]int, 6), 2, func(_, _ int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if w != 6 {
		t.Fatalf("independent width = %d, want 6", w)
	}
}

func TestWavefrontSequentialOrder(t *testing.T) {
	// workers=1 must execute in deterministic Kahn/FIFO order.
	deps := [][]int{nil, {0}, {0}, {1, 2}, nil}
	var order []int
	if _, err := Wavefront(len(deps), deps, 1, func(_, i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 4, 1, 2, 3}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestWavefrontErrorCancelsDependents(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran2 atomic.Bool
		deps := [][]int{nil, {0}, {1}}
		_, err := Wavefront(len(deps), deps, workers, func(_, i int) error {
			if i == 1 {
				return boom
			}
			if i == 2 {
				ran2.Store(true)
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if ran2.Load() {
			t.Fatalf("workers=%d: dependent of failed node ran", workers)
		}
	}
}

func TestWavefrontCycleDetected(t *testing.T) {
	deps := [][]int{{1}, {0}}
	_, err := Wavefront(2, deps, 2, func(_, _ int) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle error", err)
	}
}

func TestForEachCoversAll(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 100
		hit := make([]int32, n)
		if err := ForEach(n, workers, func(w, i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range hit {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestForEachLowestError checks the deterministic-error contract: with
// several failing indices the lowest one's error is returned at every
// worker count.
func TestForEachLowestError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(50, workers, func(w, i int) error {
			if i == 7 || i == 31 || i == 44 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-7" {
			t.Fatalf("workers=%d: err = %v, want fail-7", workers, err)
		}
	}
}
