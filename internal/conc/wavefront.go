package conc

import (
	"errors"
	"fmt"
	"sync"
)

// Wavefront executes the n nodes of a dependency DAG on a bounded worker
// pool. deps[i] lists the nodes that must complete before node i may
// start. Scheduling is by dependency counting: a node is enqueued the
// moment its last dependency finishes, with no level barriers, so a deep
// chain never stalls an independent wide frontier. fn receives the
// worker index w (0-based, for trace-track attribution) and the node
// index i.
//
// At workers <= 1 nodes run on one goroutine in a deterministic
// Kahn/FIFO order (seeded by ascending index). The first error cancels
// dispatch of not-yet-started nodes; nodes already in flight finish.
// Wavefront returns the peak width observed — the largest number of
// nodes simultaneously ready or running, i.e. the parallelism the DAG
// actually exposed — alongside the first error. A dependency cycle is
// reported as an error rather than deadlocking.
func Wavefront(n int, deps [][]int, workers int, fn func(w, i int) error) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, ds := range deps {
		for _, d := range ds {
			if d < 0 || d >= n || d == i {
				return 0, fmt.Errorf("conc: wavefront node %d has invalid dependency %d", i, d)
			}
			indeg[i]++
			dependents[d] = append(dependents[d], i)
		}
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		ready    []int
		running  int
		done     int
		firstErr error
		maxWidth int
	)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	maxWidth = len(ready)

	worker := func(w int) {
		mu.Lock()
		defer mu.Unlock()
		for {
			for firstErr == nil && len(ready) == 0 && done < n && running > 0 {
				cond.Wait()
			}
			if firstErr == nil && len(ready) == 0 && running == 0 && done < n {
				// Remaining nodes all wait on each other: a cycle.
				firstErr = errors.New("conc: wavefront stalled on a dependency cycle")
			}
			if firstErr != nil || len(ready) == 0 {
				cond.Broadcast()
				return
			}
			i := ready[0]
			ready = ready[1:]
			running++
			mu.Unlock()
			err := fn(w, i)
			mu.Lock()
			running--
			done++
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if firstErr == nil {
				for _, j := range dependents[i] {
					indeg[j]--
					if indeg[j] == 0 {
						ready = append(ready, j)
					}
				}
				if width := len(ready) + running; width > maxWidth {
					maxWidth = width
				}
			}
			cond.Broadcast()
		}
	}

	if workers == 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				worker(w)
			}(w)
		}
		wg.Wait()
	}
	return maxWidth, firstErr
}
