package conc

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateLimitNormalization(t *testing.T) {
	if got := NewGate(0).Limit(); got != 1 {
		t.Errorf("NewGate(0).Limit() = %d, want 1", got)
	}
	if got := NewGate(3).Limit(); got != 3 {
		t.Errorf("NewGate(3).Limit() = %d, want 3", got)
	}
	if got := NewGate(-1).Limit(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("NewGate(-1).Limit() = %d, want GOMAXPROCS", got)
	}
}

func TestGateNonBlocking(t *testing.T) {
	g := NewGate(1)
	if err := g.Enter(nil); err != nil {
		t.Fatalf("first Enter: %v", err)
	}
	if err := g.Enter(nil); err != ErrGateFull {
		t.Fatalf("second Enter = %v, want ErrGateFull", err)
	}
	g.Leave()
	if err := g.Enter(nil); err != nil {
		t.Fatalf("Enter after Leave: %v", err)
	}
	g.Leave()
}

func TestGateContextCancel(t *testing.T) {
	g := NewGate(1)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Enter(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Enter on full gate = %v, want DeadlineExceeded", err)
	}
	// An already-expired context must fail even when a slot is free.
	g.Leave()
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := g.Enter(expired); err != context.Canceled {
		t.Fatalf("Enter with canceled ctx = %v, want Canceled", err)
	}
}

func TestGateBoundsConcurrency(t *testing.T) {
	const limit, workers = 3, 16
	g := NewGate(limit)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := g.Enter(context.Background()); err != nil {
					t.Error(err)
					return
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				g.Leave()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Errorf("observed %d concurrent holders, limit %d", p, limit)
	}
	if n := g.InFlight(); n != 0 {
		t.Errorf("InFlight after drain = %d, want 0", n)
	}
}

func TestGateLeaveWithoutEnterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Leave on empty gate did not panic")
		}
	}()
	NewGate(2).Leave()
}
