package conc

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(w, i) for every i in [0, n) on up to workers
// goroutines, handing out indices in increasing order. w identifies the
// executing worker (0-based) for trace-track attribution.
//
// Error handling is deterministic: the error returned is always the one
// from the lowest-numbered index that failed. Indices below a known
// failure are never skipped (they are claimed before or concurrently
// with it), so the same input fails with the same error at every worker
// count. Indices above the lowest failure may be skipped.
func ForEach(n, workers int, fn func(w, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   int64
		errIdx = int64(n) // lowest failed index so far
		errs   = make([]error, n)
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n || int64(i) > atomic.LoadInt64(&errIdx) {
					return
				}
				if err := fn(w, i); err != nil {
					errs[i] = err
					for {
						cur := atomic.LoadInt64(&errIdx)
						if int64(i) >= cur || atomic.CompareAndSwapInt64(&errIdx, cur, int64(i)) {
							break
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if idx := atomic.LoadInt64(&errIdx); idx < int64(n) {
		return errs[idx]
	}
	return nil
}
