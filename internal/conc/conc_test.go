package conc

import (
	"runtime"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		in, want int
	}{
		{0, 1},
		{1, 1},
		{2, 2},
		{7, 7},
		{-1, runtime.GOMAXPROCS(0)},
		{-99, runtime.GOMAXPROCS(0)},
	}
	for _, c := range cases {
		if got := Workers(c.in); got != c.want {
			t.Errorf("Workers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
