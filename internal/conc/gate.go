package conc

import (
	"context"
	"errors"
)

// ErrGateFull is returned by Gate.Enter when the caller asked not to wait
// for a slot (a nil context) and none was free.
var ErrGateFull = errors.New("conc: gate full")

// Gate bounds the number of concurrently admitted operations. It is a
// counting semaphore with context-aware admission: callers block in Enter
// until a slot frees up or their context is done, so a bounded service can
// apply per-request deadlines to queueing time, not just to work time.
//
// The zero Gate is not usable; construct with NewGate.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a gate admitting at most limit concurrent holders. The
// limit is normalized by Workers, so 0/1 serialize and a negative limit
// admits GOMAXPROCS holders.
func NewGate(limit int) *Gate {
	return &Gate{slots: make(chan struct{}, Workers(limit))}
}

// Enter blocks until a slot is free or ctx is done, returning ctx.Err() in
// the latter case. A nil ctx never blocks: it admits immediately if a slot
// is free and returns ErrGateFull otherwise. Every successful Enter must be
// paired with exactly one Leave.
func (g *Gate) Enter(ctx context.Context) error {
	if ctx == nil {
		select {
		case g.slots <- struct{}{}:
			return nil
		default:
			return ErrGateFull
		}
	}
	// Don't let an already-expired context win a race against a free slot.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Leave releases a slot taken by Enter. Leaving more often than entering
// panics — it means the pairing discipline is broken.
func (g *Gate) Leave() {
	select {
	case <-g.slots:
	default:
		panic("conc: Gate.Leave without matching Enter")
	}
}

// InFlight reports the number of currently admitted holders. Diagnostic:
// the value may be stale by the time the caller looks at it.
func (g *Gate) InFlight() int { return len(g.slots) }

// Limit reports the gate's normalized admission limit.
func (g *Gate) Limit() int { return cap(g.slots) }
