// Package conc holds the small concurrency conventions shared by the
// build and detection halves of the pipeline, so the "how many workers
// does N mean" rule lives in exactly one place.
package conc

import "runtime"

// Workers normalizes a worker-count option to an effective pool size:
// 0 and 1 mean sequential (1 worker), negative selects GOMAXPROCS, and
// any other positive value is used as given. The result is always >= 1.
func Workers(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n == 0 {
		return 1
	}
	return n
}
