package summary

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/modref"
	"repro/internal/pta"
	"repro/internal/seg"
	"repro/internal/ssa"
	"repro/internal/transform"
)

func buildGraph(t *testing.T, src, fn string) *seg.Graph {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	infos := map[*ir.Func]*ssa.Info{}
	for _, f := range m.Funcs {
		inf, err := ssa.Transform(f)
		if err != nil {
			t.Fatal(err)
		}
		infos[f] = inf
	}
	if err := transform.Apply(m, modref.Analyze(m)); err != nil {
		t.Fatal(err)
	}
	f := m.ByName[fn]
	pr, err := pta.Analyze(f, infos[f], pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return seg.Build(f, infos[f], pr)
}

func TestFlowsFromParamToRet(t *testing.T) {
	g := buildGraph(t, "int id(int x) { return x; }", "id")
	tab := NewTable()
	flows := ParamToRet(tab, g)
	if len(flows[0]) == 0 {
		t.Fatalf("no param->ret flow found (VF1)")
	}
	f := flows[0][0]
	if f.Terminal().Role != seg.RoleRetArg {
		t.Fatalf("terminal role = %v", f.Terminal().Role)
	}
	if !f.Cond(g).IsTrue() {
		t.Errorf("unconditional identity has cond %s", f.Cond(g))
	}
}

func TestFlowsConditional(t *testing.T) {
	g := buildGraph(t, `
int pick(bool c, int a, int b) {
	int x = 0;
	if (c) { x = a; } else { x = b; }
	return x;
}`, "pick")
	tab := NewTable()
	// Param a (index 1) flows to the return under gate c.
	flows := ParamToRet(tab, g)
	if len(flows[1]) == 0 || len(flows[2]) == 0 {
		t.Fatalf("conditional flows missing: %v", flows)
	}
	ca := flows[1][0].Cond(g)
	cb := flows[2][0].Cond(g)
	if ca.IsTrue() || cb.IsTrue() {
		t.Errorf("gated flows are unconditional: %s / %s", ca, cb)
	}
	if g.Info.Conds.Not(ca) != cb {
		t.Errorf("gates not complementary: %s vs %s", ca, cb)
	}
}

func TestFlowsMemoized(t *testing.T) {
	g := buildGraph(t, `
int f(int x) {
	int a = x + 1;
	int b = a + 2;
	return b;
}`, "f")
	tab := NewTable()
	n := g.ValueNode(g.Fn.Params[0])
	f1 := tab.FlowsFrom(g, n)
	f2 := tab.FlowsFrom(g, n)
	if len(f1) == 0 {
		t.Fatal("no flows")
	}
	// Memoized: identical slice.
	if &f1[0] != &f2[0] {
		t.Error("FlowsFrom not memoized")
	}
}

func TestFlowsCap(t *testing.T) {
	// A function with many branches creates many flows; the cap bounds
	// them.
	src := `
int f(int x, bool c0, bool c1, bool c2, bool c3, bool c4, bool c5, bool c6, bool c7) {
	int a = x;
	if (c0) { a = a + 1; }
	if (c1) { a = a + 1; }
	if (c2) { a = a + 1; }
	if (c3) { a = a + 1; }
	if (c4) { a = a + 1; }
	if (c5) { a = a + 1; }
	if (c6) { a = a + 1; }
	if (c7) { a = a + 1; }
	use(a);
	return a;
}`
	g := buildGraph(t, src, "f")
	tab := NewTable()
	tab.MaxFlows = 4
	flows := tab.FlowsFrom(g, g.ValueNode(g.Fn.Params[0]))
	if len(flows) > 4 {
		t.Fatalf("cap violated: %d flows", len(flows))
	}
	if tab.CapHits == 0 {
		t.Error("cap hit not recorded")
	}
}

func TestFlowTerminalRoles(t *testing.T) {
	g := buildGraph(t, `
void f(int *p) {
	free(p);
	g(p);
	int v = *p;
}`, "f")
	tab := NewTable()
	flows := tab.FlowsFrom(g, g.ValueNode(g.Fn.Params[0]))
	roles := map[seg.UseRole]bool{}
	for _, fl := range flows {
		roles[fl.Terminal().Role] = true
	}
	for _, want := range []seg.UseRole{seg.RoleFreeArg, seg.RoleCallArg, seg.RoleDerefAddr} {
		if !roles[want] {
			t.Errorf("missing terminal role %v (got %v)", want, roles)
		}
	}
}
