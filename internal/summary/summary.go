// Package summary implements the memoized local value-flow summaries of
// Pinpoint §3.3.2. A flow records one local value-flow path from a starting
// vertex to a "terminal" use vertex (a return operand, a call argument, a
// dereference, a free, ...). The global detector composes flows across
// functions:
//
//   - VF1 (parameter → return value) corresponds to flows from a parameter
//     vertex terminating at a RoleRetArg vertex;
//   - VF2 (source → return value), VF3 (parameter → source) and VF4
//     (parameter → sink) correspond to flows whose terminal is the relevant
//     checker vertex.
//
// The RV summaries of the paper — constraints describing a return value's
// range — are not materialized here: the SMT encoder reconstructs them
// lazily and memoized per (context, value) from the SEG's data dependence,
// which is equivalent and avoids cloning constraints for call sites that
// are never reached by a query.
//
// Flows are memoized per (graph, start vertex) and capped: at most MaxFlows
// flows per vertex and MaxSteps vertices per flow. Caps trade recall inside
// pathological functions for bounded memory, mirroring the paper's budget
// knobs; the harness counts cap hits.
package summary

import (
	"repro/internal/cond"
	"repro/internal/seg"
)

// Step is one vertex on a flow with the condition labeling the edge that
// entered it (true for the first step).
type Step struct {
	Node     *seg.Node
	EdgeCond *cond.Cond
}

// Flow is a local value-flow path ending at a use vertex.
type Flow struct {
	Steps []Step
}

// Terminal returns the flow's final vertex.
func (f Flow) Terminal() *seg.Node { return f.Steps[len(f.Steps)-1].Node }

// Cond conjoins the flow's edge conditions and the control dependence of
// every step's statement in the given graph — the PC(π) skeleton of
// Equation 1 (the DD closure is added by the SMT encoder).
func (f Flow) Cond(g *seg.Graph) *cond.Cond {
	cb := g.Info.Conds
	parts := make([]*cond.Cond, 0, len(f.Steps)*2)
	for _, s := range f.Steps {
		parts = append(parts, s.EdgeCond)
		if s.Node.Instr != nil {
			parts = append(parts, g.CD(s.Node.Instr))
		}
	}
	return cb.And(parts...)
}

// Table memoizes flow enumeration per SEG vertex.
type Table struct {
	// MaxFlows caps the flows returned per start vertex.
	MaxFlows int
	// MaxSteps caps the length of one flow.
	MaxSteps int

	memo map[*seg.Node][]Flow
	// CapHits counts vertices whose enumeration was truncated.
	CapHits int
	// Hits and Misses count FlowsFrom lookups served from / populating the
	// memo (including recursive enumeration steps). Like the memo itself
	// they are guarded by the caller's per-table lock; the detection layer
	// aggregates them into cache hit rates.
	Hits   int
	Misses int
}

// NewTable returns a Table with default caps.
func NewTable() *Table {
	return &Table{MaxFlows: 64, MaxSteps: 120, memo: make(map[*seg.Node][]Flow)}
}

// FlowsFrom enumerates local flows starting at from. The result is memoized
// and shared; callers must not mutate it.
func (t *Table) FlowsFrom(g *seg.Graph, from *seg.Node) []Flow {
	if fs, ok := t.memo[from]; ok {
		t.Hits++
		return fs
	}
	t.Misses++
	// Mark in-progress to cut (impossible in a DAG, defensive) cycles.
	t.memo[from] = nil
	var out []Flow
	if from.Kind == seg.NUse {
		out = []Flow{{Steps: []Step{{Node: from, EdgeCond: g.Info.Conds.True()}}}}
		t.memo[from] = out
		return out
	}
	truncated := false
	for _, e := range g.Succs(from) {
		sub := t.FlowsFrom(g, e.To)
		for _, sf := range sub {
			if len(out) >= t.MaxFlows {
				truncated = true
				break
			}
			if len(sf.Steps)+1 > t.MaxSteps {
				truncated = true
				continue
			}
			steps := make([]Step, 0, len(sf.Steps)+1)
			steps = append(steps, Step{Node: from, EdgeCond: g.Info.Conds.True()})
			// The first step of the sub-flow carries the edge e's
			// condition into it.
			steps = append(steps, Step{Node: sf.Steps[0].Node, EdgeCond: e.Cond})
			steps = append(steps, sf.Steps[1:]...)
			out = append(out, Flow{Steps: steps})
		}
		if len(out) >= t.MaxFlows {
			truncated = true
			break
		}
	}
	if truncated {
		t.CapHits++
	}
	t.memo[from] = out
	return out
}

// FlowsBetween filters FlowsFrom down to flows ending at a particular
// terminal role.
func (t *Table) FlowsBetween(g *seg.Graph, from *seg.Node, role seg.UseRole) []Flow {
	var out []Flow
	for _, f := range t.FlowsFrom(g, from) {
		if f.Terminal().Role == role {
			out = append(out, f)
		}
	}
	return out
}

// ParamToRet reports the VF1 relation for a function graph: flows from each
// parameter to return operands, keyed by parameter index.
func ParamToRet(t *Table, g *seg.Graph) map[int][]Flow {
	out := make(map[int][]Flow)
	for _, p := range g.Fn.Params {
		flows := t.FlowsBetween(g, g.ValueNode(p), seg.RoleRetArg)
		if len(flows) > 0 {
			out[p.ParamIdx] = flows
		}
	}
	return out
}
