package ssa

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/wirebin"
)

// Wire form of an Info for the persistent artifact store. Only state that
// cannot be recomputed deterministically from the (already serialized)
// function and condition builder goes on the wire: the φ gates, the
// atom-to-value mapping, and the canonical reach conditions. Dominator
// trees, control dependences, and RPO numbering are pure functions of the
// CFG and are rebuilt at import; the lazy memos (JoinGates, CDCond) start
// empty and replay into the imported builder, which hash-conses them back
// to the identical nodes.

// GateWire serializes one φ's gate list (parallel to the φ's Args).
type GateWire struct {
	Instr int32
	Gates []int32 // condition node IDs, -1 = nil
}

// AtomWire serializes one AtomValue entry.
type AtomWire struct {
	Atom int32
	Val  int32
}

// ReachWire serializes one block's canonical reach condition.
type ReachWire struct {
	Block int32
	Cond  int32
}

// InfoWire is the serialized form of an Info (minus Fn and Conds, which
// are serialized separately and passed back in at import).
type InfoWire struct {
	Gates     []GateWire
	AtomValue []AtomWire
	Reach     []ReachWire
}

func condID(c *cond.Cond) int32 {
	if c == nil {
		return -1
	}
	return int32(c.ID())
}

// ExportInfo flattens inf into wire form. The caller must ensure no
// concurrent mutation (no in-flight detection on this function).
func ExportInfo(inf *Info) *InfoWire {
	w := &InfoWire{}
	for in, gates := range inf.Gates {
		gw := GateWire{Instr: int32(in.ID), Gates: make([]int32, len(gates))}
		for i, g := range gates {
			gw.Gates[i] = condID(g)
		}
		w.Gates = append(w.Gates, gw)
	}
	sort.Slice(w.Gates, func(i, j int) bool { return w.Gates[i].Instr < w.Gates[j].Instr })
	for a, v := range inf.AtomValue {
		w.AtomValue = append(w.AtomValue, AtomWire{Atom: int32(a), Val: int32(v.ID)})
	}
	sort.Slice(w.AtomValue, func(i, j int) bool { return w.AtomValue[i].Atom < w.AtomValue[j].Atom })
	for b, c := range inf.ReachCond {
		w.Reach = append(w.Reach, ReachWire{Block: int32(b.ID), Cond: condID(c)})
	}
	sort.Slice(w.Reach, func(i, j int) bool { return w.Reach[i].Block < w.Reach[j].Block })
	return w
}

// ImportInfo rebuilds an Info for f from wire form. ix must be the Index
// returned by ir.ImportFunc for f; b and nodes the builder and dense node
// slice returned by cond.ImportBuilder.
func ImportInfo(w *InfoWire, f *ir.Func, ix *ir.Index, b *cond.Builder, nodes []*cond.Cond) (*Info, error) {
	order, err := cfg.Topological(f)
	if err != nil {
		return nil, fmt.Errorf("ssa: import %s: %w", f.Name, err)
	}
	dom := cfg.Dominators(f)
	pdom := cfg.PostDominators(f)
	inf := &Info{
		Fn:        f,
		Conds:     b,
		Gates:     make(map[*ir.Instr][]*cond.Cond, len(w.Gates)),
		Dom:       dom,
		PostDom:   pdom,
		AtomValue: make(map[int]*ir.Value, len(w.AtomValue)),
		ReachCond: make(map[*ir.Block]*cond.Cond, len(w.Reach)),
		rpoIdx:    make(map[*ir.Block]int, len(order)),
		joinGates: make(map[*ir.Block]map[*ir.Block]*cond.Cond),
	}
	for i, blk := range order {
		inf.rpoIdx[blk] = i
	}
	inf.CD = cfg.ControlDeps(f, pdom)

	node := func(id int32) (*cond.Cond, error) {
		if id == -1 {
			return nil, nil
		}
		if id < 0 || int(id) >= len(nodes) {
			return nil, fmt.Errorf("ssa: import %s: bad cond id %d", f.Name, id)
		}
		return nodes[id], nil
	}
	for _, gw := range w.Gates {
		if gw.Instr < 0 || int(gw.Instr) >= len(ix.Instrs) || ix.Instrs[gw.Instr] == nil {
			return nil, fmt.Errorf("ssa: import %s: bad gate instr id %d", f.Name, gw.Instr)
		}
		gates := make([]*cond.Cond, len(gw.Gates))
		for i, id := range gw.Gates {
			if gates[i], err = node(id); err != nil {
				return nil, err
			}
		}
		inf.Gates[ix.Instrs[gw.Instr]] = gates
	}
	for _, aw := range w.AtomValue {
		if aw.Val < 0 || int(aw.Val) >= len(ix.Values) || ix.Values[aw.Val] == nil {
			return nil, fmt.Errorf("ssa: import %s: bad atom value id %d", f.Name, aw.Val)
		}
		inf.AtomValue[int(aw.Atom)] = ix.Values[aw.Val]
	}
	for _, rw := range w.Reach {
		if rw.Block < 0 || int(rw.Block) >= len(ix.Blocks) || ix.Blocks[rw.Block] == nil {
			return nil, fmt.Errorf("ssa: import %s: bad reach block id %d", f.Name, rw.Block)
		}
		c, err := node(rw.Cond)
		if err != nil {
			return nil, err
		}
		inf.ReachCond[ix.Blocks[rw.Block]] = c
	}
	return inf, nil
}

// AppendWire appends w's binary encoding to e.
func (w *InfoWire) AppendWire(e *wirebin.Writer) {
	e.Uvarint(uint64(len(w.Gates)))
	for i := range w.Gates {
		e.I32(w.Gates[i].Instr)
		e.I32s(w.Gates[i].Gates)
	}
	e.Uvarint(uint64(len(w.AtomValue)))
	for i := range w.AtomValue {
		e.I32(w.AtomValue[i].Atom)
		e.I32(w.AtomValue[i].Val)
	}
	e.Uvarint(uint64(len(w.Reach)))
	for i := range w.Reach {
		e.I32(w.Reach[i].Block)
		e.I32(w.Reach[i].Cond)
	}
}

// DecodeInfoWire reads one InfoWire from r.
func DecodeInfoWire(r *wirebin.Reader) (*InfoWire, error) {
	w := &InfoWire{}
	if n := r.Len(); n > 0 {
		w.Gates = make([]GateWire, n)
		for i := range w.Gates {
			w.Gates[i] = GateWire{Instr: r.I32(), Gates: r.I32s()}
		}
	}
	if n := r.Len(); n > 0 {
		w.AtomValue = make([]AtomWire, n)
		for i := range w.AtomValue {
			w.AtomValue[i] = AtomWire{Atom: r.I32(), Val: r.I32()}
		}
	}
	if n := r.Len(); n > 0 {
		w.Reach = make([]ReachWire, n)
		for i := range w.Reach {
			w.Reach[i] = ReachWire{Block: r.I32(), Cond: r.I32()}
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ssa: decode info wire: %w", err)
	}
	return w, nil
}
