// Package ssa converts lowered IR functions into SSA form and computes the
// gating conditions of φ-assignments.
//
// Pinpoint's SEG (Definition 3.2) labels the data-dependence edge of each φ
// operand with the condition under which that operand is selected — the
// "gated function" of Tu and Padua, computable in near-linear time because
// the lowered CFGs are acyclic (loops are unrolled once during lowering).
// This package performs:
//
//  1. semi-pruned φ insertion on iterated dominance frontiers (Cytron);
//  2. stack-based renaming over the dominator tree;
//  3. dead-φ elimination;
//  4. gate computation: for a φ in join J with operand arriving from
//     predecessor P, the gate is the condition of reaching P from idom(J)
//     and taking the edge P→J, expressed over branch-condition atoms.
//
// Atoms in the condition domain are SSA value IDs of branch conditions, so
// downstream passes can map atoms back to program values when encoding SMT
// queries.
package ssa

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/cond"
	"repro/internal/ir"
)

// Info carries the analysis artifacts of SSA conversion that later passes
// (points-to, SEG construction, detection) consume.
type Info struct {
	Fn *ir.Func
	// Conds builds and interns all conditions of this function.
	Conds *cond.Builder
	// Gates maps each φ instruction to the per-operand gate conditions,
	// parallel to the φ's Args.
	Gates map[*ir.Instr][]*cond.Cond
	// CD maps each block to its control dependences.
	CD map[*ir.Block][]cfg.CDep
	// Dom and PostDom are the dominator trees.
	Dom, PostDom *cfg.DomTree
	// AtomValue maps condition atom IDs back to SSA values.
	AtomValue map[int]*ir.Value
	// ReachCond maps each block to the condition, over branch atoms, of
	// reaching it from the entry ("canonical" reach condition; the SEG
	// uses control dependence instead, this is kept for the quasi
	// points-to analysis and for tests).
	ReachCond map[*ir.Block]*cond.Cond

	rpoIdx    map[*ir.Block]int
	joinGates map[*ir.Block]map[*ir.Block]*cond.Cond
	// cdCond memoizes CDCond per block once PrepareCDConds has run, making
	// subsequent CDCond calls read-only (and therefore safe to issue from
	// concurrent detection workers).
	cdCond map[*ir.Block]*cond.Cond
}

// Atom returns the condition atom for an SSA boolean value, registering the
// reverse mapping. Values are canonicalized through copies and negations
// ("t = !c" yields ¬atom(c), not a fresh atom), so complementary branch
// conditions share atoms — exactly what lets the linear-time contradiction
// solver of §3.1.1 catch "free under c, use under !c" patterns without the
// SMT solver.
func (inf *Info) Atom(v *ir.Value) *cond.Cond {
	neg := false
	for v.Def != nil {
		if v.Def.Op == ir.OpCopy {
			v = v.Def.Args[0]
			continue
		}
		if v.Def.Op == ir.OpUn && v.Def.Sub == "!" {
			neg = !neg
			v = v.Def.Args[0]
			continue
		}
		break
	}
	var a *cond.Cond
	if v.Kind == ir.VConstBool {
		a = inf.Conds.True()
		if !v.BoolVal {
			a = inf.Conds.False()
		}
	} else {
		inf.AtomValue[v.ID] = v
		a = inf.Conds.Atom(v.ID)
	}
	if neg {
		a = inf.Conds.Not(a)
	}
	return a
}

// EdgeCond returns the condition attached to the CFG edge from→to.
func (inf *Info) EdgeCond(from, to *ir.Block) *cond.Cond {
	term := from.Term()
	if term == nil || term.Op != ir.OpBr {
		return inf.Conds.True()
	}
	a := inf.Atom(term.Args[0])
	if term.Blocks[0] == to {
		return a
	}
	return inf.Conds.Not(a)
}

// CDCond returns the conjunction of the direct control-dependence conditions
// of a block (not chased transitively; SEG traversal recurses over the
// controlling branch values itself, per Example 3.8 of the paper).
func (inf *Info) CDCond(b *ir.Block) *cond.Cond {
	if c, ok := inf.cdCond[b]; ok {
		return c
	}
	return inf.computeCDCond(b)
}

// PrepareCDConds computes and memoizes CDCond for every block of the
// function. Atom registration (which mutates AtomValue) happens here, on one
// goroutine; after this call CDCond performs only map reads, so detection
// workers can query control dependences concurrently.
func (inf *Info) PrepareCDConds() {
	if inf.cdCond != nil {
		return
	}
	m := make(map[*ir.Block]*cond.Cond, len(inf.Fn.Blocks))
	for _, b := range inf.Fn.Blocks {
		m[b] = inf.computeCDCond(b)
	}
	inf.cdCond = m
}

func (inf *Info) computeCDCond(b *ir.Block) *cond.Cond {
	deps := inf.CD[b]
	if len(deps) == 0 {
		return inf.Conds.True()
	}
	cs := make([]*cond.Cond, 0, len(deps))
	for _, d := range deps {
		a := inf.Atom(d.Cond())
		if !d.OnTrue {
			a = inf.Conds.Not(a)
		}
		cs = append(cs, a)
	}
	return inf.Conds.And(cs...)
}

// Transform converts f to SSA form in place and returns the associated Info.
// The CFG must be acyclic.
func Transform(f *ir.Func) (*Info, error) {
	order, err := cfg.Topological(f)
	if err != nil {
		return nil, err
	}
	dom := cfg.Dominators(f)
	pdom := cfg.PostDominators(f)
	df := cfg.DominanceFrontier(f, dom)

	insertPhis(f, dom, df)
	rename(f, dom)
	eliminateDeadPhis(f)

	inf := &Info{
		Fn:        f,
		Conds:     cond.NewBuilder(),
		Gates:     make(map[*ir.Instr][]*cond.Cond),
		Dom:       dom,
		PostDom:   pdom,
		AtomValue: make(map[int]*ir.Value),
		ReachCond: make(map[*ir.Block]*cond.Cond),
		rpoIdx:    make(map[*ir.Block]int, len(order)),
		joinGates: make(map[*ir.Block]map[*ir.Block]*cond.Cond),
	}
	for i, b := range order {
		inf.rpoIdx[b] = i
	}
	inf.CD = cfg.ControlDeps(f, pdom)
	computeReachConds(inf, order)
	computeGates(inf, order)
	return inf, nil
}

// varSites records the definition sites of one pre-SSA variable.
type varSites struct {
	v       *ir.Value
	defs    []*ir.Block
	global  bool // used in a block other than (or before) its definition
	defSeen map[*ir.Block]bool
}

// insertPhis places φ instructions for multi-block variables on iterated
// dominance frontiers.
func insertPhis(f *ir.Func, dom *cfg.DomTree, df map[*ir.Block][]*ir.Block) {
	sites := make(map[*ir.Value]*varSites)
	get := func(v *ir.Value) *varSites {
		s := sites[v]
		if s == nil {
			s = &varSites{v: v, defSeen: make(map[*ir.Block]bool)}
			sites[v] = s
		}
		return s
	}
	for _, b := range f.Blocks {
		definedHere := make(map[*ir.Value]bool)
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a.Kind == ir.VVar && !definedHere[a] {
					get(a).global = true
				}
			}
			for _, d := range in.Defs() {
				if d.Kind == ir.VVar {
					s := get(d)
					if !s.defSeen[b] {
						s.defSeen[b] = true
						s.defs = append(s.defs, b)
					}
					definedHere[d] = true
				}
			}
		}
	}

	var vars []*varSites
	for _, s := range sites {
		if s.global && len(s.defs) > 0 {
			vars = append(vars, s)
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].v.ID < vars[j].v.ID })

	for _, s := range vars {
		if len(s.defs) < 2 && !needsPhiSingleDef(s) {
			continue
		}
		placed := make(map[*ir.Block]bool)
		work := append([]*ir.Block(nil), s.defs...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, w := range df[b] {
				if placed[w] {
					continue
				}
				placed[w] = true
				args := make([]*ir.Value, len(w.Preds))
				blocks := make([]*ir.Block, len(w.Preds))
				for i, p := range w.Preds {
					args[i] = s.v
					blocks[i] = p
				}
				f.InsertAt(w, 0, ir.Instr{
					Op: ir.OpPhi, Dst: s.v, Args: args, Blocks: blocks,
				})
				if !s.defSeen[w] {
					s.defSeen[w] = true
					work = append(work, w)
				}
			}
		}
	}
}

// needsPhiSingleDef reports whether a variable with a single def block still
// needs φs. With MiniC's declare-before-use discipline the answer is no:
// the single def dominates all uses.
func needsPhiSingleDef(s *varSites) bool { return false }

// rename walks the dominator tree replacing variable defs with fresh SSA
// versions and uses with the reaching version.
func rename(f *ir.Func, dom *cfg.DomTree) {
	stacks := make(map[*ir.Value][]*ir.Value)
	version := make(map[*ir.Value]int)

	top := func(v *ir.Value) *ir.Value {
		if s := stacks[v]; len(s) > 0 {
			return s[len(s)-1]
		}
		// Use before def: should not happen for well-formed lowering;
		// treat the variable itself as an "undef version 0".
		return v
	}
	fresh := func(v *ir.Value) *ir.Value {
		version[v]++
		nv := f.NewVar(fmt.Sprintf("%s.%d", v.Name, version[v]), v.Type)
		stacks[v] = append(stacks[v], nv)
		return nv
	}

	// Deterministic child order.
	children := func(b *ir.Block) []*ir.Block {
		cs := append([]*ir.Block(nil), dom.Children[b]...)
		sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
		return cs
	}

	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		pushed := make(map[*ir.Value]int)
		for _, in := range b.Instrs {
			if in.Op != ir.OpPhi {
				for i, a := range in.Args {
					if a.Kind == ir.VVar {
						in.Args[i] = top(a)
					}
				}
			}
			if in.Op == ir.OpCall {
				for i, d := range in.Dsts {
					if d != nil && d.Kind == ir.VVar {
						nv := fresh(d)
						nv.Def = in
						in.Dsts[i] = nv
						pushed[d]++
					}
				}
				continue
			}
			if in.Dst != nil && in.Dst.Kind == ir.VVar {
				old := in.Dst
				nv := fresh(old)
				nv.Def = in
				in.Dst = nv
				pushed[old]++
			}
		}
		// Fill φ operands of successors with the current versions.
		for _, s := range b.Succs {
			for _, in := range s.Instrs {
				if in.Op != ir.OpPhi {
					break
				}
				for i, pb := range in.Blocks {
					if pb == b && in.Args[i].Kind == ir.VVar {
						in.Args[i] = top(in.Args[i])
					}
				}
			}
		}
		for _, c := range children(b) {
			walk(c)
		}
		for v, n := range pushed {
			stacks[v] = stacks[v][:len(stacks[v])-n]
		}
	}
	walk(f.Entry)
}

// eliminateDeadPhis removes φ instructions whose destination is never used,
// iterating to a fixpoint.
func eliminateDeadPhis(f *ir.Func) {
	for {
		used := make(map[*ir.Value]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					used[a] = true
				}
			}
		}
		removed := false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op == ir.OpPhi && !used[in.Dst] {
					removed = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !removed {
			return
		}
	}
}

// computeReachConds computes, for every block, the canonical condition of
// reaching it from the entry, in topological order.
func computeReachConds(inf *Info, order []*ir.Block) {
	inf.ReachCond[inf.Fn.Entry] = inf.Conds.True()
	for _, b := range order {
		if b == inf.Fn.Entry {
			continue
		}
		var parts []*cond.Cond
		for _, p := range b.Preds {
			rc, ok := inf.ReachCond[p]
			if !ok {
				continue
			}
			parts = append(parts, inf.Conds.And(rc, inf.EdgeCond(p, b)))
		}
		inf.ReachCond[b] = inf.Conds.Or(parts...)
	}
}

// JoinGates returns, for a block with multiple predecessors, the gate
// condition of each incoming edge: the condition of reaching the
// predecessor from idom(join) and taking the edge into the join. Results
// are memoized. Single-predecessor blocks gate on the edge condition alone.
func (inf *Info) JoinGates(join *ir.Block) map[*ir.Block]*cond.Cond {
	if g, ok := inf.joinGates[join]; ok {
		return g
	}
	d := inf.Dom.Idom[join]
	if d == nil {
		d = inf.Fn.Entry
	}
	// Region: blocks backward-reachable from join's preds up to d.
	// Because idom(join) dominates join, every path from idom(join) to
	// join stays within this region, so a local topological sweep
	// computes exact reach conditions relative to d.
	region := map[*ir.Block]bool{d: true}
	var stack []*ir.Block
	push := func(b *ir.Block) {
		if !region[b] {
			region[b] = true
			stack = append(stack, b)
		}
	}
	for _, p := range join.Preds {
		push(p)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range b.Preds {
			push(p)
		}
	}
	var blocks []*ir.Block
	for b := range region {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return inf.rpoIdx[blocks[i]] < inf.rpoIdx[blocks[j]] })
	reach := map[*ir.Block]*cond.Cond{d: inf.Conds.True()}
	for _, b := range blocks {
		if b == d {
			continue
		}
		var parts []*cond.Cond
		for _, p := range b.Preds {
			if rc, ok := reach[p]; ok {
				parts = append(parts, inf.Conds.And(rc, inf.EdgeCond(p, b)))
			}
		}
		reach[b] = inf.Conds.Or(parts...)
	}
	gates := make(map[*ir.Block]*cond.Cond, len(join.Preds))
	for _, pb := range join.Preds {
		rc := reach[pb]
		if rc == nil {
			rc = inf.Conds.False()
		}
		gates[pb] = inf.Conds.And(rc, inf.EdgeCond(pb, join))
	}
	inf.joinGates[join] = gates
	return gates
}

// computeGates fills Info.Gates for every φ from the join gates.
func computeGates(inf *Info, order []*ir.Block) {
	for _, join := range inf.Fn.Blocks {
		var phis []*ir.Instr
		for _, in := range join.Instrs {
			if in.Op == ir.OpPhi {
				phis = append(phis, in)
			} else {
				break
			}
		}
		if len(phis) == 0 {
			continue
		}
		jg := inf.JoinGates(join)
		for _, phi := range phis {
			gates := make([]*cond.Cond, len(phi.Args))
			for i, pb := range phi.Blocks {
				gates[i] = jg[pb]
			}
			inf.Gates[phi] = gates
		}
	}
}
