package ssa

import (
	"testing"

	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
)

func buildSSA(t *testing.T, src string) (*ir.Module, map[string]*Info) {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	infos := make(map[string]*Info)
	for _, f := range m.Funcs {
		inf, err := Transform(f)
		if err != nil {
			t.Fatalf("ssa %s: %v", f.Name, err)
		}
		if err := ir.Verify(f); err != nil {
			t.Fatalf("verify after ssa %s: %v\n%s", f.Name, err, f)
		}
		infos[f.Name] = inf
	}
	return m, infos
}

func phis(f *ir.Func) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				out = append(out, in)
			}
		}
	}
	return out
}

// checkSingleAssignment verifies every non-constant value has at most one
// defining instruction.
func checkSingleAssignment(t *testing.T, f *ir.Func) {
	t.Helper()
	defs := make(map[*ir.Value]int)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.Defs() {
				defs[d]++
			}
		}
	}
	for v, n := range defs {
		if n > 1 {
			t.Errorf("%s: value %s defined %d times", f.Name, v, n)
		}
	}
}

func TestSSADiamondPhi(t *testing.T) {
	m, infos := buildSSA(t, `
int f(bool c) {
	int x = 0;
	if (c) { x = 1; } else { x = 2; }
	return x;
}`)
	f := m.ByName["f"]
	checkSingleAssignment(t, f)
	ps := phis(f)
	if len(ps) == 0 {
		t.Fatalf("no phi inserted:\n%s", f)
	}
	// Each phi has gates, and the gates are complementary atoms.
	inf := infos["f"]
	for _, phi := range ps {
		gates := inf.Gates[phi]
		if len(gates) != len(phi.Args) {
			t.Fatalf("gate arity mismatch: %d vs %d", len(gates), len(phi.Args))
		}
		// One gate must be an atom, the other its negation.
		g0, g1 := gates[0], gates[1]
		if inf.Conds.Not(g0) != g1 {
			t.Errorf("gates not complementary: %s vs %s", g0, g1)
		}
	}
}

func TestSSANoPhiForStraightLine(t *testing.T) {
	m, _ := buildSSA(t, "int f(int a) { int x = a + 1; int y = x * 2; return y; }")
	f := m.ByName["f"]
	if got := len(phis(f)); got != 0 {
		t.Errorf("phi count = %d, want 0:\n%s", got, f)
	}
	checkSingleAssignment(t, f)
}

func TestSSAUsesReachingVersion(t *testing.T) {
	m, _ := buildSSA(t, `
int f(int a) {
	int x = 1;
	x = x + a;
	x = x + a;
	return x;
}`)
	f := m.ByName["f"]
	checkSingleAssignment(t, f)
	// The return value's chain must reach through two additions.
	ret := f.Exit.Term()
	v := ret.Args[0]
	depth := 0
	for v.Def != nil && depth < 10 {
		if v.Def.Op == ir.OpBin {
			depth++
			v = v.Def.Args[0]
		} else if v.Def.Op == ir.OpCopy || v.Def.Op == ir.OpPhi {
			v = v.Def.Args[0]
		} else {
			break
		}
	}
	if depth != 2 {
		t.Errorf("def-use chain depth = %d, want 2:\n%s", depth, f)
	}
}

func TestSSANestedBranchesGates(t *testing.T) {
	m, infos := buildSSA(t, `
int f(bool a, bool b) {
	int x = 0;
	if (a) {
		if (b) { x = 1; } else { x = 2; }
	}
	return x;
}`)
	f := m.ByName["f"]
	inf := infos["f"]
	checkSingleAssignment(t, f)
	ps := phis(f)
	if len(ps) < 2 {
		t.Fatalf("want >=2 phis (inner join and outer join), got %d:\n%s", len(ps), f)
	}
	// Every gate of every phi must be satisfiable on its own (the
	// linear filter should not reject any single gate).
	ls := cond.NewLinearSolver()
	for _, phi := range ps {
		for _, g := range inf.Gates[phi] {
			if ls.ApparentlyUnsat(g) {
				t.Errorf("gate %s apparently unsat", g)
			}
		}
	}
}

func TestSSAReachCond(t *testing.T) {
	m, infos := buildSSA(t, `
void f(bool c) {
	if (c) { g(); } else { h(); }
	k();
}`)
	f := m.ByName["f"]
	inf := infos["f"]
	if !inf.ReachCond[f.Entry].IsTrue() {
		t.Error("entry reach cond not true")
	}
	// Find the blocks containing the calls.
	find := func(name string) *ir.Block {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee == name {
					return b
				}
			}
		}
		t.Fatalf("call %s not found", name)
		return nil
	}
	gB, hB, kB := find("g"), find("h"), find("k")
	gc, hc := inf.ReachCond[gB], inf.ReachCond[hB]
	if gc.IsTrue() || hc.IsTrue() {
		t.Errorf("branch arm reach conds unconditional: %s / %s", gc, hc)
	}
	if inf.Conds.Not(gc) != hc {
		t.Errorf("arm conditions not complementary: %s vs %s", gc, hc)
	}
	if !inf.ReachCond[kB].IsTrue() {
		t.Errorf("join reach cond = %s, want true", inf.ReachCond[kB])
	}
}

func TestSSACDCond(t *testing.T) {
	m, infos := buildSSA(t, `
void f(bool c) {
	if (c) { g(); }
}`)
	f := m.ByName["f"]
	inf := infos["f"]
	var gB *ir.Block
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				gB = b
			}
		}
	}
	cc := inf.CDCond(gB)
	if cc.IsTrue() || cc.IsFalse() {
		t.Fatalf("CDCond = %s, want an atom", cc)
	}
	if cc.Kind() != cond.KAtom {
		t.Fatalf("CDCond kind = %v, want atom", cc.Kind())
	}
	// The atom maps back to a bool-typed SSA value.
	v := inf.AtomValue[cc.Atom()]
	if v == nil || v.Type.Base != "bool" {
		t.Fatalf("atom value = %v", v)
	}
}

func TestSSAWhileUnrolledPhi(t *testing.T) {
	m, _ := buildSSA(t, `
int f(int n) {
	int s = 0;
	while (n > 0) { s = s + n; }
	return s;
}`)
	f := m.ByName["f"]
	checkSingleAssignment(t, f)
	if len(phis(f)) == 0 {
		t.Errorf("unrolled while should still merge s via phi:\n%s", f)
	}
}

func TestSSADeadPhiElimination(t *testing.T) {
	m, _ := buildSSA(t, `
void f(bool c) {
	int x = 0;
	if (c) { x = 1; } else { x = 2; }
	// x never used after the merge
}`)
	f := m.ByName["f"]
	if got := len(phis(f)); got != 0 {
		t.Errorf("dead phi not eliminated (%d left):\n%s", got, f)
	}
}

func TestSSAShortCircuitGates(t *testing.T) {
	m, infos := buildSSA(t, `
void f(bool a, bool b) {
	if (a && b) { g(); }
}`)
	f := m.ByName["f"]
	inf := infos["f"]
	// The && produces a phi for the temp; the call block's control
	// dependence references the merged value.
	var gB *ir.Block
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpCall && in.Callee == "g" {
				gB = blk
			}
		}
	}
	cc := inf.CDCond(gB)
	if cc.IsTrue() {
		t.Fatal("short-circuit condition lost")
	}
	checkSingleAssignment(t, f)
}

func TestSSAConstantBranch(t *testing.T) {
	m, infos := buildSSA(t, `
int f() {
	int x = 0;
	if (true) { x = 1; } else { x = 2; }
	return x;
}`)
	f := m.ByName["f"]
	inf := infos["f"]
	for _, phi := range phis(f) {
		gates := inf.Gates[phi]
		// With a constant-true branch one gate folds to true and the
		// other to false.
		hasTrue, hasFalse := false, false
		for _, g := range gates {
			if g.IsTrue() {
				hasTrue = true
			}
			if g.IsFalse() {
				hasFalse = true
			}
		}
		if !hasTrue || !hasFalse {
			t.Errorf("constant branch gates = %v", gates)
		}
	}
}

func TestSSACallMultipleDsts(t *testing.T) {
	// Calls define their receivers; SSA must rename them.
	m, _ := buildSSA(t, `
int g() { return 1; }
int f(bool c) {
	int x = g();
	if (c) { x = g(); }
	return x;
}`)
	checkSingleAssignment(t, m.ByName["f"])
}
