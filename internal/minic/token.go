// Package minic implements the frontend for MiniC, the small C-like language
// this reproduction analyzes. MiniC matches the formal language of Pinpoint
// §3: integer and pointer values, assignments, binary/unary operations,
// k-level loads and stores, branches, calls, and returns. Loops are allowed
// in the surface syntax and are unrolled once during lowering, mirroring the
// paper's soundiness choices (§4.2).
package minic

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt // integer literal

	// Keywords.
	TokKwInt
	TokKwBool
	TokKwVoid
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwStruct
	TokKwReturn
	TokKwTrue
	TokKwFalse
	TokKwNull

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokSemi
	TokComma
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp    // &
	TokAndAnd // &&
	TokOrOr   // ||
	TokBang   // !
	TokEq     // ==
	TokNe     // !=
	TokLt
	TokLe
	TokGt
	TokGe
	TokArrow // ->
)

var tokNames = map[TokKind]string{
	TokEOF:      "EOF",
	TokIdent:    "identifier",
	TokInt:      "integer",
	TokKwInt:    "'int'",
	TokKwBool:   "'bool'",
	TokKwVoid:   "'void'",
	TokKwIf:     "'if'",
	TokKwElse:   "'else'",
	TokKwWhile:  "'while'",
	TokKwFor:    "'for'",
	TokKwStruct: "'struct'",
	TokKwReturn: "'return'",
	TokKwTrue:   "'true'",
	TokKwFalse:  "'false'",
	TokKwNull:   "'null'",
	TokLParen:   "'('",
	TokRParen:   "')'",
	TokLBrace:   "'{'",
	TokRBrace:   "'}'",
	TokSemi:     "';'",
	TokComma:    "','",
	TokAssign:   "'='",
	TokPlus:     "'+'",
	TokMinus:    "'-'",
	TokStar:     "'*'",
	TokSlash:    "'/'",
	TokPercent:  "'%'",
	TokAmp:      "'&'",
	TokAndAnd:   "'&&'",
	TokOrOr:     "'||'",
	TokBang:     "'!'",
	TokEq:       "'=='",
	TokNe:       "'!='",
	TokLt:       "'<'",
	TokLe:       "'<='",
	TokGt:       "'>'",
	TokGe:       "'>='",
	TokArrow:    "'->'",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"int":    TokKwInt,
	"bool":   TokKwBool,
	"void":   TokKwVoid,
	"if":     TokKwIf,
	"else":   TokKwElse,
	"while":  TokKwWhile,
	"for":    TokKwFor,
	"struct": TokKwStruct,
	"return": TokKwReturn,
	"true":   TokKwTrue,
	"false":  TokKwFalse,
	"null":   TokKwNull,
}

// Pos is a source position (1-based line and column) within a named file.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Lit  string // identifier text or integer literal text
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokInt:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
