package minic

import (
	"math/rand"
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("t.mc", "int x = 42; // comment\n/* block */ x <= y != z && q || !p")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []TokKind{
		TokKwInt, TokIdent, TokAssign, TokInt, TokSemi,
		TokIdent, TokLe, TokIdent, TokNe, TokIdent, TokAndAnd, TokIdent,
		TokOrOr, TokBang, TokIdent, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("f", "int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("second token at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "a | b", "/* unterminated"} {
		if _, err := Lex("t", src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

const motivatingExample = `
// Figure 1(a) of the paper, in MiniC.
void foo(int *a) {
	int **ptr = malloc();
	*ptr = a;
	if (input()) {
		bar(ptr);
	} else {
		qux(ptr);
	}
	int *f = *ptr;
	if (input()) {
		sink(*f);
	}
}

void bar(int **q) {
	int *c = malloc();
	if (*q != null) {
		*q = c;
		free(c);
	} else {
		if (input()) {
			*q = source_b();
		}
	}
}

void qux(int **r) {
	if (input()) {
		*r = source_d();
	} else {
		*r = source_e();
	}
}
`

func TestParseMotivatingExample(t *testing.T) {
	f, err := ParseFile("fig1.mc", motivatingExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 3 {
		t.Fatalf("got %d funcs, want 3", len(f.Funcs))
	}
	names := []string{"foo", "bar", "qux"}
	for i, fn := range f.Funcs {
		if fn.Name != names[i] {
			t.Errorf("func %d = %s, want %s", i, fn.Name, names[i])
		}
	}
	foo := f.Funcs[0]
	if len(foo.Params) != 1 || foo.Params[0].Type != IntType.Pointer() {
		t.Errorf("foo params = %+v", foo.Params)
	}
	if !foo.Ret.IsVoid() {
		t.Errorf("foo ret = %v, want void", foo.Ret)
	}
}

func TestParseTypes(t *testing.T) {
	f, err := ParseFile("t", "int **g; bool b; void f(int ***p) { }")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Globals[0].Type.String(); got != "int**" {
		t.Errorf("g type = %s", got)
	}
	if got := f.Funcs[0].Params[0].Type.String(); got != "int***" {
		t.Errorf("p type = %s", got)
	}
	if f.Globals[0].Type.Elem().String() != "int*" {
		t.Errorf("Elem broken")
	}
	if !f.Globals[0].Type.IsPointer() || f.Globals[1].Type.IsPointer() {
		t.Errorf("IsPointer broken")
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := ParseFile("t", "void f() { int x = 1 + 2 * 3; bool c = a < b && d == e || q; }")
	if err != nil {
		t.Fatal(err)
	}
	body := f.Funcs[0].Body.Stmts
	x := body[0].(*DeclStmt).Decl.Init.(*BinaryExpr)
	if x.Op != "+" {
		t.Fatalf("top of 1+2*3 = %s, want +", x.Op)
	}
	if y := x.Y.(*BinaryExpr); y.Op != "*" {
		t.Fatalf("rhs of + is %s, want *", y.Op)
	}
	c := body[1].(*DeclStmt).Decl.Init.(*BinaryExpr)
	if c.Op != "||" {
		t.Fatalf("top of bool expr = %s, want ||", c.Op)
	}
}

func TestParseDerefChainAndAddr(t *testing.T) {
	f, err := ParseFile("t", "void f(int **p) { **p = 3; int *q = &x; int y = **p; }")
	if err != nil {
		t.Fatal(err)
	}
	as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
	u1 := as.Target.(*UnaryExpr)
	if u1.Op != "*" {
		t.Fatal("outer deref missing")
	}
	u2 := u1.X.(*UnaryExpr)
	if u2.Op != "*" {
		t.Fatal("inner deref missing")
	}
	q := f.Funcs[0].Body.Stmts[1].(*DeclStmt).Decl.Init.(*UnaryExpr)
	if q.Op != "&" {
		t.Fatal("address-of missing")
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
int f(int n) {
	int s = 0;
	while (n > 0) {
		s = s + n;
		n = n - 1;
	}
	if (s > 10) { return s; } else { return 0; }
}`
	f, err := ParseFile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	stmts := f.Funcs[0].Body.Stmts
	if _, ok := stmts[1].(*WhileStmt); !ok {
		t.Fatalf("stmt 1 is %T, want *WhileStmt", stmts[1])
	}
	ifs, ok := stmts[2].(*IfStmt)
	if !ok || ifs.Else == nil {
		t.Fatalf("stmt 2 is %T with else=%v", stmts[2], ifs != nil && ifs.Else != nil)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"void f() { 1 = 2; }",   // non-lvalue assignment
		"void f() { if x { } }", // missing parens
		"void f() { return 1 }", // missing semicolon
		"void f( { }",           // bad params
		"int",                   // truncated
		"void f() { x = ; }",    // missing rhs
		"void f() {",            // unterminated block
		"notatype f() {}",       // unknown type
	}
	for _, src := range bad {
		if _, err := ParseFile("t", src); err == nil {
			t.Errorf("ParseFile(%q) succeeded, want error", src)
		}
	}
}

func TestParseProgramUnits(t *testing.T) {
	prog, err := ParseProgram([]NamedSource{
		{Name: "a.mc", Src: "void f() { g(); }"},
		{Name: "b.mc", Src: "void g() { }"},
	})
	if err != nil {
		t.Fatal(err)
	}
	funcs := prog.Funcs()
	if len(funcs) != 2 {
		t.Fatalf("got %d funcs", len(funcs))
	}
	if funcs[0].Unit != 0 || funcs[1].Unit != 1 {
		t.Errorf("units = %d,%d want 0,1", funcs[0].Unit, funcs[1].Unit)
	}
}

func TestFormatExprRoundTrip(t *testing.T) {
	src := "void f() { int x = (a + b) * c(d, *e) - -g; }"
	f, err := ParseFile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	e := f.Funcs[0].Body.Stmts[0].(*DeclStmt).Decl.Init
	s := FormatExpr(e)
	for _, frag := range []string{"a", "b", "c(", "*e", "-g"} {
		if !strings.Contains(s, frag) {
			t.Errorf("FormatExpr = %q missing %q", s, frag)
		}
	}
}

func TestGlobalWithInit(t *testing.T) {
	f, err := ParseFile("t", "int g = 5; int *h;")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 2 {
		t.Fatalf("got %d globals", len(f.Globals))
	}
	if f.Globals[0].Init == nil || f.Globals[1].Init != nil {
		t.Error("global initializers wrong")
	}
}

func TestParseForLoop(t *testing.T) {
	f, err := ParseFile("t", `
int sum(int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) {
		s = s + i;
	}
	return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	// Desugared: block { decl; while }.
	blk, ok := f.Funcs[0].Body.Stmts[1].(*BlockStmt)
	if !ok {
		t.Fatalf("for did not desugar to a block: %T", f.Funcs[0].Body.Stmts[1])
	}
	if _, ok := blk.Stmts[0].(*DeclStmt); !ok {
		t.Fatalf("init missing: %T", blk.Stmts[0])
	}
	wh, ok := blk.Stmts[1].(*WhileStmt)
	if !ok {
		t.Fatalf("loop missing: %T", blk.Stmts[1])
	}
	body := wh.Body.(*BlockStmt)
	if len(body.Stmts) != 2 {
		t.Fatalf("body+post = %d stmts", len(body.Stmts))
	}
}

func TestParseForVariants(t *testing.T) {
	good := []string{
		"void f() { for (;;) { g(); } }",
		"void f(int n) { for (; n > 0;) { n = n - 1; } }",
		"void f(int n) { int i = 0; for (i = 0; i < n; i = i + 2) { g(); } }",
		"void f() { for (int i = 0; i < 3; tick()) { g(); } }",
	}
	for _, src := range good {
		if _, err := ParseFile("t", src); err != nil {
			t.Errorf("ParseFile(%q): %v", src, err)
		}
	}
	bad := []string{
		"void f() { for () { } }",
		"void f() { for (int i = 0) { } }",
		"void f() { for (;; 1 = 2) { } }",
	}
	for _, src := range bad {
		if _, err := ParseFile("t", src); err == nil {
			t.Errorf("ParseFile(%q) succeeded, want error", src)
		}
	}
}

// TestParserNeverPanics feeds the parser random byte soup and random token
// recombinations: it must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	corpus := []string{
		"int", "bool", "void", "*", "x", "(", ")", "{", "}", ";", ",",
		"=", "==", "!=", "&&", "||", "!", "&", "+", "-", "/", "%",
		"if", "else", "while", "for", "return", "true", "false", "null",
		"42", "f", "malloc", "free",
	}
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			b.WriteString(corpus[rng.Intn(len(corpus))])
			b.WriteByte(' ')
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", b.String(), r)
				}
			}()
			_, _ = ParseFile("fuzz", b.String())
		}()
	}
	// Raw byte soup through the lexer.
	for trial := 0; trial < 200; trial++ {
		raw := make([]byte, rng.Intn(60))
		for i := range raw {
			raw[i] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lexer/parser panicked on %q: %v", raw, r)
				}
			}()
			_, _ = ParseFile("fuzz", string(raw))
		}()
	}
}

func TestParseStructs(t *testing.T) {
	f, err := ParseFile("t", `
struct Node {
	int *payload;
	struct Node *next;
};
struct Node *head_g;
void visit(struct Node *n) {
	int *p = n->payload;
	struct Node *nx = n->next;
	n->payload = null;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Structs) != 1 || f.Structs[0].Name != "Node" || len(f.Structs[0].Fields) != 2 {
		t.Fatalf("structs = %+v", f.Structs)
	}
	if got := f.Structs[0].Fields[1].Type.String(); got != "struct Node*" {
		t.Fatalf("next type = %s", got)
	}
	if !f.Globals[0].Type.IsPointer() || f.Globals[0].Type.Elem().StructName() != "Node" {
		t.Fatalf("global type = %v", f.Globals[0].Type)
	}
	// Arrow chains and arrow assignment parse.
	body := f.Funcs[0].Body.Stmts
	if _, ok := body[0].(*DeclStmt).Decl.Init.(*ArrowExpr); !ok {
		t.Fatalf("arrow read missing: %T", body[0].(*DeclStmt).Decl.Init)
	}
	as, ok := body[2].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt 2 = %T", body[2])
	}
	if _, ok := as.Target.(*ArrowExpr); !ok {
		t.Fatalf("arrow lvalue missing: %T", as.Target)
	}
}

func TestParseArrowChain(t *testing.T) {
	f, err := ParseFile("t", `
struct A { struct A *inner; int v; };
int f(struct A *a) { return a->inner->v; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	outer := ret.Value.(*ArrowExpr)
	if outer.Field != "v" {
		t.Fatalf("outer field = %s", outer.Field)
	}
	inner := outer.X.(*ArrowExpr)
	if inner.Field != "inner" {
		t.Fatalf("inner field = %s", inner.Field)
	}
}

func TestParseStructErrors(t *testing.T) {
	bad := []string{
		"struct { int x; };",    // missing name
		"struct S { int x }",    // missing semicolons
		"void f(struct *p) { }", // missing struct name
		"void f() { x->; }",     // missing field name
	}
	for _, src := range bad {
		if _, err := ParseFile("t", src); err == nil {
			t.Errorf("ParseFile(%q) succeeded, want error", src)
		}
	}
}
